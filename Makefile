# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands, so a green `make check` locally predicts a green pipeline.

GO ?= go
PKGS := ./...
# Seeds for the nondeterminism sweep. Distinct -shuffle seeds reorder
# test execution; the seeded property tests (autoscale churn, elastic
# churn, trace conformance) re-derive their own PRNG streams per run, so
# any order- or schedule-dependent state leaks out as a failure.
SWEEP_SEEDS ?= 1 2 3 4 5 6 7 8 9 10
FUZZTIME ?= 30s

.PHONY: build test race check lint vet fuzz testsweep bench scalebench clean

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race -short $(PKGS)

check: build vet test race

vet:
	$(GO) vet $(PKGS)

# staticcheck is optional locally; CI installs a pinned version. The
# guard keeps `make lint` useful on machines without it.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck $(PKGS); \
	else \
		echo "lint: staticcheck not installed, ran go vet only"; \
	fi

# Fuzz smoke: each target briefly, same invocations as CI. `go test
# -fuzz` takes one target per package run, hence the separate lines.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/workloads/trace/
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/engine/faults/

# testsweep shakes out nondeterminism: the full suite under -race at
# several distinct shuffle seeds, no result caching. A test that depends
# on execution order, shared state, or goroutine schedule fails at some
# seed; the sweep stops at the first one and names it.
testsweep:
	@set -e; for seed in $(SWEEP_SEEDS); do \
		echo "=== testsweep: -race -shuffle=$$seed ==="; \
		$(GO) test -race -count=1 -shuffle=$$seed $(PKGS) || { \
			echo "testsweep: FAILED at shuffle seed $$seed" >&2; exit 1; }; \
	done; \
	echo "testsweep: all seeds green"

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ $(PKGS)

# The scale/autoscale gates CI runs nightly (slow; see BENCH_scale.json).
scalebench:
	SCALE_SMOKE=1 $(GO) test -run 'TestScaleSmoke|TestAutoscaleSmoke' -v -timeout 30m ./internal/scalebench/

clean:
	$(GO) clean -testcache
