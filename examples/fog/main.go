// Fog: the agent deployment of Figs. 5–6. Three agents start on loopback
// HTTP: a 1-core fog "device" and two stronger peers. The device offloads
// a batch of Monte-Carlo tasks; halfway through, one peer is killed, and
// the persist-before-offload protocol recovers the lost work on the
// surviving executors.
//
//	go run ./examples/fog
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/storage/dataclay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fog:", err)
		os.Exit(1)
	}
}

func registry() *agent.Registry {
	reg := agent.NewRegistry()
	reg.Register("pi", func(args []json.RawMessage) (json.RawMessage, error) {
		var n int
		if len(args) != 1 || json.Unmarshal(args[0], &n) != nil || n <= 0 {
			return nil, errors.New("pi wants a positive sample count")
		}
		time.Sleep(30 * time.Millisecond) // make offloading worthwhile
		const phi, phi2 = 0.6180339887498949, 0.7548776662466927
		in := 0
		x, y := 0.5, 0.5
		for i := 0; i < n; i++ {
			x += phi
			x -= math.Floor(x)
			y += phi2
			y -= math.Floor(y)
			if (x-0.5)*(x-0.5)+(y-0.5)*(y-0.5) <= 0.25 {
				in++
			}
		}
		return json.Marshal(4 * float64(in) / float64(n))
	})
	return reg
}

func run() error {
	// A shared dataClay store: task requests are persisted here before
	// offloading, which is what makes peer loss survivable.
	store, err := dataclay.NewStore([]string{"store1"})
	if err != nil {
		return err
	}
	agent.RegisterBlobClass(store)
	reg := registry()

	fragile, err := agent.New(agent.Config{Name: "fog-peer", Registry: reg, Cores: 2})
	if err != nil {
		return err
	}
	defer fragile.Close()
	cloud, err := agent.New(agent.Config{Name: "cloud-peer", Registry: reg, Cores: 4})
	if err != nil {
		return err
	}
	defer cloud.Close()
	device, err := agent.New(agent.Config{Name: "device", Registry: reg, Cores: 1, Store: store})
	if err != nil {
		return err
	}
	defer device.Close()
	device.SetPeers([]string{fragile.URL(), cloud.URL()})
	fmt.Printf("device=%s fog-peer=%s cloud-peer=%s\n", device.URL(), fragile.URL(), cloud.URL())

	const tasks = 16
	arg, err := json.Marshal(200000)
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	results := make([]float64, tasks)
	errs := make([]error, tasks)
	start := time.Now()
	for i := 0; i < tasks; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := device.RunAnywhere("pi", []json.RawMessage{arg})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = json.Unmarshal(res, &results[i])
		}()
	}

	// Kill the fog peer mid-batch: "disappeared for low battery or
	// because no longer in the fog area" (paper Sec. VI-B).
	time.Sleep(60 * time.Millisecond)
	fmt.Println("!! fog-peer disappears")
	fragile.Close()

	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	mean := 0.0
	for _, r := range results {
		mean += r
	}
	mean /= tasks
	fmt.Printf("%d tasks done in %v, π ≈ %.5f, recovered offloads: %d\n",
		tasks, time.Since(start).Round(time.Millisecond), mean, device.Recoveries())
	return nil
}
