// Steering: the paper's vision of checking partial results mid-run
// (Sec. VI-C): a long simulation publishes residuals to the storage
// backend after each phase; a monitor inspects them and steers — here it
// halves the timestep when the solver gets rough and aborts on divergence,
// so the scientist does not burn hours of compute on a doomed run.
//
//	go run ./examples/steering
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/steer"
	"repro/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "steering:", err)
		os.Exit(1)
	}
}

func run() error {
	backend := storage.NewMemory("hpc-db")
	progress := steer.NewProgress(backend, "run42")

	monitor, err := steer.NewMonitor(backend, "run42", func(step int, partial []byte) steer.Decision {
		var residual float64
		if err := json.Unmarshal(partial, &residual); err != nil {
			return steer.Decision{Verdict: steer.Abort, Reason: "unreadable partial result"}
		}
		switch {
		case math.IsNaN(residual) || residual > 50:
			return steer.Decision{Verdict: steer.Abort,
				Reason: fmt.Sprintf("residual %.2f diverged at step %d", residual, step)}
		case residual > 5:
			return steer.Decision{Verdict: steer.Adjust,
				Reason: fmt.Sprintf("residual %.2f too rough", residual),
				Params: map[string]string{"dt": "0.5x"}}
		default:
			return steer.Decision{Verdict: steer.Continue}
		}
	}, 2*time.Millisecond)
	if err != nil {
		return err
	}
	defer monitor.Stop()

	// The "simulation": an unstable explicit integrator whose residual
	// grows until the timestep is halved.
	dt := 1.0
	residual := 1.0
	for step := 1; step <= 12; step++ {
		// Integrate one phase: residual grows with dt.
		residual *= 1 + dt
		raw, err := json.Marshal(residual)
		if err != nil {
			return err
		}
		if _, err := progress.Publish(raw); err != nil {
			return err
		}
		fmt.Printf("step %2d: dt=%.2f residual=%8.2f", step, dt, residual)

		// Wait for the monitor's verdict on this step (interactive loop).
		deadline := time.Now().Add(time.Second)
		for monitor.StepsSeen() < step {
			if time.Now().After(deadline) {
				return fmt.Errorf("monitor stalled at step %d", step)
			}
			time.Sleep(time.Millisecond)
		}
		d, ok := progress.Decision()
		if !ok {
			fmt.Println("  (no decision)")
			continue
		}
		fmt.Printf("  -> %s %s\n", d.Verdict, d.Reason)
		switch d.Verdict {
		case steer.Abort:
			fmt.Println("simulation aborted by steering — compute hours saved")
			return nil
		case steer.Adjust:
			dt *= 0.5
			residual *= 0.4 // the smaller step stabilises the solver
		case steer.Continue:
		}
	}
	fmt.Println("simulation completed under steering")
	return nil
}
