// Remote: a compss application whose tasks execute on COMPSs agents — the
// complete Fig. 6 story. The "application" runs the dependency-tracked
// workflow on one machine; the task bodies run on whichever agent is least
// loaded, with failover if an agent disappears. The local and remote
// levels compose: half the tasks here are local Go functions, half are
// remote.
//
//	go run ./examples/remote
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/compss"
	"repro/internal/agent"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "remote:", err)
		os.Exit(1)
	}
}

func run() error {
	// The agent fleet: every agent registers the same application code.
	reg := agent.NewRegistry()
	reg.Register("normalize", func(args []json.RawMessage) (json.RawMessage, error) {
		var xs []float64
		if len(args) != 1 || json.Unmarshal(args[0], &xs) != nil {
			return nil, errors.New("normalize wants a number array")
		}
		max := 0.0
		for _, x := range xs {
			if x > max {
				max = x
			}
		}
		if max == 0 {
			max = 1
		}
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = x / max
		}
		return json.Marshal(out)
	})
	var fleet []string
	for i := 0; i < 3; i++ {
		a, err := agent.New(agent.Config{Name: fmt.Sprintf("worker%d", i), Registry: reg, Cores: 2})
		if err != nil {
			return err
		}
		defer a.Close()
		fleet = append(fleet, a.URL())
	}
	fmt.Printf("fleet: %v\n", fleet)

	// The application: local ingest → remote normalize → local aggregate.
	c := compss.New()
	defer c.Shutdown()
	if err := c.RegisterTask("ingest", func(_ context.Context, args []any) ([]any, error) {
		n, _ := args[0].(int)
		xs := make([]float64, 16)
		for i := range xs {
			xs[i] = float64((n*31 + i*7) % 100)
		}
		return []any{xs}, nil
	}); err != nil {
		return err
	}
	if err := c.RegisterRemoteTask("normalize", fleet); err != nil {
		return err
	}
	if err := c.RegisterTask("aggregate", func(_ context.Context, args []any) ([]any, error) {
		total := 0.0
		for _, a := range args[1:] {
			xs, ok := a.([]any) // JSON round-trip: numbers become []any of float64
			if !ok {
				return nil, errors.New("aggregate wants arrays")
			}
			for _, x := range xs {
				f, ok := x.(float64)
				if !ok {
					return nil, errors.New("aggregate wants numbers")
				}
				total += f
			}
		}
		return []any{total}, nil
	}); err != nil {
		return err
	}

	start := time.Now()
	const streams = 6
	normalized := make([]*compss.Object, streams)
	for i := 0; i < streams; i++ {
		raw := c.NewObject()
		if _, err := c.Call("ingest", compss.In(i), compss.Write(raw)); err != nil {
			return err
		}
		normalized[i] = c.NewObject()
		// This task body executes on an agent, not in this process.
		if _, err := c.Call("normalize", compss.Read(raw), compss.Write(normalized[i])); err != nil {
			return err
		}
	}
	result := c.NewObject()
	params := []compss.Param{compss.Write(result)}
	for _, o := range normalized {
		params = append(params, compss.Read(o))
	}
	if _, err := c.Call("aggregate", params...); err != nil {
		return err
	}
	total, err := c.WaitOn(result)
	if err != nil {
		return err
	}
	fmt.Printf("hybrid local/remote workflow: %d tasks, aggregate=%.2f, %v wall time\n",
		c.TasksSubmitted(), total, time.Since(start).Round(time.Millisecond))
	return nil
}
