// GWAS: a miniature GUIDANCE-style genomics workflow (paper Sec. VI-A) on
// the real runtime. Per chromosome, a split task fans out into imputation
// tasks with *variable memory constraints* — the feature the paper credits
// with a 50% execution-time reduction — and the results converge into a
// merge and a final association analysis.
//
//	go run ./examples/gwas
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/compss"
)

const (
	chromosomes    = 4
	imputePerChrom = 12
	variantsPerJob = 4000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gwas:", err)
		os.Exit(1)
	}
}

// genotypes is the synthetic stand-in for the paper's 200 GB of input
// files: per-variant minor-allele counts.
type genotypes struct {
	Chrom    int
	Variants []float64
}

type assocResult struct {
	Chrom int
	Hits  int
}

func run() error {
	c := compss.New(compss.WithNodes(
		compss.NodeSpec{Name: "mn1", Cores: 8, MemoryMB: 32000},
		compss.NodeSpec{Name: "mn2", Cores: 8, MemoryMB: 32000},
	))
	defer c.Shutdown()

	if err := registerTasks(c); err != nil {
		return err
	}

	start := time.Now()
	var merged []*compss.Object
	for chrom := 0; chrom < chromosomes; chrom++ {
		// Stage in: one raw input per chromosome.
		raw := c.NewObjectWith(genotypes{Chrom: chrom})

		chunks := c.NewObject()
		if _, err := c.Call("split", compss.Read(raw), compss.In(imputePerChrom), compss.Write(chunks)); err != nil {
			return err
		}

		imputed := make([]*compss.Object, imputePerChrom)
		for i := range imputed {
			imputed[i] = c.NewObject()
			// 25% of imputation jobs need the high-memory profile: the
			// constraint is attached to the task *type*, so two types
			// model the paper's variable footprints.
			task := "imputeSmall"
			if i%4 == 0 {
				task = "imputeLarge"
			}
			if _, err := c.Call(task, compss.Read(chunks), compss.In(i), compss.Write(imputed[i])); err != nil {
				return err
			}
		}

		m := c.NewObject()
		params := []compss.Param{compss.Write(m)}
		for _, im := range imputed {
			params = append(params, compss.Read(im))
		}
		if _, err := c.Call("merge", params...); err != nil {
			return err
		}
		merged = append(merged, m)
	}

	final := c.NewObject()
	params := []compss.Param{compss.Write(final)}
	for _, m := range merged {
		params = append(params, compss.Read(m))
	}
	if _, err := c.Call("assoc", params...); err != nil {
		return err
	}

	v, err := c.WaitOn(final)
	if err != nil {
		return err
	}
	hits, ok := v.(int)
	if !ok {
		return fmt.Errorf("assoc returned %T", v)
	}
	fmt.Printf("genome-wide association scan: %d chromosomes, %d tasks, %d candidate loci, %v wall time\n",
		chromosomes, c.TasksSubmitted(), hits, time.Since(start).Round(time.Millisecond))
	return nil
}

func registerTasks(c *compss.COMPSs) error {
	if err := c.RegisterTask("split", func(_ context.Context, args []any) ([]any, error) {
		g, ok := args[0].(genotypes)
		if !ok {
			return nil, errors.New("split wants genotypes")
		}
		n, _ := args[1].(int)
		rng := rand.New(rand.NewSource(int64(g.Chrom)))
		chunks := make([]genotypes, n)
		for i := range chunks {
			vs := make([]float64, variantsPerJob)
			for j := range vs {
				vs[j] = rng.Float64()
			}
			chunks[i] = genotypes{Chrom: g.Chrom, Variants: vs}
		}
		return []any{chunks}, nil
	}); err != nil {
		return err
	}

	impute := func(_ context.Context, args []any) ([]any, error) {
		chunks, ok := args[0].([]genotypes)
		if !ok {
			return nil, errors.New("impute wants chunks")
		}
		idx, _ := args[1].(int)
		chunk := chunks[idx%len(chunks)]
		// "Impute": smooth missing-ish values with a window average.
		out := make([]float64, len(chunk.Variants))
		for i := range out {
			a, b := chunk.Variants[i], chunk.Variants[(i+1)%len(out)]
			out[i] = (a + b) / 2
		}
		return []any{genotypes{Chrom: chunk.Chrom, Variants: out}}, nil
	}
	// Two registrations of the same code with different @constraint
	// memory footprints (paper: "the requirement of a variable amount of
	// memory for its execution").
	if err := c.RegisterTask("imputeSmall", impute, compss.Constraints{MemoryMB: 1000}); err != nil {
		return err
	}
	if err := c.RegisterTask("imputeLarge", impute, compss.Constraints{MemoryMB: 8000}); err != nil {
		return err
	}

	if err := c.RegisterTask("merge", func(_ context.Context, args []any) ([]any, error) {
		total := 0
		chrom := 0
		for _, a := range args[1:] {
			g, ok := a.(genotypes)
			if !ok {
				return nil, errors.New("merge wants genotypes")
			}
			chrom = g.Chrom
			total += len(g.Variants)
		}
		_ = args[0] // out slot placeholder (bound by position)
		return []any{assocResult{Chrom: chrom, Hits: total / 1000}}, nil
	}); err != nil {
		return err
	}

	return c.RegisterTask("assoc", func(_ context.Context, args []any) ([]any, error) {
		hits := 0
		for _, a := range args[1:] {
			r, ok := a.(assocResult)
			if !ok {
				return nil, errors.New("assoc wants merge results")
			}
			hits += r.Hits
		}
		return []any{hits}, nil
	})
}
