// Weather: a miniature NMMB-Monarch chemical-weather workflow (paper
// Sec. VI-A): per forecast cycle, initialisation scripts run as parallel
// tasks (the PyCOMPSs improvement), a distributed-memory simulation runs as
// an MPI-style multi-rank task (internal/mpisim), and post-processing
// reduces the output. Cycles chain through the model state.
//
//	go run ./examples/weather
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/compss"
	"repro/internal/mpisim"
)

const (
	cycles       = 3
	initScripts  = 6
	mpiRanks     = 4
	cellsPerRank = 64
	stencilSteps = 200
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "weather:", err)
		os.Exit(1)
	}
}

// modelState is the restart file chained across forecast cycles.
type modelState struct {
	Cycle int
	Field []float64 // the prognostic field (e.g. dust concentration)
}

func run() error {
	c := compss.New(compss.WithNodes(
		compss.NodeSpec{Name: "hpc1", Cores: 8},
		compss.NodeSpec{Name: "hpc2", Cores: 8},
	))
	defer c.Shutdown()
	if err := register(c); err != nil {
		return err
	}

	start := time.Now()
	state := c.NewObjectWith(modelState{Field: initialField()})
	for cycle := 0; cycle < cycles; cycle++ {
		// Step 2: initialisation scripts, task-parallel (the paper's
		// speedup came from parallelising exactly this stage).
		inits := make([]*compss.Object, initScripts)
		for i := range inits {
			inits[i] = c.NewObject()
			if _, err := c.Call("initScript", compss.In(cycle), compss.In(i), compss.Write(inits[i])); err != nil {
				return err
			}
		}

		// Step 3: the MPI simulation consumes the init products and
		// advances the model state.
		params := []compss.Param{compss.Update(state)}
		for _, in := range inits {
			params = append(params, compss.Read(in))
		}
		if _, err := c.Call("mpiSimulate", params...); err != nil {
			return err
		}

		// Steps 4–5: post-process and archive.
		post := c.NewObject()
		if _, err := c.Call("postProcess", compss.Read(state), compss.Write(post)); err != nil {
			return err
		}
		report, err := c.WaitOn(post)
		if err != nil {
			return err
		}
		fmt.Printf("cycle %d: %v\n", cycle, report)
	}
	fmt.Printf("forecast complete: %d tasks in %v\n",
		c.TasksSubmitted(), time.Since(start).Round(time.Millisecond))
	return nil
}

func initialField() []float64 {
	f := make([]float64, mpiRanks*cellsPerRank)
	f[0] = 1000 // a dust plume at the domain edge
	return f
}

func register(c *compss.COMPSs) error {
	if err := c.RegisterTask("initScript", func(_ context.Context, args []any) ([]any, error) {
		cycle, _ := args[0].(int)
		idx, _ := args[1].(int)
		// A "script" producing boundary conditions.
		return []any{fmt.Sprintf("vars-c%d-s%d", cycle, idx)}, nil
	}); err != nil {
		return err
	}

	if err := c.RegisterTask("mpiSimulate", func(_ context.Context, args []any) ([]any, error) {
		st, ok := args[0].(modelState)
		if !ok {
			return nil, errors.New("mpiSimulate wants modelState")
		}
		field := append([]float64(nil), st.Field...)
		// The multi-node stage: a halo-exchange diffusion stencil over
		// mpisim ranks (the stand-in for the Fortran/MPI NMMB core).
		next := make([]float64, len(field))
		err := mpisim.Run(mpiRanks, func(r *mpisim.Rank) error {
			lo := r.ID() * cellsPerRank
			local := append([]float64(nil), field[lo:lo+cellsPerRank]...)
			for s := 0; s < stencilSteps; s++ {
				left, right := 0.0, 0.0
				if r.ID() > 0 {
					v, err := r.SendRecv(r.ID()-1, local[0])
					if err != nil {
						return err
					}
					f, ok := v.(float64)
					if !ok {
						return errors.New("bad halo payload")
					}
					left = f
				}
				if r.ID() < r.Size()-1 {
					v, err := r.SendRecv(r.ID()+1, local[len(local)-1])
					if err != nil {
						return err
					}
					f, ok := v.(float64)
					if !ok {
						return errors.New("bad halo payload")
					}
					right = f
				}
				upd := make([]float64, len(local))
				for i := range local {
					l, rr := left, right
					if i > 0 {
						l = local[i-1]
					}
					if i < len(local)-1 {
						rr = local[i+1]
					}
					upd[i] = local[i] + 0.2*(l-2*local[i]+rr)
				}
				local = upd
			}
			gathered, err := r.Gather(0, local)
			if err != nil {
				return err
			}
			if r.ID() == 0 {
				copy(next, gathered)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return []any{modelState{Cycle: st.Cycle + 1, Field: next}}, nil
	}, compss.Constraints{Cores: 4}); err != nil {
		return err
	}

	return c.RegisterTask("postProcess", func(_ context.Context, args []any) ([]any, error) {
		st, ok := args[0].(modelState)
		if !ok {
			return nil, errors.New("postProcess wants modelState")
		}
		total, peak := 0.0, 0.0
		for _, v := range st.Field {
			total += v
			if v > peak {
				peak = v
			}
		}
		return []any{fmt.Sprintf("cycle=%d total_dust=%.1f peak=%.2f", st.Cycle, total, peak)}, nil
	})
}
