// KMeans: the dislib distributed ML library (paper Sec. VI-C) at the HLA
// abstraction level — clustering a blocked distributed array where every
// per-block step is a compss task.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/compss"
	"repro/dislib"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kmeans:", err)
		os.Exit(1)
	}
}

func run() error {
	c := compss.New(compss.WithNodes(
		compss.NodeSpec{Name: "w1", Cores: 4},
		compss.NodeSpec{Name: "w2", Cores: 4},
	))
	defer c.Shutdown()
	l, err := dislib.New(c)
	if err != nil {
		return err
	}

	// Three Gaussian blobs.
	rng := rand.New(rand.NewSource(3))
	centers := [][]float64{{0, 0}, {8, 8}, {-8, 8}}
	var data [][]float64
	for i := 0; i < 3000; i++ {
		ctr := centers[i%3]
		data = append(data, []float64{
			ctr[0] + rng.NormFloat64(),
			ctr[1] + rng.NormFloat64(),
		})
	}
	x, err := l.FromSlice(data, 250)
	if err != nil {
		return err
	}

	start := time.Now()
	km := l.KMeans(3, 11)
	if err := km.Fit(x); err != nil {
		return err
	}
	labels, err := km.Predict(x)
	if err != nil {
		return err
	}

	counts := make(map[int]int)
	for _, lbl := range labels {
		counts[lbl]++
	}
	fmt.Printf("fitted %d clusters on %d points (%d blocks) in %d iterations, %v wall time\n",
		km.K, x.Rows(), x.NumBlocks(), km.Iterations, time.Since(start).Round(time.Millisecond))
	for c := 0; c < km.K; c++ {
		fmt.Printf("  cluster %d: center (%6.2f, %6.2f), %d points\n",
			c, km.Centers[c][0], km.Centers[c][1], counts[c])
	}
	fmt.Printf("tasks executed: %d\n", c.TasksSubmitted())
	return nil
}
