// Quickstart: the task-based programming model in ~60 lines.
//
// Register plain Go functions as tasks, call them asynchronously, and let
// the runtime derive the dependency graph from parameter directions — the
// COMPSs model of the paper (Sec. VI-A).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"repro/compss"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A runtime over two logical 4-core nodes.
	c := compss.New(compss.WithNodes(
		compss.NodeSpec{Name: "node1", Cores: 4},
		compss.NodeSpec{Name: "node2", Cores: 4},
	))
	defer c.Shutdown()

	// @task equivalents.
	if err := c.RegisterTask("generate", func(_ context.Context, args []any) ([]any, error) {
		n, ok := args[0].(int)
		if !ok {
			return nil, errors.New("generate wants an int")
		}
		data := make([]int, n)
		for i := range data {
			data[i] = i + 1
		}
		return []any{data}, nil
	}); err != nil {
		return err
	}
	if err := c.RegisterTask("sum", func(_ context.Context, args []any) ([]any, error) {
		data, ok := args[0].([]int)
		if !ok {
			return nil, errors.New("sum wants []int")
		}
		total := 0
		for _, v := range data {
			total += v
		}
		return []any{total}, nil
	}); err != nil {
		return err
	}
	if err := c.RegisterTask("add", func(_ context.Context, args []any) ([]any, error) {
		a, _ := args[0].(int)
		b, _ := args[1].(int)
		return []any{a + b}, nil
	}); err != nil {
		return err
	}

	// Fan out: four independent generate→sum chains. The calls return
	// immediately; the runtime runs them in parallel.
	partials := make([]*compss.Object, 4)
	for i := range partials {
		data := c.NewObject()
		if _, err := c.Call("generate", compss.In(250), compss.Write(data)); err != nil {
			return err
		}
		partials[i] = c.NewObject()
		if _, err := c.Call("sum", compss.Read(data), compss.Write(partials[i])); err != nil {
			return err
		}
	}

	// Fan in: reduce the partials pairwise.
	total := c.NewObjectWith(0)
	for _, p := range partials {
		if _, err := c.Call("add", compss.Reduce(total), compss.Read(p)); err != nil {
			return err
		}
	}

	// compss_wait_on: synchronise and fetch the value.
	v, err := c.WaitOn(total)
	if err != nil {
		return err
	}
	fmt.Printf("sum of 4 x (1..250) = %v (want %d)\n", v, 4*250*251/2)
	fmt.Printf("tasks executed: %d, dependency edges: %d\n",
		c.TasksSubmitted(), c.DependencyEdges())
	return nil
}
