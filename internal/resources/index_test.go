package resources

import (
	"fmt"
	"math/rand"
	"testing"
)

// indexSigs are the constraint signatures the churn property test keeps
// live — a spread over cores, memory, GPUs, class and software so nodes
// belong to overlapping subsets of the signature sets.
var indexSigs = []Constraints{
	{},
	{Cores: 2},
	{Cores: 4, MemoryMB: 8_000},
	{GPUs: 1},
	{Class: HPC},
	{Software: []string{"blas"}},
}

// indexDescs are the node shapes the churn test draws from.
var indexDescs = []Description{
	{Cores: 8, MemoryMB: 32_000, SpeedFactor: 1, Class: HPC, Software: []string{"blas", "mpi"}},
	{Cores: 4, MemoryMB: 16_000, SpeedFactor: 1, Class: Cloud},
	{Cores: 2, MemoryMB: 8_000, SpeedFactor: 0.5, Class: Fog},
	{Cores: 8, MemoryMB: 64_000, GPUs: 2, SpeedFactor: 1, Class: Cloud, Software: []string{"blas"}},
	{Cores: 1, MemoryMB: 2_000, SpeedFactor: 0.2, Class: Edge},
}

// scanFitting is the from-scratch reference the index must match: every
// pool node that currently accepts c, in pool insertion order.
func scanFitting(p *Pool, c Constraints) []*Node {
	var out []*Node
	for _, n := range p.Nodes() {
		if n.CanReserve(c) {
			out = append(out, n)
		}
	}
	return out
}

// scanMinLoad is the reference MinLoad pick: the fitting node with the
// lowest busy-core fraction, ties broken by name.
func scanMinLoad(p *Pool, c Constraints) *Node {
	var best *Node
	bestFrac := 0.0
	for _, n := range p.Nodes() {
		if !n.CanReserve(c) {
			continue
		}
		f := float64(n.BusyCores()) / float64(n.Desc().Cores)
		if best == nil || f < bestFrac || (f == bestFrac && n.Name() < best.Name()) {
			best, bestFrac = n, f
		}
	}
	return best
}

func checkIndexAgainstScan(t *testing.T, p *Pool, step int) {
	t.Helper()
	for _, c := range indexSigs {
		want := scanFitting(p, c)
		got := p.Fitting(c)
		if len(got) != len(want) {
			t.Fatalf("step %d sig %q: Fitting returned %d nodes, scan %d", step, c.Signature(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d sig %q: Fitting[%d] = %s, scan says %s", step, c.Signature(), i, got[i].Name(), want[i].Name())
			}
		}
		wantCap := 0
		for _, n := range p.Nodes() {
			if n.Desc().Satisfies(c) {
				wantCap++
			}
		}
		if gotCap := len(p.Capable(c)); gotCap != wantCap {
			t.Fatalf("step %d sig %q: Capable returned %d nodes, scan %d", step, c.Signature(), gotCap, wantCap)
		}
		if p.AnyCapable(c) != (wantCap > 0) {
			t.Fatalf("step %d sig %q: AnyCapable = %v with %d capable", step, c.Signature(), p.AnyCapable(c), wantCap)
		}
		si := p.IndexFor(c)
		wantMin := scanMinLoad(p, c)
		gotMin := si.MinLoadFitting(c)
		if gotMin != wantMin {
			t.Fatalf("step %d sig %q: MinLoadFitting = %v, scan min = %v", step, c.Signature(), name(gotMin), name(wantMin))
		}
		var wantFirst *Node
		if len(want) > 0 {
			wantFirst = want[0]
		}
		if gotFirst := si.FirstFitting(c); gotFirst != wantFirst {
			t.Fatalf("step %d sig %q: FirstFitting = %v, scan first = %v", step, c.Signature(), name(gotFirst), name(wantFirst))
		}
	}
}

func name(n *Node) string {
	if n == nil {
		return "<nil>"
	}
	return n.Name()
}

// TestIndexMatchesScanUnderChurn is the placement-index property test:
// after every step of a randomized interleaving of Reserve, Release, Add,
// Remove, Drain and Undrain, the capability sets and load heaps must
// answer Fitting / Capable / MinLoad / FirstFitting exactly as a
// from-scratch scan of the pool does.
func TestIndexMatchesScanUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := NewPool()

	type reservation struct {
		n *Node
		c Constraints
	}
	var held []reservation
	next := 0
	addNode := func() {
		d := indexDescs[rng.Intn(len(indexDescs))]
		n := NewNode(fmt.Sprintf("churn-%03d", next), d)
		next++
		if err := pool.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		addNode()
	}
	// Touch every signature up front so the sets exist before churn — the
	// maintenance paths, not lazy rebuilds, are what is under test.
	for _, c := range indexSigs {
		_ = pool.IndexFor(c)
	}

	for step := 0; step < 2500; step++ {
		names := pool.Names()
		switch op := rng.Intn(10); {
		case op < 3: // reserve on a random fitting node of a random signature
			c := indexSigs[rng.Intn(len(indexSigs))]
			if fit := pool.Fitting(c); len(fit) > 0 {
				n := fit[rng.Intn(len(fit))]
				if err := n.Reserve(c); err == nil {
					held = append(held, reservation{n, c})
				}
			}
		case op < 6: // release a random outstanding reservation
			if len(held) > 0 {
				i := rng.Intn(len(held))
				r := held[i]
				held = append(held[:i], held[i+1:]...)
				r.n.Release(r.c)
			}
		case op < 7: // add a node
			if len(names) < 16 {
				addNode()
			}
		case op < 8: // remove a node (dropping its outstanding reservations)
			if len(names) > 2 {
				victim := names[rng.Intn(len(names))]
				kept := held[:0]
				for _, r := range held {
					if r.n.Name() != victim {
						kept = append(kept, r)
					}
				}
				held = kept
				if err := pool.Remove(victim); err != nil {
					t.Fatal(err)
				}
			}
		case op < 9: // cordon
			if n, ok := pool.Get(names[rng.Intn(len(names))]); ok {
				n.Drain()
			}
		default: // lift a cordon
			if n, ok := pool.Get(names[rng.Intn(len(names))]); ok {
				n.Undrain()
			}
		}
		checkIndexAgainstScan(t, pool, step)
	}
}

// TestIndexPowerOfTwoPick pins the P2C contract: the pick always fits,
// and nil comes back only when nothing fits at all — sampling never turns
// a placeable task into a capacity failure.
func TestIndexPowerOfTwoPick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := NewPool()
	for i := 0; i < 8; i++ {
		if err := pool.Add(NewNode(fmt.Sprintf("p2c-%d", i), Description{
			Cores: 2, MemoryMB: 8_000, SpeedFactor: 1,
		})); err != nil {
			t.Fatal(err)
		}
	}
	c := Constraints{Cores: 2}
	si := pool.IndexFor(c)
	var reserved []*Node
	for i := 0; i < 8; i++ {
		n := si.PowerOfTwoPick(c, rng)
		if n == nil {
			t.Fatalf("pick %d: nil with %d free nodes", i, 8-len(reserved))
		}
		if err := n.Reserve(c); err != nil {
			t.Fatalf("pick %d: chose %s which does not fit: %v", i, n.Name(), err)
		}
		reserved = append(reserved, n)
	}
	if n := si.PowerOfTwoPick(c, rng); n != nil {
		t.Fatalf("pick on a full pool returned %s, want nil", n.Name())
	}
	seen := map[string]bool{}
	for _, n := range reserved {
		if seen[n.Name()] {
			t.Fatalf("node %s picked twice while full", n.Name())
		}
		seen[n.Name()] = true
	}
}

// TestIndexAppendReusesBuffer pins the scratch-buffer contract of the
// Append variants: appending into a cleared buffer reuses its backing
// array instead of allocating.
func TestIndexAppendReusesBuffer(t *testing.T) {
	pool := NewPool()
	for i := 0; i < 4; i++ {
		if err := pool.Add(NewNode(fmt.Sprintf("buf-%d", i), Description{
			Cores: 4, MemoryMB: 8_000, SpeedFactor: 1,
		})); err != nil {
			t.Fatal(err)
		}
	}
	c := Constraints{Cores: 1}
	buf := pool.AppendFitting(nil, c)
	if len(buf) != 4 {
		t.Fatalf("AppendFitting returned %d nodes, want 4", len(buf))
	}
	again := pool.AppendFitting(buf[:0], c)
	if &again[0] != &buf[0] {
		t.Fatal("AppendFitting reallocated although the scratch buffer had capacity")
	}
	// With the signature precomputed (as the engine caches it per task)
	// the warm-buffer path must not allocate at all.
	sig := c.Signature()
	allocs := testing.AllocsPerRun(100, func() {
		buf = pool.IndexForSig(sig, c).AppendFitting(buf[:0], c)
	})
	if allocs != 0 {
		t.Fatalf("AppendFitting allocated %.1f times per call on a warm buffer, want 0", allocs)
	}
}
