// Placement index — the load-indexed node structure that ends the
// O(pool) placement scan. Placeability depends only on a task's
// constraint *signature* (Constraints.Signature), so the pool keeps one
// capability set per signature ever queried: the member nodes that could
// statically run such tasks, in pool insertion order, plus a min-heap of
// the undrained members ordered by busy-core fraction (ties broken by
// node name, the deterministic order scan- and index-backed picks agree
// on). Membership is maintained incrementally on Pool.Add/Remove and
// Node.Drain/Undrain; load order is maintained on every Reserve/Release
// through a node→index notification, so a MinLoad-style pick is a heap
// walk instead of a full-pool rescan and Fitting/Capable read cached
// capacity instead of taking every node's mutex.
//
// Locking: the index has one mutex and is a leaf — index methods never
// acquire a pool or node lock. Nodes notify their watching indexes while
// holding their own mutex (node.mu → idx.mu), so deliveries are ordered
// and the cache can never run backwards; queries read only the cached
// state and the immutable Description. The lock hierarchy is
// pool.mu → node.mu → idx.mu, acquired strictly left to right.
package resources

import (
	"math/rand"
	"sync"
)

// capState is a node's cached dynamic capacity inside the index: a copy
// of the fields Reserve/Release/Drain mutate, refreshed on every change.
type capState struct {
	freeCores int
	freeMemMB int64
	freeGPUs  int
	drained   bool
}

// fits mirrors Node.fits over the cached capacity.
func (st capState) fits(c Constraints) bool {
	return c.EffectiveCores() <= st.freeCores &&
		c.MemoryMB <= st.freeMemMB &&
		c.GPUs <= st.freeGPUs
}

// rec is the index's record of one node: identity, immutable description,
// cached capacity, load fraction, and the signature sets it belongs to.
type rec struct {
	n    *Node
	name string
	desc Description
	st   capState
	frac float64 // busy-core fraction (the MinLoad metric)
	sets []*sigSet
}

// recLess is the load order shared by the heap and the pick walk:
// ascending busy fraction, ties broken by node name so the winner never
// depends on pool insertion order.
func recLess(a, b *rec) bool {
	if a.frac != b.frac {
		return a.frac < b.frac
	}
	return a.name < b.name
}

func (r *rec) refresh(st capState) {
	r.st = st
	if r.desc.Cores == 0 {
		r.frac = 1
		return
	}
	r.frac = float64(r.desc.Cores-st.freeCores) / float64(r.desc.Cores)
}

// sigEntry is one node's membership in one signature set. pos is the
// entry's slot in the set's load heap, -1 while the node is drained
// (capable but not placeable).
type sigEntry struct {
	r   *rec
	pos int
}

// sigSet is one constraint signature's capability set: every node whose
// description satisfies the signature, in pool insertion order, plus the
// load heap over the undrained members.
type sigSet struct {
	sig     string
	c       Constraints // representative constraints for the signature
	members []*sigEntry // insertion order, drained included
	byName  map[string]*sigEntry
	heap    []*sigEntry // min-heap by (frac, name); undrained members only
	// fitCount is the number of undrained members that currently fit the
	// signature's capacity demand. Every query against this set carries
	// the same demand (equal signatures ⇒ equal Cores/MemoryMB/GPUs), so
	// the count answers "no capacity" in O(1) — the saturated-pool case
	// that would otherwise walk the whole heap to conclude nil.
	fitCount int
}

// entryFits reports whether a state counts toward fitCount.
func (s *sigSet) entryFits(st capState) bool {
	return !st.drained && st.fits(s.c)
}

func (s *sigSet) heapLess(i, j int) bool { return recLess(s.heap[i].r, s.heap[j].r) }

func (s *sigSet) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].pos, s.heap[j].pos = i, j
}

func (s *sigSet) heapPush(e *sigEntry) {
	e.pos = len(s.heap)
	s.heap = append(s.heap, e)
	s.heapUp(e.pos)
}

func (s *sigSet) heapRemove(i int) {
	last := len(s.heap) - 1
	if i != last {
		s.heapSwap(i, last)
	}
	s.heap[last].pos = -1
	s.heap = s.heap[:last]
	if i < last {
		s.heapDown(i)
		s.heapUp(i)
	}
}

func (s *sigSet) heapFix(i int) {
	s.heapDown(i)
	s.heapUp(i)
}

func (s *sigSet) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(i, parent) {
			return
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *sigSet) heapDown(i int) {
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && s.heapLess(r, l) {
			m = r
		}
		if !s.heapLess(m, i) {
			return
		}
		s.heapSwap(i, m)
		i = m
	}
}

// minFitting returns the least-loaded undrained member that currently
// fits c, walking the heap top-down and pruning every subtree whose root
// is already no better than the best fitting candidate found — by the
// heap property its descendants cannot improve on it either. The result
// is exactly the (frac, name)-minimum of the fitting set, i.e. what a
// full MinLoad scan with the name tie-break would pick, at a cost that
// is O(log n) when the least-loaded node fits (the common case) and
// never worse than one heap traversal.
func (s *sigSet) minFitting(c Constraints) *rec {
	if s.fitCount == 0 {
		return nil // saturated: answer in O(1), not a fruitless heap walk
	}
	var best *rec
	var walk func(i int)
	walk = func(i int) {
		if i >= len(s.heap) {
			return
		}
		r := s.heap[i].r
		if best != nil && !recLess(r, best) {
			return
		}
		if r.st.fits(c) {
			best = r
			return
		}
		walk(2*i + 1)
		walk(2*i + 2)
	}
	walk(0)
	return best
}

// Index is a pool's placement index. Every Pool owns one (created by
// NewPool and kept consistent by Add/Remove and node notifications);
// signature sets are built lazily on first query and maintained
// incrementally from then on.
type Index struct {
	mu    sync.Mutex
	recs  map[string]*rec
	order []*rec // pool insertion order (new sigSets inherit it)
	sigs  map[string]*sigSet
}

func newIndex() *Index {
	return &Index{
		recs: make(map[string]*rec),
		sigs: make(map[string]*sigSet),
	}
}

// addNode installs a node with the given snapshot of its state. Called
// with the node's mutex held (see Node.attachIndex), so no capacity
// change can slip between the snapshot and the installation.
func (x *Index) addNode(n *Node, st capState) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, dup := x.recs[n.name]; dup {
		return
	}
	r := &rec{n: n, name: n.name, desc: n.desc}
	r.refresh(st)
	x.recs[r.name] = r
	x.order = append(x.order, r)
	for _, s := range x.sigs {
		if r.desc.Satisfies(s.c) {
			x.joinLocked(s, r)
		}
	}
}

// removeNode drops a node from every signature set.
func (x *Index) removeNode(name string) {
	x.mu.Lock()
	defer x.mu.Unlock()
	r, ok := x.recs[name]
	if !ok {
		return
	}
	delete(x.recs, name)
	for i, o := range x.order {
		if o == r {
			x.order = append(x.order[:i], x.order[i+1:]...)
			break
		}
	}
	for _, s := range r.sets {
		e := s.byName[name]
		if e.pos >= 0 {
			s.heapRemove(e.pos)
		}
		if s.entryFits(r.st) {
			s.fitCount--
		}
		delete(s.byName, name)
		for i, m := range s.members {
			if m == e {
				s.members = append(s.members[:i], s.members[i+1:]...)
				break
			}
		}
	}
	r.sets = nil
}

// nodeChanged refreshes a node's cached capacity and re-positions it in
// every signature heap it belongs to. Called with the node's mutex held,
// after every Reserve/Release/Drain/Undrain.
func (x *Index) nodeChanged(name string, st capState) {
	x.mu.Lock()
	defer x.mu.Unlock()
	r, ok := x.recs[name]
	if !ok {
		return
	}
	was := r.st
	wasDrained := was.drained
	r.refresh(st)
	for _, s := range r.sets {
		e := s.byName[name]
		if of, nf := s.entryFits(was), s.entryFits(st); of != nf {
			if nf {
				s.fitCount++
			} else {
				s.fitCount--
			}
		}
		switch {
		case st.drained && !wasDrained:
			if e.pos >= 0 {
				s.heapRemove(e.pos)
			}
		case !st.drained && wasDrained:
			if e.pos < 0 {
				s.heapPush(e)
			}
		case e.pos >= 0:
			s.heapFix(e.pos)
		}
	}
}

// joinLocked adds a record to a signature set (membership at the end —
// callers preserve pool insertion order — and the heap unless drained).
func (x *Index) joinLocked(s *sigSet, r *rec) {
	e := &sigEntry{r: r, pos: -1}
	s.members = append(s.members, e)
	s.byName[r.name] = e
	r.sets = append(r.sets, s)
	if !r.st.drained {
		s.heapPush(e)
	}
	if s.entryFits(r.st) {
		s.fitCount++
	}
}

// sigFor returns the signature set for c, building it on first use from
// the per-node records (pool insertion order). sig must equal
// c.Signature(); callers that have it cached (the engine caches one per
// task) pass it in so the hot path does not rebuild the string.
func (x *Index) sigFor(sig string, c Constraints) *sigSet {
	x.mu.Lock()
	defer x.mu.Unlock()
	if s, ok := x.sigs[sig]; ok {
		return s
	}
	s := &sigSet{sig: sig, c: c, byName: make(map[string]*sigEntry)}
	for _, r := range x.order {
		if r.desc.Satisfies(c) {
			x.joinLocked(s, r)
		}
	}
	x.sigs[sig] = s
	return s
}

// SigIndex is the per-signature view handed to index-aware scheduling
// policies (sched.IndexedPolicy): capability membership plus load order
// for one constraint signature. Obtain one with Pool.IndexFor. The view
// stays valid across pool churn — it reads the live index under its
// lock on every call.
type SigIndex struct {
	x *Index
	s *sigSet
}

// IndexFor returns the placement-index view for c's constraint
// signature, building the capability set on first use.
func (p *Pool) IndexFor(c Constraints) SigIndex {
	return p.IndexForSig(c.Signature(), c)
}

// IndexForSig is IndexFor with the signature precomputed (it must equal
// c.Signature()) — the allocation-free lookup for callers that cache the
// signature per task, like the engine's ready buckets.
func (p *Pool) IndexForSig(sig string, c Constraints) SigIndex {
	return SigIndex{x: p.idx, s: p.idx.sigFor(sig, c)}
}

// MinLoadFitting returns the undrained member with the lowest busy-core
// fraction that currently fits c (ties by node name), or nil when no
// member fits — exactly the node a full MinLoad scan would pick.
func (si SigIndex) MinLoadFitting(c Constraints) *Node {
	si.x.mu.Lock()
	defer si.x.mu.Unlock()
	if r := si.s.minFitting(c); r != nil {
		return r.n
	}
	return nil
}

// FirstFitting returns the first member in pool insertion order that
// currently fits c and is not drained — Fitting(c)[0] without
// materializing the slice — or nil when no member fits.
func (si SigIndex) FirstFitting(c Constraints) *Node {
	si.x.mu.Lock()
	defer si.x.mu.Unlock()
	if si.s.fitCount == 0 {
		return nil
	}
	for _, e := range si.s.members {
		if !e.r.st.drained && e.r.st.fits(c) {
			return e.r.n
		}
	}
	return nil
}

// PowerOfTwoPick samples two undrained members uniformly through rng and
// returns the less loaded one that fits c ((frac, name) order). When
// neither sample fits it falls back to the exact heap walk, so nil is
// returned only when no member fits at all — sampling never turns a
// placeable task into a capacity failure.
func (si SigIndex) PowerOfTwoPick(c Constraints, rng *rand.Rand) *Node {
	si.x.mu.Lock()
	defer si.x.mu.Unlock()
	s := si.s
	n := len(s.heap)
	if n == 0 || s.fitCount == 0 {
		return nil
	}
	var a, b *rec
	if n == 1 {
		a = s.heap[0].r
	} else {
		a = s.heap[rng.Intn(n)].r
		b = s.heap[rng.Intn(n)].r
	}
	if a != nil && !a.st.fits(c) {
		a = nil
	}
	if b != nil && !b.st.fits(c) {
		b = nil
	}
	switch {
	case a != nil && (b == nil || b == a || recLess(a, b)):
		return a.n
	case b != nil:
		return b.n
	}
	if r := s.minFitting(c); r != nil {
		return r.n
	}
	return nil
}

// AppendFitting appends the members that currently fit c (undrained,
// enough free capacity) to dst in pool insertion order and returns the
// extended slice — the allocation-free Fitting for hot paths.
func (si SigIndex) AppendFitting(dst []*Node, c Constraints) []*Node {
	si.x.mu.Lock()
	defer si.x.mu.Unlock()
	if si.s.fitCount == 0 {
		return dst // saturated: the common no-capacity wave costs O(1)
	}
	for _, e := range si.s.members {
		if !e.r.st.drained && e.r.st.fits(c) {
			dst = append(dst, e.r.n)
		}
	}
	return dst
}

// AppendCapable appends every member (drained included — capability
// ignores load and cordons) to dst in pool insertion order.
func (si SigIndex) AppendCapable(dst []*Node) []*Node {
	si.x.mu.Lock()
	defer si.x.mu.Unlock()
	for _, e := range si.s.members {
		dst = append(dst, e.r.n)
	}
	return dst
}

// AnyFitting reports whether some member currently fits c.
func (si SigIndex) AnyFitting(c Constraints) bool {
	si.x.mu.Lock()
	defer si.x.mu.Unlock()
	return si.s.fitCount > 0
}

// Len returns the capability-set size (drained members included).
func (si SigIndex) Len() int {
	si.x.mu.Lock()
	defer si.x.mu.Unlock()
	return len(si.s.members)
}

// FitCount returns the number of members that currently fit the
// signature's reference constraints (undrained, enough free capacity) —
// the exact saturation counter the index maintains for O(1) no-capacity
// waves, exported as the autoscaler's per-signature supply signal.
func (si SigIndex) FitCount() int {
	si.x.mu.Lock()
	defer si.x.mu.Unlock()
	return si.s.fitCount
}
