package resources

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestElasticChurnProperty drives 2500 seeded random steps of the full
// elasticity surface — grow, shrink (drain-then-remove), reclaim — while
// random load reserves and releases cores across the pool, and checks
// the safety invariants after every step:
//
//   - counts never go negative and never exceed the provider's limit;
//   - at most one node drains at a time (a shrink burst cannot cordon
//     the whole pool before the first removal lands);
//   - a removed node is always bled dry (no running work was killed)
//     and is really gone from the pool;
//   - a reclaimed node has its cordon lifted and is placeable again
//     while load persists elsewhere — growth under pressure reuses the
//     draining node instead of paying for a fresh one;
//   - pool capacity stays consistent with the member nodes.
func TestElasticChurnProperty(t *testing.T) {
	const (
		steps    = 2500
		maxNodes = 12
	)
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			pool := NewPool()
			base := NewNode("base-0", CloudVM)
			if err := pool.Add(base); err != nil {
				t.Fatal(err)
			}
			m := NewElasticManager(
				NewSimProvider("fog", FogDevice, maxNodes, 0),
				ScalePolicy{MaxNodes: maxNodes, TasksPerCore: 2},
			)

			// Outstanding unit reservations per node name (the node may
			// have left the pool; its reservations must have been zero
			// at removal, so only live nodes appear here).
			load := map[string][]*Node{}
			hold := Constraints{Cores: 1}

			for step := 0; step < steps; step++ {
				switch rng.Intn(6) {
				case 0: // grow
					if _, _, err := m.GrowOne(pool); err == nil && pool.Len() > maxNodes+1 {
						t.Fatalf("step %d: pool grew past the provider limit: %d nodes", step, pool.Len())
					}
				case 1: // shrink: cordon or reap
					victim, err := m.ShrinkOne(pool)
					if err != nil {
						t.Fatalf("step %d: ShrinkOne: %v", step, err)
					}
					if victim != nil {
						if victim.Running() != 0 {
							t.Fatalf("step %d: removed %s with %d running tasks", step, victim.Name(), victim.Running())
						}
						if _, still := pool.Get(victim.Name()); still {
							t.Fatalf("step %d: removed %s still in pool", step, victim.Name())
						}
						if len(load[victim.Name()]) != 0 {
							t.Fatalf("step %d: removed %s with %d live reservations", step, victim.Name(), len(load[victim.Name()]))
						}
					}
				case 2: // reclaim a draining victim back into service
					if n := m.Reclaim(); n != nil {
						if n.Drained() {
							t.Fatalf("step %d: reclaimed %s still cordoned", step, n.Name())
						}
						if _, ok := pool.Get(n.Name()); !ok {
							t.Fatalf("step %d: reclaimed %s not in pool", step, n.Name())
						}
						if n.Running() == 0 && !n.CanReserve(hold) {
							t.Fatalf("step %d: reclaimed idle %s refuses placements", step, n.Name())
						}
					}
				case 3, 4: // place load on a random placeable node
					nodes := pool.Nodes()
					n := nodes[rng.Intn(len(nodes))]
					if n.CanReserve(hold) {
						if err := n.Reserve(hold); err != nil {
							t.Fatalf("step %d: CanReserve lied for %s: %v", step, n.Name(), err)
						}
						load[n.Name()] = append(load[n.Name()], n)
					}
				case 5: // finish some running work
					for name, ns := range load {
						if len(ns) == 0 {
							delete(load, name)
							continue
						}
						ns[len(ns)-1].Release(hold)
						load[name] = ns[:len(ns)-1]
						break
					}
				}

				// Invariants, every step.
				ec, dc, bled := m.ElasticCount(), m.DrainingCount(), m.DrainedCount()
				if ec < 0 || ec > maxNodes {
					t.Fatalf("step %d: ElasticCount = %d", step, ec)
				}
				if dc < 0 || dc > 1 {
					t.Fatalf("step %d: DrainingCount = %d, want 0 or 1 (one drain at a time)", step, dc)
				}
				if bled < 0 || bled > dc {
					t.Fatalf("step %d: DrainedCount = %d with %d draining", step, bled, dc)
				}
				if pool.Len() != ec+1 {
					t.Fatalf("step %d: pool has %d nodes, manager tracks %d elastic + base", step, pool.Len(), ec)
				}
				total, free := pool.TotalCores(), pool.FreeCores()
				if free < 0 || free > total {
					t.Fatalf("step %d: cores inconsistent: free %d of %d", step, free, total)
				}
				wantTotal := base.Desc().Cores + ec*FogDevice.Cores
				if total != wantTotal {
					t.Fatalf("step %d: TotalCores = %d, want %d", step, total, wantTotal)
				}
			}

			// Drain the churn to a clean end state: finish all work, then
			// shrink until the elastic fleet is gone — the books must
			// balance exactly.
			for _, ns := range load {
				for _, n := range ns {
					n.Release(hold)
				}
			}
			for i := 0; i < 4*maxNodes && m.ElasticCount() > 0; i++ {
				if _, err := m.ShrinkOne(pool); err != nil {
					t.Fatal(err)
				}
			}
			if m.ElasticCount() != 0 || m.DrainingCount() != 0 {
				t.Fatalf("fleet not fully shed: %d elastic, %d draining", m.ElasticCount(), m.DrainingCount())
			}
			if pool.Len() != 1 || pool.TotalCores() != base.Desc().Cores {
				t.Fatalf("pool not back to base: %d nodes, %d cores", pool.Len(), pool.TotalCores())
			}
		})
	}
}
