// Package resources models the heterogeneous computing resources of an
// advanced cyberinfrastructure platform (paper Sec. III): HPC nodes, cloud
// VMs, fog devices and edge sensors, each described by cores, memory,
// accelerators and installed software.
//
// It implements the two features the paper singles out:
//
//   - resource *constraints* on task types ("a specific type of processor,
//     such as a GPU, … a number of cores, memory available for the task or
//     the existence of a specific software", Sec. VI-A), matched dynamically
//     at scheduling time so variable memory constraints work (E2);
//   - *elasticity* "in clouds, federated clouds and in SLURM managed
//     clusters" (Sec. VI-A) through pluggable providers and a scaling policy.
package resources

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Class categorises a node within the computing continuum.
type Class int

// Continuum tiers, from the paper's Fig. 5 plus the HPC systems of Sec. III.
const (
	// HPC is a supercomputer node (MareNostrum-class).
	HPC Class = iota + 1
	// Cloud is a public/private cloud VM.
	Cloud
	// Fog is a capable edge aggregator (smartphone, gateway).
	Fog
	// Edge is a sensor/instrument-class device.
	Edge
)

// String returns the tier name.
func (c Class) String() string {
	switch c {
	case HPC:
		return "hpc"
	case Cloud:
		return "cloud"
	case Fog:
		return "fog"
	case Edge:
		return "edge"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Description is the static capability sheet of a node.
type Description struct {
	// Cores is the number of CPU cores.
	Cores int
	// MemoryMB is the RAM available to tasks, in megabytes.
	MemoryMB int64
	// GPUs is the number of accelerator devices.
	GPUs int
	// Software lists installed packages task constraints can require.
	Software []string
	// Class is the continuum tier.
	Class Class
	// SpeedFactor scales task durations: a task of base duration d runs
	// in d / SpeedFactor. 1.0 is the reference (HPC core); fog and edge
	// devices are typically < 1.
	SpeedFactor float64
	// IdleWatts and ActiveWattsPerCore feed the energy model.
	IdleWatts          float64
	ActiveWattsPerCore float64
}

// Constraints restrict where a task may run, mirroring the COMPSs
// @constraint annotation. Zero values mean "no requirement".
type Constraints struct {
	// Cores this task occupies while running (0 ⇒ 1).
	Cores int
	// MemoryMB the task needs reserved.
	MemoryMB int64
	// GPUs the task needs reserved.
	GPUs int
	// Software names that must be installed on the node.
	Software []string
	// Class restricts to one continuum tier (0 ⇒ any).
	Class Class
	// Nodes > 1 marks a multi-node (MPI) task; each node contributes
	// Cores cores.
	Nodes int
}

// EffectiveCores returns Cores, defaulting to 1.
func (c Constraints) EffectiveCores() int {
	if c.Cores <= 0 {
		return 1
	}
	return c.Cores
}

// EffectiveNodes returns Nodes, defaulting to 1.
func (c Constraints) EffectiveNodes() int {
	if c.Nodes <= 0 {
		return 1
	}
	return c.Nodes
}

// Signature canonicalises the constraints into a string key. Two tasks
// with the same signature are placeable on exactly the same nodes, which
// is what lets scheduling engines shard their ready queues per signature.
// The zero value (no requirements) returns a constant, so unconstrained
// hot paths pay nothing.
func (c Constraints) Signature() string {
	if c.Cores == 0 && c.MemoryMB == 0 && c.GPUs == 0 &&
		c.Nodes == 0 && c.Class == 0 && len(c.Software) == 0 {
		return "-"
	}
	b := make([]byte, 0, 32)
	b = strconv.AppendInt(b, int64(c.Cores), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, c.MemoryMB, 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(c.GPUs), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(c.Nodes), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(c.Class), 10)
	for _, sw := range c.Software {
		// Length-prefixed so names containing the separator cannot make
		// two different constraint sets collide into one signature.
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(len(sw)), 10)
		b = append(b, ':')
		b = append(b, sw...)
	}
	return string(b)
}

// Satisfies reports whether a node with this description can ever run a
// task with the given constraints (capacity check, ignoring current load).
func (d Description) Satisfies(c Constraints) bool {
	if c.EffectiveCores() > d.Cores {
		return false
	}
	if c.MemoryMB > d.MemoryMB {
		return false
	}
	if c.GPUs > d.GPUs {
		return false
	}
	if c.Class != 0 && c.Class != d.Class {
		return false
	}
	for _, sw := range c.Software {
		found := false
		for _, have := range d.Software {
			if have == sw {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Profiles for common node types. SpeedFactor and power numbers are
// representative, not measured; experiments only rely on their ordering.
var (
	// MareNostrumNode mirrors the 48-core nodes of the paper's GUIDANCE
	// runs (Sec. VI-A: "100 nodes of the Marenostrum supercomputer
	// (4800 cores)").
	MareNostrumNode = Description{
		Cores: 48, MemoryMB: 96_000, Class: HPC, SpeedFactor: 1.0,
		IdleWatts: 150, ActiveWattsPerCore: 6,
	}
	// CloudVM is a general-purpose 8-core VM.
	CloudVM = Description{
		Cores: 8, MemoryMB: 32_000, Class: Cloud, SpeedFactor: 0.8,
		IdleWatts: 40, ActiveWattsPerCore: 8,
	}
	// FogDevice is a smartphone/gateway-class device (paper Sec. VI-B).
	FogDevice = Description{
		Cores: 4, MemoryMB: 6_000, Class: Fog, SpeedFactor: 0.25,
		IdleWatts: 2, ActiveWattsPerCore: 1.0,
	}
	// EdgeSensor can run tiny filtering tasks only.
	EdgeSensor = Description{
		Cores: 1, MemoryMB: 512, Class: Edge, SpeedFactor: 0.05,
		IdleWatts: 0.5, ActiveWattsPerCore: 0.7,
	}
)

// Errors returned by reservation and pool operations.
var (
	ErrInsufficient = errors.New("resources: insufficient free capacity")
	ErrUnknownNode  = errors.New("resources: unknown node")
	ErrNodeExists   = errors.New("resources: node already in pool")
)

// Node is a stateful compute node: a static description plus current free
// capacity. Node is safe for concurrent use.
type Node struct {
	name string
	desc Description

	mu        sync.Mutex
	freeCores int
	freeMemMB int64
	freeGPUs  int
	running   int
	drained   bool
	// watchers are the placement indexes of the pools holding this node;
	// they are notified (under mu, so deliveries are ordered) after every
	// capacity or drain-state change.
	watchers []*Index
}

// NewNode creates a node with all capacity free.
func NewNode(name string, desc Description) *Node {
	if desc.SpeedFactor <= 0 {
		desc.SpeedFactor = 1.0
	}
	return &Node{
		name:      name,
		desc:      desc,
		freeCores: desc.Cores,
		freeMemMB: desc.MemoryMB,
		freeGPUs:  desc.GPUs,
	}
}

// stateLocked snapshots the index-relevant dynamic state. Callers hold mu.
func (n *Node) stateLocked() capState {
	return capState{
		freeCores: n.freeCores,
		freeMemMB: n.freeMemMB,
		freeGPUs:  n.freeGPUs,
		drained:   n.drained,
	}
}

// notifyLocked delivers the current state to every watching index.
// Callers hold mu, so notifications arrive in mutation order and a
// watcher's cache can never run backwards.
func (n *Node) notifyLocked() {
	if len(n.watchers) == 0 {
		return
	}
	st := n.stateLocked()
	for _, w := range n.watchers {
		w.nodeChanged(n.name, st)
	}
}

// attachIndex registers idx as a watcher and installs the node's current
// state in it, atomically with respect to concurrent Reserve/Release.
func (n *Node) attachIndex(idx *Index) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.watchers = append(n.watchers, idx)
	idx.addNode(n, n.stateLocked())
}

// detachIndex unregisters idx and drops the node from it.
func (n *Node) detachIndex(idx *Index) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, w := range n.watchers {
		if w == idx {
			n.watchers = append(n.watchers[:i], n.watchers[i+1:]...)
			break
		}
	}
	idx.removeNode(n.name)
}

// Name returns the node's unique name.
func (n *Node) Name() string { return n.name }

// Desc returns the static description.
func (n *Node) Desc() Description { return n.desc }

// FreeCores returns currently unreserved cores.
func (n *Node) FreeCores() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeCores
}

// FreeMemoryMB returns currently unreserved memory.
func (n *Node) FreeMemoryMB() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeMemMB
}

// Running returns the number of reservations currently held.
func (n *Node) Running() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.running
}

// Drain cordons the node: new reservations are refused while running work
// keeps its capacity until released — the graceful half of deregistration
// (a crash is Pool.Remove; a drain lets the scheduler bleed the node dry
// first).
func (n *Node) Drain() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.drained = true
	n.notifyLocked()
}

// Undrain lifts a cordon.
func (n *Node) Undrain() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.drained = false
	n.notifyLocked()
}

// Drained reports whether the node is cordoned.
func (n *Node) Drained() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.drained
}

// CanReserve reports whether the node currently has free capacity for c
// (and statically satisfies it). Drained nodes refuse all reservations.
func (n *Node) CanReserve(c Constraints) bool {
	if !n.desc.Satisfies(c) {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.drained && n.fits(c)
}

func (n *Node) fits(c Constraints) bool {
	return c.EffectiveCores() <= n.freeCores &&
		c.MemoryMB <= n.freeMemMB &&
		c.GPUs <= n.freeGPUs
}

// Reserve atomically claims the capacity demanded by c, or returns
// ErrInsufficient without side effects.
func (n *Node) Reserve(c Constraints) error {
	if !n.desc.Satisfies(c) {
		return fmt.Errorf("%w: %s cannot satisfy %+v", ErrInsufficient, n.name, c)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.drained || !n.fits(c) {
		return ErrInsufficient
	}
	n.freeCores -= c.EffectiveCores()
	n.freeMemMB -= c.MemoryMB
	n.freeGPUs -= c.GPUs
	n.running++
	n.notifyLocked()
	return nil
}

// Release returns previously reserved capacity. Releasing more than was
// reserved clamps to full capacity (and indicates a caller bug, but must
// not corrupt accounting).
func (n *Node) Release(c Constraints) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.freeCores += c.EffectiveCores()
	if n.freeCores > n.desc.Cores {
		n.freeCores = n.desc.Cores
	}
	n.freeMemMB += c.MemoryMB
	if n.freeMemMB > n.desc.MemoryMB {
		n.freeMemMB = n.desc.MemoryMB
	}
	n.freeGPUs += c.GPUs
	if n.freeGPUs > n.desc.GPUs {
		n.freeGPUs = n.desc.GPUs
	}
	if n.running > 0 {
		n.running--
	}
	n.notifyLocked()
}

// BusyCores returns the number of reserved cores.
func (n *Node) BusyCores() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.desc.Cores - n.freeCores
}

// Pool is a named collection of nodes; the runtime's view of the available
// infrastructure. The set can change at execution time ("the list of
// resources available to the runtime can be configured at execution time",
// paper Sec. VI-B). Pool is safe for concurrent use.
type Pool struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	order []string // insertion order for deterministic iteration
	idx   *Index   // placement index (see index.go); never nil
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{nodes: make(map[string]*Node), idx: newIndex()}
}

// Add inserts a node; the name must be unique. The placement index picks
// the node up atomically with the insertion.
func (p *Pool) Add(n *Node) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.nodes[n.Name()]; dup {
		return fmt.Errorf("%w: %s", ErrNodeExists, n.Name())
	}
	p.nodes[n.Name()] = n
	p.order = append(p.order, n.Name())
	n.attachIndex(p.idx)
	return nil
}

// Remove deletes a node by name and drops it from the placement index.
func (p *Pool) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.nodes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	delete(p.nodes, name)
	for i, o := range p.order {
		if o == name {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	n.detachIndex(p.idx)
	return nil
}

// Get returns a node by name.
func (p *Pool) Get(name string) (*Node, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n, ok := p.nodes[name]
	return n, ok
}

// Nodes returns the nodes in insertion order.
func (p *Pool) Nodes() []*Node {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Node, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, p.nodes[name])
	}
	return out
}

// Len returns the number of nodes.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.nodes)
}

// Fitting returns the nodes that currently have free capacity for c, in
// insertion order. Served from the placement index: one signature-set
// lookup over cached capacity instead of a full-pool scan that takes
// every node's mutex.
func (p *Pool) Fitting(c Constraints) []*Node {
	return p.AppendFitting(nil, c)
}

// AppendFitting is Fitting appending into a caller-owned buffer — the
// allocation-free variant for placement hot paths.
func (p *Pool) AppendFitting(dst []*Node, c Constraints) []*Node {
	return p.IndexFor(c).AppendFitting(dst, c)
}

// Capable returns the nodes that could ever run c (ignoring load and
// cordons), in insertion order.
func (p *Pool) Capable(c Constraints) []*Node {
	return p.AppendCapable(nil, c)
}

// AppendCapable is Capable appending into a caller-owned buffer.
func (p *Pool) AppendCapable(dst []*Node, c Constraints) []*Node {
	return p.IndexFor(c).AppendCapable(dst)
}

// AnyCapable reports whether some node could ever run c (ignoring load),
// without allocating — the submit-path admission check. O(1) after the
// signature's first query.
func (p *Pool) AnyCapable(c Constraints) bool {
	return p.IndexFor(c).Len() > 0
}

// TotalCores sums cores across the pool.
func (p *Pool) TotalCores() int {
	total := 0
	for _, n := range p.Nodes() {
		total += n.Desc().Cores
	}
	return total
}

// FreeCores sums free cores across the pool.
func (p *Pool) FreeCores() int {
	total := 0
	for _, n := range p.Nodes() {
		total += n.FreeCores()
	}
	return total
}

// Names returns node names sorted lexicographically.
func (p *Pool) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, len(p.order))
	copy(out, p.order)
	sort.Strings(out)
	return out
}
