package resources

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Federation aggregates several providers — the paper's "clouds and
// federated clouds" (Sec. VI-A). Acquire picks the cheapest provider with
// capacity; Release routes the node back to the provider that produced it.
type Federation struct {
	name string

	mu      sync.Mutex
	members []federated
	owner   map[string]Provider // node name -> producing provider
}

type federated struct {
	provider Provider
	costPerH float64
}

var _ Provider = (*Federation)(nil)

// ErrNoProvider is returned when every member is at capacity.
var ErrNoProvider = errors.New("resources: no federated provider has capacity")

// NewFederation creates an empty federation.
func NewFederation(name string) *Federation {
	return &Federation{name: name, owner: make(map[string]Provider)}
}

// AddProvider registers a member with its cost per node-hour.
func (f *Federation) AddProvider(p Provider, costPerHour float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.members = append(f.members, federated{provider: p, costPerH: costPerHour})
}

// Name implements Provider.
func (f *Federation) Name() string { return f.name }

// Acquire implements Provider: members are tried cheapest-first.
func (f *Federation) Acquire() (*Node, time.Duration, error) {
	f.mu.Lock()
	members := append([]federated(nil), f.members...)
	f.mu.Unlock()
	// Stable selection sort by cost (few members; clarity over speed).
	for i := 0; i < len(members); i++ {
		best := i
		for j := i + 1; j < len(members); j++ {
			if members[j].costPerH < members[best].costPerH {
				best = j
			}
		}
		members[i], members[best] = members[best], members[i]
	}
	var lastErr error = ErrNoProvider
	for _, m := range members {
		node, delay, err := m.provider.Acquire()
		if err != nil {
			lastErr = err
			continue
		}
		f.mu.Lock()
		f.owner[node.Name()] = m.provider
		f.mu.Unlock()
		return node, delay, nil
	}
	return nil, 0, fmt.Errorf("federation %s: %w", f.name, lastErr)
}

// Release implements Provider.
func (f *Federation) Release(node *Node) error {
	f.mu.Lock()
	p, ok := f.owner[node.Name()]
	delete(f.owner, node.Name())
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("federation %s: %w: %s", f.name, ErrUnknownNode, node.Name())
	}
	return p.Release(node)
}
