package resources

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDescriptionSatisfies(t *testing.T) {
	d := Description{Cores: 8, MemoryMB: 16000, GPUs: 1, Software: []string{"blas", "mpi"}, Class: HPC}
	cases := []struct {
		name string
		c    Constraints
		want bool
	}{
		{"empty", Constraints{}, true},
		{"cores ok", Constraints{Cores: 8}, true},
		{"too many cores", Constraints{Cores: 9}, false},
		{"memory ok", Constraints{MemoryMB: 16000}, true},
		{"too much memory", Constraints{MemoryMB: 16001}, false},
		{"gpu ok", Constraints{GPUs: 1}, true},
		{"too many gpus", Constraints{GPUs: 2}, false},
		{"software present", Constraints{Software: []string{"mpi"}}, true},
		{"software missing", Constraints{Software: []string{"cuda"}}, false},
		{"class match", Constraints{Class: HPC}, true},
		{"class mismatch", Constraints{Class: Fog}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := d.Satisfies(tc.c); got != tc.want {
				t.Fatalf("Satisfies(%+v) = %v, want %v", tc.c, got, tc.want)
			}
		})
	}
}

func TestEffectiveDefaults(t *testing.T) {
	var c Constraints
	if c.EffectiveCores() != 1 || c.EffectiveNodes() != 1 {
		t.Fatal("zero constraints should default to 1 core, 1 node")
	}
}

func TestReserveRelease(t *testing.T) {
	n := NewNode("n1", Description{Cores: 4, MemoryMB: 1000, Class: Cloud})
	c := Constraints{Cores: 3, MemoryMB: 600}
	if err := n.Reserve(c); err != nil {
		t.Fatal(err)
	}
	if n.FreeCores() != 1 || n.FreeMemoryMB() != 400 {
		t.Fatalf("after reserve: cores=%d mem=%d", n.FreeCores(), n.FreeMemoryMB())
	}
	// Second reservation must fail on memory.
	if err := n.Reserve(Constraints{MemoryMB: 500}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-reserve err = %v, want ErrInsufficient", err)
	}
	n.Release(c)
	if n.FreeCores() != 4 || n.FreeMemoryMB() != 1000 || n.Running() != 0 {
		t.Fatal("release did not restore capacity")
	}
}

func TestReleaseClampsToCapacity(t *testing.T) {
	n := NewNode("n1", Description{Cores: 2, MemoryMB: 100})
	n.Release(Constraints{Cores: 10, MemoryMB: 1000})
	if n.FreeCores() != 2 || n.FreeMemoryMB() != 100 {
		t.Fatal("release exceeded capacity")
	}
}

func TestConcurrentReservationsNeverOversubscribe(t *testing.T) {
	n := NewNode("n1", Description{Cores: 10, MemoryMB: 10000})
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if n.Reserve(Constraints{Cores: 1, MemoryMB: 1000}) == nil {
				mu.Lock()
				granted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if granted != 10 {
		t.Fatalf("granted %d reservations on a 10-slot node", granted)
	}
}

func TestPoolAddRemove(t *testing.T) {
	p := NewPool()
	if err := p.Add(NewNode("a", MareNostrumNode)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(NewNode("a", MareNostrumNode)); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate add err = %v", err)
	}
	if err := p.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("a"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("remove missing err = %v", err)
	}
}

func TestPoolFittingVsCapable(t *testing.T) {
	p := NewPool()
	small := NewNode("small", Description{Cores: 2, MemoryMB: 1000})
	big := NewNode("big", Description{Cores: 16, MemoryMB: 64000})
	_ = p.Add(small)
	_ = p.Add(big)

	c := Constraints{Cores: 2}
	if got := len(p.Capable(c)); got != 2 {
		t.Fatalf("Capable = %d nodes, want 2", got)
	}
	// Fill small: it stays capable but stops fitting.
	if err := small.Reserve(Constraints{Cores: 2}); err != nil {
		t.Fatal(err)
	}
	fitting := p.Fitting(c)
	if len(fitting) != 1 || fitting[0].Name() != "big" {
		t.Fatalf("Fitting = %v", fitting)
	}
	if got := len(p.Capable(c)); got != 2 {
		t.Fatalf("Capable after load = %d nodes, want 2", got)
	}
}

func TestPoolIterationDeterministic(t *testing.T) {
	p := NewPool()
	for _, name := range []string{"c", "a", "b"} {
		_ = p.Add(NewNode(name, FogDevice))
	}
	nodes := p.Nodes()
	want := []string{"c", "a", "b"} // insertion order
	for i, n := range nodes {
		if n.Name() != want[i] {
			t.Fatalf("iteration order %v, want insertion order %v", nodes, want)
		}
	}
	names := p.Names()
	wantSorted := []string{"a", "b", "c"}
	for i := range names {
		if names[i] != wantSorted[i] {
			t.Fatalf("Names() = %v, want sorted", names)
		}
	}
}

func TestSimProviderLimit(t *testing.T) {
	prov := NewSimProvider("aws", CloudVM, 2, 30*time.Second)
	n1, d, err := prov.Acquire()
	if err != nil || n1 == nil || d != 30*time.Second {
		t.Fatalf("first acquire: %v %v %v", n1, d, err)
	}
	if _, _, err := prov.Acquire(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prov.Acquire(); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-limit acquire err = %v", err)
	}
	if err := prov.Release(n1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := prov.Acquire(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestElasticGrowAndShrink(t *testing.T) {
	prov := NewSimProvider("cloud", CloudVM, 8, 0)
	mgr := NewElasticManager(prov, ScalePolicy{MaxNodes: 4, TasksPerCore: 1, IdleCoresToShrink: 0})
	pool := NewPool()

	// Empty pool + pending work ⇒ grow.
	if d := mgr.Evaluate(pool, 10); d != Grow {
		t.Fatalf("decision = %v, want grow", d)
	}
	n, _, err := mgr.GrowOne(pool)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Len() != 1 || mgr.ElasticCount() != 1 {
		t.Fatal("grow did not register node")
	}

	// Massive backlog ⇒ keep growing until MaxNodes.
	grew := 1
	for mgr.Evaluate(pool, 1000) == Grow {
		if _, _, err := mgr.GrowOne(pool); err != nil {
			t.Fatal(err)
		}
		grew++
	}
	if grew != 4 {
		t.Fatalf("grew to %d nodes, want MaxNodes=4", grew)
	}

	// Idle ⇒ shrink back down to MinNodes.
	shrunk := 0
	for mgr.Evaluate(pool, 0) == Shrink {
		v, err := mgr.ShrinkOne(pool)
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			break
		}
		shrunk++
	}
	if shrunk != 4 || pool.Len() != 0 {
		t.Fatalf("shrunk %d, pool %d nodes", shrunk, pool.Len())
	}
	_ = n
}

func TestShrinkNeverRemovesBusyNodes(t *testing.T) {
	prov := NewSimProvider("cloud", CloudVM, 4, 0)
	mgr := NewElasticManager(prov, ScalePolicy{MaxNodes: 4, IdleCoresToShrink: 0})
	pool := NewPool()
	n1, _, _ := mgr.GrowOne(pool)
	if err := n1.Reserve(Constraints{Cores: 1}); err != nil {
		t.Fatal(err)
	}
	// A busy victim is cordoned (drain-then-remove), never removed while
	// its reservation is live.
	v, err := mgr.ShrinkOne(pool)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("shrunk busy node %s", v.Name())
	}
	if pool.Len() != 1 {
		t.Fatal("busy node left the pool")
	}
}

// Property: for any sequence of reserve/release pairs, free capacity never
// goes negative and never exceeds the description.
func TestReservationInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		n := NewNode("x", Description{Cores: 8, MemoryMB: 8000, GPUs: 2})
		var held []Constraints
		for _, op := range ops {
			if op%2 == 0 {
				c := Constraints{
					Cores:    int(op%4) + 1,
					MemoryMB: int64(op%3) * 1000,
					GPUs:     int(op % 2),
				}
				if n.Reserve(c) == nil {
					held = append(held, c)
				}
			} else if len(held) > 0 {
				n.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
			if n.FreeCores() < 0 || n.FreeCores() > 8 {
				return false
			}
			if n.FreeMemoryMB() < 0 || n.FreeMemoryMB() > 8000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{HPC: "hpc", Cloud: "cloud", Fog: "fog", Edge: "edge"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestFederationPrefersCheapest(t *testing.T) {
	cheap := NewSimProvider("spot", CloudVM, 2, 0)
	pricey := NewSimProvider("ondemand", CloudVM, 2, 0)
	fed := NewFederation("multi-cloud")
	fed.AddProvider(pricey, 0.50)
	fed.AddProvider(cheap, 0.10)

	// First two acquisitions drain the cheap provider.
	for i := 0; i < 2; i++ {
		n, _, err := fed.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if got := n.Name(); got[:4] != "spot" {
			t.Fatalf("acquisition %d came from %s, want spot", i, got)
		}
	}
	// Third spills to the expensive one.
	n3, _, err := fed.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if n3.Name()[:8] != "ondemand" {
		t.Fatalf("spill went to %s", n3.Name())
	}
	// Fourth drains the expensive provider; fifth fails.
	if _, _, err := fed.Acquire(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fed.Acquire(); err == nil {
		t.Fatal("over-capacity acquire succeeded")
	}

	// Release routes back to the producing provider.
	if err := fed.Release(n3); err != nil {
		t.Fatal(err)
	}
	if pricey.Granted() != 1 {
		t.Fatalf("ondemand granted = %d after release, want 1", pricey.Granted())
	}
	if err := fed.Release(n3); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestFederationWithElasticManager(t *testing.T) {
	cheap := NewSimProvider("edge", FogDevice, 2, 0)
	big := NewSimProvider("cloud", CloudVM, 4, 0)
	fed := NewFederation("continuum")
	fed.AddProvider(cheap, 0.05)
	fed.AddProvider(big, 0.40)
	mgr := NewElasticManager(fed, ScalePolicy{MaxNodes: 6, TasksPerCore: 1, IdleCoresToShrink: 0})
	pool := NewPool()
	grown := 0
	for mgr.Evaluate(pool, 1000) == Grow {
		if _, _, err := mgr.GrowOne(pool); err != nil {
			t.Fatal(err)
		}
		grown++
	}
	if grown != 6 {
		t.Fatalf("grew %d nodes, want 6 (2 edge + 4 cloud)", grown)
	}
	if cheap.Granted() != 2 || big.Granted() != 4 {
		t.Fatalf("granted edge=%d cloud=%d", cheap.Granted(), big.Granted())
	}
	for {
		v, err := mgr.ShrinkOne(pool)
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			break
		}
	}
	if cheap.Granted() != 0 || big.Granted() != 0 {
		t.Fatalf("after shrink: edge=%d cloud=%d", cheap.Granted(), big.Granted())
	}
}

// Downscaling is drain-then-remove: a busy victim is cordoned first and
// only removed once its running work has released — never killed.
func TestShrinkDrainsBusyNodeBeforeRemoval(t *testing.T) {
	prov := NewSimProvider("cloud", CloudVM, 4, 0)
	mgr := NewElasticManager(prov, ScalePolicy{MaxNodes: 4, IdleCoresToShrink: 0})
	pool := NewPool()
	n1, _, _ := mgr.GrowOne(pool)
	work := Constraints{Cores: 1}
	if err := n1.Reserve(work); err != nil {
		t.Fatal(err)
	}

	// Phase 1: the busy node is cordoned, not removed.
	v, err := mgr.ShrinkOne(pool)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("removed busy node %s", v.Name())
	}
	if !n1.Drained() {
		t.Fatal("busy victim not cordoned")
	}
	if mgr.DrainingCount() != 1 {
		t.Fatalf("draining count = %d, want 1", mgr.DrainingCount())
	}
	if err := n1.Reserve(work); err == nil {
		t.Fatal("cordoned node accepted a new reservation")
	}
	// Still bleeding: a second call removes nothing.
	if v, _ := mgr.ShrinkOne(pool); v != nil {
		t.Fatalf("removed still-busy node %s", v.Name())
	}

	// The work finishes; phase 2 reaps the node.
	n1.Release(work)
	v, err = mgr.ShrinkOne(pool)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Name() != n1.Name() {
		t.Fatalf("reaped %v, want %s", v, n1.Name())
	}
	if pool.Len() != 0 || prov.Granted() != 0 || mgr.ElasticCount() != 0 {
		t.Fatalf("pool=%d granted=%d elastic=%d after reap, want all 0",
			pool.Len(), prov.Granted(), mgr.ElasticCount())
	}
}

// A load spike mid-drain reclaims the cordoned node instead of paying the
// provider for a new one.
func TestReclaimCancelsDrain(t *testing.T) {
	prov := NewSimProvider("cloud", CloudVM, 1, 0)
	mgr := NewElasticManager(prov, ScalePolicy{MaxNodes: 1, TasksPerCore: 1, IdleCoresToShrink: 0})
	pool := NewPool()
	n1, _, _ := mgr.GrowOne(pool)
	work := Constraints{Cores: 1}
	if err := n1.Reserve(work); err != nil {
		t.Fatal(err)
	}
	if v, _ := mgr.ShrinkOne(pool); v != nil {
		t.Fatalf("removed busy node %s", v.Name())
	}
	// Pending work + a draining node ⇒ Grow, even at MaxNodes.
	if d := mgr.Evaluate(pool, 5); d != Grow {
		t.Fatalf("decision = %v, want grow (reclaim)", d)
	}
	n := mgr.Reclaim()
	if n == nil || n.Name() != n1.Name() {
		t.Fatalf("reclaimed %v, want %s", n, n1.Name())
	}
	if n1.Drained() || mgr.DrainingCount() != 0 {
		t.Fatal("reclaimed node still cordoned")
	}
	n1.Release(work)
	if err := n1.Reserve(work); err != nil {
		t.Fatalf("reclaimed node refuses work: %v", err)
	}
}

// The cordon hook (engine DrainNode in production) sees every victim.
func TestShrinkUsesCordonHook(t *testing.T) {
	prov := NewSimProvider("cloud", CloudVM, 1, 0)
	mgr := NewElasticManager(prov, ScalePolicy{MaxNodes: 1, IdleCoresToShrink: 0})
	pool := NewPool()
	n1, _, _ := mgr.GrowOne(pool)
	var cordoned []string
	mgr.SetCordon(func(name string) error {
		cordoned = append(cordoned, name)
		n, ok := pool.Get(name)
		if !ok {
			t.Fatalf("cordon hook called for %s after pool removal", name)
		}
		n.Drain()
		return nil
	})
	v, err := mgr.ShrinkOne(pool)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Name() != n1.Name() {
		t.Fatalf("shrunk %v, want idle %s", v, n1.Name())
	}
	if len(cordoned) != 1 || cordoned[0] != n1.Name() {
		t.Fatalf("cordon hook saw %v, want [%s]", cordoned, n1.Name())
	}
}
