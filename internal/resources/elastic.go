package resources

import (
	"fmt"
	"sync"
	"time"
)

// Provider acquires and releases nodes on demand: the paper's "different
// connectors, each bridging to each provider API" (Sec. VI-A). Providers
// must be safe for concurrent use.
type Provider interface {
	// Name identifies the provider ("aws-sim", "slurm-sim", …).
	Name() string
	// Acquire provisions one node of the provider's flavour. The
	// returned delay is the provisioning time (VM boot, SLURM queue
	// wait) that the caller must account for before the node is usable.
	Acquire() (node *Node, delay time.Duration, err error)
	// Release decommissions a node previously acquired.
	Release(node *Node) error
}

// SimProvider is an in-memory cloud/SLURM connector with a capacity limit
// and a fixed provisioning delay. It satisfies Provider.
type SimProvider struct {
	name  string
	desc  Description
	delay time.Duration
	limit int

	mu      sync.Mutex
	serial  int
	granted int
}

var _ Provider = (*SimProvider)(nil)

// NewSimProvider returns a provider that hands out nodes with the given
// description, up to limit concurrently, after the given provisioning delay.
func NewSimProvider(name string, desc Description, limit int, delay time.Duration) *SimProvider {
	return &SimProvider{name: name, desc: desc, delay: delay, limit: limit}
}

// Name implements Provider.
func (s *SimProvider) Name() string { return s.name }

// Acquire implements Provider.
func (s *SimProvider) Acquire() (*Node, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.granted >= s.limit {
		return nil, 0, fmt.Errorf("provider %s: %w (limit %d)", s.name, ErrInsufficient, s.limit)
	}
	s.granted++
	s.serial++
	name := fmt.Sprintf("%s-%d", s.name, s.serial)
	return NewNode(name, s.desc), s.delay, nil
}

// Release implements Provider.
func (s *SimProvider) Release(*Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.granted > 0 {
		s.granted--
	}
	return nil
}

// Granted reports how many nodes are currently provisioned.
func (s *SimProvider) Granted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.granted
}

// ScalePolicy tunes the elasticity decision.
type ScalePolicy struct {
	// MinNodes and MaxNodes bound the elastic part of the pool.
	MinNodes, MaxNodes int
	// TasksPerCore is the pending-work threshold that triggers growth:
	// grow while pending tasks > TasksPerCore × current cores.
	TasksPerCore float64
	// IdleCoresToShrink triggers shrink when free cores exceed it and
	// nothing is pending.
	IdleCoresToShrink int
}

// DefaultScalePolicy grows at 2 pending tasks per core and shrinks when a
// whole node's worth of cores sits idle.
func DefaultScalePolicy() ScalePolicy {
	return ScalePolicy{MinNodes: 0, MaxNodes: 16, TasksPerCore: 2, IdleCoresToShrink: 8}
}

// ScaleDecision is the outcome of an elasticity evaluation.
type ScaleDecision int

// Elasticity outcomes.
const (
	// Hold keeps the pool as is.
	Hold ScaleDecision = iota + 1
	// Grow acquires one more node.
	Grow
	// Shrink releases one idle node.
	Shrink
)

// String returns the decision name.
func (d ScaleDecision) String() string {
	switch d {
	case Hold:
		return "hold"
	case Grow:
		return "grow"
	case Shrink:
		return "shrink"
	default:
		return fmt.Sprintf("ScaleDecision(%d)", int(d))
	}
}

// ElasticManager implements COMPSs-style elasticity: it watches load and
// acquires/releases nodes through a Provider. Decisions are pure
// (Evaluate); application is explicit (GrowOne / ShrinkOne) so both the
// simulator (virtual time) and the live runtime (wall time) can drive it.
type ElasticManager struct {
	provider Provider
	policy   ScalePolicy

	mu      sync.Mutex
	elastic map[string]*Node // nodes this manager acquired
}

// NewElasticManager returns a manager bound to one provider.
func NewElasticManager(p Provider, policy ScalePolicy) *ElasticManager {
	return &ElasticManager{
		provider: p,
		policy:   policy,
		elastic:  make(map[string]*Node),
	}
}

// ElasticCount reports the nodes currently acquired by this manager.
func (m *ElasticManager) ElasticCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.elastic)
}

// Evaluate decides whether the pool should grow, shrink or hold, given the
// number of pending (unscheduled) tasks.
func (m *ElasticManager) Evaluate(pool *Pool, pendingTasks int) ScaleDecision {
	m.mu.Lock()
	n := len(m.elastic)
	m.mu.Unlock()

	cores := pool.TotalCores()
	if cores == 0 {
		if pendingTasks > 0 && n < m.policy.MaxNodes {
			return Grow
		}
		return Hold
	}
	if float64(pendingTasks) > m.policy.TasksPerCore*float64(cores) && n < m.policy.MaxNodes {
		return Grow
	}
	if pendingTasks == 0 && n > m.policy.MinNodes && pool.FreeCores() > m.policy.IdleCoresToShrink {
		return Shrink
	}
	return Hold
}

// GrowOne acquires a node from the provider and adds it to the pool. It
// returns the node and the provisioning delay to account for.
func (m *ElasticManager) GrowOne(pool *Pool) (*Node, time.Duration, error) {
	node, delay, err := m.provider.Acquire()
	if err != nil {
		return nil, 0, err
	}
	if err := pool.Add(node); err != nil {
		_ = m.provider.Release(node)
		return nil, 0, err
	}
	m.mu.Lock()
	m.elastic[node.Name()] = node
	m.mu.Unlock()
	return node, delay, nil
}

// ShrinkOne removes one fully idle elastic node from the pool and releases
// it to the provider. It returns the removed node, or nil if no elastic
// node is idle.
func (m *ElasticManager) ShrinkOne(pool *Pool) (*Node, error) {
	m.mu.Lock()
	var victim *Node
	for _, n := range m.elastic {
		if n.Running() == 0 {
			if victim == nil || n.Name() < victim.Name() {
				victim = n // deterministic choice
			}
		}
	}
	if victim != nil {
		delete(m.elastic, victim.Name())
	}
	m.mu.Unlock()
	if victim == nil {
		return nil, nil
	}
	if err := pool.Remove(victim.Name()); err != nil {
		return nil, err
	}
	if err := m.provider.Release(victim); err != nil {
		return victim, err
	}
	return victim, nil
}
