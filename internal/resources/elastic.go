package resources

import (
	"fmt"
	"sync"
	"time"
)

// Provider acquires and releases nodes on demand: the paper's "different
// connectors, each bridging to each provider API" (Sec. VI-A). Providers
// must be safe for concurrent use.
type Provider interface {
	// Name identifies the provider ("aws-sim", "slurm-sim", …).
	Name() string
	// Acquire provisions one node of the provider's flavour. The
	// returned delay is the provisioning time (VM boot, SLURM queue
	// wait) that the caller must account for before the node is usable.
	Acquire() (node *Node, delay time.Duration, err error)
	// Release decommissions a node previously acquired.
	Release(node *Node) error
}

// SimProvider is an in-memory cloud/SLURM connector with a capacity limit
// and a fixed provisioning delay. It satisfies Provider.
type SimProvider struct {
	name  string
	desc  Description
	delay time.Duration
	limit int

	mu      sync.Mutex
	serial  int
	granted int
}

var _ Provider = (*SimProvider)(nil)

// NewSimProvider returns a provider that hands out nodes with the given
// description, up to limit concurrently, after the given provisioning delay.
func NewSimProvider(name string, desc Description, limit int, delay time.Duration) *SimProvider {
	return &SimProvider{name: name, desc: desc, delay: delay, limit: limit}
}

// Name implements Provider.
func (s *SimProvider) Name() string { return s.name }

// Acquire implements Provider.
func (s *SimProvider) Acquire() (*Node, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.granted >= s.limit {
		return nil, 0, fmt.Errorf("provider %s: %w (limit %d)", s.name, ErrInsufficient, s.limit)
	}
	s.granted++
	s.serial++
	name := fmt.Sprintf("%s-%d", s.name, s.serial)
	return NewNode(name, s.desc), s.delay, nil
}

// Release implements Provider.
func (s *SimProvider) Release(*Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.granted > 0 {
		s.granted--
	}
	return nil
}

// Granted reports how many nodes are currently provisioned.
func (s *SimProvider) Granted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.granted
}

// ScalePolicy tunes the elasticity decision.
type ScalePolicy struct {
	// MinNodes and MaxNodes bound the elastic part of the pool.
	MinNodes, MaxNodes int
	// TasksPerCore is the pending-work threshold that triggers growth:
	// grow while pending tasks > TasksPerCore × current cores.
	TasksPerCore float64
	// IdleCoresToShrink triggers shrink when free cores exceed it and
	// nothing is pending.
	IdleCoresToShrink int
	// CostPerNodeHour prices one node of this manager's tier in abstract
	// cost units per hour — the tier-aware signal the cost-scoring
	// autoscaler (internal/autoscale) ranks variants by. ElasticManager
	// itself never reads it: legacy Evaluate stays cost-blind, which is
	// exactly the baseline the autoscale benchmarks compare against.
	CostPerNodeHour float64
}

// DefaultScalePolicy grows at 2 pending tasks per core and shrinks when a
// whole node's worth of cores sits idle.
func DefaultScalePolicy() ScalePolicy {
	return ScalePolicy{MinNodes: 0, MaxNodes: 16, TasksPerCore: 2, IdleCoresToShrink: 8}
}

// ScaleDecision is the outcome of an elasticity evaluation.
type ScaleDecision int

// Elasticity outcomes.
const (
	// Hold keeps the pool as is.
	Hold ScaleDecision = iota + 1
	// Grow acquires one more node.
	Grow
	// Shrink releases one idle node.
	Shrink
)

// String returns the decision name.
func (d ScaleDecision) String() string {
	switch d {
	case Hold:
		return "hold"
	case Grow:
		return "grow"
	case Shrink:
		return "shrink"
	default:
		return fmt.Sprintf("ScaleDecision(%d)", int(d))
	}
}

// ElasticManager implements COMPSs-style elasticity: it watches load and
// acquires/releases nodes through a Provider. Decisions are pure
// (Evaluate); application is explicit (GrowOne / ShrinkOne) so both the
// simulator (virtual time) and the live runtime (wall time) can drive it.
//
// Downscaling is a drain-then-remove cycle: ShrinkOne first cordons its
// victim (no new placements land on it) and removes it only once every
// running reservation has been released, so a scale-down decision can
// never kill in-flight work. While a node is mid-drain, a load spike is
// answered by Reclaim — the cordon is lifted instead of paying the
// provider for a fresh node.
type ElasticManager struct {
	provider Provider
	policy   ScalePolicy
	cordon   func(name string) error // optional engine-backed drain hook

	mu       sync.Mutex
	elastic  map[string]*Node // nodes this manager acquired
	draining map[string]*Node // cordoned, waiting to bleed dry
}

// NewElasticManager returns a manager bound to one provider.
func NewElasticManager(p Provider, policy ScalePolicy) *ElasticManager {
	return &ElasticManager{
		provider: p,
		policy:   policy,
		elastic:  make(map[string]*Node),
		draining: make(map[string]*Node),
	}
}

// SetCordon installs the hook ShrinkOne drains victims through —
// engine-backed deployments pass Engine.DrainNode so the cordon lands on
// the scheduler's books (and the trace) and not just on the node. Without
// a hook the node is drained directly.
func (m *ElasticManager) SetCordon(fn func(name string) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cordon = fn
}

// Policy returns the manager's scale policy (bounds and tier cost).
func (m *ElasticManager) Policy() ScalePolicy { return m.policy }

// ElasticCount reports the nodes currently acquired by this manager.
func (m *ElasticManager) ElasticCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.elastic)
}

// DrainingCount reports the nodes currently mid-drain.
func (m *ElasticManager) DrainingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.draining)
}

// DrainedCount reports the cordoned nodes that have bled dry: removal
// candidates ShrinkOne can reap without touching running work. A
// cordoned node takes no placements, so leaving a drained one in the
// pool buys nothing at full price.
func (m *ElasticManager) DrainedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, d := range m.draining {
		if d.Running() == 0 {
			n++
		}
	}
	return n
}

// Evaluate decides whether the pool should grow, shrink or hold, given the
// number of pending (unscheduled) tasks.
func (m *ElasticManager) Evaluate(pool *Pool, pendingTasks int) ScaleDecision {
	m.mu.Lock()
	n := len(m.elastic)
	drains := len(m.draining)
	m.mu.Unlock()

	// Pending work while a node is mid-drain: grow by reclaiming it. The
	// node is already counted against MaxNodes, so this must not be gated
	// on n < MaxNodes — otherwise a drained pool wedges under load.
	if pendingTasks > 0 && drains > 0 {
		return Grow
	}
	cores := pool.TotalCores()
	if cores == 0 {
		if pendingTasks > 0 && n < m.policy.MaxNodes {
			return Grow
		}
		return Hold
	}
	if float64(pendingTasks) > m.policy.TasksPerCore*float64(cores) && n < m.policy.MaxNodes {
		return Grow
	}
	if pendingTasks == 0 && n > m.policy.MinNodes && pool.FreeCores() > m.policy.IdleCoresToShrink {
		return Shrink
	}
	return Hold
}

// Reclaim cancels one pending drain-then-remove cycle: the cordon is
// lifted and the node (lowest name first, deterministically) serves
// placements again. It returns the reclaimed node, or nil when nothing is
// draining — the free way to grow while a shrink is still in flight.
func (m *ElasticManager) Reclaim() *Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n *Node
	for _, d := range m.draining {
		if n == nil || d.Name() < n.Name() {
			n = d
		}
	}
	if n == nil {
		return nil
	}
	delete(m.draining, n.Name())
	n.Undrain()
	return n
}

// GrowOne acquires a node from the provider and adds it to the pool. It
// returns the node and the provisioning delay to account for.
func (m *ElasticManager) GrowOne(pool *Pool) (*Node, time.Duration, error) {
	node, delay, err := m.provider.Acquire()
	if err != nil {
		return nil, 0, err
	}
	if err := pool.Add(node); err != nil {
		_ = m.provider.Release(node)
		return nil, 0, err
	}
	m.mu.Lock()
	m.elastic[node.Name()] = node
	m.mu.Unlock()
	return node, delay, nil
}

// ShrinkOne advances the drain-then-remove downscale cycle and returns
// the node it removed from the pool, if any. Every victim is cordoned
// (engine DrainNode when a cordon hook is installed, Node.Drain
// otherwise) before it leaves the pool, so running work always finishes:
//
//   - a node already draining that has bled dry is removed and released
//     to the provider (deterministically: lowest name first);
//   - otherwise, with no drain in flight, one elastic node is cordoned —
//     idle nodes are removed in the same call (their drain is complete by
//     definition), busy nodes return nil now and are reaped by a later
//     call once their reservations release.
//
// At most one node drains at a time, so a burst of Shrink decisions
// cannot cordon the whole pool before the first removal lands.
func (m *ElasticManager) ShrinkOne(pool *Pool) (*Node, error) {
	m.mu.Lock()
	// Phase 2: reap a drained node that has bled dry.
	var victim *Node
	for _, n := range m.draining {
		if n.Running() == 0 {
			if victim == nil || n.Name() < victim.Name() {
				victim = n
			}
		}
	}
	if victim != nil {
		delete(m.draining, victim.Name())
		delete(m.elastic, victim.Name())
		m.mu.Unlock()
		return m.removeVictim(pool, victim)
	}
	if len(m.draining) > 0 {
		m.mu.Unlock()
		return nil, nil // the in-flight drain is still bleeding
	}
	// Phase 1: cordon a new victim, preferring idle nodes.
	var idle, busy *Node
	for _, n := range m.elastic {
		if n.Running() == 0 {
			if idle == nil || n.Name() < idle.Name() {
				idle = n
			}
		} else if busy == nil || n.Name() < busy.Name() {
			busy = n
		}
	}
	cordon := m.cordon
	victim = idle
	if victim == nil {
		victim = busy
	}
	if victim == nil {
		m.mu.Unlock()
		return nil, nil
	}
	// The victim sits in draining from selection until removal, so a
	// concurrent ShrinkOne honours the one-drain-at-a-time invariant
	// even while this call is between cordon and removal.
	m.draining[victim.Name()] = victim
	m.mu.Unlock()

	if cordon != nil {
		if err := cordon(victim.Name()); err != nil {
			victim.Drain() // the hook could not see the node; cordon it directly
		}
	} else {
		victim.Drain()
	}
	if idle == nil || victim.Running() > 0 {
		// Busy victim — or a placement slipped in between the idle check
		// and the cordon: the drain holds, removal waits for the work to
		// finish (a later call reaps it).
		return nil, nil
	}
	// Idle and cordoned: remove in the same call.
	m.mu.Lock()
	if _, still := m.draining[victim.Name()]; !still {
		m.mu.Unlock()
		return nil, nil // a concurrent Reclaim took the victim back
	}
	delete(m.draining, victim.Name())
	delete(m.elastic, victim.Name())
	m.mu.Unlock()
	return m.removeVictim(pool, victim)
}

// removeVictim takes a fully drained victim out of the pool and hands it
// back to the provider.
func (m *ElasticManager) removeVictim(pool *Pool, victim *Node) (*Node, error) {
	if err := pool.Remove(victim.Name()); err != nil {
		return nil, err
	}
	if err := m.provider.Release(victim); err != nil {
		return victim, err
	}
	return victim, nil
}
