// Package simnet models the interconnect of an advanced cyberinfrastructure
// platform: HPC fabric, cloud datacenter networks, and the slow, high-latency
// links that reach fog and edge devices (paper Sec. III).
//
// The model is intentionally simple — per-pair bandwidth and latency — which
// is the level of detail the paper's runtime decisions consume (data-transfer
// cost between nodes, locality scoring). Resolution order for a pair of
// nodes: explicit link, zone-pair rule, intra-zone rule, default.
package simnet

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Link describes one direction-less connection between two endpoints.
type Link struct {
	// BandwidthMBps is sustained throughput in megabytes per second.
	BandwidthMBps float64
	// Latency is the one-way message latency.
	Latency time.Duration
}

// Valid reports whether the link has a usable bandwidth.
func (l Link) Valid() bool { return l.BandwidthMBps > 0 }

// TransferTime returns the time to move size bytes over the link.
func (l Link) TransferTime(size int64) time.Duration {
	if size <= 0 {
		return l.Latency
	}
	if l.BandwidthMBps <= 0 {
		return l.Latency
	}
	seconds := float64(size) / (l.BandwidthMBps * 1e6)
	return l.Latency + time.Duration(seconds*float64(time.Second))
}

type pair struct{ a, b string }

func normPair(a, b string) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// Network resolves links between named nodes. The zero value is not usable;
// construct with New.
//
// The topology maps (links, zones) are built before a run and read-only
// afterwards. The partition overlay (cuts) is the one piece of state that
// mutates mid-run — fault injection severs and heals links while the
// scheduler is consulting the network — so it has its own lock.
type Network struct {
	def       Link
	links     map[pair]Link
	zoneOf    map[string]string
	zoneLinks map[pair]Link
	intra     map[string]Link

	cutMu sync.RWMutex
	cuts  map[pair]struct{}
}

// New returns a network whose unresolved pairs use the given default link.
func New(def Link) *Network {
	return &Network{
		def:       def,
		links:     make(map[pair]Link),
		zoneOf:    make(map[string]string),
		zoneLinks: make(map[pair]Link),
		intra:     make(map[string]Link),
		cuts:      make(map[pair]struct{}),
	}
}

// SetLink installs an explicit bidirectional link between nodes a and b.
func (n *Network) SetLink(a, b string, l Link) {
	n.links[normPair(a, b)] = l
}

// SetZone assigns a node to a zone (e.g. "hpc", "cloud", "fog").
func (n *Network) SetZone(node, zone string) {
	n.zoneOf[node] = zone
}

// Zone returns the zone of a node, or "" if unassigned.
func (n *Network) Zone(node string) string {
	return n.zoneOf[node]
}

// SetZoneLink installs the link used between any node in zone a and any node
// in zone b (a may equal b; prefer SetIntraZone for that case).
func (n *Network) SetZoneLink(zoneA, zoneB string, l Link) {
	n.zoneLinks[normPair(zoneA, zoneB)] = l
}

// SetIntraZone installs the link used between two distinct nodes of the same
// zone.
func (n *Network) SetIntraZone(zone string, l Link) {
	n.intra[zone] = l
}

// Cut severs the connection between two endpoints — a network partition.
// Each endpoint may be a node name or a zone name: cutting a zone pair
// severs every link between nodes of those zones. Transfers across a cut
// are impossible until Heal is called; BestSource skips unreachable
// candidates. Safe for concurrent use with resolution queries.
func (n *Network) Cut(a, b string) {
	n.cutMu.Lock()
	defer n.cutMu.Unlock()
	n.cuts[normPair(a, b)] = struct{}{}
}

// Heal restores a connection previously severed by Cut.
func (n *Network) Heal(a, b string) {
	n.cutMu.Lock()
	defer n.cutMu.Unlock()
	delete(n.cuts, normPair(a, b))
}

// Reachable reports whether a transfer from a to b is currently possible:
// neither the node pair, nor the zone pair, nor either mixed node–zone
// pair is cut. A node always reaches itself.
func (n *Network) Reachable(a, b string) bool {
	if a == b {
		return true
	}
	n.cutMu.RLock()
	defer n.cutMu.RUnlock()
	if len(n.cuts) == 0 {
		return true
	}
	if _, cut := n.cuts[normPair(a, b)]; cut {
		return false
	}
	za, zb := n.zoneOf[a], n.zoneOf[b]
	for _, p := range [...]pair{normPair(za, zb), normPair(a, zb), normPair(za, b)} {
		if p.a == "" || p.b == "" {
			continue
		}
		if _, cut := n.cuts[p]; cut {
			return false
		}
	}
	return true
}

// HasCuts reports whether any link is currently severed — the cheap guard
// partition-aware consumers (scheduling tie-breaks, availability checks)
// test before paying a per-candidate reachability scan.
func (n *Network) HasCuts() bool {
	n.cutMu.RLock()
	defer n.cutMu.RUnlock()
	return len(n.cuts) > 0
}

// ReachableAny reports whether dest can currently reach at least one of
// the sources — the reachability half of a replica-availability check:
// a data version with replicas on sources is obtainable at dest iff this
// holds.
func (n *Network) ReachableAny(dest string, sources []string) bool {
	for _, s := range sources {
		if n.Reachable(s, dest) {
			return true
		}
	}
	return false
}

// LinkBetween resolves the effective link between two nodes. Transfers from
// a node to itself are free (infinite bandwidth, zero latency).
func (n *Network) LinkBetween(a, b string) Link {
	if a == b {
		return Link{BandwidthMBps: 0, Latency: 0} // local: TransferTime treats 0 bw as latency-only
	}
	if l, ok := n.links[normPair(a, b)]; ok {
		return l
	}
	za, zb := n.zoneOf[a], n.zoneOf[b]
	if za != "" && zb != "" {
		if za == zb {
			if l, ok := n.intra[za]; ok {
				return l
			}
		}
		if l, ok := n.zoneLinks[normPair(za, zb)]; ok {
			return l
		}
	}
	return n.def
}

// TransferTime returns the time to move size bytes from node a to node b.
// Local transfers take zero time.
func (n *Network) TransferTime(a, b string, size int64) time.Duration {
	if a == b {
		return 0
	}
	return n.LinkBetween(a, b).TransferTime(size)
}

// BestSource picks, among candidate source nodes, the one with the smallest
// transfer time to dest for a payload of the given size. Candidates behind
// a cut link (see Cut) are skipped. It returns the chosen source and the
// transfer time. With no candidates — or none reachable — it returns ok ==
// false.
func (n *Network) BestSource(dest string, candidates []string, size int64) (src string, t time.Duration, ok bool) {
	if len(candidates) == 0 {
		return "", 0, false
	}
	// Sort for determinism when several sources tie.
	sorted := make([]string, len(candidates))
	copy(sorted, candidates)
	sort.Strings(sorted)
	var best string
	var bestT time.Duration
	for _, c := range sorted {
		if !n.Reachable(c, dest) {
			continue
		}
		if ct := n.TransferTime(c, dest, size); !ok || ct < bestT {
			best, bestT, ok = c, ct, true
		}
	}
	return best, bestT, ok
}

// String summarises the network configuration.
func (n *Network) String() string {
	return fmt.Sprintf("simnet{links=%d zones=%d default=%.0fMB/s+%v}",
		len(n.links), len(n.zoneLinks)+len(n.intra), n.def.BandwidthMBps, n.def.Latency)
}

// Continuum builds the three-tier network of the paper's Fig. 5 (cloud at
// the top, fog in the middle, edge producing data at the bottom) plus an HPC
// zone, with representative link qualities:
//
//	hpc   intra: 12.5 GB/s, 1µs   (InfiniBand-class)
//	cloud intra: 1.25 GB/s, 50µs  (10 GbE)
//	fog   intra: 12.5 MB/s, 2ms   (WiFi-class)
//	edge→fog:    2.5 MB/s, 10ms   (constrained uplink)
//	fog→cloud:   25 MB/s, 20ms    (WAN)
//	cloud→hpc:   125 MB/s, 5ms    (site interconnect)
//	edge→cloud:  2.5 MB/s, 40ms   (long WAN path)
func Continuum() *Network {
	n := New(Link{BandwidthMBps: 10, Latency: 20 * time.Millisecond})
	n.SetIntraZone("hpc", Link{BandwidthMBps: 12500, Latency: time.Microsecond})
	n.SetIntraZone("cloud", Link{BandwidthMBps: 1250, Latency: 50 * time.Microsecond})
	n.SetIntraZone("fog", Link{BandwidthMBps: 12.5, Latency: 2 * time.Millisecond})
	n.SetIntraZone("edge", Link{BandwidthMBps: 2.5, Latency: 10 * time.Millisecond})
	n.SetZoneLink("edge", "fog", Link{BandwidthMBps: 2.5, Latency: 10 * time.Millisecond})
	n.SetZoneLink("fog", "cloud", Link{BandwidthMBps: 25, Latency: 20 * time.Millisecond})
	n.SetZoneLink("cloud", "hpc", Link{BandwidthMBps: 125, Latency: 5 * time.Millisecond})
	n.SetZoneLink("edge", "cloud", Link{BandwidthMBps: 2.5, Latency: 40 * time.Millisecond})
	n.SetZoneLink("edge", "hpc", Link{BandwidthMBps: 2.5, Latency: 45 * time.Millisecond})
	n.SetZoneLink("fog", "hpc", Link{BandwidthMBps: 25, Latency: 25 * time.Millisecond})
	return n
}
