package simnet

import (
	"testing"
	"time"
)

func TestLinkTransferTime(t *testing.T) {
	l := Link{BandwidthMBps: 100, Latency: time.Millisecond}
	// 100 MB at 100 MB/s = 1 s + 1 ms latency.
	got := l.TransferTime(100 * 1e6)
	want := time.Second + time.Millisecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestZeroSizeTransferIsLatencyOnly(t *testing.T) {
	l := Link{BandwidthMBps: 100, Latency: 3 * time.Millisecond}
	if got := l.TransferTime(0); got != 3*time.Millisecond {
		t.Fatalf("TransferTime(0) = %v, want 3ms", got)
	}
}

func TestLocalTransferIsFree(t *testing.T) {
	n := New(Link{BandwidthMBps: 1, Latency: time.Second})
	if got := n.TransferTime("a", "a", 1e9); got != 0 {
		t.Fatalf("local transfer = %v, want 0", got)
	}
}

func TestResolutionOrder(t *testing.T) {
	n := New(Link{BandwidthMBps: 1, Latency: 0})
	n.SetZone("a", "z1")
	n.SetZone("b", "z1")
	n.SetZone("c", "z2")

	// Default applies to unknown pair.
	if bw := n.LinkBetween("x", "y").BandwidthMBps; bw != 1 {
		t.Fatalf("default bw = %v, want 1", bw)
	}

	// Intra-zone rule.
	n.SetIntraZone("z1", Link{BandwidthMBps: 100})
	if bw := n.LinkBetween("a", "b").BandwidthMBps; bw != 100 {
		t.Fatalf("intra-zone bw = %v, want 100", bw)
	}

	// Zone-pair rule.
	n.SetZoneLink("z1", "z2", Link{BandwidthMBps: 10})
	if bw := n.LinkBetween("a", "c").BandwidthMBps; bw != 10 {
		t.Fatalf("zone-pair bw = %v, want 10", bw)
	}

	// Explicit link wins over all.
	n.SetLink("a", "b", Link{BandwidthMBps: 999})
	if bw := n.LinkBetween("a", "b").BandwidthMBps; bw != 999 {
		t.Fatalf("explicit link bw = %v, want 999", bw)
	}
	// Symmetric lookup.
	if bw := n.LinkBetween("b", "a").BandwidthMBps; bw != 999 {
		t.Fatalf("reverse explicit link bw = %v, want 999", bw)
	}
}

func TestBestSourcePrefersFastest(t *testing.T) {
	n := New(Link{BandwidthMBps: 1, Latency: 0})
	n.SetLink("fast", "dst", Link{BandwidthMBps: 1000})
	n.SetLink("slow", "dst", Link{BandwidthMBps: 1})
	src, _, ok := n.BestSource("dst", []string{"slow", "fast"}, 1e6)
	if !ok || src != "fast" {
		t.Fatalf("BestSource = %q ok=%v, want fast", src, ok)
	}
}

func TestBestSourcePrefersLocalReplica(t *testing.T) {
	n := New(Link{BandwidthMBps: 1000, Latency: 0})
	src, d, ok := n.BestSource("dst", []string{"other", "dst"}, 1e9)
	if !ok || src != "dst" || d != 0 {
		t.Fatalf("BestSource = %q %v ok=%v, want local dst with 0 time", src, d, ok)
	}
}

func TestBestSourceEmpty(t *testing.T) {
	n := New(Link{})
	if _, _, ok := n.BestSource("dst", nil, 1); ok {
		t.Fatal("BestSource with no candidates returned ok")
	}
}

func TestBestSourceDeterministicOnTies(t *testing.T) {
	n := New(Link{BandwidthMBps: 10, Latency: 0})
	for i := 0; i < 5; i++ {
		src, _, _ := n.BestSource("dst", []string{"b", "c", "a"}, 1e6)
		if src != "a" {
			t.Fatalf("tie-break chose %q, want lexicographically first (a)", src)
		}
	}
}

func TestContinuumShape(t *testing.T) {
	n := Continuum()
	for node, zone := range map[string]string{
		"mn1": "hpc", "mn2": "hpc", "c1": "cloud", "f1": "fog", "f2": "fog", "e1": "edge",
	} {
		n.SetZone(node, zone)
	}
	const size = 10 * 1e6 // 10 MB
	hpc := n.TransferTime("mn1", "mn2", size)
	fog := n.TransferTime("f1", "f2", size)
	fogCloud := n.TransferTime("f1", "c1", size)
	edgeFog := n.TransferTime("e1", "f1", size)
	if !(hpc < fogCloud && fogCloud < edgeFog) {
		t.Fatalf("continuum ordering broken: hpc=%v fogCloud=%v edgeFog=%v", hpc, fogCloud, edgeFog)
	}
	if !(hpc < fog) {
		t.Fatalf("HPC fabric should beat fog WiFi: hpc=%v fog=%v", hpc, fog)
	}
}
