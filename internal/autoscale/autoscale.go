// Package autoscale implements metrics-driven, cost-aware pool scaling
// over heterogeneous node tiers, plus per-tenant admission control —
// the ROADMAP's "cost-aware autoscaling and multi-tenant admission
// control" item, built on the signals the engine and the placement
// index already maintain (per-signature ready depth and fit counts,
// parked-task counts, busy-core utilization).
//
// The analyzer is deliberately split the way resources.ElasticManager
// is: Evaluate is a scoring function over a Signals snapshot (plus one
// remembered sample, the previous queue depth) — deterministic for a
// given snapshot sequence, so sim policy sweeps are byte-reproducible —
// and Step
// applies the chosen Decision through the variant's ElasticManager,
// whose drain-then-remove cycle guarantees a scale-down never kills
// running work. Both backends (internal/infra on the virtual clock,
// internal/core on wall time) drive the same Step, so a policy that
// wins a sim sweep is the policy the live runtime executes.
package autoscale

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obsv"
	"repro/internal/resources"
)

// Variant is one scalable node tier: a shape, and the manager that
// acquires and releases nodes of that shape. Its price tag comes from
// the manager's ScalePolicy (CostPerNodeHour).
type Variant struct {
	// Name identifies the tier ("cloud", "fog", …) and prefixes the
	// nodes its provider hands out.
	Name string
	// Desc is the node shape the tier provisions — what the analyzer
	// checks demand signatures against (Desc.Satisfies).
	Desc resources.Description
	// Manager executes this tier's grow/shrink with the drain-then-
	// remove machinery. Its policy bounds the tier (MaxNodes) and
	// prices it (CostPerNodeHour).
	Manager *resources.ElasticManager
}

// Cost returns the tier's price in cost units per node-hour.
func (v Variant) Cost() float64 { return v.Manager.Policy().CostPerNodeHour }

// rate is the tier's expected service rate in reference cores: how much
// SpeedFactor-1 compute one node adds.
func (v Variant) rate() float64 {
	sf := v.Desc.SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	return float64(v.Desc.Cores) * sf
}

// Policy tunes the analyzer's thresholds.
type Policy struct {
	// TasksPerCore is the aggregate backlog threshold: grow while ready
	// tasks exceed TasksPerCore × pool cores. A starved signature
	// (ready work no pool node is capable of) triggers growth regardless.
	TasksPerCore float64
	// IdleFrac is the capacity reserve the fleet plan carries on top of
	// estimated demand: the planner provisions for demand ÷ (1 −
	// IdleFrac), so the fleet stays below (1 − IdleFrac) busy and keeps
	// headroom for arrivals during the next provisioning delay. Shedding
	// down to the reserve eagerly is safe because removal is
	// drain-then-remove: the victim's running work finishes, and a spike
	// mid-drain reclaims the node for free.
	IdleFrac float64
}

// DefaultPolicy mirrors the legacy manager's growth threshold (2 ready
// tasks per core) and plans fleets with a 15% capacity reserve.
func DefaultPolicy() Policy { return Policy{TasksPerCore: 2, IdleFrac: 0.15} }

// Signals is one snapshot of the load state the analyzer scores. Build
// it with Snapshot, or by hand in tests — Evaluate is a pure function
// of this struct plus the variants' current node counts.
type Signals struct {
	// At is the snapshot instant on the backend's clock (virtual or
	// wall). Recorded on decisions; never scored.
	At time.Duration
	// Ready is the engine's queued-ready count; Parked counts tasks
	// diverted by the availability policy.
	Ready  int
	Parked int
	// Sigs is the per-signature demand/supply breakdown
	// (engine.SigLoads), in signature order.
	Sigs []engine.SigLoad
	// FreeCores and TotalCores are the pool's capacity state.
	FreeCores  int
	TotalCores int
	// Steals is the engine's cumulative steal counter — high steal
	// traffic with a deep queue means load is imbalanced, not absent,
	// which keeps the analyzer from shrinking into a rebalancing pool.
	Steals int
}

// BusyFrac returns the busy-core fraction (0 on an empty pool).
func (s Signals) BusyFrac() float64 {
	if s.TotalCores == 0 {
		return 0
	}
	return float64(s.TotalCores-s.FreeCores) / float64(s.TotalCores)
}

// Snapshot gathers a Signals from a running engine and its pool.
func Snapshot(eng *engine.Engine, pool *resources.Pool, at time.Duration) Signals {
	st := eng.Stats()
	return Signals{
		At:         at,
		Ready:      eng.ReadyCount(),
		Parked:     eng.ParkedCount(),
		Sigs:       eng.SigLoads(),
		FreeCores:  pool.FreeCores(),
		TotalCores: pool.TotalCores(),
		Steals:     st.Steals,
	}
}

// Decision is the outcome of one evaluation: which tier to scale, in
// which direction, and the score that won. Decisions are comparable
// across backends by (Variant, Delta, Reason) — At differs between
// virtual and wall clocks.
type Decision struct {
	// At is the evaluation instant (from the Signals).
	At time.Duration
	// Variant names the chosen tier ("" on hold).
	Variant string
	// Delta is +1 (grow), -1 (shrink) or 0 (hold).
	Delta int
	// Score is the chosen tier's price per reference core for a grow
	// (cost units per node-hour per unit of SpeedFactor-1 compute; lower
	// is better), the tier's node-hour cost for a shrink, 0 on hold.
	Score float64
	// Reason is the signal that decided: "starved", "backlog",
	// "reclaim", "idle", "reap", or a hold reason ("steady", "planned",
	// "no-variant").
	Reason string
}

// ActionKind reports what Step actually did with a decision.
type ActionKind int

// Step outcomes.
const (
	// Held: no scaling action.
	Held ActionKind = iota
	// Grew: a node was acquired and added to the pool.
	Grew
	// Reclaimed: a mid-drain node's cordon was lifted instead of
	// provisioning a fresh one.
	Reclaimed
	// Draining: a shrink decision cordoned (or is still bleeding) a
	// victim; removal waits for its running work to finish.
	Draining
	// Removed: a fully drained victim left the pool.
	Removed
)

// String returns the action-kind name.
func (k ActionKind) String() string {
	switch k {
	case Held:
		return "held"
	case Grew:
		return "grew"
	case Reclaimed:
		return "reclaimed"
	case Draining:
		return "draining"
	case Removed:
		return "removed"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one executed decision.
type Action struct {
	Decision Decision
	Kind     ActionKind
	// Node is the node grown, reclaimed or removed (nil on Held and
	// Draining).
	Node *resources.Node
	// Delay is the provisioning delay to account for when Kind is Grew.
	Delay time.Duration
}

// Autoscaler scores scale decisions across tier variants and executes
// them through each variant's ElasticManager. Safe for concurrent use;
// decisions are serialised, like the engine's scheduling.
type Autoscaler struct {
	pol      Policy
	variants []Variant // sorted by name

	mu        sync.Mutex
	decisions []Decision
	m         *obsv.AutoscaleMetrics
	// lastReady is the previous evaluation's queue depth: the delta
	// against it is the burst discriminator (see rawDemand).
	lastReady int
	// demandPeak is the decayed maximum of recent demand estimates: the
	// value the fleet is actually planned for. Planning on the decayed
	// peak instead of the instantaneous estimate keeps the baseline
	// fleet from being shed the moment the queue happens to be empty —
	// overshedding re-queues the baseline and churns nodes.
	demandPeak float64
}

// demandDecay is the per-evaluation decay of demandPeak: after a burst
// the plan relaxes to the instantaneous estimate over a handful of
// evaluation periods rather than in one step.
const demandDecay = 0.8

// New returns an autoscaler over the given tier variants. Variants are
// kept in name order so evaluation ties break deterministically.
func New(pol Policy, variants []Variant) (*Autoscaler, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("autoscale: at least one variant required")
	}
	vs := append([]Variant(nil), variants...)
	sort.Slice(vs, func(i, j int) bool { return vs[i].Name < vs[j].Name })
	for i, v := range vs {
		if v.Name == "" || v.Manager == nil {
			return nil, fmt.Errorf("autoscale: variant %d needs a name and a manager", i)
		}
		if i > 0 && vs[i-1].Name == v.Name {
			return nil, fmt.Errorf("autoscale: duplicate variant %q", v.Name)
		}
	}
	if pol.TasksPerCore <= 0 {
		pol.TasksPerCore = DefaultPolicy().TasksPerCore
	}
	if pol.IdleFrac <= 0 {
		pol.IdleFrac = DefaultPolicy().IdleFrac
	}
	return &Autoscaler{pol: pol, variants: vs}, nil
}

// SetMetrics installs the decision counters (nil-safe; optional).
func (a *Autoscaler) SetMetrics(m *obsv.AutoscaleMetrics) {
	a.mu.Lock()
	a.m = m
	a.mu.Unlock()
}

// SetCordon forwards the drain hook to every variant's manager, so
// scale-down victims are cordoned through the engine's books.
func (a *Autoscaler) SetCordon(fn func(name string) error) {
	for _, v := range a.variants {
		v.Manager.SetCordon(fn)
	}
}

// Variants returns the tier set in name order (shared slice: read only).
func (a *Autoscaler) Variants() []Variant { return a.variants }

// Decisions returns a copy of every decision made so far, in order —
// the sequence the sim-vs-live parity suite compares.
func (a *Autoscaler) Decisions() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Decision(nil), a.decisions...)
}

// Evaluate scores one snapshot and returns the winning decision.
// Deterministic: for an identical SEQUENCE of Signals and identical
// variant node counts it always returns the same Decision sequence
// (the scorer keeps two remembered samples — the previous queue depth,
// the burst discriminator, and the decayed demand peak, the shed
// damper), and Delta is monotone non-decreasing in Signals.Ready (more
// queued work never flips a grow into a shrink).
func (a *Autoscaler) Evaluate(sig Signals) Decision {
	a.mu.Lock()
	last := a.lastReady
	a.lastReady = sig.Ready
	raw := a.rawDemand(sig, last)
	peak := a.demandPeak * demandDecay
	if raw > peak {
		peak = raw
	}
	if peak < 0.01 {
		// Geometric decay never reaches zero, and a plan for any ε > 0
		// demand still wants one node — without a cutoff the fleet could
		// never shed its last node on a workload that has gone quiet.
		peak = 0
	}
	a.demandPeak = peak
	a.mu.Unlock()
	d := a.evaluate(sig, peak)
	d.At = sig.At
	return d
}

func (a *Autoscaler) evaluate(sig Signals, demand float64) Decision {
	// Grow signals: a starved signature (queued work no pool node is
	// CAPABLE of running, cordons and load ignored) or aggregate backlog
	// past the threshold. Starvation deliberately tests Capable, not
	// Fit: Fit == 0 on a busy pool just means saturation, which is the
	// backlog threshold's job — growing on it would buy a node for
	// every queued task.
	starved := false
	for _, sl := range sig.Sigs {
		if sl.Ready > 0 && sl.Capable == 0 {
			starved = true
			break
		}
	}
	// The backlog threshold counts reference cores, not physical ones:
	// a slow tier's many cores buy little service, and a threshold in
	// physical cores would let a deep queue slog through an
	// under-provisioned small-device fleet for minutes before
	// triggering. Base (non-elastic) cores are counted at SpeedFactor 1
	// — their shapes are unknown here, and pricing them generously keeps
	// the analyzer from buying nodes a big static pool could absorb.
	ref := a.refCores(sig)
	backlog := float64(sig.Ready) > a.pol.TasksPerCore*ref
	if ref == 0 {
		backlog = sig.Ready > 0
	}

	if starved || backlog {
		if starved {
			// A node mid-drain is the cheapest capacity there is: lift a
			// cordon before provisioning, preferring the variant that
			// serves the most demand (ties by name via variant order).
			var reclaim *Variant
			reclaimServes := -1
			for i := range a.variants {
				v := &a.variants[i]
				if v.Manager.DrainingCount() == 0 {
					continue
				}
				if s := servable(v.Desc, sig.Sigs); s > reclaimServes && s > 0 {
					reclaim, reclaimServes = v, s
				}
			}
			if reclaim != nil {
				return Decision{Variant: reclaim.Name, Delta: +1, Score: 0, Reason: "reclaim"}
			}
			// Capability starvation is about constraints, not volume:
			// among the tiers whose shape satisfies the starved demand,
			// buy the one with the lowest price per reference core.
			best := -1
			bestScore := 0.0
			for i := range a.variants {
				v := &a.variants[i]
				pol := v.Manager.Policy()
				if pol.MaxNodes > 0 && v.Manager.ElasticCount() >= pol.MaxNodes {
					continue
				}
				if servable(v.Desc, sig.Sigs) == 0 {
					continue
				}
				score := v.Cost() / v.rate()
				if best < 0 || score < bestScore {
					best, bestScore = i, score
				}
			}
			if best < 0 {
				return Decision{Reason: "no-variant"}
			}
			return Decision{Variant: a.variants[best].Name, Delta: +1, Score: bestScore, Reason: "starved"}
		}
		// Aggregate backlog: grow toward the cheapest fleet plan for the
		// estimated demand. Buying toward the plan rather than scoring
		// each node in isolation is what lets the analyzer consolidate —
		// five small devices bought one marginal decision at a time can
		// each look cheap while their sum costs more than one big VM.
		plan, ok := a.planFleet(demand / (1 - a.pol.IdleFrac))
		if ok {
			// Reclaim a mid-drain node before provisioning — but only
			// when the plan wants that tier kept. Reclaiming
			// unconditionally would pin every draining node forever: the
			// queue that rebuilds while it bleeds out would lift the
			// cordon each period, and a tier the plan is trying to
			// retire could never leave.
			for i := range a.variants {
				v := &a.variants[i]
				if v.Manager.DrainingCount() == 0 || plan[i] < v.Manager.ElasticCount() {
					continue
				}
				if servable(v.Desc, sig.Sigs) > 0 {
					return Decision{Variant: v.Name, Delta: +1, Score: 0, Reason: "reclaim"}
				}
			}
			// A tier the plan is retiring whose victim has bled dry:
			// reap it even under backlog — removal is free, and the
			// Ready==0 gate below may not be reached for a long time.
			for i := range a.variants {
				v := &a.variants[i]
				if v.Manager.DrainedCount() > 0 && plan[i] < v.Manager.ElasticCount() {
					return Decision{Variant: v.Name, Delta: -1, Score: v.Cost(), Reason: "reap"}
				}
			}
		}
		if !ok {
			// No fleet within the tiers' MaxNodes covers the demand:
			// saturate the fastest tier that still has headroom and can
			// serve something.
			best := -1
			for i := range a.variants {
				v := &a.variants[i]
				pol := v.Manager.Policy()
				if pol.MaxNodes > 0 && v.Manager.ElasticCount() >= pol.MaxNodes {
					continue
				}
				if servable(v.Desc, sig.Sigs) == 0 {
					continue
				}
				if best < 0 || v.rate() > a.variants[best].rate() {
					best = i
				}
			}
			if best < 0 {
				return Decision{Reason: "no-variant"}
			}
			v := &a.variants[best]
			return Decision{Variant: v.Name, Delta: +1, Score: v.Cost() / v.rate(), Reason: "backlog"}
		}
		// Grow the tier with the largest rate deficit against the plan:
		// big nodes first, so one provisioning delay buys the most
		// missing capacity. Ties break by name via the variant order.
		best, bestDef := -1, 0.0
		for i := range a.variants {
			v := &a.variants[i]
			if def := float64(plan[i]-v.Manager.ElasticCount()) * v.rate(); def > bestDef {
				best, bestDef = i, def
			}
		}
		if best < 0 {
			// The fleet already covers the plan; the backlog is the
			// queue draining through it.
			return Decision{Reason: "planned"}
		}
		v := &a.variants[best]
		return Decision{Variant: v.Name, Delta: +1, Score: v.Cost() / v.rate(), Reason: "backlog"}
	}

	// A cordoned node that has bled dry is removed no matter what the
	// queue looks like: it takes no placements, so every period it stays
	// in the pool is pure cost. Gating this on an empty queue would let
	// sub-threshold work trickle past a billing corpse indefinitely.
	for i := range a.variants {
		v := &a.variants[i]
		if v.Manager.DrainedCount() > 0 {
			return Decision{Variant: v.Name, Delta: -1, Score: v.Cost(), Reason: "reap"}
		}
	}

	// Shrink signals: nothing queued or parked. Advance an in-flight
	// drain first, then shed whatever the fleet plan for the current
	// busy load does not want, most expensive tier first. The plan is
	// the same cheapest-fleet computation growth targets, so the two
	// sides agree on the end state — in particular, excess cheap nodes
	// are shed even while an expensive node stays busy, because the plan
	// floor (not a greedy utilization check) decides who is excess.
	if sig.Ready == 0 && sig.Parked == 0 {
		for i := range a.variants {
			v := &a.variants[i]
			if v.Manager.DrainingCount() > 0 {
				return Decision{Variant: v.Name, Delta: -1, Score: v.Cost(), Reason: "reap"}
			}
		}
		plan, ok := a.planFleet(demand / (1 - a.pol.IdleFrac))
		if ok {
			best := -1
			for i := range a.variants {
				v := &a.variants[i]
				floor := v.Manager.Policy().MinNodes
				if plan[i] > floor {
					floor = plan[i]
				}
				if v.Manager.ElasticCount() <= floor {
					continue
				}
				if best < 0 || v.Cost() > a.variants[best].Cost() {
					best = i
				}
			}
			if best >= 0 {
				v := &a.variants[best]
				return Decision{Variant: v.Name, Delta: -1, Score: v.Cost(), Reason: "idle"}
			}
		}
	}
	return Decision{Reason: "steady"}
}

// refCores is the pool's service capacity in reference cores: the
// elastic fleet at its known tier rates, plus whatever non-elastic base
// cores the pool holds, counted at SpeedFactor 1 (their shapes aren't
// known here).
func (a *Autoscaler) refCores(sig Signals) float64 {
	elastic, phys := 0.0, 0
	for i := range a.variants {
		v := &a.variants[i]
		n := v.Manager.ElasticCount()
		elastic += float64(n) * v.rate()
		phys += n * v.Desc.Cores
	}
	if base := sig.TotalCores - phys; base > 0 {
		elastic += float64(base)
	}
	return elastic
}

// rawDemand estimates the load the fleet should be planned for, in
// reference cores. Two terms:
//
//   - the running work: the elastic fleet's reference rate scaled by
//     the busy fraction of the ELASTIC cores alone (base cores are
//     assumed busy first — the always-on base is where the scheduler's
//     load settles, and blending its busy-ness in at elastic tier rates
//     would inflate the estimate). Counting busy PHYSICAL cores would
//     be worse still: a SpeedFactor-0.25 device keeps 4× more cores
//     busy for the same served load, so a physical-core estimate
//     systematically over-retains slow tiers.
//   - the queue pressure: the larger of the queue excess over the
//     backlog threshold (catches slow creep) and the queue growth since
//     the previous evaluation (catches bursts: a ramp keeps the excess
//     small because every node bought raises the threshold under it,
//     but per-period inflow doesn't care how big the pool is),
//     converted to reference cores at the policy's target load factor.
func (a *Autoscaler) rawDemand(sig Signals, lastReady int) float64 {
	elastic, phys := 0.0, 0
	for i := range a.variants {
		v := &a.variants[i]
		n := v.Manager.ElasticCount()
		elastic += float64(n) * v.rate()
		phys += n * v.Desc.Cores
	}
	draining := 0
	for i := range a.variants {
		draining += a.variants[i].Manager.DrainingCount()
	}
	d := 0.0
	if phys > 0 {
		base := sig.TotalCores - phys
		if base < 0 {
			base = 0
		}
		busy := sig.TotalCores - sig.FreeCores - base
		if busy > 0 {
			frac := float64(busy) / float64(phys)
			if frac > 1 {
				frac = 1
			}
			d = frac * elastic
		}
	}
	excess := float64(sig.Ready) - a.pol.TasksPerCore*a.refCores(sig)
	// The queue-growth term is suppressed while a drain is in flight: a
	// cordoned node stops taking work, so the queue rebuilding behind it
	// is the drain's own doing, and reading it as a burst would reclaim
	// every node the plan is trying to retire.
	if g := float64(sig.Ready - lastReady); draining == 0 && g > excess {
		excess = g
	}
	if excess > 0 {
		d += excess / a.pol.TasksPerCore
	}
	return d
}

// planFleet returns the per-variant node counts (variant order) of the
// cheapest mixed fleet whose combined reference rate covers need,
// respecting each tier's MaxNodes. Exact enumeration — tier counts are
// small — trying slow tiers first, so on EQUAL cost the plan prefers
// more, smaller nodes: same price now, finer shed granularity when
// demand recedes. Strictly cheaper big-node plans still win, so
// consolidation happens where it actually saves money. Granularity is
// the point of planning at the fleet level: a trickle is cheapest on
// one small device even when a big tier's per-core price is lower, a
// heavy baseline flips the answer, and mid-range demand often wants a
// mix. ok is false when no fleet within the MaxNodes bounds covers
// need.
func (a *Autoscaler) planFleet(need float64) (plan []int, ok bool) {
	order := make([]int, len(a.variants))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return a.variants[order[x]].rate() < a.variants[order[y]].rate()
	})
	best := make([]int, len(a.variants))
	bestCost := math.Inf(1)
	cur := make([]int, len(a.variants))
	var rec func(oi int, remaining, cost float64)
	rec = func(oi int, remaining, cost float64) {
		if cost >= bestCost {
			return // first-found wins ties: deterministic, small-node-heavy
		}
		if remaining <= 0 {
			bestCost = cost
			copy(best, cur)
			ok = true
			return
		}
		if oi == len(order) {
			return
		}
		v := &a.variants[order[oi]]
		max := int(math.Ceil(remaining / v.rate()))
		if m := v.Manager.Policy().MaxNodes; m > 0 && max > m {
			max = m
		}
		if max > 64 {
			max = 64 // bound the search; a plan this size saturates anyway
		}
		for n := max; n >= 0; n-- {
			cur[order[oi]] = n
			rec(oi+1, remaining-float64(n)*v.rate(), cost+float64(n)*v.Cost())
			cur[order[oi]] = 0
		}
	}
	rec(0, need, 0)
	return best, ok
}

// servable sums the ready depth of every demand signature a node of
// this description could run (capacity check; current load is what the
// new node changes).
func servable(d resources.Description, sigs []engine.SigLoad) int {
	total := 0
	for _, sl := range sigs {
		if sl.Ready > 0 && d.Satisfies(sl.Constraints) {
			total += sl.Ready
		}
	}
	return total
}

// Step evaluates one snapshot and executes the decision through the
// chosen variant's manager: grow acquires (reclaiming a draining node
// first when the decision says so), shrink advances the drain-then-
// remove cycle. The decision is recorded either way. The caller owns
// backend bookkeeping (trace events, provisioning-delay holds,
// node-second accounting) off the returned Action.
func (a *Autoscaler) Step(pool *resources.Pool, sig Signals) Action {
	d := a.Evaluate(sig)
	act := Action{Decision: d, Kind: Held}
	if v := a.variant(d.Variant); v != nil {
		switch {
		case d.Delta > 0:
			if n := v.Manager.Reclaim(); n != nil {
				act.Kind, act.Node = Reclaimed, n
				break
			}
			if n, delay, err := v.Manager.GrowOne(pool); err == nil {
				act.Kind, act.Node, act.Delay = Grew, n, delay
			}
		case d.Delta < 0:
			if n, err := v.Manager.ShrinkOne(pool); err == nil {
				if n != nil {
					act.Kind, act.Node = Removed, n
				} else {
					act.Kind = Draining
				}
			}
		}
	}
	a.record(d, act.Kind)
	return act
}

func (a *Autoscaler) variant(name string) *Variant {
	if name == "" {
		return nil
	}
	for i := range a.variants {
		if a.variants[i].Name == name {
			return &a.variants[i]
		}
	}
	return nil
}

func (a *Autoscaler) record(d Decision, kind ActionKind) {
	a.mu.Lock()
	a.decisions = append(a.decisions, d)
	m := a.m
	a.mu.Unlock()
	if m == nil {
		return
	}
	switch {
	case kind == Reclaimed:
		m.Reclaims.Inc()
	case d.Delta > 0:
		m.Grows.Inc()
	case d.Delta < 0:
		m.Shrinks.Inc()
	default:
		m.Holds.Inc()
	}
}
