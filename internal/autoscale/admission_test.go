package autoscale

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestAdmissionQuota: the in-flight cap admits, the queue bound rejects,
// and completions promote queued work FIFO within a tenant.
func TestAdmissionQuota(t *testing.T) {
	ad := NewAdmission(Quota{MaxInFlight: 2, MaxQueued: 2})
	got := []Outcome{}
	for i := 0; i < 6; i++ {
		got = append(got, ad.Submit("a", i))
	}
	want := []Outcome{Admitted, Admitted, Queued, Queued, Rejected, Rejected}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("submit %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	rel := ad.Complete("a")
	if len(rel) != 1 || rel[0].Tenant != "a" || rel[0].Payload != 2 {
		t.Fatalf("first release = %+v, want payload 2 (FIFO)", rel)
	}
	rel = ad.Complete("a")
	if len(rel) != 1 || rel[0].Payload != 3 {
		t.Fatalf("second release = %+v, want payload 3", rel)
	}
	st := ad.Stats()
	if st.Admitted != 2 || st.Queued != 2 || st.Rejected != 2 || st.Released != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.InFlight != 2 || st.QueuedNow != 0 {
		t.Fatalf("occupancy = %+v, want 2 in flight, empty queue", st)
	}
}

// TestAdmissionUnlimited: a zero quota only counts.
func TestAdmissionUnlimited(t *testing.T) {
	ad := NewAdmission(Quota{})
	for i := 0; i < 100; i++ {
		if out := ad.Submit("t", i); out != Admitted {
			t.Fatalf("submit %d = %v with no quota", i, out)
		}
	}
	if st := ad.Stats(); st.Admitted != 100 || st.InFlight != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAdmissionWeightedFairness: while two tenants contend for a shared
// MaxTotal bound, releases converge to the weight ratio.
func TestAdmissionWeightedFairness(t *testing.T) {
	ad := NewAdmission(Quota{MaxTotal: 1, Weights: map[string]float64{"heavy": 3, "light": 1}})
	// One admitted token, then a deep backlog for both tenants. Each
	// completion frees exactly one slot of the shared bound, and the
	// freed slot goes to whichever tenant has the least weighted
	// service — the point where the weights decide.
	if out := ad.Submit("heavy", -1); out != Admitted {
		t.Fatalf("seed submit = %v", out)
	}
	for i := 0; i < 60; i++ {
		ad.Submit("heavy", i)
		ad.Submit("light", i)
	}
	counts := map[string]int{}
	cur := "heavy"
	for i := 0; i < 48; i++ {
		rel := ad.Complete(cur)
		if len(rel) != 1 {
			t.Fatalf("iteration %d: %d releases from one freed slot", i, len(rel))
		}
		counts[rel[0].Tenant]++
		cur = rel[0].Tenant
	}
	h, l := counts["heavy"], counts["light"]
	// Stride scheduling at weights 3:1 over a backlogged window: the
	// heavy tenant's share must land near 75%.
	share := float64(h) / float64(h+l)
	if share < 0.65 || share > 0.85 {
		t.Fatalf("heavy share = %.2f (heavy %d, light %d), want ≈ 0.75", share, h, l)
	}
}

// TestAdmissionPerTenantLanes pins the per-tenant-cap-only semantics:
// without a MaxTotal bound every freed slot belongs to the tenant that
// freed it, so two backlogged tenants drain independently and weights
// never reorder anything.
func TestAdmissionPerTenantLanes(t *testing.T) {
	ad := NewAdmission(Quota{MaxInFlight: 1, Weights: map[string]float64{"heavy": 3}})
	for i := 0; i < 4; i++ {
		ad.Submit("heavy", i)
		ad.Submit("light", i)
	}
	for i := 0; i < 3; i++ {
		for _, tenant := range []string{"heavy", "light"} {
			rel := ad.Complete(tenant)
			if len(rel) != 1 || rel[0].Tenant != tenant {
				t.Fatalf("round %d: Complete(%s) released %+v, want own-lane release", i, tenant, rel)
			}
		}
	}
}

// TestAdmissionDeterministicOrder: equal service ties release in tenant
// name order, so a replay of the same operation sequence releases the
// same payloads in the same order.
func TestAdmissionDeterministicOrder(t *testing.T) {
	run := func() []string {
		ad := NewAdmission(Quota{MaxInFlight: 1})
		for _, tenant := range []string{"c", "a", "b"} {
			ad.Submit(tenant, tenant+"-0")
			ad.Submit(tenant, tenant+"-1")
		}
		var order []string
		for _, tenant := range []string{"a", "b", "c", "a", "b", "c"} {
			for _, r := range ad.Complete(tenant) {
				order = append(order, fmt.Sprint(r.Payload))
			}
		}
		return order
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("no releases")
	}
	for i := 0; i < 5; i++ {
		if got := run(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("release order not deterministic: %v vs %v", got, first)
		}
	}
}

// TestAdmissionChurnProperty drives 2500 seeded random submit/complete
// steps across bursty tenants and checks the quota invariants the
// runtime depends on after every step: per-tenant in-flight never
// exceeds the cap, the wait queue never exceeds its bound, occupancy
// counters never go negative, and the books balance (admissions +
// releases = completions + in-flight).
func TestAdmissionChurnProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const (
				steps       = 2500
				maxInFlight = 3
				maxQueued   = 5
			)
			ad := NewAdmission(Quota{
				MaxInFlight: maxInFlight,
				MaxQueued:   maxQueued,
				Weights:     map[string]float64{"a": 2, "b": 1, "c": 1},
			})
			tenants := []string{"a", "b", "c", ""}
			inflight := map[string]int{} // model: admitted-not-completed per tenant
			completions := 0
			for step := 0; step < steps; step++ {
				tenant := tenants[rng.Intn(len(tenants))]
				key := tenant
				if key == "" {
					key = DefaultTenant
				}
				// Bursts: sometimes slam one tenant with a whole batch.
				n := 1
				if rng.Intn(10) == 0 {
					n = 5 + rng.Intn(10)
				}
				if rng.Intn(3) == 0 && inflight[key] > 0 {
					for _, r := range ad.Complete(tenant) {
						inflight[r.Tenant]++
					}
					inflight[key]--
					completions++
				} else {
					for i := 0; i < n; i++ {
						switch ad.Submit(tenant, step) {
						case Admitted:
							inflight[key]++
						case Queued, Rejected:
						}
					}
				}
				st := ad.Stats()
				for k, v := range inflight {
					if v > maxInFlight {
						t.Fatalf("step %d: tenant %s has %d in flight (cap %d)", step, k, v, maxInFlight)
					}
					if v < 0 {
						t.Fatalf("step %d: tenant %s in-flight went negative", step, k)
					}
				}
				if st.InFlight < 0 || st.QueuedNow < 0 {
					t.Fatalf("step %d: negative occupancy %+v", step, st)
				}
				if st.QueuedNow > maxQueued*len(tenants) {
					t.Fatalf("step %d: queue %d exceeds %d tenants × bound %d", step, st.QueuedNow, len(tenants), maxQueued)
				}
				if st.Admitted+st.Released != completions+st.InFlight {
					t.Fatalf("step %d: books don't balance: %+v vs %d completions", step, st, completions)
				}
			}
		})
	}
}

// TestAdmissionConcurrent hammers Submit/Complete from many goroutines
// (race-detector food) and checks the final books balance.
func TestAdmissionConcurrent(t *testing.T) {
	ad := NewAdmission(Quota{MaxInFlight: 4, Weights: map[string]float64{"g0": 2}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("g%d", g%3)
			for i := 0; i < 200; i++ {
				switch ad.Submit(tenant, i) {
				case Admitted:
					for _, r := range ad.Complete(tenant) {
						// Promoted tasks complete immediately too.
						ad.Complete(r.Tenant)
					}
				case Rejected, Queued:
				}
			}
		}(g)
	}
	wg.Wait()
	st := ad.Stats()
	if st.InFlight < 0 || st.QueuedNow < 0 {
		t.Fatalf("negative occupancy after churn: %+v", st)
	}
	if st.Released > st.Queued {
		t.Fatalf("released %d > queued %d", st.Released, st.Queued)
	}
}
