package autoscale

import (
	"sort"
	"sync"

	"repro/internal/obsv"
)

// Quota bounds one tenant's use of the runtime. The same quota applies
// to every tenant; weights skew only the order in which queued work is
// released, not the in-flight bound.
type Quota struct {
	// MaxInFlight caps a tenant's admitted-but-uncompleted tasks
	// (admission to completion, dependency waits included). <= 0 means
	// unlimited — the controller then only counts.
	MaxInFlight int
	// MaxTotal caps admitted-but-uncompleted tasks across ALL tenants —
	// the shared-capacity bound that makes the weighted release order
	// bite: under a per-tenant cap alone every freed slot belongs to
	// the tenant that freed it, so backlogged tenants never compete.
	// <= 0 means no global bound.
	MaxTotal int
	// MaxQueued caps a tenant's wait queue once an in-flight cap is
	// reached; submissions beyond it are rejected. <= 0 means the queue
	// is unbounded and Submit never rejects.
	MaxQueued int
	// Weights skew fair release order while tenants contend for the
	// MaxTotal bound: a tenant with weight 2 is released twice as often
	// as a tenant with weight 1 while both stay backlogged. Missing or
	// non-positive entries default to 1.
	Weights map[string]float64
}

// Outcome reports what Submit did with one submission.
type Outcome int

// Submission outcomes.
const (
	// Admitted: within quota, proceed immediately.
	Admitted Outcome = iota
	// Queued: over the in-flight cap; held until a Complete frees a
	// slot and fair ordering picks this tenant.
	Queued
	// Rejected: the tenant's queue bound is exceeded.
	Rejected
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case Queued:
		return "queued"
	case Rejected:
		return "rejected"
	default:
		return "outcome?"
	}
}

// Released is one queued submission promoted by a freed quota slot.
type Released struct {
	Tenant  string
	Payload any
}

// AdmissionStats is a consistent snapshot of the controller's counters.
type AdmissionStats struct {
	// Admitted counts immediate admissions; Released counts queued
	// submissions later promoted (every Released was first Queued).
	Admitted, Queued, Rejected, Released int
	// InFlight and QueuedNow are current occupancy across all tenants.
	InFlight, QueuedNow int
}

// DefaultTenant is the bucket submissions without a tenant tag land in.
const DefaultTenant = "default"

// Admission enforces per-tenant quotas with weighted fair release — the
// layer both backends put in front of batch submission. Admission is
// payload-agnostic: backends queue whatever lets them resume the held
// submission (the simulator queues engine task IDs whose synthetic hold
// it releases, the live runtime queues its own). Safe for concurrent
// use; release order is deterministic for a given operation sequence
// (least weighted service first, ties by tenant name, FIFO per tenant).
type Admission struct {
	mu       sync.Mutex
	q        Quota
	inflight map[string]int
	queues   map[string][]any
	queued   int
	// served is each tenant's weighted virtual service: +1/weight per
	// admitted task. Queued tenants with the least service release
	// first, which is stride scheduling — over any backlogged window a
	// tenant's share of releases converges to weight/Σweights.
	served map[string]float64
	stats  AdmissionStats
	m      *obsv.AdmissionMetrics
}

// NewAdmission returns a controller enforcing q.
func NewAdmission(q Quota) *Admission {
	return &Admission{
		q:        q,
		inflight: make(map[string]int),
		queues:   make(map[string][]any),
		served:   make(map[string]float64),
	}
}

// SetMetrics installs the admission counters (nil-safe; optional).
func (a *Admission) SetMetrics(m *obsv.AdmissionMetrics) {
	a.mu.Lock()
	a.m = m
	a.mu.Unlock()
}

// Quota returns the configured quota.
func (a *Admission) Quota() Quota { return a.q }

func (a *Admission) weight(tenant string) float64 {
	if w, ok := a.q.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

func canonical(tenant string) string {
	if tenant == "" {
		return DefaultTenant
	}
	return tenant
}

// Submit asks to run one task for tenant. On Queued the payload is held
// and comes back from a later Complete; on Admitted (and Rejected) the
// payload is not retained. The caller must pair every Admitted and
// Released task with exactly one Complete.
func (a *Admission) Submit(tenant string, payload any) Outcome {
	tenant = canonical(tenant)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.roomLocked(tenant) {
		a.admitLocked(tenant)
		a.stats.Admitted++
		if a.m != nil {
			a.m.Admitted.Inc()
		}
		return Admitted
	}
	if a.q.MaxQueued > 0 && len(a.queues[tenant]) >= a.q.MaxQueued {
		a.stats.Rejected++
		if a.m != nil {
			a.m.Rejected.Inc()
		}
		return Rejected
	}
	a.queues[tenant] = append(a.queues[tenant], payload)
	a.queued++
	a.stats.Queued++
	if a.m != nil {
		a.m.Queued.Inc()
		a.m.QueuedNow.Add(1)
	}
	return Queued
}

// roomLocked reports whether tenant may take one more in-flight task:
// under its own cap and under the shared MaxTotal bound.
func (a *Admission) roomLocked(tenant string) bool {
	if a.q.MaxInFlight > 0 && a.inflight[tenant] >= a.q.MaxInFlight {
		return false
	}
	return a.q.MaxTotal <= 0 || a.stats.InFlight < a.q.MaxTotal
}

// admitLocked books one admission for tenant.
func (a *Admission) admitLocked(tenant string) {
	a.inflight[tenant]++
	a.served[tenant] += 1 / a.weight(tenant)
	a.stats.InFlight++
	if a.m != nil {
		a.m.InFlight.Add(1)
	}
}

// Complete returns tenant's quota slot and promotes queued work into
// it: the backlogged tenant with the least weighted service (ties by
// name) releases first, FIFO within a tenant. The returned slice is in
// release order; each entry's task is now admitted and must get its own
// Complete when it finishes.
func (a *Admission) Complete(tenant string) []Released {
	tenant = canonical(tenant)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight[tenant] > 0 {
		a.inflight[tenant]--
		a.stats.InFlight--
		if a.m != nil {
			a.m.InFlight.Add(-1)
		}
	}
	if a.queued == 0 {
		return nil
	}
	var out []Released
	for {
		next := a.nextTenantLocked()
		if next == "" {
			return out
		}
		q := a.queues[next]
		payload := q[0]
		if len(q) == 1 {
			delete(a.queues, next)
		} else {
			a.queues[next] = q[1:]
		}
		a.queued--
		a.admitLocked(next)
		a.stats.Released++
		if a.m != nil {
			a.m.Released.Inc()
			a.m.QueuedNow.Add(-1)
		}
		out = append(out, Released{Tenant: next, Payload: payload})
	}
}

// nextTenantLocked picks the queued tenant to release next, or "" when
// every queued tenant is at its in-flight cap (or nothing is queued).
func (a *Admission) nextTenantLocked() string {
	if a.queued == 0 {
		return ""
	}
	names := make([]string, 0, len(a.queues))
	for t := range a.queues {
		names = append(names, t)
	}
	sort.Strings(names)
	best := ""
	for _, t := range names {
		if !a.roomLocked(t) {
			continue
		}
		if best == "" || a.served[t] < a.served[best] {
			best = t
		}
	}
	return best
}

// Stats returns a consistent snapshot of the counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}
