// Sim-vs-live parity for the cost-aware autoscaler: both backends drive
// the same Autoscaler.Step against their own engine and pool, so for
// the same workload state the two must produce identical decision
// sequences — the property that makes a policy sweep on the simulator
// transferable to the live runtime.
//
// The protocol keeps both engines in deterministic lockstep by making
// sure no task is ever placed: the base node's capacity is reserved up
// front (it must still statically satisfy the demand signature — the
// live runtime rejects submissions no pool node could ever run), and
// every elastic node joins the pool already cordoned (a provider
// wrapper drains it at acquire time), which makes it invisible to
// placement while still counting as capable supply and elastic fleet.
// The load signals are therefore byte-identical on both backends at
// every evaluation instant, wall clock or virtual.
package autoscale_test

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	rtrace "repro/internal/trace"
)

// parityBase is the static pool's node shape. It statically satisfies
// the 2-core demand signature — the live runtime rejects submissions no
// pool node could ever run — but the tests reserve both its cores up
// front, so nothing actually places on it and the backlog accumulates.
var parityBase = resources.Description{Cores: 2, SpeedFactor: 1}

// Parity tiers: a slow cheap device and a fast expensive VM, both at
// SpeedFactor 1 so reference arithmetic stays readable. Per reference
// core the device wins (0.1 vs 0.125), so small fleets stay on devices.
var (
	parityFog   = resources.Description{Cores: 2, SpeedFactor: 1}
	parityCloud = resources.Description{Cores: 8, SpeedFactor: 1}
)

// predrainProvider cordons every node it hands out before the manager
// adds it to the pool: the node is real supply on the autoscaler's
// books but refuses placements, which pins the engine state for the
// lockstep comparison.
type predrainProvider struct {
	resources.Provider
}

func (p predrainProvider) Acquire() (*resources.Node, time.Duration, error) {
	n, d, err := p.Provider.Acquire()
	if n != nil {
		n.Drain()
	}
	return n, d, err
}

func parityScaler(t *testing.T, predrain bool) *autoscale.Autoscaler {
	t.Helper()
	mk := func(name string, desc resources.Description, cost float64, max int) autoscale.Variant {
		var p resources.Provider = resources.NewSimProvider(name, desc, max, 0)
		if predrain {
			p = predrainProvider{p}
		}
		return autoscale.Variant{
			Name: name,
			Desc: desc,
			Manager: resources.NewElasticManager(p, resources.ScalePolicy{
				MaxNodes: max, TasksPerCore: 2, CostPerNodeHour: cost,
			}),
		}
	}
	a, err := autoscale.New(autoscale.DefaultPolicy(), []autoscale.Variant{
		mk("cloud", parityCloud, 1.0, 2),
		mk("fog", parityFog, 0.2, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// parityHold is the reservation that keeps the base node permanently
// full during the growth test.
var parityHold = resources.Constraints{Cores: 2}

func parityPool(t *testing.T) *resources.Pool {
	t.Helper()
	pool := resources.NewPool()
	if err := pool.Add(resources.NewNode("base-0", parityBase)); err != nil {
		t.Fatal(err)
	}
	return pool
}

// comparable strips the clock-dependent fields off a decision sequence.
type parityDecision struct {
	Variant string
	Delta   int
	Score   float64
	Reason  string
}

func stripAt(ds []autoscale.Decision) []parityDecision {
	out := make([]parityDecision, len(ds))
	for i, d := range ds {
		out[i] = parityDecision{Variant: d.Variant, Delta: d.Delta, Score: d.Score, Reason: d.Reason}
	}
	return out
}

func diffDecisions(t *testing.T, sim, live []parityDecision) {
	t.Helper()
	if len(sim) != len(live) {
		t.Fatalf("decision counts differ: sim %d, live %d\nsim:  %+v\nlive: %+v", len(sim), len(live), sim, live)
	}
	for i := range sim {
		if sim[i] != live[i] {
			t.Fatalf("decision %d diverges:\n  sim:  %+v\n  live: %+v", i, sim[i], live[i])
		}
	}
}

// TestParityGrowthSequence runs the backlog growth story on both
// backends and requires the decision sequences to match one to one:
// plan-driven backlog growth, then steady holds once the fleet covers
// the plan.
func TestParityGrowthSequence(t *testing.T) {
	const tasks, steps = 12, 8
	demand := resources.Constraints{Cores: 2}

	// Simulator: the workload registers at New, so the ready queue is
	// fully loaded before the first evaluation — no Run() needed, and
	// nothing ever places (the base node is full, elastic nodes arrive
	// cordoned).
	simScaler := parityScaler(t, true)
	simPool := parityPool(t)
	if err := simPool.Nodes()[0].Reserve(parityHold); err != nil {
		t.Fatal(err)
	}
	specs := make([]infra.TaskSpec, tasks)
	for i := range specs {
		specs[i] = infra.TaskSpec{
			ID: int64(i + 1), Class: "heavy", Duration: time.Hour, Constraints: demand,
		}
	}
	sim, err := infra.New(infra.Config{
		Pool:      simPool,
		Net:       simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:    sched.MinLoad{},
		Tracer:    rtrace.New(0),
		Autoscale: simScaler,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		sim.AutoscaleStep()
	}

	// Live runtime: the same demand shape as real blocked submissions.
	liveScaler := parityScaler(t, true)
	livePool := parityPool(t)
	baseNode := livePool.Nodes()[0]
	if err := baseNode.Reserve(parityHold); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	rt := core.New(core.Config{
		Pool:      livePool,
		Policy:    sched.MinLoad{},
		Tracer:    rtrace.New(0),
		Autoscale: liveScaler,
	})
	if err := rt.Register(core.TaskDef{
		Name:        "heavy",
		Constraints: demand,
		Fn: func(context.Context, []any) ([]any, error) {
			<-gate
			return nil, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tasks; i++ {
		if _, err := rt.Submit("heavy"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < steps; i++ {
		rt.AutoscaleStep()
	}

	simDs, liveDs := stripAt(simScaler.Decisions()), stripAt(liveScaler.Decisions())
	diffDecisions(t, simDs, liveDs)

	// The sequence itself must tell the growth story, not just agree.
	if simDs[0].Delta != +1 || simDs[0].Reason != "backlog" {
		t.Fatalf("first decision = %+v, want a backlog grow", simDs[0])
	}
	grows := 0
	for _, d := range simDs {
		if d.Delta > 0 {
			grows++
		}
	}
	if grows < 2 || simDs[len(simDs)-1].Delta != 0 {
		t.Fatalf("sequence %+v: want ≥ 2 grows settling into a hold", simDs)
	}

	// Both fleets must have bought the same nodes.
	simNames, liveNames := poolNames(simPool), poolNames(livePool)
	if fmt.Sprint(simNames) != fmt.Sprint(liveNames) {
		t.Fatalf("pools diverge: sim %v, live %v", simNames, liveNames)
	}

	// Unblock the live workload so Shutdown can drain it.
	for _, n := range livePool.Nodes() {
		n.Undrain()
	}
	baseNode.Release(parityHold)
	close(gate)
	rt.RevalidateAvailability()
	rt.Shutdown()
}

// TestParityShrinkSequence pre-grows the same fleet on both backends,
// then lets the idle analyzer shed it: the expensive tier goes first,
// every removal is decided identically, and both pools end at the base
// node alone.
func TestParityShrinkSequence(t *testing.T) {
	const steps = 10
	run := func(step func(*autoscale.Autoscaler, *resources.Pool) func()) ([]parityDecision, []string) {
		scaler := parityScaler(t, false)
		pool := parityPool(t)
		for _, v := range scaler.Variants() {
			n := 1
			if v.Name == "fog" {
				n = 2
			}
			for i := 0; i < n; i++ {
				if _, _, err := v.Manager.GrowOne(pool); err != nil {
					t.Fatal(err)
				}
			}
		}
		tick := step(scaler, pool)
		for i := 0; i < steps; i++ {
			tick()
		}
		return stripAt(scaler.Decisions()), poolNames(pool)
	}

	simDs, simNodes := run(func(scaler *autoscale.Autoscaler, pool *resources.Pool) func() {
		sim, err := infra.New(infra.Config{
			Pool:      pool,
			Net:       simnet.New(simnet.Link{BandwidthMBps: 1000}),
			Policy:    sched.MinLoad{},
			Tracer:    rtrace.New(0),
			Autoscale: scaler,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return func() { sim.AutoscaleStep() }
	})
	liveDs, liveNodes := run(func(scaler *autoscale.Autoscaler, pool *resources.Pool) func() {
		rt := core.New(core.Config{
			Pool:      pool,
			Policy:    sched.MinLoad{},
			Tracer:    rtrace.New(0),
			Autoscale: scaler,
		})
		t.Cleanup(rt.Shutdown)
		return func() { rt.AutoscaleStep() }
	})

	diffDecisions(t, simDs, liveDs)
	if fmt.Sprint(simNodes) != fmt.Sprint(liveNodes) {
		t.Fatalf("pools diverge: sim %v, live %v", simNodes, liveNodes)
	}
	if len(simNodes) != 1 || simNodes[0] != "base-0" {
		t.Fatalf("fleet not fully shed: %v", simNodes)
	}
	// The first shed must have hit the expensive tier.
	for _, d := range simDs {
		if d.Delta < 0 {
			if d.Variant != "cloud" {
				t.Fatalf("first shed hit %q, want cloud", d.Variant)
			}
			break
		}
	}
}

func poolNames(p *resources.Pool) []string {
	var names []string
	for _, n := range p.Nodes() {
		names = append(names, n.Name())
	}
	sort.Strings(names)
	return names
}
