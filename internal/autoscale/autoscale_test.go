package autoscale

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/resources"
)

// Bench-shaped tiers: a fast 8-core VM at SpeedFactor 0.8 (6.4 reference
// cores, 1.0/h) and a slow 4-core device at 0.25 (1 reference core,
// 0.25/h). Per reference core the cloud is cheaper (0.156 vs 0.25), so
// sustained demand consolidates onto VMs while trickles stay on devices
// — the granularity/consolidation trade the planner exists to price.
func cloudFog(t *testing.T) (*Autoscaler, []Variant) {
	t.Helper()
	vs := []Variant{
		simVariant("cloud", resources.CloudVM, 1.0, 8),
		simVariant("fog", resources.FogDevice, 0.25, 16),
	}
	a, err := New(DefaultPolicy(), vs)
	if err != nil {
		t.Fatal(err)
	}
	return a, a.Variants()
}

func simVariant(name string, desc resources.Description, cost float64, max int) Variant {
	return Variant{
		Name: name,
		Desc: desc,
		Manager: resources.NewElasticManager(
			resources.NewSimProvider(name, desc, max, 0),
			resources.ScalePolicy{MaxNodes: max, TasksPerCore: 2, CostPerNodeHour: cost},
		),
	}
}

func planCost(a *Autoscaler, plan []int) float64 {
	c := 0.0
	for i, n := range plan {
		c += float64(n) * a.variants[i].Cost()
	}
	return c
}

func planRate(a *Autoscaler, plan []int) float64 {
	r := 0.0
	for i, n := range plan {
		r += float64(n) * a.variants[i].rate()
	}
	return r
}

// TestPlanFleetEconomics pins the planner's three regimes: a trickle is
// cheapest on one small device, sustained demand consolidates onto the
// big tier, and mid-range demand takes a mix when the mix is strictly
// cheaper than either pure fleet.
func TestPlanFleetEconomics(t *testing.T) {
	a, vs := cloudFog(t)
	ci, fi := 0, 1 // variants sort by name: cloud, fog
	if vs[ci].Name != "cloud" || vs[fi].Name != "fog" {
		t.Fatalf("variant order: %q, %q", vs[0].Name, vs[1].Name)
	}

	// Trickle: 0.5 reference cores. One fog device (0.25/h) beats one
	// cloud VM (1.0/h) even though the VM's per-core price is lower.
	plan, ok := a.planFleet(0.5)
	if !ok || plan[ci] != 0 || plan[fi] != 1 {
		t.Fatalf("trickle plan = %v ok=%v, want pure fog [0 1]", plan, ok)
	}

	// Sustained: 12 reference cores. Two VMs (2.0/h) beat twelve fog
	// devices (3.0/h) — consolidation where it actually saves money.
	plan, ok = a.planFleet(12)
	if !ok || plan[ci] != 2 || plan[fi] != 0 {
		t.Fatalf("sustained plan = %v ok=%v, want pure cloud [2 0]", plan, ok)
	}

	// Mid-range: 7 reference cores. One VM + one device (1.25/h,
	// 7.4 cores) undercuts two VMs (2.0/h) and seven devices (1.75/h).
	plan, ok = a.planFleet(7)
	if !ok || plan[ci] != 1 || plan[fi] != 1 {
		t.Fatalf("mid-range plan = %v ok=%v, want mixed [1 1]", plan, ok)
	}
}

// TestPlanFleetTieBreaksSmall: at exactly the break-even demand (4
// reference cores: four devices = one VM = 1.0/h) the planner must pick
// the small-node fleet — same price now, finer shed granularity later.
func TestPlanFleetTieBreaksSmall(t *testing.T) {
	a, _ := cloudFog(t)
	plan, ok := a.planFleet(4)
	if !ok || plan[0] != 0 || plan[1] != 4 {
		t.Fatalf("break-even plan = %v ok=%v, want small-node fleet [0 4]", plan, ok)
	}
}

// TestPlanFleetCoversNeed: for random demands the accepted plan always
// covers the demand, and for zero demand the plan is the empty fleet.
func TestPlanFleetCoversNeed(t *testing.T) {
	a, _ := cloudFog(t)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		need := rng.Float64() * 60 // max fleet: 8*6.4 + 16*1 = 67.2
		plan, ok := a.planFleet(need)
		if !ok {
			t.Fatalf("need %.2f: no plan", need)
		}
		if got := planRate(a, plan); got < need {
			t.Fatalf("need %.2f: plan %v covers only %.2f", need, plan, got)
		}
	}
	plan, ok := a.planFleet(0)
	if !ok || plan[0] != 0 || plan[1] != 0 {
		t.Fatalf("zero demand plan = %v ok=%v, want empty fleet", plan, ok)
	}
}

// TestPlanFleetInfeasible: demand beyond every tier's MaxNodes reports
// !ok instead of a silently short fleet.
func TestPlanFleetInfeasible(t *testing.T) {
	vs := []Variant{simVariant("fog", resources.FogDevice, 0.25, 2)}
	a, err := New(DefaultPolicy(), vs)
	if err != nil {
		t.Fatal(err)
	}
	if plan, ok := a.planFleet(5); ok {
		t.Fatalf("2-device tier planned %v for 5 reference cores", plan)
	}
}

// sig builds a one-signature Signals snapshot.
func sig(ready int, c resources.Constraints, capable, free, total int) Signals {
	s := Signals{Ready: ready, FreeCores: free, TotalCores: total}
	if ready > 0 {
		s.Sigs = []engine.SigLoad{{Sig: "s", Constraints: c, Ready: ready, Capable: capable}}
	}
	return s
}

// TestEvaluateStarved: queued work no pool node is capable of buys the
// cheapest tier per reference core whose shape can serve it.
func TestEvaluateStarved(t *testing.T) {
	a, _ := cloudFog(t)
	d := a.Evaluate(sig(3, resources.Constraints{Cores: 2}, 0, 1, 1))
	if d.Delta != +1 || d.Reason != "starved" || d.Variant != "cloud" {
		t.Fatalf("starved decision = %+v, want +1 cloud (cheapest per reference core)", d)
	}
}

// TestEvaluateStarvedNoVariant: starved demand no tier shape satisfies
// holds with "no-variant" instead of buying a useless node.
func TestEvaluateStarvedNoVariant(t *testing.T) {
	a, _ := cloudFog(t)
	d := a.Evaluate(sig(3, resources.Constraints{Cores: 64}, 0, 1, 1))
	if d.Delta != 0 || d.Reason != "no-variant" {
		t.Fatalf("unservable starvation = %+v, want no-variant hold", d)
	}
}

// TestEvaluateBacklogGrowsTowardPlan: an aggregate backlog grows the
// tier the cheapest fleet plan is missing, and once the fleet covers the
// plan the analyzer holds with "planned" while the queue drains.
func TestEvaluateBacklogGrowsTowardPlan(t *testing.T) {
	a, vs := cloudFog(t)
	pool := resources.NewPool()
	c := resources.Constraints{Cores: 1}

	d := a.Evaluate(sig(40, c, 1, 1, 1))
	if d.Delta != +1 || d.Reason != "backlog" {
		t.Fatalf("deep queue decision = %+v, want backlog grow", d)
	}
	// Execute grows until the fleet covers the plan; the analyzer must
	// then report "planned", not keep buying.
	for i := 0; i < 32; i++ {
		d = a.Evaluate(sig(40, c, 1, 1, 1))
		if d.Delta <= 0 {
			break
		}
		v := a.variant(d.Variant)
		if _, _, err := v.Manager.GrowOne(pool); err != nil {
			t.Fatal(err)
		}
	}
	if d.Reason != "planned" {
		t.Fatalf("after covering the plan: %+v, want planned hold", d)
	}
	total := 0
	for _, v := range vs {
		total += v.Manager.ElasticCount()
	}
	if total == 0 || total > 24 {
		t.Fatalf("fleet after backlog growth = %d nodes", total)
	}
}

// TestEvaluateReapsDrainedUnderLoad: a cordoned node that has bled dry
// is removed even while sub-threshold work trickles through the pool —
// it takes no placements, so keeping it is pure cost.
func TestEvaluateReapsDrainedUnderLoad(t *testing.T) {
	a, vs := cloudFog(t)
	pool := resources.NewPool()
	fog := vs[1]
	n1, _, err := fog.Manager.GrowOne(pool)
	if err != nil {
		t.Fatal(err)
	}
	n2, _, err := fog.Manager.GrowOne(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy both devices so the shrink cordons a BUSY victim (idle
	// victims are removed in the same call), then let the victim's work
	// finish: a bled-dry cordoned node, exactly mid-drain.
	hold := resources.Constraints{Cores: 1}
	for _, n := range []*resources.Node{n1, n2} {
		if err := n.Reserve(hold); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fog.Manager.ShrinkOne(pool); err != nil {
		t.Fatal(err)
	}
	victim := n1
	if !victim.Drained() {
		victim = n2
	}
	if !victim.Drained() {
		t.Fatal("no victim cordoned")
	}
	victim.Release(hold)
	if fog.Manager.DrainedCount() != 1 {
		t.Fatalf("DrainedCount = %d, want 1", fog.Manager.DrainedCount())
	}
	// One ready task on an 9-core pool is far below the threshold:
	// neither backlog nor idle, but the corpse must still be reaped.
	d := a.Evaluate(sig(1, resources.Constraints{Cores: 1}, 2, 8, 8))
	if d.Delta != -1 || d.Reason != "reap" || d.Variant != "fog" {
		t.Fatalf("decision with drained node = %+v, want fog reap", d)
	}
}

// TestEvaluateShedsToPlanFloor: with nothing queued the fleet sheds down
// to the plan for the decayed demand peak — most expensive tier first —
// and the demand peak's decay reaches exactly zero, so the last node
// goes too instead of idling forever on an ε-demand plan.
func TestEvaluateShedsToPlanFloor(t *testing.T) {
	a, vs := cloudFog(t)
	pool := resources.NewPool()
	cloud, fog := vs[0], vs[1]
	for i := 0; i < 2; i++ {
		if _, _, err := fog.Manager.GrowOne(pool); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cloud.Manager.GrowOne(pool); err != nil {
		t.Fatal(err)
	}

	idle := Signals{FreeCores: pool.FreeCores(), TotalCores: pool.TotalCores()}
	seen := map[string]int{}
	for i := 0; i < 40; i++ {
		act := a.Step(pool, idle)
		seen[act.Decision.Reason]++
		if cloud.Manager.ElasticCount()+fog.Manager.ElasticCount() == 0 {
			break
		}
	}
	if cloud.Manager.ElasticCount() != 0 || fog.Manager.ElasticCount() != 0 {
		t.Fatalf("fleet not fully shed: cloud=%d fog=%d (reasons %v)",
			cloud.Manager.ElasticCount(), fog.Manager.ElasticCount(), seen)
	}
	// Idle victims are cordoned and removed in the same ShrinkOne call,
	// so a fully idle fleet sheds with one "idle" decision per node.
	if seen["idle"] < 3 {
		t.Fatalf("shed cycle reasons = %v, want three idle sheds", seen)
	}
	// The first shed must have targeted the expensive tier.
	for _, d := range a.Decisions() {
		if d.Delta < 0 {
			if d.Variant != "cloud" {
				t.Fatalf("first shed hit %q, want the expensive cloud tier", d.Variant)
			}
			break
		}
	}
}

// TestEvaluateMonotoneInReady: on a fresh analyzer, Delta as a function
// of the ready depth never decreases — more queued work can turn a hold
// into a grow but never a grow into a shrink.
func TestEvaluateMonotoneInReady(t *testing.T) {
	prev := -2
	for ready := 0; ready <= 100; ready++ {
		a, _ := cloudFog(t)
		d := a.Evaluate(sig(ready, resources.Constraints{Cores: 1}, 1, 2, 2))
		if d.Delta < prev {
			t.Fatalf("Ready=%d: Delta %d < previous %d", ready, d.Delta, prev)
		}
		prev = d.Delta
	}
}

// TestEvaluateDeterministic: two analyzers over identical variant state
// fed the identical Signals sequence produce identical decision
// sequences — the property the sim-vs-live parity suite stands on.
func TestEvaluateDeterministic(t *testing.T) {
	mk := func() (*Autoscaler, *resources.Pool) {
		a, _ := cloudFog(t)
		return a, resources.NewPool()
	}
	a1, p1 := mk()
	a2, p2 := mk()
	rng := rand.New(rand.NewSource(42))
	var sigs []Signals
	for i := 0; i < 300; i++ {
		s := sig(rng.Intn(30), resources.Constraints{Cores: 1 + rng.Intn(2)}, rng.Intn(3), 2, 2)
		s.At = time.Duration(i) * 10 * time.Second
		sigs = append(sigs, s)
	}
	for _, s := range sigs {
		a1.Step(p1, s)
		a2.Step(p2, s)
	}
	d1, d2 := a1.Decisions(), a2.Decisions()
	if len(d1) != len(d2) {
		t.Fatalf("decision counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs:\n  %+v\n  %+v", i, d1[i], d2[i])
		}
	}
}

// TestStepNeverNegativeCapacity: across a random signal storm the
// variant managers and the pool stay consistent — no negative counts,
// no pool cores below zero, and every shrink is drain-then-remove (a
// Removed action only ever reaps a node with nothing running).
func TestStepNeverNegativeCapacity(t *testing.T) {
	a, vs := cloudFog(t)
	pool := resources.NewPool()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		s := sig(rng.Intn(40), resources.Constraints{Cores: 1}, rng.Intn(2), pool.FreeCores(), pool.TotalCores())
		act := a.Step(pool, s)
		if act.Kind == Removed && act.Node.Running() != 0 {
			t.Fatalf("step %d removed node %s with %d running tasks", i, act.Node.Name(), act.Node.Running())
		}
		for _, v := range vs {
			if v.Manager.ElasticCount() < 0 || v.Manager.DrainingCount() < 0 {
				t.Fatalf("step %d: %s counts negative", i, v.Name)
			}
		}
		if pool.FreeCores() < 0 || pool.FreeCores() > pool.TotalCores() {
			t.Fatalf("step %d: pool cores inconsistent: free=%d total=%d", i, pool.FreeCores(), pool.TotalCores())
		}
	}
}

// TestNewValidation: variant sets must be non-empty, named, managed and
// unique.
func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultPolicy(), nil); err == nil {
		t.Fatal("New accepted an empty variant set")
	}
	if _, err := New(DefaultPolicy(), []Variant{{Name: "x"}}); err == nil {
		t.Fatal("New accepted a manager-less variant")
	}
	v := simVariant("dup", resources.FogDevice, 1, 1)
	if _, err := New(DefaultPolicy(), []Variant{v, v}); err == nil {
		t.Fatal("New accepted duplicate variant names")
	}
}
