// Package energy accounts for the energy consumed by workflow executions.
// The paper sets energy efficiency as a first-class runtime objective
// ("runtimes … able to exploit the performance of the underlying computing
// continuum infrastructures in an energy efficient way", Sec. I; "the
// carbon footprint of ICT processes is a concern").
//
// The model is the standard linear one: P(node) = P_idle + n_busy_cores ×
// P_core. Energy integrates power over (virtual) time. This is sufficient
// to rank schedulers, which is all the experiments need (E10).
package energy

import (
	"sync"
	"time"

	"repro/internal/resources"
)

// Joules is energy in joules.
type Joules float64

// TaskEnergy returns the active energy of one task: cores × activeW ×
// duration. This is the increment a scheduler can estimate per placement.
func TaskEnergy(desc resources.Description, cores int, d time.Duration) Joules {
	if cores <= 0 {
		cores = 1
	}
	return Joules(float64(cores) * desc.ActiveWattsPerCore * d.Seconds())
}

// IdleEnergy returns the baseline energy of one node over an interval.
func IdleEnergy(desc resources.Description, d time.Duration) Joules {
	return Joules(desc.IdleWatts * d.Seconds())
}

// Accountant accumulates energy per node. It is safe for concurrent use.
type Accountant struct {
	mu      sync.Mutex
	active  map[string]Joules
	spanned map[string]time.Duration // membership time per node, for idle energy
	descs   map[string]resources.Description
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{
		active:  make(map[string]Joules),
		spanned: make(map[string]time.Duration),
		descs:   make(map[string]resources.Description),
	}
}

// AddTask charges one task execution to a node.
func (a *Accountant) AddTask(node string, desc resources.Description, cores int, d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.descs[node] = desc
	a.active[node] += TaskEnergy(desc, cores, d)
}

// SetSpan records how long a node was part of the pool (for idle-power
// integration). Call once at the end of a run.
func (a *Accountant) SetSpan(node string, desc resources.Description, span time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.descs[node] = desc
	a.spanned[node] = span
}

// ActiveEnergy returns the total task (dynamic) energy.
func (a *Accountant) ActiveEnergy() Joules {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total Joules
	for _, j := range a.active {
		total += j
	}
	return total
}

// TotalEnergy returns dynamic plus idle energy across all nodes.
func (a *Accountant) TotalEnergy() Joules {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total Joules
	for _, j := range a.active {
		total += j
	}
	for node, span := range a.spanned {
		total += IdleEnergy(a.descs[node], span)
	}
	return total
}

// NodeEnergy returns the dynamic energy charged to one node.
func (a *Accountant) NodeEnergy(node string) Joules {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active[node]
}
