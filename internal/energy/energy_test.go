package energy

import (
	"math"
	"testing"
	"time"

	"repro/internal/resources"
)

func almostEqual(a, b Joules) bool { return math.Abs(float64(a-b)) < 1e-9 }

func TestTaskEnergy(t *testing.T) {
	d := resources.Description{ActiveWattsPerCore: 5}
	// 4 cores × 5 W × 10 s = 200 J.
	if got := TaskEnergy(d, 4, 10*time.Second); !almostEqual(got, 200) {
		t.Fatalf("TaskEnergy = %v, want 200", got)
	}
}

func TestTaskEnergyDefaultsToOneCore(t *testing.T) {
	d := resources.Description{ActiveWattsPerCore: 5}
	if got := TaskEnergy(d, 0, 10*time.Second); !almostEqual(got, 50) {
		t.Fatalf("TaskEnergy(0 cores) = %v, want 50", got)
	}
}

func TestIdleEnergy(t *testing.T) {
	d := resources.Description{IdleWatts: 100}
	if got := IdleEnergy(d, time.Minute); !almostEqual(got, 6000) {
		t.Fatalf("IdleEnergy = %v, want 6000", got)
	}
}

func TestAccountantAccumulates(t *testing.T) {
	a := NewAccountant()
	d := resources.Description{IdleWatts: 10, ActiveWattsPerCore: 2}
	a.AddTask("n1", d, 1, time.Second)   // 2 J
	a.AddTask("n1", d, 2, time.Second)   // 4 J
	a.AddTask("n2", d, 1, 2*time.Second) // 4 J
	if got := a.ActiveEnergy(); !almostEqual(got, 10) {
		t.Fatalf("ActiveEnergy = %v, want 10", got)
	}
	if got := a.NodeEnergy("n1"); !almostEqual(got, 6) {
		t.Fatalf("NodeEnergy(n1) = %v, want 6", got)
	}
	a.SetSpan("n1", d, 10*time.Second) // 100 J idle
	a.SetSpan("n2", d, 10*time.Second) // 100 J idle
	if got := a.TotalEnergy(); !almostEqual(got, 210) {
		t.Fatalf("TotalEnergy = %v, want 210", got)
	}
}

func TestFogBeatsHPCOnTinyTasks(t *testing.T) {
	// The energy rationale for fog offloading: a fog device runs a tiny
	// task slower but at far lower power.
	hpc := resources.MareNostrumNode
	fog := resources.FogDevice
	base := time.Second
	eHPC := TaskEnergy(hpc, 1, time.Duration(float64(base)/hpc.SpeedFactor))
	eFog := TaskEnergy(fog, 1, time.Duration(float64(base)/fog.SpeedFactor))
	if eFog >= eHPC {
		t.Fatalf("fog task energy %v should undercut HPC %v", eFog, eHPC)
	}
}
