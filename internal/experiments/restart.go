// E14 — crash-restart durability. Lineage recovery (E7) survives losing
// a node; E14 measures surviving the loss of the whole engine: a
// workload runs with periodic checkpoints, the process "dies" mid-run
// (the simulator's HaltAt), and a fresh engine restores the latest
// valid snapshot and finishes the workload. The claim under test is the
// durability contract of internal/engine/checkpoint: zero tasks the
// snapshot records as completed execute again, so the work lost to a
// crash is bounded by one checkpoint period plus the in-flight tasks.
package experiments

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/engine/checkpoint"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// E14Result is one crash-restart run.
type E14Result struct {
	// Workload names the generator; Tasks is its size.
	Workload string
	Tasks    int
	// EveryN is the checkpoint policy (snapshot per N completions).
	EveryN int
	// CrashAt is the simulated process death instant.
	CrashAt time.Duration
	// CompletedBeforeCrash counts completions in the first incarnation.
	CompletedBeforeCrash int
	// SnapshotTasks counts completed tasks in the restored snapshot
	// (≤ CompletedBeforeCrash: work since the last snapshot is lost).
	SnapshotTasks int
	// Restored counts tasks the second incarnation resolved from the
	// snapshot instead of executing.
	Restored int
	// RecomputedRestored counts restored tasks that executed again in
	// the resumed run — the durability contract demands zero.
	RecomputedRestored int
	// ResumedLaunches counts task launches in the resumed run.
	ResumedLaunches int
	// ColdMakespan / ResumedMakespan compare a from-scratch run with the
	// resumed run's remaining virtual time.
	ColdMakespan, ResumedMakespan time.Duration
}

// e14Pool builds the experiment's rig: an 8-node HPC pool.
func e14Pool() *resources.Pool {
	pool := resources.NewPool()
	for i := 0; i < 8; i++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("hpc%03d", i), resources.MareNostrumNode))
	}
	return pool
}

func e14Config() infra.Config {
	net := simnet.Continuum()
	pool := e14Pool()
	for _, n := range pool.Nodes() {
		net.SetZone(n.Name(), n.Desc().Class.String())
	}
	return infra.Config{Pool: pool, Net: net, Policy: sched.MinLoad{}}
}

// E14CrashRestart runs the drill on a GWAS-shaped workload: checkpoint
// every everyN completions, kill the engine at half the cold makespan,
// restore from the latest valid snapshot, and account what re-ran.
func E14CrashRestart(chromosomes, imputations, everyN int) (E14Result, error) {
	g := workloads.DefaultGWAS()
	g.Chromosomes = chromosomes
	g.ImputationsPerChrom = imputations
	specs, stageIn := workloads.GWAS(g)

	newCfg := func() infra.Config {
		cfg := e14Config()
		cfg.StageIn = stageIn
		return cfg
	}

	// Cold run: the baseline makespan, and the crash instant.
	cold, err := infra.New(newCfg(), specs)
	if err != nil {
		return E14Result{}, err
	}
	coldRes, err := cold.Run()
	if err != nil {
		return E14Result{}, err
	}
	res := E14Result{
		Workload: "gwas", Tasks: len(specs), EveryN: everyN,
		CrashAt: coldRes.Makespan / 2, ColdMakespan: coldRes.Makespan,
	}

	// Incarnation 1: checkpoints on, crash mid-run.
	dir, err := os.MkdirTemp("", "e14-ckpt-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		return res, err
	}
	cfg1 := newCfg()
	cfg1.Checkpoint = &checkpoint.Config{Store: store, Policy: checkpoint.EveryN(everyN)}
	cfg1.HaltAt = res.CrashAt
	sim1, err := infra.New(cfg1, specs)
	if err != nil {
		return res, err
	}
	res1, err := sim1.Run()
	if !errors.Is(err, infra.ErrHalted) {
		return res, fmt.Errorf("E14: first incarnation: got %v, want ErrHalted", err)
	}
	res.CompletedBeforeCrash = res1.TasksCompleted

	// Incarnation 2: restore and finish.
	snap, err := store.Latest()
	if err != nil {
		return res, fmt.Errorf("E14: no snapshot survived the crash: %w", err)
	}
	res.SnapshotTasks = len(snap.Completed)
	tr := trace.New(0)
	cfg2 := newCfg()
	cfg2.Restore = snap
	cfg2.Tracer = tr
	sim2, err := infra.New(cfg2, specs)
	if err != nil {
		return res, err
	}
	res2, err := sim2.Run()
	if err != nil {
		return res, fmt.Errorf("E14: resumed run: %w", err)
	}
	res.Restored = res2.TasksRestored
	res.ResumedMakespan = res2.Makespan
	res.ResumedLaunches = sim2.EngineStats().Launched

	// The durability contract: no restored task starts again.
	restored := make(map[int64]bool, len(snap.Completed))
	for _, id := range snap.CompletedIDs() {
		restored[id] = true
	}
	for _, ev := range tr.Events() {
		if ev.Kind == trace.TaskStarted && restored[ev.Task] {
			res.RecomputedRestored++
		}
	}
	return res, nil
}
