package experiments

import "testing"

func TestA1RenamingRemovesFalseEdges(t *testing.T) {
	rows, err := A1Renaming(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	with, without := rows[0], rows[1]
	if !with.Renaming || without.Renaming {
		t.Fatal("row order wrong")
	}
	if with.WAR != 0 || with.WAW != 0 {
		t.Fatalf("renaming left false edges: %+v", with)
	}
	if without.WAR == 0 {
		t.Fatalf("no-renaming produced no WAR edges on a stencil: %+v", without)
	}
	if without.TotalEdges <= with.TotalEdges {
		t.Fatalf("edges: with=%d without=%d", with.TotalEdges, without.TotalEdges)
	}
	if without.Makespan < with.Makespan {
		t.Fatalf("false dependencies cannot speed things up: with=%v without=%v",
			with.Makespan, without.Makespan)
	}
}

func TestA2PriorityOrderingHelps(t *testing.T) {
	rows, err := A2Priority(48)
	if err != nil {
		t.Fatal(err)
	}
	full, stripped := rows[0], rows[1]
	if full.Makespan > stripped.Makespan {
		t.Fatalf("LPT ordering made things worse: full=%v stripped=%v",
			full.Makespan, stripped.Makespan)
	}
}
