// Package experiments contains the runners that regenerate every
// figure/claim of the paper's evaluation narrative (DESIGN.md §3,
// EXPERIMENTS.md). Each runner returns typed results; cmd/experiments
// formats them as tables and the root bench_test.go wraps them in
// testing.B benchmarks.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/deps"
	"repro/internal/infra"
	"repro/internal/lineage"
	"repro/internal/mlpredict"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/workloads"
)

// hpcPool builds n MareNostrum-class nodes named mn000….
func hpcPool(n int) *resources.Pool {
	pool := resources.NewPool()
	for i := 0; i < n; i++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("mn%03d", i), resources.MareNostrumNode))
	}
	return pool
}

func hpcNet(pool *resources.Pool) *simnet.Network {
	net := simnet.Continuum()
	for _, n := range pool.Nodes() {
		net.SetZone(n.Name(), n.Desc().Class.String())
	}
	return net
}

func mustRun(cfg infra.Config, specs []infra.TaskSpec) (infra.Result, error) {
	sim, err := infra.New(cfg, specs)
	if err != nil {
		return infra.Result{}, err
	}
	return sim.Run()
}

// --- E1: GUIDANCE scalability -------------------------------------------

// E1Point is one row of the scalability table.
type E1Point struct {
	Nodes    int
	Cores    int
	Makespan time.Duration
	Speedup  float64 // vs the 1-node run
	Eff      float64 // Speedup / Nodes
}

// E1Guidance sweeps the GWAS workflow over node counts (paper: "executed
// with up to 100 nodes of the Marenostrum supercomputer (4800 cores),
// showing good scalability").
func E1Guidance(nodeCounts []int, cfg workloads.GWASConfig) ([]E1Point, error) {
	specs, stageIn := workloads.GWAS(cfg)
	var base time.Duration
	out := make([]E1Point, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		pool := hpcPool(n)
		res, err := mustRun(infra.Config{
			Pool:    pool,
			Net:     hpcNet(pool),
			Policy:  sched.MinLoad{},
			StageIn: stageIn,
		}, specs)
		if err != nil {
			return nil, fmt.Errorf("E1 n=%d: %w", n, err)
		}
		if base == 0 {
			base = res.Makespan
		}
		p := E1Point{
			Nodes:    n,
			Cores:    n * resources.MareNostrumNode.Cores,
			Makespan: res.Makespan,
			Speedup:  float64(base) / float64(res.Makespan),
		}
		p.Eff = p.Speedup / (float64(n) / float64(nodeCounts[0]))
		out = append(out, p)
	}
	return out, nil
}

// --- E2: variable memory constraints -------------------------------------

// E2Result compares static worst-case memory reservation against dynamic
// per-task constraints.
type E2Result struct {
	StaticMakespan   time.Duration
	VariableMakespan time.Duration
	// Reduction is 1 − variable/static; the paper reports ≈ 0.5.
	Reduction float64
}

// E2MemoryConstraints runs the GWAS workflow both ways on the same pool.
func E2MemoryConstraints(nodes int, cfg workloads.GWASConfig) (E2Result, error) {
	variable := cfg
	variable.StaticWorstCase = false
	static := cfg
	static.StaticWorstCase = true

	run := func(c workloads.GWASConfig) (time.Duration, error) {
		specs, stageIn := workloads.GWAS(c)
		pool := hpcPool(nodes)
		res, err := mustRun(infra.Config{
			Pool: pool, Net: hpcNet(pool), Policy: sched.MinLoad{}, StageIn: stageIn,
		}, specs)
		return res.Makespan, err
	}
	sm, err := run(static)
	if err != nil {
		return E2Result{}, err
	}
	vm, err := run(variable)
	if err != nil {
		return E2Result{}, err
	}
	return E2Result{
		StaticMakespan:   sm,
		VariableMakespan: vm,
		Reduction:        1 - float64(vm)/float64(sm),
	}, nil
}

// --- E3: NMMB-Monarch init parallelisation -------------------------------

// E3Result compares the original serial init driver with the PyCOMPSs
// task-parallel port.
type E3Result struct {
	SerialMakespan   time.Duration
	ParallelMakespan time.Duration
	Speedup          float64
}

// E3NMMBInit runs the weather workflow both ways.
func E3NMMBInit(nodes int, cfg workloads.NMMBConfig) (E3Result, error) {
	run := func(parallel bool) (time.Duration, error) {
		c := cfg
		c.ParallelInit = parallel
		pool := hpcPool(nodes)
		res, err := mustRun(infra.Config{
			Pool: pool, Net: hpcNet(pool), Policy: sched.MinLoad{},
		}, workloads.NMMB(c))
		return res.Makespan, err
	}
	serial, err := run(false)
	if err != nil {
		return E3Result{}, err
	}
	parallel, err := run(true)
	if err != nil {
		return E3Result{}, err
	}
	return E3Result{
		SerialMakespan:   serial,
		ParallelMakespan: parallel,
		Speedup:          float64(serial) / float64(parallel),
	}, nil
}

// --- E4: storage locality through getLocations ---------------------------

// E4Result compares locality-aware placement against locality-blind.
type E4Result struct {
	Policy     string
	BytesMoved int64
	Makespan   time.Duration
}

// E4StorageLocality partitions a Hecuba-style dataset across the compute
// nodes (one shard per node, like Cassandra collocated with workers) and
// runs one analysis task per shard.
func E4StorageLocality(nodes, shardsPerNode int, shardMB int64, policies []sched.Policy) ([]E4Result, error) {
	pool := hpcPool(nodes)
	names := make([]string, 0, nodes)
	for _, n := range pool.Nodes() {
		names = append(names, n.Name())
	}

	stageIn := make(map[deps.DataID]int64)
	stageNodes := make(map[deps.DataID][]string)
	var specs []infra.TaskSpec
	var d deps.DataID = 1
	var tid int64
	for ni := 0; ni < nodes; ni++ {
		for s := 0; s < shardsPerNode; s++ {
			stageIn[d] = shardMB * 1e6
			stageNodes[d] = []string{names[ni]}
			out := d + 100000
			specs = append(specs, infra.TaskSpec{
				ID: tid, Class: "shard.scan", Duration: 20 * time.Second,
				Accesses: []deps.Access{
					{Data: d, Dir: deps.In},
					{Data: out, Dir: deps.Out},
				},
				OutputBytes: map[deps.DataID]int64{out: 1e6},
			})
			d++
			tid++
		}
	}

	out := make([]E4Result, 0, len(policies))
	for _, p := range policies {
		pool := hpcPool(nodes)
		res, err := mustRun(infra.Config{
			Pool: pool, Net: hpcNet(pool), Policy: p,
			StageIn: stageIn, StageInNodes: stageNodes,
		}, specs)
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", p.Name(), err)
		}
		out = append(out, E4Result{Policy: p.Name(), BytesMoved: res.BytesMoved, Makespan: res.Makespan})
	}
	return out, nil
}

// --- E7: failure recovery with persisted outputs -------------------------

// E7Result compares recovery with and without dataClay-style persistence.
type E7Result struct {
	Persistence     bool
	Makespan        time.Duration
	TasksFailed     int
	TasksReExecuted int
}

// E7FailureRecovery runs a pipeline workload on fog nodes, kills one node
// mid-run, and measures the recovery cost both ways.
func E7FailureRecovery(stages, width int) ([]E7Result, error) {
	mkSpecs := func() []infra.TaskSpec {
		var specs []infra.TaskSpec
		var d deps.DataID = 1
		var tid int64
		prev := make([]deps.DataID, width)
		for s := 0; s < stages; s++ {
			cur := make([]deps.DataID, width)
			for w := 0; w < width; w++ {
				cur[w] = d
				d++
				acc := []deps.Access{{Data: cur[w], Dir: deps.Out}}
				if s > 0 {
					acc = append(acc, deps.Access{Data: prev[w], Dir: deps.In})
				}
				specs = append(specs, infra.TaskSpec{
					ID: tid, Class: "fog.stage", Duration: 30 * time.Second,
					Accesses:    acc,
					OutputBytes: map[deps.DataID]int64{cur[w]: 5e6},
				})
				tid++
			}
			prev = cur
		}
		return specs
	}

	run := func(persist bool) (E7Result, error) {
		pool := resources.NewPool()
		for i := 0; i < 4; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("fog%d", i), resources.FogDevice))
		}
		persistNode := ""
		if persist {
			persistNode = "vault"
			_ = pool.Add(resources.NewNode("vault", resources.Description{
				Cores: 0, MemoryMB: 0, Class: resources.Cloud, SpeedFactor: 1,
			}))
		}
		net := simnet.Continuum()
		for _, n := range pool.Nodes() {
			net.SetZone(n.Name(), n.Desc().Class.String())
		}
		res, err := mustRun(infra.Config{
			Pool: pool, Net: net, Policy: sched.MinLoad{},
			PersistNode: persistNode,
			Failures:    []infra.Failure{{Node: "fog1", At: 3 * time.Minute}},
		}, mkSpecs())
		if err != nil {
			return E7Result{}, err
		}
		return E7Result{
			Persistence:     persist,
			Makespan:        res.Makespan,
			TasksFailed:     res.TasksFailed,
			TasksReExecuted: res.TasksReExecuted,
		}, nil
	}
	with, err := run(true)
	if err != nil {
		return nil, err
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}
	return []E7Result{with, without}, nil
}

// --- E8: ML-guided scheduling --------------------------------------------

// E8Point is one repeated-execution measurement.
type E8Point struct {
	Run          int
	FIFOMakespan time.Duration
	MLMakespan   time.Duration
}

// E8MLScheduler repeats a heterogeneous workload on a heterogeneous pool;
// the ML policy shares a predictor across runs, learning from previous
// executions (paper Sec. VI-C). The pool is under-subscribed (tasks should
// be below total cores) so placement and ordering decisions are visible:
// the trained policy runs long tasks first on fast nodes (LPT), while FIFO
// scatters them blindly.
func E8MLScheduler(runs, tasks int) ([]E8Point, error) {
	mkPool := func() *resources.Pool {
		pool := resources.NewPool()
		// 3 fast HPC nodes, 6 slow cloud nodes: a bad placement of a
		// large task on a slow node is costly, and the fast tier is wide
		// enough to hold the expected number of large tasks.
		for i := 0; i < 3; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("fast%d", i), resources.Description{
				Cores: 8, MemoryMB: 64000, Class: resources.HPC, SpeedFactor: 1.0,
				IdleWatts: 150, ActiveWattsPerCore: 6,
			}))
		}
		for i := 0; i < 6; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("slow%d", i), resources.Description{
				Cores: 8, MemoryMB: 32000, Class: resources.Cloud, SpeedFactor: 0.25,
				IdleWatts: 40, ActiveWattsPerCore: 8,
			}))
		}
		return pool
	}
	pred := mlpredict.NewPredictor(10 * time.Second)
	out := make([]E8Point, 0, runs)
	for r := 0; r < runs; r++ {
		specs := workloads.HeterogeneousMix(tasks, int64(100+r))
		fifoPool := mkPool()
		fifoRes, err := mustRun(infra.Config{
			Pool: fifoPool, Net: hpcNet(fifoPool), Policy: sched.FIFO{},
		}, specs)
		if err != nil {
			return nil, err
		}
		mlPool := mkPool()
		mlRes, err := mustRun(infra.Config{
			Pool: mlPool, Net: hpcNet(mlPool), Policy: sched.ML{}, Predictor: pred,
		}, specs)
		if err != nil {
			return nil, err
		}
		out = append(out, E8Point{Run: r + 1, FIFOMakespan: fifoRes.Makespan, MLMakespan: mlRes.Makespan})
	}
	return out, nil
}

// --- E9: store vs recompute ----------------------------------------------

// E9Point is one storage-bandwidth setting.
type E9Point struct {
	StorageMBps  float64
	StoreAll     time.Duration
	RecomputeAll time.Duration
	Adaptive     time.Duration
}

// E9StoreRecompute sweeps storage bandwidth over a pipeline lineage and
// prices the three policies (paper Sec. VI-C).
func E9StoreRecompute(bandwidths []float64, depth int, sizeMB int64, computeSec float64, reuse int) ([]E9Point, error) {
	g := lineage.NewGraph()
	var prev []lineage.ItemID
	var id lineage.ItemID = 1
	// Source.
	if err := g.Add(lineage.Item{ID: id, SizeBytes: sizeMB * 1e6}); err != nil {
		return nil, err
	}
	prev = []lineage.ItemID{id}
	id++
	for d := 0; d < depth; d++ {
		if err := g.Add(lineage.Item{
			ID: id, SizeBytes: sizeMB * 1e6,
			ComputeCost: time.Duration(computeSec * float64(time.Second)),
			Inputs:      prev,
		}); err != nil {
			return nil, err
		}
		prev = []lineage.ItemID{id}
		id++
	}
	sink := id - 1
	accesses := make([]lineage.ItemID, reuse)
	for i := range accesses {
		accesses[i] = sink
	}
	out := make([]E9Point, 0, len(bandwidths))
	for _, bw := range bandwidths {
		m := lineage.CostModel{StorageMBps: bw}
		out = append(out, E9Point{
			StorageMBps:  bw,
			StoreAll:     g.Evaluate(lineage.StoreAll, accesses, float64(reuse), m).TotalTime,
			RecomputeAll: g.Evaluate(lineage.RecomputeAll, accesses, float64(reuse), m).TotalTime,
			Adaptive:     g.Evaluate(lineage.Adaptive, accesses, float64(reuse), m).TotalTime,
		})
	}
	return out, nil
}

// --- E10: energy-aware scheduling ----------------------------------------

// E10Result compares performance-first and energy-aware placement.
// ActiveJ is the task-attributable (dynamic) energy — the figure the
// placement controls; TotalJ adds the pool's idle power over the makespan,
// which charges long makespans for keeping idle HPC nodes powered.
type E10Result struct {
	Policy   string
	Makespan time.Duration
	ActiveJ  float64
	TotalJ   float64
}

// E10EnergyAware runs many small tasks on an HPC+fog pool under both
// policies.
func E10EnergyAware(tasks int) ([]E10Result, error) {
	mkPool := func() *resources.Pool {
		pool := resources.NewPool()
		for i := 0; i < 2; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("mn%d", i), resources.MareNostrumNode))
		}
		for i := 0; i < 8; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("fog%d", i), resources.FogDevice))
		}
		return pool
	}
	specs := workloads.EmbarrassinglyParallel(tasks, 10*time.Second, 500)
	var out []E10Result
	for _, p := range []sched.Policy{sched.EFT{}, sched.EnergyAware{MaxSlowdown: 5}} {
		pool := mkPool()
		res, err := mustRun(infra.Config{Pool: pool, Net: hpcNet(pool), Policy: p}, specs)
		if err != nil {
			return nil, err
		}
		out = append(out, E10Result{
			Policy:   p.Name(),
			Makespan: res.Makespan,
			ActiveJ:  float64(res.ActiveEnergy),
			TotalJ:   float64(res.TotalEnergy),
		})
	}
	return out, nil
}

// --- E11: elasticity -------------------------------------------------------

// E11Result compares a fixed pool with an elastic one on a bursty load.
type E11Result struct {
	Mode        string
	Makespan    time.Duration
	NodeSeconds float64
	PeakNodes   int
}

// E11Elasticity submits task bursts at t=0, t=10min, t=20min.
func E11Elasticity(burst int) ([]E11Result, error) {
	mkSpecs := func() []infra.TaskSpec {
		var specs []infra.TaskSpec
		id := int64(0)
		for b := 0; b < 3; b++ {
			release := time.Duration(b) * 10 * time.Minute
			for i := 0; i < burst; i++ {
				specs = append(specs, infra.TaskSpec{
					ID: id, Class: "burst", Duration: 30 * time.Second, Release: release,
				})
				id++
			}
		}
		return specs
	}
	desc := resources.CloudVM

	// Fixed: 8 VMs for the whole run.
	fixedPool := resources.NewPool()
	for i := 0; i < 8; i++ {
		_ = fixedPool.Add(resources.NewNode(fmt.Sprintf("vm%d", i), desc))
	}
	fixedRes, err := mustRun(infra.Config{
		Pool: fixedPool, Net: hpcNet(fixedPool), Policy: sched.MinLoad{},
	}, mkSpecs())
	if err != nil {
		return nil, err
	}

	// Elastic: start empty, grow to ≤ 8, shrink when idle.
	prov := resources.NewSimProvider("vm", desc, 8, 30*time.Second)
	mgr := resources.NewElasticManager(prov, resources.ScalePolicy{
		MaxNodes: 8, TasksPerCore: 0.5, IdleCoresToShrink: 0,
	})
	elRes, err := mustRun(infra.Config{
		Pool: resources.NewPool(), Net: simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: sched.MinLoad{}, Elastic: mgr, ElasticEvery: 15 * time.Second,
	}, mkSpecs())
	if err != nil {
		return nil, err
	}
	return []E11Result{
		{Mode: "fixed-8", Makespan: fixedRes.Makespan, NodeSeconds: fixedRes.NodeSeconds, PeakNodes: fixedRes.PeakNodes},
		{Mode: "elastic", Makespan: elRes.Makespan, NodeSeconds: elRes.NodeSeconds, PeakNodes: elRes.PeakNodes},
	}, nil
}
