package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/compss"
	"repro/dislib"
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/storage/dataclay"
	"repro/internal/workloads"
)

// --- E5: dataClay method shipping ----------------------------------------

// E5Result compares in-store execution against fetch-then-compute.
type E5Result struct {
	ObjectMB     int64
	Operations   int
	ShippedBytes int64 // method-shipping traffic
	FetchedBytes int64 // fetch-based traffic
	Ratio        float64
}

// E5MethodShipping stores a large vector and runs `ops` aggregations both
// ways ("executed within the object store transparently … minimizes the
// number of data transfers", paper Sec. VI-A-1).
func E5MethodShipping(objectMB int64, ops int) (E5Result, error) {
	store, err := dataclay.NewStore([]string{"ds1", "ds2", "ds3"})
	if err != nil {
		return E5Result{}, err
	}
	store.RegisterClass(dataclay.Class{
		Name: "vector",
		Methods: map[string]dataclay.Method{
			"sum": func(state, _ any) (any, any, error) {
				v, ok := state.([]float64)
				if !ok {
					return state, nil, errors.New("bad state")
				}
				s := 0.0
				for _, x := range v {
					s += x
				}
				return state, s, nil
			},
		},
		Size: func(state any) int64 {
			v, _ := state.([]float64)
			return int64(8 * len(v))
		},
	})
	vec := make([]float64, objectMB*1e6/8)
	for i := range vec {
		vec[i] = 1
	}
	id, err := store.NewObject("vector", vec)
	if err != nil {
		return E5Result{}, err
	}

	// Method shipping.
	for i := 0; i < ops; i++ {
		if _, err := store.Call(id, "sum", nil, 16); err != nil {
			return E5Result{}, err
		}
	}
	shipped := store.Stats().BytesShipped

	// Fetch then compute.
	for i := 0; i < ops; i++ {
		state, err := store.Fetch(id)
		if err != nil {
			return E5Result{}, err
		}
		v, ok := state.([]float64)
		if !ok {
			return E5Result{}, fmt.Errorf("fetch returned %T", state)
		}
		s := 0.0
		for _, x := range v {
			s += x
		}
		_ = s
	}
	fetched := store.Stats().BytesFetched

	r := E5Result{ObjectMB: objectMB, Operations: ops, ShippedBytes: shipped, FetchedBytes: fetched}
	if shipped > 0 {
		r.Ratio = float64(fetched) / float64(shipped)
	}
	return r, nil
}

// --- E6: fog-to-cloud offloading ------------------------------------------

// E6Result compares running a task batch on a constrained fog device alone
// against offloading to peers (Fig. 5's fog-to-fog / fog-to-cloud paths).
type E6Result struct {
	Tasks      int
	LocalOnly  time.Duration
	WithPeers  time.Duration
	Speedup    float64
	PeerAgents int
}

// E6FogOffload runs real agents over loopback HTTP.
func E6FogOffload(tasks, peers int, taskDur time.Duration) (E6Result, error) {
	reg := agent.NewRegistry()
	reg.Register("work", func(_ []json.RawMessage) (json.RawMessage, error) {
		time.Sleep(taskDur)
		return json.Marshal(true)
	})

	runBatch := func(a *agent.Agent, offload bool) (time.Duration, error) {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, tasks)
		for i := 0; i < tasks; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				var err error
				if offload {
					_, err = a.RunAnywhere("work", nil)
				} else {
					_, err = a.RunLocal("work", nil)
				}
				errs[i] = err
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	// Local only: a 1-core fog device.
	solo, err := agent.New(agent.Config{Name: "fog-solo", Registry: reg, Cores: 1})
	if err != nil {
		return E6Result{}, err
	}
	defer solo.Close()
	localTime, err := runBatch(solo, false)
	if err != nil {
		return E6Result{}, err
	}

	// With peers: same device plus `peers` 4-core agents.
	origin, err := agent.New(agent.Config{Name: "fog-origin", Registry: reg, Cores: 1})
	if err != nil {
		return E6Result{}, err
	}
	defer origin.Close()
	var urls []string
	for i := 0; i < peers; i++ {
		p, err := agent.New(agent.Config{Name: fmt.Sprintf("peer%d", i), Registry: reg, Cores: 4})
		if err != nil {
			return E6Result{}, err
		}
		defer p.Close()
		urls = append(urls, p.URL())
	}
	origin.SetPeers(urls)
	peerTime, err := runBatch(origin, true)
	if err != nil {
		return E6Result{}, err
	}

	return E6Result{
		Tasks:      tasks,
		LocalOnly:  localTime,
		WithPeers:  peerTime,
		Speedup:    float64(localTime) / float64(peerTime),
		PeerAgents: peers,
	}, nil
}

// --- E12: abstraction levels ----------------------------------------------

// E12Result reports the same computation expressed at four abstraction
// levels (paper Sec. V, Fig. 2): all must agree; overheads are relative to
// plain Go.
type E12Result struct {
	Level    string
	Value    float64
	Elapsed  time.Duration
	Overhead float64 // vs plain Go
}

// E12AbstractionLevels sums a rows×cols matrix at the HLA (dislib), the
// patterns (Map+ReduceTree), the
// general-purpose (compss tasks) and the runtime-API (internal/core)
// levels.
func E12AbstractionLevels(rows, cols, rowsPerBlock int) ([]E12Result, error) {
	// Build a deterministic matrix.
	data := make([][]float64, rows)
	var want float64
	for i := range data {
		data[i] = make([]float64, cols)
		for j := range data[i] {
			v := float64((i*cols + j) % 17)
			data[i][j] = v
			want += v
		}
	}

	// Level 0: plain Go (reference, not part of the stack).
	start := time.Now()
	var plain float64
	for _, row := range data {
		for _, v := range row {
			plain += v
		}
	}
	plainT := time.Since(start)
	if plainT <= 0 {
		plainT = time.Nanosecond
	}

	var out []E12Result

	// Level HLA: dislib.
	{
		c := compss.New(compss.WithNodes(compss.NodeSpec{Name: "n", Cores: 4}))
		l, err := dislib.New(c)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		start := time.Now()
		arr, err := l.FromSlice(data, rowsPerBlock)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		got, err := arr.Sum()
		el := time.Since(start)
		c.Shutdown()
		if err != nil {
			return nil, err
		}
		out = append(out, E12Result{Level: "HLA (dislib)", Value: got, Elapsed: el,
			Overhead: float64(el) / float64(plainT)})
	}

	// Level patterns: MapReduceTree over the blocks.
	{
		c := compss.New(compss.WithNodes(compss.NodeSpec{Name: "n", Cores: 4}))
		err := c.RegisterTask("sumBlock", func(_ context.Context, args []any) ([]any, error) {
			block, ok := args[0].([][]float64)
			if !ok {
				return nil, errors.New("want block")
			}
			s := 0.0
			for _, row := range block {
				for _, v := range row {
					s += v
				}
			}
			return []any{s}, nil
		})
		if err == nil {
			err = c.RegisterTask("plus", func(_ context.Context, args []any) ([]any, error) {
				a, aok := args[0].(float64)
				b, bok := args[1].(float64)
				if !aok || !bok {
					return nil, errors.New("want floats")
				}
				return []any{a + b}, nil
			})
		}
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		start := time.Now()
		var blocks []any
		for b := 0; b < rows; b += rowsPerBlock {
			end := b + rowsPerBlock
			if end > rows {
				end = rows
			}
			blocks = append(blocks, data[b:end])
		}
		reduced, err := c.MapReduceTree("sumBlock", "plus", blocks)
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		v, err := c.WaitOn(reduced)
		el := time.Since(start)
		c.Shutdown()
		if err != nil {
			return nil, err
		}
		got, ok := v.(float64)
		if !ok {
			return nil, fmt.Errorf("patterns level returned %T", v)
		}
		out = append(out, E12Result{Level: "patterns (map+reduce-tree)", Value: got, Elapsed: el,
			Overhead: float64(el) / float64(plainT)})
	}

	// Level general-purpose: hand-written compss tasks.
	{
		c := compss.New(compss.WithNodes(compss.NodeSpec{Name: "n", Cores: 4}))
		err := c.RegisterTask("sumBlock", func(_ context.Context, args []any) ([]any, error) {
			block, ok := args[0].([][]float64)
			if !ok {
				return nil, errors.New("want block")
			}
			s := 0.0
			for _, row := range block {
				for _, v := range row {
					s += v
				}
			}
			return []any{s}, nil
		})
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		start := time.Now()
		var parts []*compss.Object
		for b := 0; b < rows; b += rowsPerBlock {
			end := b + rowsPerBlock
			if end > rows {
				end = rows
			}
			o := c.NewObject()
			if _, err := c.Call("sumBlock", compss.In(data[b:end]), compss.Write(o)); err != nil {
				c.Shutdown()
				return nil, err
			}
			parts = append(parts, o)
		}
		var got float64
		for _, p := range parts {
			v, err := c.WaitOn(p)
			if err != nil {
				c.Shutdown()
				return nil, err
			}
			f, ok := v.(float64)
			if !ok {
				c.Shutdown()
				return nil, fmt.Errorf("sumBlock returned %T", v)
			}
			got += f
		}
		el := time.Since(start)
		c.Shutdown()
		out = append(out, E12Result{Level: "general purpose (compss)", Value: got, Elapsed: el,
			Overhead: float64(el) / float64(plainT)})
	}

	// Level runtime API: direct internal/core usage.
	{
		rt := core.New(core.Config{})
		err := rt.Register(core.TaskDef{
			Name:        "sumBlock",
			Constraints: resources.Constraints{Cores: 1},
			Fn: func(_ context.Context, args []any) ([]any, error) {
				block, ok := args[0].([][]float64)
				if !ok {
					return nil, errors.New("want block")
				}
				s := 0.0
				for _, row := range block {
					for _, v := range row {
						s += v
					}
				}
				return []any{s}, nil
			},
		})
		if err != nil {
			rt.Shutdown()
			return nil, err
		}
		start := time.Now()
		var futures []*core.Future
		for b := 0; b < rows; b += rowsPerBlock {
			end := b + rowsPerBlock
			if end > rows {
				end = rows
			}
			h := rt.NewData()
			f, err := rt.Submit("sumBlock", core.In(data[b:end]), core.Write(h))
			if err != nil {
				rt.Shutdown()
				return nil, err
			}
			futures = append(futures, f)
		}
		var got float64
		for _, f := range futures {
			vals, err := f.Wait()
			if err != nil {
				rt.Shutdown()
				return nil, err
			}
			f64, ok := vals[0].(float64)
			if !ok {
				rt.Shutdown()
				return nil, fmt.Errorf("core sumBlock returned %T", vals[0])
			}
			got += f64
		}
		el := time.Since(start)
		rt.Shutdown()
		out = append(out, E12Result{Level: "runtime API (core)", Value: got, Elapsed: el,
			Overhead: float64(el) / float64(plainT)})
	}

	for _, r := range out {
		if r.Value != want {
			return nil, fmt.Errorf("level %q computed %v, want %v", r.Level, r.Value, want)
		}
	}
	return out, nil
}

// --- E13: engine-level work stealing --------------------------------------

// E13Result is one row of the work-stealing comparison: the same skewed
// workload under one steal mode.
type E13Result struct {
	Mode     string
	Makespan time.Duration
	Steals   int
	Util     float64
}

// E13WorkSteal runs the SkewedTiers workload (long tasks that only the
// fast tier may run, then a deep tail of short ones, all in one signature
// bucket) on a 1-HPC + 8-fog pool under the tier-guarding WaitFast
// policy, sweeping the engine's steal modes. Stealing-off shows the
// head-of-line blocking: the fog tier idles while the short tail waits
// behind the long head; stealing-on reclaims it.
func E13WorkSteal(nLong, nShort int) ([]E13Result, error) {
	mkPool := func() *resources.Pool {
		pool := resources.NewPool()
		_ = pool.Add(resources.NewNode("hpc0", resources.Description{
			Cores: 4, MemoryMB: 32_000, SpeedFactor: 1, Class: resources.HPC,
		}))
		for i := 0; i < 8; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("fog%d", i), resources.Description{
				Cores: 4, MemoryMB: 8_000, SpeedFactor: 0.25, Class: resources.Fog,
			}))
		}
		return pool
	}
	specs := workloads.SkewedTiers(nLong, nShort, 100*time.Second, 5*time.Second)
	modes := []struct {
		name  string
		steal engine.StealConfig
	}{
		{"off", engine.StealConfig{}},
		{"on-idle", engine.StealConfig{Mode: engine.StealOnIdle}},
		{"threshold:50", engine.StealConfig{Mode: engine.StealThreshold, Threshold: 50}},
	}
	var out []E13Result
	for _, m := range modes {
		pool := mkPool()
		sim, err := infra.New(infra.Config{
			Pool:   pool,
			Net:    hpcNet(pool),
			Policy: sched.WaitFast{Inner: sched.MinLoad{}, MaxSlowdown: 2, MinWait: 10 * time.Second},
			Steal:  m.steal,
		}, specs)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, E13Result{
			Mode:     m.name,
			Makespan: res.Makespan,
			Steals:   sim.EngineStats().Steals,
			Util:     res.Utilization,
		})
	}
	return out, nil
}
