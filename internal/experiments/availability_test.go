package experiments

import (
	"testing"
	"time"

	"repro/internal/engine"
)

// TestE15PoliciesEliminateRanMissing is the acceptance test of the
// availability layer: under a heal-bounded partition, run-anyway launches
// tasks without their data while defer and recompute both drive the
// "missing, run anyway" count to zero — defer by waiting the cut out,
// recompute by paying exactly one lineage re-run of the stranded
// producer and finishing long before the heal.
func TestE15PoliciesEliminateRanMissing(t *testing.T) {
	rows, err := E15PartitionRecovery(8, 4, 40*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[engine.Availability]E15Result{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	ra := byPolicy[engine.AvailRunAnyway]
	if ra.RanMissing == 0 {
		t.Fatal("run-anyway reported zero ran-missing launches; the cut never bit and the drill proves nothing")
	}
	for _, policy := range []engine.Availability{engine.AvailDefer, engine.AvailRecompute} {
		r := byPolicy[policy]
		if r.RanMissing != 0 {
			t.Fatalf("%s: %d tasks still ran with missing inputs, want 0", policy, r.RanMissing)
		}
		if r.Deferred == 0 {
			t.Fatalf("%s: nothing was parked; the policy never engaged", policy)
		}
	}
	if re := byPolicy[engine.AvailRecompute].Reexecuted; re != 1 {
		t.Fatalf("recompute paid %d lineage re-runs, want exactly 1 (the stranded producer)", re)
	}
	if d := byPolicy[engine.AvailDefer]; d.Reexecuted != 0 {
		t.Fatalf("defer paid %d lineage re-runs, want 0 (it waits, it does not recompute)", d.Reexecuted)
	}
	if rec, def := byPolicy[engine.AvailRecompute].Makespan, byPolicy[engine.AvailDefer].Makespan; rec >= def {
		t.Fatalf("recompute makespan %v not shorter than defer's %v under a long heal", rec, def)
	}
}

// TestE15ShrunkPoolRestore is the acceptance test of the placement-aware
// restore: resuming onto a pool missing a node re-stages the vanished
// node's replicas from the persist tier, restores every snapshotted
// completion, and recomputes none of them.
func TestE15ShrunkPoolRestore(t *testing.T) {
	res, err := E15ShrunkPoolRestore(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshotted == 0 {
		t.Fatal("no completed tasks in the restored snapshot; halt landed too early")
	}
	if res.Restored != res.Snapshotted {
		t.Fatalf("restored %d of %d snapshotted tasks; the persist tier should cover the vanished node",
			res.Restored, res.Snapshotted)
	}
	if res.Restaged == 0 {
		t.Fatal("nothing was re-staged; the removed node apparently held no exclusive replicas — drill misconfigured")
	}
	if res.RecomputedRestored != 0 {
		t.Fatalf("%d snapshotted tasks re-executed on the shrunk pool, want 0", res.RecomputedRestored)
	}
}
