package experiments

import "testing"

// TestE14NoRecomputeAfterRestart is the acceptance test of the
// checkpoint subsystem: after a mid-run engine crash and a restore from
// the latest snapshot, zero tasks the snapshot recorded as completed
// execute again, and the resumed run launches exactly the unfinished
// remainder.
func TestE14NoRecomputeAfterRestart(t *testing.T) {
	res, err := E14CrashRestart(4, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotTasks == 0 {
		t.Fatal("no completed tasks in the restored snapshot; crash landed too early")
	}
	if res.Restored != res.SnapshotTasks {
		t.Fatalf("restored %d of %d snapshot tasks (pool unchanged, all replicas should survive)",
			res.Restored, res.SnapshotTasks)
	}
	if res.RecomputedRestored != 0 {
		t.Fatalf("%d restored tasks re-executed after restart, want 0", res.RecomputedRestored)
	}
	if want := res.Tasks - res.Restored; res.ResumedLaunches != want {
		t.Fatalf("resumed run launched %d tasks, want %d (the unfinished remainder)",
			res.ResumedLaunches, want)
	}
	if res.ResumedMakespan >= res.ColdMakespan {
		t.Fatalf("resumed makespan %v not shorter than cold %v — restore bought nothing",
			res.ResumedMakespan, res.ColdMakespan)
	}
}
