package experiments

import (
	"time"

	"repro/internal/infra"
	"repro/internal/mlpredict"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// Ablations for the design decisions called out in DESIGN.md §6. They are
// not paper experiments; they justify the implementation choices.

// A1Result quantifies what version renaming buys (DESIGN.md §6 item 2,
// mirroring the COMPSs renaming mechanism).
type A1Result struct {
	Renaming   bool
	RAW        int
	WAR        int
	WAW        int
	TotalEdges int
	Makespan   time.Duration
}

// A1Renaming runs the producer-consumer loop (overwrite + long readers)
// with and without renaming in the access processor.
func A1Renaming(iters, readers int) ([]A1Result, error) {
	specs := workloads.ProducerConsumerLoop(iters, readers, 60*time.Second)
	run := func(disable bool) (A1Result, error) {
		pool := hpcPool(4)
		res, err := mustRun(infra.Config{
			Pool: pool, Net: hpcNet(pool), Policy: sched.MinLoad{},
			DisableRenaming: disable,
		}, specs)
		if err != nil {
			return A1Result{}, err
		}
		return A1Result{
			Renaming:   !disable,
			RAW:        res.DepEdges.RAW,
			WAR:        res.DepEdges.WAR,
			WAW:        res.DepEdges.WAW,
			TotalEdges: res.DepEdges.Total(),
			Makespan:   res.Makespan,
		}, nil
	}
	with, err := run(false)
	if err != nil {
		return nil, err
	}
	without, err := run(true)
	if err != nil {
		return nil, err
	}
	return []A1Result{with, without}, nil
}

// noPriority hides a policy's Prioritizer, isolating the effect of ready-
// queue ordering from node selection.
type noPriority struct {
	inner sched.Policy
}

var _ sched.Policy = noPriority{}

// Name implements sched.Policy.
func (p noPriority) Name() string { return p.inner.Name() + "-noprio" }

// Pick implements sched.Policy.
func (p noPriority) Pick(t *sched.TaskView, fitting []*resources.Node, ctx *sched.Context) *resources.Node {
	return p.inner.Pick(t, fitting, ctx)
}

// A2Result quantifies what LPT ordering adds on top of informed node
// selection.
type A2Result struct {
	Policy   string
	Makespan time.Duration
}

// A2Priority runs the heterogeneous mix with the full ML policy and with
// its ordering stripped, both pre-trained.
func A2Priority(tasks int) ([]A2Result, error) {
	var out []A2Result
	for _, strip := range []bool{false, true} {
		pred := mlpredict.NewPredictor(10 * time.Second)
		var policy sched.Policy = sched.ML{}
		if strip {
			policy = noPriority{inner: sched.ML{}}
		}
		var last time.Duration
		// Three executions: the first two train the predictor.
		for r := 0; r < 3; r++ {
			pool := resources.NewPool()
			for i := 0; i < 3; i++ {
				_ = pool.Add(resources.NewNode(nodeNameA2("fast", i), resources.Description{
					Cores: 8, MemoryMB: 64000, Class: resources.HPC, SpeedFactor: 1.0,
				}))
			}
			for i := 0; i < 6; i++ {
				_ = pool.Add(resources.NewNode(nodeNameA2("slow", i), resources.Description{
					Cores: 8, MemoryMB: 32000, Class: resources.Cloud, SpeedFactor: 0.25,
				}))
			}
			res, err := mustRun(infra.Config{
				Pool: pool, Net: hpcNet(pool), Policy: policy, Predictor: pred,
			}, workloads.HeterogeneousMix(tasks, int64(200+r)))
			if err != nil {
				return nil, err
			}
			last = res.Makespan
		}
		out = append(out, A2Result{Policy: policy.Name(), Makespan: last})
	}
	return out, nil
}

func nodeNameA2(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
