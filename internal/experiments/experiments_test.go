package experiments

import (
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workloads"
)

// smallGWAS keeps experiment tests fast.
func smallGWAS() workloads.GWASConfig {
	return workloads.GWASConfig{
		Chromosomes:         6,
		ImputationsPerChrom: 30,
		MeanTaskSeconds:     60,
		LowMemMB:            2000,
		HighMemMB:           16000,
		HighMemFrac:         0.2,
		InputFileMB:         50,
		Seed:                1,
	}
}

func TestE1SpeedupGrowsWithNodes(t *testing.T) {
	points, err := E1Guidance([]int{1, 2, 4, 8}, smallGWAS())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Speedup != 1 {
		t.Fatalf("base speedup = %v", points[0].Speedup)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Makespan > points[i-1].Makespan {
			t.Fatalf("makespan grew with more nodes: %+v", points)
		}
	}
	// "Good scalability": 8 nodes must give a clearly super-2x speedup.
	if points[3].Speedup < 2 {
		t.Fatalf("8-node speedup = %v, want ≥ 2", points[3].Speedup)
	}
}

func TestE2VariableMemoryWins(t *testing.T) {
	res, err := E2MemoryConstraints(2, smallGWAS())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ≈50% reduction; the shape requirement is a
	// substantial (>25%) improvement.
	if res.Reduction < 0.25 {
		t.Fatalf("memory-constraint reduction = %.2f (static %v, variable %v), want > 0.25",
			res.Reduction, res.StaticMakespan, res.VariableMakespan)
	}
}

func TestE3ParallelInitWins(t *testing.T) {
	cfg := workloads.DefaultNMMB()
	cfg.Cycles = 2
	res, err := E3NMMBInit(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.0 {
		t.Fatalf("NMMB speedup = %v, want > 1", res.Speedup)
	}
}

func TestE4LocalityMovesLessData(t *testing.T) {
	rows, err := E4StorageLocality(4, 8, 200, []sched.Policy{sched.Locality{}, sched.FIFO{}})
	if err != nil {
		t.Fatal(err)
	}
	loc, fifo := rows[0], rows[1]
	if loc.BytesMoved != 0 {
		t.Fatalf("locality moved %d bytes, want 0", loc.BytesMoved)
	}
	if fifo.BytesMoved == 0 {
		t.Fatal("fifo moved no data: experiment setup broken")
	}
	if loc.Makespan > fifo.Makespan {
		t.Fatalf("locality makespan %v worse than fifo %v", loc.Makespan, fifo.Makespan)
	}
}

func TestE5MethodShippingSavesTransfers(t *testing.T) {
	res, err := E5MethodShipping(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 100 {
		t.Fatalf("fetch/shipping ratio = %.1f, want ≥ 100 (shipped=%d fetched=%d)",
			res.Ratio, res.ShippedBytes, res.FetchedBytes)
	}
}

func TestE6OffloadingBeatsLocalOnly(t *testing.T) {
	res, err := E6FogOffload(12, 3, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.0 {
		t.Fatalf("offload speedup = %.2f (local %v, peers %v)", res.Speedup, res.LocalOnly, res.WithPeers)
	}
}

func TestE7LiveDrillRecovers(t *testing.T) {
	res, err := E7LiveRecoveryDrill(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("live drill produced wrong final values after the crash")
	}
	// Kill counts depend on wall-clock timing; the invariant is that the
	// workload completes correctly whatever the script managed to hit.
	t.Logf("drill: killed %d, re-executed %d in %v", res.TasksKilled, res.TasksReExecuted, res.Elapsed)
}

func TestE7PersistenceCheapensRecovery(t *testing.T) {
	rows, err := E7FailureRecovery(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	with, without := rows[0], rows[1]
	if !with.Persistence || without.Persistence {
		t.Fatal("row order wrong")
	}
	if with.TasksFailed == 0 {
		t.Fatal("failure injection did not kill any task")
	}
	if with.TasksReExecuted != 0 {
		t.Fatalf("persistence run re-executed %d completed tasks, want 0", with.TasksReExecuted)
	}
	if without.TasksReExecuted == 0 {
		t.Fatal("no-persistence run should recompute lost outputs")
	}
	if without.Makespan <= with.Makespan {
		t.Fatalf("no-persistence makespan %v should exceed persistence %v",
			without.Makespan, with.Makespan)
	}
}

func TestE8MLImprovesWithHistory(t *testing.T) {
	points, err := E8MLScheduler(4, 48)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.MLMakespan >= last.FIFOMakespan {
		t.Fatalf("trained ML makespan %v not better than FIFO %v",
			last.MLMakespan, last.FIFOMakespan)
	}
}

func TestE9CrossoverExists(t *testing.T) {
	points, err := E9StoreRecompute([]float64{1, 10, 100, 1000, 10000}, 6, 1000, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// At terrible bandwidth recompute wins; at great bandwidth store wins.
	first, last := points[0], points[len(points)-1]
	if first.RecomputeAll >= first.StoreAll {
		t.Fatalf("at %v MB/s recompute %v should beat store %v",
			first.StorageMBps, first.RecomputeAll, first.StoreAll)
	}
	if last.StoreAll >= last.RecomputeAll {
		t.Fatalf("at %v MB/s store %v should beat recompute %v",
			last.StorageMBps, last.StoreAll, last.RecomputeAll)
	}
	// Adaptive tracks the winner everywhere (1% slack).
	for _, p := range points {
		best := p.StoreAll
		if p.RecomputeAll < best {
			best = p.RecomputeAll
		}
		if float64(p.Adaptive) > 1.01*float64(best) {
			t.Fatalf("adaptive %v worse than best %v at %v MB/s", p.Adaptive, best, p.StorageMBps)
		}
	}
}

func TestE10EnergyPolicySavesEnergy(t *testing.T) {
	rows, err := E10EnergyAware(64)
	if err != nil {
		t.Fatal(err)
	}
	perf, energy := rows[0], rows[1]
	if energy.ActiveJ >= perf.ActiveJ {
		t.Fatalf("energy policy used %v J active vs perf %v J", energy.ActiveJ, perf.ActiveJ)
	}
	// The trade must respect the slowdown cap (5x).
	if energy.Makespan > 5*perf.Makespan {
		t.Fatalf("energy makespan %v blew past the 5x cap of %v", energy.Makespan, perf.Makespan)
	}
}

func TestE11ElasticUsesFewerNodeSeconds(t *testing.T) {
	rows, err := E11Elasticity(128)
	if err != nil {
		t.Fatal(err)
	}
	fixed, elastic := rows[0], rows[1]
	if elastic.NodeSeconds >= fixed.NodeSeconds {
		t.Fatalf("elastic node-seconds %.0f not below fixed %.0f",
			elastic.NodeSeconds, fixed.NodeSeconds)
	}
	if elastic.PeakNodes > 8 {
		t.Fatalf("elastic peak %d exceeds MaxNodes", elastic.PeakNodes)
	}
}

func TestE12AllLevelsAgree(t *testing.T) {
	rows, err := E12AbstractionLevels(200, 50, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[1:] {
		if r.Value != rows[0].Value {
			t.Fatalf("levels disagree: %+v", rows)
		}
	}
}

func TestE13StealingImprovesSkewedRun(t *testing.T) {
	rows, err := E13WorkSteal(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	off, on := rows[0], rows[1]
	if off.Steals != 0 || on.Steals == 0 {
		t.Fatalf("steal counts off/on = %d/%d, want 0/>0", off.Steals, on.Steals)
	}
	if on.Makespan > off.Makespan {
		t.Fatalf("stealing-on makespan %v worse than off %v", on.Makespan, off.Makespan)
	}
	if on.Util <= off.Util {
		t.Fatalf("stealing-on utilisation %.2f not above off %.2f", on.Util, off.Util)
	}
}
