// E15 — partition-aware data availability. A short network partition
// strands a produced datum on the wrong side of a cut while the tasks
// that consume it are pinned to the other side. The pre-availability
// engine launched them anyway ("missing, run anyway"); E15 measures the
// three engine.Availability policies against each other on the same
// scripted cut/heal, and then drills the placement-aware checkpoint
// restore: a snapshot taken on one pool is restored onto a *shrunk* pool,
// and every version whose compute replicas vanished with the removed
// node must be re-staged from the persist tier — zero snapshotted tasks
// recompute.
package experiments

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/checkpoint"
	"repro/internal/engine/faults"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// E15Result is one availability-policy run of the partition drill.
type E15Result struct {
	// Policy is the availability mode under test.
	Policy engine.Availability
	// Makespan is the run's virtual completion time.
	Makespan time.Duration
	// RanMissing counts launches that proceeded with unreachable inputs
	// (the silent failures defer/recompute must drive to zero).
	RanMissing int
	// Deferred counts placements parked in the availability wait set.
	Deferred int
	// Reexecuted counts lineage re-runs of completed tasks (recompute
	// pays exactly one for the stranded producer).
	Reexecuted int
	// Transfers counts planned input fetches.
	Transfers int
}

// e15Pool builds the drill rig: one HPC producer node ahead of a cloud
// consumer fleet, on the continuum network.
func e15Pool(consumNodes int) (*resources.Pool, *simnet.Network) {
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("src0", resources.Description{
		Cores: 4, MemoryMB: 32_000, SpeedFactor: 1, Class: resources.HPC,
	}))
	// The consumer VMs sort after src0 so MinLoad's name tie-break lands
	// the unpinned producer on the HPC node — the placement the scripted
	// cut is aimed at.
	for i := 0; i < consumNodes; i++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("vm%03d", i), resources.CloudVM))
	}
	net := simnet.Continuum()
	for _, n := range pool.Nodes() {
		net.SetZone(n.Name(), n.Desc().Class.String())
	}
	return pool, net
}

// E15PartitionRecovery runs the PartitionPipeline workload under a
// heal-bounded cut (the producer tier is cut away before the consumers
// become visible and healed at healAt) once per availability policy.
func E15PartitionRecovery(consumers, consumNodes int, healAt time.Duration) ([]E15Result, error) {
	var out []E15Result
	for _, policy := range []engine.Availability{
		engine.AvailRunAnyway, engine.AvailDefer, engine.AvailRecompute,
	} {
		pool, net := e15Pool(consumNodes)
		sim, err := infra.New(infra.Config{
			Pool: pool, Net: net, Policy: sched.MinLoad{},
			Availability: policy,
			Faults: faults.Scenario{
				{At: 5 * time.Second, Kind: faults.Cut, Node: "hpc", Peer: "cloud"},
				{At: healAt, Kind: faults.HealLink, Node: "hpc", Peer: "cloud"},
			},
		}, workloads.PartitionPipeline(consumers, 2*time.Second, 5*time.Second, 50e6, 10*time.Second))
		if err != nil {
			return nil, err
		}
		res, err := sim.Run()
		if err != nil {
			return nil, fmt.Errorf("E15 %s: %w", policy, err)
		}
		st := sim.EngineStats()
		out = append(out, E15Result{
			Policy:     policy,
			Makespan:   res.Makespan,
			RanMissing: st.RanMissing,
			Deferred:   st.Deferred,
			Reexecuted: st.Reexecuted,
			Transfers:  st.Transfers,
		})
	}
	return out, nil
}

// E15RestoreResult is the shrunk-pool restore drill.
type E15RestoreResult struct {
	// Tasks is the workload size; Snapshotted the completions recorded in
	// the restored snapshot.
	Tasks, Snapshotted int
	// RemovedNode is the node absent from the second incarnation's pool.
	RemovedNode string
	// Restored counts tasks resolved from the snapshot; Restaged the
	// versions copied back from the persist tier because their compute
	// replicas vanished with RemovedNode.
	Restored, Restaged int
	// RecomputedRestored counts snapshotted tasks that executed again in
	// the resumed run — the placement-aware restore contract demands zero.
	RecomputedRestored int
	// ResumedMakespan is the second incarnation's virtual time.
	ResumedMakespan time.Duration
}

// E15ShrunkPoolRestore checkpoints a map-reduce on a three-node pool with
// a dataClay-style persist tier, halts the engine after the map phase,
// then restores onto a pool missing one node. Map outputs whose only
// compute replica lived on the removed node are re-staged from the
// persist tier ahead of demand; no snapshotted task recomputes.
func E15ShrunkPoolRestore(nMap, nReduce int) (E15RestoreResult, error) {
	const mapDur = 10 * time.Second
	specs := workloads.MapReduce(nMap, nReduce, mapDur, 5*time.Second, 20e6)
	res := E15RestoreResult{Tasks: len(specs), RemovedNode: "n2"}

	newPool := func(nodes int) (*resources.Pool, *simnet.Network) {
		pool := resources.NewPool()
		for i := 0; i < nodes; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("n%d", i), resources.Description{
				Cores: 2, MemoryMB: 16_000, SpeedFactor: 1, Class: resources.Cloud,
			}))
		}
		net := simnet.Continuum()
		for _, n := range pool.Nodes() {
			net.SetZone(n.Name(), "cloud")
		}
		net.SetZone("persist", "cloud")
		return pool, net
	}

	dir, err := os.MkdirTemp("", "e15-ckpt-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		return res, err
	}

	// Incarnation 1: three nodes, persist tier, checkpoint every
	// completion, process dies just after the map phase drains (6 map
	// slots → ceil(nMap/6) waves of mapDur).
	waves := (nMap + 5) / 6
	pool1, net1 := newPool(3)
	sim1, err := infra.New(infra.Config{
		Pool: pool1, Net: net1, Policy: sched.MinLoad{},
		PersistNode: "persist",
		Checkpoint:  &checkpoint.Config{Store: store, Policy: checkpoint.EveryN(1)},
		HaltAt:      time.Duration(waves)*mapDur + 2*time.Second,
	}, specs)
	if err != nil {
		return res, err
	}
	if _, err := sim1.Run(); !errors.Is(err, infra.ErrHalted) {
		return res, fmt.Errorf("E15 restore: first incarnation: got %v, want ErrHalted", err)
	}

	// Incarnation 2: n2 is gone; restore must re-stage its replicas from
	// the persist tier instead of re-running their producers.
	snap, err := store.Latest()
	if err != nil {
		return res, err
	}
	res.Snapshotted = len(snap.Completed)
	tr := trace.New(0)
	pool2, net2 := newPool(2)
	sim2, err := infra.New(infra.Config{
		Pool: pool2, Net: net2, Policy: sched.MinLoad{},
		PersistNode: "persist",
		Restore:     snap,
		Tracer:      tr,
	}, specs)
	if err != nil {
		return res, err
	}
	res2, err := sim2.Run()
	if err != nil {
		return res, fmt.Errorf("E15 restore: resumed run: %w", err)
	}
	res.Restored = res2.TasksRestored
	res.Restaged = res2.ReplicasRestaged
	res.ResumedMakespan = res2.Makespan

	restored := make(map[int64]bool, len(snap.Completed))
	for _, id := range snap.CompletedIDs() {
		restored[id] = true
	}
	for _, ev := range tr.Events() {
		if ev.Kind == trace.TaskStarted && restored[ev.Task] {
			res.RecomputedRestored++
		}
	}
	return res, nil
}
