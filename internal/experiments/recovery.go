// The live half of experiment E7: the simulator measures recovery cost in
// virtual time (experiments.go); this file drives the *same* engine fault
// path on the live runtime — real goroutines, wall-clock fault script —
// and verifies the workload's final values survive the crash. This is the
// recovery drill the paper runs on a real fog deployment (Sec. VI-B).
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine/faults"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/transfer"
)

// E7DrillResult is one live recovery-drill run.
type E7DrillResult struct {
	// Stages × Width size the pipeline.
	Stages, Width int
	// TasksKilled counts executions invalidated by the crash.
	TasksKilled int
	// TasksReExecuted counts completed tasks recomputed by lineage
	// recovery.
	TasksReExecuted int
	// Recovered reports that every chain's final value was correct.
	Recovered bool
	// Elapsed is the wall time of the whole drill.
	Elapsed time.Duration
}

// E7LiveRecoveryDrill runs the E7 failure drill on the live runtime: a
// width-wide, stages-deep pipeline of real Go tasks on a logical fog
// pool, submitted in one batch; mid-run a scripted fault scenario — a
// slow node, then a node crash — fires from a wall-clock timer, killing
// in-flight goroutine executions via placement-epoch invalidation; the
// engine re-runs lost work through its lineage recovery path and the
// drill checks every chain still computes the right value.
func E7LiveRecoveryDrill(stages, width int) (E7DrillResult, error) {
	pool := resources.NewPool()
	for i := 0; i < 4; i++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("fog%d", i), resources.Description{
			Cores: 2, MemoryMB: 4000, SpeedFactor: 1, Class: resources.Fog,
		}))
	}
	rt := core.New(core.Config{
		Pool:      pool,
		Policy:    sched.MinLoad{},
		Locations: transfer.NewRegistry(),
		Net:       simnet.New(simnet.Link{BandwidthMBps: 100, Latency: time.Millisecond}),
	})
	defer rt.Shutdown()

	const stageWork = 10 * time.Millisecond
	err := rt.Register(core.TaskDef{Name: "fog.stage", Fn: func(ctx context.Context, args []any) ([]any, error) {
		// SlowSleep honors the drill's slow-node factor (fog2 runs its
		// stages 2× slower below) and returns early on a fault kill, in
		// which case recovery re-runs us.
		if err := core.SlowSleep(ctx, stageWork); err != nil {
			return nil, err
		}
		v, _ := args[0].(int)
		return []any{v + 1}, nil
	}})
	if err != nil {
		return E7DrillResult{}, err
	}

	// Build the pipeline as one batch: chain w's stage s reads version s
	// of its handle chain and writes the next.
	heads := make([]*core.Handle, width)
	var reqs []core.TaskReq
	for w := 0; w < width; w++ {
		prev := rt.NewData()
		rt.SetInitial(prev, 0, core.WithSize(5e6))
		for s := 0; s < stages; s++ {
			next := rt.NewData()
			reqs = append(reqs, core.TaskReq{
				Name:   "fog.stage",
				Params: []core.Param{core.Read(prev), core.WriteSized(next, 5e6)},
			})
			prev = next
		}
		heads[w] = prev
	}

	start := time.Now()
	if _, err := rt.SubmitAll(reqs); err != nil {
		return E7DrillResult{}, err
	}
	drill, err := faults.Run(faults.NewWallTimer(), rt, faults.Scenario{
		{At: 15 * time.Millisecond, Kind: faults.Slow, Node: "fog2", Factor: 2},
		{At: 25 * time.Millisecond, Kind: faults.Crash, Node: "fog1"},
	})
	if err != nil {
		return E7DrillResult{}, err
	}
	drill.Wait()
	rt.Barrier()

	res := E7DrillResult{
		Stages: stages, Width: width,
		TasksKilled: drill.Killed(),
		Recovered:   true,
		Elapsed:     time.Since(start),
	}
	for _, o := range drill.Outcomes() {
		if o.Err != nil {
			return res, fmt.Errorf("drill event %s %s: %w", o.Event.Kind, o.Event.Node, o.Err)
		}
	}
	for _, h := range heads {
		v, err := rt.WaitOn(h)
		if err != nil {
			return res, err
		}
		if v != stages {
			res.Recovered = false
		}
	}
	res.TasksReExecuted = rt.EngineStats().Reexecuted
	return res, nil
}
