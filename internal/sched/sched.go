// Package sched provides the Task Scheduler of the runtime (paper Fig. 6)
// as a family of pluggable policies. The paper calls for engines that
// "schedule in parallel the workflow to be executed, … improve data
// locality, … exploit heterogeneous computing platforms" (Sec. II-A) and
// for "intelligent decisions … learning from previous executions"
// (Sec. VI-C); each of those behaviours is one policy here, so experiments
// can compare them directly.
package sched

import (
	"math/rand"
	"time"

	"repro/internal/mlpredict"
	"repro/internal/resources"
	"repro/internal/simnet"
	"repro/internal/transfer"
)

// TaskView is the scheduler-facing summary of a ready task.
type TaskView struct {
	// ID is the task's graph ID.
	ID int64
	// Class groups tasks that run the same code (the predictor key).
	Class string
	// Constraints are the task's resource requirements.
	Constraints resources.Constraints
	// EstDuration is the declared base duration at SpeedFactor 1 (0 if
	// unknown).
	EstDuration time.Duration
	// InputKeys are the data versions the task reads.
	InputKeys []transfer.Key
	// InputBytes is the total input size (covariate for the predictor).
	InputBytes int64
	// Priority orders ready tasks; higher runs first.
	Priority int
}

// Context carries the shared facilities policies may consult. Any field
// may be nil; policies must degrade gracefully.
type Context struct {
	// Registry locates data replicas (locality policies).
	Registry *transfer.Registry
	// Net models transfer costs (EFT-style policies).
	Net *simnet.Network
	// Predictor estimates durations from history (ML policy).
	Predictor *mlpredict.Predictor
}

// Policy selects a node for a task among the nodes that currently fit its
// constraints. Returning nil leaves the task queued. The fitting slice is
// in pool insertion order and non-empty.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Pick chooses a node, or nil to wait.
	Pick(t *TaskView, fitting []*resources.Node, ctx *Context) *resources.Node
}

// IndexedPolicy is the capability split for index-backed placement: a
// policy that picks through the pool's per-signature placement index
// (resources.SigIndex) instead of scanning a materialized candidate
// slice, turning an O(pool) decision into a heap walk or a sample.
//
// Contract: PickIndexed returns nil ONLY when no node currently fits the
// task — indexed policies never decline a placeable task. The engine
// treats nil as a signature-wide capacity failure and parks the whole
// bucket; a policy that declines placements as a decision (WaitFast)
// must stay on the legacy Pick path, where nil means "wait". Policies
// must pick deterministically given the index state (and their own
// seeded randomness), so index-backed and scan-backed runs agree.
type IndexedPolicy interface {
	Policy
	// PickIndexed chooses among the signature's currently fitting nodes
	// via the index, or returns nil when none fits.
	PickIndexed(t *TaskView, idx resources.SigIndex, ctx *Context) *resources.Node
}

// Prioritizer is an optional Policy extension: the shared scheduling
// engine (internal/engine) orders ready tasks by descending Priority
// before placing them, which is how an informed policy implements
// longest-processing-time-first and similar list heuristics. Priority is
// evaluated once per ready-queue push; policies that do not implement
// the interface (or that return equal priorities) fall back to
// submission order.
type Prioritizer interface {
	// Priority ranks a ready task; higher places first.
	Priority(t *TaskView, ctx *Context) float64
}

// estimate returns the best duration estimate for t on a reference core.
func estimate(t *TaskView, ctx *Context) time.Duration {
	if ctx != nil && ctx.Predictor != nil && ctx.Predictor.Trained(t.Class, 1) {
		return ctx.Predictor.Predict(t.Class, t.InputBytes)
	}
	if t.EstDuration > 0 {
		return t.EstDuration
	}
	return time.Second
}

// runTime scales the estimate by the node's speed factor.
func runTime(est time.Duration, n *resources.Node) time.Duration {
	sf := n.Desc().SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	return time.Duration(float64(est) / sf)
}

// unreachablePenalty is the staging cost charged per input whose every
// replica sits behind a cut link (network partition): large enough that
// any reachable alternative wins, small enough that summing it over many
// inputs cannot overflow a Duration.
const unreachablePenalty = 24 * time.Hour

// transferTime estimates the time to stage t's missing inputs onto n.
// Inputs with replicas that are all unreachable from n (partitioned away)
// cost unreachablePenalty each, steering cost-aware policies to nodes
// that can actually be fed.
func transferTime(t *TaskView, n *resources.Node, ctx *Context) time.Duration {
	if ctx == nil || ctx.Registry == nil || ctx.Net == nil || len(t.InputKeys) == 0 {
		return 0
	}
	var total time.Duration
	for _, k := range t.InputKeys {
		if ctx.Registry.HasReplica(k, n.Name()) {
			continue
		}
		sources := ctx.Registry.Where(k)
		if len(sources) == 0 {
			continue
		}
		_, tt, ok := ctx.Net.BestSource(n.Name(), sources, ctx.Registry.Size(k))
		if !ok {
			total += unreachablePenalty
			continue
		}
		total += tt
	}
	return total
}

// FIFO assigns each task to the first node that fits, in pool order. It is
// the baseline the paper's smarter engines are compared against.
type FIFO struct{}

var _ Policy = FIFO{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Pick implements Policy.
func (FIFO) Pick(_ *TaskView, fitting []*resources.Node, _ *Context) *resources.Node {
	return fitting[0]
}

var _ IndexedPolicy = FIFO{}

// PickIndexed implements IndexedPolicy: the first fitting node in pool
// insertion order, without materializing the candidate slice.
func (FIFO) PickIndexed(t *TaskView, idx resources.SigIndex, _ *Context) *resources.Node {
	return idx.FirstFitting(t.Constraints)
}

// MinLoad balances by busy-core fraction, breaking ties by node name so
// the pick never depends on pool insertion order — the property that
// lets the index-backed heap pick and the scan-backed slice pick agree
// byte for byte.
type MinLoad struct{}

var _ Policy = MinLoad{}

// Name implements Policy.
func (MinLoad) Name() string { return "min-load" }

// Pick implements Policy.
func (MinLoad) Pick(_ *TaskView, fitting []*resources.Node, _ *Context) *resources.Node {
	best := fitting[0]
	bestFrac := loadFrac(best)
	for _, n := range fitting[1:] {
		if f := loadFrac(n); f < bestFrac || (f == bestFrac && n.Name() < best.Name()) {
			best, bestFrac = n, f
		}
	}
	return best
}

var _ IndexedPolicy = MinLoad{}

// PickIndexed implements IndexedPolicy: the signature's load heap yields
// the (frac, name)-minimum fitting node in O(log n) instead of O(pool).
func (MinLoad) PickIndexed(t *TaskView, idx resources.SigIndex, _ *Context) *resources.Node {
	return idx.MinLoadFitting(t.Constraints)
}

func loadFrac(n *resources.Node) float64 {
	c := n.Desc().Cores
	if c == 0 {
		return 1
	}
	return float64(n.BusyCores()) / float64(c)
}

// P2C is power-of-two-choices placement: sample two candidates, run the
// less loaded one (ties by node name). The sampling is seeded and
// deterministic given the placement sequence, so two backends driving
// the same workload with the same seed place identically. With the
// index it is an O(1) pick regardless of pool size; without it (legacy
// Pick, used for multi-node groups and hinted re-picks) it samples the
// fitting slice instead. The classic result applies: two random choices
// keep the maximum load within O(log log n) of perfect balancing at a
// fraction of MinLoad's bookkeeping.
type P2C struct {
	// Seed seeds the sampler (0 ⇒ 1).
	Seed int64
	rng  *rand.Rand
}

// NewP2C returns a power-of-two-choices policy with its own seeded
// sampler. Policies are not safe for concurrent use by multiple engines;
// give each engine its own instance.
func NewP2C(seed int64) *P2C { return &P2C{Seed: seed} }

var _ Policy = (*P2C)(nil)
var _ IndexedPolicy = (*P2C)(nil)

// Name implements Policy.
func (*P2C) Name() string { return "p2c" }

func (p *P2C) sampler() *rand.Rand {
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		p.rng = rand.New(rand.NewSource(seed))
	}
	return p.rng
}

// Pick implements Policy over a materialized fitting slice.
func (p *P2C) Pick(_ *TaskView, fitting []*resources.Node, _ *Context) *resources.Node {
	if len(fitting) == 1 {
		return fitting[0]
	}
	rng := p.sampler()
	a := fitting[rng.Intn(len(fitting))]
	b := fitting[rng.Intn(len(fitting))]
	if a == b {
		return a
	}
	fa, fb := loadFrac(a), loadFrac(b)
	if fa < fb || (fa == fb && a.Name() < b.Name()) {
		return a
	}
	return b
}

// PickIndexed implements IndexedPolicy: two samples from the signature's
// undrained member set, exact-minimum fallback when neither fits.
func (p *P2C) PickIndexed(t *TaskView, idx resources.SigIndex, _ *Context) *resources.Node {
	return idx.PowerOfTwoPick(t.Constraints, p.sampler())
}

// Locality places each task where most of its input bytes already reside,
// the behaviour enabled by the storage interface's getLocations
// (paper Sec. VI-A-1, experiment E4).
type Locality struct{}

var _ Policy = Locality{}

// Name implements Policy.
func (Locality) Name() string { return "locality" }

// Pick implements Policy. Under an active network partition the
// local-bytes tie-break becomes availability-aware: among equally local
// candidates a node that can actually be fed (no input marooned behind a
// cut link) beats one that cannot, so locality placement steers around
// partitions instead of landing tasks where their data is unreachable.
func (Locality) Pick(t *TaskView, fitting []*resources.Node, ctx *Context) *resources.Node {
	if ctx == nil || ctx.Registry == nil {
		return fitting[0]
	}
	partitioned := ctx.Net != nil && ctx.Net.HasCuts()
	feedable := func(n *resources.Node) bool {
		return !partitioned || transferTime(t, n, ctx) < unreachablePenalty
	}
	best := fitting[0]
	bestLocal := ctx.Registry.LocalBytes(best.Name(), t.InputKeys)
	bestFed := feedable(best)
	for _, n := range fitting[1:] {
		local := ctx.Registry.LocalBytes(n.Name(), t.InputKeys)
		fed := feedable(n)
		switch {
		case local > bestLocal:
		case local == bestLocal && fed && !bestFed:
		case local == bestLocal && fed == bestFed && n.FreeCores() > best.FreeCores():
		default:
			continue
		}
		best, bestLocal, bestFed = n, local, fed
	}
	return best
}

// EFT picks the node with the earliest estimated finish time: input
// staging plus speed-scaled compute. It models the list-scheduling engines
// of Pegasus/COMPSs (paper Sec. II-A).
type EFT struct{}

var _ Policy = EFT{}

// Name implements Policy.
func (EFT) Name() string { return "eft" }

// Pick implements Policy.
func (EFT) Pick(t *TaskView, fitting []*resources.Node, ctx *Context) *resources.Node {
	est := estimate(t, ctx)
	best := fitting[0]
	bestFinish := transferTime(t, best, ctx) + runTime(est, best)
	for _, n := range fitting[1:] {
		if f := transferTime(t, n, ctx) + runTime(est, n); f < bestFinish {
			best, bestFinish = n, f
		}
	}
	return best
}

// ML is the intelligent-runtime policy: identical shape to EFT but it
// refuses to guess — while the predictor is untrained for a class it
// behaves like MinLoad, and as history accumulates its placements converge
// to informed earliest-finish-time decisions (experiment E8).
type ML struct{}

var _ Policy = ML{}

// Name implements Policy.
func (ML) Name() string { return "ml" }

// Pick implements Policy.
func (ML) Pick(t *TaskView, fitting []*resources.Node, ctx *Context) *resources.Node {
	if ctx == nil || ctx.Predictor == nil || !ctx.Predictor.Trained(t.Class, 3) {
		return MinLoad{}.Pick(t, fitting, ctx)
	}
	return EFT{}.Pick(t, fitting, ctx)
}

var _ Prioritizer = ML{}

// Priority implements Prioritizer: longest-predicted-task-first, so big
// tasks claim the fast nodes before small ones fill them. Untrained
// classes rank 0 (submission order).
func (ML) Priority(t *TaskView, ctx *Context) float64 {
	if ctx == nil || ctx.Predictor == nil || !ctx.Predictor.Trained(t.Class, 3) {
		return 0
	}
	return ctx.Predictor.Predict(t.Class, t.InputBytes).Seconds()
}

// EnergyAware minimises estimated task energy (cores × active watts ×
// runtime), breaking ties by finish time. On a heterogeneous pool it
// steers small tasks to low-power fog nodes (experiment E10).
type EnergyAware struct {
	// MaxSlowdown bounds how much longer the energy-optimal node may
	// take versus the fastest fitting node (≤ 0 ⇒ 3×).
	MaxSlowdown float64
}

var _ Policy = EnergyAware{}

// Name implements Policy.
func (EnergyAware) Name() string { return "energy" }

// Pick implements Policy.
func (p EnergyAware) Pick(t *TaskView, fitting []*resources.Node, ctx *Context) *resources.Node {
	maxSlow := p.MaxSlowdown
	if maxSlow <= 0 {
		maxSlow = 3
	}
	est := estimate(t, ctx)
	cores := t.Constraints.EffectiveCores()

	// Find the fastest finish to bound acceptable slowdown.
	fastest := time.Duration(1<<62 - 1)
	for _, n := range fitting {
		if f := runTime(est, n); f < fastest {
			fastest = f
		}
	}

	var best *resources.Node
	var bestEnergy float64
	var bestFinish time.Duration
	for _, n := range fitting {
		rt := runTime(est, n)
		if float64(rt) > maxSlow*float64(fastest) {
			continue
		}
		e := float64(cores) * n.Desc().ActiveWattsPerCore * rt.Seconds()
		if best == nil || e < bestEnergy || (e == bestEnergy && rt < bestFinish) {
			best, bestEnergy, bestFinish = n, e, rt
		}
	}
	if best == nil {
		return EFT{}.Pick(t, fitting, ctx)
	}
	return best
}

// WaitFast wraps a policy with head-of-line tier discipline: a task whose
// estimated reference duration is at least MinWait may only be placed on
// nodes that run it within MaxSlowdown × that estimate — otherwise Pick
// declines and the task waits for the busier, faster tier to free up
// instead of occupying a slow one for many times longer. Short tasks
// (below MinWait) run anywhere; they are cheap even on the slowest node.
//
// Declining parks the task's whole signature bucket for the wave, which
// is exactly the head-of-line blocking the engine's work stealing
// (engine.StealConfig) is built to bypass: long heads hold their claim on
// the fast tier while short entries behind them are stolen onto the idle
// slow nodes.
type WaitFast struct {
	// Inner picks among the acceptable nodes (nil ⇒ MinLoad).
	Inner Policy
	// MaxSlowdown bounds the accepted runtime stretch versus a reference
	// (SpeedFactor 1) core (≤ 0 ⇒ 2).
	MaxSlowdown float64
	// MinWait is the estimate below which a task never waits (≤ 0 ⇒ 10s).
	MinWait time.Duration
}

var _ Policy = WaitFast{}
var _ Prioritizer = WaitFast{}

// Name implements Policy.
func (p WaitFast) Name() string { return "wait-fast" }

// Pick implements Policy: it filters the fitting set down to nodes fast
// enough for the task and delegates the choice to Inner; an empty
// filtered set declines the placement.
func (p WaitFast) Pick(t *TaskView, fitting []*resources.Node, ctx *Context) *resources.Node {
	inner := p.Inner
	if inner == nil {
		inner = MinLoad{}
	}
	maxSlow := p.MaxSlowdown
	if maxSlow <= 0 {
		maxSlow = 2
	}
	minWait := p.MinWait
	if minWait <= 0 {
		minWait = 10 * time.Second
	}
	est := estimate(t, ctx)
	if est >= minWait {
		fast := make([]*resources.Node, 0, len(fitting))
		for _, n := range fitting {
			if float64(runTime(est, n)) <= maxSlow*float64(est) {
				fast = append(fast, n)
			}
		}
		if len(fast) == 0 {
			return nil
		}
		fitting = fast
	}
	return inner.Pick(t, fitting, ctx)
}

// Priority implements Prioritizer by delegating to Inner when it ranks
// ready tasks (equal priorities otherwise, i.e. submission order).
func (p WaitFast) Priority(t *TaskView, ctx *Context) float64 {
	if pr, ok := p.Inner.(Prioritizer); ok {
		return pr.Priority(t, ctx)
	}
	return 0
}

// ByName returns the named policy, defaulting to FIFO.
func ByName(name string) Policy {
	switch name {
	case "min-load":
		return MinLoad{}
	case "p2c":
		return NewP2C(1)
	case "locality":
		return Locality{}
	case "eft":
		return EFT{}
	case "ml":
		return ML{}
	case "energy":
		return EnergyAware{}
	case "wait-fast":
		return WaitFast{}
	default:
		return FIFO{}
	}
}
