package sched

import (
	"testing"
	"time"

	"repro/internal/deps"
	"repro/internal/mlpredict"
	"repro/internal/resources"
	"repro/internal/simnet"
	"repro/internal/transfer"
)

func nodes(descs ...resources.Description) []*resources.Node {
	out := make([]*resources.Node, len(descs))
	for i, d := range descs {
		out[i] = resources.NewNode(string(rune('a'+i)), d)
	}
	return out
}

func TestFIFOPicksFirst(t *testing.T) {
	ns := nodes(resources.CloudVM, resources.CloudVM)
	got := FIFO{}.Pick(&TaskView{}, ns, nil)
	if got != ns[0] {
		t.Fatal("FIFO should pick the first fitting node")
	}
}

func TestMinLoadBalances(t *testing.T) {
	ns := nodes(resources.CloudVM, resources.CloudVM)
	if err := ns[0].Reserve(resources.Constraints{Cores: 4}); err != nil {
		t.Fatal(err)
	}
	got := MinLoad{}.Pick(&TaskView{}, ns, nil)
	if got != ns[1] {
		t.Fatal("MinLoad should avoid the loaded node")
	}
}

func TestLocalityFollowsData(t *testing.T) {
	ns := nodes(resources.CloudVM, resources.CloudVM)
	reg := transfer.NewRegistry()
	k := transfer.Key{Data: deps.DataID(1), Ver: 1}
	reg.SetSize(k, 500e6)
	reg.AddReplica(k, "b")
	ctx := &Context{Registry: reg}
	tv := &TaskView{InputKeys: []transfer.Key{k}}
	got := Locality{}.Pick(tv, ns, ctx)
	if got.Name() != "b" {
		t.Fatalf("Locality picked %s, want b (holds the data)", got.Name())
	}
}

func TestLocalityWithoutRegistryFallsBack(t *testing.T) {
	ns := nodes(resources.CloudVM)
	if got := (Locality{}).Pick(&TaskView{}, ns, nil); got != ns[0] {
		t.Fatal("Locality without registry should act like FIFO")
	}
}

func TestLocalityTieBreaksOnFreeCores(t *testing.T) {
	ns := nodes(resources.CloudVM, resources.CloudVM)
	if err := ns[0].Reserve(resources.Constraints{Cores: 6}); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Registry: transfer.NewRegistry()}
	got := Locality{}.Pick(&TaskView{}, ns, ctx)
	if got != ns[1] {
		t.Fatal("locality tie-break should prefer free cores")
	}
}

func TestEFTPrefersFasterNode(t *testing.T) {
	fast := resources.Description{Cores: 4, MemoryMB: 1000, SpeedFactor: 2.0}
	slow := resources.Description{Cores: 4, MemoryMB: 1000, SpeedFactor: 0.5}
	ns := nodes(slow, fast)
	tv := &TaskView{EstDuration: 10 * time.Second}
	got := EFT{}.Pick(tv, ns, &Context{})
	if got != ns[1] {
		t.Fatal("EFT should pick the faster node")
	}
}

func TestEFTWeighsTransferAgainstSpeed(t *testing.T) {
	// Node "a" is slower but holds the (huge) input; node "b" is faster
	// but would need a long transfer.
	slowLocal := resources.Description{Cores: 4, MemoryMB: 1000, SpeedFactor: 0.9}
	fastRemote := resources.Description{Cores: 4, MemoryMB: 1000, SpeedFactor: 1.0}
	ns := nodes(slowLocal, fastRemote)
	net := simnet.New(simnet.Link{BandwidthMBps: 1, Latency: 0}) // 1 MB/s: terrible
	reg := transfer.NewRegistry()
	k := transfer.Key{Data: 1, Ver: 1}
	reg.SetSize(k, 100e6) // 100 s to move
	reg.AddReplica(k, "a")
	ctx := &Context{Registry: reg, Net: net}
	tv := &TaskView{EstDuration: 10 * time.Second, InputKeys: []transfer.Key{k}}
	got := EFT{}.Pick(tv, ns, ctx)
	if got.Name() != "a" {
		t.Fatal("EFT should keep the task with its data when transfer dominates")
	}
}

func TestMLFallsBackUntilTrained(t *testing.T) {
	fast := resources.Description{Cores: 4, MemoryMB: 1000, SpeedFactor: 2.0}
	slow := resources.Description{Cores: 4, MemoryMB: 1000, SpeedFactor: 0.5}
	ns := nodes(slow, fast)
	pred := mlpredict.NewPredictor(time.Second)
	ctx := &Context{Predictor: pred}
	tv := &TaskView{Class: "sim", InputBytes: 0}

	// Untrained: behaves like MinLoad (both empty ⇒ first node).
	if got := (ML{}).Pick(tv, ns, ctx); got != ns[0] {
		t.Fatal("untrained ML should fall back to MinLoad")
	}
	// Train it: durations observed.
	for i := 0; i < 5; i++ {
		pred.Observe("sim", 0, 20*time.Second)
	}
	if got := (ML{}).Pick(tv, ns, ctx); got != ns[1] {
		t.Fatal("trained ML should pick the faster node")
	}
}

func TestEnergyAwarePrefersLowPowerWithinSlowdown(t *testing.T) {
	hpc := resources.MareNostrumNode // 6 W/core, speed 1.0
	fog := resources.FogDevice       // 1 W/core, speed 0.25 ⇒ 4x slower
	ns := nodes(hpc, fog)
	tv := &TaskView{EstDuration: time.Second}

	// Slowdown cap 5x: fog is admissible and cheaper.
	got := EnergyAware{MaxSlowdown: 5}.Pick(tv, ns, &Context{})
	if got.Desc().Class != resources.Fog {
		t.Fatal("energy policy should pick the fog node within the slowdown cap")
	}

	// Tight cap 2x: fog excluded, falls back to HPC.
	got = EnergyAware{MaxSlowdown: 2}.Pick(tv, ns, &Context{})
	if got.Desc().Class != resources.HPC {
		t.Fatal("energy policy must respect the slowdown cap")
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"fifo": "fifo", "min-load": "min-load", "locality": "locality",
		"eft": "eft", "ml": "ml", "energy": "energy", "unknown": "fifo",
	} {
		if got := ByName(name).Name(); got != want {
			t.Errorf("ByName(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestMLPriorityIsLPT(t *testing.T) {
	pred := mlpredict.NewPredictor(time.Second)
	ctx := &Context{Predictor: pred}
	long := &TaskView{Class: "long"}
	short := &TaskView{Class: "short"}

	// Untrained: both rank 0 (submission order decides).
	if (ML{}).Priority(long, ctx) != 0 || (ML{}).Priority(short, ctx) != 0 {
		t.Fatal("untrained priority should be 0")
	}
	for i := 0; i < 4; i++ {
		pred.Observe("long", 0, time.Hour)
		pred.Observe("short", 0, time.Second)
	}
	pl := (ML{}).Priority(long, ctx)
	ps := (ML{}).Priority(short, ctx)
	if pl <= ps {
		t.Fatalf("long priority %v not above short %v", pl, ps)
	}
	// Nil context degrades gracefully.
	if (ML{}).Priority(long, nil) != 0 {
		t.Fatal("nil-context priority should be 0")
	}
}
