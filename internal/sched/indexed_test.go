package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/resources"
)

// indexedPool builds a pool with staggered loads: node p-<i> has i of its
// 4 cores reserved, so the load order is fully determined and p-0 is the
// unique MinLoad winner.
func indexedPool(t *testing.T, n int) *resources.Pool {
	t.Helper()
	pool := resources.NewPool()
	for i := 0; i < n; i++ {
		node := resources.NewNode(fmt.Sprintf("p-%d", i), resources.Description{
			Cores: 4, MemoryMB: 16_000, SpeedFactor: 1,
		})
		if err := pool.Add(node); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < i%4; j++ {
			if err := node.Reserve(resources.Constraints{Cores: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pool
}

// TestMinLoadTieBreaksByName pins the deterministic tie-break: with every
// load fraction equal, MinLoad picks the lexicographically smallest node
// name regardless of slice order.
func TestMinLoadTieBreaksByName(t *testing.T) {
	ns := []*resources.Node{
		resources.NewNode("zeta", resources.CloudVM),
		resources.NewNode("beta", resources.CloudVM),
		resources.NewNode("alpha", resources.CloudVM),
	}
	got := MinLoad{}.Pick(&TaskView{}, ns, nil)
	if got == nil || got.Name() != "alpha" {
		t.Fatalf("MinLoad tie picked %v, want alpha", got)
	}
	// Reversing the slice must not change the winner.
	rev := []*resources.Node{ns[2], ns[1], ns[0]}
	if got := (MinLoad{}).Pick(&TaskView{}, rev, nil); got == nil || got.Name() != "alpha" {
		t.Fatalf("MinLoad tie after reorder picked %v, want alpha", got)
	}
}

// TestPickIndexedMatchesScanPick is the policy half of the index
// equivalence contract: for FIFO and MinLoad, PickIndexed over the
// pool's index returns exactly the node Pick returns over the
// materialized fitting slice, across a randomized load churn.
func TestPickIndexedMatchesScanPick(t *testing.T) {
	pool := indexedPool(t, 9)
	c := resources.Constraints{Cores: 1}
	rng := rand.New(rand.NewSource(3))
	type picker interface {
		Policy
		PickIndexed(*TaskView, resources.SigIndex, *Context) *resources.Node
	}
	policies := []picker{FIFO{}, MinLoad{}}
	var held []*resources.Node
	for step := 0; step < 400; step++ {
		if rng.Intn(2) == 0 {
			if fit := pool.Fitting(c); len(fit) > 0 {
				n := fit[rng.Intn(len(fit))]
				if err := n.Reserve(c); err == nil {
					held = append(held, n)
				}
			}
		} else if len(held) > 0 {
			i := rng.Intn(len(held))
			held[i].Release(c)
			held = append(held[:i], held[i+1:]...)
		}
		fitting := pool.Fitting(c)
		idx := pool.IndexFor(c)
		view := &TaskView{Constraints: c}
		for _, p := range policies {
			var scan *resources.Node
			if len(fitting) > 0 {
				scan = p.Pick(view, fitting, nil)
			}
			indexed := p.PickIndexed(view, idx, nil)
			if scan != indexed {
				t.Fatalf("step %d %s: Pick = %v, PickIndexed = %v", step, p.Name(), nn(scan), nn(indexed))
			}
		}
	}
}

func nn(n *resources.Node) string {
	if n == nil {
		return "<nil>"
	}
	return n.Name()
}

// TestP2CDeterministicAndNeverDeclines pins the two P2C properties the
// engine relies on: same seed ⇒ same pick sequence (cross-backend
// parity), and nil only when nothing fits (a P2C "miss" falls back to
// the exact heap walk instead of reporting a capacity failure).
func TestP2CDeterministicAndNeverDeclines(t *testing.T) {
	c := resources.Constraints{Cores: 1}
	run := func() []string {
		pool := indexedPool(t, 8)
		p := NewP2C(42)
		idx := pool.IndexFor(c)
		free := 0
		for _, n := range pool.Nodes() {
			free += n.FreeCores()
		}
		var picks []string
		for i := 0; i < free; i++ {
			n := p.PickIndexed(&TaskView{Constraints: c}, idx, nil)
			if n == nil {
				t.Fatalf("pick %d: nil with %d free cores", i, free-i)
			}
			if err := n.Reserve(c); err != nil {
				t.Fatalf("pick %d: %s does not fit: %v", i, n.Name(), err)
			}
			picks = append(picks, n.Name())
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d diverges across identically-seeded runs: %s vs %s", i, a[i], b[i])
		}
	}

	// Saturate a tiny pool: P2C must keep placing until full, then nil.
	pool := indexedPool(t, 2)
	p := NewP2C(1)
	idx := pool.IndexFor(c)
	free := 0
	for _, n := range pool.Nodes() {
		free += n.FreeCores()
	}
	for i := 0; i < free; i++ {
		n := p.PickIndexed(&TaskView{Constraints: c}, idx, nil)
		if n == nil {
			t.Fatalf("pick %d: nil with %d free cores", i, free-i)
		}
		if err := n.Reserve(c); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.PickIndexed(&TaskView{Constraints: c}, idx, nil); n != nil {
		t.Fatalf("pick on a saturated pool returned %s, want nil", n.Name())
	}
}
