package simclock

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending() = %d, want 0", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	c := New()
	var order []int
	c.At(3*time.Second, func() { order = append(order, 3) })
	c.At(1*time.Second, func() { order = append(order, 1) })
	c.At(2*time.Second, func() { order = append(order, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", c.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	c := New()
	var fired time.Duration
	c.At(5*time.Second, func() {
		c.After(2*time.Second, func() { fired = c.Now() })
	})
	c.Run()
	if fired != 7*time.Second {
		t.Fatalf("nested After fired at %v, want 7s", fired)
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	c := New()
	var fired time.Duration
	c.At(10*time.Second, func() {
		c.At(1*time.Second, func() { fired = c.Now() })
	})
	c.Run()
	if fired != 10*time.Second {
		t.Fatalf("past event fired at %v, want clamp to 10s", fired)
	}
}

func TestNegativeAfterClampsToZero(t *testing.T) {
	c := New()
	var fired bool
	c.After(-time.Second, func() { fired = true })
	c.Run()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	c := New()
	if c.Step() {
		t.Fatal("Step() on empty clock returned true")
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	c := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		c.At(d, func() { fired = append(fired, d) })
	}
	c.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if c.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", c.Now())
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
	c.Run()
	if len(fired) != 3 {
		t.Fatalf("after Run, fired %d events, want 3", len(fired))
	}
}

func TestEventsCanCascade(t *testing.T) {
	c := New()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			c.After(time.Millisecond, step)
		}
	}
	c.After(0, step)
	c.Run()
	if count != 100 {
		t.Fatalf("cascade ran %d times, want 100", count)
	}
	if c.Now() != 99*time.Millisecond {
		t.Fatalf("Now() = %v, want 99ms", c.Now())
	}
}

func TestDeferRunsAfterCurrentInstant(t *testing.T) {
	c := New()
	var order []string
	c.At(time.Second, func() {
		order = append(order, "first")
		c.Defer(func() { order = append(order, "deferred") })
		c.At(time.Second, func() { order = append(order, "second") })
	})
	c.At(time.Second, func() { order = append(order, "queued") })
	c.Run()
	// The deferred callback fires at the same instant but after every
	// event already queued for it ("queued"), in scheduling order.
	want := []string{"first", "queued", "deferred", "second"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", c.Now())
	}
}
