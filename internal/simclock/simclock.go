// Package simclock provides a deterministic discrete-event virtual clock.
//
// The clock underpins the computing-continuum simulator (internal/infra):
// experiments that the paper ran on MareNostrum (100 nodes, 4800 cores,
// millions of tasks) execute here in virtual time, so a full parameter sweep
// finishes in milliseconds and is exactly reproducible.
//
// Events scheduled at the same instant fire in scheduling order (FIFO),
// which keeps simulations deterministic without requiring callers to add
// artificial epsilon offsets.
package simclock

import (
	"container/heap"
	"time"
)

// event is a single scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Clock is a discrete-event virtual clock. It is not safe for concurrent
// use: the simulator drives it from a single goroutine, which is what makes
// runs deterministic.
type Clock struct {
	now    time.Duration
	seq    uint64
	events eventHeap
}

// New returns a clock positioned at virtual time zero.
func New() *Clock {
	return &Clock{}
}

// Now reports the current virtual time as an offset from the simulation
// epoch.
func (c *Clock) Now() time.Duration {
	return c.now
}

// Pending reports how many events are scheduled and not yet fired.
func (c *Clock) Pending() int {
	return len(c.events)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// clamps to the present: the event fires at the current time, after any
// events already due.
func (c *Clock) At(t time.Duration, fn func()) {
	if t < c.now {
		t = c.now
	}
	c.seq++
	heap.Push(&c.events, &event{at: t, seq: c.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative
// delays clamp to zero.
func (c *Clock) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.At(c.now+d, fn)
}

// Defer schedules fn at the current instant, after every event already
// queued for this instant (same-time events fire in scheduling order).
// Simulation engines use it to coalesce work across a batch of same-time
// events: the first completion of an instant defers one scheduling wave
// that then sees every completion of that instant at once.
func (c *Clock) Defer(fn func()) {
	c.At(c.now, fn)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired.
func (c *Clock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	ev, ok := heap.Pop(&c.events).(*event)
	if !ok {
		return false
	}
	c.now = ev.at
	ev.fn()
	return true
}

// Run fires events until none remain. Event callbacks may schedule further
// events; Run continues until the queue drains.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// RunUntil fires events with timestamps at or before deadline, then advances
// the clock to deadline (if the clock has not already passed it). Events
// scheduled after deadline remain pending.
func (c *Clock) RunUntil(deadline time.Duration) {
	for len(c.events) > 0 && c.events[0].at <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}
