package engine_test

// Availability parity: the same partition script under the same
// availability policy must produce identical park/wake/recompute
// choreography on the live runtime and the virtual-time simulator,
// because both delegate the placement-time classification and the wait
// set to the shared engine. Three drills:
//
//  1. defer, heal-mid-queue: a task parked on a partitioned input runs —
//     without any recompute — once the partition heals before drain;
//  2. recompute, isolating cut: a cut that maroons every replica of an
//     input produces exactly one lineage re-run of the producer, placed
//     on the reachable side, and the run finishes without the heal;
//  3. placement-aware restore on the live backend: a snapshot restored
//     onto a pool missing the producing node re-stages the decoded value
//     onto a surviving node, so the resumed run neither parks nor
//     recomputes.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/engine"
	"repro/internal/engine/checkpoint"
	"repro/internal/engine/faults"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// availPool builds the shared rig: one HPC producer node ahead of two
// cloud consumer nodes, one core each.
func availPool() *resources.Pool {
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("n0", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
	}))
	_ = pool.Add(resources.NewNode("n1", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud,
	}))
	_ = pool.Add(resources.NewNode("n2", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud,
	}))
	return pool
}

// availNet zones the rig so one cut severs the producer tier from the
// consumer tier.
func availNet() *simnet.Network {
	net := simnet.New(simnet.Link{BandwidthMBps: 1000})
	net.SetZone("n0", "hpc")
	net.SetZone("n1", "cloud")
	net.SetZone("n2", "cloud")
	return net
}

type availOutcome struct {
	stats  engine.Stats
	parked int // observed while the cut was active
}

// The drill, shared by both backends: a (HPC side) writes d1; the
// hpc~cloud link is cut; b (cloud-pinned) wants d1 — unreachable. Under
// defer the heal releases b; under recompute a re-runs on the cloud side
// and b never waits for the heal.
func runAvailSim(t *testing.T, policy engine.Availability, heal bool) availOutcome {
	t.Helper()
	script := faults.Scenario{{At: 2 * time.Second, Kind: faults.Cut, Node: "hpc", Peer: "cloud"}}
	if heal {
		script = append(script, faults.Event{At: 6 * time.Second, Kind: faults.HealLink, Node: "hpc", Peer: "cloud"})
	}
	specs := []infra.TaskSpec{
		{ID: 1, Class: "a", Duration: time.Second,
			Constraints: resources.Constraints{Class: resources.HPC},
			Accesses:    []deps.Access{{Data: 1, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{1: 1e6}},
		{ID: 2, Class: "b", Duration: 2 * time.Second, Release: 3 * time.Second,
			Constraints: resources.Constraints{Class: resources.Cloud},
			Accesses:    []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{2: 1e3}},
	}
	sim, err := infra.New(infra.Config{
		Pool:         availPool(),
		Net:          availNet(),
		Policy:       sched.FIFO{},
		Availability: policy,
		Faults:       script,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return availOutcome{stats: sim.EngineStats()}
}

func runAvailLive(t *testing.T, policy engine.Availability, heal bool) availOutcome {
	t.Helper()
	rt := core.New(core.Config{
		Pool:         availPool(),
		Policy:       sched.FIFO{},
		Locations:    transfer.NewRegistry(),
		Net:          availNet(),
		Availability: policy,
	})
	defer rt.Shutdown()

	prodConstraints := resources.Constraints{Class: resources.HPC}
	if policy == engine.AvailRecompute {
		// The producer must be re-runnable on the consumers' side; the
		// simulator drill keeps it HPC-pinned only under defer, where it
		// never re-runs. Parity on the defer path is asserted with the
		// pin; the recompute path needs the unpinned producer on both
		// backends (see runAvailSimRecompute).
		prodConstraints = resources.Constraints{}
	}
	mustRegister(t, rt, core.TaskDef{Name: "a", Constraints: prodConstraints,
		Fn: func(_ context.Context, _ []any) ([]any, error) { return []any{10}, nil }})
	mustRegister(t, rt, core.TaskDef{Name: "b", Constraints: resources.Constraints{Class: resources.Cloud},
		Fn: func(_ context.Context, args []any) ([]any, error) {
			v, _ := args[0].(int)
			return []any{v * 2}, nil
		}})

	d1, d2 := rt.NewData(), rt.NewData()
	fa, err := rt.Submit("a", core.WriteSized(d1, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Partition("hpc", "cloud"); err != nil {
		t.Fatal(err)
	}
	fb, err := rt.Submit("b", core.Read(d1), core.WriteSized(d2, 1e3))
	if err != nil {
		t.Fatal(err)
	}
	out := availOutcome{}
	if policy == engine.AvailDefer {
		// Submit schedules synchronously, so the park is observable now.
		out.parked = rt.EngineStats().Deferred
	}
	if heal {
		if err := rt.Heal("hpc", "cloud"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fb.Wait(); err != nil {
		t.Fatal(err)
	}
	rt.Barrier()
	if v, err := rt.WaitOn(d2); err != nil || v != 20 {
		t.Fatalf("b's value = %v (%v), want 20", v, err)
	}
	out.stats = rt.EngineStats()
	return out
}

// TestAvailabilityDeferHealParity: a task parked by defer whose partition
// heals before drain runs without any recompute, identically on both
// backends.
func TestAvailabilityDeferHealParity(t *testing.T) {
	sim := runAvailSim(t, engine.AvailDefer, true)
	live := runAvailLive(t, engine.AvailDefer, true)

	if live.parked != 1 {
		t.Fatalf("live: %d tasks parked while cut, want 1", live.parked)
	}
	for name, st := range map[string]engine.Stats{"sim": sim.stats, "live": live.stats} {
		if st.Deferred != 1 || st.Woken != 1 {
			t.Fatalf("%s: deferred/woken = %d/%d, want 1/1", name, st.Deferred, st.Woken)
		}
		if st.RanMissing != 0 {
			t.Fatalf("%s: %d tasks ran with missing inputs, want 0", name, st.RanMissing)
		}
		if st.Reexecuted != 0 {
			t.Fatalf("%s: %d recompute re-runs, want 0 (heal-mid-queue must not recompute)", name, st.Reexecuted)
		}
		if st.Launched != 2 {
			t.Fatalf("%s: %d launches, want 2 (one per task, no re-runs)", name, st.Launched)
		}
	}
	if sim.stats.Transfers != live.stats.Transfers || sim.stats.BytesMoved != live.stats.BytesMoved {
		t.Fatalf("transfer books diverge: sim %d/%dB vs live %d/%dB",
			sim.stats.Transfers, sim.stats.BytesMoved, live.stats.Transfers, live.stats.BytesMoved)
	}
	if sim.stats.Transfers != 1 || sim.stats.BytesMoved != 1e6 {
		t.Fatalf("want exactly one post-heal fetch of 1e6 bytes, got %d moves / %dB",
			sim.stats.Transfers, sim.stats.BytesMoved)
	}
}

// runAvailSimRecompute mirrors the recompute drill: the producer is
// unpinned (it must be re-runnable on the cloud side) and no heal ever
// comes — recovery must not need one.
func runAvailSimRecompute(t *testing.T) availOutcome {
	t.Helper()
	specs := []infra.TaskSpec{
		{ID: 1, Class: "a", Duration: time.Second,
			Accesses:    []deps.Access{{Data: 1, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{1: 1e6}},
		{ID: 2, Class: "b", Duration: 2 * time.Second, Release: 3 * time.Second,
			Constraints: resources.Constraints{Class: resources.Cloud},
			Accesses:    []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{2: 1e3}},
	}
	sim, err := infra.New(infra.Config{
		Pool:         availPool(),
		Net:          availNet(),
		Policy:       sched.FIFO{},
		Availability: engine.AvailRecompute,
		Faults:       faults.Scenario{{At: 2 * time.Second, Kind: faults.Cut, Node: "hpc", Peer: "cloud"}},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return availOutcome{stats: sim.EngineStats()}
}

// TestAvailabilityRecomputeParity: a cut that isolates every replica of
// an input under recompute produces exactly one lineage re-run — on the
// reachable side — on both backends, with no heal required.
func TestAvailabilityRecomputeParity(t *testing.T) {
	sim := runAvailSimRecompute(t)
	live := runAvailLive(t, engine.AvailRecompute, false)

	for name, st := range map[string]engine.Stats{"sim": sim.stats, "live": live.stats} {
		if st.Reexecuted != 1 {
			t.Fatalf("%s: %d lineage re-runs, want exactly 1", name, st.Reexecuted)
		}
		if st.RanMissing != 0 {
			t.Fatalf("%s: %d tasks ran with missing inputs, want 0", name, st.RanMissing)
		}
		if st.Deferred != 1 || st.Woken != 1 {
			t.Fatalf("%s: deferred/woken = %d/%d, want 1/1", name, st.Deferred, st.Woken)
		}
		if st.AvailRecomputes != 1 {
			t.Fatalf("%s: %d availability recomputes, want 1", name, st.AvailRecomputes)
		}
		if st.Launched != 3 {
			t.Fatalf("%s: %d launches, want 3 (a, a's re-run, b)", name, st.Launched)
		}
	}
	if sim.stats.Transfers != live.stats.Transfers || sim.stats.BytesMoved != live.stats.BytesMoved {
		t.Fatalf("transfer books diverge: sim %d/%dB vs live %d/%dB",
			sim.stats.Transfers, sim.stats.BytesMoved, live.stats.Transfers, live.stats.BytesMoved)
	}
}

// TestAvailabilityFeedableRepick: a policy whose first choice sits
// behind the cut must not park the task when another fitting node can be
// fed — the engine re-offers the choice over the feedable subset. No
// heal is ever scripted; without the re-pick the run would end ErrStuck.
func TestAvailabilityFeedableRepick(t *testing.T) {
	// n1 (cloud) is first in pool order, so FIFO aims the unpinned
	// consumer at it; d1's only replica is on n0, cut away from n1.
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("n1", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud,
	}))
	_ = pool.Add(resources.NewNode("n0", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
	}))
	sim, err := infra.New(infra.Config{
		Pool:         pool,
		Net:          availNet(),
		Policy:       sched.FIFO{},
		Availability: engine.AvailDefer,
		Faults:       faults.Scenario{{At: 2 * time.Second, Kind: faults.Cut, Node: "hpc", Peer: "cloud"}},
	}, []infra.TaskSpec{
		{ID: 1, Class: "a", Duration: time.Second,
			Constraints: resources.Constraints{Class: resources.HPC},
			Accesses:    []deps.Access{{Data: 1, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{1: 1e6}},
		{ID: 2, Class: "b", Duration: time.Second, Release: 3 * time.Second,
			Accesses: []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatalf("run with a feedable alternative must complete, got %v", err)
	}
	st := sim.EngineStats()
	if st.Deferred != 0 {
		t.Fatalf("%d tasks parked, want 0 (b re-aims at n0 where d1 lives)", st.Deferred)
	}
	if st.Launched != 2 || st.Reexecuted != 0 || st.RanMissing != 0 {
		t.Fatalf("launched/reexecuted/ran-missing = %d/%d/%d, want 2/0/0",
			st.Launched, st.Reexecuted, st.RanMissing)
	}
}

// TestAvailabilityBusyFeedableNodeQueues: a task whose data is reachable
// only from a node that is merely busy must stay queued (and run when
// the capacity frees), not park — capacity release is not an
// availability wake source, so parking here would hang forever.
func TestAvailabilityBusyFeedableNodeQueues(t *testing.T) {
	pool := resources.NewPool()
	for _, n := range []string{"n0", "n1"} {
		_ = pool.Add(resources.NewNode(n, resources.Description{
			Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
		}))
	}
	net := simnet.New(simnet.Link{BandwidthMBps: 1000})
	sim, err := infra.New(infra.Config{
		Pool:         pool,
		Net:          net,
		Policy:       sched.FIFO{},
		Availability: engine.AvailDefer,
		StageIn:      map[deps.DataID]int64{1: 1e6}, // on n0, the first pool node
		// The cut leaves n1 unable to fetch d1; n0 holds it locally but
		// is busy with the blocker until t=100s. No heal ever comes.
		Faults: faults.Scenario{{At: time.Second, Kind: faults.Cut, Node: "n0", Peer: "n1"}},
	}, []infra.TaskSpec{
		{ID: 1, Class: "blocker", Duration: 100 * time.Second},
		{ID: 2, Class: "consumer", Duration: time.Second, Release: 5 * time.Second,
			Accesses: []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("run must complete once the feedable node frees, got %v", err)
	}
	st := sim.EngineStats()
	if st.Deferred != 0 {
		t.Fatalf("%d tasks parked, want 0 (busy capacity is a queue wait, not a partition)", st.Deferred)
	}
	if want := 101 * time.Second; res.Makespan != want {
		t.Fatalf("makespan = %v, want %v (consumer runs on n0 right after the blocker)", res.Makespan, want)
	}
}

// TestAvailabilityPartialHealNoChurn: healing a link unrelated to a
// parked task's data must not wake it — only the heal that actually
// makes a replica movable does. Guards the wakeReachable filter against
// the vacuous "a replica holder reaches itself" short-circuit.
func TestAvailabilityPartialHealNoChurn(t *testing.T) {
	specs := []infra.TaskSpec{
		{ID: 1, Class: "a", Duration: time.Second,
			Constraints: resources.Constraints{Class: resources.HPC},
			Accesses:    []deps.Access{{Data: 1, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{1: 1e6}},
		{ID: 2, Class: "b", Duration: time.Second, Release: 3 * time.Second,
			Constraints: resources.Constraints{Class: resources.Cloud},
			Accesses:    []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}}},
	}
	sim, err := infra.New(infra.Config{
		Pool:         availPool(),
		Net:          availNet(),
		Policy:       sched.FIFO{},
		Availability: engine.AvailDefer,
		Faults: faults.Scenario{
			{At: 2 * time.Second, Kind: faults.Cut, Node: "hpc", Peer: "cloud"},
			{At: 2 * time.Second, Kind: faults.Cut, Node: "n1", Peer: "n2"},
			// The unrelated heal: d1 still sits behind the hpc~cloud cut.
			{At: 6 * time.Second, Kind: faults.HealLink, Node: "n1", Peer: "n2"},
			{At: 10 * time.Second, Kind: faults.HealLink, Node: "hpc", Peer: "cloud"},
		},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := sim.EngineStats()
	if st.Deferred != 1 || st.Woken != 1 {
		t.Fatalf("deferred/woken = %d/%d, want 1/1 (the unrelated heal must not churn the wait set)",
			st.Deferred, st.Woken)
	}
	if st.RanMissing != 0 || st.Reexecuted != 0 {
		t.Fatalf("ran-missing/re-executed = %d/%d, want 0/0", st.RanMissing, st.Reexecuted)
	}
}

// TestAvailabilityRevalidateOnGrowth: capacity added mid-partition may
// be the first node that can both run a parked task and reach its data;
// RevalidateAvailability must give the parked work that chance — no
// heal is ever issued.
func TestAvailabilityRevalidateOnGrowth(t *testing.T) {
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("n0", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
	}))
	_ = pool.Add(resources.NewNode("n1", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud,
	}))
	rt := core.New(core.Config{
		Pool:         pool,
		Policy:       sched.FIFO{},
		Locations:    transfer.NewRegistry(),
		Net:          simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Availability: engine.AvailDefer,
	})
	defer rt.Shutdown()
	mustRegister(t, rt, core.TaskDef{Name: "a", Constraints: resources.Constraints{Class: resources.HPC},
		Fn: func(_ context.Context, _ []any) ([]any, error) { return []any{10}, nil }})
	mustRegister(t, rt, core.TaskDef{Name: "b", Constraints: resources.Constraints{Class: resources.Cloud},
		Fn: func(_ context.Context, args []any) ([]any, error) {
			v, _ := args[0].(int)
			return []any{v * 2}, nil
		}})
	d1, d2 := rt.NewData(), rt.NewData()
	fa, err := rt.Submit("a", core.WriteSized(d1, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Wait(); err != nil {
		t.Fatal(err)
	}
	// Cut the specific pair, so only n1 — the sole cloud node — is
	// severed from d1's replica on n0.
	if err := rt.Partition("n0", "n1"); err != nil {
		t.Fatal(err)
	}
	fb, err := rt.Submit("b", core.Read(d1), core.WriteSized(d2, 1e3))
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.EngineStats().Deferred; got != 1 {
		t.Fatalf("%d tasks parked, want 1", got)
	}
	// Grow the pool with a cloud node that CAN reach n0.
	if err := rt.Pool().Add(resources.NewNode("n2", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud,
	})); err != nil {
		t.Fatal(err)
	}
	if woken := rt.RevalidateAvailability(); woken != 1 {
		t.Fatalf("RevalidateAvailability woke %d tasks, want 1", woken)
	}
	if v, err := fb.Wait(); err != nil || v[0] != 20 {
		t.Fatalf("b = %v (%v), want [20]", v, err)
	}
	st := rt.EngineStats()
	if st.RanMissing != 0 || st.Reexecuted != 0 {
		t.Fatalf("ran-missing/re-executed = %d/%d, want 0/0", st.RanMissing, st.Reexecuted)
	}
}

// TestAvailabilityDeferLostLineage: defer waits out partitions, but data
// lost outright (crash took the only replica) has no heal to wait for —
// its producer must be resubmitted through lineage even under defer,
// instead of dead-waiting in the park set.
func TestAvailabilityDeferLostLineage(t *testing.T) {
	pool := resources.NewPool()
	for _, n := range []string{"n0", "n1"} {
		_ = pool.Add(resources.NewNode(n, resources.Description{
			Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
		}))
	}
	sim, err := infra.New(infra.Config{
		Pool:         pool,
		Net:          simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:       sched.FIFO{},
		Availability: engine.AvailDefer,
		// a completes on n0 at 1s; the crash at 2s loses d1's only
		// replica; b only becomes ready at 5s, so the crash-time sweep of
		// the ready queue cannot have caught it.
		Faults: faults.Scenario{{At: 2 * time.Second, Kind: faults.Crash, Node: "n0"}},
	}, []infra.TaskSpec{
		{ID: 1, Class: "a", Duration: time.Second,
			Accesses:    []deps.Access{{Data: 1, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{1: 1e6}},
		{ID: 2, Class: "b", Duration: time.Second, Release: 5 * time.Second,
			Accesses: []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatalf("defer must recover lost data through lineage, got %v", err)
	}
	st := sim.EngineStats()
	if st.Reexecuted != 1 {
		t.Fatalf("%d lineage re-runs, want 1 (a recomputes d1)", st.Reexecuted)
	}
	if st.Deferred != 1 || st.Woken != 1 {
		t.Fatalf("deferred/woken = %d/%d, want 1/1", st.Deferred, st.Woken)
	}
	if st.AvailRecomputes != 0 {
		t.Fatalf("%d availability recomputes, want 0 (lost data is lineage recovery, not the recompute policy)", st.AvailRecomputes)
	}
}

// TestLiveRestoreShrunkPoolRestages: the live half of the E15b drill. A
// two-node run checkpoints after the producer completes; the resumed
// runtime has only the consumer node, so the producer's replica location
// is gone — the restore seed must re-stage the decoded value onto the
// surviving node, and the resumed run (under defer, which would park
// forever on a dropped replica) must neither park nor recompute.
func TestLiveRestoreShrunkPoolRestages(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	twoNodes := func() *resources.Pool {
		pool := resources.NewPool()
		_ = pool.Add(resources.NewNode("n0", resources.Description{
			Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
		}))
		_ = pool.Add(resources.NewNode("n1", resources.Description{
			Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud,
		}))
		return pool
	}
	aRuns := 0
	register := func(rt *core.Runtime) {
		mustRegister(t, rt, core.TaskDef{Name: "a", Constraints: resources.Constraints{Class: resources.HPC},
			Fn: func(_ context.Context, _ []any) ([]any, error) { aRuns++; return []any{10}, nil }})
		mustRegister(t, rt, core.TaskDef{Name: "b", Constraints: resources.Constraints{Class: resources.Cloud},
			Fn: func(_ context.Context, args []any) ([]any, error) {
				v, _ := args[0].(int)
				return []any{v + 1}, nil
			}})
	}

	// Incarnation 1: a runs on n0, its value is checkpointed.
	rt1 := core.New(core.Config{
		Pool: twoNodes(), Policy: sched.FIFO{},
		Locations:  transfer.NewRegistry(),
		Net:        simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Checkpoint: &checkpoint.Config{Store: store, Policy: checkpoint.EveryN(1)},
	})
	register(rt1)
	d1 := rt1.NewData()
	fa, err := rt1.Submit("a", core.WriteSized(d1, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Wait(); err != nil {
		t.Fatal(err)
	}
	rt1.Barrier()
	rt1.Shutdown()
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}

	// Incarnation 2: n0 is gone. The same workflow re-submits; b's input
	// must come from the re-staged replica, not a producer re-run.
	pool2 := resources.NewPool()
	_ = pool2.Add(resources.NewNode("n1", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud,
	}))
	tr := trace.New(0)
	rt2 := core.New(core.Config{
		Pool: pool2, Policy: sched.FIFO{},
		Locations:    transfer.NewRegistry(),
		Net:          simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Restore:      snap,
		Tracer:       tr,
		Availability: engine.AvailDefer,
	})
	defer rt2.Shutdown()
	mustRegister(t, rt2, core.TaskDef{Name: "a", // unplaceable on this pool: must restore, not run
		Constraints: resources.Constraints{Class: resources.Cloud},
		Fn:          func(_ context.Context, _ []any) ([]any, error) { aRuns++; return []any{10}, nil }})
	mustRegister(t, rt2, core.TaskDef{Name: "b", Constraints: resources.Constraints{Class: resources.Cloud},
		Fn: func(_ context.Context, args []any) ([]any, error) {
			v, _ := args[0].(int)
			return []any{v + 1}, nil
		}})
	d1b := rt2.NewData()
	fa2, err := rt2.Submit("a", core.WriteSized(d1b, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if !fa2.Done() {
		t.Fatal("a was not resolved from the snapshot")
	}
	d2 := rt2.NewData()
	fb, err := rt2.Submit("b", core.Read(d1b), core.WriteSized(d2, 1e3))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := fb.Wait(); err != nil || v[0] != 11 {
		t.Fatalf("b = %v (%v), want [11]", v, err)
	}
	rt2.Barrier()

	if rt2.RestoredTasks() != 1 {
		t.Fatalf("restored %d tasks, want 1", rt2.RestoredTasks())
	}
	if rt2.RestagedReplicas() != 1 {
		t.Fatalf("re-staged %d replicas, want 1 (d1's only location vanished with n0)", rt2.RestagedReplicas())
	}
	if got := tr.Count(trace.DataRestaged); got != 1 {
		t.Fatalf("%d data_restaged trace events, want 1", got)
	}
	st := rt2.EngineStats()
	if st.Deferred != 0 || st.RanMissing != 0 || st.Reexecuted != 0 {
		t.Fatalf("resumed run parked/ran-missing/recomputed = %d/%d/%d, want 0/0/0",
			st.Deferred, st.RanMissing, st.Reexecuted)
	}
	if aRuns != 1 {
		t.Fatalf("a's body ran %d times, want 1 (incarnation 1 only)", aRuns)
	}
}
