package engine_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/resources"
	"repro/internal/sched"
)

// benchExec queues placements for the driver loop (see Executor contract:
// Launch must not schedule synchronously).
type benchExec struct{ queue []engine.Placement }

func (x *benchExec) Launch(p engine.Placement) { x.queue = append(x.queue, p) }

// benchConstraints mixes four signatures: three placeable tiers and one
// (GPU) that no node satisfies, so every wave carries a blocked bucket the
// sharded queue must skip cheaply.
func benchConstraints(i int) resources.Constraints {
	switch i % 4 {
	case 0:
		return resources.Constraints{}
	case 1:
		return resources.Constraints{Cores: 2}
	case 2:
		return resources.Constraints{MemoryMB: 1000}
	default:
		return resources.Constraints{GPUs: 1}
	}
}

// BenchmarkReadyQueue measures the sharded-bucket path: n ready tasks are
// pushed, then drained through placement waves on a 16-node pool, with
// instant completions driven from outside. The reported metric is tasks
// scheduled (placed + completed) per second of wall time.
func BenchmarkReadyQueue(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("ready=%d", n), func(b *testing.B) {
			placeable := n - n/4 // GPU signature never places
			for i := 0; i < b.N; i++ {
				pool := resources.NewPool()
				for j := 0; j < 16; j++ {
					_ = pool.Add(resources.NewNode(fmt.Sprintf("n%02d", j), resources.Description{
						Cores: 8, MemoryMB: 16000, SpeedFactor: 1,
					}))
				}
				exec := &benchExec{}
				e := engine.New(engine.Config{
					Pool:     pool,
					Policy:   sched.MinLoad{},
					Clock:    &stubClock{},
					Executor: exec,
				})
				for id := 1; id <= n; id++ {
					e.Add(&engine.Task{
						ID:          int64(id),
						Class:       "bench",
						EstDuration: time.Second,
						Constraints: benchConstraints(id),
					}, nil, 0)
				}
				e.Schedule()
				done := 0
				for len(exec.queue) > 0 {
					p := exec.queue[0]
					exec.queue = exec.queue[1:]
					if _, ok := e.Complete(p.Task.ID, p.Epoch, false); ok {
						done++
					}
					e.Schedule()
				}
				if done != placeable {
					b.Fatalf("drained %d, want %d", done, placeable)
				}
			}
			b.ReportMetric(float64(placeable*b.N)/b.Elapsed().Seconds(), "sched-tasks/s")
		})
	}
}
