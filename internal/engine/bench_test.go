package engine_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/deps"
	"repro/internal/engine"
	"repro/internal/engine/checkpoint"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/transfer"
)

// benchExec queues placements for the driver loop (see Executor contract:
// Launch must not schedule synchronously).
type benchExec struct{ queue []engine.Placement }

func (x *benchExec) Launch(p engine.Placement) { x.queue = append(x.queue, p) }

// benchConstraints mixes four signatures: three placeable tiers and one
// (GPU) that no node satisfies, so every wave carries a blocked bucket the
// sharded queue must skip cheaply.
func benchConstraints(i int) resources.Constraints {
	switch i % 4 {
	case 0:
		return resources.Constraints{}
	case 1:
		return resources.Constraints{Cores: 2}
	case 2:
		return resources.Constraints{MemoryMB: 1000}
	default:
		return resources.Constraints{GPUs: 1}
	}
}

// BenchmarkReadyQueue measures the sharded-bucket path: n ready tasks are
// pushed, then drained through placement waves on a 16-node pool, with
// instant completions driven from outside. The reported metric is tasks
// scheduled (placed + completed) per second of wall time.
func BenchmarkReadyQueue(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("ready=%d", n), func(b *testing.B) {
			placeable := n - n/4 // GPU signature never places
			for i := 0; i < b.N; i++ {
				pool := resources.NewPool()
				for j := 0; j < 16; j++ {
					_ = pool.Add(resources.NewNode(fmt.Sprintf("n%02d", j), resources.Description{
						Cores: 8, MemoryMB: 16000, SpeedFactor: 1,
					}))
				}
				exec := &benchExec{}
				e := engine.New(engine.Config{
					Pool:     pool,
					Policy:   sched.MinLoad{},
					Clock:    &stubClock{},
					Executor: exec,
				})
				for id := 1; id <= n; id++ {
					e.Add(&engine.Task{
						ID:          int64(id),
						Class:       "bench",
						EstDuration: time.Second,
						Constraints: benchConstraints(id),
					}, nil, 0)
				}
				e.Schedule()
				done := 0
				for len(exec.queue) > 0 {
					p := exec.queue[0]
					exec.queue = exec.queue[1:]
					if _, ok := e.Complete(p.Task.ID, p.Epoch, false); ok {
						done++
					}
					e.Schedule()
				}
				if done != placeable {
					b.Fatalf("drained %d, want %d", done, placeable)
				}
			}
			b.ReportMetric(float64(placeable*b.N)/b.Elapsed().Seconds(), "sched-tasks/s")
		})
	}
}

// completedGraph builds an engine with n independent completed tasks —
// one output replica each in the registry — and the dirty sets freshly
// reset (checkpoint.CaptureBase), i.e. the mostly-clean steady state an
// interval checkpointer sees on a long campaign.
func completedGraph(tb testing.TB, n int) (*engine.Engine, *transfer.Registry, *benchExec) {
	tb.Helper()
	pool := resources.NewPool()
	for j := 0; j < 16; j++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("n%02d", j), resources.Description{
			Cores: 8, MemoryMB: 16000, SpeedFactor: 1,
		}))
	}
	reg := transfer.NewRegistry()
	exec := &benchExec{}
	e := engine.New(engine.Config{
		Pool:     pool,
		Policy:   sched.MinLoad{},
		Clock:    &stubClock{},
		Executor: exec,
		Registry: reg,
	})
	const batch = 4096
	ts := make([]*engine.Task, 0, batch)
	prods := make([][]deps.TaskID, 0, batch)
	for id := 1; id <= n; id++ {
		ts = append(ts, &engine.Task{
			ID: int64(id), Class: "bench", EstDuration: time.Second,
			OutputKeys: []transfer.Key{{Data: deps.DataID(id), Ver: 1}},
		})
		prods = append(prods, nil)
		if len(ts) == batch {
			e.AddBatch(ts, prods)
			ts, prods = ts[:0], prods[:0]
		}
	}
	if len(ts) > 0 {
		e.AddBatch(ts, prods)
	}
	e.Schedule()
	done := 0
	for len(exec.queue) > 0 {
		p := exec.queue[0]
		exec.queue = exec.queue[1:]
		if _, ok := e.Complete(p.Task.ID, p.Epoch, false); ok {
			done++
		}
		e.Schedule()
	}
	if done != n {
		tb.Fatalf("drained %d, want %d", done, n)
	}
	checkpoint.CaptureBase(e, reg) // reset the dirty sets
	return e, reg, exec
}

// churn re-runs k completed tasks (lineage resubmission → placement →
// completion), leaving exactly that much dirty state behind — the
// "small interval on a big graph" a delta capture exists for.
func churn(tb testing.TB, e *engine.Engine, exec *benchExec, k int) {
	tb.Helper()
	for id := 1; id <= k; id++ {
		e.Resubmit(int64(id))
	}
	e.Schedule()
	redone := 0
	for len(exec.queue) > 0 {
		p := exec.queue[0]
		exec.queue = exec.queue[1:]
		if _, ok := e.Complete(p.Task.ID, p.Epoch, false); ok {
			redone++
		}
		e.Schedule()
	}
	if redone != k {
		tb.Fatalf("re-ran %d, want %d", redone, k)
	}
}

const (
	ckptBenchGraph = 50_000 // tasks in the completed graph
	ckptBenchDirty = 64     // tasks re-run between captures
)

// BenchmarkCheckpointSnapshot measures a full capture of the 50k-task
// graph: the per-interval cost checkpointing paid before deltas — O(n)
// regardless of how little changed.
func BenchmarkCheckpointSnapshot(b *testing.B) {
	e, reg, _ := completedGraph(b, ckptBenchGraph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := checkpoint.Capture(e, reg)
		if len(snap.Completed) != ckptBenchGraph {
			b.Fatalf("captured %d completed", len(snap.Completed))
		}
	}
}

// BenchmarkDeltaSnapshot measures the delta capture of the same graph
// with 64 tasks re-run since the last capture — O(changes), the cost an
// interval pays in delta mode. Compare ns/op against
// BenchmarkCheckpointSnapshot: the gap is the whole point.
func BenchmarkDeltaSnapshot(b *testing.B) {
	e, reg, exec := completedGraph(b, ckptBenchGraph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		churn(b, e, exec, ckptBenchDirty)
		b.StartTimer()
		d := checkpoint.CaptureDelta(e, reg)
		if len(d.Tasks) != ckptBenchDirty {
			b.Fatalf("delta carries %d records, want %d", len(d.Tasks), ckptBenchDirty)
		}
	}
}

// TestDeltaCaptureSubLinear pins the asymptotic claim the benchmarks
// above only report: on a mostly-clean graph (64 changes over 50k
// tasks), a delta capture must be at least 5× cheaper than a full one —
// the real gap is orders of magnitude, so 5× only trips if the delta
// path degenerates back into a graph walk.
func TestDeltaCaptureSubLinear(t *testing.T) {
	e, reg, exec := completedGraph(t, ckptBenchGraph)
	trials := 5
	full := make([]time.Duration, 0, trials)
	delta := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		churn(t, e, exec, ckptBenchDirty)
		t0 := time.Now()
		snap := checkpoint.Capture(e, reg)
		full = append(full, time.Since(t0))
		t1 := time.Now()
		d := checkpoint.CaptureDelta(e, reg)
		delta = append(delta, time.Since(t1))
		if len(snap.Completed) != ckptBenchGraph || len(d.Tasks) != ckptBenchDirty {
			t.Fatalf("trial %d: %d completed, %d delta records", i, len(snap.Completed), len(d.Tasks))
		}
	}
	med := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		for i := range s { // tiny n: insertion sort
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[len(s)/2]
	}
	mf, md := med(full), med(delta)
	if mf < 5*md {
		t.Fatalf("delta capture not sub-linear: full %v vs delta %v (want ≥5× gap)", mf, md)
	}
	t.Logf("full %v vs delta %v (%.0f× cheaper)", mf, md, float64(mf)/float64(md))
}
