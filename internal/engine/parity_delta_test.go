package engine_test

// Delta-checkpoint parity: delta chains are an encoding, not a new
// source of truth — reconstructing base + deltas must land on exactly
// the state a full snapshot of the same instant would show, on both
// backends. The sweep runs every conformance generator with every-N
// delta checkpointing on the serialised single-core rig and asserts
// three-way equivalence: the simulator's chain reconstruction, the live
// runtime's chain reconstruction, and the simulator's plain full-mode
// snapshot of the identical schedule. A second test damages the chain —
// the same file index on both backends — and asserts both degrade to
// the same longest-valid-prefix state.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/engine/checkpoint"
	"repro/internal/workloads"
)

// storeFiles splits a store's directory into base and delta paths,
// sequence-ascending.
func storeFiles(t *testing.T, store *checkpoint.Store) (bases, deltas []string) {
	t.Helper()
	for _, p := range store.Snapshots() {
		if strings.HasPrefix(filepath.Base(p), "delta-") {
			deltas = append(deltas, p)
		} else {
			bases = append(bases, p)
		}
	}
	return bases, deltas
}

// damage truncates the file to half its length so the content digest
// can never match again (truncation, unlike a byte flip, is not undone
// by damaging the same file twice).
func damage(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// latest fails the test unless the store reconstructs.
func latest(t *testing.T, store *checkpoint.Store, side string) *checkpoint.Snapshot {
	t.Helper()
	snap, err := store.Latest()
	if err != nil {
		t.Fatalf("%s Latest: %v", side, err)
	}
	return snap
}

// TestDeltaCheckpointParitySweep: every-2-completions checkpoints in
// delta mode (CompactEvery 3, so multi-delta chains AND compaction run
// on every non-trivial case), across every conformance generator and
// both backends.
func TestDeltaCheckpointParitySweep(t *testing.T) {
	steal := engine.StealConfig{Mode: engine.StealOnIdle}
	for _, c := range workloads.ConformanceSuite() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			simStore := ckptSweepSim(t, c, 2, steal, true)
			liveStore := ckptSweepLive(t, c, 2, steal, true)

			simBases, simDeltas := storeFiles(t, simStore)
			liveBases, liveDeltas := storeFiles(t, liveStore)
			if len(simBases) == 0 {
				t.Fatal("simulator persisted no base snapshot")
			}
			if len(simBases) != len(liveBases) || len(simDeltas) != len(liveDeltas) {
				t.Fatalf("file counts diverge: sim %d bases + %d deltas vs live %d + %d",
					len(simBases), len(simDeltas), len(liveBases), len(liveDeltas))
			}

			simSnap := latest(t, simStore, "sim")
			liveSnap := latest(t, liveStore, "live")
			if err := checkpoint.Equivalent(simSnap, liveSnap); err != nil {
				t.Fatalf("chain reconstructions not equivalent: %v", err)
			}

			// Third leg: the same schedule checkpointed in full mode must
			// land on the same final state — reconstruction is an encoding
			// detail, invisible in the result.
			fullSnaps := loadAll(t, ckptSweepSim(t, c, 2, steal, false))
			if len(fullSnaps) == 0 {
				t.Fatal("full-mode run persisted no snapshots")
			}
			if err := checkpoint.Equivalent(simSnap, fullSnaps[len(fullSnaps)-1]); err != nil {
				t.Fatalf("delta reconstruction differs from full-mode snapshot: %v", err)
			}
		})
	}
}

// TestDeltaCorruptionFallbackParity: corrupt the newest checkpoint file
// on both backends' stores — the same position in the same capture
// sequence, delta or compacting base alike — and assert both
// reconstructions fall back to the same longest-valid-prefix state.
// Then corrupt every base too and assert both report ErrNoSnapshot
// rather than serving damaged state.
func TestDeltaCorruptionFallbackParity(t *testing.T) {
	steal := engine.StealConfig{Mode: engine.StealOnIdle}
	ran := 0
	for _, c := range workloads.ConformanceSuite() {
		c := c
		simStore := ckptSweepSim(t, c, 1, steal, true)
		liveStore := ckptSweepLive(t, c, 1, steal, true)
		_, simDeltas := storeFiles(t, simStore)
		_, liveDeltas := storeFiles(t, liveStore)
		if len(simDeltas) < 2 || len(simDeltas) != len(liveDeltas) {
			continue // need a real chain to damage, identically shaped
		}
		ran++
		t.Run(c.Name, func(t *testing.T) {
			intact := latest(t, simStore, "sim")
			simFiles := simStore.Snapshots()
			liveFiles := liveStore.Snapshots()
			damage(t, simFiles[len(simFiles)-1])
			damage(t, liveFiles[len(liveFiles)-1])

			simSnap := latest(t, simStore, "sim")
			liveSnap := latest(t, liveStore, "live")
			if err := checkpoint.Equivalent(simSnap, liveSnap); err != nil {
				t.Fatalf("prefix states not equivalent: %v", err)
			}
			if simSnap.Seq >= intact.Seq {
				t.Fatalf("corrupt tail still served: seq %d, intact head was %d", simSnap.Seq, intact.Seq)
			}

			bases, _ := storeFiles(t, simStore)
			for _, b := range bases {
				damage(t, b)
			}
			if _, err := simStore.Latest(); err == nil {
				t.Fatal("all bases corrupt, Latest still returned a snapshot")
			}
		})
	}
	if ran == 0 {
		t.Fatal("no conformance case produced a multi-delta chain")
	}
}
