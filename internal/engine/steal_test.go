package engine_test

// Work-stealing unit tests, at engine level: a tier-guarding policy
// (sched.WaitFast) declines to run long tasks on the slow node, so the
// shared bucket's long head parks it — the head-of-line blocking the
// steal phase exists to bypass. Tests drive completions by hand through
// a manual clock and a collecting executor.

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/trace"
)

// tierPool builds one fast node (SpeedFactor 1) and one slow node
// (SpeedFactor 0.1), one core each: WaitFast{MaxSlowdown: 2} accepts long
// tasks only on the fast node.
func tierPool() *resources.Pool {
	p := resources.NewPool()
	_ = p.Add(resources.NewNode("fast", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
	}))
	_ = p.Add(resources.NewNode("slow", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 0.1, Class: resources.Fog,
	}))
	return p
}

func stealEngine(t *testing.T, steal engine.StealConfig, tr *trace.Tracer) (*engine.Engine, *collectExec) {
	t.Helper()
	exec := &collectExec{}
	e := engine.New(engine.Config{
		Pool:     tierPool(),
		Policy:   sched.WaitFast{Inner: sched.FIFO{}, MaxSlowdown: 2, MinWait: 10 * time.Second},
		Clock:    &stubClock{},
		Executor: exec,
		Tracer:   tr,
		Steal:    steal,
	})
	return e, exec
}

// long and short tasks share the unconstrained signature: one bucket.
func addSkew(e *engine.Engine) {
	e.Add(&engine.Task{ID: 1, Class: "long", EstDuration: 100 * time.Second}, nil, 0)
	e.Add(&engine.Task{ID: 2, Class: "long", EstDuration: 100 * time.Second}, nil, 0)
	e.Add(&engine.Task{ID: 3, Class: "short", EstDuration: time.Second}, nil, 0)
}

func placedIDs(exec *collectExec) []int64 {
	ids := make([]int64, 0, len(exec.queue))
	for _, p := range exec.queue {
		ids = append(ids, p.Task.ID)
	}
	return ids
}

func TestStealOffParksBucketBehindLongHead(t *testing.T) {
	e, exec := stealEngine(t, engine.StealConfig{}, nil)
	addSkew(e)
	e.Schedule()
	// Long 1 takes the fast node; long 2 declines the slow node and parks
	// the bucket — the short task behind it waits even though the slow
	// node is idle.
	if ids := placedIDs(exec); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("placements = %v, want [1]", ids)
	}
	if st := e.Stats(); st.Steals != 0 {
		t.Fatalf("steals = %d, want 0", st.Steals)
	}
}

func TestStealOnIdleBypassesBlockedHead(t *testing.T) {
	tr := trace.New(0)
	e, exec := stealEngine(t, engine.StealConfig{Mode: engine.StealOnIdle}, tr)
	addSkew(e)
	e.Schedule()
	// Same wave, but the short tail is stolen onto the idle slow node.
	// The blocked long head (task 2) must NOT be stolen: it keeps its
	// claim on the fast tier.
	if ids := placedIDs(exec); len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("placements = %v, want [1 3]", ids)
	}
	if exec.queue[1].Primary().Name() != "slow" {
		t.Fatalf("stolen task placed on %s, want slow", exec.queue[1].Primary().Name())
	}
	if st := e.Stats(); st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}
	if n := tr.Count(trace.TaskStolen); n != 1 {
		t.Fatalf("task_stolen events = %d, want 1", n)
	}
	// The parked long head places normally once the fast node frees up.
	pl := exec.queue[0]
	exec.queue = nil
	if _, ok := e.Complete(pl.Task.ID, pl.Epoch, false); !ok {
		t.Fatal("completion rejected")
	}
	e.Schedule()
	if ids := placedIDs(exec); len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("post-completion placements = %v, want [2]", ids)
	}
	if exec.queue[0].Primary().Name() != "fast" {
		t.Fatalf("long head placed on %s, want fast", exec.queue[0].Primary().Name())
	}
}

func TestStealThresholdRequiresBacklog(t *testing.T) {
	e, exec := stealEngine(t, engine.StealConfig{Mode: engine.StealThreshold, Threshold: 2}, nil)
	addSkew(e)
	e.Schedule()
	// One entry behind the head ≤ threshold 2: no steal.
	if ids := placedIDs(exec); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("placements = %v, want [1] (backlog below threshold)", ids)
	}
	// Two more shorts push the backlog over the threshold; the deepest
	// entry is stolen first and the slow node holds only one.
	e.Add(&engine.Task{ID: 4, Class: "short", EstDuration: time.Second}, nil, 0)
	e.Add(&engine.Task{ID: 5, Class: "short", EstDuration: time.Second}, nil, 0)
	exec.queue = nil
	e.Schedule()
	if ids := placedIDs(exec); len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("placements = %v, want [5] (deepest entry stolen)", ids)
	}
	if st := e.Stats(); st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}
}

func TestStolenTaskRecoversFromCrash(t *testing.T) {
	// The fault-recovery invariant: a stolen task killed by a node crash
	// re-executes exactly like a normally placed one.
	e, exec := stealEngine(t, engine.StealConfig{Mode: engine.StealOnIdle}, nil)
	addSkew(e)
	e.Schedule()
	if ids := placedIDs(exec); len(ids) != 2 || ids[1] != 3 {
		t.Fatalf("placements = %v, want [1 3]", ids)
	}
	stolen := exec.queue[1]
	longPl := exec.queue[0]
	exec.queue = nil

	rep, err := e.FailNode("slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Killed) != 1 || rep.Killed[0].ID != 3 {
		t.Fatalf("killed = %+v, want task 3", rep.Killed)
	}
	// The stolen placement's completion is stale after the crash.
	if _, ok := e.Complete(stolen.Task.ID, stolen.Epoch, false); ok {
		t.Fatal("stale completion of the stolen placement accepted")
	}
	// Only the fast node remains: longs and the recovered short serialise
	// on it in bucket order.
	for _, want := range []int64{2, 3} {
		if _, ok := e.Complete(longPl.Task.ID, longPl.Epoch, false); !ok {
			t.Fatalf("completion of %d rejected", longPl.Task.ID)
		}
		e.Schedule()
		if ids := placedIDs(exec); len(ids) != 1 || ids[0] != want {
			t.Fatalf("placements = %v, want [%d]", ids, want)
		}
		longPl = exec.queue[0]
		exec.queue = nil
	}
	if _, ok := e.Complete(longPl.Task.ID, longPl.Epoch, false); !ok {
		t.Fatal("final completion rejected")
	}
	st := e.Stats()
	if st.Steals != 1 || st.Completed != 3 || st.Reexecuted != 0 {
		t.Fatalf("stats = %+v, want 1 steal, 3 completions, 0 re-executions", st)
	}
}

func TestStealSkipsCapacityBlockedBuckets(t *testing.T) {
	// A bucket parked for lack of capacity (not a policy decline) has no
	// stealable entries: its signature fits nowhere.
	exec := &collectExec{}
	p := tierPool()
	e := engine.New(engine.Config{
		Pool:     p,
		Policy:   sched.FIFO{},
		Clock:    &stubClock{},
		Executor: exec,
		Steal:    engine.StealConfig{Mode: engine.StealOnIdle},
	})
	gpu := resources.Constraints{GPUs: 1}
	e.Add(&engine.Task{ID: 1, Constraints: gpu}, nil, 0)
	e.Add(&engine.Task{ID: 2, Constraints: gpu}, nil, 0)
	e.Schedule()
	if len(exec.queue) != 0 {
		t.Fatalf("placed %v, want none (no GPU node exists)", placedIDs(exec))
	}
	if st := e.Stats(); st.Steals != 0 {
		t.Fatalf("steals = %d, want 0", st.Steals)
	}
}
