package engine_test

// Commutative parity: the live runtime used to serialise COMMUTATIVE
// accesses as INOUT (a fixed member order picked at submission time);
// the value-binding path now merges unordered updates in place, so both
// backends must expose the same dependency structure — members free of
// member-member edges, later accesses gated on the whole group — while
// the live side still computes the correct merged value whatever order
// the scheduler picks.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/transfer"
	"repro/internal/workloads"
)

// TestCommutativeParity runs the CommutativeReduce workload on both
// backends and compares dependency statistics: the simulator's member
// edges (one RAW per member off the seed, group edges into the reader)
// must now appear identically on the live runtime — the reordering
// freedom is kept, not collapsed into an INOUT chain.
func TestCommutativeParity(t *testing.T) {
	const members = 5
	specs := workloads.CommutativeReduce(members, 2*time.Second)

	// Simulator.
	sim, err := infra.New(infra.Config{
		Pool:   commPool(1),
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: sched.FIFO{},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Live runtime: same accesses through the Param API.
	rt := core.New(core.Config{
		Pool:      commPool(1),
		Policy:    sched.FIFO{},
		Locations: transfer.NewRegistry(),
		Net:       simnet.New(simnet.Link{BandwidthMBps: 1000}),
	})
	defer rt.Shutdown()
	mustRegister(t, rt, core.TaskDef{Name: "seed", Fn: func(_ context.Context, _ []any) ([]any, error) {
		return []any{0}, nil
	}})
	mustRegister(t, rt, core.TaskDef{Name: "update", Fn: func(_ context.Context, args []any) ([]any, error) {
		v, _ := args[0].(int)
		return []any{v + 1}, nil
	}})
	mustRegister(t, rt, core.TaskDef{Name: "read", Fn: func(_ context.Context, args []any) ([]any, error) {
		v, _ := args[0].(int)
		return []any{v}, nil
	}})
	acc, out := rt.NewData(), rt.NewData()
	if _, err := rt.Submit("seed", core.WriteSized(acc, 1e6)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < members; i++ {
		if _, err := rt.Submit("update", core.Reduce(acc)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Submit("read", core.Read(acc), core.WriteSized(out, 1e3)); err != nil {
		t.Fatal(err)
	}
	rt.Barrier()

	liveEdges := rt.Stats().DepsEdges
	if liveEdges != simRes.DepEdges {
		t.Fatalf("dependency stats diverge: live %+v vs sim %+v (live must not serialise commutative members)",
			liveEdges, simRes.DepEdges)
	}
	// Members must not chain: exactly one RAW per member (off the seed)
	// plus the reader's RAW; an INOUT chain would add member-member RAWs.
	if want := members + 1; liveEdges.RAW != want {
		t.Fatalf("RAW edges = %d, want %d (members chained?)", liveEdges.RAW, want)
	}
	if liveEdges.Group != members {
		t.Fatalf("group edges = %d, want %d (reader must wait on every member)", liveEdges.Group, members)
	}

	// And the merged value must be the full reduction.
	v, err := rt.WaitOn(acc)
	if err != nil {
		t.Fatal(err)
	}
	if v != members {
		t.Fatalf("merged value = %v, want %d", v, members)
	}
}

// TestCommutativeMergeUnderConcurrency drives many commutative members
// over a multi-core pool, so members genuinely race: every update must
// land (no lost updates), which is exactly what the per-version merge
// lock guarantees.
func TestCommutativeMergeUnderConcurrency(t *testing.T) {
	rt := core.New(core.Config{Pool: commPool(4), Policy: sched.MinLoad{}})
	defer rt.Shutdown()
	mustRegister(t, rt, core.TaskDef{Name: "seed", Fn: func(_ context.Context, _ []any) ([]any, error) {
		return []any{0}, nil
	}})
	mustRegister(t, rt, core.TaskDef{Name: "add", Fn: func(_ context.Context, args []any) ([]any, error) {
		v, _ := args[0].(int)
		w, _ := args[1].(int)
		return []any{v + w}, nil
	}})

	const members = 64
	acc := rt.NewData()
	if _, err := rt.Submit("seed", core.Write(acc)); err != nil {
		t.Fatal(err)
	}
	want := 0
	reqs := make([]core.TaskReq, 0, members)
	for i := 1; i <= members; i++ {
		want += i
		reqs = append(reqs, core.TaskReq{
			Name:   "add",
			Params: []core.Param{core.Reduce(acc), core.In(i)},
		})
	}
	if _, err := rt.SubmitAll(reqs); err != nil {
		t.Fatal(err)
	}
	v, err := rt.WaitOn(acc)
	if err != nil {
		t.Fatal(err)
	}
	if v != want {
		t.Fatalf("merged value = %v, want %d (lost commutative updates)", v, want)
	}
}

func commPool(cores int) *resources.Pool {
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("pn0", resources.Description{
		Cores: cores, MemoryMB: 32_000, SpeedFactor: 1, Class: resources.HPC,
	}))
	return pool
}
