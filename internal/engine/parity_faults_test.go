package engine_test

// Failure parity: the same fault script — slow-node, network partition,
// node crash — executed against the live runtime and the virtual-time
// simulator must produce identical task re-execution counts, identical
// transfer books and the same start order, because both backends delegate
// kill/deregister/lineage-resubmit to the shared engine fault surface.
// The live side proves the E7 recovery drill end-to-end: the killed
// task's future stays open until the recovery re-execution delivers the
// (correct) value.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/engine"
	"repro/internal/engine/checkpoint"
	"repro/internal/engine/faults"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// faultParityPool builds the shared 3-node pool: two HPC workers and one
// cloud node, one core each.
func faultParityPool() *resources.Pool {
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("n0", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
	}))
	_ = pool.Add(resources.NewNode("n1", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
	}))
	_ = pool.Add(resources.NewNode("n2", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud,
	}))
	return pool
}

type faultParityOutcome struct {
	order  []int64 // TaskStarted sequence (includes recovery re-starts)
	stats  engine.Stats
	failed int // killed-by-crash count
}

// The script, shared by both backends:
//
//	a (1) writes d1; b (2) reads d1, writes d2.
//	While b runs on n0: slow n2 ×3, cut n1~n2, crash n0.
//	  → b killed; d1's only replica lost; a re-executes; b re-runs.
//	c (3, cloud-pinned) reads d2 behind the cut: staging blocked, no move.
//	After healing, e (4, cloud-pinned) reads d2: one real transfer.
func runFaultScriptSim(t *testing.T, steal engine.StealConfig, ck *checkpoint.Config) faultParityOutcome {
	t.Helper()
	tr := trace.New(0)
	specs := []infra.TaskSpec{
		{ID: 1, Class: "a", Duration: time.Second,
			Accesses:    []deps.Access{{Data: 1, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{1: 1e6}},
		{ID: 2, Class: "b", Duration: 10 * time.Second,
			Accesses:    []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{2: 2e6}},
		{ID: 3, Class: "c", Duration: time.Second, Release: 15 * time.Second,
			Constraints: resources.Constraints{Class: resources.Cloud},
			Accesses:    []deps.Access{{Data: 2, Dir: deps.In}, {Data: 3, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{3: 1e3}},
		{ID: 4, Class: "e", Duration: time.Second, Release: 20 * time.Second,
			Constraints: resources.Constraints{Class: resources.Cloud},
			Accesses:    []deps.Access{{Data: 2, Dir: deps.In}, {Data: 4, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{4: 1e3}},
	}
	sim, err := infra.New(infra.Config{
		Pool:       faultParityPool(),
		Net:        simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:     sched.FIFO{},
		Tracer:     tr,
		Steal:      steal,
		Checkpoint: ck,
		Faults: faults.Scenario{
			{At: 2 * time.Second, Kind: faults.Slow, Node: "n2", Factor: 3},
			{At: 2 * time.Second, Kind: faults.Cut, Node: "n1", Peer: "n2"},
			{At: 2 * time.Second, Kind: faults.Crash, Node: "n0"},
			{At: 18 * time.Second, Kind: faults.HealLink, Node: "n1", Peer: "n2"},
		},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return faultParityOutcome{
		order:  startOrder(tr),
		stats:  sim.EngineStats(),
		failed: res.TasksFailed,
	}
}

func runFaultScriptLive(t *testing.T, steal engine.StealConfig, ck *checkpoint.Config) faultParityOutcome {
	t.Helper()
	tr := trace.New(0)
	rt := core.New(core.Config{
		Pool:       faultParityPool(),
		Policy:     sched.FIFO{},
		Tracer:     tr,
		Locations:  transfer.NewRegistry(),
		Net:        simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Steal:      steal,
		Checkpoint: ck,
	})
	defer rt.Shutdown()

	bStarted := make(chan struct{}, 2) // first execution + recovery re-run
	bRelease := make(chan struct{})
	mustRegister(t, rt, core.TaskDef{Name: "a", Fn: func(_ context.Context, _ []any) ([]any, error) {
		return []any{10}, nil
	}})
	mustRegister(t, rt, core.TaskDef{Name: "b", Fn: func(_ context.Context, args []any) ([]any, error) {
		bStarted <- struct{}{}
		<-bRelease
		v, _ := args[0].(int)
		return []any{v * 2}, nil
	}})
	addOne := func(_ context.Context, args []any) ([]any, error) {
		v, _ := args[0].(int)
		return []any{v + 1}, nil
	}
	cloud := resources.Constraints{Class: resources.Cloud}
	mustRegister(t, rt, core.TaskDef{Name: "c", Fn: addOne, Constraints: cloud})
	mustRegister(t, rt, core.TaskDef{Name: "e", Fn: addOne, Constraints: cloud})

	d1, d2, d3, d4 := rt.NewData(), rt.NewData(), rt.NewData(), rt.NewData()
	fa, err := rt.Submit("a", core.WriteSized(d1, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Wait(); err != nil {
		t.Fatal(err)
	}
	fb, err := rt.Submit("b", core.Read(d1), core.WriteSized(d2, 2e6))
	if err != nil {
		t.Fatal(err)
	}
	<-bStarted // b is running on n0

	// Inject the script, in the simulator's firing order.
	if err := rt.SlowNode("n2", 3); err != nil {
		t.Fatal(err)
	}
	if err := rt.Partition("n1", "n2"); err != nil {
		t.Fatal(err)
	}
	rep, err := rt.FailNode("n0")
	if err != nil {
		t.Fatal(err)
	}
	failed := len(rep.Killed)
	close(bRelease) // let the orphaned and the recovery execution proceed
	if _, err := fb.Wait(); err != nil {
		t.Fatalf("b after recovery: %v", err)
	}

	fc, err := rt.Submit("c", core.Read(d2), core.WriteSized(d3, 1e3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Heal("n1", "n2"); err != nil {
		t.Fatal(err)
	}
	fe, err := rt.Submit("e", core.Read(d2), core.WriteSized(d4, 1e3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Wait(); err != nil {
		t.Fatal(err)
	}
	rt.Barrier()

	// Recovery must deliver the correct workload result: a=10, b=2a=20,
	// c=b+1=21, e=b+1=21.
	for _, check := range []struct {
		h    *core.Handle
		want int
	}{{d2, 20}, {d3, 21}, {d4, 21}} {
		v, err := rt.WaitOn(check.h)
		if err != nil {
			t.Fatal(err)
		}
		if v != check.want {
			t.Fatalf("final value = %v, want %d", v, check.want)
		}
	}
	return faultParityOutcome{
		order:  startOrder(tr),
		stats:  rt.EngineStats(),
		failed: failed,
	}
}

// startOrder extracts the TaskStarted sequence.
func startOrder(tr *trace.Tracer) []int64 {
	var order []int64
	for _, ev := range tr.Events() {
		if ev.Kind == trace.TaskStarted {
			order = append(order, ev.Task)
		}
	}
	return order
}

func TestFaultScriptParity(t *testing.T) {
	// The script must produce the same choreography with work stealing
	// off and on: the FIFO policy never declines a placement, so no steal
	// fires, and the knob must not disturb the fault/recovery path.
	for _, mode := range []struct {
		name  string
		steal engine.StealConfig
	}{
		{"steal-off", engine.StealConfig{}},
		{"steal-on-idle", engine.StealConfig{Mode: engine.StealOnIdle}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			sim := runFaultScriptSim(t, mode.steal, nil)
			live := runFaultScriptLive(t, mode.steal, nil)

			if len(sim.order) != len(live.order) {
				t.Fatalf("start sequences differ in length: sim %v vs live %v", sim.order, live.order)
			}
			for i := range sim.order {
				if sim.order[i] != live.order[i] {
					t.Fatalf("start order diverges at %d: sim %v vs live %v", i, sim.order, live.order)
				}
			}
			if sim.failed != live.failed || sim.failed != 1 {
				t.Fatalf("killed tasks: sim %d, live %d, want 1 each", sim.failed, live.failed)
			}
			if sim.stats.Reexecuted != live.stats.Reexecuted || sim.stats.Reexecuted != 1 {
				t.Fatalf("re-execution counts: sim %d, live %d, want 1 each",
					sim.stats.Reexecuted, live.stats.Reexecuted)
			}
			if sim.stats.Launched != live.stats.Launched {
				t.Fatalf("launch counts diverge: sim %d vs live %d", sim.stats.Launched, live.stats.Launched)
			}
			if sim.stats.Steals != live.stats.Steals || sim.stats.Steals != 0 {
				t.Fatalf("steal counts: sim %d, live %d, want 0 each (FIFO never declines)",
					sim.stats.Steals, live.stats.Steals)
			}
			if sim.stats.Transfers != live.stats.Transfers || sim.stats.Transfers != 1 {
				t.Fatalf("transfer counts: sim %d, live %d, want 1 each (partition must block c's fetch)",
					sim.stats.Transfers, live.stats.Transfers)
			}
			if sim.stats.BytesMoved != live.stats.BytesMoved || sim.stats.BytesMoved != 2e6 {
				t.Fatalf("bytes moved: sim %d, live %d, want 2e6 each",
					sim.stats.BytesMoved, live.stats.BytesMoved)
			}
		})
	}
}

// TestFaultUnknownNodeParity: both backends must reject (not silently
// absorb) faults aimed at nodes that are unknown or already dead.
func TestFaultUnknownNodeParity(t *testing.T) {
	// Simulator: the crash targets a node that never existed; the run
	// completes and the ignored fault is on the trace.
	tr := trace.New(0)
	sim, err := infra.New(infra.Config{
		Pool:   faultParityPool(),
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: sched.FIFO{},
		Tracer: tr,
		Faults: faults.Scenario{{At: time.Second, Kind: faults.Crash, Node: "ghost"}},
	}, []infra.TaskSpec{{ID: 1, Class: "t", Duration: 2 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Count(trace.FaultIgnored); got != 1 {
		t.Fatalf("sim recorded %d ignored faults, want 1", got)
	}
	if got := tr.Count(trace.NodeFailed); got != 0 {
		t.Fatalf("sim recorded %d node failures for a ghost node, want 0", got)
	}

	// Live runtime: same script, same verdict.
	rt := core.New(core.Config{Pool: faultParityPool(), Policy: sched.FIFO{}})
	defer rt.Shutdown()
	if _, err := rt.FailNode("ghost"); err == nil {
		t.Fatal("live FailNode(ghost) succeeded, want error")
	}
	// Double-kill: the second crash of the same node is rejected too.
	if _, err := rt.FailNode("n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.FailNode("n2"); err == nil {
		t.Fatal("second FailNode(n2) succeeded, want error")
	}
}
