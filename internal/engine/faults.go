// Fault injection — the engine-level half of the paper's resilience story
// (Sec. VI-B, experiment E7: part of the infrastructure disappears mid-run
// and the runtime recovers through persisted data and lineage
// re-execution). Fault handling lives here, not in the backends, so the
// live runtime and the virtual-time simulator share one failure/recovery
// semantics exactly as they share one scheduling semantics: a backend
// turns a fault into backend-specific cleanup (cancelling goroutines,
// invalidating clock events) through the epoch mechanism and leaves the
// kill/deregister/lineage-resubmit choreography to the engine.
package engine

import (
	"errors"
	"fmt"

	"repro/internal/trace"
	"repro/internal/transfer"
)

// Errors reported by fault injection.
var (
	// ErrUnknownNode is returned for faults targeting nodes the pool does
	// not hold (never added, or already failed/removed).
	ErrUnknownNode = errors.New("engine: unknown or already-removed node")
	// ErrNoNetwork is returned for partition faults when the engine has no
	// network model to cut.
	ErrNoNetwork = errors.New("engine: no network model configured")
	// ErrBadFactor is returned for slow-node factors ≤ 0.
	ErrBadFactor = errors.New("engine: slow-node factor must be > 0")
)

// FailReport summarises one node failure.
type FailReport struct {
	// Node is the failed node.
	Node string
	// Killed lists the running tasks whose executions were invalidated
	// (their placements' epochs no longer match; every one has been
	// resubmitted).
	Killed []*Task
	// LostKeys lists the data versions whose last replica died with the
	// node — the data lineage recovery recomputes.
	LostKeys []transfer.Key
	// Resubmitted counts the recovery resubmissions triggered directly by
	// the failure: killed tasks plus ready tasks that lost an input.
	Resubmitted int
}

// FailNode injects a node crash: the node leaves the pool, its replicas
// are forgotten, every running task that reserved it is killed (epoch
// invalidated, surviving group reservations released) and resubmitted
// through the lineage recovery path, and ready tasks that lost an input
// replica are parked behind their recomputing producers. A placement wave
// runs before returning.
//
// onKill, when non-nil, is called once per killed task after its epoch is
// invalidated and before it is resubmitted — the live runtime cancels the
// task's in-flight goroutine here. It must not call back into the engine.
//
// Failing a node the pool does not hold returns ErrUnknownNode and has no
// effect, so scripted fault scenarios behave identically on every backend
// instead of silently diverging.
func (e *Engine) FailNode(name string, onKill func(*Task)) (FailReport, error) {
	if _, ok := e.cfg.Pool.Get(name); !ok {
		return FailReport{}, fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	rep := FailReport{Node: name}
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(trace.Event{At: e.cfg.Clock.Now(), Kind: trace.NodeFailed, Node: name})
	}
	_ = e.cfg.Pool.Remove(name)
	e.mu.Lock()
	delete(e.slow, name)
	e.mu.Unlock()

	// Data on the node is gone.
	if e.cfg.Registry != nil {
		rep.LostKeys = e.cfg.Registry.DropNode(name)
	}

	// Kill running tasks that used the node and recover through lineage.
	rep.Killed = e.KillRunningOn(name)
	for _, t := range rep.Killed {
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.Record(trace.Event{At: e.cfg.Clock.Now(), Kind: trace.TaskFailed, Task: t.ID, Node: name})
		}
		if onKill != nil {
			onKill(t)
		}
	}
	for _, t := range rep.Killed {
		e.Resubmit(t.ID)
		rep.Resubmitted++
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.Record(trace.Event{At: e.cfg.Clock.Now(), Kind: trace.TaskRecovered, Task: t.ID})
		}
	}

	// Parked tasks may have been waiting on data that just died with the
	// node: wake the whole availability wait set so the sweep below (and
	// the closing placement wave) re-classifies everything — lost inputs
	// with a producer recompute through lineage, still-partitioned ones
	// simply park again.
	e.wakeAllParked()

	// Ready tasks may have lost an input with the node; recompute their
	// producers before they run.
	for _, t := range e.DropReadyMissingInputs() {
		e.Resubmit(t.ID)
		rep.Resubmitted++
	}
	e.Schedule()
	return rep, nil
}

// SlowNode injects a slow node: placements whose group includes the node
// carry a duration multiplier ≥ 1 in Placement.SlowFactor from now on (the
// straggler of experiment E7's "no longer in the fog area" degradation).
// The simulator stretches modelled compute times by it; the live runtime
// cannot stretch real execution but records the placements as degraded. A
// factor of 1 clears the slowdown.
func (e *Engine) SlowNode(name string, factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("%w: %g", ErrBadFactor, factor)
	}
	if _, ok := e.cfg.Pool.Get(name); !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	e.mu.Lock()
	if factor == 1 {
		delete(e.slow, name)
	} else {
		if e.slow == nil {
			e.slow = make(map[string]float64)
		}
		e.slow[name] = factor
	}
	e.mu.Unlock()
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(trace.Event{
			At: e.cfg.Clock.Now(), Kind: trace.NodeSlowed, Node: name,
			Info: fmt.Sprintf("x%g", factor),
		})
	}
	return nil
}

// DrainNode cordons a node: running tasks finish, but the placement loop
// stops reserving it — the graceful deregistration used when a resource is
// leaving the pool on purpose rather than crashing out of it.
func (e *Engine) DrainNode(name string) error {
	n, ok := e.cfg.Pool.Get(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	n.Drain()
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(trace.Event{At: e.cfg.Clock.Now(), Kind: trace.NodeDrained, Node: name})
	}
	return nil
}

// Partition injects a network partition: the link between the two
// endpoints (node or zone names) is cut in the network model, so input
// staging across it is impossible — affected fetches surface as missing
// replicas — until Heal restores it.
func (e *Engine) Partition(a, b string) error {
	if e.cfg.Net == nil {
		return ErrNoNetwork
	}
	e.cfg.Net.Cut(a, b)
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(trace.Event{
			At: e.cfg.Clock.Now(), Kind: trace.LinkCut, Info: a + "~" + b,
		})
	}
	return nil
}

// Heal restores a link previously cut by Partition, then re-validates the
// availability picture: tasks parked on versions whose replicas are
// reachable again are woken and a placement wave runs, so mid-queue work
// re-plans its staging (transfer.PlanFetch / simnet.BestSource now see
// the healed link) instead of waiting for the next completion.
func (e *Engine) Heal(a, b string) error {
	if e.cfg.Net == nil {
		return ErrNoNetwork
	}
	e.cfg.Net.Heal(a, b)
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(trace.Event{
			At: e.cfg.Clock.Now(), Kind: trace.LinkHealed, Info: a + "~" + b,
		})
	}
	if e.wakeReachable() > 0 {
		e.Schedule()
	}
	return nil
}

// Current reports whether the (id, epoch) pair names the task's live
// placement: the task is Running and no failure has invalidated that
// placement since it launched. Live executors consult it before
// publishing side effects of a possibly-stale execution.
func (e *Engine) Current(id int64, epoch int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tasks[id]
	return ok && t.state == Running && t.epoch == epoch
}
