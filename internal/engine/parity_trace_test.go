package engine_test

// Trace-replay parity: replaying a workload trace must be byte-for-byte
// deterministic on the simulator (same trace + pool + policy = the
// identical event stream, run after run), and the live replayer must
// drive the runtime to the same completions, dependency wiring and
// transfer books as the simulator replaying the same file.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/faults"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
	wtrace "repro/internal/workloads/trace"
	latreport "repro/internal/workloads/trace/report"
)

// replayPool builds a small heterogeneous pool for replay runs.
func replayPool() *resources.Pool {
	pool := resources.NewPool()
	for i := 0; i < 4; i++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("rn%d", i), resources.Description{
			Cores: 2, MemoryMB: 16_000, SpeedFactor: 1, Class: resources.HPC,
		}))
	}
	return pool
}

// TestTraceReplayDeterministic: five sim replays of the same generated
// trace produce byte-identical event traces — the property that makes
// trace-driven experiments diffable.
func TestTraceReplayDeterministic(t *testing.T) {
	cfg := wtrace.DefaultGen(wtrace.ShapeDiurnal)
	cfg.Tasks = 400
	cfg.Seed = 11
	cfg.CohortSize = 2
	cfg.CohortDeps = true
	gen, err := wtrace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var baseline []byte
	for run := 0; run < 5; run++ {
		tr := trace.New(0)
		sim, err := infra.New(infra.Config{
			Pool:   replayPool(),
			Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
			Policy: sched.MinLoad{},
			Tracer: tr,
		}, gen.Specs())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.TasksCompleted != len(gen.Tasks) {
			t.Fatalf("run %d completed %d/%d", run, res.TasksCompleted, len(gen.Tasks))
		}
		data, err := tr.ExportJSON()
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			baseline = data
			continue
		}
		if !bytes.Equal(baseline, data) {
			t.Fatalf("run %d event trace diverges from run 0", run)
		}
	}
}

// TestTraceReplayLiveParity: the live replayer (cohorts released on a
// wall timer through the batch-submit path) must match the simulator
// replaying the same committed trace — completions, launches, steals,
// transfer books, dependency edges — and stamp a complete set of
// latency milestones.
func TestTraceReplayLiveParity(t *testing.T) {
	ctrace := wtrace.Conformance()
	node := resources.Description{
		Cores: 1, MemoryMB: 32_000, SpeedFactor: 1, Class: resources.HPC,
	}

	// Sim side: native replay on one single-core node.
	simPool := resources.NewPool()
	_ = simPool.Add(resources.NewNode("pn0", node))
	sim, err := infra.New(infra.Config{
		Pool:   simPool,
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: sched.FIFO{},
	}, ctrace.Specs())
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	simStats := sim.EngineStats()

	// Live side: ReplayLive with time compression on a wall timer.
	livePool := resources.NewPool()
	_ = livePool.Add(resources.NewNode("pn0", node))
	rt := core.New(core.Config{
		Pool:      livePool,
		Policy:    sched.FIFO{},
		Locations: transfer.NewRegistry(),
		Net:       simnet.New(simnet.Link{BandwidthMBps: 1000}),
	})
	defer rt.Shutdown()
	timer := faults.NewWallTimer()
	defer timer.Stop()
	futs, err := wtrace.ReplayLive(rt, ctrace, wtrace.LiveOptions{Timer: timer, Speedup: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(futs) != len(ctrace.Tasks) {
		t.Fatalf("live replay returned %d futures, want %d", len(futs), len(ctrace.Tasks))
	}
	rt.Barrier()
	liveStats := rt.EngineStats()

	if simRes.TasksCompleted != len(ctrace.Tasks) || liveStats.Completed != simStats.Completed {
		t.Fatalf("completions diverge: sim %d vs live %d (want %d)",
			simStats.Completed, liveStats.Completed, len(ctrace.Tasks))
	}
	if liveStats.Launched != simStats.Launched {
		t.Fatalf("launches diverge: sim %d vs live %d", simStats.Launched, liveStats.Launched)
	}
	if liveStats.Steals != simStats.Steals {
		t.Fatalf("steals diverge: sim %d vs live %d", simStats.Steals, liveStats.Steals)
	}
	if liveStats.Transfers != simStats.Transfers || liveStats.BytesMoved != simStats.BytesMoved {
		t.Fatalf("transfer books diverge: sim %d/%dB vs live %d/%dB",
			simStats.Transfers, simStats.BytesMoved, liveStats.Transfers, liveStats.BytesMoved)
	}
	if simRes.DepEdges != rt.Stats().DepsEdges {
		t.Fatalf("dependency stats diverge: sim %+v vs live %+v", simRes.DepEdges, rt.Stats().DepsEdges)
	}

	// Both backends must have stamped full milestone chains, and the
	// joined per-tenant report must cover every tenant in the trace.
	checkTimings := func(name string, sum latreport.Summary) {
		t.Helper()
		if sum.Completed != len(ctrace.Tasks) {
			t.Fatalf("%s summary covers %d tasks, want %d", name, sum.Completed, len(ctrace.Tasks))
		}
		if want := len(ctrace.Tenants()); len(sum.Tenants) != want {
			t.Fatalf("%s summary has %d tenants, want %d", name, len(sum.Tenants), want)
		}
	}
	checkTimings("sim", latreport.Build(sim.Timings(), latreport.MetaOf(ctrace)))
	checkTimings("live", latreport.Build(rt.Timings(), latreport.MetaOf(ctrace)))
}
