// Package engine is the backend-agnostic scheduling engine shared by the
// live runtime (internal/core) and the virtual-time simulator
// (internal/infra). The paper's central claim is that one task-based
// runtime — graph construction, dependency-aware scheduling, data
// transfers — serves every tier of the computing continuum (Sec. VI-A);
// this package is that single runtime core. Both backends delegate their
// ready-queue, placement loop, dependency release, recovery resubmission
// and transfer accounting here, parameterised by two small interfaces: a
// Clock (wall time vs internal/simclock) and an Executor (goroutine
// workers vs duration-modelled completion events).
//
// The engine is built for scale: the ready set is sharded into
// per-constraint-signature buckets, so a scheduling wave inspects one
// queue head per signature instead of rescanning every queued task
// (O(placements × signatures) rather than O(ready × nodes)), and a
// completing task releases all of its successors under a single lock
// acquisition.
//
// Buckets are strict FIFOs (per-signature priority order), which makes a
// blocked head park its whole bucket until the next completion wave.
// When the blocking is a policy decision — the head is waiting for a
// busier, faster tier — idle slower nodes would sit unused even though
// entries behind the head would gladly run on them. Work stealing
// (Config.Steal) closes that gap: after the normal wave, the engine
// re-offers entries behind each blocked head, deepest first, through the
// identical placement path, so a stolen task keeps every dependency,
// lineage and fault-recovery invariant of a normally placed one. See
// docs/ARCHITECTURE.md for the full picture.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/deps"
	"repro/internal/obsv"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// Clock reports the current time as an offset from the run's epoch. The
// live runtime passes wall time elapsed since start; the simulator passes
// its virtual clock.
type Clock interface {
	Now() time.Duration
}

// WallClock is the Clock of the live runtime: elapsed real time since
// Epoch.
type WallClock struct {
	Epoch time.Time
}

// Now implements Clock.
func (w WallClock) Now() time.Duration { return time.Since(w.Epoch) }

// Placement describes one launched task: the reserved node group (primary
// first) and the staging cost already accounted by the engine.
type Placement struct {
	// Task is the placed task.
	Task *Task
	// Nodes is the reserved group (≥ 1 entries; index 0 is the primary,
	// chosen by the policy).
	Nodes []*resources.Node
	// Epoch snapshots the task's placement counter; pass it back to
	// Complete so completions cancelled by a failure are ignored.
	Epoch int
	// TransferTime is the modelled input-staging time (zero unless the
	// engine was configured with a Registry and Net).
	TransferTime time.Duration
	// SlowFactor is the duration multiplier of the slowest group member
	// (≥ 1; see Engine.SlowNode). Duration-modelling executors stretch
	// compute time by it.
	SlowFactor float64
}

// Primary returns the policy-chosen node of the group.
func (p Placement) Primary() *resources.Node { return p.Nodes[0] }

// Executor starts execution of placed tasks. The live runtime spawns a
// goroutine per placement; the simulator schedules a completion event on
// its virtual clock. Every launch must eventually be answered by a call
// to Engine.Complete (or be invalidated through KillRunningOn).
type Executor interface {
	// Launch starts p. It is called while the engine's launch batch is
	// being drained (the task-state lock is not held), so it may inspect
	// the engine, but it must not call Schedule or CompleteSchedule
	// synchronously — hand completions back from another goroutine, a
	// clock event, or an outer driver loop instead.
	Launch(p Placement)
}

// State is the lifecycle of a task inside the engine.
type State int

// Task states.
const (
	// Pending tasks wait for dependencies (or a hold release).
	Pending State = iota + 1
	// Ready tasks sit in a signature bucket awaiting placement.
	Ready
	// Running tasks hold node reservations.
	Running
	// Done tasks have completed at least once.
	Done
	// Parked tasks sit in the availability wait set: every replica of at
	// least one input is lost or partitioned away, and Config.Availability
	// chose to hold the task until a heal or a fresh replica wakes it.
	Parked
)

// Task is one schedulable unit. The exported fields are set by the
// backend before Add and read-only afterwards; the engine owns the rest.
type Task struct {
	// ID is the graph-unique task ID.
	ID int64
	// Class names the task type (policy/predictor key, trace label).
	Class string
	// Constraints are the placement requirements.
	Constraints resources.Constraints
	// EstDuration is the declared base duration (0 if unknown).
	EstDuration time.Duration
	// InputKeys are the data versions the task reads.
	InputKeys []transfer.Key
	// InputBytes is the total input size (predictor covariate).
	InputBytes int64
	// OutputKeys are the data versions the task produces; the engine
	// registers them as replicas on the primary node at completion.
	OutputKeys []transfer.Key
	// Payload carries backend-specific state (e.g. the future, the spec).
	Payload any

	sig        string
	prio       float64
	state      State
	waitCount  int
	dependents []int64
	redeps     map[int64]struct{} // recovery waiters (lazily allocated)
	completed  bool               // completed at least once
	ckptDirty  bool               // in the engine's dirty set (delta checkpoints)
	epoch      int                // placement counter
	nodes      []string           // reserved node names while Running
	started    time.Duration
	// Latency milestones on the engine clock, first transition only (a
	// recovery re-run never rewrites them). -1 = not reached, because
	// t=0 is a legitimate virtual timestamp.
	submitAt   time.Duration
	readyAt    time.Duration
	firstStart time.Duration
	doneAt     time.Duration
	availKeys  []transfer.Key // unavailable inputs this task is parked on
	availNeed  string         // availability-recompute hint: the primary must reach this node
}

// StealMode selects the engine's cross-bucket work-stealing behaviour.
//
// A bucket whose head fails to place is parked for the rest of the wave.
// When the failure is capacity (no node fits the signature) nothing
// behind the head can run either — the signatures are identical — and
// stealing has nothing to do. When the failure is a policy decision (the
// head is holding out for a busier, faster tier; see sched.WaitFast),
// entries behind the head may still be acceptable on the nodes the wave
// left idle. Stealing re-offers those entries, deepest (lowest-priority,
// newest) first, so the head keeps its claim on the tier it is waiting
// for and bucket order is preserved for everything that is not stolen.
type StealMode int

// Steal modes.
const (
	// StealOff disables stealing: a blocked bucket waits for the next
	// completion wave.
	StealOff StealMode = iota
	// StealOnIdle re-offers the entries behind every blocked head to the
	// capacity the wave left idle, deepest entry first.
	StealOnIdle
	// StealThreshold steals like StealOnIdle, but only from buckets
	// holding more than StealConfig.Threshold entries behind the blocked
	// head — a backlog signal that avoids paying the scan for shallow
	// queues that the next completion wave would drain anyway.
	StealThreshold
)

// String returns the mode name.
func (m StealMode) String() string {
	switch m {
	case StealOff:
		return "off"
	case StealOnIdle:
		return "on-idle"
	case StealThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("StealMode(%d)", int(m))
	}
}

// StealConfig tunes work stealing (see StealMode).
type StealConfig struct {
	// Mode selects the behaviour; the zero value is StealOff.
	Mode StealMode
	// Threshold is the minimum number of entries behind a blocked head
	// before StealThreshold mode will steal from the bucket.
	Threshold int
}

// Config assembles an engine.
type Config struct {
	// Pool is the node set placements draw from. Required.
	Pool *resources.Pool
	// Policy places ready tasks. Required.
	Policy sched.Policy
	// Clock timestamps trace events and task starts. Required.
	Clock Clock
	// Executor runs placed tasks. Required.
	Executor Executor
	// Registry, when set, receives a replica of every task output on its
	// primary node (the locality information source). Optional.
	Registry *transfer.Registry
	// Net, when set together with Registry, makes the engine stage each
	// placed task's inputs onto the primary node and account the moved
	// bytes and modelled transfer time. Optional.
	Net *simnet.Network
	// PersistNode, when non-empty, receives a replica of every output —
	// the dataClay persistence tier that makes recovery cheap.
	PersistNode string
	// Tracer, when set, receives TaskStarted / TaskCompleted /
	// TaskFailed / DataTransfer / DataPersisted events.
	Tracer *trace.Tracer
	// SchedContext is handed to the policy on every decision. Optional.
	SchedContext *sched.Context
	// Steal enables cross-bucket work stealing (default off).
	Steal StealConfig
	// Availability selects what placement does with a task whose inputs
	// are lost or partitioned away (default AvailRunAnyway; see the
	// Availability type). Effective only when Registry and Net are both
	// set — without the transfer books the engine cannot classify inputs.
	Availability Availability
	// Metrics, when set, receives continuous observability signals:
	// per-signature ready depth, parked count, wave size/duration,
	// decline reasons, steal and availability churn, transfer volume.
	// Durations are observed on the engine Clock, so simulator series are
	// deterministic (and wave durations are 0 — no virtual time passes
	// inside a wave). Leave nil for an inert bundle (metrics off; the hot
	// paths then write to nil instruments, which discard). Optional.
	Metrics *obsv.EngineMetrics
	// DisableIndex forces the legacy materialized-slice placement path
	// even when the policy implements sched.IndexedPolicy. The pool's
	// capability index still answers Fitting/Capable queries; this only
	// disables the engine's direct indexed pick. Exists for parity
	// testing and as an escape hatch.
	DisableIndex bool
}

// Stats counts engine activity since creation.
type Stats struct {
	// Launched counts task launches (re-executions count again).
	Launched int
	// Steals counts launches that bypassed a blocked bucket head (work
	// stealing; every steal is also counted in Launched).
	Steals int
	// Completed counts live completions.
	Completed int
	// Restored counts tasks marked completed from a checkpoint snapshot
	// instead of executing (RestoreCompleted; never counted in Launched).
	Restored int
	// Reexecuted counts recovery re-runs of already-completed tasks.
	Reexecuted int
	// Transfers counts planned input fetches (replica-miss moves).
	Transfers int
	// BytesMoved totals the payload of those fetches.
	BytesMoved int64
	// TransferTime sums the modelled staging time on task critical paths.
	TransferTime time.Duration
	// RanMissing counts launches that proceeded although at least one
	// input had no reachable replica (Availability == AvailRunAnyway) —
	// the executions the defer/recompute policies exist to eliminate.
	RanMissing int
	// Deferred counts park events: placement attempts diverted into the
	// availability wait set (a task woken optimistically and re-parked
	// counts again).
	Deferred int
	// Woken counts releases from the availability wait set back to the
	// ready queue (heals, fresh replicas, failure sweeps).
	Woken int
	// AvailRecomputes counts producer resubmissions triggered by
	// AvailRecompute placement decisions (every one also shows up in
	// Reexecuted when the producer had completed before).
	AvailRecomputes int
	// AdmitQueued counts submissions the admission controller held back
	// for a freed quota slot; AdmitRejected counts submissions it refused
	// outright (per-tenant queue bound exceeded). The engine never queues
	// or rejects itself — backends record outcomes through
	// RecordAdmission so both counters ride the same consistent snapshot
	// as the scheduling counters.
	AdmitQueued   int
	AdmitRejected int
}

// Completion reports the outcome of a live Complete call.
type Completion struct {
	// Task is the completed task.
	Task *Task
	// Nodes are the group members still in the pool, resolved for the
	// caller's accounting (energy, predictor).
	Nodes []*resources.Node
	// Ran is the clock time since the task's launch.
	Ran time.Duration
	// First reports whether this was the task's first completion (false
	// for recovery re-executions).
	First bool
}

// Engine is the shared scheduling core. All methods are safe for
// concurrent use; scheduling decisions are serialised by an internal
// mutex, like the single-threaded Task Scheduler component of COMPSs.
type Engine struct {
	cfg  Config
	mgr  *transfer.Manager // nil unless Registry and Net are both set
	prio sched.Prioritizer // non-nil when the policy ranks ready tasks
	// idxPol is non-nil when the policy can pick straight off the pool's
	// capability index (sched.IndexedPolicy) and Config.DisableIndex is
	// unset; placeLocked then skips materializing the fitting slice for
	// unhinted single-node tasks.
	idxPol sched.IndexedPolicy

	// readyN is the queued-ready count. It is written only under mu but
	// read lock-free by Schedule's empty fast path and ReadyCount, so a
	// completion storm with nothing queued skips the lock entirely.
	readyN atomic.Int64

	mu    sync.Mutex
	tasks map[int64]*Task
	order []int64 // insertion order (deterministic iteration)
	// The ready set is one FIFO per constraint signature: placeability
	// depends only on the signature, so a scheduling wave touches each
	// signature's head instead of rescanning every queued task.
	ready map[string]*bucket
	sigs  []*bucket // sorted by signature (deterministic iteration)
	wave  int       // placement-wave counter (bucket blocking)
	// cand is the live candidate view of the current wave: the unblocked,
	// non-empty buckets the selection loop actually scans. It is rebuilt
	// from sigs once per wave and compacted as buckets drain or block, so
	// a placement inspects live candidates instead of rescanning every
	// signature ever seen; pushReadyLocked re-admits a bucket that refills
	// mid-wave (availability recomputes resubmit into the running wave).
	cand       []*bucket
	waveActive bool
	producer   map[transfer.Key]int64 // which task writes each version
	slow       map[string]float64     // per-node duration multipliers (fault injection)
	// Dirty tracking for delta checkpoints: every task whose snapshot-
	// relevant state (lifecycle state, epoch, completed flag) changed since
	// the last delta capture, in first-change order (dedup lives in the
	// task's ckptDirty flag — a map here would put a hash insert on every
	// completion), plus the tasks added since then in registration order
	// (a delta appends them to the base snapshot's task ordering on
	// reconstruction).
	dirtyIDs []int64
	added    []int64
	// Availability wait set: tasks parked on unavailable data versions
	// (see availability.go), plus the scratch a placement attempt leaves
	// for divertUnavailableLocked.
	waiters      map[transfer.Key]map[int64]struct{} // parked task IDs per missing datum
	parked       map[int64]struct{}                  // all parked task IDs
	availMissing []transfer.Key                      // scratch: last attempt's unavailable inputs
	availPrimary string                              // scratch: last attempt's chosen primary
	pendingWakes []transfer.Key                      // staged replicas with waiters (processed between waves)
	stats        Stats
	view         sched.TaskView // scratch view (guarded by mu; never retained)
	// Scratch candidate buffers for the wave hot path (guarded by mu;
	// never escape a placement attempt — Placement.Nodes is always a
	// fresh allocation).
	fitScratch []*resources.Node
	capScratch []*resources.Node

	launchMu sync.Mutex  // serialises launch batches (not held with mu)
	launch   []Placement // scratch batch (guarded by launchMu)
}

// bucket is one signature's ready FIFO. blocked marks the wave in which
// the head failed to place, parking the whole bucket for that wave; seen
// marks the wave whose candidate view currently holds the bucket, so a
// mid-wave refill re-admits it exactly once. depth mirrors len(q) into
// the per-signature ready-depth gauge; it is resolved once at bucket
// creation (nil when metrics are off) and updated at exactly the sites
// that maintain readyN, so the gauge cannot drift from the queue.
type bucket struct {
	sig     string
	q       []int64
	blocked int
	seen    int
	depth   *obsv.Gauge
}

// New returns an engine over the given configuration. Pool, Policy,
// Clock and Executor are required; New panics if any is missing, since
// that is a programming error in the backend, not a runtime condition.
func New(cfg Config) *Engine {
	if cfg.Pool == nil || cfg.Policy == nil || cfg.Clock == nil || cfg.Executor == nil {
		panic("engine: Pool, Policy, Clock and Executor are required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obsv.NewEngineMetrics(nil) // inert: nil instruments discard
	}
	e := &Engine{
		cfg:      cfg,
		tasks:    make(map[int64]*Task),
		ready:    make(map[string]*bucket),
		producer: make(map[transfer.Key]int64),
	}
	if p, ok := cfg.Policy.(sched.Prioritizer); ok {
		e.prio = p
	}
	if !cfg.DisableIndex {
		if ip, ok := cfg.Policy.(sched.IndexedPolicy); ok {
			e.idxPol = ip
		}
	}
	if cfg.Registry != nil && cfg.Net != nil {
		e.mgr = transfer.NewManager(cfg.Net, cfg.Registry)
	}
	return e
}

// Task returns a registered task by ID.
func (e *Engine) Task(id int64) (*Task, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tasks[id]
	return t, ok
}

// Producer returns the ID of the task that writes the given data version.
func (e *Engine) Producer(k transfer.Key) (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	id, ok := e.producer[k]
	return id, ok
}

// Each visits every registered task in registration order, under the
// engine lock: fn must be quick, must not retain the task, and must not
// call back into the engine.
func (e *Engine) Each(fn func(*Task)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range e.order {
		fn(e.tasks[id])
	}
}

// ReadyCount returns the number of queued ready tasks (the elasticity
// managers' pending-load signal). Lock-free: the count is maintained
// atomically alongside the bucket state.
func (e *Engine) ReadyCount() int {
	return int(e.readyN.Load())
}

// markDirtyLocked records that t's snapshot-relevant state changed since
// the last delta capture. Cheap and idempotent; called on every lifecycle
// transition, epoch bump and completion-flag change.
func (e *Engine) markDirtyLocked(t *Task) {
	if t.ckptDirty {
		return
	}
	t.ckptDirty = true
	e.dirtyIDs = append(e.dirtyIDs, t.ID)
}

// Stats returns the activity counters as a mutually consistent snapshot:
// every counter mutation happens under the engine mutex, and the whole
// struct is copied out under one acquisition, so cross-counter
// invariants hold in the returned value even while the engine is mid-run
// (Steals ≤ Launched, Reexecuted ≤ Completed, Woken ≤ Deferred — a
// reader never observes the increment of one side without the other).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// RecordAdmission adds admission-control outcomes to the engine's books.
// The admission layer sits in front of submission (internal/autoscale),
// so the backends report its queue/reject counts here rather than the
// engine observing them itself.
func (e *Engine) RecordAdmission(queued, rejected int) {
	e.mu.Lock()
	e.stats.AdmitQueued += queued
	e.stats.AdmitRejected += rejected
	e.mu.Unlock()
}

// SigLoad is one non-empty ready bucket's demand and supply snapshot:
// how many tasks of the signature are queued, and how many pool nodes
// could currently fit one (Fit, the index's exact saturation counter)
// or are capable at all (Capable, cordons and load ignored). A starved
// signature — Ready > 0, Capable == 0 — is the autoscaler's strongest
// grow signal: queued work no pool node could ever take. Fit == 0 with
// Capable > 0 is mere saturation.
type SigLoad struct {
	Sig         string
	Constraints resources.Constraints
	Ready       int
	Fit         int
	Capable     int
}

// SigLoads returns one entry per non-empty ready bucket, in signature
// order — deterministic for a given engine state. Constraints are taken
// from the bucket's head task (placeability depends only on the
// signature, so any member's constraints are the signature's).
func (e *Engine) SigLoads() []SigLoad {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SigLoad, 0, len(e.sigs))
	for _, b := range e.sigs {
		if len(b.q) == 0 {
			continue
		}
		c := e.tasks[b.q[0]].Constraints
		si := e.cfg.Pool.IndexForSig(b.sig, c)
		out = append(out, SigLoad{
			Sig: b.sig, Constraints: c,
			Ready: len(b.q), Fit: si.FitCount(), Capable: si.Len(),
		})
	}
	return out
}

// Timing is one task's latency milestones on the engine clock. Every
// field after Submit is the FIRST time the transition happened — a
// recovery re-execution never rewrites them — and is -1 when the task
// has not reached that state. Queue wait is Start−Ready; end-to-end
// latency is Done−Submit.
type Timing struct {
	// ID is the task's graph-unique ID; Class its registered type name.
	ID    int64
	Class string
	// Submit is when the task entered the engine (Add/AddBatch).
	Submit time.Duration
	// Ready is when its last dependency (or synthetic hold) cleared.
	Ready time.Duration
	// Start is when it was first placed on a node.
	Start time.Duration
	// Done is when it first completed.
	Done time.Duration
}

// Timings returns the latency milestones of every registered task, in
// registration order. The slice is freshly allocated; call it after the
// run drains (or at any quiescent point) for a consistent view.
func (e *Engine) Timings() []Timing {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Timing, 0, len(e.order))
	for _, id := range e.order {
		t := e.tasks[id]
		out = append(out, Timing{
			ID: t.ID, Class: t.Class,
			Submit: t.submitAt, Ready: t.readyAt,
			Start: t.firstStart, Done: t.doneAt,
		})
	}
	return out
}

// Add registers a task. producers lists the tasks it must wait for (from
// the access processor); producers already completed — or unknown to the
// engine — count as satisfied. holds adds synthetic dependencies cleared
// later through ReleaseHold (delayed-release arrivals). Add does not
// trigger placement — it reports whether the task went straight to the
// ready queue, so the caller knows whether a Schedule is worthwhile.
func (e *Engine) Add(t *Task, producers []deps.TaskID, holds int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.addLocked(t, producers, holds)
}

// AddBatch registers several tasks under a single lock acquisition —
// submission-bound workloads pay one round-trip for the whole batch
// instead of one per task. Tasks are registered in slice order, so
// dependencies may point at earlier batch members. It reports whether any
// task went straight to the ready queue (in which case the caller should
// Schedule once).
func (e *Engine) AddBatch(ts []*Task, producers [][]deps.TaskID) bool {
	return e.AddBatchHolds(ts, producers, nil)
}

// AddBatchHolds is AddBatch with per-task synthetic holds: holds[i]
// extra dependencies on ts[i], cleared later through ReleaseHold. A nil
// holds slice means no holds anywhere — admission-gated batch
// submission uses this to keep over-quota tasks invisible to the
// scheduler while the rest of the batch proceeds.
func (e *Engine) AddBatchHolds(ts []*Task, producers [][]deps.TaskID, holds []int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	ready := false
	for i, t := range ts {
		h := 0
		if holds != nil {
			h = holds[i]
		}
		if e.addLocked(t, producers[i], h) {
			ready = true
		}
	}
	return ready
}

func (e *Engine) addLocked(t *Task, producers []deps.TaskID, holds int) bool {
	t.sig = t.Constraints.Signature()
	t.state = Pending
	t.submitAt = e.cfg.Clock.Now()
	t.readyAt, t.firstStart, t.doneAt = -1, -1, -1
	e.added = append(e.added, t.ID)
	e.markDirtyLocked(t)
	for _, d := range producers {
		if p, ok := e.tasks[int64(d)]; ok && !p.completed {
			p.dependents = append(p.dependents, t.ID)
			t.waitCount++
		}
	}
	t.waitCount += holds
	for _, k := range t.OutputKeys {
		e.producer[k] = t.ID
	}
	e.tasks[t.ID] = t
	e.order = append(e.order, t.ID)
	if t.waitCount == 0 {
		t.state = Ready
		e.pushReadyLocked(t)
		return true
	}
	return false
}

// ReleaseHold clears one synthetic dependency of a pending task and
// reports whether the task became ready (in which case the caller should
// Schedule).
func (e *Engine) ReleaseHold(id int64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tasks[id]
	if !ok {
		return false
	}
	t.waitCount--
	if t.waitCount == 0 && t.state == Pending {
		t.state = Ready
		e.pushReadyLocked(t)
		return true
	}
	return false
}

// pushReadyLocked inserts a ready task into its signature bucket, keeping
// the bucket ordered by (priority desc, ID asc). Priority is evaluated
// once, at push time (for prioritising policies). The push marks the task
// dirty (a Pending→Ready transition is snapshot-relevant) and, mid-wave,
// re-admits a refilled bucket into the wave's candidate view.
func (e *Engine) pushReadyLocked(t *Task) {
	e.markDirtyLocked(t)
	if t.readyAt < 0 {
		t.readyAt = e.cfg.Clock.Now()
	}
	if e.prio != nil {
		t.prio = e.prio.Priority(e.viewLocked(t), e.cfg.SchedContext)
	}
	b, exists := e.ready[t.sig]
	if !exists {
		b = &bucket{sig: t.sig, depth: e.cfg.Metrics.ReadyDepth(t.sig)}
		e.ready[t.sig] = b
		pos := sort.Search(len(e.sigs), func(i int) bool { return e.sigs[i].sig >= t.sig })
		e.sigs = append(e.sigs, nil)
		copy(e.sigs[pos+1:], e.sigs[pos:])
		e.sigs[pos] = b
	}
	if e.waveActive && b.seen != e.wave && b.blocked != e.wave {
		// A bucket that drained (or never existed) earlier in this wave
		// just refilled — availability recomputes resubmit producers into
		// the running wave. Blocked buckets stay out: nothing unblocks a
		// signature until the next wave.
		b.seen = e.wave
		e.cand = append(e.cand, b)
	}
	// Binary insert; the common case (ascending IDs, equal priority)
	// appends at the end in O(1).
	at := sort.Search(len(b.q), func(i int) bool { return headLess(t, e.tasks[b.q[i]]) })
	b.q = append(b.q, 0)
	copy(b.q[at+1:], b.q[at:])
	b.q[at] = t.ID
	e.readyN.Add(1)
	b.depth.Add(1)
}

// headLess orders bucket heads: multi-node first, then higher priority,
// then lower ID.
func headLess(a, b *Task) bool {
	an, bn := a.Constraints.EffectiveNodes(), b.Constraints.EffectiveNodes()
	if an != bn {
		return an > bn
	}
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.ID < b.ID
}

// viewLocked fills the scratch scheduler-facing summary of a task. The
// returned pointer is only valid until the next call; policies read it
// during the decision and never retain it.
func (e *Engine) viewLocked(t *Task) *sched.TaskView {
	e.view = sched.TaskView{
		ID:          t.ID,
		Class:       t.Class,
		Constraints: t.Constraints,
		EstDuration: t.EstDuration,
		InputKeys:   t.InputKeys,
		InputBytes:  t.InputBytes,
	}
	return &e.view
}

// Schedule runs one placement wave: best queue head first, until every
// signature is blocked or the buckets drain. Executor.Launch is invoked
// after the engine lock is released, in placement order. An empty ready
// set returns without touching either lock — the common case on a
// completion storm whose successors are not yet released, and the reason
// a million-task drain does not serialise on wave setup.
func (e *Engine) Schedule() {
	if e.readyN.Load() == 0 {
		return
	}
	e.launchMu.Lock()
	e.mu.Lock()
	e.launch = e.placeWaveLocked(e.launch[:0])
	e.mu.Unlock()
	for _, p := range e.launch {
		e.cfg.Executor.Launch(p)
	}
	e.launchMu.Unlock()
}

// placeWaveLocked is the placement loop, appending into placed. A head
// that cannot be placed blocks its whole signature for the rest of the
// wave: placeability depends only on the constraint signature, so its
// siblings cannot be placed either — except through a policy decline,
// which is task-specific; the steal phase below revisits those. A wave
// whose placements staged replicas some parked task is waiting for wakes
// those waiters and runs again (fresh wave, blocked flags reset), so
// data made reachable by ordinary staging releases deferred work without
// waiting for a heal.
func (e *Engine) placeWaveLocked(placed []Placement) []Placement {
	if e.readyN.Load() == 0 {
		return placed
	}
	e.waveActive = true
	defer func() { e.waveActive = false }()
	m := e.cfg.Metrics
	for {
		e.wave++
		// Wave shape metrics. Duration is on the engine clock: zero in the
		// simulator (virtual time stands still inside a wave), wall time
		// live. The Now() calls are skipped entirely when metrics are off.
		var waveStart time.Duration
		if m.WaveSeconds != nil {
			waveStart = e.cfg.Clock.Now()
		}
		waveBase := len(placed)
		// Build this wave's candidate view once: every non-empty bucket.
		// The selection loop below scans and compacts this view instead of
		// rescanning every signature ever registered per placement — on a
		// graph that has accumulated thousands of signatures but has a
		// handful live, that is the difference between O(placements ×
		// live) and O(placements × everything).
		e.cand = e.cand[:0]
		for _, b := range e.sigs {
			if len(b.q) > 0 {
				b.seen = e.wave
				e.cand = append(e.cand, b)
			}
		}
		for {
			var bestB *bucket
			var best *Task
			live := e.cand[:0]
			for _, b := range e.cand {
				if b.blocked == e.wave {
					continue // parked for the wave; drops out of the view
				}
				if len(b.q) == 0 {
					b.seen = 0 // drained; a mid-wave refill re-admits it
					continue
				}
				live = append(live, b)
				t := e.tasks[b.q[0]]
				if best == nil || headLess(t, best) {
					bestB, best = b, t
				}
			}
			e.cand = live
			if best == nil {
				break
			}
			p, outcome := e.placeLocked(best)
			switch outcome {
			case placeOK:
				placed = append(placed, p)
				bestB.q = bestB.q[1:]
				e.readyN.Add(-1)
				bestB.depth.Add(-1)
			case placeUnavailable:
				// The head's inputs are unreachable: divert it into the
				// availability wait set (which may resubmit producers into
				// this very wave) and keep placing — unavailability is
				// task-specific, so the bucket is not blocked.
				bestB.q = bestB.q[1:]
				e.readyN.Add(-1)
				bestB.depth.Add(-1)
				m.DeclineUnavailable.Inc()
				e.divertUnavailableLocked(best)
			case placeNoCapacity:
				bestB.blocked = e.wave
				m.DeclineNoCapacity.Inc()
			default:
				bestB.blocked = e.wave
				m.DeclineDeclined.Inc()
			}
		}
		if e.cfg.Steal.Mode != StealOff && e.readyN.Load() > 0 {
			placed = e.stealWaveLocked(placed)
		}
		m.Waves.Inc()
		m.WaveSize.Observe(float64(len(placed) - waveBase))
		if m.WaveSeconds != nil {
			m.WaveSeconds.ObserveDuration(e.cfg.Clock.Now() - waveStart)
		}
		if len(e.pendingWakes) == 0 {
			return placed
		}
		woken := 0
		for _, k := range e.pendingWakes {
			woken += e.wakeKeyWaitersLocked(k)
		}
		e.pendingWakes = e.pendingWakes[:0]
		if woken == 0 {
			return placed
		}
	}
}

// stealWaveLocked is the work-stealing phase of a placement wave: every
// bucket the wave parked is re-scanned from the tail (the deepest,
// lowest-priority entry) towards — but never including — the head, and
// each entry is offered to whatever capacity the wave left idle through
// the ordinary placement path. The head is never stolen: it keeps its
// priority claim on the tier it is waiting for, and everything that is
// not stolen keeps its bucket order. A signature-wide capacity failure
// ends the bucket's scan at once — nothing shallower can fit either.
//
// A stolen task is indistinguishable from a normally placed one to the
// rest of the engine: same reservation, staging, epoch and trace
// choreography, so FailNode/Partition recovery applies to it unchanged.
func (e *Engine) stealWaveLocked(placed []Placement) []Placement {
	for _, b := range e.sigs {
		if b.blocked != e.wave || len(b.q) < 2 {
			continue
		}
		if e.cfg.Steal.Mode == StealThreshold && len(b.q)-1 <= e.cfg.Steal.Threshold {
			continue
		}
		for i := len(b.q) - 1; i >= 1; i-- {
			t := e.tasks[b.q[i]]
			e.cfg.Metrics.StealAttempts.Inc()
			p, outcome := e.placeLocked(t)
			if outcome == placeNoCapacity {
				break
			}
			if outcome == placeDeclined || outcome == placeUnavailable {
				// Unavailable entries are left queued rather than parked:
				// diverting would mutate the bucket mid-scan, and the
				// entry is classified properly once it reaches the head.
				continue
			}
			b.q = append(b.q[:i], b.q[i+1:]...)
			e.readyN.Add(-1)
			b.depth.Add(-1)
			e.stats.Steals++
			e.cfg.Metrics.StealSuccesses.Inc()
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.Record(trace.Event{
					At: e.cfg.Clock.Now(), Kind: trace.TaskStolen, Task: t.ID,
					Node: p.Primary().Name(), Info: b.sig,
				})
			}
			placed = append(placed, p)
		}
	}
	return placed
}

// placeOutcome distinguishes why a placement attempt failed: capacity
// failures are signature-wide (every sibling of the task fails too),
// policy declines are task-specific (a sibling may still be accepted —
// the distinction work stealing runs on).
type placeOutcome int

const (
	placeOK placeOutcome = iota
	placeNoCapacity
	placeDeclined
	// placeUnavailable reports that the chosen primary cannot obtain at
	// least one input (lost or partitioned) and the availability policy
	// is not run-anyway; the attempt's classification is left in
	// e.availMissing / e.availPrimary for divertUnavailableLocked.
	placeUnavailable
)

// placeLocked tries to start one task now: policy choice, availability
// classification, group reservation, input staging.
func (e *Engine) placeLocked(t *Task) (Placement, placeOutcome) {
	hinted := t.availNeed != "" && e.cfg.Net != nil
	capFail := placeNoCapacity
	if hinted {
		capFail = placeDeclined
	}
	wantNodes := t.Constraints.EffectiveNodes()

	var primary *resources.Node
	var fitting []*resources.Node // nil on the indexed fast path until needed
	if e.idxPol != nil && !hinted && wantNodes == 1 {
		// Indexed fast path: the policy picks straight off the pool's
		// per-signature index — no fitting slice is materialized. The
		// IndexedPolicy contract makes nil mean "nothing fits", which is
		// exactly the signature-wide capacity failure.
		primary = e.idxPol.PickIndexed(e.viewLocked(t), e.cfg.Pool.IndexForSig(t.sig, t.Constraints), e.cfg.SchedContext)
		if primary == nil {
			return Placement{}, placeNoCapacity
		}
	} else {
		fitting = e.cfg.Pool.IndexForSig(t.sig, t.Constraints).AppendFitting(e.fitScratch[:0], t.Constraints)
		e.fitScratch = fitting // keep the (possibly grown) buffer
		if hinted {
			// Availability-recompute hint: this is a producer resubmitted for
			// a consumer stranded behind a cut, so only nodes that can reach
			// the consumer's side produce a useful replica. A capacity
			// failure under the hint filter is task-specific — unhinted
			// siblings may still fit the excluded nodes — so it is reported
			// as a decline, not a signature-wide failure.
			kept := fitting[:0]
			for _, n := range fitting {
				if e.cfg.Net.Reachable(n.Name(), t.availNeed) {
					kept = append(kept, n)
				}
			}
			fitting = kept
		}
		if len(fitting) < wantNodes {
			return Placement{}, capFail
		}
		primary = e.cfg.Policy.Pick(e.viewLocked(t), fitting, e.cfg.SchedContext)
		if primary == nil {
			return Placement{}, placeDeclined
		}
	}

	// Classify inputs against the chosen primary before reserving
	// anything: reachable inputs get a fetch plan; partitioned ones —
	// and lost ones with a registered producer — are handed to the
	// availability policy. A missing key with no producer is external
	// data the run never staged (or lost for good): no policy can bring
	// it back, so it keeps the historical run-anyway semantics and is
	// not counted as an actionable miss. Under run-anyway the launch
	// proceeds regardless — the recovery path covers lost data whose
	// producers are mid-resubmission, and partitioned data is simply
	// (observably) absent.
	var plan transfer.Plan
	if e.mgr != nil {
		plan = e.mgr.PlanFetch(primary.Name(), t.InputKeys)
		if actionable := e.actionableMissesLocked(plan); len(actionable) > 0 && e.cfg.Availability != AvailRunAnyway {
			// The chosen primary cannot be fed, but another fitting node
			// may well be — the replica's own node, or one on the right
			// side of the cut. Re-offer the choice over the feedable
			// subset before giving up on the task for this wave. The
			// indexed fast path defers materializing the fitting slice to
			// exactly this (rare) branch.
			if fitting == nil {
				fitting = e.cfg.Pool.IndexForSig(t.sig, t.Constraints).AppendFitting(e.fitScratch[:0], t.Constraints)
				e.fitScratch = fitting
			}
			if alt, altPlan, ok := e.feedablePickLocked(t, fitting, primary); ok {
				primary, plan = alt, altPlan
			} else if e.feedableCapableLocked(t) {
				// Some node that could ever run the task can be fed — the
				// shortfall is busy capacity (or a policy decline), not
				// the partition. Parking would be a trap: capacity
				// release is not an availability wake source, so leave
				// the task queued for the next completion wave instead.
				return Placement{}, placeDeclined
			} else {
				e.availMissing = append(e.availMissing[:0], actionable...)
				e.availPrimary = primary.Name()
				return Placement{}, placeUnavailable
			}
		}
	}

	group := []*resources.Node{primary}
	for _, n := range fitting {
		if len(group) == wantNodes {
			break
		}
		if n != primary {
			group = append(group, n)
		}
	}
	if len(group) < wantNodes {
		return Placement{}, capFail
	}
	for i, n := range group {
		if err := n.Reserve(t.Constraints); err != nil {
			for _, done := range group[:i] {
				done.Release(t.Constraints)
			}
			return Placement{}, capFail
		}
	}

	// Stage the planned inputs onto the primary node.
	var staging time.Duration
	if e.mgr != nil {
		e.mgr.Apply(plan)
		// A staged copy may be the very replica a parked task waits for
		// (now fetchable from this side of a cut). Wakes are queued and
		// processed between waves: waking mid-steal would mutate the
		// bucket a scan is walking.
		for _, mv := range plan.Moves {
			if _, waited := e.waiters[mv.Key]; waited {
				e.pendingWakes = append(e.pendingWakes, mv.Key)
			}
		}
		staging = plan.Time
		e.stats.Transfers += len(plan.Moves)
		e.stats.BytesMoved += plan.Bytes
		e.stats.TransferTime += plan.Time
		if len(plan.Moves) > 0 {
			e.cfg.Metrics.Transfers.Add(int64(len(plan.Moves)))
			e.cfg.Metrics.TransferBytes.Add(plan.Bytes)
			e.cfg.Metrics.FetchSeconds.ObserveDuration(plan.Time)
		}
		if plan.Bytes > 0 && e.cfg.Tracer != nil {
			e.cfg.Tracer.Record(trace.Event{
				At: e.cfg.Clock.Now(), Kind: trace.DataTransfer, Task: t.ID,
				Node: primary.Name(), Info: fmt.Sprintf("%dB", plan.Bytes),
			})
		}
		if actionable := e.actionableMissesLocked(plan); len(actionable) > 0 {
			e.stats.RanMissing++
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.Record(trace.Event{
					At: e.cfg.Clock.Now(), Kind: trace.DataUnavailable, Task: t.ID,
					Node: primary.Name(), Info: fmt.Sprintf("%d inputs missing, run anyway", len(actionable)),
				})
			}
		}
	}

	t.state = Running
	t.started = e.cfg.Clock.Now()
	if t.firstStart < 0 {
		t.firstStart = t.started
	}
	t.epoch++
	e.markDirtyLocked(t)
	t.nodes = make([]string, len(group))
	slow := 1.0
	for i, n := range group {
		t.nodes[i] = n.Name()
		if f := e.slow[n.Name()]; f > slow {
			slow = f // a group runs at its slowest member
		}
	}
	e.stats.Launched++
	e.cfg.Metrics.Launched.Inc()
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(trace.Event{
			At: e.cfg.Clock.Now(), Kind: trace.TaskStarted, Task: t.ID,
			Node: primary.Name(), Info: t.Class,
		})
	}
	return Placement{Task: t, Nodes: group, Epoch: t.epoch, TransferTime: staging, SlowFactor: slow}, placeOK
}

// Complete finishes a running task: reservations are released, outputs
// are registered on the primary node (and the persistence tier), and — in
// one lock acquisition — every successor is released, with the newly
// ready ones pushed into their buckets. Stale completions (epoch mismatch
// after a failure) report ok = false and have no effect. failed marks the
// execution as errored: outputs are not registered and the trace records
// TaskFailed. The caller should Schedule afterwards.
func (e *Engine) Complete(id int64, epoch int, failed bool) (Completion, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.completeLocked(id, epoch, failed)
}

// CompleteSchedule is Complete immediately followed by a placement wave,
// sharing one lock acquisition — the completion fast path for backends
// that do not coalesce waves.
func (e *Engine) CompleteSchedule(id int64, epoch int, failed bool) (Completion, bool) {
	e.launchMu.Lock()
	e.mu.Lock()
	c, ok := e.completeLocked(id, epoch, failed)
	e.launch = e.placeWaveLocked(e.launch[:0])
	e.mu.Unlock()
	for _, p := range e.launch {
		e.cfg.Executor.Launch(p)
	}
	e.launchMu.Unlock()
	return c, ok
}

func (e *Engine) completeLocked(id int64, epoch int, failed bool) (Completion, bool) {
	t, ok := e.tasks[id]
	if !ok || t.state != Running || t.epoch != epoch {
		return Completion{}, false
	}
	c := Completion{Task: t, Ran: e.cfg.Clock.Now() - t.started}
	primary := t.nodes[0]
	c.Nodes = make([]*resources.Node, 0, len(t.nodes))
	for _, name := range t.nodes {
		if n, ok := e.cfg.Pool.Get(name); ok {
			n.Release(t.Constraints)
			c.Nodes = append(c.Nodes, n)
		}
	}
	if !failed && e.cfg.Registry != nil {
		// A completion can race a concurrent FailNode on the live backend:
		// if the primary left the pool after this execution started, its
		// replicas were already dropped and must not be re-registered on
		// the dead node — the output survives only on the persist tier.
		_, primaryAlive := e.cfg.Pool.Get(primary)
		for _, k := range t.OutputKeys {
			if primaryAlive {
				e.cfg.Registry.AddReplica(k, primary)
			}
			if e.cfg.PersistNode != "" && e.cfg.PersistNode != primary {
				e.cfg.Registry.AddReplica(k, e.cfg.PersistNode)
				if e.cfg.Tracer != nil {
					e.cfg.Tracer.Record(trace.Event{
						At: e.cfg.Clock.Now(), Kind: trace.DataPersisted, Task: id, Node: e.cfg.PersistNode,
					})
				}
			}
			// A fresh replica may be exactly what a parked task is waiting
			// for (the availability-recompute hand-off): wake its waiters
			// and let the next wave re-classify.
			e.wakeKeyWaitersLocked(k)
		}
	}
	t.availNeed = "" // a recompute hint is spent once the producer completes
	if e.cfg.Tracer != nil {
		kind := trace.TaskCompleted
		if failed {
			kind = trace.TaskFailed
		}
		e.cfg.Tracer.Record(trace.Event{At: e.cfg.Clock.Now(), Kind: kind, Task: id, Node: primary})
	}
	e.stats.Completed++
	if failed {
		e.cfg.Metrics.Failed.Inc()
	} else {
		e.cfg.Metrics.Completed.Inc()
	}

	c.First = !t.completed
	t.completed = true
	if t.doneAt < 0 {
		t.doneAt = e.cfg.Clock.Now()
	}
	t.state = Done
	t.nodes = nil
	e.markDirtyLocked(t)

	// Batched dependency release: every successor is decremented under
	// this single lock acquisition. The edge list is consumed — releases
	// happen once — so it is dropped to keep long-lived graphs lean.
	if c.First {
		for _, dep := range t.dependents {
			dt := e.tasks[dep]
			dt.waitCount--
			if dt.waitCount == 0 && dt.state == Pending {
				dt.state = Ready
				e.pushReadyLocked(dt)
			}
		}
		t.dependents = nil
	} else {
		e.stats.Reexecuted++
	}
	if e.cfg.Registry == nil {
		// Without a replica registry there is no recovery resubmission,
		// so a done task's access keys are dead weight.
		t.InputKeys = nil
		t.OutputKeys = nil
	}
	// Wake tasks waiting on this re-execution (recovery).
	for dep := range t.redeps {
		dt := e.tasks[dep]
		dt.waitCount--
		if dt.waitCount == 0 && dt.state == Pending {
			dt.state = Ready
			e.pushReadyLocked(dt)
		}
	}
	t.redeps = nil
	return c, true
}

// KillRunningOn invalidates every running task that reserved the named
// node (which the caller has already removed from the pool): reservations
// on surviving group members are released, the pending completion event
// is invalidated through the epoch, and the task returns to Pending with
// no waits — ready for Resubmit. The killed tasks are returned in
// registration order.
func (e *Engine) KillRunningOn(name string) []*Task {
	e.mu.Lock()
	defer e.mu.Unlock()
	var killed []*Task
	for _, id := range e.order {
		t := e.tasks[id]
		if t.state != Running {
			continue
		}
		uses := false
		for _, n := range t.nodes {
			if n == name {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		for _, n := range t.nodes {
			if n == name {
				continue
			}
			if node, ok := e.cfg.Pool.Get(n); ok {
				node.Release(t.Constraints)
			}
		}
		t.nodes = nil
		t.state = Pending
		t.waitCount = 0
		t.epoch++ // invalidate the in-flight completion event
		e.markDirtyLocked(t)
		killed = append(killed, t)
	}
	return killed
}

// DropReadyMissingInputs removes from the buckets every ready task that
// has an input version with no replica left but a known producer (data
// lost to a node failure), returning them reset to Pending so the caller
// can Resubmit each. Tasks whose missing inputs have no producer are left
// queued: the data was external and nothing can recompute it.
func (e *Engine) DropReadyMissingInputs() []*Task {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Registry == nil {
		return nil
	}
	var dropped []*Task
	for _, b := range e.sigs {
		still := b.q[:0]
		for _, id := range b.q {
			t := e.tasks[id]
			if e.missingProducerLocked(t) {
				t.state = Pending
				t.waitCount = 0
				e.readyN.Add(-1)
				b.depth.Add(-1)
				e.markDirtyLocked(t)
				dropped = append(dropped, t)
				continue
			}
			still = append(still, id)
		}
		b.q = still
	}
	return dropped
}

// missingProducerLocked reports whether t reads a version that lost every
// replica and has a registered producer to recompute it.
func (e *Engine) missingProducerLocked(t *Task) bool {
	for _, k := range t.InputKeys {
		if len(e.cfg.Registry.Where(k)) > 0 {
			continue
		}
		if _, ok := e.producer[k]; ok {
			return true
		}
	}
	return false
}

// Resubmit queues a task for (re-)execution, recursively resubmitting the
// producers of any input versions that lost every replica — the recompute-
// lineage recovery path. Tasks that are already queued or running are left
// alone. The caller should Schedule afterwards.
func (e *Engine) Resubmit(id int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.resubmitLocked(id)
}

func (e *Engine) resubmitLocked(id int64) {
	t, ok := e.tasks[id]
	if !ok {
		return
	}
	switch t.state {
	case Ready, Running:
		return
	case Pending:
		if t.waitCount > 0 {
			return // already mid-resubmission (or waiting on live deps)
		}
	case Parked:
		// A parked task re-entering the lineage path leaves the
		// availability wait set; its unreachable inputs are re-classified
		// below (lost ones recompute, partitioned ones re-park at
		// placement).
		e.unparkLocked(t)
		t.state = Pending
		t.waitCount = 0
		e.markDirtyLocked(t)
	case Done:
		t.state = Pending
		t.waitCount = 0
		e.markDirtyLocked(t)
	}
	waits := 0
	for _, k := range t.InputKeys {
		if e.cfg.Registry == nil || len(e.cfg.Registry.Where(k)) > 0 {
			continue
		}
		p, ok := e.producer[k]
		if !ok {
			continue // external data lost for good; nothing to recompute
		}
		pt := e.tasks[p]
		if _, dup := pt.redeps[id]; !dup {
			if pt.redeps == nil {
				pt.redeps = make(map[int64]struct{})
			}
			pt.redeps[id] = struct{}{}
			waits++
		}
		e.resubmitLocked(p)
	}
	t.waitCount += waits
	if t.waitCount == 0 {
		t.state = Ready
		e.pushReadyLocked(t)
	}
}
