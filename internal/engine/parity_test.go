package engine_test

// Backend parity: the same DAG submitted through the live runtime
// (internal/core) and through the virtual-time simulator (internal/infra)
// must execute in the same order and account the same transfers, because
// both backends delegate scheduling to this package. The pools are sized
// to one core per node and the policy is the deterministic FIFO, so the
// engine's (priority, ID) head selection fully determines the order.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// dagTask describes one task of a parity DAG, backend-neutrally. Tasks are
// numbered in slice order: task i gets core ID i+2 / infra ID i+2 (ID 1 is
// the gate that holds the single core until every task is submitted).
type dagTask struct {
	// reads/writes index dag-local data by small integers.
	reads  []int
	writes []int
	// class pins the task to a node tier ("" = anywhere).
	class resources.Class
}

type parityCase struct {
	name string
	dag  []dagTask
	// nodes describes the pool: one core each, in insertion order.
	nodes []resources.Class
	// wantTransfers is the engine transfer count both backends must report.
	wantTransfers int
}

func parityCases() []parityCase {
	return []parityCase{
		{
			name: "diamond",
			dag: []dagTask{
				{writes: []int{1}},
				{reads: []int{1}, writes: []int{2}},
				{reads: []int{1}, writes: []int{3}},
				{reads: []int{2, 3}, writes: []int{4}},
			},
			nodes: []resources.Class{resources.HPC},
		},
		{
			name: "wide-fan-out",
			dag: func() []dagTask {
				dag := []dagTask{{writes: []int{1}}}
				for i := 0; i < 8; i++ {
					dag = append(dag, dagTask{reads: []int{1}, writes: []int{2 + i}})
				}
				return dag
			}(),
			nodes: []resources.Class{resources.HPC},
		},
		{
			name: "reduce",
			dag: func() []dagTask {
				var dag []dagTask
				var all []int
				for i := 0; i < 6; i++ {
					dag = append(dag, dagTask{writes: []int{1 + i}})
					all = append(all, 1+i)
				}
				return append(dag, dagTask{reads: all, writes: []int{7}})
			}(),
			nodes: []resources.Class{resources.HPC},
		},
		{
			// A chain bouncing between two pinned tiers: every hop moves
			// the intermediate value ⇒ 3 transfers on both backends.
			name: "pinned-chain",
			dag: []dagTask{
				{writes: []int{1}, class: resources.Cloud},
				{reads: []int{1}, writes: []int{2}, class: resources.HPC},
				{reads: []int{2}, writes: []int{3}, class: resources.Cloud},
				{reads: []int{3}, writes: []int{4}, class: resources.HPC},
			},
			nodes:         []resources.Class{resources.HPC, resources.Cloud},
			wantTransfers: 3,
		},
	}
}

// runCore executes the DAG on the live runtime and returns the start order
// (dag indices) and the engine's transfer count.
func runCore(t *testing.T, c parityCase) ([]int, int) {
	t.Helper()
	pool := resources.NewPool()
	for i, class := range c.nodes {
		_ = pool.Add(resources.NewNode(nodeName(i), resources.Description{
			Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: class,
		}))
	}
	tr := trace.New(0)
	rt := core.New(core.Config{
		Pool:      pool,
		Policy:    sched.FIFO{},
		Tracer:    tr,
		Locations: transfer.NewRegistry(),
		Net:       simnet.New(simnet.Link{BandwidthMBps: 1000}),
	})
	defer rt.Shutdown()

	release := make(chan struct{})
	mustRegister(t, rt, core.TaskDef{Name: "gate", Fn: func(_ context.Context, _ []any) ([]any, error) {
		<-release
		return nil, nil
	}})
	mkBody := func(writes int) core.TaskFunc {
		return func(_ context.Context, _ []any) ([]any, error) {
			out := make([]any, writes)
			for i := range out {
				out[i] = 1
			}
			return out, nil
		}
	}
	for i, dt := range c.dag {
		mustRegister(t, rt, core.TaskDef{
			Name:        taskName(i),
			Fn:          mkBody(len(dt.writes)),
			Constraints: resources.Constraints{Class: dt.class},
		})
	}

	// The gate holds a core until every task is submitted, so the live
	// backend starts from the same fully-queued state the simulator sees;
	// cases with more nodes than the gate covers are serialised by their
	// data dependencies instead.
	if _, err := rt.Submit("gate"); err != nil {
		t.Fatal(err)
	}

	handles := map[int]*core.Handle{}
	h := func(d int) *core.Handle {
		if handles[d] == nil {
			handles[d] = rt.NewData()
		}
		return handles[d]
	}
	for i, dt := range c.dag {
		var params []core.Param
		for _, r := range dt.reads {
			params = append(params, core.Read(h(r)))
		}
		for _, w := range dt.writes {
			params = append(params, core.Write(h(w)))
		}
		if _, err := rt.Submit(taskName(i), params...); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	rt.Barrier()

	var order []int
	for _, ev := range tr.Events() {
		if ev.Kind != trace.TaskStarted || ev.Task == 1 {
			continue // skip the gate
		}
		order = append(order, int(ev.Task)-2)
	}
	return order, rt.EngineStats().Transfers
}

// runInfra executes the same DAG on the simulator.
func runInfra(t *testing.T, c parityCase) ([]int, int) {
	t.Helper()
	pool := resources.NewPool()
	for i, class := range c.nodes {
		_ = pool.Add(resources.NewNode(nodeName(i), resources.Description{
			Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: class,
		}))
	}
	specs := []infra.TaskSpec{{ID: 1, Class: "gate", Duration: time.Second}}
	for i, dt := range c.dag {
		var acc []deps.Access
		for _, r := range dt.reads {
			acc = append(acc, deps.Access{Data: deps.DataID(r), Dir: deps.In})
		}
		out := map[deps.DataID]int64{}
		for _, w := range dt.writes {
			acc = append(acc, deps.Access{Data: deps.DataID(w), Dir: deps.Out})
			out[deps.DataID(w)] = 1e6
		}
		specs = append(specs, infra.TaskSpec{
			ID:          int64(i + 2),
			Class:       taskName(i),
			Duration:    time.Second,
			Accesses:    acc,
			OutputBytes: out,
			Constraints: resources.Constraints{Class: dt.class},
		})
	}
	tr := trace.New(0)
	sim, err := infra.New(infra.Config{
		Pool:   pool,
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: sched.FIFO{},
		Tracer: tr,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	var order []int
	for _, ev := range tr.Events() {
		if ev.Kind != trace.TaskStarted || ev.Task == 1 {
			continue
		}
		order = append(order, int(ev.Task)-2)
	}
	return order, sim.EngineStats().Transfers
}

func TestBackendParity(t *testing.T) {
	for _, c := range parityCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			coreOrder, coreTransfers := runCore(t, c)
			infraOrder, infraTransfers := runInfra(t, c)
			if len(coreOrder) != len(c.dag) {
				t.Fatalf("core started %d tasks, want %d", len(coreOrder), len(c.dag))
			}
			if len(infraOrder) != len(c.dag) {
				t.Fatalf("infra started %d tasks, want %d", len(infraOrder), len(c.dag))
			}
			for i := range coreOrder {
				if coreOrder[i] != infraOrder[i] {
					t.Fatalf("start order diverges at %d: core %v vs infra %v",
						i, coreOrder, infraOrder)
				}
			}
			if coreTransfers != infraTransfers {
				t.Fatalf("transfer counts diverge: core %d vs infra %d",
					coreTransfers, infraTransfers)
			}
			if c.wantTransfers > 0 && coreTransfers != c.wantTransfers {
				t.Fatalf("transfers = %d, want %d", coreTransfers, c.wantTransfers)
			}
		})
	}
}

func nodeName(i int) string { return "pn" + string(rune('0'+i)) }
func taskName(i int) string { return "t" + string(rune('a'+i)) }

func mustRegister(t *testing.T, rt *core.Runtime, def core.TaskDef) {
	t.Helper()
	if err := rt.Register(def); err != nil {
		t.Fatal(err)
	}
}
