package engine_test

// Placement-index parity: the indexed fast path (sched.IndexedPolicy
// picking straight off the pool's capability index) must make byte-
// identical placement decisions to the legacy materialized-slice path
// (engine.Config.DisableIndex) wherever the policy is deterministic —
// same start order, same node per start, same transfer books — including
// under node crashes, cordons, partitions and checkpoint restore, the
// churn the index maintains itself through.

import (
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/engine/checkpoint"
	"repro/internal/engine/faults"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// indexParityPool builds a heterogeneous multi-core pool: enough shape
// spread that the mix workload's constraints carve distinct signature
// sets, enough cores that load fractions differentiate MinLoad picks.
func indexParityPool() (*resources.Pool, *simnet.Network) {
	pool := resources.NewPool()
	shapes := []resources.Description{
		{Cores: 8, MemoryMB: 32_000, SpeedFactor: 1, Class: resources.HPC},
		{Cores: 4, MemoryMB: 16_000, SpeedFactor: 0.8, Class: resources.Cloud},
		{Cores: 2, MemoryMB: 8_000, SpeedFactor: 0.5, Class: resources.Fog},
	}
	names := []string{"ix-h0", "ix-h1", "ix-c0", "ix-c1", "ix-f0", "ix-f1"}
	for i, name := range names {
		_ = pool.Add(resources.NewNode(name, shapes[i/2]))
	}
	net := simnet.Continuum()
	for _, n := range pool.Nodes() {
		net.SetZone(n.Name(), n.Desc().Class.String())
	}
	return pool, net
}

type indexParityRun struct {
	events    []trace.Event
	makespan  time.Duration
	transfers int
	pool      *resources.Pool
}

func runIndexParity(t *testing.T, policy sched.Policy, specs []infra.TaskSpec, script faults.Scenario, disable bool) indexParityRun {
	t.Helper()
	pool, net := indexParityPool()
	tr := trace.New(0)
	sim, err := infra.New(infra.Config{
		Pool: pool, Net: net, Policy: policy, Tracer: tr,
		Faults: script, DisableIndex: disable,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return indexParityRun{events: tr.Events(), makespan: res.Makespan, transfers: sim.EngineStats().Transfers, pool: pool}
}

func diffIndexRuns(t *testing.T, label string, indexed, scanned indexParityRun) {
	t.Helper()
	if len(indexed.events) != len(scanned.events) {
		t.Fatalf("%s: indexed run recorded %d events, scan run %d", label, len(indexed.events), len(scanned.events))
	}
	for i := range indexed.events {
		a, b := indexed.events[i], scanned.events[i]
		if a.Kind != b.Kind || a.Task != b.Task || a.Node != b.Node || a.At != b.At {
			t.Fatalf("%s: event %d diverges: indexed {%v task=%d node=%s at=%v} vs scan {%v task=%d node=%s at=%v}",
				label, i, a.Kind, a.Task, a.Node, a.At, b.Kind, b.Task, b.Node, b.At)
		}
	}
	if indexed.makespan != scanned.makespan {
		t.Fatalf("%s: makespan diverges: indexed %v vs scan %v", label, indexed.makespan, scanned.makespan)
	}
	if indexed.transfers != scanned.transfers {
		t.Fatalf("%s: transfers diverge: indexed %d vs scan %d", label, indexed.transfers, scanned.transfers)
	}
}

// checkPoolIndexConsistent asserts, for every signature the run touched,
// that the pool's index answers Fitting exactly like a from-scratch node
// scan — the post-churn invariant (crashes removed nodes, drains
// cordoned them, the run reserved and released throughout).
func checkPoolIndexConsistent(t *testing.T, pool *resources.Pool, specs []infra.TaskSpec) {
	t.Helper()
	seen := map[string]resources.Constraints{}
	for _, s := range specs {
		seen[s.Constraints.Signature()] = s.Constraints
	}
	for sig, c := range seen {
		got := pool.Fitting(c)
		var want []*resources.Node
		for _, n := range pool.Nodes() {
			if n.CanReserve(c) {
				want = append(want, n)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("sig %q: index Fitting has %d nodes, scan %d", sig, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sig %q: Fitting[%d] = %s, scan says %s", sig, i, got[i].Name(), want[i].Name())
			}
		}
	}
}

func TestIndexParitySweep(t *testing.T) {
	crashScript := faults.Scenario{
		{At: 20 * time.Second, Kind: faults.Drain, Node: "ix-c1"},
		{At: 40 * time.Second, Kind: faults.Cut, Node: "hpc", Peer: "fog"},
		{At: 60 * time.Second, Kind: faults.Crash, Node: "ix-f1"},
		{At: 90 * time.Second, Kind: faults.HealLink, Node: "hpc", Peer: "fog"},
	}
	cases := []struct {
		name   string
		specs  []infra.TaskSpec
		script faults.Scenario
	}{
		{"mix", workloads.HeterogeneousMix(120, 3), nil},
		{"mapreduce", workloads.MapReduce(24, 4, 10*time.Second, 5*time.Second, 1e6), nil},
		{"stencil", workloads.IterativeStencil(4, 12, 5*time.Second), nil},
		{"mix-churn", workloads.HeterogeneousMix(120, 5), crashScript},
	}
	for _, policy := range []sched.Policy{sched.MinLoad{}, sched.FIFO{}} {
		for _, tc := range cases {
			tc := tc
			t.Run(policy.Name()+"/"+tc.name, func(t *testing.T) {
				indexed := runIndexParity(t, policy, tc.specs, tc.script, false)
				scanned := runIndexParity(t, policy, tc.specs, tc.script, true)
				diffIndexRuns(t, policy.Name()+"/"+tc.name, indexed, scanned)
				checkPoolIndexConsistent(t, indexed.pool, tc.specs)
			})
		}
	}
}

// TestIndexSurvivesRestore halts a checkpointed run mid-flight and
// resumes it with the index enabled: the resumed run must complete, and
// the pool's index must still match a from-scratch scan afterwards —
// restore replays completions and re-seeds replicas without breaking the
// incremental maintenance.
func TestIndexSurvivesRestore(t *testing.T) {
	specs := workloads.MapReduce(24, 4, 10*time.Second, 5*time.Second, 1e6)
	dir, err := os.MkdirTemp("", "index-restore-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := checkpoint.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	pool1, net1 := indexParityPool()
	sim1, err := infra.New(infra.Config{
		Pool: pool1, Net: net1, Policy: sched.MinLoad{},
		Checkpoint: &checkpoint.Config{Store: store, Policy: checkpoint.EveryN(1)},
		HaltAt:     25 * time.Second,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim1.Run(); !errors.Is(err, infra.ErrHalted) {
		t.Fatalf("first incarnation: got %v, want ErrHalted", err)
	}

	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Completed) == 0 {
		t.Fatal("halt landed before any completion; drill misconfigured")
	}
	pool2, net2 := indexParityPool()
	sim2, err := infra.New(infra.Config{
		Pool: pool2, Net: net2, Policy: sched.MinLoad{},
		Restore: snap,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksRestored != len(snap.Completed) {
		t.Fatalf("restored %d tasks, snapshot recorded %d", res.TasksRestored, len(snap.Completed))
	}
	checkPoolIndexConsistent(t, pool2, specs)
}
