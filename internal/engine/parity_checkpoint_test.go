package engine_test

// Checkpoint parity: both backends must write equivalent snapshots for
// the same schedule, because the snapshot is just a projection of the
// shared engine's state. Each backend checkpoints after every N
// completions — the live runtime from its execute path, the simulator
// from its completion events, both at the identical post-completion,
// pre-placement instant — and the resulting snapshot sequences are
// compared pairwise. The sweep runs the conformance generators on the
// serialised single-core rig (full structural equivalence, including
// the ready/pending frontier); a second test drives the scripted
// fault-and-steal scenario and compares the durable facts (completed
// set, data catalog, deterministic counters) at every snapshot.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/checkpoint"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/transfer"
	"repro/internal/workloads"
)

// located filters a catalog to the entries that hold at least one
// replica location.
func located(entries []checkpoint.CatalogEntry) []checkpoint.CatalogEntry {
	var out []checkpoint.CatalogEntry
	for _, e := range entries {
		if len(e.Locations) > 0 {
			out = append(out, e)
		}
	}
	return out
}

// loadAll loads every snapshot in a store, in sequence order.
func loadAll(t *testing.T, store *checkpoint.Store) []*checkpoint.Snapshot {
	t.Helper()
	var snaps []*checkpoint.Snapshot
	for _, path := range store.Snapshots() {
		snap, err := store.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

// ckptSweepSim runs a conformance case on the simulator with an every-N
// checkpoint policy and returns the store (delta mode persists a chain,
// not a flat snapshot list; use Latest or loadAll as fits the mode).
func ckptSweepSim(t *testing.T, c workloads.ConformanceCase, everyN int, steal engine.StealConfig, delta bool) *checkpoint.Store {
	t.Helper()
	store, err := checkpoint.NewStore(t.TempDir(), checkpoint.Keep(1000))
	if err != nil {
		t.Fatal(err)
	}
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("pn0", c.Node))
	specs := []infra.TaskSpec{{ID: 1, Class: "gate", Duration: time.Second}}
	for i, spec := range c.Specs {
		spec.ID = int64(i + 2)
		specs = append(specs, spec)
	}
	sim, err := infra.New(infra.Config{
		Pool:       pool,
		Net:        simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:     sched.FIFO{},
		StageIn:    c.StageIn,
		Steal:      steal,
		Checkpoint: &checkpoint.Config{Store: store, Policy: checkpoint.EveryN(everyN), Delta: delta, CompactEvery: 3},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return store
}

// ckptSweepLive bridges the same case onto the live runtime (gate task
// holding the single core until the whole workflow is queued) with the
// identical checkpoint policy.
func ckptSweepLive(t *testing.T, c workloads.ConformanceCase, everyN int, steal engine.StealConfig, delta bool) *checkpoint.Store {
	t.Helper()
	store, err := checkpoint.NewStore(t.TempDir(), checkpoint.Keep(1000))
	if err != nil {
		t.Fatal(err)
	}
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("pn0", c.Node))
	rt := core.New(core.Config{
		Pool:       pool,
		Policy:     sched.FIFO{},
		Locations:  transfer.NewRegistry(),
		Net:        simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Steal:      steal,
		Checkpoint: &checkpoint.Config{Store: store, Policy: checkpoint.EveryN(everyN), Delta: delta, CompactEvery: 3},
	})
	defer rt.Shutdown()

	release := make(chan struct{})
	mustRegister(t, rt, core.TaskDef{Name: "gate", Fn: func(_ context.Context, _ []any) ([]any, error) {
		<-release
		return nil, nil
	}})
	for i, spec := range c.Specs {
		writes := 0
		for _, a := range spec.Accesses {
			if a.Dir.Writes() {
				writes++
			}
		}
		n := writes
		mustRegister(t, rt, core.TaskDef{
			Name: fmt.Sprintf("t%d", i),
			Fn: func(_ context.Context, _ []any) ([]any, error) {
				out := make([]any, n)
				for j := range out {
					out[j] = 1
				}
				return out, nil
			},
			Constraints: spec.Constraints,
		})
	}
	if _, err := rt.Submit("gate"); err != nil {
		t.Fatal(err)
	}
	handles := map[int64]*core.Handle{}
	h := func(d int64) *core.Handle {
		if handles[d] == nil {
			handles[d] = rt.NewData()
		}
		return handles[d]
	}
	// Pre-create handles in ascending data-ID order so live handle IDs
	// coincide with the spec's data IDs (generators number data 1..n) —
	// snapshot catalogs are compared key-for-key across backends.
	maxData := int64(0)
	for d := range c.StageIn {
		if int64(d) > maxData {
			maxData = int64(d)
		}
	}
	for _, spec := range c.Specs {
		for _, a := range spec.Accesses {
			if int64(a.Data) > maxData {
				maxData = int64(a.Data)
			}
		}
	}
	for d := int64(1); d <= maxData; d++ {
		h(d)
	}
	for d, size := range c.StageIn {
		rt.SetInitial(h(int64(d)), size, core.WithSize(size))
	}
	for i, spec := range c.Specs {
		params := make([]core.Param, 0, len(spec.Accesses))
		for _, a := range spec.Accesses {
			p := core.Param{Handle: h(int64(a.Data)), Dir: a.Dir}
			if a.Dir.Writes() {
				p.Size = spec.OutputBytes[a.Data]
			}
			params = append(params, p)
		}
		if _, err := rt.Submit(fmt.Sprintf("t%d", i), params...); err != nil {
			t.Fatalf("%s task %d: %v", c.Name, i, err)
		}
	}
	close(release)
	rt.Barrier()
	return store
}

// TestCheckpointParitySweep: full structural snapshot equivalence —
// completed set, ready/running/pending frontier, data catalog and
// deterministic counters — at every every-2-completions checkpoint,
// across every conformance generator, with work stealing armed (the
// FIFO policy never declines, so the knob must be a no-op in the books).
func TestCheckpointParitySweep(t *testing.T) {
	steal := engine.StealConfig{Mode: engine.StealOnIdle}
	for _, c := range workloads.ConformanceSuite() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			simSnaps := loadAll(t, ckptSweepSim(t, c, 2, steal, false))
			liveSnaps := loadAll(t, ckptSweepLive(t, c, 2, steal, false))
			if len(simSnaps) == 0 {
				t.Fatal("simulator persisted no snapshots")
			}
			if len(simSnaps) != len(liveSnaps) {
				t.Fatalf("snapshot counts diverge: sim %d vs live %d", len(simSnaps), len(liveSnaps))
			}
			for i := range simSnaps {
				if err := checkpoint.Equivalent(simSnaps[i], liveSnaps[i]); err != nil {
					t.Fatalf("snapshot %d not equivalent: %v", i+1, err)
				}
			}
		})
	}
}

// TestCheckpointParityWithFaultsAndSteal: the scripted slow/cut/crash
// scenario of the fault-parity suite, re-run with work stealing on and a
// checkpoint after every completion. The scheduling frontier legitimately
// differs mid-script (the live side submits incrementally), so each
// snapshot pair is compared on its durable facts: the completed set with
// its outputs, the full data catalog, and the deterministic counters.
func TestCheckpointParityWithFaultsAndSteal(t *testing.T) {
	simStore, err := checkpoint.NewStore(t.TempDir(), checkpoint.Keep(1000))
	if err != nil {
		t.Fatal(err)
	}
	liveStore, err := checkpoint.NewStore(t.TempDir(), checkpoint.Keep(1000))
	if err != nil {
		t.Fatal(err)
	}
	steal := engine.StealConfig{Mode: engine.StealOnIdle}
	runFaultScriptSim(t, steal, &checkpoint.Config{Store: simStore, Policy: checkpoint.EveryN(1)})
	runFaultScriptLive(t, steal, &checkpoint.Config{Store: liveStore, Policy: checkpoint.EveryN(1)})

	simSnaps := loadAll(t, simStore)
	liveSnaps := loadAll(t, liveStore)
	if len(simSnaps) == 0 {
		t.Fatal("simulator persisted no snapshots")
	}
	if len(simSnaps) != len(liveSnaps) {
		t.Fatalf("snapshot counts diverge: sim %d vs live %d", len(simSnaps), len(liveSnaps))
	}
	for i := range simSnaps {
		a, b := simSnaps[i], liveSnaps[i]
		if len(a.Completed) != len(b.Completed) {
			t.Fatalf("snapshot %d: completed %d vs %d", i+1, len(a.Completed), len(b.Completed))
		}
		for j := range a.Completed {
			if a.Completed[j].ID != b.Completed[j].ID {
				t.Fatalf("snapshot %d: completed[%d] task %d vs %d",
					i+1, j, a.Completed[j].ID, b.Completed[j].ID)
			}
		}
		// The live side declares output sizes lazily (at submission), so
		// compare only materialised entries — versions that actually hold
		// a replica somewhere; declared-but-unproduced data is not yet a
		// durable fact.
		ma, mb := located(a.Catalog), located(b.Catalog)
		if len(ma) != len(mb) {
			t.Fatalf("snapshot %d: %d vs %d materialised catalog entries", i+1, len(ma), len(mb))
		}
		for j := range ma {
			ca, cb := ma[j], mb[j]
			if ca.Key != cb.Key || ca.Size != cb.Size {
				t.Fatalf("snapshot %d catalog[%d]: %+v/%d vs %+v/%d",
					i+1, j, ca.Key, ca.Size, cb.Key, cb.Size)
			}
			if fmt.Sprint(ca.Locations) != fmt.Sprint(cb.Locations) {
				t.Fatalf("snapshot %d catalog %+v: locations %v vs %v",
					i+1, ca.Key, ca.Locations, cb.Locations)
			}
		}
		sa, sb := a.Stats, b.Stats
		if sa.Launched != sb.Launched || sa.Completed != sb.Completed ||
			sa.Reexecuted != sb.Reexecuted || sa.Steals != sb.Steals ||
			sa.Transfers != sb.Transfers || sa.BytesMoved != sb.BytesMoved {
			t.Fatalf("snapshot %d stats diverge: sim %+v vs live %+v", i+1, sa, sb)
		}
	}
	// The final snapshot seals the whole scripted run: every task done.
	last := simSnaps[len(simSnaps)-1]
	if len(last.Completed) != 4 {
		t.Fatalf("final snapshot records %d completed tasks, want 4", len(last.Completed))
	}
}
