package faults

import (
	"fmt"
	"strings"
	"testing"
)

// formatScenario renders a scenario back into the -faults grammar.
// Parse's documented grammar limits (no '-' in cut/heal's first
// endpoint, slow splits at the last 'x', factors are numeric) guarantee
// the rendering re-parses to the same scenario.
func formatScenario(sc Scenario) string {
	parts := make([]string, len(sc))
	for i, ev := range sc {
		var target string
		switch ev.Kind {
		case Slow:
			target = fmt.Sprintf("%sx%g", ev.Node, ev.Factor)
		case Cut, HealLink:
			target = ev.Node + "-" + ev.Peer
		default:
			target = ev.Node
		}
		parts[i] = fmt.Sprintf("%s@%s:%s", ev.Kind, ev.At, target)
	}
	return strings.Join(parts, ",")
}

// FuzzParse throws arbitrary scripts at the -faults grammar. Parse must
// never panic; a script it accepts must already be structurally valid
// (the arm-time contract), and rendering the parsed scenario back into
// the grammar must re-parse to a scenario that renders identically — so
// a script echoed into logs or configs stays loadable. The comparison
// is on the rendered form, not the structs, because a NaN slow factor
// is accepted (NaN is not <= 0) and never compares equal to itself.
func FuzzParse(f *testing.F) {
	f.Add("crash@2s:n0,slow@3s:n1x2,cut@4s:n0-n2")
	f.Add("heal@1m30s:hpc003-fog7,drain@0s:n1")
	f.Add("slow@5s:nx1x0.5") // node name ending in x1: last-x split
	f.Add("slow@1s:n1xNaN")
	f.Add("crash@2s:a:b@c") // ':' and '@' inside a node name
	f.Add(" crash@1h : n0 , drain@2h:n1 ")
	f.Add("cut@1s:a-b-c") // peer keeps its '-'
	f.Add("crash@-1s:n0")
	f.Add("boom@1s:n0")
	f.Add("")

	f.Fuzz(func(t *testing.T, script string) {
		sc, err := Parse(script)
		if err != nil {
			return // rejected script: fine, as long as we did not panic
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Parse accepted a scenario Validate rejects: %v\nscript: %q", err, script)
		}
		rendered := formatScenario(sc)
		sc2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parsing our own rendering failed: %v\nscript: %q\nrendered: %q", err, script, rendered)
		}
		if r2 := formatScenario(sc2); r2 != rendered {
			t.Fatalf("rendering is not a fixpoint:\nfirst:  %q\nsecond: %q\nscript: %q", rendered, r2, script)
		}
		if len(sc2) != len(sc) {
			t.Fatalf("round trip changed event count: %d -> %d (script %q)", len(sc), len(sc2), script)
		}
	})
}
