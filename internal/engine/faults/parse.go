package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Scenario from the compact command-line grammar used by
// cmd/flowgo-sim's -faults flag:
//
//	scenario := event ("," event)*
//	event    := kind "@" offset ":" target
//	kind     := "crash" | "slow" | "drain" | "cut" | "heal"
//	offset   := Go duration (time.ParseDuration: "2s", "1m30s", …)
//	target   := node                 crash, drain
//	          | node "x" factor      slow   (factor > 0; 1 restores speed)
//	          | node "-" node        cut, heal (two endpoints)
//
// Example: "crash@2s:n0,slow@3s:n1x2,cut@4s:n0-n2".
//
// Grammar limits: cut/heal endpoints must not contain '-', and a slow
// target splits at its last 'x' — node names that end in x<number> would
// be ambiguous. Names from the simulator's pools (n0, hpc003, fog7, …)
// are all fine. The returned scenario is also structurally validated, so
// a parsed script never fails later at arm time.
func Parse(s string) (Scenario, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var sc Scenario
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		ev, err := parseEvent(part)
		if err != nil {
			return nil, fmt.Errorf("faults: event %d (%q): %w", i, part, err)
		}
		sc = append(sc, ev)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseEvent(s string) (Event, error) {
	kindStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("missing '@' (want kind@offset:target)")
	}
	var kind Kind
	switch kindStr {
	case "crash":
		kind = Crash
	case "slow":
		kind = Slow
	case "drain":
		kind = Drain
	case "cut":
		kind = Cut
	case "heal":
		kind = HealLink
	default:
		return Event{}, fmt.Errorf("unknown kind %q (want crash|slow|drain|cut|heal)", kindStr)
	}
	offStr, target, ok := strings.Cut(rest, ":")
	if !ok {
		return Event{}, fmt.Errorf("missing ':' (want kind@offset:target)")
	}
	at, err := time.ParseDuration(offStr)
	if err != nil {
		return Event{}, fmt.Errorf("bad offset %q: %v", offStr, err)
	}
	if at < 0 {
		return Event{}, fmt.Errorf("negative offset %q", offStr)
	}
	ev := Event{At: at, Kind: kind}
	switch kind {
	case Crash, Drain:
		ev.Node = target
	case Slow:
		// Split at the LAST 'x': factors are numeric, node names are not.
		i := strings.LastIndex(target, "x")
		if i <= 0 || i == len(target)-1 {
			return Event{}, fmt.Errorf("slow target %q: want node'x'factor (e.g. n1x2)", target)
		}
		f, err := strconv.ParseFloat(target[i+1:], 64)
		if err != nil {
			return Event{}, fmt.Errorf("slow factor %q: %v", target[i+1:], err)
		}
		ev.Node, ev.Factor = target[:i], f
	case Cut, HealLink:
		a, b, ok := strings.Cut(target, "-")
		if !ok || a == "" || b == "" {
			return Event{}, fmt.Errorf("link target %q: want a-b (two endpoints)", target)
		}
		ev.Node, ev.Peer = a, b
	}
	return ev, nil
}
