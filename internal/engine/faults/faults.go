// Package faults scripts fault-injection scenarios against the shared
// scheduling engine — the recovery drills of the paper's experiment E7
// ("part of the application failed on a fog node … the execution of the
// method was resubmitted to another node", Sec. VI-B), made backend
// agnostic.
//
// A Scenario is a time-ordered list of fault events; the five kinds map
// one-to-one onto the engine's fault surface:
//
//   - Crash    → Engine.FailNode: the node leaves the pool, its replicas
//     are dropped, running tasks are killed (epoch invalidation) and
//     resubmitted through lineage recovery;
//   - Slow     → Engine.SlowNode: future placements carry a duration
//     multiplier (factor 1 restores full speed);
//   - Drain    → Engine.DrainNode: cordon — running work finishes, new
//     placements avoid the node;
//   - Cut      → Engine.Partition: a link (node or zone endpoints) is
//     severed; staging across it is impossible and the engine's
//     availability policy (engine.Availability) decides whether affected
//     tasks run anyway, park, or recompute their producers;
//   - HealLink → Engine.Heal: the link returns, parked tasks whose data
//     became reachable are woken, and queued work re-plans its staging.
//
// Run arms the events on any Timer — the simulator's virtual clock or a
// wall-clock timer (WallTimer) — and fires them into any Injector — the
// simulator or the live runtime, which layers its own cleanup (event
// invalidation, goroutine context cancellation) over the shared engine
// choreography. The same script therefore produces the same
// kill/recover/park/wake sequence on both backends, which is what lets
// the parity suites assert identical re-execution counts across them.
// The returned Drill accumulates per-event Outcomes (crash reports,
// injection errors) and Wait blocks until every armed event has fired.
//
// Scenarios are built in Go or parsed from the compact CLI grammar
// ("crash@2s:n0,slow@3s:n1x2,cut@4s:n0-n2,heal@8s:n0-n2"; see Parse)
// that cmd/flowgo-sim exposes as -faults. The operator-facing guide to
// the whole fault model — grammar, availability policies, recovery
// drills — is docs/FAULTS.md.
package faults

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
)

// Kind is the type of one fault event.
type Kind int

// Fault kinds.
const (
	// Crash removes Node from the pool, killing and recovering its tasks.
	Crash Kind = iota + 1
	// Slow multiplies the modelled duration of Node's future launches by
	// Factor (1 restores full speed).
	Slow
	// Drain cordons Node: running work finishes, new placements avoid it.
	Drain
	// Cut severs the network link between Node and Peer (node or zone
	// names) so staging across it blocks.
	Cut
	// HealLink restores a link severed by Cut.
	HealLink
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Slow:
		return "slow"
	case Drain:
		return "drain"
	case Cut:
		return "cut"
	case HealLink:
		return "heal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scripted fault.
type Event struct {
	// At is the injection instant, relative to the run's epoch (virtual
	// time on the simulator, elapsed wall time on the live runtime).
	At time.Duration
	// Kind selects the fault.
	Kind Kind
	// Node is the target node (Crash, Slow, Drain) or the first endpoint
	// (Cut, HealLink).
	Node string
	// Peer is the second endpoint of Cut / HealLink.
	Peer string
	// Factor is the Slow duration multiplier.
	Factor float64
}

// Scenario is a fault script. Order does not matter; events fire by At.
type Scenario []Event

// Validate reports the first structurally invalid event (unknown kind,
// missing target, non-positive slow factor). Targets are not checked
// against a pool — a scenario is written before the run it disturbs.
func (s Scenario) Validate() error {
	for i, ev := range s {
		switch ev.Kind {
		case Crash, Slow, Drain:
			if ev.Node == "" {
				return fmt.Errorf("faults: event %d (%s): missing node", i, ev.Kind)
			}
			if ev.Kind == Slow && ev.Factor <= 0 {
				return fmt.Errorf("faults: event %d (slow %s): factor must be > 0", i, ev.Node)
			}
		case Cut, HealLink:
			if ev.Node == "" || ev.Peer == "" {
				return fmt.Errorf("faults: event %d (%s): missing endpoint", i, ev.Kind)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// Injector receives fault events. Both backends implement it —
// *infra.Sim over the virtual clock and *core.Runtime over goroutines —
// by delegating to the engine's fault surface and layering their own
// cleanup (event invalidation, goroutine cancellation) on top.
type Injector interface {
	// FailNode crashes a node and triggers lineage recovery.
	FailNode(name string) (engine.FailReport, error)
	// SlowNode sets a node's duration multiplier.
	SlowNode(name string, factor float64) error
	// DrainNode cordons a node.
	DrainNode(name string) error
	// Partition cuts the link between two endpoints.
	Partition(a, b string) error
	// Heal restores a cut link.
	Heal(a, b string) error
}

// Timer schedules a callback at an absolute offset from the run's epoch.
// *simclock.Clock satisfies it directly; WallTimer adapts real time.
type Timer interface {
	At(t time.Duration, fn func())
}

// Outcome records what one fired event did.
type Outcome struct {
	// Event is the scripted fault.
	Event Event
	// Report is the crash report (Crash events only).
	Report engine.FailReport
	// Err is the injection error, if any (e.g. an unknown node).
	Err error
}

// Drill tracks a running scenario. It is safe for concurrent use — wall
// timers fire from their own goroutines.
type Drill struct {
	mu       sync.Mutex
	outcomes []Outcome
	pending  sync.WaitGroup
}

// Wait blocks until every armed event has fired. On a virtual-time Timer
// the events fire inside the simulation's Run, so Wait returns immediately
// after it; on a WallTimer it blocks in real time.
func (d *Drill) Wait() { d.pending.Wait() }

// Outcomes returns the fired events' outcomes in firing order.
func (d *Drill) Outcomes() []Outcome {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Outcome, len(d.outcomes))
	copy(out, d.outcomes)
	return out
}

// Killed sums the tasks killed by the drill's crash events so far.
func (d *Drill) Killed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, o := range d.outcomes {
		n += len(o.Report.Killed)
	}
	return n
}

// Errs returns the injection errors observed so far.
func (d *Drill) Errs() []error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var errs []error
	for _, o := range d.outcomes {
		if o.Err != nil {
			errs = append(errs, o.Err)
		}
	}
	return errs
}

// Run validates the scenario and arms every event on the timer. The
// returned Drill accumulates outcomes as events fire.
func Run(tm Timer, inj Injector, s Scenario) (*Drill, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d := &Drill{}
	d.pending.Add(len(s))
	for _, ev := range s {
		ev := ev
		tm.At(ev.At, func() {
			defer d.pending.Done()
			o := Outcome{Event: ev}
			switch ev.Kind {
			case Crash:
				o.Report, o.Err = inj.FailNode(ev.Node)
			case Slow:
				o.Err = inj.SlowNode(ev.Node, ev.Factor)
			case Drain:
				o.Err = inj.DrainNode(ev.Node)
			case Cut:
				o.Err = inj.Partition(ev.Node, ev.Peer)
			case HealLink:
				o.Err = inj.Heal(ev.Node, ev.Peer)
			}
			d.mu.Lock()
			d.outcomes = append(d.outcomes, o)
			d.mu.Unlock()
		})
	}
	return d, nil
}

// WallTimer schedules callbacks on real time, measured from its creation —
// the live runtime's Timer. Stop cancels events that have not fired (their
// Drill slots never complete, so use Stop only when abandoning a drill).
type WallTimer struct {
	epoch time.Time

	mu     sync.Mutex
	timers []*time.Timer
}

// NewWallTimer returns a timer whose epoch is now.
func NewWallTimer() *WallTimer {
	return &WallTimer{epoch: time.Now()}
}

// At implements Timer. Offsets already in the past fire immediately.
func (w *WallTimer) At(t time.Duration, fn func()) {
	d := t - time.Since(w.epoch)
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.timers = append(w.timers, time.AfterFunc(d, fn))
}

// Stop cancels all pending callbacks.
func (w *WallTimer) Stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, t := range w.timers {
		t.Stop()
	}
	w.timers = nil
}
