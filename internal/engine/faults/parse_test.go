package faults

import (
	"testing"
	"time"
)

func TestParseFullGrammar(t *testing.T) {
	sc, err := Parse("crash@2s:n0, slow@3s:n1x2.5, cut@4s:n0-n2, heal@1m:n0-n2, drain@90s:fog3")
	if err != nil {
		t.Fatal(err)
	}
	want := Scenario{
		{At: 2 * time.Second, Kind: Crash, Node: "n0"},
		{At: 3 * time.Second, Kind: Slow, Node: "n1", Factor: 2.5},
		{At: 4 * time.Second, Kind: Cut, Node: "n0", Peer: "n2"},
		{At: time.Minute, Kind: HealLink, Node: "n0", Peer: "n2"},
		{At: 90 * time.Second, Kind: Drain, Node: "fog3"},
	}
	if len(sc) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(sc), len(want))
	}
	for i := range want {
		if sc[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, sc[i], want[i])
		}
	}
}

func TestParseEmpty(t *testing.T) {
	sc, err := Parse("  ")
	if err != nil || sc != nil {
		t.Fatalf("Parse(blank) = (%v, %v), want (nil, nil)", sc, err)
	}
}

func TestParseSlowNodeNameWithX(t *testing.T) {
	// Split at the LAST x, so names containing x still parse.
	sc, err := Parse("slow@1s:xenon0x3")
	if err != nil {
		t.Fatal(err)
	}
	if sc[0].Node != "xenon0" || sc[0].Factor != 3 {
		t.Fatalf("parsed %+v, want node xenon0 factor 3", sc[0])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"boom@2s:n0",      // unknown kind
		"crash@2s",        // missing target separator
		"crash:n0",        // missing offset
		"crash@later:n0",  // unparsable offset
		"crash@-2s:n0",    // negative offset
		"slow@1s:n1",      // slow without factor
		"slow@1s:n1x0",    // factor must be > 0 (Validate)
		"slow@1s:n1xfast", // non-numeric factor
		"cut@1s:n0",       // one endpoint
		"cut@1s:-n2",      // empty endpoint
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
