package engine_test

import (
	"testing"
	"time"

	"repro/internal/deps"
	"repro/internal/engine"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/transfer"
)

// stubClock is a manual clock for engine-only tests.
type stubClock struct{ now time.Duration }

func (c *stubClock) Now() time.Duration { return c.now }

// collectExec queues placements; tests drive completions explicitly.
type collectExec struct{ queue []engine.Placement }

func (x *collectExec) Launch(p engine.Placement) { x.queue = append(x.queue, p) }

func (x *collectExec) pop() (engine.Placement, bool) {
	if len(x.queue) == 0 {
		return engine.Placement{}, false
	}
	p := x.queue[0]
	x.queue = x.queue[1:]
	return p, true
}

func pool(nodes, cores int) *resources.Pool {
	p := resources.NewPool()
	for i := 0; i < nodes; i++ {
		_ = p.Add(resources.NewNode(string(rune('a'+i)), resources.Description{
			Cores: cores, MemoryMB: 8000, SpeedFactor: 1,
		}))
	}
	return p
}

func newEngine(t *testing.T, p *resources.Pool, reg *transfer.Registry) (*engine.Engine, *collectExec) {
	t.Helper()
	exec := &collectExec{}
	cfg := engine.Config{
		Pool:     p,
		Policy:   sched.FIFO{},
		Clock:    &stubClock{},
		Executor: exec,
		Registry: reg,
	}
	if reg != nil {
		cfg.Net = simnet.New(simnet.Link{BandwidthMBps: 1000})
	}
	return engine.New(cfg), exec
}

func TestDependentsReleasedInOrder(t *testing.T) {
	e, exec := newEngine(t, pool(1, 1), nil)
	// 1 -> 2 -> 3 (producers passed explicitly, as the access processor
	// would derive them).
	e.Add(&engine.Task{ID: 1}, nil, 0)
	e.Add(&engine.Task{ID: 2}, []deps.TaskID{1}, 0)
	e.Add(&engine.Task{ID: 3}, []deps.TaskID{2}, 0)
	e.Schedule()

	var order []int64
	for {
		p, ok := exec.pop()
		if !ok {
			break
		}
		order = append(order, p.Task.ID)
		if _, ok := e.Complete(p.Task.ID, p.Epoch, false); !ok {
			t.Fatalf("completion of %d rejected", p.Task.ID)
		}
		e.Schedule()
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
}

func TestLowestIDReadyRunsFirst(t *testing.T) {
	e, exec := newEngine(t, pool(1, 1), nil)
	for id := int64(5); id >= 1; id-- {
		e.Add(&engine.Task{ID: id}, nil, 0)
	}
	e.Schedule()
	var order []int64
	for {
		p, ok := exec.pop()
		if !ok {
			break
		}
		order = append(order, p.Task.ID)
		e.Complete(p.Task.ID, p.Epoch, false)
		e.Schedule()
	}
	for i, id := range order {
		if id != int64(i+1) {
			t.Fatalf("order = %v, want ascending IDs", order)
		}
	}
}

func TestHoldsDelayReadiness(t *testing.T) {
	e, exec := newEngine(t, pool(1, 4), nil)
	if ready := e.Add(&engine.Task{ID: 1}, nil, 1); ready {
		t.Fatal("held task reported ready")
	}
	e.Schedule()
	if len(exec.queue) != 0 {
		t.Fatal("held task was placed")
	}
	if !e.ReleaseHold(1) {
		t.Fatal("ReleaseHold did not ready the task")
	}
	e.Schedule()
	if len(exec.queue) != 1 {
		t.Fatal("released task was not placed")
	}
}

func TestStaleCompletionIgnoredAfterKill(t *testing.T) {
	p := pool(2, 1)
	e, exec := newEngine(t, p, nil)
	e.Add(&engine.Task{ID: 1}, nil, 0)
	e.Schedule()
	pl, ok := exec.pop()
	if !ok {
		t.Fatal("task not placed")
	}
	node := pl.Primary().Name()
	_ = p.Remove(node)
	killed := e.KillRunningOn(node)
	if len(killed) != 1 || killed[0].ID != 1 {
		t.Fatalf("killed = %v", killed)
	}
	if _, ok := e.Complete(1, pl.Epoch, false); ok {
		t.Fatal("stale completion accepted after kill")
	}
	// Resubmit places it on the surviving node.
	e.Resubmit(1)
	e.Schedule()
	pl2, ok := exec.pop()
	if !ok {
		t.Fatal("resubmitted task not placed")
	}
	if pl2.Primary().Name() == node {
		t.Fatalf("placed on removed node %s", node)
	}
	if _, ok := e.Complete(1, pl2.Epoch, false); !ok {
		t.Fatal("live completion rejected")
	}
}

func TestResubmitRecomputesLostLineage(t *testing.T) {
	p := pool(2, 2)
	reg := transfer.NewRegistry()
	e, exec := newEngine(t, p, reg)
	k := transfer.Key{Data: 1, Ver: 1}
	e.Add(&engine.Task{ID: 1, OutputKeys: []transfer.Key{k}}, nil, 0)
	e.Add(&engine.Task{ID: 2, InputKeys: []transfer.Key{k}}, []deps.TaskID{1}, 0)
	e.Schedule()

	// Run the producer to completion.
	pl, _ := exec.pop()
	if pl.Task.ID != 1 {
		t.Fatalf("first placement = %d, want 1", pl.Task.ID)
	}
	e.Complete(1, pl.Epoch, false)
	if len(reg.Where(k)) == 0 {
		t.Fatal("output replica not registered")
	}

	// Lose every replica of the producer's output, then resubmit the
	// consumer: the engine must re-run the producer first.
	reg.DropNode(pl.Primary().Name())
	e.Schedule()
	plc, _ := exec.pop() // consumer placement (already released)
	if plc.Task.ID != 2 {
		t.Fatalf("second placement = %d, want 2", plc.Task.ID)
	}
	// Kill the consumer's run so it can be resubmitted.
	_ = p.Remove(plc.Primary().Name())
	e.KillRunningOn(plc.Primary().Name())
	e.Resubmit(2)
	e.Schedule()

	pl2, ok := exec.pop()
	if !ok {
		t.Fatal("nothing placed after resubmit")
	}
	if pl2.Task.ID != 1 {
		t.Fatalf("resubmission order starts at %d, want producer 1", pl2.Task.ID)
	}
	c, _ := e.Complete(1, pl2.Epoch, false)
	if c.First {
		t.Fatal("producer re-run misreported as first completion")
	}
	e.Schedule()
	pl3, ok := exec.pop()
	if !ok || pl3.Task.ID != 2 {
		t.Fatalf("consumer not re-placed after producer recompute: %+v", pl3)
	}
}

func TestSignatureShardingBlocksOnlyOneBucket(t *testing.T) {
	// One node: 4 cores, no GPU. GPU tasks can never run here; the small
	// tasks behind them in a flat queue must still be placed.
	p := resources.NewPool()
	_ = p.Add(resources.NewNode("cpu", resources.Description{Cores: 4, MemoryMB: 8000, GPUs: 0, SpeedFactor: 1}))
	_ = p.Add(resources.NewNode("gpu", resources.Description{Cores: 4, MemoryMB: 8000, GPUs: 1, SpeedFactor: 1}))
	e, exec := newEngine(t, p, nil)
	gpu := resources.Constraints{GPUs: 1}
	// Two GPU tasks (only one fits at a time) ahead of four plain tasks.
	e.Add(&engine.Task{ID: 1, Constraints: gpu}, nil, 0)
	e.Add(&engine.Task{ID: 2, Constraints: gpu}, nil, 0)
	for id := int64(3); id <= 6; id++ {
		e.Add(&engine.Task{ID: id}, nil, 0)
	}
	e.Schedule()
	// One GPU task runs; its sibling blocks that bucket only. All four
	// plain tasks and the first GPU task are placed: 5 launches.
	if len(exec.queue) != 5 {
		ids := make([]int64, 0, len(exec.queue))
		for _, pl := range exec.queue {
			ids = append(ids, pl.Task.ID)
		}
		t.Fatalf("placed %v, want 5 placements (one GPU bucket blocked)", ids)
	}
}

func TestMultiNodeGroupReservation(t *testing.T) {
	p := pool(2, 4)
	e, exec := newEngine(t, p, nil)
	e.Add(&engine.Task{ID: 1, Constraints: resources.Constraints{Cores: 4, Nodes: 2}}, nil, 0)
	e.Add(&engine.Task{ID: 2}, nil, 0)
	e.Schedule()
	if len(exec.queue) != 1 {
		t.Fatalf("placements = %d, want 1 (MPI task holds both nodes)", len(exec.queue))
	}
	pl := exec.queue[0]
	if pl.Task.ID != 1 || len(pl.Nodes) != 2 {
		t.Fatalf("placement = task %d on %d nodes", pl.Task.ID, len(pl.Nodes))
	}
	exec.queue = nil
	e.Complete(1, pl.Epoch, false)
	e.Schedule()
	if len(exec.queue) != 1 || exec.queue[0].Task.ID != 2 {
		t.Fatal("serial task not placed after MPI group released")
	}
}

func TestTransferAccounting(t *testing.T) {
	p := pool(2, 1)
	reg := transfer.NewRegistry()
	e, exec := newEngine(t, p, reg)
	k := transfer.Key{Data: 9, Ver: 0}
	reg.SetSize(k, 1e6)
	reg.AddReplica(k, "b")
	// FIFO places on node "a"; the input lives on "b" ⇒ one move.
	e.Add(&engine.Task{ID: 1, InputKeys: []transfer.Key{k}}, nil, 0)
	e.Schedule()
	pl, ok := exec.pop()
	if !ok {
		t.Fatal("not placed")
	}
	if pl.TransferTime <= 0 {
		t.Fatal("staging time not modelled")
	}
	st := e.Stats()
	if st.Transfers != 1 || st.BytesMoved != 1e6 {
		t.Fatalf("stats = %+v, want 1 transfer of 1e6 bytes", st)
	}
	if !reg.HasReplica(k, "a") {
		t.Fatal("staged replica not registered")
	}
}
