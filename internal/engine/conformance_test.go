package engine_test

// Backend conformance sweep: every generator in internal/workloads runs
// through both backends — the simulator natively, the live runtime via a
// spec-to-submission bridge — on a single single-core node, so execution
// is fully serialised and the engine's head selection alone determines
// the schedule. Start orders, launch counts, transfer books and
// dependency-edge statistics must match exactly.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/engine"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
	"repro/internal/workloads"
)

type sweepOutcome struct {
	order     []int // started spec indices, re-starts included
	launched  int
	transfers int
	bytes     int64
	edges     deps.Stats
}

// sweepSim runs the case natively on the simulator, with a gate task (ID
// 1) mirroring the live side's fully-queued start.
func sweepSim(t *testing.T, c workloads.ConformanceCase) sweepOutcome {
	return sweepSimAvail(t, c, engine.AvailRunAnyway)
}

func sweepSimAvail(t *testing.T, c workloads.ConformanceCase, avail engine.Availability) sweepOutcome {
	t.Helper()
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("pn0", c.Node))
	specs := []infra.TaskSpec{{ID: 1, Class: "gate", Duration: time.Second}}
	for i, spec := range c.Specs {
		spec.ID = int64(i + 2)
		specs = append(specs, spec)
	}
	tr := trace.New(0)
	sim, err := infra.New(infra.Config{
		Pool:         pool,
		Net:          simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:       sched.FIFO{},
		Tracer:       tr,
		StageIn:      c.StageIn,
		Availability: avail,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := sim.EngineStats()
	return sweepOutcome{
		order:     specOrder(tr),
		launched:  st.Launched,
		transfers: st.Transfers,
		bytes:     st.BytesMoved,
		edges:     res.DepEdges,
	}
}

// sweepLive bridges the specs onto the live runtime: one task definition
// per spec (instant body returning one value per written access, declared
// output sizes), handles per data ID, stage-in via SetInitial, and a gate
// occupying the single core until the whole workflow is queued.
func sweepLive(t *testing.T, c workloads.ConformanceCase) sweepOutcome {
	t.Helper()
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("pn0", c.Node))
	tr := trace.New(0)
	rt := core.New(core.Config{
		Pool:      pool,
		Policy:    sched.FIFO{},
		Tracer:    tr,
		Locations: transfer.NewRegistry(),
		Net:       simnet.New(simnet.Link{BandwidthMBps: 1000}),
	})
	defer rt.Shutdown()

	release := make(chan struct{})
	mustRegister(t, rt, core.TaskDef{Name: "gate", Fn: func(_ context.Context, _ []any) ([]any, error) {
		<-release
		return nil, nil
	}})
	for i, spec := range c.Specs {
		writes := 0
		for _, a := range spec.Accesses {
			if a.Dir.Writes() {
				writes++
			}
		}
		n := writes
		mustRegister(t, rt, core.TaskDef{
			Name: fmt.Sprintf("t%d", i),
			Fn: func(_ context.Context, _ []any) ([]any, error) {
				out := make([]any, n)
				for j := range out {
					out[j] = 1
				}
				return out, nil
			},
			Constraints: spec.Constraints,
		})
	}

	if _, err := rt.Submit("gate"); err != nil {
		t.Fatal(err)
	}
	handles := map[deps.DataID]*core.Handle{}
	h := func(d deps.DataID) *core.Handle {
		if handles[d] == nil {
			handles[d] = rt.NewData()
		}
		return handles[d]
	}
	for d, size := range c.StageIn {
		rt.SetInitial(h(d), size, core.WithSize(size))
	}
	for i, spec := range c.Specs {
		params := make([]core.Param, 0, len(spec.Accesses))
		for _, a := range spec.Accesses {
			p := core.Param{Handle: h(a.Data), Dir: a.Dir}
			if a.Dir.Writes() {
				p.Size = spec.OutputBytes[a.Data]
			}
			params = append(params, p)
		}
		if _, err := rt.Submit(fmt.Sprintf("t%d", i), params...); err != nil {
			t.Fatalf("%s task %d: %v", c.Name, i, err)
		}
	}
	close(release)
	rt.Barrier()

	st := rt.EngineStats()
	return sweepOutcome{
		order:     specOrder(tr),
		launched:  st.Launched,
		transfers: st.Transfers,
		bytes:     st.BytesMoved,
		edges:     rt.Stats().DepsEdges,
	}
}

// specOrder maps the TaskStarted sequence back to spec indices (task ID
// i+2 is spec i; the gate is skipped).
func specOrder(tr *trace.Tracer) []int {
	var order []int
	for _, ev := range tr.Events() {
		if ev.Kind != trace.TaskStarted || ev.Task == 1 {
			continue
		}
		order = append(order, int(ev.Task)-2)
	}
	return order
}

// TestConformanceAvailabilityNeutral: with no partition scripted, the
// availability policies must be invisible — every conformance generator
// produces the identical schedule, transfer books and dependency stats
// under run-anyway, defer and recompute, with nothing parked and nothing
// run missing.
func TestConformanceAvailabilityNeutral(t *testing.T) {
	for _, c := range workloads.ConformanceSuite() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			base := sweepSim(t, c)
			for _, avail := range []engine.Availability{engine.AvailDefer, engine.AvailRecompute} {
				got := sweepSimAvail(t, c, avail)
				if len(got.order) != len(base.order) {
					t.Fatalf("%s: start sequence length %d vs baseline %d", avail, len(got.order), len(base.order))
				}
				for i := range base.order {
					if got.order[i] != base.order[i] {
						t.Fatalf("%s: start order diverges at %d: %v vs baseline %v", avail, i, got.order, base.order)
					}
				}
				if got.launched != base.launched || got.transfers != base.transfers ||
					got.bytes != base.bytes || got.edges != base.edges {
					t.Fatalf("%s: outcome diverges from run-anyway baseline: %+v vs %+v", avail, got, base)
				}
			}
		})
	}
}

func TestWorkloadConformanceSweep(t *testing.T) {
	for _, c := range workloads.ConformanceSuite() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			sim := sweepSim(t, c)
			live := sweepLive(t, c)
			if len(live.order) != len(c.Specs) {
				t.Fatalf("live started %d tasks, want %d", len(live.order), len(c.Specs))
			}
			if len(sim.order) != len(live.order) {
				t.Fatalf("start sequences differ in length: sim %d vs live %d",
					len(sim.order), len(live.order))
			}
			for i := range sim.order {
				if sim.order[i] != live.order[i] {
					t.Fatalf("start order diverges at %d: sim %v vs live %v",
						i, sim.order, live.order)
				}
			}
			if sim.launched != live.launched {
				t.Fatalf("launch counts diverge: sim %d vs live %d", sim.launched, live.launched)
			}
			if sim.transfers != live.transfers {
				t.Fatalf("transfer counts diverge: sim %d vs live %d", sim.transfers, live.transfers)
			}
			if sim.bytes != live.bytes {
				t.Fatalf("bytes moved diverge: sim %d vs live %d", sim.bytes, live.bytes)
			}
			if sim.edges != live.edges {
				t.Fatalf("dependency stats diverge: sim %+v vs live %+v", sim.edges, live.edges)
			}
		})
	}
}
