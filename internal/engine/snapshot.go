// Checkpoint support — the engine-level half of the durability story.
// Lineage recovery (faults.go) survives losing a *node*; surviving the
// loss of the whole *process* needs the in-memory DAG state persisted
// outside it. The engine exposes exactly two primitives for that:
// SnapshotTasks dumps every task's lifecycle state under one lock
// acquisition, and RestoreCompleted replays a completion recorded by an
// earlier incarnation onto a freshly re-registered task so only
// unfinished work re-runs. The on-disk format, the policies deciding
// when to snapshot, and the backend wiring live in
// internal/engine/checkpoint.
package engine

import (
	"sort"
	"time"

	"repro/internal/transfer"
)

// TaskSnap is one task's checkpoint-relevant state, captured by
// SnapshotTasks.
type TaskSnap struct {
	// ID is the task's graph-unique ID.
	ID int64
	// Class is the task-class label.
	Class string
	// State is the lifecycle state at capture time.
	State State
	// Epoch is the placement counter (restored so completion events from
	// a previous incarnation can never be mistaken for live ones).
	Epoch int
	// Completed reports whether the task has completed at least once (a
	// Done task mid-lineage-re-run is Running with Completed true).
	Completed bool
	// OutputKeys lists the data versions the task produces. Engines
	// without a replica registry drop the keys of done tasks, so
	// checkpointing wants Config.Registry set.
	OutputKeys []transfer.Key
}

// SnapshotTasks returns every registered task's lifecycle state, in
// registration order, under a single lock acquisition — the raw material
// of a checkpoint snapshot.
func (e *Engine) SnapshotTasks() []TaskSnap {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]TaskSnap, 0, len(e.order))
	for _, id := range e.order {
		t := e.tasks[id]
		s := TaskSnap{
			ID: t.ID, Class: t.Class, State: t.state,
			Epoch: t.epoch, Completed: t.completed,
		}
		if len(t.OutputKeys) > 0 {
			s.OutputKeys = append([]transfer.Key(nil), t.OutputKeys...)
		}
		out = append(out, s)
	}
	return out
}

// snapLocked builds one task's checkpoint record.
func snapLocked(t *Task) TaskSnap {
	s := TaskSnap{
		ID: t.ID, Class: t.Class, State: t.state,
		Epoch: t.epoch, Completed: t.completed,
	}
	if len(t.OutputKeys) > 0 {
		s.OutputKeys = append([]transfer.Key(nil), t.OutputKeys...)
	}
	return s
}

// SnapshotTasksClean is SnapshotTasks plus a dirty-set reset: the capture
// that starts a fresh delta chain. A full snapshot subsumes every pending
// change, so the per-task dirty set and the added-task log restart empty.
// Plain SnapshotTasks stays side-effect-free — parity probes and tests can
// capture at will without perturbing the delta chain.
func (e *Engine) SnapshotTasksClean() []TaskSnap {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]TaskSnap, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, snapLocked(e.tasks[id]))
	}
	e.resetDirtyLocked()
	return out
}

// DirtyCount returns how many tasks changed snapshot-relevant state since
// the last TakeDirty / SnapshotTasksClean — the signal an interval
// checkpointer uses to skip captures on an idle graph.
func (e *Engine) DirtyCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.dirtyIDs)
}

// TakeDirty drains the delta since the last capture: the checkpoint
// records of every task whose state changed (sorted by ID — records are
// absolute state replacements, so order carries no meaning and sorting
// keeps the serialised bytes deterministic) and the IDs of tasks added
// since then, in registration order (a delta appends them to the base
// snapshot's task ordering). Both sets are cleared atomically with the
// read, under the same lock mutations take, so a change lands either in
// this delta or in the next one — never in neither.
func (e *Engine) TakeDirty() (snaps []TaskSnap, added []int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.dirtyIDs) == 0 && len(e.added) == 0 {
		return nil, nil
	}
	ids := append([]int64(nil), e.dirtyIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	snaps = make([]TaskSnap, 0, len(ids))
	for _, id := range ids {
		snaps = append(snaps, snapLocked(e.tasks[id]))
	}
	if len(e.added) > 0 {
		added = append([]int64(nil), e.added...)
	}
	e.resetDirtyLocked()
	return snaps, added
}

func (e *Engine) resetDirtyLocked() {
	for _, id := range e.dirtyIDs {
		e.tasks[id].ckptDirty = false
	}
	e.dirtyIDs = e.dirtyIDs[:0]
	e.added = e.added[:0]
}

// Now returns the engine clock's current offset from the run's epoch —
// the timestamp a checkpoint snapshot carries.
func (e *Engine) Now() time.Duration { return e.cfg.Clock.Now() }

// RestoreCompleted marks a registered, not-yet-running task as already
// completed — the restore half of checkpointing, called after the same
// workflow has been re-registered in a fresh process. The task leaves
// the ready queue if it was queued, its dependents are released exactly
// as a live completion would release them, and its placement epoch is
// fast-forwarded to at least the recorded one so stale completion events
// from the previous incarnation stay invalid. Output replicas are NOT
// re-registered here: the caller seeds the location registry from the
// snapshot's data catalog (and the ordinary transfer planner re-stages
// anything a dependent later misses). It reports false — and changes
// nothing — for unknown, Running or already-completed tasks.
func (e *Engine) RestoreCompleted(id int64, epoch int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tasks[id]
	if !ok || t.state == Running || t.completed {
		return false
	}
	if t.state == Ready {
		b := e.ready[t.sig]
		for i, qid := range b.q {
			if qid == id {
				b.q = append(b.q[:i], b.q[i+1:]...)
				break
			}
		}
		e.readyN.Add(-1)
		b.depth.Add(-1)
	}
	if t.state == Parked {
		e.unparkLocked(t) // a restored completion needs no inputs at all
	}
	if epoch > t.epoch {
		t.epoch = epoch
	}
	t.state = Done
	t.completed = true
	e.markDirtyLocked(t)
	e.stats.Restored++
	for _, dep := range t.dependents {
		dt := e.tasks[dep]
		dt.waitCount--
		if dt.waitCount == 0 && dt.state == Pending {
			dt.state = Ready
			e.pushReadyLocked(dt)
		}
	}
	t.dependents = nil
	if e.cfg.Registry == nil {
		t.InputKeys = nil
		t.OutputKeys = nil
	}
	return true
}
