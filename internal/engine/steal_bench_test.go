package engine_test

// Work-stealing macro benchmark: the SkewedTiers workload on a
// heterogeneous pool, run through the virtual-time simulator with the
// steal knob off and on. The committed regression test asserts the
// makespan improvement is real; the benchmark reports the same numbers
// as metrics so CI keeps the hot path compiled and exercised
// (go test -bench=Steal -benchtime=1x ./internal/engine/...).

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/workloads"
)

// skewedTierPool builds 1 fast HPC node and 8 slow fog nodes, 4 cores
// each: enough long tasks saturate the fast node and park the bucket
// while the fog tier idles.
func skewedTierPool() *resources.Pool {
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("hpc0", resources.Description{
		Cores: 4, MemoryMB: 32_000, SpeedFactor: 1, Class: resources.HPC,
	}))
	for i := 0; i < 8; i++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("fog%d", i), resources.Description{
			Cores: 4, MemoryMB: 8_000, SpeedFactor: 0.25, Class: resources.Fog,
		}))
	}
	return pool
}

// runSkewed executes the canonical skewed workload (5 long tasks that
// only the fast tier may run, then 400 short tasks) under the given
// steal configuration and returns the simulation result.
func runSkewed(steal engine.StealConfig) (infra.Result, engine.Stats, error) {
	sim, err := infra.New(infra.Config{
		Pool:   skewedTierPool(),
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: sched.WaitFast{Inner: sched.MinLoad{}, MaxSlowdown: 2, MinWait: 10 * time.Second},
		Steal:  steal,
	}, workloads.SkewedTiers(5, 400, 100*time.Second, 5*time.Second))
	if err != nil {
		return infra.Result{}, engine.Stats{}, err
	}
	res, err := sim.Run()
	if err != nil {
		return infra.Result{}, engine.Stats{}, err
	}
	return res, sim.EngineStats(), nil
}

// TestStealImprovesSkewedMakespan is the committed claim behind the
// work-stealing feature: on the skewed workload, stealing-on beats
// stealing-off by a measurable margin (≥ 15% here) because the short
// tail runs on the idle fog tier instead of waiting out the long head.
func TestStealImprovesSkewedMakespan(t *testing.T) {
	off, offStats, err := runSkewed(engine.StealConfig{})
	if err != nil {
		t.Fatal(err)
	}
	on, onStats, err := runSkewed(engine.StealConfig{Mode: engine.StealOnIdle})
	if err != nil {
		t.Fatal(err)
	}
	if offStats.Steals != 0 {
		t.Fatalf("stealing-off stole %d tasks", offStats.Steals)
	}
	if onStats.Steals == 0 {
		t.Fatal("stealing-on never stole")
	}
	if on.TasksCompleted != off.TasksCompleted {
		t.Fatalf("completions diverge: on %d vs off %d", on.TasksCompleted, off.TasksCompleted)
	}
	if float64(on.Makespan) > 0.85*float64(off.Makespan) {
		t.Fatalf("stealing-on makespan %v is not ≥15%% better than off %v", on.Makespan, off.Makespan)
	}
	// Threshold mode steals too once the backlog is deep (400 shorts).
	thr, thrStats, err := runSkewed(engine.StealConfig{Mode: engine.StealThreshold, Threshold: 50})
	if err != nil {
		t.Fatal(err)
	}
	if thrStats.Steals == 0 {
		t.Fatal("threshold mode never stole despite a deep backlog")
	}
	if float64(thr.Makespan) > float64(off.Makespan) {
		t.Fatalf("threshold makespan %v worse than off %v", thr.Makespan, off.Makespan)
	}
}

// BenchmarkStealSkewedMakespan reports simulated makespan and wall-clock
// scheduling throughput for each steal mode on the skewed workload.
func BenchmarkStealSkewedMakespan(b *testing.B) {
	modes := []struct {
		name  string
		steal engine.StealConfig
	}{
		{"off", engine.StealConfig{}},
		{"on-idle", engine.StealConfig{Mode: engine.StealOnIdle}},
		{"threshold-50", engine.StealConfig{Mode: engine.StealThreshold, Threshold: 50}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var last infra.Result
			tasks := 0
			for i := 0; i < b.N; i++ {
				res, st, err := runSkewed(m.steal)
				if err != nil {
					b.Fatal(err)
				}
				last = res
				tasks += res.TasksCompleted
				_ = st
			}
			b.ReportMetric(last.Makespan.Seconds(), "sim-makespan-s")
			b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "sim-tasks/s")
		})
	}
}
