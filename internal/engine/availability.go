// Data availability — the placement-time half of the partition story.
// Fault injection (faults.go) models the moment a link is cut; this file
// decides what the scheduler does with a task whose inputs sit on the far
// side of that cut. At placement time every input of a candidate task is
// classified against the policy-chosen primary node:
//
//   - reachable: a replica is local or fetchable (transfer.Plan.Moves);
//   - partitioned: replicas exist, but every one is behind a cut link
//     (transfer.Plan.UnreachableKeys) — nothing is lost, nothing is
//     obtainable until a heal;
//   - lost: no replica anywhere (transfer.Plan.MissingKeys) — only a
//     producer re-execution can bring the data back.
//
// Config.Availability selects the response to a partitioned or lost
// input. AvailRunAnyway launches regardless (the pre-availability
// behaviour, now observable through trace.DataUnavailable and
// Stats.RanMissing). AvailDefer parks the task in a per-datum wait set
// until a Heal or a fresh replica of the awaited version wakes it.
// AvailRecompute parks the task too, but additionally resubmits the
// producers of the unavailable versions through the ordinary lineage
// path — pinned, via an internal placement hint, to nodes that can reach
// the stranded consumer's side of the partition, so the recompute lands
// where its output is consumable rather than behind the same cut.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/resources"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// Availability selects how the engine places a task when every replica of
// one of its inputs is lost or partitioned away. The zero value is
// AvailRunAnyway.
type Availability int

// Availability policies.
const (
	// AvailRunAnyway launches the task without the unavailable inputs —
	// the historical behaviour. Each such launch is recorded as a
	// trace.DataUnavailable event ("missing, run anyway") and counted in
	// Stats.RanMissing, so silent no-data executions are at least
	// observable. Backends that keep values out-of-band (the live
	// runtime's in-process value table) still compute correct results;
	// the modelled transfer books simply under-report the moves.
	AvailRunAnyway Availability = iota
	// AvailDefer parks the task in a per-datum wait set instead of
	// launching it. The task wakes — and is re-classified from scratch —
	// when a partition heals, when a replica of an awaited version is
	// registered, or when a node failure forces a sweep. Under a
	// heal-bounded partition this trades latency for zero wasted
	// executions and zero recomputes. Inputs that are lost outright (no
	// replica anywhere) have no heal to wait for, so their producers are
	// resubmitted through the ordinary lineage path even under defer —
	// defer chooses to wait out partitions, never to dead-wait lost data.
	AvailDefer Availability = iota
	// AvailRecompute parks the task and resubmits the producers of its
	// unavailable versions through the lineage-recovery path, hinted to
	// run on nodes that can reach the parked task's side of the cut. The
	// fresh replica wakes the task; the partition is never waited out.
	// Unavailable versions with no registered producer (external stage-in
	// data) cannot be recomputed and fall back to AvailDefer parking.
	AvailRecompute Availability = iota
)

// String returns the policy name, matching ParseAvailability's grammar.
func (a Availability) String() string {
	switch a {
	case AvailRunAnyway:
		return "run-anyway"
	case AvailDefer:
		return "defer"
	case AvailRecompute:
		return "recompute"
	default:
		return fmt.Sprintf("Availability(%d)", int(a))
	}
}

// ParseAvailability reads a policy name: "run-anyway" (or ""), "defer",
// or "recompute" — the grammar of flowgo-sim's -availability flag.
func ParseAvailability(s string) (Availability, error) {
	switch s {
	case "", "run-anyway":
		return AvailRunAnyway, nil
	case "defer":
		return AvailDefer, nil
	case "recompute":
		return AvailRecompute, nil
	default:
		return AvailRunAnyway, fmt.Errorf("engine: unknown availability policy %q (want run-anyway | defer | recompute)", s)
	}
}

// ParkedCount returns the number of tasks currently parked in the
// availability wait set — work that exists but cannot be fed until a
// partition heals or a replica reappears.
func (e *Engine) ParkedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.parked)
}

// RevalidateAvailability wakes every task parked in the availability
// wait set and runs a placement wave. Call it after adding capacity the
// engine cannot observe on its own — pool growth, an undrained node —
// since the new node may sit on the reachable side of a partition and
// carry the parked work. Heals, fresh replicas and node failures
// re-validate automatically; tasks whose data is still unobtainable
// simply re-park. Returns the number of tasks woken.
func (e *Engine) RevalidateAvailability() int {
	woken := e.wakeAllParked()
	e.Schedule()
	return woken
}

// actionableMissesLocked filters a fetch plan's shortfalls down to the
// ones an availability policy can do something about: every partitioned
// key (a heal or a recompute makes it obtainable), plus lost keys whose
// producer is registered (lineage can recreate them). Lost keys with no
// producer are external data the run never staged — unobtainable under
// any policy — and keep the historical run-anyway semantics.
func (e *Engine) actionableMissesLocked(plan transfer.Plan) []transfer.Key {
	if len(plan.MissingKeys) == 0 {
		return plan.UnreachableKeys
	}
	out := plan.UnreachableKeys
	for _, k := range plan.MissingKeys {
		if _, ok := e.producer[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

// feedablePickLocked re-runs the placement choice over the fitting nodes
// that can actually obtain every input (no actionable miss), excluding
// the already-tried primary. Policies pick against the task's data, not
// its reachability, so under a partition their first choice may be a
// node the data cannot reach while a perfectly feedable sibling sits
// idle — without this re-offer, defer would park such a task until a
// heal that may never come. Returns false when no fitting node can be
// fed or the policy declines the feedable subset (the availability
// policy then takes over).
func (e *Engine) feedablePickLocked(t *Task, fitting []*resources.Node, tried *resources.Node) (*resources.Node, transfer.Plan, bool) {
	var feedable []*resources.Node
	var plans []transfer.Plan
	for _, n := range fitting {
		if n == tried {
			continue
		}
		plan := e.mgr.PlanFetch(n.Name(), t.InputKeys)
		if len(e.actionableMissesLocked(plan)) == 0 {
			feedable = append(feedable, n)
			plans = append(plans, plan)
		}
	}
	if len(feedable) == 0 {
		return nil, transfer.Plan{}, false
	}
	primary := e.cfg.Policy.Pick(e.viewLocked(t), feedable, e.cfg.SchedContext)
	if primary == nil {
		return nil, transfer.Plan{}, false
	}
	for i, n := range feedable {
		if n == primary {
			return primary, plans[i], true
		}
	}
	return nil, transfer.Plan{}, false // policy picked outside the offered set: programming error, fail safe
}

// feedableCapableLocked reports whether any node that could ever run t
// (capability, ignoring current load) can obtain all of its inputs.
// When true, an unavailable-looking placement is really a capacity wait:
// the data sits on (or is reachable from) a node that is merely busy
// right now, and the ordinary completion-wave retry will get there —
// parking would hang instead, because capacity release is not an
// availability wake source. The recompute hint is honoured so a hinted
// producer is never held queued for capacity on the wrong side of a cut.
func (e *Engine) feedableCapableLocked(t *Task) bool {
	capable := e.cfg.Pool.IndexForSig(t.sig, t.Constraints).AppendCapable(e.capScratch[:0])
	e.capScratch = capable
	for _, n := range capable {
		if t.availNeed != "" && e.cfg.Net != nil && !e.cfg.Net.Reachable(n.Name(), t.availNeed) {
			continue
		}
		if len(e.actionableMissesLocked(e.mgr.PlanFetch(n.Name(), t.InputKeys))) == 0 {
			return true
		}
	}
	return false
}

// divertUnavailableLocked applies the availability policy to a task whose
// placement attempt found unavailable inputs (recorded by placeLocked in
// e.availMissing, with the policy's chosen primary in e.availPrimary).
// The caller has already removed t from its ready bucket. Under
// AvailRecompute, producers of the unavailable versions are resubmitted
// with a placement hint binding them to nodes that can reach the chosen
// primary — "recompute locally", on the consumer's side of the cut.
func (e *Engine) divertUnavailableLocked(t *Task) {
	keys := append([]transfer.Key(nil), e.availMissing...)
	primary := e.availPrimary
	t.state = Parked
	e.markDirtyLocked(t)
	t.availKeys = keys
	if e.waiters == nil {
		e.waiters = make(map[transfer.Key]map[int64]struct{})
	}
	for _, k := range keys {
		set, ok := e.waiters[k]
		if !ok {
			set = make(map[int64]struct{})
			e.waiters[k] = set
		}
		set[t.ID] = struct{}{}
	}
	if e.parked == nil {
		e.parked = make(map[int64]struct{})
	}
	e.parked[t.ID] = struct{}{}
	e.stats.Deferred++
	e.cfg.Metrics.Parks.Inc()
	e.cfg.Metrics.Parked.Add(1)
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(trace.Event{
			At: e.cfg.Clock.Now(), Kind: trace.TaskParked, Task: t.ID,
			Node: primary, Info: fmt.Sprintf("%d unavailable inputs (%s)", len(keys), e.cfg.Availability),
		})
	}
	for _, k := range keys {
		p, ok := e.producer[k]
		if !ok {
			continue // external data: nothing to recompute, wait for a heal
		}
		// Partitioned data (replicas exist, all behind cuts) is waited
		// out under defer and recomputed locally under recompute. Lost
		// data (no replica anywhere) has no wake source but a fresh
		// replica, so its producer is resubmitted through the ordinary
		// lineage path under BOTH policies — parking on it would stall
		// forever; this is crash recovery, not partition policy.
		lost := len(e.cfg.Registry.Where(k)) == 0
		if !lost && e.cfg.Availability != AvailRecompute {
			continue
		}
		pt := e.tasks[p]
		if pt.state == Ready || pt.state == Running ||
			(pt.state == Pending && pt.waitCount > 0) {
			continue // already on its way; its completion wakes us
		}
		if !lost {
			// "Recompute locally": only a partitioned re-run needs the
			// reachability hint — a lost version's re-run can go anywhere,
			// like any lineage recovery.
			pt.availNeed = primary
			e.stats.AvailRecomputes++
			e.cfg.Metrics.Recomputes.Inc()
		}
		e.resubmitLocked(p)
	}
}

// unparkLocked removes t from the wait sets without re-queueing it (the
// caller decides where it goes next).
func (e *Engine) unparkLocked(t *Task) {
	for _, k := range t.availKeys {
		if set, ok := e.waiters[k]; ok {
			delete(set, t.ID)
			if len(set) == 0 {
				delete(e.waiters, k)
			}
		}
	}
	t.availKeys = nil
	if _, ok := e.parked[t.ID]; ok {
		delete(e.parked, t.ID)
		e.cfg.Metrics.Parked.Add(-1)
	}
}

// wakeLocked releases a parked task back to the ready queue, where the
// next placement wave re-classifies its inputs from scratch (a task woken
// optimistically simply parks again).
func (e *Engine) wakeLocked(t *Task) {
	e.unparkLocked(t)
	t.state = Ready
	e.pushReadyLocked(t)
	e.stats.Woken++
	e.cfg.Metrics.Wakes.Inc()
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Record(trace.Event{At: e.cfg.Clock.Now(), Kind: trace.TaskWoken, Task: t.ID})
	}
}

// wakeKeyWaitersLocked wakes every task parked on the given data version —
// called when a replica of it is (re)created — and returns how many.
func (e *Engine) wakeKeyWaitersLocked(k transfer.Key) int {
	set, ok := e.waiters[k]
	if !ok {
		return 0
	}
	ids := make([]int64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	// Ascending IDs keep wake order deterministic across backends.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e.wakeLocked(e.tasks[id])
	}
	return len(ids)
}

// wakeReachable wakes tasks parked on versions that have become
// obtainable again: some pool node can now reach a replica. Called after
// a Heal; waking is optimistic (the placement wave re-classifies against
// the actual chosen primary), but keys that are still fully cut off stay
// parked, so a partial heal does not churn the whole wait set. Returns
// how many tasks were woken.
func (e *Engine) wakeReachable() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.waiters) == 0 || e.cfg.Registry == nil || e.cfg.Net == nil {
		return 0
	}
	nodes := e.cfg.Pool.Nodes()
	keys := make([]transfer.Key, 0, len(e.waiters))
	for k := range e.waiters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Data != keys[j].Data {
			return keys[i].Data < keys[j].Data
		}
		return keys[i].Ver < keys[j].Ver
	})
	before := e.stats.Woken
	for _, k := range keys {
		sources := e.cfg.Registry.Where(k)
		if len(sources) == 0 {
			continue // lost, not partitioned: only a replica can wake these
		}
		isSource := make(map[string]bool, len(sources))
		for _, s := range sources {
			isSource[s] = true
		}
		// A replica holder trivially reaches itself, which proves nothing
		// for the waiter — if a holder could run the task, the feedable
		// re-pick would have placed it there instead of parking. The heal
		// matters only when the data can now MOVE: some non-holder pool
		// node reaches a source.
		for _, n := range nodes {
			if isSource[n.Name()] {
				continue
			}
			if e.cfg.Net.ReachableAny(n.Name(), sources) {
				e.wakeKeyWaitersLocked(k)
				break
			}
		}
	}
	return e.stats.Woken - before
}

// wakeAllParked wakes every parked task, returning how many. Used when the
// reachability picture changed wholesale (a heal, a node failure): the
// placement wave, not this code, decides who can actually run now.
func (e *Engine) wakeAllParked() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.parked) == 0 {
		return 0
	}
	woken := 0
	for _, id := range e.order {
		if _, ok := e.parked[id]; !ok {
			continue
		}
		e.wakeLocked(e.tasks[id])
		woken++
	}
	return woken
}
