package checkpoint

import (
	"errors"
	"os"
	"testing"
	"time"
)

func sample(at time.Duration, completed ...int64) *Snapshot {
	s := &Snapshot{Format: Format, At: at}
	for _, id := range completed {
		s.Completed = append(s.Completed, TaskRecord{
			ID: id, Epoch: 1,
			Outputs: []CatalogKey{{Data: id, Ver: 1}},
		})
	}
	s.Catalog = append(s.Catalog, CatalogEntry{
		Key: CatalogKey{Data: 1, Ver: 1}, Size: 42, Locations: []string{"n0"},
	})
	return s
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path, err := store.Save(sample(time.Second, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 1 || len(snap.Completed) != 3 || snap.At != time.Second {
		t.Fatalf("round-trip mismatch: %+v", snap)
	}
	if snap.Completed[2].Outputs[0] != (CatalogKey{Data: 3, Ver: 1}) {
		t.Fatalf("outputs mismatch: %+v", snap.Completed[2])
	}
}

func TestStoreSequencesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	store, _ := NewStore(dir)
	if _, err := store.Save(sample(0, 1)); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.Save(sample(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	snap, err := reopened.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 2 {
		t.Fatalf("seq after reopen = %d, want 2", snap.Seq)
	}
}

// TestStoreFallbackOnCorruption: a truncated or bit-flipped latest
// snapshot must not poison restore — Latest skips to the previous valid
// one, and Load names the corruption.
func TestStoreFallbackOnCorruption(t *testing.T) {
	for _, damage := range []struct {
		name string
		do   func(path string) error
	}{
		{"truncated", func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		}},
		{"bit-flipped", func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0xff
			return os.WriteFile(path, data, 0o644)
		}},
	} {
		t.Run(damage.name, func(t *testing.T) {
			store, err := NewStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := store.Save(sample(time.Second, 1, 2)); err != nil {
				t.Fatal(err)
			}
			latestPath, err := store.Save(sample(2*time.Second, 1, 2, 3))
			if err != nil {
				t.Fatal(err)
			}
			if err := damage.do(latestPath); err != nil {
				t.Fatal(err)
			}
			if _, err := store.Load(latestPath); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load(damaged) = %v, want ErrCorrupt", err)
			}
			snap, err := store.Latest()
			if err != nil {
				t.Fatalf("Latest after damage: %v", err)
			}
			if snap.Seq != 1 || len(snap.Completed) != 2 {
				t.Fatalf("fallback picked seq %d with %d completed, want previous valid (seq 1, 2 completed)",
					snap.Seq, len(snap.Completed))
			}
		})
	}
}

func TestStoreLatestEmpty(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Latest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Latest on empty store = %v, want ErrNoSnapshot", err)
	}
}

func TestStoreRetention(t *testing.T) {
	store, err := NewStore(t.TempDir(), Keep(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := store.Save(sample(0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	paths := store.Snapshots()
	if len(paths) != 3 {
		t.Fatalf("retained %d snapshots, want 3", len(paths))
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 6 {
		t.Fatalf("latest seq = %d, want 6", snap.Seq)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{"", Off(), false},
		{"off", Off(), false},
		{"on-drain", OnDrain(), false},
		{"interval:30s", Interval(30 * time.Second), false},
		{"every:50", EveryN(50), false},
		{"every:0", Policy{}, true},
		{"interval:bogus", Policy{}, true},
		{"sometimes", Policy{}, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.err {
			if err == nil {
				t.Fatalf("ParsePolicy(%q) succeeded, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParsePolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if rt, err := ParsePolicy(got.String()); err != nil || rt != got {
			t.Fatalf("String round-trip of %q: %+v, %v", c.in, rt, err)
		}
	}
}

func TestValueCodec(t *testing.T) {
	for _, v := range []any{int(7), int64(-3), 1.5, "hello", []byte{1, 2}, []int{3, 4}, true} {
		b, ok := EncodeValue(v)
		if !ok {
			t.Fatalf("EncodeValue(%v) failed", v)
		}
		got, ok := DecodeValue(b)
		if !ok {
			t.Fatalf("DecodeValue of %v failed", v)
		}
		switch want := v.(type) {
		case []byte:
			g, _ := got.([]byte)
			if string(g) != string(want) {
				t.Fatalf("round-trip %v → %v", v, got)
			}
		case []int:
			g, _ := got.([]int)
			if len(g) != len(want) || g[0] != want[0] {
				t.Fatalf("round-trip %v → %v", v, got)
			}
		default:
			if got != v {
				t.Fatalf("round-trip %v → %v", v, got)
			}
		}
	}
	// Unencodable values degrade to "re-run", not to an error.
	if _, ok := EncodeValue(make(chan int)); ok {
		t.Fatal("EncodeValue(chan) succeeded, want false")
	}
	if _, ok := EncodeValue(struct{ X int }{1}); ok {
		t.Fatal("EncodeValue(unregistered struct) succeeded, want false")
	}
}
