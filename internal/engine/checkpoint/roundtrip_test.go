package checkpoint_test

// Checkpoint → restore round trip, swept across every generator in
// internal/workloads.ConformanceSuite: run each workload on the
// simulator with an every-N snapshot policy, kill the whole engine
// mid-run (Config.HaltAt — the simulated process death), restore a
// fresh simulation from the latest valid snapshot, and assert that the
// resumed run completes the workload without re-executing any restored
// task.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/engine/checkpoint"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// simConfig builds the standard single-node conformance rig.
func simConfig(c workloads.ConformanceCase, tr *trace.Tracer) infra.Config {
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("pn0", c.Node))
	return infra.Config{
		Pool:    pool,
		Net:     simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:  sched.FIFO{},
		Tracer:  tr,
		StageIn: c.StageIn,
	}
}

// TestIntervalCheckpointDoesNotMaskStuckRuns: interval checkpoints
// re-arm themselves on the virtual clock; without a liveness gate the
// self-re-arming event would keep the heap non-empty forever and a
// wedged simulation (unsatisfiable constraints) would spin instead of
// reporting ErrStuck.
func TestIntervalCheckpointDoesNotMaskStuckRuns(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("tiny", resources.Description{
		Cores: 1, MemoryMB: 100, SpeedFactor: 1,
	}))
	sim, err := infra.New(infra.Config{
		Pool:       pool,
		Net:        simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:     sched.FIFO{},
		Checkpoint: &checkpoint.Config{Store: store, Policy: checkpoint.Interval(time.Second)},
	}, []infra.TaskSpec{{
		ID: 1, Class: "too-big", Duration: time.Second,
		Constraints: resources.Constraints{MemoryMB: 1_000_000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sim.Run()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, infra.ErrStuck) {
			t.Fatalf("Run = %v, want ErrStuck", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stuck run did not terminate: interval checkpoints keep the clock alive")
	}
}

func TestCheckpointRestoreRoundTripSweep(t *testing.T) {
	for _, c := range workloads.ConformanceSuite() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			// Cold run: learn the makespan so the crash lands mid-run.
			cold, err := infra.New(simConfig(c, nil), c.Specs)
			if err != nil {
				t.Fatal(err)
			}
			coldRes, err := cold.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Run 1: checkpoint every 3 completions, die at half-makespan.
			store, err := checkpoint.NewStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			cfg1 := simConfig(c, nil)
			cfg1.Checkpoint = &checkpoint.Config{Store: store, Policy: checkpoint.EveryN(3)}
			cfg1.HaltAt = coldRes.Makespan / 2
			sim1, err := infra.New(cfg1, c.Specs)
			if err != nil {
				t.Fatal(err)
			}
			res1, err := sim1.Run()
			if !errors.Is(err, infra.ErrHalted) {
				t.Fatalf("run 1 = %v, want ErrHalted (completed %d)", err, res1.TasksCompleted)
			}
			snap, err := store.Latest()
			if err != nil {
				t.Fatalf("no snapshot before the crash: %v", err)
			}
			if len(snap.Completed) == 0 {
				t.Fatal("latest snapshot records no completed tasks; bad halt point")
			}

			// Run 2: restore and finish.
			tr2 := trace.New(0)
			cfg2 := simConfig(c, tr2)
			cfg2.Restore = snap
			sim2, err := infra.New(cfg2, c.Specs)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := sim2.Run()
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			// Every snapshot-completed task was restored (the conformance
			// node pool is identical, so all replicas survive) …
			if res2.TasksRestored != len(snap.Completed) {
				t.Fatalf("restored %d tasks, snapshot records %d", res2.TasksRestored, len(snap.Completed))
			}
			// … none of them executed again …
			restored := make(map[int64]bool, len(snap.Completed))
			for _, id := range snap.CompletedIDs() {
				restored[id] = true
			}
			for _, ev := range tr2.Events() {
				if ev.Kind == trace.TaskStarted && restored[ev.Task] {
					t.Fatalf("restored task %d re-executed in the resumed run", ev.Task)
				}
			}
			// … the resumed run launched exactly the unfinished remainder …
			st2 := sim2.EngineStats()
			if want := len(c.Specs) - len(snap.Completed); st2.Launched != want {
				t.Fatalf("resumed run launched %d tasks, want %d", st2.Launched, want)
			}
			if st2.Restored != len(snap.Completed) {
				t.Fatalf("engine restored counter = %d, want %d", st2.Restored, len(snap.Completed))
			}
			if res2.TasksReExecuted != 0 {
				t.Fatalf("resumed run re-executed %d tasks, want 0", res2.TasksReExecuted)
			}
			// … and the two halves cover the whole workload exactly once.
			if total := res2.TasksCompleted + res2.TasksRestored; total != len(c.Specs) {
				t.Fatalf("restored(%d) + completed(%d) = %d, want %d",
					res2.TasksRestored, res2.TasksCompleted, total, len(c.Specs))
			}
		})
	}
}
