// Value encoding for the live backend's catalog. The simulator's tasks
// have durations, not values, so its snapshots carry a location catalog
// only; the live runtime must additionally persist the concrete Go
// values completed tasks produced, or restored futures would have
// nothing to resolve to. Values are gob-encoded through an interface
// box, which means the concrete type must be registered — common
// scalar, slice and map types are pre-registered, applications with
// richer result types call RegisterType once at start-up. A value whose
// type is not registered is simply not checkpointed: its producing task
// re-runs on restore, trading work for correctness.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"time"
)

// box wraps a value so gob records the concrete type of the interface.
type box struct {
	V any
}

func init() {
	for _, v := range []any{
		int(0), int8(0), int16(0), int32(0), int64(0),
		uint(0), uint8(0), uint16(0), uint32(0), uint64(0),
		float32(0), float64(0), false, "",
		[]byte(nil), []int(nil), []int64(nil), []float64(nil), []string(nil),
		[]any(nil), map[string]any(nil), map[string]int(nil),
		map[string]float64(nil), map[string]string(nil),
		time.Duration(0),
	} {
		gob.Register(v)
	}
}

// RegisterType registers a concrete value type with the checkpoint
// codec (a passthrough to gob.Register). Call it for every task-result
// type the workflow produces that is not a pre-registered basic type.
func RegisterType(v any) { gob.Register(v) }

// EncodeValue serialises a produced value for the snapshot catalog. It
// reports false — not an error — for values the codec cannot represent
// (unregistered concrete types, channels, functions): the producing
// task will re-run on restore instead.
func EncodeValue(v any) ([]byte, bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(box{V: v}); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// DecodeValue deserialises a catalog value. It reports false for bytes
// that do not decode (e.g. a type registered when the snapshot was
// written but not in this process).
func DecodeValue(b []byte) (any, bool) {
	var bx box
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&bx); err != nil {
		return nil, false
	}
	return bx.V, true
}
