package checkpoint

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Mode selects when snapshots are taken.
type Mode int

// Checkpoint modes.
const (
	// ModeOff disables automatic snapshots (on-demand Save still works).
	ModeOff Mode = iota
	// ModeInterval snapshots every Policy.Every of backend time — virtual
	// time on the simulator, wall time live — through the Timer.
	ModeInterval
	// ModeEveryN snapshots after every Policy.N task completions.
	ModeEveryN
	// ModeOnDrain snapshots once, when the backend reports that all
	// submitted work has finished.
	ModeOnDrain
)

// Policy decides when the checkpointer snapshots.
type Policy struct {
	// Mode selects the trigger; the zero value is ModeOff.
	Mode Mode
	// Every is the ModeInterval period.
	Every time.Duration
	// N is the ModeEveryN completion count.
	N int
}

// Off returns the disabled policy.
func Off() Policy { return Policy{} }

// Interval snapshots every d of backend time.
func Interval(d time.Duration) Policy { return Policy{Mode: ModeInterval, Every: d} }

// EveryN snapshots after every n task completions.
func EveryN(n int) Policy { return Policy{Mode: ModeEveryN, N: n} }

// OnDrain snapshots when the run drains.
func OnDrain() Policy { return Policy{Mode: ModeOnDrain} }

// String returns the policy in the CLI grammar ParsePolicy reads.
func (p Policy) String() string {
	switch p.Mode {
	case ModeInterval:
		return "interval:" + p.Every.String()
	case ModeEveryN:
		return "every:" + strconv.Itoa(p.N)
	case ModeOnDrain:
		return "on-drain"
	default:
		return "off"
	}
}

// ParsePolicy reads the CLI grammar: "off", "interval:<duration>",
// "every:<n>" or "on-drain" (cmd/flowgo-sim's -checkpoint flag).
func ParsePolicy(s string) (Policy, error) {
	switch {
	case s == "" || s == "off":
		return Off(), nil
	case s == "on-drain":
		return OnDrain(), nil
	case strings.HasPrefix(s, "interval:"):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval:"))
		if err != nil || d <= 0 {
			return Policy{}, fmt.Errorf("checkpoint: bad interval %q", s)
		}
		return Interval(d), nil
	case strings.HasPrefix(s, "every:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "every:"))
		if err != nil || n <= 0 {
			return Policy{}, fmt.Errorf("checkpoint: bad completion count %q", s)
		}
		return EveryN(n), nil
	default:
		return Policy{}, fmt.Errorf("checkpoint: unknown policy %q (want off | interval:<d> | every:<n> | on-drain)", s)
	}
}
