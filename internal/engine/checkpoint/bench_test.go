package checkpoint_test

import (
	"testing"

	"repro/internal/engine/checkpoint"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/workloads"
)

// benchSim builds a completed mid-size simulation whose engine state a
// checkpoint capture walks: ~2.3k tasks, full catalog.
func benchSim(b *testing.B) *infra.Sim {
	b.Helper()
	g := workloads.DefaultGWAS()
	g.Chromosomes = 23
	g.ImputationsPerChrom = 100
	specs, stageIn := workloads.GWAS(g)
	pool := resources.NewPool()
	for i := 0; i < 8; i++ {
		_ = pool.Add(resources.NewNode(nodeName(i), resources.MareNostrumNode))
	}
	sim, err := infra.New(infra.Config{
		Pool:    pool,
		Net:     simnet.Continuum(),
		Policy:  sched.MinLoad{},
		StageIn: stageIn,
	}, specs)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		b.Fatal(err)
	}
	return sim
}

func nodeName(i int) string { return "bn" + string(rune('0'+i)) }

// BenchmarkCheckpointSnapshot measures capturing the engine + catalog
// state of a ~2.3k-task run (no disk I/O).
func BenchmarkCheckpointSnapshot(b *testing.B) {
	sim := benchSim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := sim.CheckpointSnapshot()
		if len(snap.Completed) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkCheckpointSave measures the full snapshot → encode → hash →
// atomic-write path.
func BenchmarkCheckpointSave(b *testing.B) {
	sim := benchSim(b)
	store, err := checkpoint.NewStore(b.TempDir(), checkpoint.Keep(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Save(sim.CheckpointSnapshot()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}
