// Package checkpoint persists the scheduling engine's state — completed
// tasks, the ready/pending frontier, the data catalog and activity
// counters — to a versioned, content-addressed on-disk format, and
// replays a snapshot into a fresh engine so a crashed run resumes with
// only its unfinished tasks re-executing. Lineage recovery
// (internal/engine/faults) survives losing a node; this package is the
// durability layer that survives losing the whole process: the paper's
// long-running scientific campaigns (multi-day GWAS sweeps, forecast
// cycles) cannot afford to replay hours of completed work after a
// runtime crash.
//
// The subsystem is backend-agnostic by the same construction as the
// fault subsystem: policies (Off, Interval, EveryN, OnDrain) are driven
// through a Timer — the simulator arms them on its virtual clock
// (liveness-gated, so a self-re-arming interval event cannot keep a
// drained or wedged simulation ticking), the live runtime on a
// wall-clock timer — and both backends implement Source by delegating
// to engine.SnapshotTasks plus their own extras (the live runtime
// attaches gob-encoded output values so futures can be re-seeded on
// restore). Both notify the Checkpointer after each completion and
// before the next placement wave, so an every-N snapshot captures the
// identical post-completion, pre-placement state on either backend —
// the invariant the checkpoint parity suite compares with Equivalent.
//
// On disk a snapshot is a JSON projection (Snapshot) written through
// Store: content-addressed names (snap-<seq>-<sha256:16>.ckpt), atomic
// temp-and-rename writes, format versioning (Format), bounded retention
// (Keep), and a Latest that skips corrupt or truncated files back to
// the previous valid snapshot, so damage costs one checkpoint interval
// rather than the run.
//
// Restore is cooperative and placement-aware: the application
// re-registers the same workflow (same order, so task IDs line up), the
// backend seeds the location registry from the snapshot's catalog —
// keeping replicas on nodes the new pool still holds, and re-staging
// versions whose every recorded node has vanished from the persist tier
// (or, live, from the snapshot's encoded values) onto a surviving node
// ahead of demand — then marks recorded completions through
// engine.RestoreCompleted; the ordinary transfer planner covers any
// later miss. A task whose recorded outputs cannot be restored (value
// not serialisable, no tier holding it) is simply left to re-run —
// restore degrades to recompute, never to wrong answers. The restore
// may therefore target a different pool than the one that snapshotted:
// experiment E15b asserts a shrunk-pool restore recomputes nothing.
package checkpoint

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/deps"
	"repro/internal/engine"
	"repro/internal/transfer"
)

// Format is the snapshot format version. Loaders reject snapshots from a
// different format rather than guessing at field semantics.
const Format = 1

// CatalogKey names one immutable data version inside a snapshot.
type CatalogKey struct {
	Data int64 `json:"data"`
	Ver  int   `json:"ver"`
}

// Key converts the snapshot form back to a transfer.Key.
func (k CatalogKey) Key() transfer.Key {
	return transfer.Key{Data: deps.DataID(k.Data), Ver: k.Ver}
}

// Version converts the snapshot form to the deps version it names.
func (k CatalogKey) Version() deps.Version {
	return deps.Version{Data: deps.DataID(k.Data), Ver: k.Ver}
}

// TaskRecord is one completed task in a snapshot.
type TaskRecord struct {
	// ID is the task's graph-unique ID (stable across restarts as long
	// as the workflow is re-submitted in the same order).
	ID int64 `json:"id"`
	// Epoch is the placement counter at capture time.
	Epoch int `json:"epoch"`
	// Outputs lists the data versions the task produced.
	Outputs []CatalogKey `json:"outputs,omitempty"`
}

// CatalogEntry records one data version: its size, its replica
// locations, and — on the live backend — the encoded value itself.
type CatalogEntry struct {
	Key       CatalogKey `json:"key"`
	Size      int64      `json:"size,omitempty"`
	Locations []string   `json:"locations,omitempty"`
	// Value is the gob-encoded produced value (live backend only; see
	// EncodeValue). Absent values make the producing task re-run on
	// restore rather than resolve to a wrong future.
	Value    []byte `json:"value,omitempty"`
	HasValue bool   `json:"has_value,omitempty"`
}

// Snapshot is one persisted engine state.
type Snapshot struct {
	// Format is the snapshot format version (see Format).
	Format int `json:"format"`
	// Seq is the store-assigned sequence number (monotonic per store).
	Seq int `json:"seq"`
	// At is the engine clock offset when the snapshot was captured
	// (virtual time on the simulator, elapsed wall time live).
	At time.Duration `json:"at"`
	// Completed lists every task that has completed at least once and is
	// not currently mid-re-execution.
	Completed []TaskRecord `json:"completed"`
	// Ready, Running and Pending record the scheduling frontier at
	// capture time: queued-for-placement, holding reservations, and
	// waiting on dependencies respectively. Running and Pending tasks
	// re-run after a restore; the sets exist for diagnostics and for the
	// backend-parity suite.
	Ready   []int64 `json:"ready,omitempty"`
	Running []int64 `json:"running,omitempty"`
	Pending []int64 `json:"pending,omitempty"`
	// Catalog is the data-version catalog (handle → size/locations, plus
	// encoded values on the live backend).
	Catalog []CatalogEntry `json:"catalog,omitempty"`
	// Order is every registered task ID in registration order — the
	// interleaving the four sections above lose. Delta reconstruction
	// needs it to rebuild the sections of a later state in the exact
	// order a direct capture would produce. Snapshots written before the
	// field existed omit it; TaskOrder falls back to ascending IDs.
	Order []int64 `json:"order,omitempty"`
	// Stats are the engine's activity counters at capture time.
	Stats engine.Stats `json:"stats"`
}

// CompletedIDs returns the completed task IDs in snapshot order.
func (s *Snapshot) CompletedIDs() []int64 {
	out := make([]int64, len(s.Completed))
	for i, r := range s.Completed {
		out[i] = r.ID
	}
	return out
}

// TaskOrder returns every task ID in registration order: the Order
// field when present, otherwise all section IDs sorted ascending — both
// backends assign IDs in submission order, so ascending ID equals
// registration order for snapshots predating the field.
func (s *Snapshot) TaskOrder() []int64 {
	if len(s.Order) > 0 {
		return append([]int64(nil), s.Order...)
	}
	ids := make([]int64, 0, len(s.Completed)+len(s.Ready)+len(s.Running)+len(s.Pending))
	for _, r := range s.Completed {
		ids = append(ids, r.ID)
	}
	ids = append(ids, s.Ready...)
	ids = append(ids, s.Running...)
	ids = append(ids, s.Pending...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Capture assembles a snapshot of the engine's current state. reg, when
// non-nil, supplies the data catalog (sizes and replica locations); the
// live backend additionally attaches encoded values afterwards. Capture
// is side-effect-free: it leaves the dirty sets feeding delta captures
// untouched, so parity probes can snapshot at will.
func Capture(e *engine.Engine, reg *transfer.Registry) *Snapshot {
	var entries []transfer.Entry
	if reg != nil {
		entries = reg.Entries()
	}
	return build(e, e.SnapshotTasks(), entries)
}

// CaptureBase is Capture with a dirty-set reset on both the engine and
// the registry: the full snapshot that starts (or compacts) a delta
// chain. The deltas captured after it cover exactly the changes since.
func CaptureBase(e *engine.Engine, reg *transfer.Registry) *Snapshot {
	snaps := e.SnapshotTasksClean()
	var entries []transfer.Entry
	if reg != nil {
		entries = reg.EntriesClean()
	}
	return build(e, snaps, entries)
}

func build(e *engine.Engine, tasks []engine.TaskSnap, entries []transfer.Entry) *Snapshot {
	snap := &Snapshot{Format: Format, At: e.Now(), Stats: e.Stats()}
	if len(tasks) > 0 {
		snap.Order = make([]int64, 0, len(tasks))
	}
	for _, ts := range tasks {
		snap.Order = append(snap.Order, ts.ID)
		switch {
		case ts.Completed && ts.State == engine.Done:
			rec := TaskRecord{ID: ts.ID, Epoch: ts.Epoch}
			for _, k := range ts.OutputKeys {
				rec.Outputs = append(rec.Outputs, CatalogKey{Data: int64(k.Data), Ver: k.Ver})
			}
			snap.Completed = append(snap.Completed, rec)
		case ts.State == engine.Ready:
			snap.Ready = append(snap.Ready, ts.ID)
		case ts.State == engine.Running:
			snap.Running = append(snap.Running, ts.ID)
		default:
			snap.Pending = append(snap.Pending, ts.ID)
		}
	}
	for _, en := range entries {
		snap.Catalog = append(snap.Catalog, CatalogEntry{
			Key:       CatalogKey{Data: int64(en.Key.Data), Ver: en.Key.Ver},
			Size:      en.Size,
			Locations: en.Locations,
		})
	}
	return snap
}

// Equivalent reports whether two snapshots describe the same logical
// engine state: completed set, scheduling frontier, catalog keys, sizes
// and locations, and the deterministic activity counters. Clock offsets,
// sequence numbers and encoded values are ignored — they legitimately
// differ between a wall-clock and a virtual-time backend. It returns nil
// or an error naming the first difference; the backend-parity suite runs
// on it.
func Equivalent(a, b *Snapshot) error {
	if len(a.Completed) != len(b.Completed) {
		return fmt.Errorf("completed counts differ: %d vs %d", len(a.Completed), len(b.Completed))
	}
	for i := range a.Completed {
		ra, rb := a.Completed[i], b.Completed[i]
		if ra.ID != rb.ID {
			return fmt.Errorf("completed[%d]: task %d vs %d", i, ra.ID, rb.ID)
		}
		if len(ra.Outputs) != len(rb.Outputs) {
			return fmt.Errorf("completed task %d: %d vs %d outputs", ra.ID, len(ra.Outputs), len(rb.Outputs))
		}
		for j := range ra.Outputs {
			if ra.Outputs[j] != rb.Outputs[j] {
				return fmt.Errorf("completed task %d output %d: %+v vs %+v", ra.ID, j, ra.Outputs[j], rb.Outputs[j])
			}
		}
	}
	for _, set := range []struct {
		name string
		x, y []int64
	}{{"ready", a.Ready, b.Ready}, {"running", a.Running, b.Running}, {"pending", a.Pending, b.Pending}} {
		if len(set.x) != len(set.y) {
			return fmt.Errorf("%s sets differ: %v vs %v", set.name, set.x, set.y)
		}
		for i := range set.x {
			if set.x[i] != set.y[i] {
				return fmt.Errorf("%s sets differ: %v vs %v", set.name, set.x, set.y)
			}
		}
	}
	if len(a.Catalog) != len(b.Catalog) {
		return fmt.Errorf("catalog sizes differ: %d vs %d", len(a.Catalog), len(b.Catalog))
	}
	for i := range a.Catalog {
		ca, cb := a.Catalog[i], b.Catalog[i]
		if ca.Key != cb.Key {
			return fmt.Errorf("catalog[%d]: key %+v vs %+v", i, ca.Key, cb.Key)
		}
		// A zero size means "unknown on this backend" (the simulator
		// leaves undeclared outputs unsized; the live runtime measures
		// the produced value) and is compatible with any measurement.
		if ca.Size != cb.Size && ca.Size != 0 && cb.Size != 0 {
			return fmt.Errorf("catalog[%d] %+v: size %d vs %d", i, ca.Key, ca.Size, cb.Size)
		}
		if len(ca.Locations) != len(cb.Locations) {
			return fmt.Errorf("catalog %+v: locations %v vs %v", ca.Key, ca.Locations, cb.Locations)
		}
		for j := range ca.Locations {
			if ca.Locations[j] != cb.Locations[j] {
				return fmt.Errorf("catalog %+v: locations %v vs %v", ca.Key, ca.Locations, cb.Locations)
			}
		}
	}
	sa, sb := a.Stats, b.Stats
	if sa.Launched != sb.Launched || sa.Completed != sb.Completed ||
		sa.Restored != sb.Restored || sa.Reexecuted != sb.Reexecuted ||
		sa.Steals != sb.Steals || sa.Transfers != sb.Transfers ||
		sa.BytesMoved != sb.BytesMoved || sa.TransferTime != sb.TransferTime ||
		sa.RanMissing != sb.RanMissing || sa.Deferred != sb.Deferred ||
		sa.Woken != sb.Woken || sa.AvailRecomputes != sb.AvailRecomputes {
		return fmt.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
	return nil
}
