// Delta snapshots — the O(changes) half of the checkpoint subsystem.
// A full Snapshot walks every task and every catalog row; on a
// million-task graph that is a million-record JSON encode per interval
// even when almost nothing moved since the last capture. A Delta records
// only what changed: the engine's dirty set (tasks whose lifecycle
// state, epoch or completed flag moved since the last capture), the
// tasks registered since then, and the catalog rows the registry marked
// dirty. Every record is an ABSOLUTE state replacement, not an edit —
// applying a delta means overwriting the task's (or key's) whole record
// — which buys two structural properties for free:
//
//   - applying any valid suffix of a chain is idempotent and
//     order-insensitive per record (last writer wins), so a capture
//     racing ordinary engine progress is linearisable: a change lands in
//     this delta or the next, never half in each;
//   - a mid-chain full snapshot is harmless — it subsumes the chain so
//     far and resets it.
//
// On disk a delta is delta-<seq>-<digest>.ckpt, chained to its parent
// file (base or previous delta) by ParentSeq over the store's single
// monotonic sequence. Store.Latest reconstructs the newest state by a
// forward pass: each valid base resets the merge, each valid delta whose
// ParentSeq matches the last-applied file extends it, and a corrupt or
// missing link freezes the reconstruction at the longest valid prefix —
// damage costs the tail of one chain, never the run. Compaction is the
// Checkpointer writing a fresh base every CompactEvery deltas, which
// both bounds reconstruction work and gives retention a safe pruning
// unit (whole chains; see Store.pruneLocked).
package checkpoint

import (
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/transfer"
)

// DeltaTask is one task's absolute checkpoint record inside a delta:
// enough to re-classify the task into a snapshot's sections, replacing
// whatever an earlier element of the chain said about it.
type DeltaTask struct {
	// ID is the task's graph-unique ID.
	ID int64 `json:"id"`
	// State is the engine lifecycle state at capture time.
	State engine.State `json:"state"`
	// Epoch is the placement counter at capture time.
	Epoch int `json:"epoch"`
	// Completed reports whether the task has completed at least once.
	Completed bool `json:"completed"`
	// Outputs lists the data versions the task produces.
	Outputs []CatalogKey `json:"outputs,omitempty"`
}

// Delta is one incremental checkpoint: the state changes since the
// parent file of the chain.
type Delta struct {
	// Format is the snapshot format version (shared with Snapshot).
	Format int `json:"format"`
	// Seq is the store-assigned sequence number (same counter as full
	// snapshots; the chain is an interval of it).
	Seq int `json:"seq"`
	// ParentSeq is the sequence number of the file this delta extends —
	// the previous save, base or delta. Reconstruction applies a delta
	// only onto exactly that state; anything else means a link is missing
	// and the chain is broken from here on.
	ParentSeq int `json:"parent_seq"`
	// At is the engine clock offset at capture time.
	At time.Duration `json:"at"`
	// Tasks are the absolute records of every task whose snapshot-
	// relevant state changed since the parent, sorted by ID.
	Tasks []DeltaTask `json:"tasks,omitempty"`
	// Added lists the tasks registered since the parent, in registration
	// order; reconstruction appends them to the base snapshot's ordering.
	// Every added task also has a record in Tasks.
	Added []int64 `json:"added,omitempty"`
	// Catalog holds the absolute replacement rows for every catalog key
	// whose entry changed, sorted by key. A row with zero size and no
	// locations means the entry vanished.
	Catalog []CatalogEntry `json:"catalog,omitempty"`
	// Stats are the engine's activity counters at capture time
	// (absolute, like every other field).
	Stats engine.Stats `json:"stats"`
}

// Empty reports whether the delta carries no changes at all — the
// capture an idle interval produces, which the Checkpointer skips.
func (d *Delta) Empty() bool {
	return len(d.Tasks) == 0 && len(d.Added) == 0 && len(d.Catalog) == 0
}

// CaptureDelta drains the engine's and registry's dirty sets into a
// delta. The drain clears both sets, so consecutive captures see only
// what changed in between; an idle interval yields an Empty delta.
func CaptureDelta(e *engine.Engine, reg *transfer.Registry) *Delta {
	snaps, added := e.TakeDirty()
	d := &Delta{Format: Format, At: e.Now(), Stats: e.Stats(), Added: added}
	for _, ts := range snaps {
		dt := DeltaTask{ID: ts.ID, State: ts.State, Epoch: ts.Epoch, Completed: ts.Completed}
		for _, k := range ts.OutputKeys {
			dt.Outputs = append(dt.Outputs, CatalogKey{Data: int64(k.Data), Ver: k.Ver})
		}
		d.Tasks = append(d.Tasks, dt)
	}
	if reg != nil {
		for _, en := range reg.TakeDirty() {
			d.Catalog = append(d.Catalog, CatalogEntry{
				Key:       CatalogKey{Data: int64(en.Key.Data), Ver: en.Key.Ver},
				Size:      en.Size,
				Locations: en.Locations,
			})
		}
	}
	return d
}

// merger reconstructs a snapshot from a base plus a chain of deltas.
type merger struct {
	order   []int64
	known   map[int64]struct{}
	tasks   map[int64]DeltaTask
	catalog map[CatalogKey]CatalogEntry
	seq     int
	at      time.Duration
	stats   engine.Stats
}

// newMerger seeds the reconstruction from a valid base snapshot.
func newMerger(base *Snapshot) *merger {
	m := &merger{
		known:   make(map[int64]struct{}),
		tasks:   make(map[int64]DeltaTask),
		catalog: make(map[CatalogKey]CatalogEntry),
		seq:     base.Seq,
		at:      base.At,
		stats:   base.Stats,
	}
	for _, r := range base.Completed {
		m.tasks[r.ID] = DeltaTask{ID: r.ID, State: engine.Done, Epoch: r.Epoch, Completed: true, Outputs: r.Outputs}
	}
	for _, id := range base.Ready {
		m.tasks[id] = DeltaTask{ID: id, State: engine.Ready}
	}
	for _, id := range base.Running {
		m.tasks[id] = DeltaTask{ID: id, State: engine.Running}
	}
	for _, id := range base.Pending {
		m.tasks[id] = DeltaTask{ID: id, State: engine.Pending}
	}
	m.order = base.TaskOrder()
	for _, id := range m.order {
		m.known[id] = struct{}{}
	}
	for _, en := range base.Catalog {
		m.catalog[en.Key] = en
	}
	return m
}

// apply overlays one delta (records are absolute, so overlay = replace).
func (m *merger) apply(d *Delta) {
	for _, id := range d.Added {
		if _, dup := m.known[id]; dup {
			continue
		}
		m.known[id] = struct{}{}
		m.order = append(m.order, id)
	}
	for _, dt := range d.Tasks {
		if _, ok := m.known[dt.ID]; !ok {
			// A record for a task the chain never registered: tolerate it
			// (absolute records make it safe) by appending to the order.
			m.known[dt.ID] = struct{}{}
			m.order = append(m.order, dt.ID)
		}
		m.tasks[dt.ID] = dt
	}
	for _, en := range d.Catalog {
		if en.Size == 0 && len(en.Locations) == 0 && !en.HasValue {
			delete(m.catalog, en.Key) // the entry vanished
			continue
		}
		m.catalog[en.Key] = en
	}
	m.seq = d.Seq
	m.at = d.At
	m.stats = d.Stats
}

// snapshot emits the merged state in the exact shape a direct Capture of
// the same engine state would produce: sections in registration order,
// catalog sorted by key.
func (m *merger) snapshot() *Snapshot {
	snap := &Snapshot{Format: Format, Seq: m.seq, At: m.at, Stats: m.stats}
	if len(m.order) > 0 {
		snap.Order = append([]int64(nil), m.order...)
	}
	for _, id := range m.order {
		dt := m.tasks[id]
		switch {
		case dt.Completed && dt.State == engine.Done:
			snap.Completed = append(snap.Completed, TaskRecord{ID: dt.ID, Epoch: dt.Epoch, Outputs: dt.Outputs})
		case dt.State == engine.Ready:
			snap.Ready = append(snap.Ready, id)
		case dt.State == engine.Running:
			snap.Running = append(snap.Running, id)
		default:
			snap.Pending = append(snap.Pending, id)
		}
	}
	if len(m.catalog) > 0 {
		keys := make([]CatalogKey, 0, len(m.catalog))
		for k := range m.catalog {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return catalogKeyLess(keys[i], keys[j]) })
		for _, k := range keys {
			snap.Catalog = append(snap.Catalog, m.catalog[k])
		}
	}
	return snap
}

func catalogKeyLess(a, b CatalogKey) bool {
	if a.Data != b.Data {
		return a.Data < b.Data
	}
	return a.Ver < b.Ver
}
