package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// chainBase builds a base snapshot: task 1 completed (output 1v1 on n0),
// task 2 ready, task 3 pending.
func chainBase() *Snapshot {
	return &Snapshot{
		Format: Format, At: time.Second,
		Order:     []int64{1, 2, 3},
		Completed: []TaskRecord{{ID: 1, Epoch: 1, Outputs: []CatalogKey{{Data: 1, Ver: 1}}}},
		Ready:     []int64{2},
		Pending:   []int64{3},
		Catalog: []CatalogEntry{{
			Key: CatalogKey{Data: 1, Ver: 1}, Size: 10, Locations: []string{"n0"},
		}},
		Stats: engine.Stats{Completed: 1},
	}
}

// doneRecord is a delta record marking id completed with output (id,1).
func doneRecord(id int64) DeltaTask {
	return DeltaTask{
		ID: id, State: engine.Done, Epoch: 1, Completed: true,
		Outputs: []CatalogKey{{Data: id, Ver: 1}},
	}
}

func TestDeltaChainLatestReconstruction(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(chainBase()); err != nil {
		t.Fatal(err)
	}
	// Delta 1: task 2 completes, its output lands in the catalog.
	d1 := &Delta{
		Format: Format, At: 2 * time.Second,
		Tasks: []DeltaTask{doneRecord(2), {ID: 3, State: engine.Ready}},
		Catalog: []CatalogEntry{{
			Key: CatalogKey{Data: 2, Ver: 1}, Size: 5, Locations: []string{"n1"},
		}},
		Stats: engine.Stats{Completed: 2},
	}
	if _, err := store.SaveDelta(d1); err != nil {
		t.Fatal(err)
	}
	// Delta 2: task 4 registered and ready; 1v1's entry vanishes
	// (tombstone row: zero size, no locations).
	d2 := &Delta{
		Format: Format, At: 3 * time.Second,
		Added:   []int64{4},
		Tasks:   []DeltaTask{{ID: 4, State: engine.Ready}},
		Catalog: []CatalogEntry{{Key: CatalogKey{Data: 1, Ver: 1}}},
		Stats:   engine.Stats{Completed: 2},
	}
	if _, err := store.SaveDelta(d2); err != nil {
		t.Fatal(err)
	}

	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 3 || snap.At != 3*time.Second || snap.Stats.Completed != 2 {
		t.Fatalf("head fields: seq=%d at=%v stats=%+v", snap.Seq, snap.At, snap.Stats)
	}
	wantOrder := []int64{1, 2, 3, 4}
	got := snap.TaskOrder()
	if len(got) != len(wantOrder) {
		t.Fatalf("order %v, want %v", got, wantOrder)
	}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("order %v, want %v", got, wantOrder)
		}
	}
	if len(snap.Completed) != 2 || snap.Completed[0].ID != 1 || snap.Completed[1].ID != 2 {
		t.Fatalf("completed %+v", snap.Completed)
	}
	if len(snap.Ready) != 2 || snap.Ready[0] != 3 || snap.Ready[1] != 4 {
		t.Fatalf("ready %v", snap.Ready)
	}
	if len(snap.Catalog) != 1 || snap.Catalog[0].Key != (CatalogKey{Data: 2, Ver: 1}) {
		t.Fatalf("catalog %+v (tombstone not applied?)", snap.Catalog)
	}
}

// corruptFile flips bytes in the middle of the file so the digest check
// fails.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// chainFiles lists the store's checkpoint files by kind, seq-ascending.
func chainFiles(t *testing.T, store *Store) (bases, deltas []string) {
	t.Helper()
	for _, p := range store.Snapshots() {
		if strings.HasPrefix(filepath.Base(p), "delta-") {
			deltas = append(deltas, p)
		} else {
			bases = append(bases, p)
		}
	}
	return bases, deltas
}

func TestDeltaCorruptionFreezesChainAtValidPrefix(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(chainBase()); err != nil {
		t.Fatal(err)
	}
	// Three deltas completing tasks 2, 3, 4 (4 added in its delta).
	for i, d := range []*Delta{
		{Format: Format, Tasks: []DeltaTask{doneRecord(2)}, Stats: engine.Stats{Completed: 2}},
		{Format: Format, Tasks: []DeltaTask{doneRecord(3)}, Stats: engine.Stats{Completed: 3}},
		{Format: Format, Added: []int64{4}, Tasks: []DeltaTask{doneRecord(4)}, Stats: engine.Stats{Completed: 4}},
	} {
		if _, err := store.SaveDelta(d); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}

	_, deltas := chainFiles(t, store)
	if len(deltas) != 3 {
		t.Fatalf("%d delta files, want 3", len(deltas))
	}
	corruptFile(t, deltas[1]) // the middle link

	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	// The chain is frozen after delta 1: tasks 1 and 2 completed; the
	// records of deltas 2 and 3 are unreachable by construction (their
	// ParentSeq can no longer match).
	if len(snap.Completed) != 2 || snap.Seq != 2 {
		t.Fatalf("prefix state: %d completed, seq %d (want 2, 2)", len(snap.Completed), snap.Seq)
	}

	// A corrupt base strands the whole chain: nothing valid remains.
	bases, _ := chainFiles(t, store)
	corruptFile(t, bases[0])
	if _, err := store.Latest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("corrupt base: err %v, want ErrNoSnapshot", err)
	}
}

func TestDeltaMidChainFullSnapshotResetsChain(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(chainBase()); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveDelta(&Delta{Format: Format, Tasks: []DeltaTask{doneRecord(2)}}); err != nil {
		t.Fatal(err)
	}
	// An on-demand full save lands mid-chain (explicit Checkpointer.Save
	// does exactly this). It subsumes the chain so far and resets it.
	full := chainBase()
	full.Completed = append(full.Completed, TaskRecord{ID: 2, Epoch: 1, Outputs: []CatalogKey{{Data: 2, Ver: 1}}})
	full.Ready = nil
	full.At = 5 * time.Second
	if _, err := store.Save(full); err != nil {
		t.Fatal(err)
	}
	// The next delta chains onto the full save.
	if _, err := store.SaveDelta(&Delta{Format: Format, At: 6 * time.Second, Tasks: []DeltaTask{doneRecord(3)}}); err != nil {
		t.Fatal(err)
	}

	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Completed) != 3 || snap.At != 6*time.Second || snap.Seq != 4 {
		t.Fatalf("reconstruction: %d completed, at %v, seq %d", len(snap.Completed), snap.At, snap.Seq)
	}
}

func TestDeltaChainRetentionPrunesWholeChains(t *testing.T) {
	store, err := NewStore(t.TempDir(), Keep(2)) // 2 is the retention minimum
	if err != nil {
		t.Fatal(err)
	}
	// fullWith builds a compacting base recording ids completed.
	fullWith := func(ids ...int64) *Snapshot {
		s := &Snapshot{Format: Format}
		for _, id := range ids {
			s.Completed = append(s.Completed, TaskRecord{ID: id, Epoch: 1})
		}
		return s
	}
	// Chain 1: base + two deltas. All three must survive until enough
	// newer bases exist — pruning mid-chain would break reconstruction.
	if _, err := store.Save(chainBase()); err != nil {
		t.Fatal(err)
	}
	for _, d := range []*Delta{
		{Format: Format, Tasks: []DeltaTask{doneRecord(2)}},
		{Format: Format, Tasks: []DeltaTask{doneRecord(3)}},
	} {
		if _, err := store.SaveDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	// Chain 2: a compacting base plus one delta. Two bases on disk is
	// within the budget, so chain 1 still stands.
	if _, err := store.Save(fullWith(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveDelta(&Delta{Format: Format, Added: []int64{4}, Tasks: []DeltaTask{doneRecord(4)}}); err != nil {
		t.Fatal(err)
	}
	if files := store.Snapshots(); len(files) != 5 {
		t.Fatalf("two chains: %d files on disk, want 5 (no mid-chain pruning)", len(files))
	}
	// Chain 3: the third base pushes chain 1 past the budget — the whole
	// chain goes, never a base out from under live deltas.
	if _, err := store.Save(fullWith(1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveDelta(&Delta{Format: Format, Added: []int64{5}, Tasks: []DeltaTask{doneRecord(5)}}); err != nil {
		t.Fatal(err)
	}

	bases, deltas := chainFiles(t, store)
	if len(bases) != 2 || len(deltas) != 2 {
		t.Fatalf("after pruning: %d bases + %d deltas on disk, want 2 + 2", len(bases), len(deltas))
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Completed) != 5 {
		t.Fatalf("reconstruction after prune: %d completed, want 5", len(snap.Completed))
	}
}

// fakeDeltaSource drives the Checkpointer's change-aware save logic
// without an engine: dirty is the pending change count, and captures
// drain it exactly like the real backends do.
type fakeDeltaSource struct {
	dirty     int
	completed int64 // grows as "changes" are flushed into records
}

func (f *fakeDeltaSource) CheckpointSnapshot() *Snapshot {
	return &Snapshot{Format: Format, Stats: engine.Stats{Completed: int(f.completed)}}
}

func (f *fakeDeltaSource) CheckpointBase() *Snapshot {
	f.completed += int64(f.dirty)
	f.dirty = 0
	return &Snapshot{Format: Format, Stats: engine.Stats{Completed: int(f.completed)}}
}

func (f *fakeDeltaSource) CheckpointDelta() *Delta {
	d := &Delta{Format: Format}
	for i := 0; i < f.dirty; i++ {
		f.completed++
		d.Tasks = append(d.Tasks, doneRecord(f.completed))
	}
	f.dirty = 0
	d.Stats = engine.Stats{Completed: int(f.completed)}
	return d
}

func (f *fakeDeltaSource) CheckpointDirty() int { return f.dirty }

func TestCheckpointerDeltaCadenceAndSkip(t *testing.T) {
	store, err := NewStore(t.TempDir(), Keep(1000))
	if err != nil {
		t.Fatal(err)
	}
	src := &fakeDeltaSource{}
	c := NewCheckpointer(Config{
		Store: store, Policy: EveryN(1), Delta: true, CompactEvery: 2,
	}, src)
	defer c.Stop()

	complete := func(changes int) {
		src.dirty += changes
		c.TaskCompleted()
	}
	complete(1) // first save: base
	complete(1) // delta (chain length 1)
	complete(1) // delta (chain length 2 = CompactEvery)
	complete(1) // compaction: base
	complete(0) // idle trigger: skipped outright
	complete(1) // delta on the new chain

	// Saves counts every persisted file; 2 of the 5 are bases.
	if c.Saves() != 5 || c.DeltaSaves() != 3 || c.Skipped() != 1 {
		t.Fatalf("saves=%d deltaSaves=%d skipped=%d, want 5/3/1",
			c.Saves(), c.DeltaSaves(), c.Skipped())
	}
	bases, deltas := chainFiles(t, store)
	if len(bases) != 2 || len(deltas) != 3 {
		t.Fatalf("%d bases + %d deltas on disk, want 2 + 3", len(bases), len(deltas))
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Stats.Completed != 5 {
		t.Fatalf("reconstructed %d completions, want 5", snap.Stats.Completed)
	}
}

func TestCheckpointerFullModeSkipsCleanIntervals(t *testing.T) {
	store, err := NewStore(t.TempDir(), Keep(1000))
	if err != nil {
		t.Fatal(err)
	}
	src := &fakeDeltaSource{}
	c := NewCheckpointer(Config{Store: store, Policy: EveryN(1)}, src)
	defer c.Stop()

	src.dirty = 1
	c.TaskCompleted() // full save
	c.TaskCompleted() // clean: skipped, no file
	src.dirty = 1
	c.TaskCompleted() // full save

	if c.Saves() != 2 || c.DeltaSaves() != 0 || c.Skipped() != 1 {
		t.Fatalf("saves=%d deltaSaves=%d skipped=%d, want 2/0/1",
			c.Saves(), c.DeltaSaves(), c.Skipped())
	}
	if files := store.Snapshots(); len(files) != 2 {
		t.Fatalf("%d files on disk, want 2", len(files))
	}
}
