// The on-disk snapshot store: versioned, content-addressed, atomic.
// Each snapshot is one JSON file named snap-<seq>-<digest>.ckpt, where
// the digest is the truncated SHA-256 of the file's contents — the name
// is a self-certifying claim the loader re-verifies, so a torn write, a
// truncation or any bit-rot is detected and the loader falls back to the
// previous valid snapshot instead of restoring garbage. Writes go
// through a temp file and a rename, so a crash mid-save never corrupts
// an existing snapshot.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Errors reported by the store.
var (
	// ErrNoSnapshot is returned by Latest when the directory holds no
	// valid snapshot.
	ErrNoSnapshot = errors.New("checkpoint: no valid snapshot found")
	// ErrCorrupt is returned by Load for a snapshot whose contents do not
	// match the digest in its name, cannot be parsed, or carry an
	// unknown format version.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
)

// digestLen is the number of hex characters of the SHA-256 kept in the
// file name.
const digestLen = 16

// Store reads and writes snapshots in one directory. It is safe for
// concurrent use.
type Store struct {
	dir  string
	keep int

	mu  sync.Mutex
	seq int
}

// StoreOption tunes NewStore.
type StoreOption func(*Store)

// Keep sets how many snapshots are retained on disk (older ones are
// pruned after each save; default 5, minimum 2 so a corrupted latest
// always has a fallback).
func Keep(n int) StoreOption {
	return func(s *Store) { s.keep = n }
}

// NewStore opens (creating if needed) a snapshot directory. Existing
// snapshots are scanned so sequence numbers continue monotonically
// across process restarts.
func NewStore(dir string, opts ...StoreOption) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir, keep: 5}
	for _, o := range opts {
		o(s)
	}
	if s.keep < 2 {
		s.keep = 2
	}
	for _, f := range s.list() {
		if f.seq > s.seq {
			s.seq = f.seq
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// snapFile is one parsed directory entry: a full snapshot ("snap-"
// prefix) or a delta ("delta-" prefix).
type snapFile struct {
	name   string
	seq    int
	digest string
	delta  bool
}

// list returns the checkpoint files in the directory — full snapshots
// and deltas — sorted by sequence number ascending. Unparseable names
// are ignored.
func (s *Store) list() []snapFile {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []snapFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		var rest string
		var delta bool
		switch {
		case strings.HasPrefix(name, "snap-"):
			rest = strings.TrimPrefix(name, "snap-")
		case strings.HasPrefix(name, "delta-"):
			rest, delta = strings.TrimPrefix(name, "delta-"), true
		default:
			continue
		}
		parts := strings.Split(strings.TrimSuffix(rest, ".ckpt"), "-")
		if len(parts) != 2 {
			continue
		}
		seq, err := strconv.Atoi(parts[0])
		if err != nil {
			continue
		}
		out = append(out, snapFile{name: name, seq: seq, digest: parts[1], delta: delta})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Save assigns the snapshot the next sequence number and persists it
// atomically, returning the file path. Snapshots beyond the retention
// count are pruned, oldest first.
func (s *Store) Save(snap *Snapshot) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	snap.Seq = s.seq
	snap.Format = Format
	data, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("checkpoint: encode: %w", err)
	}
	sum := sha256.Sum256(data)
	name := fmt.Sprintf("snap-%06d-%s.ckpt", snap.Seq, hex.EncodeToString(sum[:])[:digestLen])
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: commit: %w", err)
	}
	s.pruneLocked()
	return path, nil
}

// SaveDelta persists one delta, chained to the store's newest file (base
// or delta) through ParentSeq, using the same atomic temp-and-rename and
// content-addressed naming as Save. The caller guarantees a base was
// saved to this store first — a delta with no base beneath it can never
// be reconstructed.
func (s *Store) SaveDelta(d *Delta) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d.ParentSeq = s.seq
	s.seq++
	d.Seq = s.seq
	d.Format = Format
	data, err := json.Marshal(d)
	if err != nil {
		return "", fmt.Errorf("checkpoint: encode delta: %w", err)
	}
	sum := sha256.Sum256(data)
	name := fmt.Sprintf("delta-%06d-%s.ckpt", d.Seq, hex.EncodeToString(sum[:])[:digestLen])
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("checkpoint: write delta: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: commit delta: %w", err)
	}
	s.pruneLocked()
	return path, nil
}

// pruneLocked bounds retention. The pruning unit is a chain — a base
// snapshot plus the deltas hanging off it — because deleting a base out
// from under its deltas would break reconstruction: everything strictly
// older than the keep-th newest base is removed, deltas older than the
// oldest base with it. Deltas never count against the retention budget.
func (s *Store) pruneLocked() {
	files := s.list()
	var baseSeqs []int
	for _, f := range files {
		if !f.delta {
			baseSeqs = append(baseSeqs, f.seq)
		}
	}
	if len(baseSeqs) <= s.keep {
		return
	}
	floor := baseSeqs[len(baseSeqs)-s.keep]
	for _, f := range files {
		if f.seq < floor {
			_ = os.Remove(filepath.Join(s.dir, f.name))
		}
	}
}

// Load reads and verifies one snapshot file: the contents must hash to
// the digest embedded in the name, parse as JSON, and carry the current
// format version.
func (s *Store) Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	name := filepath.Base(path)
	parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".ckpt"), "-")
	if len(parts) != 2 {
		return nil, fmt.Errorf("%w: unrecognised name %q", ErrCorrupt, name)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:])[:digestLen] != parts[1] {
		return nil, fmt.Errorf("%w: %s: digest mismatch", ErrCorrupt, name)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	if snap.Format != Format {
		return nil, fmt.Errorf("%w: %s: format %d, want %d", ErrCorrupt, name, snap.Format, Format)
	}
	return &snap, nil
}

// LoadDelta reads and verifies one delta file: contents must hash to the
// digest in the name, parse, and carry the current format version.
func (s *Store) LoadDelta(path string) (*Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	name := filepath.Base(path)
	parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "delta-"), ".ckpt"), "-")
	if len(parts) != 2 {
		return nil, fmt.Errorf("%w: unrecognised name %q", ErrCorrupt, name)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:])[:digestLen] != parts[1] {
		return nil, fmt.Errorf("%w: %s: digest mismatch", ErrCorrupt, name)
	}
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	if d.Format != Format {
		return nil, fmt.Errorf("%w: %s: format %d, want %d", ErrCorrupt, name, d.Format, Format)
	}
	return &d, nil
}

// Latest returns the newest reconstructible state: a forward pass over
// the directory in sequence order, where every valid base snapshot
// resets the reconstruction and every valid delta whose ParentSeq
// matches the last-applied file extends it. Corruption degrades, never
// fails outright: a corrupt delta freezes the chain at the longest valid
// prefix (a later delta's ParentSeq cannot match, so the tail is
// unreachable by construction); a corrupt base strands its own deltas
// and falls back to the previous chain's reconstruction. A directory of
// plain full snapshots behaves exactly as before deltas existed: each
// valid snapshot replaces the candidate, so the newest valid one wins.
// It returns ErrNoSnapshot when nothing valid remains.
func (s *Store) Latest() (*Snapshot, error) {
	files := s.list()
	var m *merger
	for _, f := range files {
		path := filepath.Join(s.dir, f.name)
		if f.delta {
			d, err := s.LoadDelta(path)
			if err != nil || m == nil || d.ParentSeq != m.seq {
				continue
			}
			m.apply(d)
			continue
		}
		snap, err := s.Load(path)
		if err != nil {
			continue
		}
		m = newMerger(snap)
	}
	if m == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSnapshot, s.dir)
	}
	return m.snapshot(), nil
}

// Snapshots returns the paths of all snapshot files, sequence-ascending
// (validity not checked; see Load).
func (s *Store) Snapshots() []string {
	var out []string
	for _, f := range s.list() {
		out = append(out, filepath.Join(s.dir, f.name))
	}
	return out
}
