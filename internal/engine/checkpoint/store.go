// The on-disk snapshot store: versioned, content-addressed, atomic.
// Each snapshot is one JSON file named snap-<seq>-<digest>.ckpt, where
// the digest is the truncated SHA-256 of the file's contents — the name
// is a self-certifying claim the loader re-verifies, so a torn write, a
// truncation or any bit-rot is detected and the loader falls back to the
// previous valid snapshot instead of restoring garbage. Writes go
// through a temp file and a rename, so a crash mid-save never corrupts
// an existing snapshot.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Errors reported by the store.
var (
	// ErrNoSnapshot is returned by Latest when the directory holds no
	// valid snapshot.
	ErrNoSnapshot = errors.New("checkpoint: no valid snapshot found")
	// ErrCorrupt is returned by Load for a snapshot whose contents do not
	// match the digest in its name, cannot be parsed, or carry an
	// unknown format version.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
)

// digestLen is the number of hex characters of the SHA-256 kept in the
// file name.
const digestLen = 16

// Store reads and writes snapshots in one directory. It is safe for
// concurrent use.
type Store struct {
	dir  string
	keep int

	mu  sync.Mutex
	seq int
}

// StoreOption tunes NewStore.
type StoreOption func(*Store)

// Keep sets how many snapshots are retained on disk (older ones are
// pruned after each save; default 5, minimum 2 so a corrupted latest
// always has a fallback).
func Keep(n int) StoreOption {
	return func(s *Store) { s.keep = n }
}

// NewStore opens (creating if needed) a snapshot directory. Existing
// snapshots are scanned so sequence numbers continue monotonically
// across process restarts.
func NewStore(dir string, opts ...StoreOption) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{dir: dir, keep: 5}
	for _, o := range opts {
		o(s)
	}
	if s.keep < 2 {
		s.keep = 2
	}
	for _, f := range s.list() {
		if f.seq > s.seq {
			s.seq = f.seq
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// snapFile is one parsed directory entry.
type snapFile struct {
	name   string
	seq    int
	digest string
}

// list returns the snapshot files in the directory, sorted by sequence
// number ascending. Unparseable names are ignored.
func (s *Store) list() []snapFile {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []snapFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".ckpt"), "-")
		if len(parts) != 2 {
			continue
		}
		seq, err := strconv.Atoi(parts[0])
		if err != nil {
			continue
		}
		out = append(out, snapFile{name: name, seq: seq, digest: parts[1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Save assigns the snapshot the next sequence number and persists it
// atomically, returning the file path. Snapshots beyond the retention
// count are pruned, oldest first.
func (s *Store) Save(snap *Snapshot) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	snap.Seq = s.seq
	snap.Format = Format
	data, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("checkpoint: encode: %w", err)
	}
	sum := sha256.Sum256(data)
	name := fmt.Sprintf("snap-%06d-%s.ckpt", snap.Seq, hex.EncodeToString(sum[:])[:digestLen])
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: commit: %w", err)
	}
	files := s.list()
	for len(files) > s.keep {
		_ = os.Remove(filepath.Join(s.dir, files[0].name))
		files = files[1:]
	}
	return path, nil
}

// Load reads and verifies one snapshot file: the contents must hash to
// the digest embedded in the name, parse as JSON, and carry the current
// format version.
func (s *Store) Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	name := filepath.Base(path)
	parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".ckpt"), "-")
	if len(parts) != 2 {
		return nil, fmt.Errorf("%w: unrecognised name %q", ErrCorrupt, name)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:])[:digestLen] != parts[1] {
		return nil, fmt.Errorf("%w: %s: digest mismatch", ErrCorrupt, name)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
	}
	if snap.Format != Format {
		return nil, fmt.Errorf("%w: %s: format %d, want %d", ErrCorrupt, name, snap.Format, Format)
	}
	return &snap, nil
}

// Latest returns the newest valid snapshot, skipping over corrupt or
// truncated files to the previous valid one — a crash mid-write (or
// on-disk damage) costs one checkpoint interval, not the whole run. It
// returns ErrNoSnapshot when nothing valid remains.
func (s *Store) Latest() (*Snapshot, error) {
	files := s.list()
	for i := len(files) - 1; i >= 0; i-- {
		snap, err := s.Load(filepath.Join(s.dir, files[i].name))
		if err == nil {
			return snap, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoSnapshot, s.dir)
}

// Snapshots returns the paths of all snapshot files, sequence-ascending
// (validity not checked; see Load).
func (s *Store) Snapshots() []string {
	var out []string
	for _, f := range s.list() {
		out = append(out, filepath.Join(s.dir, f.name))
	}
	return out
}
