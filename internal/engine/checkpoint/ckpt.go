package checkpoint

import (
	"sync"
	"time"

	"repro/internal/obsv"
	"repro/internal/trace"
)

// Timer schedules a callback at an absolute offset from the run's epoch
// — the same shape as faults.Timer, so *simclock.Clock and
// faults.WallTimer both satisfy it and one checkpoint policy runs
// unchanged on virtual and wall time.
type Timer interface {
	At(t time.Duration, fn func())
}

// Source produces snapshots. Both backends implement it — the simulator
// and the live runtime each capture the shared engine's state plus their
// own extras (the live runtime attaches encoded output values).
type Source interface {
	CheckpointSnapshot() *Snapshot
}

// DeltaSource is the incremental-capture extension of Source. Both
// backends implement it; the Checkpointer uses it when Config.Delta is
// set (for chained delta saves) and — regardless of mode — to skip
// automatic captures when nothing changed since the last one.
type DeltaSource interface {
	Source
	// CheckpointBase captures the full state and resets the dirty sets,
	// starting (or compacting) a delta chain.
	CheckpointBase() *Snapshot
	// CheckpointDelta drains the dirty sets into a delta.
	CheckpointDelta() *Delta
	// CheckpointDirty reports how many records changed since the last
	// base or delta capture — zero means a capture would be a no-op.
	CheckpointDirty() int
}

// DefaultCompactEvery is the delta-chain length at which the
// Checkpointer writes a fresh base when Config.CompactEvery is unset:
// long enough that base cost amortises to a small constant per capture,
// short enough that reconstruction replays a bounded chain.
const DefaultCompactEvery = 8

// Config wires a Checkpointer into a backend.
type Config struct {
	// Store receives snapshots. Required.
	Store *Store
	// Policy decides when snapshots are taken automatically.
	Policy Policy
	// Timer schedules ModeInterval policies. Backends default it to
	// their own clock (virtual time on the simulator, a wall timer
	// live); only set it to override that.
	Timer Timer
	// Tracer, when set, records a CheckpointSaved event per snapshot.
	Tracer *trace.Tracer
	// Delta switches automatic saves to incremental mode: a full base
	// first, then deltas carrying only the changes since the previous
	// save, with a fresh base (compaction) every CompactEvery deltas.
	// Requires the source to implement DeltaSource; on-demand Save and
	// the drain save always write full snapshots.
	Delta bool
	// CompactEvery is the number of consecutive deltas after which the
	// next automatic save writes a full base instead (default
	// DefaultCompactEvery).
	CompactEvery int
	// Metrics, when set, records capture wall time, per-delta dirty-set
	// size and save counts. Capture cost is real serialization work, so
	// it is measured on the wall clock even under the simulator — these
	// are the one engine-metric family that is NOT deterministic in sim
	// (the CI determinism smoke runs checkpoint-free). Optional.
	Metrics *obsv.CkptMetrics
}

// Checkpointer drives a Source against a Store under a Policy. Backends
// call TaskCompleted after every completion and Drained when the run
// finishes; interval policies fire from the Timer on their own. It is
// safe for concurrent use — wall timers fire from their own goroutines.
type Checkpointer struct {
	cfg Config
	src Source

	mu          sync.Mutex
	completions int
	saves       int
	deltaSaves  int // saves that were deltas (subset of saves)
	skipped     int // automatic captures skipped because nothing changed
	chainLen    int // deltas since the last base
	haveBase    bool
	lastSeq     int
	lastErr     error
	stopped     bool
}

// NewCheckpointer returns a checkpointer and, for interval policies,
// arms the first timer callback.
func NewCheckpointer(cfg Config, src Source) *Checkpointer {
	if cfg.Metrics == nil {
		cfg.Metrics = obsv.NewCkptMetrics(nil) // inert: nil instruments discard
	}
	c := &Checkpointer{cfg: cfg, src: src}
	if cfg.Policy.Mode == ModeInterval && cfg.Timer != nil && cfg.Policy.Every > 0 {
		c.arm(cfg.Policy.Every)
	}
	return c
}

// arm schedules the next interval snapshot at the absolute offset next,
// re-arming itself after each firing until Stop.
func (c *Checkpointer) arm(next time.Duration) {
	c.cfg.Timer.At(next, func() {
		c.mu.Lock()
		stopped := c.stopped
		c.mu.Unlock()
		if stopped {
			return
		}
		_ = c.autoSave()
		c.arm(next + c.cfg.Policy.Every)
	})
}

// TaskCompleted notifies the checkpointer of one task completion (the
// ModeEveryN trigger). Backends call it after the engine completion, so
// the snapshot includes the just-finished task.
func (c *Checkpointer) TaskCompleted() {
	if c.cfg.Policy.Mode != ModeEveryN || c.cfg.Policy.N <= 0 {
		return
	}
	c.mu.Lock()
	c.completions++
	due := c.completions%c.cfg.Policy.N == 0
	c.mu.Unlock()
	if due {
		_ = c.autoSave()
	}
}

// Drained notifies the checkpointer that every submitted task has
// finished (the ModeOnDrain trigger).
func (c *Checkpointer) Drained() {
	if c.cfg.Policy.Mode == ModeOnDrain {
		_ = c.Save()
	}
}

// Save captures and persists one full snapshot immediately, regardless
// of policy — the on-demand checkpoint. The capture is side-effect-free
// (dirty sets are left alone), so an explicit Save never perturbs a
// running delta chain: the next delta simply carries a superset of the
// changes, and absolute records make re-application harmless.
func (c *Checkpointer) Save() error {
	start := time.Now()
	snap := c.src.CheckpointSnapshot()
	c.cfg.Metrics.CaptureSeconds.ObserveDuration(time.Since(start))
	return c.commitSnap(snap)
}

// autoSave is the policy-triggered capture path. With a DeltaSource it
// is change-aware: the first save writes a base, an idle trigger (no
// changes since the last capture) is skipped outright instead of paying
// a full graph walk for a no-op snapshot, and — in delta mode — the
// steady state writes chained deltas with a compacting base every
// CompactEvery. Sources without delta support keep the historical
// full-capture-every-trigger behaviour.
func (c *Checkpointer) autoSave() error {
	ds, ok := c.src.(DeltaSource)
	if !ok {
		return c.Save()
	}
	c.mu.Lock()
	compact := c.cfg.CompactEvery
	if compact <= 0 {
		compact = DefaultCompactEvery
	}
	kind := "base"
	switch {
	case !c.haveBase:
		// first capture: a chain needs a base beneath it
	case ds.CheckpointDirty() == 0:
		kind = "skip"
	case c.cfg.Delta && c.chainLen < compact:
		kind = "delta"
	}
	c.mu.Unlock()
	switch kind {
	case "skip":
		c.mu.Lock()
		c.skipped++
		c.mu.Unlock()
		return nil
	case "delta":
		c.cfg.Metrics.DirtyRecords.Observe(float64(ds.CheckpointDirty()))
		start := time.Now()
		d := ds.CheckpointDelta()
		c.cfg.Metrics.CaptureSeconds.ObserveDuration(time.Since(start))
		return c.commitDelta(d)
	default:
		start := time.Now()
		snap := ds.CheckpointBase()
		c.cfg.Metrics.CaptureSeconds.ObserveDuration(time.Since(start))
		return c.commitBase(snap)
	}
}

// commitSnap persists a full snapshot that does NOT reset dirty sets
// (explicit Save); it leaves the chain bookkeeping untouched.
func (c *Checkpointer) commitSnap(snap *Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return nil
	}
	path, err := c.cfg.Store.Save(snap)
	if err != nil {
		c.lastErr = err
		return err
	}
	c.saves++
	c.cfg.Metrics.Saves.Inc()
	c.lastSeq = snap.Seq
	c.traceSavedLocked(snap.At, path)
	return nil
}

// commitBase persists a chain-starting base (dirty sets already reset by
// the capture).
func (c *Checkpointer) commitBase(snap *Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return nil
	}
	path, err := c.cfg.Store.Save(snap)
	if err != nil {
		c.lastErr = err
		return err
	}
	c.saves++
	c.cfg.Metrics.Saves.Inc()
	c.haveBase = true
	c.chainLen = 0
	c.lastSeq = snap.Seq
	c.traceSavedLocked(snap.At, path)
	return nil
}

// commitDelta persists one delta, skipping empty ones (an idle interval
// that raced the dirty check).
func (c *Checkpointer) commitDelta(d *Delta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return nil
	}
	if d.Empty() {
		c.skipped++
		return nil
	}
	path, err := c.cfg.Store.SaveDelta(d)
	if err != nil {
		c.lastErr = err
		return err
	}
	c.saves++
	c.deltaSaves++
	c.cfg.Metrics.Saves.Inc()
	c.cfg.Metrics.DeltaSaves.Inc()
	c.chainLen++
	c.lastSeq = d.Seq
	c.traceSavedLocked(d.At, path)
	return nil
}

func (c *Checkpointer) traceSavedLocked(at time.Duration, path string) {
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Record(trace.Event{
			At: at, Kind: trace.CheckpointSaved, Info: path,
		})
	}
}

// Stop disables further snapshots (armed interval callbacks become
// no-ops). Pending wall timers are not cancelled, only neutered.
func (c *Checkpointer) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
}

// Saves returns how many snapshots have been persisted (full and delta).
func (c *Checkpointer) Saves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saves
}

// DeltaSaves returns how many of the persisted saves were deltas.
func (c *Checkpointer) DeltaSaves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deltaSaves
}

// Skipped returns how many automatic captures were skipped because
// nothing changed since the previous one.
func (c *Checkpointer) Skipped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// LastSeq returns the sequence number of the newest persisted snapshot
// (0 if none).
func (c *Checkpointer) LastSeq() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq
}

// Err returns the most recent save error, if any.
func (c *Checkpointer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}
