package checkpoint

import (
	"sync"
	"time"

	"repro/internal/trace"
)

// Timer schedules a callback at an absolute offset from the run's epoch
// — the same shape as faults.Timer, so *simclock.Clock and
// faults.WallTimer both satisfy it and one checkpoint policy runs
// unchanged on virtual and wall time.
type Timer interface {
	At(t time.Duration, fn func())
}

// Source produces snapshots. Both backends implement it — the simulator
// and the live runtime each capture the shared engine's state plus their
// own extras (the live runtime attaches encoded output values).
type Source interface {
	CheckpointSnapshot() *Snapshot
}

// Config wires a Checkpointer into a backend.
type Config struct {
	// Store receives snapshots. Required.
	Store *Store
	// Policy decides when snapshots are taken automatically.
	Policy Policy
	// Timer schedules ModeInterval policies. Backends default it to
	// their own clock (virtual time on the simulator, a wall timer
	// live); only set it to override that.
	Timer Timer
	// Tracer, when set, records a CheckpointSaved event per snapshot.
	Tracer *trace.Tracer
}

// Checkpointer drives a Source against a Store under a Policy. Backends
// call TaskCompleted after every completion and Drained when the run
// finishes; interval policies fire from the Timer on their own. It is
// safe for concurrent use — wall timers fire from their own goroutines.
type Checkpointer struct {
	cfg Config
	src Source

	mu          sync.Mutex
	completions int
	saves       int
	lastSeq     int
	lastErr     error
	stopped     bool
}

// NewCheckpointer returns a checkpointer and, for interval policies,
// arms the first timer callback.
func NewCheckpointer(cfg Config, src Source) *Checkpointer {
	c := &Checkpointer{cfg: cfg, src: src}
	if cfg.Policy.Mode == ModeInterval && cfg.Timer != nil && cfg.Policy.Every > 0 {
		c.arm(cfg.Policy.Every)
	}
	return c
}

// arm schedules the next interval snapshot at the absolute offset next,
// re-arming itself after each firing until Stop.
func (c *Checkpointer) arm(next time.Duration) {
	c.cfg.Timer.At(next, func() {
		c.mu.Lock()
		stopped := c.stopped
		c.mu.Unlock()
		if stopped {
			return
		}
		_ = c.Save()
		c.arm(next + c.cfg.Policy.Every)
	})
}

// TaskCompleted notifies the checkpointer of one task completion (the
// ModeEveryN trigger). Backends call it after the engine completion, so
// the snapshot includes the just-finished task.
func (c *Checkpointer) TaskCompleted() {
	if c.cfg.Policy.Mode != ModeEveryN || c.cfg.Policy.N <= 0 {
		return
	}
	c.mu.Lock()
	c.completions++
	due := c.completions%c.cfg.Policy.N == 0
	c.mu.Unlock()
	if due {
		_ = c.Save()
	}
}

// Drained notifies the checkpointer that every submitted task has
// finished (the ModeOnDrain trigger).
func (c *Checkpointer) Drained() {
	if c.cfg.Policy.Mode == ModeOnDrain {
		_ = c.Save()
	}
}

// Save captures and persists one snapshot immediately, regardless of
// policy — the on-demand checkpoint.
func (c *Checkpointer) Save() error {
	snap := c.src.CheckpointSnapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return nil
	}
	path, err := c.cfg.Store.Save(snap)
	if err != nil {
		c.lastErr = err
		return err
	}
	c.saves++
	c.lastSeq = snap.Seq
	if c.cfg.Tracer != nil {
		c.cfg.Tracer.Record(trace.Event{
			At: snap.At, Kind: trace.CheckpointSaved, Info: path,
		})
	}
	return nil
}

// Stop disables further snapshots (armed interval callbacks become
// no-ops). Pending wall timers are not cancelled, only neutered.
func (c *Checkpointer) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
}

// Saves returns how many snapshots have been persisted.
func (c *Checkpointer) Saves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saves
}

// LastSeq returns the sequence number of the newest persisted snapshot
// (0 if none).
func (c *Checkpointer) LastSeq() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSeq
}

// Err returns the most recent save error, if any.
func (c *Checkpointer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}
