package engine_test

// Work-stealing parity: the same skewed DAG run through the live runtime
// and the virtual-time simulator with stealing enabled must make the
// identical steal decisions — same stolen tasks, same victim nodes, same
// start order — because the steal phase is engine code shared by both
// backends and its scan order (signature order, tail first, pool
// insertion order) is deterministic. A second scenario crashes the node
// a stolen task runs on and asserts the stolen task re-executes
// correctly on both backends: stealing must not weaken the
// lineage/fault-recovery invariants.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/faults"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// stealParityPool: n0 is the fast tier (HPC, SpeedFactor 1), n1 the slow
// one (fog, SpeedFactor 0.25); one core each, so WaitFast makes long
// tasks queue for n0 while n1 idles — the steal trigger.
func stealParityPool() *resources.Pool {
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("n0", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC,
	}))
	_ = pool.Add(resources.NewNode("n1", resources.Description{
		Cores: 1, MemoryMB: 8000, SpeedFactor: 0.25, Class: resources.Fog,
	}))
	return pool
}

func stealParityPolicy() sched.Policy {
	return sched.WaitFast{Inner: sched.FIFO{}, MaxSlowdown: 2, MinWait: 10 * time.Second}
}

type stealOutcome struct {
	order  []int64
	stolen []int64 // task IDs of task_stolen events, in firing order
	stats  engine.Stats
}

func stolenOrder(tr *trace.Tracer) []int64 {
	var out []int64
	for _, ev := range tr.Events() {
		if ev.Kind == trace.TaskStolen {
			out = append(out, ev.Task)
		}
	}
	return out
}

// The shared DAG: a gate holds the fast node while two long tasks and a
// short one queue in the shared unconstrained bucket. The long head
// declines the slow node and parks the bucket; the short tail is stolen
// onto it. IDs: gate 1, L1 2, L2 3, S1 4.
func runStealDAGSim(t *testing.T) stealOutcome {
	t.Helper()
	tr := trace.New(0)
	specs := []infra.TaskSpec{
		{ID: 1, Class: "gate", Duration: time.Second},
		{ID: 2, Class: "long", Duration: 100 * time.Second},
		{ID: 3, Class: "long", Duration: 100 * time.Second},
		{ID: 4, Class: "short", Duration: time.Second},
	}
	sim, err := infra.New(infra.Config{
		Pool:   stealParityPool(),
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: stealParityPolicy(),
		Tracer: tr,
		Steal:  engine.StealConfig{Mode: engine.StealOnIdle},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return stealOutcome{order: startOrder(tr), stolen: stolenOrder(tr), stats: sim.EngineStats()}
}

func runStealDAGLive(t *testing.T) stealOutcome {
	t.Helper()
	tr := trace.New(0)
	rt := core.New(core.Config{
		Pool:      stealParityPool(),
		Policy:    stealParityPolicy(),
		Tracer:    tr,
		Locations: transfer.NewRegistry(),
		Net:       simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Steal:     engine.StealConfig{Mode: engine.StealOnIdle},
	})
	defer rt.Shutdown()

	release := make(chan struct{})
	mustRegister(t, rt, core.TaskDef{Name: "gate", Fn: func(_ context.Context, _ []any) ([]any, error) {
		<-release
		return nil, nil
	}, EstDuration: time.Second})
	noop := func(_ context.Context, _ []any) ([]any, error) { return nil, nil }
	mustRegister(t, rt, core.TaskDef{Name: "long", Fn: noop, EstDuration: 100 * time.Second})
	mustRegister(t, rt, core.TaskDef{Name: "short", Fn: noop, EstDuration: time.Second})

	// The gate occupies the fast node, so the live backend reaches the
	// same fully-queued state the simulator starts from.
	if _, err := rt.Submit("gate"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"long", "long", "short"} {
		if _, err := rt.Submit(name); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	rt.Barrier()
	return stealOutcome{order: startOrder(tr), stolen: stolenOrder(tr), stats: rt.EngineStats()}
}

func TestStealParity(t *testing.T) {
	sim := runStealDAGSim(t)
	live := runStealDAGLive(t)

	wantOrder := []int64{1, 4, 2, 3} // gate, stolen short, then the longs in bucket order
	for name, got := range map[string][]int64{"sim": sim.order, "live": live.order} {
		if len(got) != len(wantOrder) {
			t.Fatalf("%s start order = %v, want %v", name, got, wantOrder)
		}
		for i := range wantOrder {
			if got[i] != wantOrder[i] {
				t.Fatalf("%s start order = %v, want %v", name, got, wantOrder)
			}
		}
	}
	if len(sim.stolen) != 1 || len(live.stolen) != 1 || sim.stolen[0] != 4 || live.stolen[0] != 4 {
		t.Fatalf("stolen tasks diverge: sim %v vs live %v, want [4] each", sim.stolen, live.stolen)
	}
	if sim.stats.Steals != 1 || live.stats.Steals != 1 {
		t.Fatalf("steal counts: sim %d, live %d, want 1 each", sim.stats.Steals, live.stats.Steals)
	}
	if sim.stats.Launched != live.stats.Launched {
		t.Fatalf("launch counts diverge: sim %d vs live %d", sim.stats.Launched, live.stats.Launched)
	}
}

// Steal + crash: the stolen short task is killed by a crash of the slow
// node it was stolen onto, and must re-execute (with the correct value,
// on the live backend) once the fast tier frees up. IDs: gate 1, L1 2,
// S1 3; start order gate, stolen S1, L1, recovered S1.
func runStealCrashSim(t *testing.T) stealOutcome {
	t.Helper()
	tr := trace.New(0)
	specs := []infra.TaskSpec{
		{ID: 1, Class: "gate", Duration: 3 * time.Second},
		{ID: 2, Class: "long", Duration: 20 * time.Second},
		{ID: 3, Class: "short", Duration: time.Second},
	}
	sim, err := infra.New(infra.Config{
		Pool:   stealParityPool(),
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: stealParityPolicy(),
		Tracer: tr,
		Steal:  engine.StealConfig{Mode: engine.StealOnIdle},
		Faults: faults.Scenario{{At: time.Second, Kind: faults.Crash, Node: "n1"}},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksFailed != 1 {
		t.Fatalf("sim killed %d tasks, want 1 (the stolen short)", res.TasksFailed)
	}
	return stealOutcome{order: startOrder(tr), stolen: stolenOrder(tr), stats: sim.EngineStats()}
}

func runStealCrashLive(t *testing.T) stealOutcome {
	t.Helper()
	tr := trace.New(0)
	rt := core.New(core.Config{
		Pool:      stealParityPool(),
		Policy:    stealParityPolicy(),
		Tracer:    tr,
		Locations: transfer.NewRegistry(),
		Net:       simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Steal:     engine.StealConfig{Mode: engine.StealOnIdle},
	})
	defer rt.Shutdown()

	gateRelease := make(chan struct{})
	mustRegister(t, rt, core.TaskDef{Name: "gate", Fn: func(_ context.Context, _ []any) ([]any, error) {
		<-gateRelease
		return nil, nil
	}, EstDuration: 3 * time.Second})
	mustRegister(t, rt, core.TaskDef{Name: "long", Fn: func(_ context.Context, _ []any) ([]any, error) {
		return nil, nil
	}, EstDuration: 20 * time.Second})
	sStarted := make(chan struct{}, 2)
	sRelease := make(chan struct{})
	mustRegister(t, rt, core.TaskDef{Name: "short", Fn: func(_ context.Context, _ []any) ([]any, error) {
		sStarted <- struct{}{}
		<-sRelease
		return []any{7}, nil
	}, EstDuration: time.Second})

	if _, err := rt.Submit("gate"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit("long"); err != nil {
		t.Fatal(err)
	}
	d := rt.NewData()
	fs, err := rt.Submit("short", core.Write(d))
	if err != nil {
		t.Fatal(err)
	}
	<-sStarted // the short was stolen onto n1 and is running there

	rep, err := rt.FailNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Killed) != 1 || rep.Killed[0].ID != 3 {
		t.Fatalf("killed = %+v, want the stolen short (task 3)", rep.Killed)
	}
	close(sRelease)    // let the orphaned and the recovery execution proceed
	close(gateRelease) // free the fast node: long, then the recovered short
	if vals, err := fs.Wait(); err != nil || len(vals) != 1 || vals[0] != 7 {
		t.Fatalf("recovered short returned (%v, %v), want ([7], nil)", vals, err)
	}
	rt.Barrier()
	return stealOutcome{order: startOrder(tr), stolen: stolenOrder(tr), stats: rt.EngineStats()}
}

func TestStealCrashRecoveryParity(t *testing.T) {
	sim := runStealCrashSim(t)
	live := runStealCrashLive(t)

	wantOrder := []int64{1, 3, 2, 3}
	for name, got := range map[string][]int64{"sim": sim.order, "live": live.order} {
		if len(got) != len(wantOrder) {
			t.Fatalf("%s start order = %v, want %v", name, got, wantOrder)
		}
		for i := range wantOrder {
			if got[i] != wantOrder[i] {
				t.Fatalf("%s start order = %v, want %v", name, got, wantOrder)
			}
		}
	}
	if sim.stats.Steals != 1 || live.stats.Steals != 1 {
		t.Fatalf("steal counts: sim %d, live %d, want 1 each", sim.stats.Steals, live.stats.Steals)
	}
	// The stolen task never completed before the crash, so its recovery
	// run is a first completion, not a re-execution.
	if sim.stats.Reexecuted != 0 || live.stats.Reexecuted != 0 {
		t.Fatalf("re-execution counts: sim %d, live %d, want 0 each",
			sim.stats.Reexecuted, live.stats.Reexecuted)
	}
	if sim.stats.Launched != live.stats.Launched || sim.stats.Launched != 4 {
		t.Fatalf("launch counts: sim %d, live %d, want 4 each", sim.stats.Launched, live.stats.Launched)
	}
}
