package trace

import (
	"strings"
	"testing"
	"time"
)

func sampleEvents() []Event {
	return []Event{
		{At: 0, Kind: TaskStarted, Task: 1, Node: "n1", Info: "load"},
		{At: 0, Kind: TaskStarted, Task: 2, Node: "n2", Info: "load"},
		{At: 2 * time.Second, Kind: TaskCompleted, Task: 1, Node: "n1"},
		{At: 3 * time.Second, Kind: TaskCompleted, Task: 2, Node: "n2"},
		{At: 3 * time.Second, Kind: TaskStarted, Task: 3, Node: "n1", Info: "merge"},
		{At: 4 * time.Second, Kind: TaskFailed, Task: 3, Node: "n1"},
	}
}

func TestTimelineReconstructsSpans(t *testing.T) {
	spans := Timeline(sampleEvents())
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Task != 1 || spans[0].Node != "n1" || spans[0].Duration() != 2*time.Second {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if spans[2].Task != 3 || spans[2].Label != "merge" || spans[2].Start != 3*time.Second {
		t.Fatalf("span[2] = %+v", spans[2])
	}
}

func TestTimelineIgnoresOrphanCompletions(t *testing.T) {
	spans := Timeline([]Event{{At: time.Second, Kind: TaskCompleted, Task: 9}})
	if len(spans) != 0 {
		t.Fatalf("orphan completion produced spans: %v", spans)
	}
}

func TestUtilization(t *testing.T) {
	utils := Utilization(Timeline(sampleEvents()))
	if len(utils) != 2 {
		t.Fatalf("nodes = %d", len(utils))
	}
	// n1: 2s + 1s = 3s busy over a 4s horizon.
	n1 := utils[0]
	if n1.Node != "n1" || n1.BusyTime != 3*time.Second || n1.Tasks != 2 {
		t.Fatalf("n1 = %+v", n1)
	}
	if n1.AvgConcurrency < 0.74 || n1.AvgConcurrency > 0.76 {
		t.Fatalf("n1 concurrency = %v, want 0.75", n1.AvgConcurrency)
	}
}

func TestRenderASCII(t *testing.T) {
	out := RenderASCII(Timeline(sampleEvents()), 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "n1") || !strings.Contains(lines[1], "n2") {
		t.Fatalf("missing node labels:\n%s", out)
	}
	if !strings.Contains(out, "1") {
		t.Fatalf("no busy cells rendered:\n%s", out)
	}
	if got := RenderASCII(nil, 10); got != "(no spans)\n" {
		t.Fatalf("empty render = %q", got)
	}
}

func TestRenderASCIIConcurrencyDigits(t *testing.T) {
	events := []Event{
		{At: 0, Kind: TaskStarted, Task: 1, Node: "n"},
		{At: 0, Kind: TaskStarted, Task: 2, Node: "n"},
		{At: time.Second, Kind: TaskCompleted, Task: 1, Node: "n"},
		{At: time.Second, Kind: TaskCompleted, Task: 2, Node: "n"},
	}
	out := RenderASCII(Timeline(events), 10)
	if !strings.Contains(out, "2") {
		t.Fatalf("overlap not rendered as depth 2:\n%s", out)
	}
}
