package trace

import (
	"fmt"
	"sort"
	"time"
)

// Span is one task execution interval on one node — a Gantt row segment.
type Span struct {
	Task  int64
	Node  string
	Start time.Duration
	End   time.Duration
	Label string
	// Open marks a span whose task never completed within the trace (it
	// was still running — or died with its node — at end-of-run). Its End
	// is the trace horizon, not a real completion instant.
	Open bool
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Timeline reconstructs per-node execution spans from start/complete
// events — the data behind a Paraver-style Gantt view of the run. Tasks
// that started but never completed (still running at a halt, or killed
// with their node before any completion event fired) are emitted as Open
// spans ending at the trace horizon — the last event timestamp — so
// in-flight work is visible on the Gantt instead of silently vanishing.
func Timeline(events []Event) []Span {
	open := make(map[int64]Event)
	var openOrder []int64 // deterministic emission of surviving opens
	var horizon time.Duration
	var spans []Span
	for _, e := range events {
		if e.At > horizon {
			horizon = e.At
		}
		switch e.Kind {
		case TaskStarted:
			if _, dup := open[e.Task]; !dup {
				openOrder = append(openOrder, e.Task)
			}
			open[e.Task] = e
		case TaskCompleted, TaskFailed:
			start, ok := open[e.Task]
			if !ok {
				continue
			}
			delete(open, e.Task)
			spans = append(spans, Span{
				Task:  e.Task,
				Node:  start.Node,
				Start: start.At,
				End:   e.At,
				Label: start.Info,
			})
		}
	}
	for _, id := range openOrder {
		start, ok := open[id]
		if !ok {
			continue // closed normally
		}
		spans = append(spans, Span{
			Task:  start.Task,
			Node:  start.Node,
			Start: start.At,
			End:   horizon,
			Label: start.Info,
			Open:  true,
		})
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Task < spans[j].Task
	})
	return spans
}

// NodeUtilization summarises busy time per node over the horizon implied
// by the spans (max end time). Concurrent spans on one node accumulate, so
// a 4-core node fully busy reports 4.0.
type NodeUtilization struct {
	Node     string
	BusyTime time.Duration
	Tasks    int
	// AvgConcurrency is BusyTime / horizon.
	AvgConcurrency float64
}

// Utilization aggregates spans per node.
func Utilization(spans []Span) []NodeUtilization {
	var horizon time.Duration
	busy := make(map[string]time.Duration)
	count := make(map[string]int)
	for _, s := range spans {
		busy[s.Node] += s.Duration()
		count[s.Node]++
		if s.End > horizon {
			horizon = s.End
		}
	}
	out := make([]NodeUtilization, 0, len(busy))
	for node, b := range busy {
		u := NodeUtilization{Node: node, BusyTime: b, Tasks: count[node]}
		if horizon > 0 {
			u.AvgConcurrency = float64(b) / float64(horizon)
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// RenderASCII draws a coarse Gantt chart (one row per node, width columns)
// for human inspection in CLI tools.
func RenderASCII(spans []Span, width int) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if width <= 0 {
		width = 60
	}
	var horizon time.Duration
	nodes := make(map[string][]Span)
	for _, s := range spans {
		nodes[s.Node] = append(nodes[s.Node], s)
		if s.End > horizon {
			horizon = s.End
		}
	}
	if horizon == 0 {
		horizon = time.Nanosecond
	}
	names := make([]string, 0, len(nodes))
	maxName := 0
	for n := range nodes {
		names = append(names, n)
		if len(n) > maxName {
			maxName = len(n)
		}
	}
	sort.Strings(names)

	var out []byte
	for _, name := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		depth := make([]int, width)
		for _, s := range nodes[name] {
			from := int(int64(s.Start) * int64(width) / int64(horizon))
			to := int(int64(s.End) * int64(width) / int64(horizon))
			if to >= width {
				to = width - 1
			}
			for i := from; i <= to; i++ {
				depth[i]++
			}
		}
		for i, d := range depth {
			switch {
			case d == 0:
			case d <= 9:
				row[i] = byte('0' + d)
			default:
				row[i] = '#'
			}
		}
		out = append(out, []byte(fmt.Sprintf("%-*s |%s|\n", maxName, name, row))...)
	}
	return string(out)
}
