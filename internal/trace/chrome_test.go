package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTimelineEmitsOpenSpansAtHorizon(t *testing.T) {
	events := []Event{
		{At: 0, Kind: TaskStarted, Task: 1, Node: "n1", Info: "load"},
		{At: time.Second, Kind: TaskStarted, Task: 2, Node: "n2", Info: "train"},
		{At: 2 * time.Second, Kind: TaskCompleted, Task: 1, Node: "n1"},
		// Task 2 never completes; a later milestone extends the horizon.
		{At: 5 * time.Second, Kind: NodeFailed, Node: "n2"},
	}
	spans := Timeline(events)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2 (open span dropped?): %+v", len(spans), spans)
	}
	var open *Span
	for i := range spans {
		if spans[i].Open {
			open = &spans[i]
		}
	}
	if open == nil {
		t.Fatalf("no open span emitted: %+v", spans)
	}
	if open.Task != 2 || open.End != 5*time.Second || open.Start != time.Second {
		t.Fatalf("open span = %+v, want task 2 clamped to 5s horizon", *open)
	}
	if spans[0].Open {
		t.Fatalf("completed span marked open: %+v", spans[0])
	}
}

func TestTimelineAllOpenDeterministicOrder(t *testing.T) {
	events := []Event{
		{At: 0, Kind: TaskStarted, Task: 3, Node: "n1"},
		{At: 0, Kind: TaskStarted, Task: 1, Node: "n1"},
		{At: time.Second, Kind: TaskStarted, Task: 2, Node: "n2"},
	}
	spans := Timeline(events)
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	// Same start sorts by task ID: 1, 3 (both at 0), then 2.
	if spans[0].Task != 1 || spans[1].Task != 3 || spans[2].Task != 2 {
		t.Fatalf("span order = %d,%d,%d", spans[0].Task, spans[1].Task, spans[2].Task)
	}
	for _, s := range spans {
		if !s.Open || s.End != time.Second {
			t.Fatalf("span %+v not clamped open to horizon", s)
		}
	}
}

// TestUtilizationOverlappingConcurrentSpans pins the accumulation
// semantics: two tasks fully overlapping on a node double its busy time,
// so average concurrency exceeds 1. (Satellite: NodeUtilization with
// overlapping concurrent spans.)
func TestUtilizationOverlappingConcurrentSpans(t *testing.T) {
	events := []Event{
		{At: 0, Kind: TaskStarted, Task: 1, Node: "n1"},
		{At: 0, Kind: TaskStarted, Task: 2, Node: "n1"},
		{At: time.Second, Kind: TaskStarted, Task: 3, Node: "n1"},
		{At: 4 * time.Second, Kind: TaskCompleted, Task: 1, Node: "n1"},
		{At: 4 * time.Second, Kind: TaskCompleted, Task: 2, Node: "n1"},
		{At: 3 * time.Second, Kind: TaskCompleted, Task: 3, Node: "n1"},
		{At: 0, Kind: TaskStarted, Task: 4, Node: "n2"},
		{At: 2 * time.Second, Kind: TaskCompleted, Task: 4, Node: "n2"},
	}
	utils := Utilization(Timeline(events))
	if len(utils) != 2 {
		t.Fatalf("nodes = %d, want 2", len(utils))
	}
	n1 := utils[0]
	// 4s + 4s + 2s = 10s busy over the 4s horizon: concurrency 2.5.
	if n1.Node != "n1" || n1.BusyTime != 10*time.Second || n1.Tasks != 3 {
		t.Fatalf("n1 = %+v", n1)
	}
	if n1.AvgConcurrency < 2.49 || n1.AvgConcurrency > 2.51 {
		t.Fatalf("n1 concurrency = %v, want 2.5", n1.AvgConcurrency)
	}
	n2 := utils[1]
	if n2.Node != "n2" || n2.BusyTime != 2*time.Second || n2.Tasks != 1 {
		t.Fatalf("n2 = %+v", n2)
	}
	if n2.AvgConcurrency < 0.49 || n2.AvgConcurrency > 0.51 {
		t.Fatalf("n2 concurrency = %v, want 0.5", n2.AvgConcurrency)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{At: 0, Kind: TaskStarted, Task: 1, Node: "n1", Info: "load"},
		{At: 2 * time.Second, Kind: TaskCompleted, Task: 1, Node: "n1"},
		{At: 2 * time.Second, Kind: TaskStarted, Task: 2, Node: "n2", Info: "train"},
		{At: 3 * time.Second, Kind: TaskStolen, Task: 5, Node: "n1", Info: "c4"},
		{At: 4 * time.Second, Kind: CheckpointSaved, Info: "ckpt-000001.ckpt"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  *int64         `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete, instant, open int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur == nil {
				t.Fatalf("complete event without dur: %+v", ev)
			}
			if ev.Args["open"] == true {
				open++
				// Task 2 started at 2s; the horizon is the 4s checkpoint.
				if *ev.Dur != (2 * time.Second).Microseconds() {
					t.Fatalf("open span dur = %dµs, want 2s clamp to the 4s horizon: %+v", *ev.Dur, ev)
				}
			}
		case "i":
			instant++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 {
		t.Fatalf("thread_name events = %d, want 2 (n1, n2)", meta)
	}
	if complete != 2 {
		t.Fatalf("complete events = %d, want 2 (one closed, one open)", complete)
	}
	if open != 1 {
		t.Fatalf("open-marked spans = %d, want 1", open)
	}
	if instant != 2 {
		t.Fatalf("instant events = %d, want 2 (steal + checkpoint)", instant)
	}
	// Determinism: encoding twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("chrome trace encoding not deterministic")
	}
}
