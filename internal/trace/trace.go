// Package trace records execution events and data provenance. The paper
// makes metadata and traceability first-class requirements ("developers of
// scientific application give more emphasis to the data aspect of the
// problem: metadata and traceability are crucial for them", Sec. I; "the
// compute workflows should be able to better integrate metadata, and enable
// data traceability", Sec. VI-C).
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind string

// Event kinds emitted by the runtime and the simulator.
const (
	TaskSubmitted Kind = "task_submitted"
	TaskReady     Kind = "task_ready"
	TaskScheduled Kind = "task_scheduled"
	TaskStarted   Kind = "task_started"
	TaskStolen    Kind = "task_stolen"
	TaskCompleted Kind = "task_completed"
	TaskFailed    Kind = "task_failed"
	TaskRecovered Kind = "task_recovered"
	// TaskParked marks a ready task diverted into the availability wait
	// set: every replica of at least one input is lost or partitioned
	// away, and the engine's policy (defer/recompute) chose to hold the
	// task rather than run it without data.
	TaskParked Kind = "task_parked"
	// TaskWoken marks a parked task released back to the ready queue —
	// a partition healed, a replica of the awaited datum was (re)created,
	// or a node failure forced a re-classification.
	TaskWoken    Kind = "task_woken"
	DataTransfer Kind = "data_transfer"
	// DataUnavailable marks a task launched although inputs could not be
	// staged (availability policy run-anyway; Info says how many inputs
	// were "missing, run anyway").
	DataUnavailable Kind = "data_unavailable"
	DataPersisted   Kind = "data_persisted"
	// DataRestaged marks a replica re-created during a checkpoint restore
	// because every node recorded as holding it has left the pool: the
	// value is fetched ahead of demand from a surviving tier (the persist
	// node, or the snapshot's encoded value on the live backend).
	DataRestaged  Kind = "data_restaged"
	NodeAdded     Kind = "node_added"
	NodeRemoved   Kind = "node_removed"
	NodeFailed    Kind = "node_failed"
	NodeSlowed    Kind = "node_slowed"
	NodeDrained   Kind = "node_drained"
	NodeUndrained Kind = "node_undrained"
	LinkCut       Kind = "link_cut"
	LinkHealed    Kind = "link_healed"
	FaultIgnored  Kind = "fault_ignored"
	// CheckpointSaved marks a persisted engine snapshot (Info: file name).
	CheckpointSaved Kind = "checkpoint_saved"
	// CheckpointRestored marks a run resumed from a snapshot (Info: counts).
	CheckpointRestored Kind = "checkpoint_restored"
)

// Event is one timestamped occurrence.
type Event struct {
	At   time.Duration `json:"at"`
	Kind Kind          `json:"kind"`
	Task int64         `json:"task,omitempty"`
	Node string        `json:"node,omitempty"`
	Info string        `json:"info,omitempty"`
}

// Tracer collects events. It is safe for concurrent use. A nil *Tracer is
// valid and discards everything, so call sites need no guards.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// New returns a tracer that keeps at most limit events (0 ⇒ unlimited).
func New(limit int) *Tracer {
	return &Tracer{limit: limit}
}

// Record appends an event; on a full bounded tracer the oldest is dropped.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && len(t.events) >= t.limit {
		copy(t.events, t.events[1:])
		t.events[len(t.events)-1] = e
		return
	}
	t.events = append(t.events, e)
}

// Events returns a copy of all recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Count returns the number of events of the given kind (all if kind == "").
func (t *Tracer) Count(kind Kind) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if kind == "" {
		return len(t.events)
	}
	n := 0
	for _, e := range t.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// ExportJSON serialises the events.
func (t *Tracer) ExportJSON() ([]byte, error) {
	return json.Marshal(t.Events())
}

// Provenance maintains the lineage of every data version: which task
// produced it from which inputs. It is safe for concurrent use.
type Provenance struct {
	mu       sync.RWMutex
	producer map[string]int64    // version key -> task
	inputs   map[string][]string // version key -> input version keys
	meta     map[string]map[string]string
}

// NewProvenance returns an empty provenance store.
func NewProvenance() *Provenance {
	return &Provenance{
		producer: make(map[string]int64),
		inputs:   make(map[string][]string),
		meta:     make(map[string]map[string]string),
	}
}

// VersionKey formats a (data, version) pair as a provenance key.
func VersionKey(data int64, ver int) string { return fmt.Sprintf("d%dv%d", data, ver) }

// RecordProduction registers that task produced output from the given
// inputs.
func (p *Provenance) RecordProduction(output string, task int64, inputs []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.producer[output] = task
	p.inputs[output] = append([]string(nil), inputs...)
}

// SetMeta attaches a metadata key/value to a data version.
func (p *Provenance) SetMeta(version, key, value string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.meta[version]
	if !ok {
		m = make(map[string]string)
		p.meta[version] = m
	}
	m[key] = value
}

// Meta returns a metadata value.
func (p *Provenance) Meta(version, key string) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	v, ok := p.meta[version][key]
	return v, ok
}

// Producer returns the task that produced a version.
func (p *Provenance) Producer(version string) (int64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.producer[version]
	return t, ok
}

// Ancestry returns every version the given one transitively derives from,
// sorted. This is the traceability query: "where did this result come
// from?".
func (p *Provenance) Ancestry(version string) []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	seen := make(map[string]struct{})
	stack := append([]string(nil), p.inputs[version]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		stack = append(stack, p.inputs[v]...)
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
