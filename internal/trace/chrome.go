package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event export: the run rendered as a Perfetto-loadable
// JSON document (chrome://tracing's trace-event format) — the
// reproduction's stand-in for the Paraver Gantt views the paper's
// tooling produces. One "process" holds one "thread" per node; every
// task execution span becomes a complete ("X") event on its node's
// thread, and engine milestones (steals, parks/wakes, node and link
// faults, checkpoints) become instant ("i") events, so scheduling
// decisions can be read in context next to the work they affected.
// Load the file at https://ui.perfetto.dev or chrome://tracing.

// chromeEvent is one trace-event record. Field order matters only for
// readability; json.Marshal keeps struct order, so output is
// deterministic for a fixed event list.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // µs
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: t=thread, g=global
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the document wrapper Perfetto accepts.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts an engine-clock offset to trace-event microseconds.
func usec(d time.Duration) int64 { return int64(d / time.Microsecond) }

// milestoneKinds are the event kinds exported as instant markers —
// everything that explains a Gantt shape without being a span itself.
var milestoneKinds = map[Kind]bool{
	TaskStolen:         true,
	TaskParked:         true,
	TaskWoken:          true,
	DataUnavailable:    true,
	DataRestaged:       true,
	NodeAdded:          true,
	NodeRemoved:        true,
	NodeFailed:         true,
	NodeSlowed:         true,
	NodeDrained:        true,
	NodeUndrained:      true,
	LinkCut:            true,
	LinkHealed:         true,
	CheckpointSaved:    true,
	CheckpointRestored: true,
}

// WriteChromeTrace renders events as Chrome trace-event JSON. Spans come
// from Timeline (including Open spans clamped to the horizon, marked
// open=true in args); thread IDs are assigned to node names in sorted
// order, so output is deterministic for a fixed event list.
func WriteChromeTrace(w io.Writer, events []Event) error {
	spans := Timeline(events)

	// Node → tid, sorted for stable IDs. Nodes appearing only in
	// milestones (a failed node whose spans all closed) still get a row.
	nodeSet := make(map[string]struct{})
	for _, s := range spans {
		if s.Node != "" {
			nodeSet[s.Node] = struct{}{}
		}
	}
	for _, e := range events {
		if milestoneKinds[e.Kind] && e.Node != "" {
			nodeSet[e.Node] = struct{}{}
		}
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	tid := make(map[string]int, len(nodes))
	out := make([]chromeEvent, 0, len(spans)+2*len(nodes))
	for i, n := range nodes {
		tid[n] = i + 1
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": n},
		})
	}

	for _, s := range spans {
		name := s.Label
		if name == "" {
			name = fmt.Sprintf("task %d", s.Task)
		}
		dur := usec(s.End) - usec(s.Start)
		args := map[string]any{"task": s.Task}
		if s.Open {
			args["open"] = true
		}
		out = append(out, chromeEvent{
			Name: name, Ph: "X", Ts: usec(s.Start), Dur: &dur,
			Pid: 1, Tid: tid[s.Node], Args: args,
		})
	}

	for _, e := range events {
		if !milestoneKinds[e.Kind] {
			continue
		}
		ev := chromeEvent{Name: string(e.Kind), Ph: "i", Ts: usec(e.At), Pid: 1, S: "g"}
		if e.Node != "" {
			ev.Tid = tid[e.Node]
			ev.S = "t"
		}
		args := make(map[string]any)
		if e.Task != 0 {
			args["task"] = e.Task
		}
		if e.Info != "" {
			args["info"] = e.Info
		}
		if len(args) > 0 {
			ev.Args = args
		}
		out = append(out, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// ExportChromeTrace renders the tracer's events as Chrome trace-event
// JSON (see WriteChromeTrace). A nil tracer yields an empty document.
func (t *Tracer) ExportChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Events())
}
