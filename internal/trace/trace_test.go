package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: TaskStarted})
	if tr.Events() != nil || tr.Count("") != 0 {
		t.Fatal("nil tracer should discard")
	}
}

func TestRecordAndCount(t *testing.T) {
	tr := New(0)
	tr.Record(Event{At: time.Second, Kind: TaskStarted, Task: 1})
	tr.Record(Event{At: 2 * time.Second, Kind: TaskCompleted, Task: 1})
	tr.Record(Event{At: 3 * time.Second, Kind: TaskStarted, Task: 2})
	if tr.Count(TaskStarted) != 2 || tr.Count(TaskCompleted) != 1 || tr.Count("") != 3 {
		t.Fatal("counts wrong")
	}
}

func TestBoundedTracerDropsOldest(t *testing.T) {
	tr := New(3)
	for i := int64(1); i <= 5; i++ {
		tr.Record(Event{Kind: TaskStarted, Task: i})
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("len = %d, want 3", len(ev))
	}
	if ev[0].Task != 3 || ev[2].Task != 5 {
		t.Fatalf("kept wrong window: %v", ev)
	}
}

func TestExportJSON(t *testing.T) {
	tr := New(0)
	tr.Record(Event{At: time.Second, Kind: DataTransfer, Node: "n1", Info: "10MB"})
	raw, err := tr.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Node != "n1" || back[0].Kind != DataTransfer {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Record(Event{Kind: TaskStarted})
			}
		}()
	}
	wg.Wait()
	if tr.Count("") != 800 {
		t.Fatalf("count = %d, want 800", tr.Count(""))
	}
}

func TestProvenanceAncestry(t *testing.T) {
	p := NewProvenance()
	// raw -> curated -> model; raw2 -> curated
	p.RecordProduction("curated", 1, []string{"raw", "raw2"})
	p.RecordProduction("model", 2, []string{"curated"})
	anc := p.Ancestry("model")
	want := []string{"curated", "raw", "raw2"}
	if len(anc) != len(want) {
		t.Fatalf("ancestry = %v, want %v", anc, want)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("ancestry = %v, want %v", anc, want)
		}
	}
	if task, ok := p.Producer("model"); !ok || task != 2 {
		t.Fatalf("producer = %d %v", task, ok)
	}
}

func TestProvenanceCyclicInputsTerminate(t *testing.T) {
	p := NewProvenance()
	p.RecordProduction("a", 1, []string{"b"})
	p.RecordProduction("b", 2, []string{"a"})
	anc := p.Ancestry("a")
	if len(anc) != 2 {
		t.Fatalf("cyclic ancestry = %v", anc)
	}
}

func TestProvenanceMeta(t *testing.T) {
	p := NewProvenance()
	key := VersionKey(7, 2)
	if key != "d7v2" {
		t.Fatalf("VersionKey = %q", key)
	}
	p.SetMeta(key, "format", "netcdf")
	if v, ok := p.Meta(key, "format"); !ok || v != "netcdf" {
		t.Fatal("meta lookup failed")
	}
	if _, ok := p.Meta(key, "missing"); ok {
		t.Fatal("missing meta reported present")
	}
}
