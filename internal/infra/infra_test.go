package infra

import (
	"errors"
	"testing"
	"time"

	"repro/internal/deps"
	"repro/internal/mlpredict"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func onePool(n int, desc resources.Description) *resources.Pool {
	p := resources.NewPool()
	for i := 0; i < n; i++ {
		_ = p.Add(resources.NewNode(nodeName(i), desc))
	}
	return p
}

func nodeName(i int) string { return "node" + string(rune('A'+i)) }

func flatNet() *simnet.Network {
	return simnet.New(simnet.Link{BandwidthMBps: 1000, Latency: 0})
}

func baseCfg(nodes int) Config {
	return Config{
		Pool:   onePool(nodes, resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1}),
		Net:    flatNet(),
		Policy: sched.FIFO{},
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	specs := []TaskSpec{{ID: 1, Duration: time.Second}, {ID: 1, Duration: time.Second}}
	if _, err := New(baseCfg(1), specs); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v, want ErrDuplicateID", err)
	}
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	// 8 independent 1s tasks on 2 nodes × 4 cores = 8 slots ⇒ makespan 1s.
	var specs []TaskSpec
	for i := int64(0); i < 8; i++ {
		specs = append(specs, TaskSpec{ID: i, Class: "unit", Duration: time.Second})
	}
	sim, err := New(baseCfg(2), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != time.Second {
		t.Fatalf("makespan = %v, want 1s", res.Makespan)
	}
	if res.TasksCompleted != 8 {
		t.Fatalf("completed = %d, want 8", res.TasksCompleted)
	}
}

func TestDependencyChainSerialises(t *testing.T) {
	// t0 -> t1 -> t2, 1s each ⇒ makespan 3s regardless of 8 free slots.
	specs := []TaskSpec{
		{ID: 0, Duration: time.Second, Accesses: []deps.Access{{Data: 1, Dir: deps.Out}}},
		{ID: 1, Duration: time.Second, Accesses: []deps.Access{{Data: 1, Dir: deps.InOut}}},
		{ID: 2, Duration: time.Second, Accesses: []deps.Access{{Data: 1, Dir: deps.In}}},
	}
	sim, err := New(baseCfg(2), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s", res.Makespan)
	}
}

func TestMoreTasksThanSlotsQueue(t *testing.T) {
	// 10 × 1s tasks on 1 node × 4 cores ⇒ ceil(10/4) = 3 waves ⇒ 3s.
	var specs []TaskSpec
	for i := int64(0); i < 10; i++ {
		specs = append(specs, TaskSpec{ID: i, Duration: time.Second})
	}
	sim, err := New(baseCfg(1), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s", res.Makespan)
	}
}

func TestMemoryConstraintLimitsConcurrency(t *testing.T) {
	// Node has 8000 MB; tasks demand 4000 MB each ⇒ only 2 concurrent
	// even though 4 cores are free.
	var specs []TaskSpec
	for i := int64(0); i < 4; i++ {
		specs = append(specs, TaskSpec{
			ID: i, Duration: time.Second,
			Constraints: resources.Constraints{MemoryMB: 4000},
		})
	}
	sim, err := New(baseCfg(1), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2*time.Second {
		t.Fatalf("makespan = %v, want 2s (memory-bound)", res.Makespan)
	}
}

func TestUnsatisfiableConstraintErrors(t *testing.T) {
	specs := []TaskSpec{{ID: 0, Duration: time.Second, Constraints: resources.Constraints{Cores: 64}}}
	sim, err := New(baseCfg(1), specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
}

func TestTransfersCountedAndLocalityAvoidsThem(t *testing.T) {
	// The producer is pinned (class constraint) to the cloud node; the
	// consumer is free. FIFO sends it to the first pool node (HPC) and
	// pays the transfer; Locality follows the data.
	specs := []TaskSpec{
		{ID: 0, Class: "produce", Duration: time.Second,
			Constraints: resources.Constraints{Class: resources.Cloud},
			Accesses:    []deps.Access{{Data: 1, Dir: deps.Out}},
			OutputBytes: map[deps.DataID]int64{1: 1e9}},
		{ID: 1, Class: "consume", Duration: time.Second,
			Accesses: []deps.Access{{Data: 1, Dir: deps.In}}},
	}
	run := func(policy sched.Policy) Result {
		pool := resources.NewPool()
		_ = pool.Add(resources.NewNode("hpc1", resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1, Class: resources.HPC}))
		_ = pool.Add(resources.NewNode("cloud1", resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1, Class: resources.Cloud}))
		sim, err := New(Config{Pool: pool, Net: flatNet(), Policy: policy}, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Locality keeps the consumer with the data: zero bytes moved.
	if res := run(sched.Locality{}); res.BytesMoved != 0 {
		t.Fatalf("locality moved %d bytes, want 0", res.BytesMoved)
	}
	// FIFO places the consumer on the first node ⇒ 1 GB moves.
	if res := run(sched.FIFO{}); res.BytesMoved != 1e9 {
		t.Fatalf("fifo moved %d bytes, want 1e9", res.BytesMoved)
	}
}

func TestStageInDataIsLocatedAndMoved(t *testing.T) {
	cfg := baseCfg(2)
	cfg.StageIn = map[deps.DataID]int64{7: 5e8}
	cfg.StageInNode = "nodeA"
	// Force the reader onto nodeB so the staged data must move.
	nodeA, _ := cfg.Pool.Get("nodeA")
	_ = nodeA.Reserve(resources.Constraints{Cores: 4})
	specs := []TaskSpec{{ID: 0, Duration: time.Second,
		Accesses: []deps.Access{{Data: 7, Dir: deps.In}}}}
	sim, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesMoved != 5e8 {
		t.Fatalf("bytes moved = %d, want 5e8", res.BytesMoved)
	}
}

func TestMultiNodeTaskReservesGroup(t *testing.T) {
	// MPI task wanting 2 nodes × 4 cores on a 2-node pool: nothing else
	// can run concurrently.
	specs := []TaskSpec{
		{ID: 0, Class: "mpi", Duration: 2 * time.Second,
			Constraints: resources.Constraints{Cores: 4, Nodes: 2}},
		{ID: 1, Class: "serial", Duration: time.Second},
	}
	sim, err := New(baseCfg(2), specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The MPI task occupies both nodes for 2s; the serial task runs after
	// (or could not start before) ⇒ makespan 3s.
	if res.Makespan != 3*time.Second {
		t.Fatalf("makespan = %v, want 3s", res.Makespan)
	}
}

func TestSpeedFactorScalesDuration(t *testing.T) {
	cfg := Config{
		Pool:   onePool(1, resources.Description{Cores: 1, MemoryMB: 1000, SpeedFactor: 0.5}),
		Net:    flatNet(),
		Policy: sched.FIFO{},
	}
	specs := []TaskSpec{{ID: 0, Duration: time.Second}}
	sim, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2*time.Second {
		t.Fatalf("makespan = %v, want 2s on half-speed node", res.Makespan)
	}
}

func TestEnergyAccounted(t *testing.T) {
	cfg := Config{
		Pool: onePool(1, resources.Description{
			Cores: 2, MemoryMB: 1000, SpeedFactor: 1, IdleWatts: 10, ActiveWattsPerCore: 5,
		}),
		Net:    flatNet(),
		Policy: sched.FIFO{},
	}
	specs := []TaskSpec{{ID: 0, Duration: 10 * time.Second}}
	sim, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Active: 1 core × 5 W × 10 s = 50 J. Idle: 10 W × 10 s = 100 J.
	if res.ActiveEnergy != 50 {
		t.Fatalf("active energy = %v, want 50", res.ActiveEnergy)
	}
	if res.TotalEnergy != 150 {
		t.Fatalf("total energy = %v, want 150", res.TotalEnergy)
	}
	if res.Utilization != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", res.Utilization)
	}
}

func TestFailureRecoveryWithPersistence(t *testing.T) {
	// Chain: t0 -> t1 -> t2. Fail the worker mid-t1. With persistence,
	// t0's output survives on the persist node, so only t1 re-runs.
	mk := func(persist string) (Result, int) {
		pool := resources.NewPool()
		_ = pool.Add(resources.NewNode("worker", resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1}))
		_ = pool.Add(resources.NewNode("spare", resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1}))
		if persist != "" {
			_ = pool.Add(resources.NewNode(persist, resources.Description{Cores: 0, MemoryMB: 0, SpeedFactor: 1}))
		}
		tr := trace.New(0)
		cfg := Config{
			Pool: pool, Net: flatNet(), Policy: sched.FIFO{}, Tracer: tr,
			PersistNode: persist,
			Failures:    []Failure{{Node: "worker", At: 1500 * time.Millisecond}},
		}
		specs := []TaskSpec{
			{ID: 0, Duration: time.Second, Accesses: []deps.Access{{Data: 1, Dir: deps.Out}}, OutputBytes: map[deps.DataID]int64{1: 1e6}},
			{ID: 1, Duration: time.Second, Accesses: []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}}, OutputBytes: map[deps.DataID]int64{2: 1e6}},
			{ID: 2, Duration: time.Second, Accesses: []deps.Access{{Data: 2, Dir: deps.In}}},
		}
		sim, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, tr.Count(trace.TaskFailed)
	}

	withP, failed := mk("vault")
	if failed != 1 || withP.TasksFailed != 1 {
		t.Fatalf("with persistence: %d failures, want 1", failed)
	}
	if withP.TasksReExecuted != 0 {
		t.Fatalf("with persistence re-executed %d completed tasks, want 0", withP.TasksReExecuted)
	}

	withoutP, _ := mk("")
	if withoutP.TasksReExecuted == 0 {
		t.Fatal("without persistence, lost outputs must force re-execution of completed tasks")
	}
	if withoutP.Makespan <= withP.Makespan {
		t.Fatalf("no-persistence makespan %v should exceed persistence %v",
			withoutP.Makespan, withP.Makespan)
	}
}

func TestElasticityGrowsAndShrinks(t *testing.T) {
	prov := resources.NewSimProvider("cloud", resources.Description{
		Cores: 4, MemoryMB: 8000, SpeedFactor: 1,
	}, 8, 5*time.Second)
	mgr := resources.NewElasticManager(prov, resources.ScalePolicy{
		MaxNodes: 8, TasksPerCore: 1, IdleCoresToShrink: 0,
	})
	pool := resources.NewPool() // starts empty: fully elastic
	var specs []TaskSpec
	for i := int64(0); i < 64; i++ {
		specs = append(specs, TaskSpec{ID: i, Duration: 30 * time.Second})
	}
	cfg := Config{
		Pool: pool, Net: flatNet(), Policy: sched.FIFO{},
		Elastic: mgr, ElasticEvery: 2 * time.Second,
	}
	sim, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 64 {
		t.Fatalf("completed %d, want 64", res.TasksCompleted)
	}
	if res.PeakNodes < 2 {
		t.Fatalf("peak nodes = %d, want elastic growth", res.PeakNodes)
	}
}

func TestPredictorTrainedBySim(t *testing.T) {
	pred := mlpredict.NewPredictor(time.Second)
	cfg := baseCfg(1)
	cfg.Predictor = pred
	var specs []TaskSpec
	for i := int64(0); i < 6; i++ {
		specs = append(specs, TaskSpec{ID: i, Class: "k", Duration: 7 * time.Second})
	}
	sim, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := pred.Predict("k", 0)
	if got < 6*time.Second || got > 8*time.Second {
		t.Fatalf("predictor learned %v, want ~7s", got)
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	tr := trace.New(0)
	cfg := baseCfg(1)
	cfg.Tracer = tr
	specs := []TaskSpec{{ID: 0, Duration: time.Second}}
	sim, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Count(trace.TaskStarted) != 1 || tr.Count(trace.TaskCompleted) != 1 {
		t.Fatalf("trace counts: started=%d completed=%d",
			tr.Count(trace.TaskStarted), tr.Count(trace.TaskCompleted))
	}
}

func TestPersistNodeFailureFallsBackToRecompute(t *testing.T) {
	// The persistence tier itself dies: recovery degrades to lineage
	// recompute but the workflow still completes.
	pool := resources.NewPool()
	_ = pool.Add(resources.NewNode("w1", resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1}))
	_ = pool.Add(resources.NewNode("w2", resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1}))
	_ = pool.Add(resources.NewNode("vault", resources.Description{Cores: 0, MemoryMB: 0, SpeedFactor: 1}))
	specs := []TaskSpec{
		{ID: 0, Duration: time.Second, Accesses: []deps.Access{{Data: 1, Dir: deps.Out}}, OutputBytes: map[deps.DataID]int64{1: 1e6}},
		{ID: 1, Duration: 10 * time.Second, Accesses: []deps.Access{{Data: 1, Dir: deps.In}, {Data: 2, Dir: deps.Out}}, OutputBytes: map[deps.DataID]int64{2: 1e6}},
		{ID: 2, Duration: time.Second, Accesses: []deps.Access{{Data: 2, Dir: deps.In}}},
	}
	sim, err := New(Config{
		Pool: pool, Net: flatNet(), Policy: sched.FIFO{},
		PersistNode: "vault",
		Failures: []Failure{
			{Node: "vault", At: 2 * time.Second}, // persistence tier dies
			{Node: "w1", At: 5 * time.Second},    // then the worker running t1
		},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted < 3 {
		t.Fatalf("completed %d, want all 3", res.TasksCompleted)
	}
}

// Downscaling must never kill running work: a shrink decision taken while
// the only elastic node is mid-task cordons the node (engine DrainNode)
// and removes it only after the task finishes — no kills, no recovery
// re-executions.
func TestShrinkNeverKillsRunningWork(t *testing.T) {
	prov := resources.NewSimProvider("vm", resources.Description{
		Cores: 8, MemoryMB: 8000, SpeedFactor: 1,
	}, 1, 2*time.Second)
	mgr := resources.NewElasticManager(prov, resources.ScalePolicy{
		MaxNodes: 1, TasksPerCore: 2, IdleCoresToShrink: 0,
	})
	tr := trace.New(0)
	// One long task on a fully elastic pool: while it runs, pending drops
	// to zero and 7 of 8 cores idle, so every elastic tick decides Shrink.
	sim, err := New(Config{
		Pool:    resources.NewPool(),
		Net:     flatNet(),
		Policy:  sched.FIFO{},
		Tracer:  tr,
		Elastic: mgr, ElasticEvery: 5 * time.Second,
	}, []TaskSpec{{ID: 1, Class: "long", Duration: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 1 || res.TasksFailed != 0 || res.TasksReExecuted != 0 {
		t.Fatalf("completed/failed/re-executed = %d/%d/%d, want 1/0/0",
			res.TasksCompleted, res.TasksFailed, res.TasksReExecuted)
	}
	if got := tr.Count(trace.NodeDrained); got == 0 {
		t.Fatal("shrink decision never cordoned the busy node")
	}
	if got := tr.Count(trace.NodeRemoved); got != 0 {
		t.Fatalf("node removed mid-run %d times; drain-then-remove must wait for idle", got)
	}
	// After the run the node has bled dry: the reap now removes it.
	v, err := mgr.ShrinkOne(sim.cfg.Pool)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("drained node not reaped once idle")
	}
	if prov.Granted() != 0 {
		t.Fatalf("provider still holds %d nodes", prov.Granted())
	}
}

// A burst arriving while a node drains reclaims it (no provider round
// trip) and the run completes.
func TestReclaimDuringDrainServesNewLoad(t *testing.T) {
	prov := resources.NewSimProvider("vm", resources.Description{
		Cores: 4, MemoryMB: 8000, SpeedFactor: 1,
	}, 1, 2*time.Second)
	mgr := resources.NewElasticManager(prov, resources.ScalePolicy{
		MaxNodes: 1, TasksPerCore: 2, IdleCoresToShrink: 0,
	})
	tr := trace.New(0)
	specs := []TaskSpec{
		{ID: 1, Class: "long", Duration: 30 * time.Second},
		// The second task lands while the node is mid-drain (the shrink
		// decision fires at the 5s/10s ticks, the long task holds the node
		// busy until 37s): the manager must reclaim, not wedge.
		{ID: 2, Class: "late", Duration: 10 * time.Second, Release: 12 * time.Second},
	}
	sim, err := New(Config{
		Pool:    resources.NewPool(),
		Net:     flatNet(),
		Policy:  sched.FIFO{},
		Tracer:  tr,
		Elastic: mgr, ElasticEvery: 5 * time.Second,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != 2 || res.TasksFailed != 0 {
		t.Fatalf("completed/failed = %d/%d, want 2/0", res.TasksCompleted, res.TasksFailed)
	}
	if got := tr.Count(trace.NodeUndrained); got == 0 {
		t.Fatal("draining node was never reclaimed for the late burst")
	}
}
