package infra_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/infra"
	"repro/internal/obsv"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/workloads"
)

// sampledRun executes one metered simulation and returns the sampled
// time-series in the deterministic text encoding.
func sampledRun(t *testing.T) string {
	t.Helper()
	pool := resources.NewPool()
	for n := 0; n < 4; n++ {
		if err := pool.Add(resources.NewNode(fmt.Sprintf("n%d", n), resources.MareNostrumNode)); err != nil {
			t.Fatal(err)
		}
	}
	reg := obsv.NewRegistry()
	sim, err := infra.New(infra.Config{
		Pool:        pool,
		Net:         simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:      sched.MinLoad{},
		Metrics:     reg,
		SampleEvery: 5 * time.Second,
	}, workloads.EmbarrassinglyParallel(400, time.Minute, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.Sampler().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSimSampledSeriesDeterministic pins the acceptance criterion: under
// the virtual clock the sampled time-series is byte-identical across
// five runs (no checkpointing — capture wall time is the documented
// nondeterministic exception).
func TestSimSampledSeriesDeterministic(t *testing.T) {
	first := sampledRun(t)
	if first == "" {
		t.Fatal("sampled series is empty")
	}
	for i := 1; i < 5; i++ {
		if got := sampledRun(t); got != first {
			t.Fatalf("run %d sampled series differs from run 0:\n--- run 0 ---\n%s\n--- run %d ---\n%s", i, first, i, got)
		}
	}
}

// TestSimMetricsObserveEngineActivity asserts the engine actually feeds
// the registry: after a run, the launch counter matches the engine's
// Stats and the ready-depth gauge has drained back to zero.
func TestSimMetricsObserveEngineActivity(t *testing.T) {
	pool := resources.NewPool()
	for n := 0; n < 4; n++ {
		if err := pool.Add(resources.NewNode(fmt.Sprintf("n%d", n), resources.MareNostrumNode)); err != nil {
			t.Fatal(err)
		}
	}
	reg := obsv.NewRegistry()
	sim, err := infra.New(infra.Config{
		Pool:        pool,
		Net:         simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy:      sched.MinLoad{},
		Metrics:     reg,
		SampleEvery: time.Second,
	}, workloads.EmbarrassinglyParallel(100, time.Minute, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	reg.Visit(func(name string, v float64) { vals[name] = v })
	st := sim.EngineStats()
	if got := vals["flowgo_tasks_launched_total"]; got != float64(st.Launched) {
		t.Fatalf("launched metric = %v, stats = %d", got, st.Launched)
	}
	if got := vals["flowgo_tasks_completed_total"]; got != float64(st.Completed) {
		t.Fatalf("completed metric = %v, stats = %d", got, st.Completed)
	}
	if vals["flowgo_placement_waves_total"] == 0 {
		t.Fatal("no placement waves recorded")
	}
	depthTotal := 0.0
	for name, v := range vals {
		if len(name) > len("flowgo_ready_depth") && name[:len("flowgo_ready_depth")] == "flowgo_ready_depth" {
			depthTotal += v
		}
	}
	if depthTotal != 0 {
		t.Fatalf("ready-depth gauges did not drain to zero: %v", depthTotal)
	}
}
