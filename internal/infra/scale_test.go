package infra_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/workloads"
)

// TestPaperScaleGWAS approaches the paper's published run: GUIDANCE
// generated "between 1-3 million COMPSs tasks" on "100 nodes of the
// Marenostrum supercomputer (4800 cores)". We run 115k tasks on the
// simulated 100-node machine (scale up ImputationsPerChrom for the full
// million; it is linear).
func TestPaperScaleGWAS(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation skipped in -short mode")
	}
	cfg := workloads.DefaultGWAS()
	cfg.ImputationsPerChrom = 5000 // 23 × 5002 + 1 = 115,047 tasks
	specs, stageIn := workloads.GWAS(cfg)
	pool := resources.NewPool()
	for i := 0; i < 100; i++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("mn%03d", i), resources.MareNostrumNode))
	}
	start := time.Now()
	sim, err := infra.New(infra.Config{
		Pool:    pool,
		Net:     simnet.New(simnet.Link{BandwidthMBps: 12500}),
		Policy:  sched.MinLoad{},
		StageIn: stageIn,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != len(specs) {
		t.Fatalf("completed %d/%d", res.TasksCompleted, len(specs))
	}
	t.Logf("%d tasks on 4800 cores: makespan %v (simulated) in %v (wall)",
		len(specs), res.Makespan.Round(time.Second), time.Since(start).Round(time.Millisecond))
}
