package infra

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/deps"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
)

// randomSpecs builds a random forward-edged workflow.
func randomSpecs(rng *rand.Rand, n int) []TaskSpec {
	specs := make([]TaskSpec, n)
	var nextData deps.DataID = 1
	outputs := make([]deps.DataID, 0, n)
	for i := 0; i < n; i++ {
		var acc []deps.Access
		// Read up to 2 earlier outputs.
		for r := 0; r < rng.Intn(3) && len(outputs) > 0; r++ {
			acc = append(acc, deps.Access{
				Data: outputs[rng.Intn(len(outputs))], Dir: deps.In,
			})
		}
		out := nextData
		nextData++
		acc = append(acc, deps.Access{Data: out, Dir: deps.Out})
		outputs = append(outputs, out)
		specs[i] = TaskSpec{
			ID:          int64(i),
			Class:       "rnd",
			Duration:    time.Duration(rng.Intn(20)+1) * time.Second,
			Accesses:    acc,
			OutputBytes: map[deps.DataID]int64{out: int64(rng.Intn(100)) * 1e6},
			Constraints: resources.Constraints{
				Cores:    rng.Intn(2) + 1,
				MemoryMB: int64(rng.Intn(4)+1) * 1000,
			},
		}
	}
	return specs
}

// Property: every random workflow completes, with a positive makespan
// bounded by the serial sum, and every policy agrees on the task count.
func TestRandomWorkflowsComplete(t *testing.T) {
	policies := []sched.Policy{sched.FIFO{}, sched.MinLoad{}, sched.Locality{}, sched.EFT{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 5
		specs := randomSpecs(rng, n)
		var serial time.Duration
		for _, s := range specs {
			serial += s.Duration
		}
		for _, p := range policies {
			pool := resources.NewPool()
			for i := 0; i < 3; i++ {
				_ = pool.Add(resources.NewNode(fmt.Sprintf("n%d", i),
					resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1}))
			}
			sim, err := New(Config{
				Pool: pool, Net: simnet.New(simnet.Link{BandwidthMBps: 1000}), Policy: p,
			}, specs)
			if err != nil {
				return false
			}
			res, err := sim.Run()
			if err != nil {
				return false
			}
			if res.TasksCompleted != n {
				return false
			}
			if res.Makespan <= 0 || res.Makespan > serial {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a persistence tier, a workflow survives the failure of
// any single worker node at any instant, completing all tasks.
func TestFailureAtAnyInstantIsSurvivable(t *testing.T) {
	f := func(seed int64, failAtSec uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 10
		specs := randomSpecs(rng, n)
		pool := resources.NewPool()
		for i := 0; i < 3; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("w%d", i),
				resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1}))
		}
		_ = pool.Add(resources.NewNode("vault",
			resources.Description{Cores: 0, MemoryMB: 0, SpeedFactor: 1}))
		victim := fmt.Sprintf("w%d", rng.Intn(3))
		sim, err := New(Config{
			Pool: pool, Net: simnet.New(simnet.Link{BandwidthMBps: 1000}),
			Policy:      sched.MinLoad{},
			PersistNode: "vault",
			Failures:    []Failure{{Node: victim, At: time.Duration(failAtSec%300) * time.Second}},
		}, specs)
		if err != nil {
			return false
		}
		res, err := sim.Run()
		if err != nil {
			return false
		}
		// All tasks completed despite the node loss; persisted outputs
		// mean completed work is never redone.
		return res.TasksCompleted >= n && res.TasksReExecuted == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling every node's speed never increases the makespan.
func TestFasterNodesNeverHurt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 5
		specs := randomSpecs(rng, n)
		run := func(speed float64) time.Duration {
			pool := resources.NewPool()
			for i := 0; i < 2; i++ {
				_ = pool.Add(resources.NewNode(fmt.Sprintf("n%d", i),
					resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: speed}))
			}
			sim, err := New(Config{
				Pool: pool, Net: simnet.New(simnet.Link{BandwidthMBps: 1e6}), Policy: sched.FIFO{},
			}, specs)
			if err != nil {
				return -1
			}
			res, err := sim.Run()
			if err != nil {
				return -1
			}
			return res.Makespan
		}
		slow := run(1)
		fast := run(2)
		return slow > 0 && fast > 0 && fast <= slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
