// Package infra simulates an advanced cyberinfrastructure platform — the
// substitute for the paper's MareNostrum runs, cloud deployments and fog
// testbeds (DESIGN.md §4). It is a discrete-event engine over virtual time
// (internal/simclock): tasks declare data accesses, the access processor
// derives the dependency graph, a pluggable scheduling policy places ready
// tasks on nodes, transfers are priced by the network model, and energy is
// integrated per node.
//
// The engine also models the paper's dynamic behaviours: elasticity
// (Sec. VI-A), node failures with recovery through persisted data
// (Sec. VI-B, experiment E7) and online learning of task durations
// (Sec. VI-C, experiment E8).
package infra

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/deps"
	"repro/internal/energy"
	"repro/internal/mlpredict"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// TaskSpec declares one task of a simulated workflow.
type TaskSpec struct {
	// ID must be unique and registration happens in slice order, so
	// dependencies always point to earlier specs.
	ID int64
	// Class names the task type (predictor key, trace label).
	Class string
	// Duration is the base compute time on a SpeedFactor-1 core.
	Duration time.Duration
	// Constraints are the resource requirements (paper Sec. VI-A).
	Constraints resources.Constraints
	// Accesses declare the data the task touches; the access processor
	// turns them into dependencies.
	Accesses []deps.Access
	// OutputBytes sizes the data versions this task writes (keyed by
	// DataID; applies to whichever version the write produces).
	OutputBytes map[deps.DataID]int64
	// Release keeps the task invisible to the scheduler until this
	// virtual instant (bursty arrivals, e.g. sensor-driven workloads).
	Release time.Duration
}

// Failure kills a node at a virtual instant (experiment E7: "part of the
// application failed on a fog node (disappeared for low battery or because
// no longer in the fog area)").
type Failure struct {
	Node string
	At   time.Duration
}

// Config assembles a simulation.
type Config struct {
	// Pool is the starting set of nodes. Required.
	Pool *resources.Pool
	// Net models transfer costs. Required.
	Net *simnet.Network
	// Policy places ready tasks. Required.
	Policy sched.Policy
	// Predictor, when set, is trained online with completed-task
	// durations and consulted by prediction-aware policies.
	Predictor *mlpredict.Predictor
	// Tracer, when set, receives events.
	Tracer *trace.Tracer
	// StageIn locates externally provided data (version 0) with sizes.
	StageIn map[deps.DataID]int64
	// StageInNode holds the staged-in data (default: first pool node).
	StageInNode string
	// StageInNodes overrides StageInNode per datum with explicit replica
	// locations — how partitioned storage backends (Hecuba) advertise
	// placement to the scheduler (E4).
	StageInNodes map[deps.DataID][]string
	// PersistNode, when non-empty, receives a replica of every task
	// output — the dataClay persistence that makes recovery cheap
	// ("whenever a task is submitted to a remote agent, the COMPSs
	// runtime persists any not-yet-persisted object", Sec. VI-B).
	PersistNode string
	// Failures inject node deaths.
	Failures []Failure
	// Elastic enables pool scaling through the manager.
	Elastic *resources.ElasticManager
	// ElasticEvery is the evaluation period (default 10s).
	ElasticEvery time.Duration
	// DisableRenaming turns off data-version renaming in the access
	// processor, so WAR/WAW false dependencies serialise the graph
	// (ablation A1 in DESIGN.md §6).
	DisableRenaming bool
}

// Result summarises a simulation run.
type Result struct {
	// Makespan is the completion time of the last task.
	Makespan time.Duration
	// TasksCompleted counts task executions that finished (re-executions
	// count again).
	TasksCompleted int
	// TasksFailed counts executions killed by node failures.
	TasksFailed int
	// TasksReExecuted counts recovery re-runs of already-completed tasks
	// (recompute of lost data).
	TasksReExecuted int
	// BytesMoved is the total payload transferred between nodes.
	BytesMoved int64
	// TransferTime is the summed transfer time on task critical paths.
	TransferTime time.Duration
	// ActiveEnergy and TotalEnergy are the energy figures (J).
	ActiveEnergy energy.Joules
	TotalEnergy  energy.Joules
	// BusyCoreSeconds integrates core occupancy.
	BusyCoreSeconds float64
	// Utilization is BusyCoreSeconds over pool capacity × makespan.
	Utilization float64
	// PeakNodes is the largest pool size observed (elasticity).
	PeakNodes int
	// NodeSeconds integrates pool size over time (cost proxy for E11).
	NodeSeconds float64
	// DepEdges counts dependency edges by kind (RAW only unless
	// DisableRenaming is set).
	DepEdges deps.Stats
}

// task states
type taskState int

const (
	statePending taskState = iota + 1
	stateReady
	stateRunning
	stateDone
)

type simTask struct {
	spec       TaskSpec
	sig        string  // cached constraint signature (placement blocking)
	prio       float64 // priority at the time the task became ready
	state      taskState
	waitCount  int // unmet dependencies
	dependents []int64
	reads      []transfer.Key
	writes     []transfer.Key
	inBytes    int64
	// running bookkeeping
	nodes   []string // reserved nodes (≥1; >1 for MPI tasks)
	started time.Duration
	epoch   int // placement counter; invalidates stale completion events
	// recovery bookkeeping
	redeps    map[int64]struct{} // tasks waiting on this re-execution
	completed bool               // has completed at least once
}

// Sim is one simulation instance. Build with New, then Run once.
type Sim struct {
	cfg   Config
	clock *simclock.Clock
	mgr   *transfer.Manager
	acct  *energy.Accountant
	proc  *deps.Processor
	tasks map[int64]*simTask
	order []int64
	// The ready set is organised as one FIFO per constraint signature:
	// placeability depends only on the signature, so a scheduling wave
	// touches each signature's head instead of rescanning every queued
	// task (O(placements × signatures) — essential at paper scale).
	ready  map[string][]int64
	sigs   []string // sorted signature list (deterministic iteration)
	readyN int
	result Result

	producer  map[transfer.Key]int64 // which task writes each version
	nodeAdded map[string]time.Duration
	remaining int
	err       error
}

// Errors reported by Run.
var (
	ErrStuck       = errors.New("infra: tasks cannot be scheduled (unsatisfiable constraints or empty pool)")
	ErrConfig      = errors.New("infra: invalid config")
	ErrDuplicateID = errors.New("infra: duplicate task ID")
)

// New validates the config and registers the workflow.
func New(cfg Config, specs []TaskSpec) (*Sim, error) {
	if cfg.Pool == nil || cfg.Net == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("%w: pool, net and policy are required", ErrConfig)
	}
	if cfg.ElasticEvery <= 0 {
		cfg.ElasticEvery = 10 * time.Second
	}
	var procOpts []deps.Option
	if cfg.DisableRenaming {
		procOpts = append(procOpts, deps.WithoutRenaming())
	}
	s := &Sim{
		cfg:       cfg,
		clock:     simclock.New(),
		mgr:       transfer.NewManager(cfg.Net, transfer.NewRegistry()),
		acct:      energy.NewAccountant(),
		proc:      deps.NewProcessor(procOpts...),
		tasks:     make(map[int64]*simTask, len(specs)),
		ready:     make(map[string][]int64),
		producer:  make(map[transfer.Key]int64),
		nodeAdded: make(map[string]time.Duration),
		remaining: len(specs),
	}

	// Stage in external data.
	stageNode := cfg.StageInNode
	if stageNode == "" {
		if nodes := cfg.Pool.Nodes(); len(nodes) > 0 {
			stageNode = nodes[0].Name()
		}
	}
	for d, size := range cfg.StageIn {
		k := transfer.Key{Data: d, Ver: 0}
		s.mgr.Registry().SetSize(k, size)
		if nodes, ok := cfg.StageInNodes[d]; ok && len(nodes) > 0 {
			for _, n := range nodes {
				s.mgr.Registry().AddReplica(k, n)
			}
			continue
		}
		if stageNode != "" {
			s.mgr.Registry().AddReplica(k, stageNode)
		}
	}

	// Register tasks through the access processor in slice order.
	for _, spec := range specs {
		if _, dup := s.tasks[spec.ID]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateID, spec.ID)
		}
		res := s.proc.Register(deps.TaskID(spec.ID), spec.Accesses)
		t := &simTask{
			spec:   spec,
			sig:    constraintSig(spec.Constraints),
			state:  statePending,
			redeps: make(map[int64]struct{}),
		}
		for _, v := range res.Reads {
			k := transfer.KeyOf(v)
			t.reads = append(t.reads, k)
			t.inBytes += s.mgr.Registry().Size(k)
		}
		for _, v := range res.Writes {
			k := transfer.KeyOf(v)
			t.writes = append(t.writes, k)
			s.producer[k] = spec.ID
			if size, ok := spec.OutputBytes[v.Data]; ok {
				s.mgr.Registry().SetSize(k, size)
			}
		}
		t.waitCount = len(res.Deps)
		if spec.Release > 0 {
			// One synthetic dependency cleared by a clock event.
			t.waitCount++
		}
		for _, d := range res.Deps {
			s.tasks[int64(d)].dependents = append(s.tasks[int64(d)].dependents, spec.ID)
		}
		s.tasks[spec.ID] = t
		s.order = append(s.order, spec.ID)
		if t.waitCount == 0 {
			t.state = stateReady
			s.pushReady(spec.ID)
		}
	}

	for _, n := range cfg.Pool.Nodes() {
		s.nodeAdded[n.Name()] = 0
	}
	return s, nil
}

// schedCtx builds the policy context.
func (s *Sim) schedCtx() *sched.Context {
	return &sched.Context{
		Registry:  s.mgr.Registry(),
		Net:       s.cfg.Net,
		Predictor: s.cfg.Predictor,
	}
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (Result, error) {
	// Arm failure events.
	for _, f := range s.cfg.Failures {
		f := f
		s.clock.At(f.At, func() { s.failNode(f.Node) })
	}
	// Arm release events.
	for _, id := range s.order {
		t := s.tasks[id]
		if t.spec.Release <= 0 {
			continue
		}
		id := id
		s.clock.At(t.spec.Release, func() {
			rt := s.tasks[id]
			rt.waitCount--
			if rt.waitCount == 0 && rt.state == statePending {
				rt.state = stateReady
				s.pushReady(id)
				s.trySchedule()
			}
		})
	}
	// Arm elasticity.
	if s.cfg.Elastic != nil {
		var tick func()
		tick = func() {
			if s.remaining > 0 {
				s.elasticStep()
				s.clock.After(s.cfg.ElasticEvery, tick)
			}
		}
		s.clock.After(s.cfg.ElasticEvery, tick)
	}

	s.trySchedule()
	for s.remaining > 0 {
		if !s.clock.Step() {
			if s.err == nil {
				s.err = fmt.Errorf("%w: %d tasks remain at %v", ErrStuck, s.remaining, s.clock.Now())
			}
			break
		}
		if s.err != nil {
			break
		}
	}
	// Drain trailing events (e.g. elastic ticks) without advancing work.
	s.result.Makespan = s.clock.Now()
	s.result.DepEdges = s.proc.Stats()

	// Close energy/idle accounting and node-seconds.
	var capCoreSeconds float64
	for name, added := range s.nodeAdded {
		span := s.clock.Now() - added
		if span < 0 {
			span = 0
		}
		if n, ok := s.cfg.Pool.Get(name); ok {
			s.acct.SetSpan(name, n.Desc(), span)
			capCoreSeconds += float64(n.Desc().Cores) * span.Seconds()
			s.result.NodeSeconds += span.Seconds()
		}
	}
	s.result.ActiveEnergy = s.acct.ActiveEnergy()
	s.result.TotalEnergy = s.acct.TotalEnergy()
	if capCoreSeconds > 0 {
		s.result.Utilization = s.result.BusyCoreSeconds / capCoreSeconds
	}
	if s.result.PeakNodes == 0 {
		s.result.PeakNodes = s.cfg.Pool.Len()
	}
	return s.result, s.err
}

// trySchedule attempts to place ready tasks, best head first, until every
// signature is blocked or the queues drain.
func (s *Sim) trySchedule() {
	if s.readyN == 0 {
		return
	}
	blocked := make(map[string]struct{})
	for {
		bestSig := ""
		var bestTask *simTask
		for _, sig := range s.sigs {
			if _, b := blocked[sig]; b {
				continue
			}
			q := s.ready[sig]
			if len(q) == 0 {
				continue
			}
			t := s.tasks[q[0]]
			if bestTask == nil || headLess(t, bestTask) {
				bestSig, bestTask = sig, t
			}
		}
		if bestTask == nil {
			return
		}
		if !s.place(bestTask.spec.ID) {
			blocked[bestSig] = struct{}{}
			continue
		}
		s.ready[bestSig] = s.ready[bestSig][1:]
		s.readyN--
	}
}

// headLess orders queue heads: multi-node first, then higher priority,
// then lower ID.
func headLess(a, b *simTask) bool {
	an, bn := a.spec.Constraints.EffectiveNodes(), b.spec.Constraints.EffectiveNodes()
	if an != bn {
		return an > bn
	}
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.spec.ID < b.spec.ID
}

// pushReady inserts a task into its signature queue, keeping the queue
// ordered by (priority desc, ID asc). The priority is evaluated once, at
// push time (for prioritising policies).
func (s *Sim) pushReady(id int64) {
	t := s.tasks[id]
	if p, ok := s.cfg.Policy.(sched.Prioritizer); ok {
		t.prio = p.Priority(&sched.TaskView{
			ID: id, Class: t.spec.Class, Constraints: t.spec.Constraints,
			EstDuration: t.spec.Duration, InputKeys: t.reads, InputBytes: t.inBytes,
		}, s.schedCtx())
	}
	q, exists := s.ready[t.sig]
	if !exists {
		// New signature: keep s.sigs sorted.
		pos := sort.SearchStrings(s.sigs, t.sig)
		s.sigs = append(s.sigs, "")
		copy(s.sigs[pos+1:], s.sigs[pos:])
		s.sigs[pos] = t.sig
	}
	// Binary insert; the common case (ascending IDs, equal priority)
	// appends at the end in O(1).
	at := sort.Search(len(q), func(i int) bool { return headLess(t, s.tasks[q[i]]) })
	q = append(q, 0)
	copy(q[at+1:], q[at:])
	q[at] = id
	s.ready[t.sig] = q
	s.readyN++
}

// constraintSig canonicalises constraints for the placement-blocking set.
func constraintSig(c resources.Constraints) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%v",
		c.Cores, c.MemoryMB, c.GPUs, c.Nodes, c.Class, c.Software)
}

// place tries to start task id now; reports success.
func (s *Sim) place(id int64) bool {
	t := s.tasks[id]
	fitting := s.cfg.Pool.Fitting(t.spec.Constraints)
	wantNodes := t.spec.Constraints.EffectiveNodes()
	if len(fitting) < wantNodes {
		return false
	}
	view := &sched.TaskView{
		ID:          id,
		Class:       t.spec.Class,
		Constraints: t.spec.Constraints,
		EstDuration: t.spec.Duration,
		InputKeys:   t.reads,
		InputBytes:  t.inBytes,
	}
	primary := s.cfg.Policy.Pick(view, fitting, s.schedCtx())
	if primary == nil {
		return false
	}
	group := []*resources.Node{primary}
	for _, n := range fitting {
		if len(group) == wantNodes {
			break
		}
		if n != primary {
			group = append(group, n)
		}
	}
	if len(group) < wantNodes {
		return false
	}
	for i, n := range group {
		if err := n.Reserve(t.spec.Constraints); err != nil {
			for _, done := range group[:i] {
				done.Release(t.spec.Constraints)
			}
			return false
		}
	}

	// Stage inputs to the primary node.
	plan := s.mgr.PlanFetch(primary.Name(), t.reads)
	// Inputs with no replica anywhere should not happen outside recovery
	// races; treat as zero-cost (the recovery path resubmits producers
	// before dependents become ready).
	s.mgr.Apply(plan)
	s.result.BytesMoved += plan.Bytes
	s.result.TransferTime += plan.Time
	if plan.Bytes > 0 {
		s.cfg.Tracer.Record(trace.Event{
			At: s.clock.Now(), Kind: trace.DataTransfer, Task: id,
			Node: primary.Name(), Info: fmt.Sprintf("%dB", plan.Bytes),
		})
	}

	t.state = stateRunning
	t.started = s.clock.Now()
	t.epoch++
	t.nodes = make([]string, len(group))
	for i, n := range group {
		t.nodes[i] = n.Name()
	}
	s.cfg.Tracer.Record(trace.Event{
		At: s.clock.Now(), Kind: trace.TaskStarted, Task: id, Node: primary.Name(), Info: t.spec.Class,
	})

	sf := primary.Desc().SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	run := time.Duration(float64(t.spec.Duration) / sf)
	epoch := t.epoch
	s.clock.After(plan.Time+run, func() { s.complete(id, run, epoch) })
	return true
}

// complete finishes a running task. Stale events (from a placement that a
// node failure cancelled) are identified by epoch and ignored.
func (s *Sim) complete(id int64, ran time.Duration, epoch int) {
	t := s.tasks[id]
	if t.state != stateRunning || t.epoch != epoch {
		return // killed by a failure before this event fired
	}
	cores := t.spec.Constraints.EffectiveCores()
	for _, name := range t.nodes {
		if n, ok := s.cfg.Pool.Get(name); ok {
			n.Release(t.spec.Constraints)
			s.acct.AddTask(name, n.Desc(), cores, ran)
			s.result.BusyCoreSeconds += float64(cores) * ran.Seconds()
			if s.cfg.Predictor != nil {
				// Observe the speed-normalised (reference) duration.
				base := time.Duration(float64(ran) * n.Desc().SpeedFactor)
				s.cfg.Predictor.Observe(t.spec.Class, t.inBytes, base)
			}
		}
	}
	primary := t.nodes[0]

	// Register outputs on the primary node (and the persistence tier).
	for _, k := range t.writes {
		s.mgr.Registry().AddReplica(k, primary)
		if s.cfg.PersistNode != "" && s.cfg.PersistNode != primary {
			s.mgr.Registry().AddReplica(k, s.cfg.PersistNode)
			s.cfg.Tracer.Record(trace.Event{
				At: s.clock.Now(), Kind: trace.DataPersisted, Task: id, Node: s.cfg.PersistNode,
			})
		}
	}

	s.cfg.Tracer.Record(trace.Event{
		At: s.clock.Now(), Kind: trace.TaskCompleted, Task: id, Node: primary,
	})
	s.result.TasksCompleted++

	first := !t.completed
	t.completed = true
	t.state = stateDone
	t.nodes = nil

	if first {
		s.remaining--
		for _, dep := range t.dependents {
			dt := s.tasks[dep]
			dt.waitCount--
			if dt.waitCount == 0 && dt.state == statePending {
				dt.state = stateReady
				s.pushReady(dep)
			}
		}
	} else {
		s.result.TasksReExecuted++
	}
	// Wake tasks waiting on this re-execution (recovery).
	for dep := range t.redeps {
		dt := s.tasks[dep]
		dt.waitCount--
		if dt.waitCount == 0 && dt.state == statePending {
			dt.state = stateReady
			s.pushReady(dep)
		}
	}
	t.redeps = make(map[int64]struct{})

	s.trySchedule()
}

// failNode removes a node, kills its running tasks and triggers recovery.
func (s *Sim) failNode(name string) {
	if _, ok := s.cfg.Pool.Get(name); !ok {
		return
	}
	s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeFailed, Node: name})
	_ = s.cfg.Pool.Remove(name)

	// Data on the node is gone; note which versions lost their last copy.
	s.mgr.Registry().DropNode(name)

	// Kill running tasks that used the node.
	for _, id := range s.order {
		t := s.tasks[id]
		if t.state != stateRunning {
			continue
		}
		uses := false
		for _, n := range t.nodes {
			if n == name {
				uses = true
				break
			}
		}
		if !uses {
			continue
		}
		// Release reservations on surviving nodes.
		for _, n := range t.nodes {
			if n == name {
				continue
			}
			if node, ok := s.cfg.Pool.Get(n); ok {
				node.Release(t.spec.Constraints)
			}
		}
		t.nodes = nil
		t.state = statePending
		t.waitCount = 0
		s.result.TasksFailed++
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.TaskFailed, Task: id, Node: name})
		s.resubmit(id)
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.TaskRecovered, Task: id})
	}

	// Data lost with the node may be needed by tasks not yet run; their
	// producers will be resubmitted lazily when dependents check inputs.
	// Eagerly check ready tasks: some inputs may have vanished.
	for sig, q := range s.ready {
		still := q[:0]
		for _, id := range q {
			t := s.tasks[id]
			if missing := s.missingProducers(t); len(missing) > 0 {
				t.state = statePending
				t.waitCount = 0
				s.readyN--
				s.resubmit(id)
				continue
			}
			still = append(still, id)
		}
		s.ready[sig] = still
	}
	s.trySchedule()
}

// missingProducers lists producers of t's inputs that have no replica left.
func (s *Sim) missingProducers(t *simTask) []int64 {
	var out []int64
	for _, k := range t.reads {
		if len(s.mgr.Registry().Where(k)) > 0 {
			continue
		}
		if p, ok := s.producer[k]; ok {
			out = append(out, p)
		}
	}
	return out
}

// resubmit schedules a task for (re-)execution, recursively resubmitting
// producers of any input versions that lost every replica (recompute
// lineage — the no-persistence recovery path of E7).
func (s *Sim) resubmit(id int64) {
	t := s.tasks[id]
	switch t.state {
	case stateReady, stateRunning:
		return
	case statePending:
		if t.waitCount > 0 {
			return // already mid-resubmission (or waiting on live deps)
		}
	case stateDone:
		t.state = statePending
		t.waitCount = 0
	}
	waits := 0
	for _, k := range t.reads {
		if len(s.mgr.Registry().Where(k)) > 0 {
			continue
		}
		p, ok := s.producer[k]
		if !ok {
			continue // external data lost for good; nothing to recompute
		}
		pt := s.tasks[p]
		if _, dup := pt.redeps[id]; !dup {
			pt.redeps[id] = struct{}{}
			waits++
		}
		s.resubmit(p)
	}
	t.waitCount += waits
	if t.waitCount == 0 {
		t.state = stateReady
		s.pushReady(id)
	}
}

// elasticStep applies one elasticity evaluation.
func (s *Sim) elasticStep() {
	pending := s.readyN
	switch s.cfg.Elastic.Evaluate(s.cfg.Pool, pending) {
	case resources.Grow:
		node, delay, err := s.cfg.Elastic.GrowOne(s.cfg.Pool)
		if err != nil {
			return
		}
		s.nodeAdded[node.Name()] = s.clock.Now()
		if s.cfg.Pool.Len() > s.result.PeakNodes {
			s.result.PeakNodes = s.cfg.Pool.Len()
		}
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeAdded, Node: node.Name()})
		// Model the provisioning delay by blocking the whole node.
		hold := resources.Constraints{
			Cores:    node.Desc().Cores,
			MemoryMB: node.Desc().MemoryMB,
			GPUs:     node.Desc().GPUs,
		}
		if err := node.Reserve(hold); err == nil {
			s.clock.After(delay, func() {
				node.Release(hold)
				s.trySchedule()
			})
		}
	case resources.Shrink:
		victim, err := s.cfg.Elastic.ShrinkOne(s.cfg.Pool)
		if err != nil || victim == nil {
			return
		}
		added := s.nodeAdded[victim.Name()]
		span := s.clock.Now() - added
		s.acct.SetSpan(victim.Name(), victim.Desc(), span)
		s.result.NodeSeconds += span.Seconds()
		delete(s.nodeAdded, victim.Name())
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeRemoved, Node: victim.Name()})
	case resources.Hold:
	}
}

// Now exposes the simulation clock (useful in tests).
func (s *Sim) Now() time.Duration { return s.clock.Now() }
