// Package infra simulates an advanced cyberinfrastructure platform — the
// substitute for the paper's MareNostrum runs, cloud deployments and fog
// testbeds (DESIGN.md §4). It is a discrete-event backend over virtual time
// (internal/simclock) of the shared scheduling engine (internal/engine):
// tasks declare data accesses, the access processor derives the dependency
// graph, and the engine's sharded ready-queue and placement loop — the very
// same code the live runtime (internal/core) executes — place ready tasks
// on nodes, price transfers through the network model, and release
// dependents. This backend's Executor turns each placement into a
// completion event on the virtual clock, and energy is integrated per node.
//
// The simulator also models the paper's dynamic behaviours: elasticity
// (Sec. VI-A) with drain-then-remove downscaling that never kills running
// work, node failures with recovery through persisted data (Sec. VI-B,
// experiment E7), online learning of task durations (Sec. VI-C,
// experiment E8), scripted fault scenarios (Config.Faults) and the
// engine's cross-bucket work stealing (Config.Steal) — every knob
// mirrored by the live runtime, so behaviour studied here is behaviour
// the runtime executes. See docs/ARCHITECTURE.md for the task lifecycle
// on each backend.
package infra

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/deps"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/engine/checkpoint"
	"repro/internal/engine/faults"
	"repro/internal/mlpredict"
	"repro/internal/obsv"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// TaskSpec declares one task of a simulated workflow.
type TaskSpec struct {
	// ID must be unique and registration happens in slice order, so
	// dependencies always point to earlier specs.
	ID int64
	// Class names the task type (predictor key, trace label).
	Class string
	// Duration is the base compute time on a SpeedFactor-1 core.
	Duration time.Duration
	// Constraints are the resource requirements (paper Sec. VI-A).
	Constraints resources.Constraints
	// Accesses declare the data the task touches; the access processor
	// turns them into dependencies.
	Accesses []deps.Access
	// OutputBytes sizes the data versions this task writes (keyed by
	// DataID; applies to whichever version the write produces).
	OutputBytes map[deps.DataID]int64
	// Release keeps the task invisible to the scheduler until this
	// virtual instant (bursty arrivals, e.g. sensor-driven workloads).
	Release time.Duration
	// Tenant tags the task for admission control (Config.Admission);
	// empty means the default tenant.
	Tenant string
}

// Failure kills a node at a virtual instant (experiment E7: "part of the
// application failed on a fog node (disappeared for low battery or because
// no longer in the fog area)"). It is shorthand for a faults.Scenario with
// a single Crash event; richer scripts (slow nodes, partitions) go in
// Config.Faults.
type Failure struct {
	Node string
	At   time.Duration
}

// Config assembles a simulation.
type Config struct {
	// Pool is the starting set of nodes. Required.
	Pool *resources.Pool
	// Net models transfer costs. Required.
	Net *simnet.Network
	// Policy places ready tasks. Required.
	Policy sched.Policy
	// Predictor, when set, is trained online with completed-task
	// durations and consulted by prediction-aware policies.
	Predictor *mlpredict.Predictor
	// Tracer, when set, receives events.
	Tracer *trace.Tracer
	// StageIn locates externally provided data (version 0) with sizes.
	StageIn map[deps.DataID]int64
	// StageInNode holds the staged-in data (default: first pool node).
	StageInNode string
	// StageInNodes overrides StageInNode per datum with explicit replica
	// locations — how partitioned storage backends (Hecuba) advertise
	// placement to the scheduler (E4).
	StageInNodes map[deps.DataID][]string
	// PersistNode, when non-empty, receives a replica of every task
	// output — the dataClay persistence that makes recovery cheap
	// ("whenever a task is submitted to a remote agent, the COMPSs
	// runtime persists any not-yet-persisted object", Sec. VI-B).
	PersistNode string
	// Failures inject node deaths.
	Failures []Failure
	// Faults is a full fault script (crashes, slow nodes, drains, network
	// partitions) armed on the virtual clock alongside Failures.
	Faults faults.Scenario
	// Steal enables the engine's cross-bucket work stealing (default
	// off); the live runtime takes the identical knob, so steal decisions
	// are comparable one-to-one across backends.
	Steal engine.StealConfig
	// Availability selects what placement does with a task whose every
	// input replica is lost or partitioned away: run anyway (default),
	// defer until a heal or fresh replica, or recompute the producers
	// locally (engine.Availability). The live runtime takes the identical
	// knob.
	Availability engine.Availability
	// DisableIndex forces the engine's legacy materialized-slice
	// placement path even when the policy supports indexed picks
	// (sched.IndexedPolicy). Parity-testing escape hatch; the live
	// runtime takes the identical knob.
	DisableIndex bool
	// Checkpoint, when set (with a Store), snapshots the engine state to
	// disk under the configured policy, on the virtual clock — the same
	// policy the live runtime drives on wall time.
	Checkpoint *checkpoint.Config
	// Restore, when set, replays a snapshot into this simulation before
	// it runs: tasks the snapshot records as completed (and whose output
	// replicas survive on this pool) are marked done instead of
	// executing, and the data catalog re-seeds the location registry so
	// the transfer planner re-stages anything a dependent misses.
	// Task IDs must match the snapshotting run's (same specs, same
	// order).
	Restore *checkpoint.Snapshot
	// HaltAt, when positive, stops the event loop at that virtual
	// instant — the simulated equivalent of the whole process dying
	// mid-run (experiment E14). Run returns ErrHalted with the partial
	// result.
	HaltAt time.Duration
	// Elastic enables pool scaling through the manager.
	Elastic *resources.ElasticManager
	// ElasticEvery is the evaluation period (default 10s).
	ElasticEvery time.Duration
	// Autoscale enables cost-aware scaling across heterogeneous tiers;
	// evaluated on the same ElasticEvery period. Mutually exclusive with
	// Elastic — the autoscaler owns every variant's ElasticManager.
	Autoscale *autoscale.Autoscaler
	// Admission, when set, gates task visibility behind per-tenant
	// quotas: a task over its tenant's in-flight cap waits (via the same
	// synthetic-hold mechanism as Release) until completions free a slot
	// and weighted fair ordering picks it. The simulator requires an
	// unbounded admission queue (Quota.MaxQueued == 0): a preregistered
	// workload has no client to bounce a rejection back to.
	Admission *autoscale.Admission
	// DisableRenaming turns off data-version renaming in the access
	// processor, so WAR/WAW false dependencies serialise the graph
	// (ablation A1 in DESIGN.md §6).
	DisableRenaming bool
	// Metrics, when set, backs the engine (and the checkpointer, unless
	// its config carries its own bundle) with observability instruments
	// registered on this registry. Optional.
	Metrics *obsv.Registry
	// SampleEvery, when positive (and Metrics is set), snapshots the
	// registry into an in-memory time-series every virtual interval —
	// deterministic: identical runs produce byte-identical series,
	// retrievable through Sim.Sampler. Checkpoint capture-time metrics
	// are the exception (measured on the wall clock; sample
	// checkpoint-free runs when diffing series).
	SampleEvery time.Duration
}

// Result summarises a simulation run.
type Result struct {
	// Makespan is the completion time of the last task.
	Makespan time.Duration
	// TasksCompleted counts task executions that finished (re-executions
	// count again).
	TasksCompleted int
	// TasksFailed counts executions killed by node failures.
	TasksFailed int
	// TasksReExecuted counts recovery re-runs of already-completed tasks
	// (recompute of lost data).
	TasksReExecuted int
	// TasksRestored counts tasks resolved from a checkpoint snapshot
	// instead of executing (Config.Restore).
	TasksRestored int
	// TasksDeferred counts placement attempts parked by the availability
	// policy (Config.Availability); TasksRanMissing counts launches that
	// proceeded with at least one unreachable input (the run-anyway
	// executions the defer/recompute policies eliminate).
	TasksDeferred   int
	TasksRanMissing int
	// ReplicasRestaged counts data versions a placement-aware restore
	// copied back from the persist tier because every node recorded as
	// holding them had left the pool (Config.Restore).
	ReplicasRestaged int
	// BytesMoved is the total payload transferred between nodes.
	BytesMoved int64
	// TransferTime is the summed transfer time on task critical paths.
	TransferTime time.Duration
	// ActiveEnergy and TotalEnergy are the energy figures (J).
	ActiveEnergy energy.Joules
	TotalEnergy  energy.Joules
	// BusyCoreSeconds integrates core occupancy.
	BusyCoreSeconds float64
	// Utilization is BusyCoreSeconds over pool capacity × makespan.
	Utilization float64
	// PeakNodes is the largest pool size observed (elasticity).
	PeakNodes int
	// NodeSeconds integrates pool size over time (cost proxy for E11).
	NodeSeconds float64
	// DepEdges counts dependency edges by kind (RAW only unless
	// DisableRenaming is set).
	DepEdges deps.Stats
}

// Sim is one simulation instance. Build with New, then Run once.
type Sim struct {
	cfg   Config
	clock *simclock.Clock
	reg   *transfer.Registry
	acct  *energy.Accountant
	proc  *deps.Processor
	eng   *engine.Engine
	ckpt  *checkpoint.Checkpointer
	smp   *obsv.Sampler

	result        Result
	releases      []release
	tenantOf      map[int64]string
	admitStart    []int64
	restored      map[int64]bool
	nodeAdded     map[string]time.Duration
	remaining     int
	schedDeferred bool
	halted        bool
	err           error

	// Restore-time re-staging traffic (persist tier → live node); added
	// to the engine's transfer books when the run closes, so an eager
	// re-stage is not accounted as free relative to a demand fetch.
	restageBytes int64
	restageTime  time.Duration
}

// release delays a task's visibility to the scheduler.
type release struct {
	id int64
	at time.Duration
}

// Errors reported by Run.
var (
	ErrStuck       = errors.New("infra: tasks cannot be scheduled (unsatisfiable constraints or empty pool)")
	ErrConfig      = errors.New("infra: invalid config")
	ErrDuplicateID = errors.New("infra: duplicate task ID")
	// ErrHalted reports a run stopped by Config.HaltAt — the simulated
	// process death of the crash-restart experiments. The partial result
	// is still returned; resume from the latest checkpoint snapshot.
	ErrHalted = errors.New("infra: run halted (simulated process death)")
)

// New validates the config and registers the workflow.
func New(cfg Config, specs []TaskSpec) (*Sim, error) {
	if cfg.Pool == nil || cfg.Net == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("%w: pool, net and policy are required", ErrConfig)
	}
	if cfg.ElasticEvery <= 0 {
		cfg.ElasticEvery = 10 * time.Second
	}
	if cfg.Elastic != nil && cfg.Autoscale != nil {
		return nil, fmt.Errorf("%w: Elastic and Autoscale are mutually exclusive", ErrConfig)
	}
	if cfg.Admission != nil && cfg.Admission.Quota().MaxQueued > 0 {
		return nil, fmt.Errorf("%w: the simulator requires an unbounded admission queue (Quota.MaxQueued == 0)", ErrConfig)
	}
	var procOpts []deps.Option
	if cfg.DisableRenaming {
		procOpts = append(procOpts, deps.WithoutRenaming())
	}
	s := &Sim{
		cfg:       cfg,
		clock:     simclock.New(),
		reg:       transfer.NewRegistry(),
		acct:      energy.NewAccountant(),
		proc:      deps.NewProcessor(procOpts...),
		nodeAdded: make(map[string]time.Duration),
		remaining: len(specs),
	}
	if cfg.Admission != nil {
		s.tenantOf = make(map[int64]string, len(specs))
	}
	if cfg.Metrics != nil && cfg.SampleEvery > 0 {
		s.smp = obsv.NewSampler(cfg.Metrics)
	}
	s.eng = engine.New(engine.Config{
		Pool:         cfg.Pool,
		Policy:       cfg.Policy,
		Clock:        s.clock,
		Executor:     &simExecutor{s},
		Metrics:      obsv.NewEngineMetrics(cfg.Metrics),
		Registry:     s.reg,
		Net:          cfg.Net,
		PersistNode:  cfg.PersistNode,
		Tracer:       cfg.Tracer,
		Steal:        cfg.Steal,
		Availability: cfg.Availability,
		DisableIndex: cfg.DisableIndex,
		SchedContext: &sched.Context{
			Registry:  s.reg,
			Net:       cfg.Net,
			Predictor: cfg.Predictor,
		},
	})

	// Stage in external data.
	stageNode := cfg.StageInNode
	if stageNode == "" {
		if nodes := cfg.Pool.Nodes(); len(nodes) > 0 {
			stageNode = nodes[0].Name()
		}
	}
	for d, size := range cfg.StageIn {
		k := transfer.Key{Data: d, Ver: 0}
		s.reg.SetSize(k, size)
		if nodes, ok := cfg.StageInNodes[d]; ok && len(nodes) > 0 {
			for _, n := range nodes {
				s.reg.AddReplica(k, n)
			}
			continue
		}
		if stageNode != "" {
			s.reg.AddReplica(k, stageNode)
		}
	}

	// Register the whole workflow through the access processor in slice
	// order — one lock acquisition for the full graph.
	batch := make([]deps.TaskAccesses, len(specs))
	seen := make(map[int64]struct{}, len(specs))
	for i, spec := range specs {
		if _, dup := seen[spec.ID]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateID, spec.ID)
		}
		seen[spec.ID] = struct{}{}
		batch[i] = deps.TaskAccesses{Task: deps.TaskID(spec.ID), Accesses: spec.Accesses}
	}
	results := s.proc.RegisterBatch(batch)
	for i, spec := range specs {
		res := results[i]
		et := &engine.Task{
			ID:          spec.ID,
			Class:       spec.Class,
			Constraints: spec.Constraints,
			EstDuration: spec.Duration,
		}
		for _, v := range res.Reads {
			k := transfer.KeyOf(v)
			et.InputKeys = append(et.InputKeys, k)
			et.InputBytes += s.reg.Size(k)
		}
		for _, v := range res.Writes {
			k := transfer.KeyOf(v)
			et.OutputKeys = append(et.OutputKeys, k)
			if size, ok := spec.OutputBytes[v.Data]; ok {
				s.reg.SetSize(k, size)
			}
		}
		// Release delays and admission gating share one synthetic
		// dependency: a released task re-submits through the admission
		// controller, so a tenant over quota stays held past its release
		// instant until a completion frees a slot.
		holds := 0
		if spec.Release > 0 || cfg.Admission != nil {
			holds = 1
			if spec.Release > 0 {
				s.releases = append(s.releases, release{id: spec.ID, at: spec.Release})
			} else {
				s.admitStart = append(s.admitStart, spec.ID)
			}
		}
		if cfg.Admission != nil {
			s.tenantOf[spec.ID] = spec.Tenant
		}
		s.eng.Add(et, res.Deps, holds)
	}

	for _, n := range cfg.Pool.Nodes() {
		s.nodeAdded[n.Name()] = 0
	}
	if cfg.Elastic != nil {
		// Downscale victims are cordoned through the engine, so the drain
		// lands on the scheduler's books (and the trace) before removal.
		cfg.Elastic.SetCordon(s.eng.DrainNode)
	}
	if cfg.Autoscale != nil {
		// Same cordon route for every variant the autoscaler manages.
		cfg.Autoscale.SetCordon(s.eng.DrainNode)
	}
	if cfg.Restore != nil {
		if cfg.Restore.Format != checkpoint.Format {
			return nil, fmt.Errorf("%w: snapshot format %d, want %d",
				ErrConfig, cfg.Restore.Format, checkpoint.Format)
		}
		s.applyRestore(cfg.Restore)
	}
	if cfg.Checkpoint != nil && cfg.Checkpoint.Store != nil {
		ck := *cfg.Checkpoint
		if ck.Timer == nil {
			ck.Timer = ckptTimer{s}
		}
		if ck.Tracer == nil {
			ck.Tracer = cfg.Tracer
		}
		if ck.Metrics == nil && cfg.Metrics != nil {
			ck.Metrics = obsv.NewCkptMetrics(cfg.Metrics)
		}
		s.ckpt = checkpoint.NewCheckpointer(ck, s)
	}
	return s, nil
}

// ckptTimer adapts the virtual clock for interval checkpoints, gating
// each firing on simulation liveness: when a checkpoint event pops and
// nothing else is scheduled, the run has drained, halted or wedged, and
// firing (which would save and re-arm) would keep the event heap
// non-empty forever — masking the ErrStuck detection, which relies on
// the clock draining. Dropping the callback ends the interval chain;
// completions still pending in the heap mean the run is alive and the
// chain continues.
type ckptTimer struct{ s *Sim }

// At implements checkpoint.Timer.
func (t ckptTimer) At(at time.Duration, fn func()) {
	t.s.clock.At(at, func() {
		if t.s.remaining == 0 || t.s.halted || t.s.clock.Pending() == 0 {
			return
		}
		fn()
	})
}

// applyRestore replays a snapshot placement-aware: the data catalog
// re-seeds the location registry with the replicas this incarnation's
// pool actually holds (plus the persist tier), and versions whose every
// recorded compute node has vanished — the pool shrank or changed between
// the incarnations — are re-staged from the persist tier onto the
// best-connected live node ahead of demand, instead of being dropped.
// Then every recorded completion whose outputs all kept at least one
// replica is marked done in the engine — its dependents release exactly
// as a live completion would have released them. Only when no tier holds
// a value is its producer left to re-run, with lineage recovery
// recomputing what it needs.
func (s *Sim) applyRestore(snap *checkpoint.Snapshot) {
	for _, en := range snap.Catalog {
		k := en.Key.Key()
		if en.Size > 0 {
			s.reg.SetSize(k, en.Size)
		}
		live, vanished := 0, 0
		persisted := false
		for _, loc := range en.Locations {
			if _, ok := s.cfg.Pool.Get(loc); ok {
				s.reg.AddReplica(k, loc)
				live++
			} else if loc != "" && loc == s.cfg.PersistNode {
				s.reg.AddReplica(k, loc)
				persisted = true
			} else {
				vanished++
			}
		}
		if live == 0 && vanished > 0 && persisted {
			if tgt := s.restageTarget(k); tgt != "" {
				s.reg.AddReplica(k, tgt)
				s.result.ReplicasRestaged++
				s.restageBytes += s.reg.Size(k)
				s.restageTime += s.cfg.Net.TransferTime(s.cfg.PersistNode, tgt, s.reg.Size(k))
				s.cfg.Tracer.Record(trace.Event{
					Kind: trace.DataRestaged, Node: tgt,
					Info: fmt.Sprintf("data %d v%d from %s", k.Data, k.Ver, s.cfg.PersistNode),
				})
			}
		}
	}
	restored := 0
	for _, rec := range snap.Completed {
		alive := true
		for _, out := range rec.Outputs {
			if len(s.reg.Where(out.Key())) == 0 {
				alive = false
				break
			}
		}
		if !alive {
			continue
		}
		if s.eng.RestoreCompleted(rec.ID, rec.Epoch) {
			restored++
			s.remaining--
			if s.cfg.Admission != nil {
				// A restored task never runs, so it must never consume a
				// quota slot: admitRelease skips it.
				if s.restored == nil {
					s.restored = make(map[int64]bool)
				}
				s.restored[rec.ID] = true
			}
		}
	}
	s.result.TasksRestored = restored
	s.cfg.Tracer.Record(trace.Event{
		Kind: trace.CheckpointRestored,
		Info: fmt.Sprintf("%d/%d completed tasks (snapshot %d)", restored, len(snap.Completed), snap.Seq),
	})
}

// restageTarget picks the live node a re-staged version lands on: the
// cheapest fetch from the persist tier, in pool order on ties, skipping
// nodes the persist tier cannot currently reach (cut links).
func (s *Sim) restageTarget(k transfer.Key) string {
	size := s.reg.Size(k)
	best := ""
	var bestT time.Duration
	for _, n := range s.cfg.Pool.Nodes() {
		if !s.cfg.Net.Reachable(s.cfg.PersistNode, n.Name()) {
			continue
		}
		if t := s.cfg.Net.TransferTime(s.cfg.PersistNode, n.Name(), size); best == "" || t < bestT {
			best, bestT = n.Name(), t
		}
	}
	return best
}

// CheckpointSnapshot implements checkpoint.Source: the engine's task
// table plus the simulator's location registry as the data catalog.
func (s *Sim) CheckpointSnapshot() *checkpoint.Snapshot {
	return checkpoint.Capture(s.eng, s.reg)
}

// CheckpointBase implements checkpoint.DeltaSource: a full capture that
// resets the dirty sets, starting (or compacting) a delta chain.
func (s *Sim) CheckpointBase() *checkpoint.Snapshot {
	return checkpoint.CaptureBase(s.eng, s.reg)
}

// CheckpointDelta implements checkpoint.DeltaSource: the changes since
// the last base or delta capture.
func (s *Sim) CheckpointDelta() *checkpoint.Delta {
	return checkpoint.CaptureDelta(s.eng, s.reg)
}

// CheckpointDirty implements checkpoint.DeltaSource.
func (s *Sim) CheckpointDirty() int {
	return s.eng.DirtyCount() + s.reg.DirtyCount()
}

// Checkpoint takes an on-demand snapshot (requires Config.Checkpoint).
func (s *Sim) Checkpoint() error {
	if s.ckpt == nil {
		return fmt.Errorf("%w: no checkpoint store configured", ErrConfig)
	}
	return s.ckpt.Save()
}

// simExecutor adapts the simulation to engine.Executor: each placement
// becomes a completion event on the virtual clock, delayed by the modelled
// staging time plus the speed-scaled compute time (stretched by any
// injected slow-node factor).
type simExecutor struct{ s *Sim }

// Launch implements engine.Executor.
func (x *simExecutor) Launch(p engine.Placement) {
	sf := p.Primary().Desc().SpeedFactor
	if sf <= 0 {
		sf = 1
	}
	run := time.Duration(float64(p.Task.EstDuration) / sf)
	if p.SlowFactor > 1 {
		run = time.Duration(float64(run) * p.SlowFactor)
	}
	id, epoch := p.Task.ID, p.Epoch
	x.s.clock.After(p.TransferTime+run, func() { x.s.finish(id, run, epoch) })
}

// finish handles one completion event. Stale events (from a placement
// that a node failure cancelled) are rejected by the engine's epoch check.
func (s *Sim) finish(id int64, ran time.Duration, epoch int) {
	comp, ok := s.eng.Complete(id, epoch, false)
	if !ok {
		return
	}
	t := comp.Task
	cores := t.Constraints.EffectiveCores()
	for _, n := range comp.Nodes {
		s.acct.AddTask(n.Name(), n.Desc(), cores, ran)
		s.result.BusyCoreSeconds += float64(cores) * ran.Seconds()
		if s.cfg.Predictor != nil {
			// Observe the speed-normalised (reference) duration.
			base := time.Duration(float64(ran) * n.Desc().SpeedFactor)
			s.cfg.Predictor.Observe(t.Class, t.InputBytes, base)
		}
	}
	s.result.TasksCompleted++
	if comp.First {
		s.remaining--
	} else {
		s.result.TasksReExecuted++
	}
	if s.cfg.Admission != nil && comp.First {
		// The first completion returns the tenant's quota slot; promoted
		// queue heads (possibly other tenants') get their holds lifted and
		// join the deferred placement wave below.
		for _, rel := range s.cfg.Admission.Complete(s.tenantOf[id]) {
			if rid, ok := rel.Payload.(int64); ok {
				s.eng.ReleaseHold(rid)
			}
		}
	}
	if s.ckpt != nil {
		// Snapshot before the deferred placement wave, so an every-N
		// policy captures the same post-completion, pre-placement state
		// on both backends (the checkpoint parity invariant).
		s.ckpt.TaskCompleted()
	}
	s.deferSchedule()
}

// admitRelease makes one task visible to the scheduler, asking the
// admission controller first when one is configured. A task the
// controller queues keeps its synthetic hold; finish promotes it later.
func (s *Sim) admitRelease(id int64) {
	if s.restored[id] {
		return // resolved from a snapshot; never ran, never admitted
	}
	if s.cfg.Admission == nil {
		if s.eng.ReleaseHold(id) {
			s.eng.Schedule()
		}
		return
	}
	switch s.cfg.Admission.Submit(s.tenantOf[id], id) {
	case autoscale.Admitted:
		if s.eng.ReleaseHold(id) {
			s.eng.Schedule()
		}
	case autoscale.Queued:
		s.eng.RecordAdmission(1, 0)
	case autoscale.Rejected:
		// Unreachable: New rejects bounded admission queues on this
		// backend (a preregistered task has no client to bounce to, and
		// dropping it would wedge the run).
		s.eng.RecordAdmission(0, 1)
	}
}

// deferSchedule coalesces scheduling: the first completion of a virtual
// instant defers a single placement wave to the end of the instant, so a
// batch of same-time completions is scheduled once instead of once each.
func (s *Sim) deferSchedule() {
	if s.schedDeferred {
		return
	}
	s.schedDeferred = true
	s.clock.Defer(func() {
		s.schedDeferred = false
		s.eng.Schedule()
	})
}

// Run executes the simulation to completion and returns the result.
func (s *Sim) Run() (Result, error) {
	// Arm fault events: legacy Failures become Crash events in front of
	// the full script, all scheduled on the virtual clock.
	script := make(faults.Scenario, 0, len(s.cfg.Failures)+len(s.cfg.Faults))
	for _, f := range s.cfg.Failures {
		script = append(script, faults.Event{At: f.At, Kind: faults.Crash, Node: f.Node})
	}
	script = append(script, s.cfg.Faults...)
	if _, err := faults.Run(s.clock, s, script); err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	// Arm release events (routed through admission when configured).
	for _, r := range s.releases {
		id := r.id
		s.clock.At(r.at, func() { s.admitRelease(id) })
	}
	// Submit the un-delayed tasks to admission at time zero: an
	// over-quota tenant's work queues here and surfaces only as
	// completions free slots.
	for _, id := range s.admitStart {
		s.admitRelease(id)
	}
	// Arm elasticity (legacy single-tier manager or cost-aware
	// autoscaler — New rejects configs with both).
	if s.cfg.Elastic != nil || s.cfg.Autoscale != nil {
		step := s.elasticStep
		if s.cfg.Autoscale != nil {
			step = func() { s.AutoscaleStep() }
		}
		var tick func()
		tick = func() {
			if s.remaining > 0 {
				step()
				s.clock.After(s.cfg.ElasticEvery, tick)
			}
		}
		s.clock.After(s.cfg.ElasticEvery, tick)
	}

	// Arm the simulated process death.
	if s.cfg.HaltAt > 0 {
		s.clock.At(s.cfg.HaltAt, func() { s.halted = true })
	}

	// Arm metric sampling on the virtual clock. Gated on liveness the
	// same way as ckptTimer: when a sampling event pops with nothing else
	// pending, the run has drained or wedged, and re-arming would keep
	// the event heap alive forever, masking ErrStuck.
	if s.smp != nil {
		var tick func()
		tick = func() {
			if s.remaining == 0 || s.halted || s.clock.Pending() == 0 {
				return
			}
			s.smp.Sample(s.clock.Now())
			s.clock.After(s.cfg.SampleEvery, tick)
		}
		s.clock.After(s.cfg.SampleEvery, tick)
	}

	s.eng.Schedule()
	for s.remaining > 0 && !s.halted {
		if !s.clock.Step() {
			if s.err == nil {
				if parked := s.eng.ParkedCount(); parked > 0 {
					s.err = fmt.Errorf("%w: %d tasks remain at %v (%d parked on unreachable data — a scripted cut never healed?)",
						ErrStuck, s.remaining, s.clock.Now(), parked)
				} else {
					s.err = fmt.Errorf("%w: %d tasks remain at %v", ErrStuck, s.remaining, s.clock.Now())
				}
			}
			break
		}
		if s.err != nil {
			break
		}
	}
	if s.halted && s.remaining > 0 && s.err == nil {
		s.err = fmt.Errorf("%w: %d tasks unfinished at %v", ErrHalted, s.remaining, s.clock.Now())
	}
	if s.remaining == 0 && s.ckpt != nil {
		s.ckpt.Drained()
	}
	// One closing sample at the makespan instant, so every series ends on
	// the run's final state (still deterministic — virtual timestamp).
	s.smp.Sample(s.clock.Now())
	s.result.Makespan = s.clock.Now()
	s.result.DepEdges = s.proc.Stats()
	st := s.eng.Stats()
	s.result.BytesMoved = st.BytesMoved + s.restageBytes
	s.result.TransferTime = st.TransferTime + s.restageTime
	s.result.TasksDeferred = st.Deferred
	s.result.TasksRanMissing = st.RanMissing

	// Close energy/idle accounting and node-seconds.
	var capCoreSeconds float64
	for name, added := range s.nodeAdded {
		span := s.clock.Now() - added
		if span < 0 {
			span = 0
		}
		if n, ok := s.cfg.Pool.Get(name); ok {
			s.acct.SetSpan(name, n.Desc(), span)
			capCoreSeconds += float64(n.Desc().Cores) * span.Seconds()
			s.result.NodeSeconds += span.Seconds()
		}
	}
	s.result.ActiveEnergy = s.acct.ActiveEnergy()
	s.result.TotalEnergy = s.acct.TotalEnergy()
	if capCoreSeconds > 0 {
		s.result.Utilization = s.result.BusyCoreSeconds / capCoreSeconds
	}
	if s.result.PeakNodes == 0 {
		s.result.PeakNodes = s.cfg.Pool.Len()
	}
	return s.result, s.err
}

// Timings exposes the engine's per-task latency milestones
// (submit→ready→start→done in virtual time), in registration order.
// Call it after Run for a consistent view.
func (s *Sim) Timings() []engine.Timing { return s.eng.Timings() }

// FailNode implements faults.Injector: the engine kills, deregisters and
// resubmits; the simulator only keeps score. Faults targeting unknown or
// already-dead nodes are recorded as ignored in the trace instead of
// silently diverging from the live backend.
func (s *Sim) FailNode(name string) (engine.FailReport, error) {
	rep, err := s.eng.FailNode(name, nil)
	if err != nil {
		s.traceIgnored(name, err)
		return rep, err
	}
	s.result.TasksFailed += len(rep.Killed)
	return rep, nil
}

// SlowNode implements faults.Injector.
func (s *Sim) SlowNode(name string, factor float64) error {
	if err := s.eng.SlowNode(name, factor); err != nil {
		s.traceIgnored(name, err)
		return err
	}
	return nil
}

// DrainNode implements faults.Injector.
func (s *Sim) DrainNode(name string) error {
	if err := s.eng.DrainNode(name); err != nil {
		s.traceIgnored(name, err)
		return err
	}
	return nil
}

// Partition implements faults.Injector.
func (s *Sim) Partition(a, b string) error { return s.eng.Partition(a, b) }

// Heal implements faults.Injector.
func (s *Sim) Heal(a, b string) error { return s.eng.Heal(a, b) }

// traceIgnored records a no-op fault so scripted scenarios leave the same
// audit trail on every backend.
func (s *Sim) traceIgnored(node string, err error) {
	s.cfg.Tracer.Record(trace.Event{
		At: s.clock.Now(), Kind: trace.FaultIgnored, Node: node, Info: err.Error(),
	})
}

// elasticStep applies one elasticity evaluation.
func (s *Sim) elasticStep() {
	pending := s.eng.ReadyCount()
	switch s.cfg.Elastic.Evaluate(s.cfg.Pool, pending) {
	case resources.Grow:
		// A node mid-drain is the cheapest capacity there is: lift its
		// cordon instead of paying the provider's provisioning delay.
		if n := s.cfg.Elastic.Reclaim(); n != nil {
			s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeUndrained, Node: n.Name()})
			// The reclaimed node may sit on the reachable side of a
			// partition: re-validate parked work along with the wave.
			s.eng.RevalidateAvailability()
			return
		}
		node, delay, err := s.cfg.Elastic.GrowOne(s.cfg.Pool)
		if err != nil {
			return
		}
		s.nodeAdded[node.Name()] = s.clock.Now()
		if s.cfg.Pool.Len() > s.result.PeakNodes {
			s.result.PeakNodes = s.cfg.Pool.Len()
		}
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeAdded, Node: node.Name()})
		// Model the provisioning delay by blocking the whole node.
		hold := resources.Constraints{
			Cores:    node.Desc().Cores,
			MemoryMB: node.Desc().MemoryMB,
			GPUs:     node.Desc().GPUs,
		}
		if err := node.Reserve(hold); err == nil {
			s.clock.After(delay, func() {
				node.Release(hold)
				// Grown capacity may be the first node that can reach a
				// parked task's data: re-validate along with the wave.
				s.eng.RevalidateAvailability()
			})
		}
	case resources.Shrink:
		victim, err := s.cfg.Elastic.ShrinkOne(s.cfg.Pool)
		if err != nil || victim == nil {
			return
		}
		added := s.nodeAdded[victim.Name()]
		span := s.clock.Now() - added
		s.acct.SetSpan(victim.Name(), victim.Desc(), span)
		s.result.NodeSeconds += span.Seconds()
		delete(s.nodeAdded, victim.Name())
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeRemoved, Node: victim.Name()})
	case resources.Hold:
	}
}

// AutoscaleStep runs one cost-aware autoscale evaluation against the
// engine's current signals and applies the decision, with the same
// provisioning-delay modelling and node-seconds bookkeeping as
// elasticStep. Run arms it on the ElasticEvery period; it is exported
// so tests (the sim-vs-live parity suite in particular) can drive
// evaluations at instants they control instead of riding the ticker.
func (s *Sim) AutoscaleStep() autoscale.Action {
	act := s.cfg.Autoscale.Step(s.cfg.Pool, autoscale.Snapshot(s.eng, s.cfg.Pool, s.clock.Now()))
	switch act.Kind {
	case autoscale.Reclaimed:
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeUndrained, Node: act.Node.Name()})
		s.eng.RevalidateAvailability()
	case autoscale.Grew:
		node := act.Node
		s.nodeAdded[node.Name()] = s.clock.Now()
		if s.cfg.Pool.Len() > s.result.PeakNodes {
			s.result.PeakNodes = s.cfg.Pool.Len()
		}
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeAdded, Node: node.Name()})
		if act.Delay <= 0 {
			// Instant provisioning: capacity is usable in this very
			// wave, exactly as it is on the live backend — the symmetry
			// the parity suite depends on.
			s.eng.RevalidateAvailability()
			return act
		}
		// Model the provisioning delay by blocking the whole node.
		hold := resources.Constraints{
			Cores:    node.Desc().Cores,
			MemoryMB: node.Desc().MemoryMB,
			GPUs:     node.Desc().GPUs,
		}
		if err := node.Reserve(hold); err == nil {
			s.clock.After(act.Delay, func() {
				node.Release(hold)
				s.eng.RevalidateAvailability()
			})
		}
	case autoscale.Removed:
		victim := act.Node
		added := s.nodeAdded[victim.Name()]
		span := s.clock.Now() - added
		s.acct.SetSpan(victim.Name(), victim.Desc(), span)
		s.result.NodeSeconds += span.Seconds()
		delete(s.nodeAdded, victim.Name())
		s.cfg.Tracer.Record(trace.Event{At: s.clock.Now(), Kind: trace.NodeRemoved, Node: victim.Name()})
	}
	return act
}

// Now exposes the simulation clock (useful in tests).
func (s *Sim) Now() time.Duration { return s.clock.Now() }

// EngineStats exposes the shared scheduling engine's counters (launches,
// transfer accounting) — comparable one-to-one with the live runtime's.
func (s *Sim) EngineStats() engine.Stats { return s.eng.Stats() }

// Sampler returns the virtual-clock metrics sampler (nil unless
// Config.Metrics and Config.SampleEvery are both set). Read it after Run:
// the sampled series are deterministic, byte-identical run to run.
func (s *Sim) Sampler() *obsv.Sampler { return s.smp }
