package infra_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/infra"
	"repro/internal/obsv"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/workloads"
)

// BenchmarkSimThroughput measures how many simulated tasks per second the
// discrete-event engine processes — the figure that makes 100-node sweeps
// affordable.
func BenchmarkSimThroughput(b *testing.B) {
	specs := workloads.EmbarrassinglyParallel(5000, time.Minute, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := resources.NewPool()
		for n := 0; n < 8; n++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("n%d", n), resources.MareNostrumNode))
		}
		sim, err := infra.New(infra.Config{
			Pool: pool, Net: simnet.New(simnet.Link{BandwidthMBps: 1000}), Policy: sched.MinLoad{},
		}, specs)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.TasksCompleted != 5000 {
			b.Fatalf("completed %d", res.TasksCompleted)
		}
	}
	b.ReportMetric(float64(5000*b.N)/b.Elapsed().Seconds(), "sim-tasks/s")
}

// BenchmarkSimThroughputMetrics is BenchmarkSimThroughput with the full
// observability layer on: registry-backed engine metrics plus virtual
// sampling at the CLI's default 10s interval. The acceptance bar is < 5%
// regression against the metrics-off figure — instrumentation must stay
// off the hot path (atomic adds on pre-resolved instruments, sampling on
// clock events).
func BenchmarkSimThroughputMetrics(b *testing.B) {
	specs := workloads.EmbarrassinglyParallel(5000, time.Minute, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := resources.NewPool()
		for n := 0; n < 8; n++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("n%d", n), resources.MareNostrumNode))
		}
		sim, err := infra.New(infra.Config{
			Pool: pool, Net: simnet.New(simnet.Link{BandwidthMBps: 1000}), Policy: sched.MinLoad{},
			Metrics: obsv.NewRegistry(), SampleEvery: 10 * time.Second,
		}, specs)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.TasksCompleted != 5000 {
			b.Fatalf("completed %d", res.TasksCompleted)
		}
	}
	b.ReportMetric(float64(5000*b.N)/b.Elapsed().Seconds(), "sim-tasks/s")
}
