package storage

import (
	"encoding/json"
	"errors"
	"testing"
)

// doc is a test Persistable.
type doc struct {
	Title string `json:"title"`
	Body  string `json:"body"`
}

func (d *doc) MarshalBinary() ([]byte, error)   { return json.Marshal(d) }
func (d *doc) UnmarshalBinary(raw []byte) error { return json.Unmarshal(raw, d) }

func TestMemoryPutGetDelete(t *testing.T) {
	m := NewMemory("n1")
	if err := m.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get("a")
	if err != nil || string(got) != "x" {
		t.Fatalf("Get = %q %v", got, err)
	}
	if !m.Exists("a") || m.Exists("b") {
		t.Fatal("Exists wrong")
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get deleted = %v, want ErrNotFound", err)
	}
	if err := m.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
}

func TestMemoryGetReturnsCopy(t *testing.T) {
	m := NewMemory("n1")
	_ = m.Put("a", []byte("abc"))
	got, _ := m.Get("a")
	got[0] = 'X'
	again, _ := m.Get("a")
	if string(again) != "abc" {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestMemoryLocations(t *testing.T) {
	m := NewMemory("host9")
	if locs := m.Locations("a"); locs != nil {
		t.Fatal("locations of missing object should be nil")
	}
	_ = m.Put("a", []byte("x"))
	locs := m.Locations("a")
	if len(locs) != 1 || locs[0] != "host9" {
		t.Fatalf("Locations = %v", locs)
	}
}

func TestMemoryReplicaRules(t *testing.T) {
	m := NewMemory("n1")
	_ = m.Put("a", []byte("x"))
	if err := m.NewReplica("a", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := m.NewReplica("a", "other"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("replica to other node = %v", err)
	}
}

func TestHandleLifecycle(t *testing.T) {
	m := NewMemory("n1")
	d := &doc{Title: "t", Body: "hello"}
	var h Handle
	if h.Persisted() {
		t.Fatal("zero handle should be volatile")
	}
	if err := h.Sync(d); !errors.Is(err, ErrNotPersisted) {
		t.Fatalf("Sync volatile = %v", err)
	}

	if err := h.MakePersistent(m, "doc1", d); err != nil {
		t.Fatal(err)
	}
	if !h.Persisted() || h.ID() != "doc1" {
		t.Fatal("handle not bound")
	}

	// Mutate and sync; a fresh object loads the new state.
	d.Body = "updated"
	if err := h.Sync(d); err != nil {
		t.Fatal(err)
	}
	var d2 doc
	if err := h.Load(&d2); err != nil {
		t.Fatal(err)
	}
	if d2.Body != "updated" {
		t.Fatalf("loaded body = %q", d2.Body)
	}

	if err := h.DeletePersistent(); err != nil {
		t.Fatal(err)
	}
	if h.Persisted() {
		t.Fatal("handle still persisted after delete")
	}
	if m.Exists("doc1") {
		t.Fatal("backend still has deleted object")
	}
	if err := h.DeletePersistent(); !errors.Is(err, ErrNotPersisted) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestMemoryIDsSorted(t *testing.T) {
	m := NewMemory("n1")
	for _, id := range []ObjectID{"c", "a", "b"} {
		_ = m.Put(id, []byte("1"))
	}
	ids := m.IDs()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "c" {
		t.Fatalf("IDs = %v", ids)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
}
