// Package hecuba reimplements the behaviour of BSC's Hecuba ("a set of
// tools that aims to facilitate programmers the utilization of key-value
// datastores … the most representative case is the mapping of Python
// dictionaries into Cassandra tables", paper Sec. VI-A-1).
//
// The Cassandra/ScyllaDB cluster underneath is replaced by an in-process
// partitioned store with a consistent-hash ring and N-way replication
// (DESIGN.md §4): partition placement and the Locations/PartitionKeys
// queries — the facts the scheduler consumes for locality — behave like the
// real system, while the wire protocol is elided.
package hecuba

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/storage"
)

const defaultVNodes = 64

// Ring is a consistent-hash ring with virtual nodes.
type Ring struct {
	points []ringPoint
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given nodes with vnodes virtual points
// each (≤ 0 ⇒ 64).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{nodes: make(map[string]struct{}, len(nodes))}
	for _, n := range nodes {
		r.nodes[n] = struct{}{}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a avalanches poorly on short, similar strings ("cass0#1",
	// "cass0#2", …), which would clump every vnode of a node together on
	// the ring. The MurmurHash3 fmix64 finalizer fixes the spread.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Nodes returns the distinct node names on the ring, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Replicas returns the n distinct nodes responsible for key, primary
// first, walking the ring clockwise.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// Primary returns the first replica for key.
func (r *Ring) Primary(key string) string {
	reps := r.Replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}

// Cluster is the simulated key-value datastore. It implements
// storage.Backend, so the COMPSs-style runtime can treat it as an SRI
// backend. Cluster is safe for concurrent use.
type Cluster struct {
	replication int

	mu         sync.RWMutex
	ring       *Ring
	nodeNames  []string
	partitions map[string]map[string][]byte // node -> key -> value
	extras     map[string]map[string]bool   // key -> node -> explicit replica
}

var _ storage.Backend = (*Cluster)(nil)

// NewCluster creates a cluster over the given storage nodes with the given
// replication factor (clamped to [1, len(nodes)]).
func NewCluster(nodes []string, replication int) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("hecuba: cluster needs at least one node")
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	c := &Cluster{
		ring:        NewRing(nodes, defaultVNodes),
		nodeNames:   append([]string(nil), nodes...),
		replication: replication,
		partitions:  make(map[string]map[string][]byte, len(nodes)),
		extras:      make(map[string]map[string]bool),
	}
	for _, n := range nodes {
		c.partitions[n] = make(map[string][]byte)
	}
	return c, nil
}

// Name implements storage.Backend.
func (c *Cluster) Name() string { return "hecuba" }

// Replication returns the configured replication factor.
func (c *Cluster) Replication() int { return c.replication }

// Nodes returns the cluster's storage nodes, sorted.
func (c *Cluster) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Nodes()
}

// Primary returns the node owning the first replica of an object.
func (c *Cluster) Primary(id storage.ObjectID) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring.Primary(string(id))
}

// Put implements storage.Backend: the value lands on every replica node.
func (c *Cluster) Put(id storage.ObjectID, val []byte) error {
	key := string(id)
	cp := make([]byte, len(val))
	copy(cp, val)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, node := range c.ring.Replicas(key, c.replication) {
		c.partitions[node][key] = cp
	}
	for node := range c.extras[key] {
		c.partitions[node][key] = cp
	}
	return nil
}

// Get implements storage.Backend.
func (c *Cluster) Get(id storage.ObjectID) ([]byte, error) {
	key := string(id)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, node := range c.ring.Replicas(key, c.replication) {
		if v, ok := c.partitions[node][key]; ok {
			cp := make([]byte, len(v))
			copy(cp, v)
			return cp, nil
		}
	}
	// Explicit replicas may survive when ring replicas were dropped.
	for node := range c.extras[key] {
		if v, ok := c.partitions[node][key]; ok {
			cp := make([]byte, len(v))
			copy(cp, v)
			return cp, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", storage.ErrNotFound, id)
}

// Delete implements storage.Backend.
func (c *Cluster) Delete(id storage.ObjectID) error {
	key := string(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	found := false
	for node, part := range c.partitions {
		if _, ok := part[key]; ok {
			delete(part, key)
			found = true
		}
		_ = node
	}
	delete(c.extras, key)
	if !found {
		return fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	return nil
}

// Exists implements storage.Backend.
func (c *Cluster) Exists(id storage.ObjectID) bool {
	_, err := c.Get(id)
	return err == nil
}

// Locations implements storage.Backend — the paper's getLocations.
func (c *Cluster) Locations(id storage.ObjectID) []string {
	key := string(id)
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for node, part := range c.partitions {
		if _, ok := part[key]; ok {
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}

// NewReplica implements storage.Backend: copies the value to an extra node.
func (c *Cluster) NewReplica(id storage.ObjectID, node string) error {
	key := string(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	part, ok := c.partitions[node]
	if !ok {
		return fmt.Errorf("%w: %s", storage.ErrUnknownNode, node)
	}
	var val []byte
	for _, n := range c.ring.Nodes() {
		if v, ok := c.partitions[n][key]; ok {
			val = v
			break
		}
	}
	if val == nil {
		return fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	part[key] = val
	if c.extras[key] == nil {
		c.extras[key] = make(map[string]bool)
	}
	c.extras[key][node] = true
	return nil
}

// AddNode grows the cluster (storage elasticity): the ring is rebuilt and
// keys whose replica set now includes the new node are copied over, while
// copies the old owners no longer hold responsibility for are dropped. It
// returns the number of key copies moved.
func (c *Cluster) AddNode(node string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.partitions[node]; dup {
		return 0, fmt.Errorf("hecuba: node %s already in cluster", node)
	}
	c.nodeNames = append(c.nodeNames, node)
	c.partitions[node] = make(map[string][]byte)
	c.ring = NewRing(c.nodeNames, defaultVNodes)
	return c.rebalanceLocked(), nil
}

// Decommission gracefully removes a node: its keys are first re-placed on
// the surviving owners (unlike FailNode, nothing is lost). It returns the
// number of key copies moved.
func (c *Cluster) Decommission(node string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.partitions[node]; !ok {
		return 0, fmt.Errorf("%w: %s", storage.ErrUnknownNode, node)
	}
	if len(c.nodeNames) == 1 {
		return 0, fmt.Errorf("hecuba: cannot decommission the last node")
	}
	var keep []string
	for _, n := range c.nodeNames {
		if n != node {
			keep = append(keep, n)
		}
	}
	c.nodeNames = keep
	c.ring = NewRing(keep, defaultVNodes)
	if c.replication > len(keep) {
		c.replication = len(keep)
	}
	// Rebalance while the leaving node's partition is still readable,
	// then drop it.
	moved := c.rebalanceLocked()
	delete(c.partitions, node)
	for key, nodes := range c.extras {
		delete(nodes, node)
		if len(nodes) == 0 {
			delete(c.extras, key)
		}
	}
	return moved, nil
}

// rebalanceLocked re-places every key according to the current ring.
// Caller holds c.mu. Returns copies created.
func (c *Cluster) rebalanceLocked() int {
	// Collect the authoritative value of each key from any holder.
	values := make(map[string][]byte)
	for _, part := range c.partitions {
		for k, v := range part {
			if _, seen := values[k]; !seen {
				values[k] = v
			}
		}
	}
	moved := 0
	for key, val := range values {
		want := make(map[string]bool, c.replication)
		for _, n := range c.ring.Replicas(key, c.replication) {
			want[n] = true
		}
		for n := range c.extras[key] {
			want[n] = true
		}
		for node, part := range c.partitions {
			_, has := part[key]
			switch {
			case want[node] && !has:
				part[key] = val
				moved++
			case !want[node] && has:
				delete(part, key)
			}
		}
	}
	return moved
}

// FailNode simulates losing a storage node: its partition vanishes. It
// returns the number of key copies lost.
func (c *Cluster) FailNode(node string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	part, ok := c.partitions[node]
	if !ok {
		return 0
	}
	lost := len(part)
	c.partitions[node] = make(map[string][]byte)
	for key, nodes := range c.extras {
		delete(nodes, node)
		if len(nodes) == 0 {
			delete(c.extras, key)
		}
	}
	return lost
}

// PartitionSize returns the number of keys stored on one node.
func (c *Cluster) PartitionSize(node string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.partitions[node])
}
