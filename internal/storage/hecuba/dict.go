package hecuba

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
)

// Dict is Hecuba's signature abstraction: a named dictionary whose entries
// are transparently mapped onto the key-value cluster ("the most
// representative case is the mapping of Python dictionaries into Cassandra
// tables", paper Sec. VI-A-1). Entry keys are scoped by the dict name, so
// multiple dicts share one cluster without collisions.
//
// PartitionKeys exposes which entries are primary on a given node, which is
// what lets a data-parallel workflow spawn one task per partition and have
// the locality-aware scheduler run it next to its shard (experiment E4).
type Dict struct {
	name    string
	cluster *Cluster

	mu   sync.RWMutex
	keys map[string]struct{}
}

// Dict opens (or creates) the named dictionary on the cluster.
func (c *Cluster) Dict(name string) *Dict {
	return &Dict{name: name, cluster: c, keys: make(map[string]struct{})}
}

// Name returns the dictionary name.
func (d *Dict) Name() string { return d.name }

func (d *Dict) scoped(key string) storage.ObjectID {
	return storage.ObjectID(d.name + "/" + key)
}

// Put stores an entry.
func (d *Dict) Put(key string, val []byte) error {
	if err := d.cluster.Put(d.scoped(key), val); err != nil {
		return err
	}
	d.mu.Lock()
	d.keys[key] = struct{}{}
	d.mu.Unlock()
	return nil
}

// Get retrieves an entry.
func (d *Dict) Get(key string) ([]byte, error) {
	return d.cluster.Get(d.scoped(key))
}

// Delete removes an entry.
func (d *Dict) Delete(key string) error {
	if err := d.cluster.Delete(d.scoped(key)); err != nil {
		return err
	}
	d.mu.Lock()
	delete(d.keys, key)
	d.mu.Unlock()
	return nil
}

// Contains reports whether key is present.
func (d *Dict) Contains(key string) bool {
	return d.cluster.Exists(d.scoped(key))
}

// Len returns the number of entries.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.keys)
}

// Keys returns all entry keys, sorted.
func (d *Dict) Keys() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.keys))
	for k := range d.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Locations returns the replica nodes of one entry (SRI getLocations).
func (d *Dict) Locations(key string) []string {
	return d.cluster.Locations(d.scoped(key))
}

// PartitionKeys returns the entry keys whose primary replica lives on
// node, sorted — the per-node iteration Hecuba offers for locality-aware
// data-parallel processing.
func (d *Dict) PartitionKeys(node string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for k := range d.keys {
		if d.cluster.Primary(d.scoped(k)) == node {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// ScopedID returns the cluster-level object ID of an entry, so runtime
// components (transfer registry, schedulers) can reference dict entries.
func (d *Dict) ScopedID(key string) storage.ObjectID { return d.scoped(key) }

// DictNameOf extracts the dict name from a scoped object ID ("" if the ID
// is not dict-scoped).
func DictNameOf(id storage.ObjectID) string {
	s := string(id)
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return ""
	}
	return s[:i]
}
