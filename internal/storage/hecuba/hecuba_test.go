package hecuba

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func cluster(t *testing.T, nodes int, repl int) *Cluster {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("cass%d", i)
	}
	c, err := NewCluster(names, repl)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 1); err == nil {
		t.Fatal("empty cluster accepted")
	}
	c, err := NewCluster([]string{"a"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Replication() != 1 {
		t.Fatalf("replication = %d, want clamp to 1", c.Replication())
	}
}

func TestRingDeterministicAndComplete(t *testing.T) {
	r1 := NewRing([]string{"a", "b", "c"}, 32)
	r2 := NewRing([]string{"a", "b", "c"}, 32)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key%d", i)
		a := r1.Replicas(k, 2)
		b := r2.Replicas(k, 2)
		if len(a) != 2 || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("ring not deterministic for %s: %v vs %v", k, a, b)
		}
		if a[0] == a[1] {
			t.Fatalf("replicas not distinct: %v", a)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 64)
	counts := make(map[string]int)
	for i := 0; i < 4000; i++ {
		counts[r.Primary(fmt.Sprintf("key%d", i))]++
	}
	for node, n := range counts {
		if n < 400 || n > 2200 {
			t.Fatalf("node %s owns %d/4000 keys: badly unbalanced", node, n)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d nodes received keys", len(counts))
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := cluster(t, 3, 2)
	if err := c.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("k1")
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q %v", got, err)
	}
	if !c.Exists("k1") || c.Exists("nope") {
		t.Fatal("Exists wrong")
	}
}

func TestReplicationFactorRespected(t *testing.T) {
	c := cluster(t, 5, 3)
	_ = c.Put("key", []byte("v"))
	locs := c.Locations("key")
	if len(locs) != 3 {
		t.Fatalf("Locations = %v, want 3 replicas", locs)
	}
}

func TestDeleteRemovesAllReplicas(t *testing.T) {
	c := cluster(t, 3, 3)
	_ = c.Put("key", []byte("v"))
	if err := c.Delete("key"); err != nil {
		t.Fatal(err)
	}
	if len(c.Locations("key")) != 0 {
		t.Fatal("replicas survive delete")
	}
	if err := c.Delete("key"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestNewReplicaAddsNode(t *testing.T) {
	c := cluster(t, 4, 1)
	_ = c.Put("key", []byte("v"))
	before := c.Locations("key")
	var target string
	for _, n := range c.Nodes() {
		if n != before[0] {
			target = n
			break
		}
	}
	if err := c.NewReplica("key", target); err != nil {
		t.Fatal(err)
	}
	after := c.Locations("key")
	if len(after) != 2 {
		t.Fatalf("Locations after NewReplica = %v", after)
	}
	if err := c.NewReplica("key", "ghost"); !errors.Is(err, storage.ErrUnknownNode) {
		t.Fatalf("replica to ghost = %v", err)
	}
	// Overwrite reaches the explicit replica too.
	_ = c.Put("key", []byte("v2"))
	if got, _ := c.Get("key"); string(got) != "v2" {
		t.Fatal("stale value after overwrite")
	}
}

func TestFailNodeSurvivedByReplication(t *testing.T) {
	c := cluster(t, 3, 2)
	for i := 0; i < 100; i++ {
		_ = c.Put(storage.ObjectID(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	victim := c.Nodes()[0]
	lost := c.FailNode(victim)
	if lost == 0 {
		t.Fatal("victim node held no keys — implausible with 100 keys")
	}
	// Replication 2: every key must survive a single node loss.
	for i := 0; i < 100; i++ {
		if _, err := c.Get(storage.ObjectID(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("key k%d lost despite replication 2", i)
		}
	}
}

func TestFailNodeWithoutReplicationLosesData(t *testing.T) {
	c := cluster(t, 3, 1)
	for i := 0; i < 100; i++ {
		_ = c.Put(storage.ObjectID(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	victim := c.Nodes()[0]
	c.FailNode(victim)
	lost := 0
	for i := 0; i < 100; i++ {
		if _, err := c.Get(storage.ObjectID(fmt.Sprintf("k%d", i))); err != nil {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("replication 1 should lose data on node failure")
	}
}

func TestDictBasics(t *testing.T) {
	c := cluster(t, 3, 2)
	d := c.Dict("genes")
	if err := d.Put("chr1", []byte("acgt")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("chr1")
	if err != nil || string(got) != "acgt" {
		t.Fatalf("dict Get = %q %v", got, err)
	}
	if !d.Contains("chr1") || d.Contains("chr2") {
		t.Fatal("Contains wrong")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Delete("chr1"); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("delete did not update key set")
	}
}

func TestDictsAreNamespaced(t *testing.T) {
	c := cluster(t, 3, 1)
	d1 := c.Dict("a")
	d2 := c.Dict("b")
	_ = d1.Put("k", []byte("1"))
	_ = d2.Put("k", []byte("2"))
	v1, _ := d1.Get("k")
	v2, _ := d2.Get("k")
	if string(v1) != "1" || string(v2) != "2" {
		t.Fatalf("namespace collision: %q %q", v1, v2)
	}
	if DictNameOf(d1.ScopedID("k")) != "a" {
		t.Fatal("DictNameOf wrong")
	}
	if DictNameOf("plain") != "" {
		t.Fatal("non-scoped ID should yield empty dict name")
	}
}

func TestPartitionKeysCoverAllKeysOnce(t *testing.T) {
	c := cluster(t, 4, 2)
	d := c.Dict("tbl")
	const n = 200
	for i := 0; i < n; i++ {
		_ = d.Put(fmt.Sprintf("row%03d", i), []byte("x"))
	}
	seen := make(map[string]int)
	for _, node := range c.Nodes() {
		for _, k := range d.PartitionKeys(node) {
			seen[k]++
			// The primary must actually hold a replica.
			found := false
			for _, loc := range d.Locations(k) {
				if loc == node {
					found = true
				}
			}
			if !found {
				t.Fatalf("partition key %s not replicated on its primary %s", k, node)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("partition keys cover %d/%d keys", len(seen), n)
	}
	for k, times := range seen {
		if times != 1 {
			t.Fatalf("key %s appears in %d partitions", k, times)
		}
	}
}

// Property: Get always returns the last Put value, under any interleaving
// of keys.
func TestLastWriteWins(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := NewCluster([]string{"a", "b", "c"}, 2)
		if err != nil {
			return false
		}
		last := make(map[string]string)
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%7)
			val := fmt.Sprintf("v%d", i)
			if err := c.Put(storage.ObjectID(key), []byte(val)); err != nil {
				return false
			}
			last[key] = val
		}
		for k, want := range last {
			got, err := c.Get(storage.ObjectID(k))
			if err != nil || string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddNodeRebalances(t *testing.T) {
	c := cluster(t, 3, 2)
	const n = 300
	for i := 0; i < n; i++ {
		_ = c.Put(storage.ObjectID(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	moved, err := c.AddNode("cass3")
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node")
	}
	if got := c.PartitionSize("cass3"); got == 0 {
		t.Fatal("new node owns nothing after rebalance")
	}
	// All keys still readable with correct replica count.
	for i := 0; i < n; i++ {
		id := storage.ObjectID(fmt.Sprintf("k%d", i))
		if _, err := c.Get(id); err != nil {
			t.Fatalf("k%d unreadable after AddNode", i)
		}
		if locs := c.Locations(id); len(locs) != 2 {
			t.Fatalf("k%d has %d replicas after rebalance, want 2", i, len(locs))
		}
	}
	if _, err := c.AddNode("cass3"); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
}

func TestDecommissionPreservesData(t *testing.T) {
	c := cluster(t, 3, 1) // replication 1: graceful removal must still lose nothing
	const n = 200
	for i := 0; i < n; i++ {
		_ = c.Put(storage.ObjectID(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	victim := c.Nodes()[1]
	if _, err := c.Decommission(victim); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes()) != 2 {
		t.Fatalf("nodes = %v", c.Nodes())
	}
	for i := 0; i < n; i++ {
		got, err := c.Get(storage.ObjectID(fmt.Sprintf("k%d", i)))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q %v after decommission", i, got, err)
		}
	}
	if _, err := c.Decommission("ghost"); err == nil {
		t.Fatal("decommission of unknown node accepted")
	}
}

func TestDecommissionLastNodeRefused(t *testing.T) {
	c := cluster(t, 1, 1)
	if _, err := c.Decommission(c.Nodes()[0]); err == nil {
		t.Fatal("removed the last node")
	}
}

func TestDecommissionClampsReplication(t *testing.T) {
	c := cluster(t, 2, 2)
	_ = c.Put("key", []byte("v"))
	if _, err := c.Decommission(c.Nodes()[0]); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get("key"); err != nil || string(got) != "v" {
		t.Fatalf("key lost: %q %v", got, err)
	}
	if c.Replication() != 1 {
		t.Fatalf("replication = %d after shrink to 1 node", c.Replication())
	}
}
