package hecuba

import (
	"fmt"
	"testing"

	"repro/internal/storage"
)

// BenchmarkRingReplicas measures replica resolution, the per-access cost
// of consistent-hash placement.
func BenchmarkRingReplicas(b *testing.B) {
	nodes := make([]string, 16)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("cass%02d", i)
	}
	r := NewRing(nodes, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Replicas(fmt.Sprintf("key%d", i%4096), 3)
	}
}

// BenchmarkClusterPutGet measures the end-to-end store round trip.
func BenchmarkClusterPutGet(b *testing.B) {
	c, err := NewCluster([]string{"a", "b", "c"}, 2)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := storage.ObjectID(fmt.Sprintf("k%d", i%1024))
		if err := c.Put(id, val); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Get(id); err != nil {
			b.Fatal(err)
		}
	}
}
