// Package storage defines the paper's storage interface (Sec. VI-A-1):
// "The storage interface is composed of two main components: the Storage
// Object interface (SOI) and the Storage Runtime interface (SRI)."
//
// The SOI is what application objects use — MakePersistent pushes an object
// to the backend, after which it is accessed like a regular object. The SRI
// is what the runtime uses — notably Locations (the paper's getLocations),
// which "will enable the runtime to exploit the locality of the data by
// scheduling tasks in the location where the data resides".
//
// Two backends implement the interface in subpackages: hecuba (key-value,
// Cassandra-style partitioning) and dataclay (active objects with in-store
// method execution).
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ObjectID identifies a persisted object.
type ObjectID string

// Errors shared by backends.
var (
	// ErrNotFound is returned when an object does not exist.
	ErrNotFound = errors.New("storage: object not found")
	// ErrNotPersisted is returned by SOI operations on volatile objects.
	ErrNotPersisted = errors.New("storage: object not persisted")
	// ErrUnknownNode is returned when replicating to a node the backend
	// does not manage.
	ErrUnknownNode = errors.New("storage: unknown node")
)

// Backend is the Storage Runtime Interface (SRI).
type Backend interface {
	// Name identifies the backend implementation.
	Name() string
	// Put stores (or overwrites) an object's serialised state.
	Put(id ObjectID, val []byte) error
	// Get retrieves an object's serialised state.
	Get(id ObjectID) ([]byte, error)
	// Delete removes an object everywhere.
	Delete(id ObjectID) error
	// Exists reports whether the object is stored.
	Exists(id ObjectID) bool
	// Locations returns the nodes holding replicas — the paper's
	// getLocations, consumed by locality-aware scheduling.
	Locations(id ObjectID) []string
	// NewReplica copies the object onto an additional node.
	NewReplica(id ObjectID, node string) error
}

// Persistable is the serialisation contract for SOI objects (the subset of
// encoding.BinaryMarshaler/Unmarshaler the SOI needs).
type Persistable interface {
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
}

// Handle is the Storage Object Interface (SOI): it binds an in-memory
// object to its persistent identity. The zero value is a volatile handle.
type Handle struct {
	mu      sync.Mutex
	id      ObjectID
	backend Backend
}

// ID returns the persistent identity ("" while volatile).
func (h *Handle) ID() ObjectID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.id
}

// Persisted reports whether MakePersistent succeeded.
func (h *Handle) Persisted() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.backend != nil
}

// MakePersistent serialises obj and stores it under id — the SOI's
// signature operation ("the more relevant method is the make persistent
// one", paper Sec. VI-A-1).
func (h *Handle) MakePersistent(b Backend, id ObjectID, obj Persistable) error {
	raw, err := obj.MarshalBinary()
	if err != nil {
		return fmt.Errorf("marshal %s: %w", id, err)
	}
	if err := b.Put(id, raw); err != nil {
		return fmt.Errorf("persist %s: %w", id, err)
	}
	h.mu.Lock()
	h.id = id
	h.backend = b
	h.mu.Unlock()
	return nil
}

// Sync re-serialises obj into the backend (after in-memory mutation).
func (h *Handle) Sync(obj Persistable) error {
	h.mu.Lock()
	b, id := h.backend, h.id
	h.mu.Unlock()
	if b == nil {
		return ErrNotPersisted
	}
	raw, err := obj.MarshalBinary()
	if err != nil {
		return fmt.Errorf("marshal %s: %w", id, err)
	}
	return b.Put(id, raw)
}

// Load refreshes obj from the backend.
func (h *Handle) Load(obj Persistable) error {
	h.mu.Lock()
	b, id := h.backend, h.id
	h.mu.Unlock()
	if b == nil {
		return ErrNotPersisted
	}
	raw, err := b.Get(id)
	if err != nil {
		return err
	}
	return obj.UnmarshalBinary(raw)
}

// DeletePersistent removes the stored state and reverts to volatile.
func (h *Handle) DeletePersistent() error {
	h.mu.Lock()
	b, id := h.backend, h.id
	h.backend = nil
	h.id = ""
	h.mu.Unlock()
	if b == nil {
		return ErrNotPersisted
	}
	return b.Delete(id)
}

// Memory is a single-node in-process Backend: the reference SRI
// implementation used in tests and as the default runtime store.
type Memory struct {
	node string

	mu   sync.RWMutex
	data map[ObjectID][]byte
}

var _ Backend = (*Memory)(nil)

// NewMemory returns a memory backend reporting the given node name in
// Locations.
func NewMemory(node string) *Memory {
	return &Memory{node: node, data: make(map[ObjectID][]byte)}
}

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// Put implements Backend.
func (m *Memory) Put(id ObjectID, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[id] = cp
	return nil
}

// Get implements Backend.
func (m *Memory) Get(id ObjectID) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	raw, ok := m.data[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	return cp, nil
}

// Delete implements Backend.
func (m *Memory) Delete(id ObjectID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.data[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(m.data, id)
	return nil
}

// Exists implements Backend.
func (m *Memory) Exists(id ObjectID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.data[id]
	return ok
}

// Locations implements Backend.
func (m *Memory) Locations(id ObjectID) []string {
	if !m.Exists(id) {
		return nil
	}
	return []string{m.node}
}

// NewReplica implements Backend. A single-node store cannot replicate.
func (m *Memory) NewReplica(id ObjectID, node string) error {
	if node == m.node {
		return nil
	}
	return fmt.Errorf("%w: %s (memory backend is single-node)", ErrUnknownNode, node)
}

// Len returns the number of stored objects.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// IDs returns all stored object IDs, sorted.
func (m *Memory) IDs() []ObjectID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]ObjectID, 0, len(m.data))
	for id := range m.data {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
