// Package dataclay reimplements the behaviour of BSC's dataClay: "a
// distributed active object store which enables applications to store and
// retrieve objects with the same format they have in memory. In addition to
// storing the objects themselves, dataClay also holds a registry of the
// classes where the objects belong, including their methods, which are
// executed within the object store transparently to applications. This
// feature minimizes the number of data transfers" (paper Sec. VI-A-1).
//
// The store keeps live Go values partitioned across named storage nodes. A
// method call ships the (small) arguments to the object's node and returns
// the (small) result — instead of fetching the (large) object — and the
// store counts both byte flows so experiment E5 can report the savings.
// Objects can be replicated and aliased, and they survive the failure of
// compute nodes, which is what the agent layer's recovery relies on (E7).
package dataclay

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
)

// Errors returned by the store.
var (
	// ErrUnknownClass is returned when instantiating an unregistered class.
	ErrUnknownClass = errors.New("dataclay: unknown class")
	// ErrUnknownMethod is returned when calling an unregistered method.
	ErrUnknownMethod = errors.New("dataclay: unknown method")
	// ErrUnknownAlias is returned when resolving a missing alias.
	ErrUnknownAlias = errors.New("dataclay: unknown alias")
)

// Method executes against an object's live state inside the store. It
// returns the (possibly replaced) state and a result value.
type Method func(state any, args any) (newState any, result any, err error)

// Class is a registered type: a name plus its in-store executable methods.
type Class struct {
	Name    string
	Methods map[string]Method
	// Size estimates the byte size of a state value (for transfer
	// accounting). Nil means "unknown": fetches count zero bytes.
	Size func(state any) int64
}

// entry is one stored object.
type entry struct {
	// exec serialises method executions on this object, like the real
	// dataClay's per-object execution environment: two concurrent Calls
	// must not interleave their read-modify-write of state.
	exec     sync.Mutex
	class    string
	state    any
	replicas map[string]struct{} // nodes holding the object
	home     string              // primary node (execution site)
}

// Stats counts the byte flows of the two access styles compared in E5.
type Stats struct {
	// MethodCalls counts in-store executions.
	MethodCalls int
	// BytesShipped is the args+results payload moved by method calls.
	BytesShipped int64
	// Fetches counts whole-object retrievals.
	Fetches int
	// BytesFetched is the object payload moved by fetches.
	BytesFetched int64
}

// Store is the active object store. It is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	nodes   []string
	classes map[string]Class
	objects map[storage.ObjectID]*entry
	aliases map[string]storage.ObjectID
	serial  int
	stats   Stats
}

// NewStore creates a store backed by the given storage nodes (at least one).
func NewStore(nodes []string) (*Store, error) {
	if len(nodes) == 0 {
		return nil, errors.New("dataclay: store needs at least one node")
	}
	cp := make([]string, len(nodes))
	copy(cp, nodes)
	sort.Strings(cp)
	return &Store{
		nodes:   cp,
		classes: make(map[string]Class),
		objects: make(map[storage.ObjectID]*entry),
		aliases: make(map[string]storage.ObjectID),
	}, nil
}

// RegisterClass adds a class to the registry. Re-registration replaces it.
func (s *Store) RegisterClass(c Class) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.Methods == nil {
		c.Methods = make(map[string]Method)
	}
	s.classes[c.Name] = c
}

// Classes returns the registered class names, sorted.
func (s *Store) Classes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.classes))
	for n := range s.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Nodes returns the storage nodes.
func (s *Store) Nodes() []string {
	out := make([]string, len(s.nodes))
	copy(out, s.nodes)
	return out
}

// NewObject stores a new object of the given class, placed round-robin
// across nodes, and returns its ID.
func (s *Store) NewObject(class string, state any) (storage.ObjectID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.classes[class]; !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownClass, class)
	}
	s.serial++
	id := storage.ObjectID(fmt.Sprintf("%s-%d", class, s.serial))
	home := s.nodes[(s.serial-1)%len(s.nodes)]
	s.objects[id] = &entry{
		class:    class,
		state:    state,
		replicas: map[string]struct{}{home: {}},
		home:     home,
	}
	return id, nil
}

// ClassOf returns the class of a stored object.
func (s *Store) ClassOf(id storage.ObjectID) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return "", fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	return e.class, nil
}

// Call executes a registered method on the object's home node: the
// paper's in-store execution. argBytes and the result size are charged to
// BytesShipped; the object itself never moves. Calls on the same object
// serialise (per-object execution lock); calls on different objects run
// concurrently.
func (s *Store) Call(id storage.ObjectID, method string, args any, argBytes int64) (any, error) {
	s.mu.Lock()
	e, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	cls := s.classes[e.class]
	fn, ok := cls.Methods[method]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s.%s", ErrUnknownMethod, e.class, method)
	}
	s.mu.Unlock()

	e.exec.Lock()
	newState, result, err := fn(e.state, args)
	if err != nil {
		e.exec.Unlock()
		return nil, fmt.Errorf("dataclay: %s.%s: %w", e.class, method, err)
	}
	e.state = newState
	e.exec.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.MethodCalls++
	if argBytes > 0 {
		s.stats.BytesShipped += argBytes
	}
	// Results are typically scalars/small aggregates; charge a nominal
	// size if the class cannot estimate it.
	s.stats.BytesShipped += sizeOf(cls, result)
	return result, nil
}

// Fetch retrieves the whole object state to the caller — the baseline E5
// compares against. The full object size is charged to BytesFetched.
func (s *Store) Fetch(id storage.ObjectID) (any, error) {
	s.mu.Lock()
	e, ok := s.objects[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	cls := s.classes[e.class]
	s.mu.Unlock()

	e.exec.Lock()
	state := e.state
	e.exec.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Fetches++
	s.stats.BytesFetched += sizeOf(cls, state)
	return state, nil
}

func sizeOf(c Class, state any) int64 {
	if c.Size == nil || state == nil {
		return 0
	}
	return c.Size(state)
}

// Stats returns a copy of the byte-flow counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}

// SetAlias names an object ("sharing becomes trivial … from the same
// application or between several applications", paper Sec. VI-A-1).
func (s *Store) SetAlias(alias string, id storage.ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[id]; !ok {
		return fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	s.aliases[alias] = id
	return nil
}

// GetByAlias resolves an alias.
func (s *Store) GetByAlias(alias string) (storage.ObjectID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.aliases[alias]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownAlias, alias)
	}
	return id, nil
}

// Replicate copies the object onto an additional store node.
func (s *Store) Replicate(id storage.ObjectID, node string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	if !s.hasNode(node) {
		return fmt.Errorf("%w: %s", storage.ErrUnknownNode, node)
	}
	e.replicas[node] = struct{}{}
	return nil
}

func (s *Store) hasNode(node string) bool {
	for _, n := range s.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// LocationsOf returns the nodes holding the object, sorted (SRI
// getLocations).
func (s *Store) LocationsOf(id storage.ObjectID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(e.replicas))
	for n := range e.replicas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Delete removes an object and its aliases.
func (s *Store) Delete(id storage.ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[id]; !ok {
		return fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	delete(s.objects, id)
	for a, target := range s.aliases {
		if target == id {
			delete(s.aliases, a)
		}
	}
	return nil
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// FailNode drops a store node: objects whose only replica lived there are
// lost (returned, sorted); objects with surviving replicas are re-homed.
func (s *Store) FailNode(node string) []storage.ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lost []storage.ObjectID
	for id, e := range s.objects {
		if _, ok := e.replicas[node]; !ok {
			continue
		}
		delete(e.replicas, node)
		if len(e.replicas) == 0 {
			delete(s.objects, id)
			lost = append(lost, id)
			continue
		}
		if e.home == node {
			// Re-home deterministically to the smallest surviving node.
			var nodes []string
			for n := range e.replicas {
				nodes = append(nodes, n)
			}
			sort.Strings(nodes)
			e.home = nodes[0]
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	return lost
}

// Home returns the execution node of an object.
func (s *Store) Home(id storage.ObjectID) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.objects[id]
	if !ok {
		return "", fmt.Errorf("%w: %s", storage.ErrNotFound, id)
	}
	return e.home, nil
}
