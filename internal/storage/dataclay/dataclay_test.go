package dataclay

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/storage"
)

// vectorClass registers a []float64 class with sum/append methods.
func vectorClass() Class {
	return Class{
		Name: "vector",
		Methods: map[string]Method{
			"sum": func(state, _ any) (any, any, error) {
				v, ok := state.([]float64)
				if !ok {
					return state, nil, errors.New("bad state")
				}
				s := 0.0
				for _, x := range v {
					s += x
				}
				return state, s, nil
			},
			"append": func(state, args any) (any, any, error) {
				v, _ := state.([]float64)
				x, ok := args.(float64)
				if !ok {
					return state, nil, errors.New("bad args")
				}
				return append(v, x), len(v) + 1, nil
			},
		},
		Size: func(state any) int64 {
			v, _ := state.([]float64)
			return int64(8 * len(v))
		},
	}
}

func newStore(t *testing.T, nodes ...string) *Store {
	t.Helper()
	if len(nodes) == 0 {
		nodes = []string{"ds1", "ds2", "ds3"}
	}
	s, err := NewStore(nodes)
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterClass(vectorClass())
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(nil); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestNewObjectRequiresClass(t *testing.T) {
	s := newStore(t)
	if _, err := s.NewObject("ghost", nil); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err = %v, want ErrUnknownClass", err)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	s := newStore(t)
	homes := make(map[string]int)
	for i := 0; i < 9; i++ {
		id, err := s.NewObject("vector", []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Home(id)
		if err != nil {
			t.Fatal(err)
		}
		homes[h]++
	}
	if len(homes) != 3 {
		t.Fatalf("placement used %d nodes, want 3", len(homes))
	}
	for n, c := range homes {
		if c != 3 {
			t.Fatalf("node %s got %d objects, want 3", n, c)
		}
	}
}

func TestCallExecutesInStore(t *testing.T) {
	s := newStore(t)
	id, _ := s.NewObject("vector", []float64{1, 2, 3})
	res, err := s.Call(id, "sum", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != 6.0 {
		t.Fatalf("sum = %v, want 6", res)
	}
	// State mutation through a method persists.
	if _, err := s.Call(id, "append", 4.0, 8); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Call(id, "sum", nil, 0)
	if res != 10.0 {
		t.Fatalf("sum after append = %v, want 10", res)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	s := newStore(t)
	id, _ := s.NewObject("vector", []float64{})
	if _, err := s.Call(id, "nope", nil, 0); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("err = %v, want ErrUnknownMethod", err)
	}
	if _, err := s.Call("missing", "sum", nil, 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestMethodShippingMovesFewerBytesThanFetch(t *testing.T) {
	s := newStore(t)
	big := make([]float64, 1<<20) // 8 MB object
	id, _ := s.NewObject("vector", big)

	// In-store execution: tiny argument, scalar result.
	if _, err := s.Call(id, "sum", nil, 16); err != nil {
		t.Fatal(err)
	}
	shipped := s.Stats().BytesShipped

	// Fetch-then-compute: whole object moves.
	if _, err := s.Fetch(id); err != nil {
		t.Fatal(err)
	}
	fetched := s.Stats().BytesFetched

	if fetched != 8<<20 {
		t.Fatalf("fetched = %d, want 8MiB", fetched)
	}
	if shipped*100 > fetched {
		t.Fatalf("method shipping moved %d bytes vs fetch %d: should be ≥100x smaller", shipped, fetched)
	}
}

func TestAliasSharing(t *testing.T) {
	s := newStore(t)
	id, _ := s.NewObject("vector", []float64{1})
	if err := s.SetAlias("shared", id); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetByAlias("shared")
	if err != nil || got != id {
		t.Fatalf("GetByAlias = %v %v", got, err)
	}
	if _, err := s.GetByAlias("nope"); !errors.Is(err, ErrUnknownAlias) {
		t.Fatalf("err = %v, want ErrUnknownAlias", err)
	}
	if err := s.SetAlias("x", "missing"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("alias to missing = %v", err)
	}
	// Delete removes aliases too.
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetByAlias("shared"); !errors.Is(err, ErrUnknownAlias) {
		t.Fatal("alias survived delete")
	}
}

func TestReplicationAndLocations(t *testing.T) {
	s := newStore(t)
	id, _ := s.NewObject("vector", []float64{1})
	home, _ := s.Home(id)
	var other string
	for _, n := range s.Nodes() {
		if n != home {
			other = n
			break
		}
	}
	if err := s.Replicate(id, other); err != nil {
		t.Fatal(err)
	}
	locs := s.LocationsOf(id)
	if len(locs) != 2 {
		t.Fatalf("locations = %v, want 2", locs)
	}
	if err := s.Replicate(id, "ghost"); !errors.Is(err, storage.ErrUnknownNode) {
		t.Fatalf("replicate to ghost = %v", err)
	}
}

func TestFailNodeLosesOnlyUnreplicated(t *testing.T) {
	s := newStore(t, "a", "b")
	// Object 1 replicated on both; object 2 only on its home.
	id1, _ := s.NewObject("vector", []float64{1})
	id2, _ := s.NewObject("vector", []float64{2})
	h1, _ := s.Home(id1)
	if err := s.Replicate(id1, otherOf(s, h1)); err != nil {
		t.Fatal(err)
	}
	h2, _ := s.Home(id2)

	lost := s.FailNode(h2)
	if h1 == h2 {
		// id1 survives via replica; id2 lost.
		if len(lost) != 1 || lost[0] != id2 {
			t.Fatalf("lost = %v, want [%s]", lost, id2)
		}
	} else {
		if len(lost) != 1 || lost[0] != id2 {
			t.Fatalf("lost = %v, want [%s]", lost, id2)
		}
	}
	// id1 must still be callable (re-homed if needed).
	if _, err := s.Call(id1, "sum", nil, 0); err != nil {
		t.Fatalf("replicated object unusable after failure: %v", err)
	}
	if newHome, _ := s.Home(id1); newHome == h2 {
		t.Fatal("object still homed on dead node")
	}
}

func otherOf(s *Store, not string) string {
	for _, n := range s.Nodes() {
		if n != not {
			return n
		}
	}
	return not
}

func TestClassRegistry(t *testing.T) {
	s := newStore(t)
	if got := s.Classes(); len(got) != 1 || got[0] != "vector" {
		t.Fatalf("Classes = %v", got)
	}
	id, _ := s.NewObject("vector", []float64{})
	if c, err := s.ClassOf(id); err != nil || c != "vector" {
		t.Fatalf("ClassOf = %q %v", c, err)
	}
}

func TestStatsReset(t *testing.T) {
	s := newStore(t)
	id, _ := s.NewObject("vector", []float64{1, 2})
	_, _ = s.Call(id, "sum", nil, 4)
	_, _ = s.Fetch(id)
	st := s.Stats()
	if st.MethodCalls != 1 || st.Fetches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Fatal("reset failed")
	}
}

func TestConcurrentCallsOnOneObjectAreSerialised(t *testing.T) {
	s := newStore(t)
	id, _ := s.NewObject("vector", []float64{})
	const (
		workers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := s.Call(id, "append", 1.0, 8); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Call(id, "sum", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every append must have landed: lost updates would show here.
	if res != float64(workers*perW) {
		t.Fatalf("sum = %v, want %d (lost updates)", res, workers*perW)
	}
}

func TestConcurrentCallsAndFetches(t *testing.T) {
	s := newStore(t)
	id, _ := s.NewObject("vector", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, _ = s.Call(id, "append", 1.0, 8)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := s.Fetch(id); err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
