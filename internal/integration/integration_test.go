// Package integration_test exercises cross-module behaviour: the public
// programming model over the storage backends, the live runtime with
// locality scheduling, workflow execution across REST agents, and global
// invariants of the simulator (determinism, makespan bounds).
package integration_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/compss"
	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/graph"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/storage/hecuba"
	"repro/internal/trace"
	"repro/internal/transfer"
	"repro/internal/workloads"
)

// TestTasksPersistIntoHecuba runs a compss workflow whose tasks write
// their results into a Hecuba dict through the SOI, then verifies the
// runtime-facing SRI facts (locations, replication).
func TestTasksPersistIntoHecuba(t *testing.T) {
	cluster, err := hecuba.NewCluster([]string{"cass0", "cass1", "cass2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	dict := cluster.Dict("results")

	c := compss.New(compss.WithNodes(compss.NodeSpec{Name: "w", Cores: 4}))
	defer c.Shutdown()
	if err := c.RegisterTask("computeAndPersist", func(_ context.Context, args []any) ([]any, error) {
		key, ok := args[0].(string)
		if !ok {
			return nil, errors.New("want key")
		}
		n, _ := args[1].(int)
		val, err := json.Marshal(n * n)
		if err != nil {
			return nil, err
		}
		if err := dict.Put(key, val); err != nil {
			return nil, err
		}
		return []any{key}, nil
	}); err != nil {
		t.Fatal(err)
	}

	outs := make([]*compss.Object, 20)
	for i := range outs {
		outs[i] = c.NewObject()
		if _, err := c.Call("computeAndPersist",
			compss.In(fmt.Sprintf("row%02d", i)), compss.In(i), compss.Write(outs[i])); err != nil {
			t.Fatal(err)
		}
	}
	c.Barrier()

	if dict.Len() != 20 {
		t.Fatalf("dict has %d entries, want 20", dict.Len())
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("row%02d", i)
		raw, err := dict.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		var got int
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got != i*i {
			t.Fatalf("%s = %d, want %d", key, got, i*i)
		}
		if locs := dict.Locations(key); len(locs) != 2 {
			t.Fatalf("%s replicated on %v, want 2 nodes", key, locs)
		}
	}
	// The data survives a single storage-node failure (replication 2).
	cluster.FailNode("cass1")
	for i := 0; i < 20; i++ {
		if _, err := dict.Get(fmt.Sprintf("row%02d", i)); err != nil {
			t.Fatalf("row%02d lost after single node failure", i)
		}
	}
}

// TestRuntimeLocalityFollowsValues wires the live runtime's value-location
// registry into the Locality policy and checks consumers co-locate with
// their producers.
func TestRuntimeLocalityFollowsValues(t *testing.T) {
	pool := resources.NewPool()
	for _, name := range []string{"alpha", "beta"} {
		_ = pool.Add(resources.NewNode(name, resources.Description{Cores: 8, MemoryMB: 8000}))
	}
	reg := transfer.NewRegistry()
	tr := trace.New(0)
	rt := core.New(core.Config{Pool: pool, Policy: sched.Locality{}, Locations: reg, Tracer: tr})
	defer rt.Shutdown()

	if err := rt.Register(core.TaskDef{Name: "produce", Fn: func(_ context.Context, _ []any) ([]any, error) {
		return []any{make([]byte, 1<<20)}, nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(core.TaskDef{Name: "consume", Fn: func(_ context.Context, args []any) ([]any, error) {
		raw, ok := args[0].([]byte)
		if !ok {
			return nil, errors.New("want bytes")
		}
		return []any{len(raw)}, nil
	}}); err != nil {
		t.Fatal(err)
	}

	// Sequential produce→consume pairs so the consumer schedules after
	// the producer's location is registered.
	matches := 0
	const pairs = 10
	for i := 0; i < pairs; i++ {
		h := rt.NewData()
		f, err := rt.Submit("produce", core.Write(h))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
		// Give every producer's output a size so locality scoring sees it.
		v := rt.CurrentVersion(h)
		reg.SetSize(transfer.KeyOf(v), 1<<20)

		out := rt.NewData()
		f2, err := rt.Submit("consume", core.Read(h), core.Write(out))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f2.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Pair up start events: consume must run where produce ran.
	events := tr.Events()
	nodeOf := make(map[int64]string)
	var seq []int64
	for _, e := range events {
		if e.Kind == trace.TaskStarted {
			nodeOf[e.Task] = e.Node
			seq = append(seq, e.Task)
		}
	}
	if len(seq) != 2*pairs {
		t.Fatalf("started %d tasks, want %d", len(seq), 2*pairs)
	}
	for i := 0; i < len(seq); i += 2 {
		if nodeOf[seq[i]] == nodeOf[seq[i+1]] {
			matches++
		}
	}
	if matches != pairs {
		t.Fatalf("only %d/%d consumers co-located with their producers", matches, pairs)
	}
}

// TestWorkflowAcrossAgents orchestrates a dependent chain where each stage
// runs on whichever agent is least loaded, with values flowing through the
// client — the "application on the fog orchestrating agents" pattern.
func TestWorkflowAcrossAgents(t *testing.T) {
	reg := agent.NewRegistry()
	reg.Register("double", func(args []json.RawMessage) (json.RawMessage, error) {
		var x float64
		if len(args) != 1 || json.Unmarshal(args[0], &x) != nil {
			return nil, errors.New("double wants a number")
		}
		return json.Marshal(2 * x)
	})
	a1, err := agent.New(agent.Config{Name: "a1", Registry: reg, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := agent.New(agent.Config{Name: "a2", Registry: reg, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	a1.SetPeers([]string{a2.URL()})

	val := 1.0
	for step := 0; step < 8; step++ {
		arg, err := json.Marshal(val)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a1.RunAnywhere("double", []json.RawMessage{arg})
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(res, &val); err != nil {
			t.Fatal(err)
		}
	}
	if val != 256 {
		t.Fatalf("chained doubling = %v, want 256", val)
	}
}

// TestSimulatorIsDeterministic runs the same configuration twice and
// demands identical results — the property virtual time buys us.
func TestSimulatorIsDeterministic(t *testing.T) {
	run := func() infra.Result {
		pool := resources.NewPool()
		for i := 0; i < 4; i++ {
			_ = pool.Add(resources.NewNode(fmt.Sprintf("n%d", i), resources.MareNostrumNode))
		}
		cfg := workloads.GWASConfig{
			Chromosomes: 4, ImputationsPerChrom: 25, MeanTaskSeconds: 30,
			LowMemMB: 2000, HighMemMB: 8000, HighMemFrac: 0.3, InputFileMB: 20, Seed: 5,
		}
		specs, stageIn := workloads.GWAS(cfg)
		sim, err := infra.New(infra.Config{
			Pool: pool, Net: simnet.New(simnet.Link{BandwidthMBps: 1000}),
			Policy: sched.Locality{}, StageIn: stageIn,
		}, specs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Makespan != r2.Makespan || r1.BytesMoved != r2.BytesMoved ||
		r1.BusyCoreSeconds != r2.BusyCoreSeconds {
		t.Fatalf("nondeterministic simulation:\n%+v\n%+v", r1, r2)
	}
}

// TestMakespanBounds checks the fundamental scheduling invariant on a
// batch of generated workflows: critical path ≤ makespan ≤ serial time.
func TestMakespanBounds(t *testing.T) {
	cases := map[string][]infra.TaskSpec{
		"mapreduce": workloads.MapReduce(12, 3, 2*time.Second, 4*time.Second, 1e6),
		"stencil":   workloads.IterativeStencil(4, 8, 3*time.Second),
		"mix":       workloads.HeterogeneousMix(40, 17),
	}
	for name, specs := range cases {
		specs := specs
		t.Run(name, func(t *testing.T) {
			// Build the DAG exactly as the simulator will.
			proc := deps.NewProcessor()
			g := graph.New()
			weights := make(map[int64]time.Duration, len(specs))
			var serial time.Duration
			for _, s := range specs {
				res := proc.Register(deps.TaskID(s.ID), s.Accesses)
				g.AddNode(s.ID)
				for _, d := range res.Deps {
					g.AddEdge(int64(d), s.ID)
				}
				weights[s.ID] = s.Duration
				serial += s.Duration
			}
			cp, _, err := g.CriticalPath(weights)
			if err != nil {
				t.Fatal(err)
			}

			pool := resources.NewPool()
			for i := 0; i < 2; i++ {
				_ = pool.Add(resources.NewNode(fmt.Sprintf("n%d", i),
					resources.Description{Cores: 8, MemoryMB: 64000, SpeedFactor: 1}))
			}
			sim, err := infra.New(infra.Config{
				Pool: pool, Net: simnet.New(simnet.Link{BandwidthMBps: 1e6}),
				Policy: sched.MinLoad{},
			}, specs)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan < cp {
				t.Fatalf("makespan %v below critical path %v", res.Makespan, cp)
			}
			if res.Makespan > serial {
				t.Fatalf("makespan %v above serial time %v", res.Makespan, serial)
			}
		})
	}
}

// TestStorageBackendsAreInterchangeable runs the same SOI code against the
// memory backend and the Hecuba cluster.
func TestStorageBackendsAreInterchangeable(t *testing.T) {
	cluster, err := hecuba.NewCluster([]string{"c0", "c1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]storage.Backend{
		"memory": storage.NewMemory("local"),
		"hecuba": cluster,
	}
	for name, backend := range backends {
		backend := backend
		t.Run(name, func(t *testing.T) {
			doc := &jsonDoc{Value: 41}
			var h storage.Handle
			if err := h.MakePersistent(backend, "obj1", doc); err != nil {
				t.Fatal(err)
			}
			doc.Value = 42
			if err := h.Sync(doc); err != nil {
				t.Fatal(err)
			}
			var back jsonDoc
			if err := h.Load(&back); err != nil {
				t.Fatal(err)
			}
			if back.Value != 42 {
				t.Fatalf("loaded %d, want 42", back.Value)
			}
			if locs := backend.Locations("obj1"); len(locs) == 0 {
				t.Fatal("getLocations returned nothing")
			}
			if err := h.DeletePersistent(); err != nil {
				t.Fatal(err)
			}
			if backend.Exists("obj1") {
				t.Fatal("object survives DeletePersistent")
			}
		})
	}
}

type jsonDoc struct {
	Value int `json:"value"`
}

func (d *jsonDoc) MarshalBinary() ([]byte, error)   { return json.Marshal(d) }
func (d *jsonDoc) UnmarshalBinary(raw []byte) error { return json.Unmarshal(raw, d) }
