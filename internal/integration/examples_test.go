package integration_test

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun builds and executes every example program end to end —
// the "runnable examples" deliverable is verified, not assumed.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run in -short mode skipped")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate repo root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))

	examples := map[string]string{
		"quickstart": "sum of 4 x (1..250) = 125500",
		"gwas":       "genome-wide association scan",
		"weather":    "forecast complete",
		"fog":        "recovered offloads",
		"kmeans":     "fitted 3 clusters",
		"steering":   "steering",
		"remote":     "hybrid local/remote workflow",
	}
	for name, marker := range examples {
		name, marker := name, marker
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = root
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				_ = cmd.Process.Kill()
				<-done
				t.Fatalf("example %s timed out", name)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Fatalf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
}
