// Package deps implements the Access Processor of the COMPSs runtime
// ("the AP is the component of the runtime that receives calls from the
// instrumented code and builds a dependency graph", paper Sec. VI-B, Fig. 6).
//
// Tasks declare how they access data (IN, OUT, INOUT, CONCURRENT,
// COMMUTATIVE); the processor derives inter-task dependencies
// automatically. Like COMPSs, it applies *renaming*: every write creates a
// fresh version of the datum, which removes write-after-read and
// write-after-write false dependencies. Renaming can be disabled to measure
// its effect (DESIGN.md ablation 2).
package deps

import (
	"fmt"
	"sort"
	"sync"
)

// DataID identifies a logical datum (a file, an object, a future value).
type DataID int64

// TaskID identifies a task in the dependency graph.
type TaskID int64

// Direction describes how a task accesses a parameter.
type Direction int

// Access directions, mirroring the COMPSs parameter annotations.
const (
	// In declares a read-only access.
	In Direction = iota + 1
	// Out declares a write that fully overwrites the datum.
	Out
	// InOut declares a read-modify-write access.
	InOut
	// Concurrent declares accesses that may run simultaneously (e.g.
	// tasks appending to a shared persistent structure); later
	// non-concurrent accesses wait for all of them.
	Concurrent
	// Commutative declares writes whose order is irrelevant (e.g.
	// reductions); they do not depend on each other, but later accesses
	// depend on all of them.
	Commutative
)

// String returns the annotation name.
func (d Direction) String() string {
	switch d {
	case In:
		return "IN"
	case Out:
		return "OUT"
	case InOut:
		return "INOUT"
	case Concurrent:
		return "CONCURRENT"
	case Commutative:
		return "COMMUTATIVE"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Reads reports whether the direction implies reading the previous value.
func (d Direction) Reads() bool {
	return d == In || d == InOut || d == Concurrent || d == Commutative
}

// Writes reports whether the direction implies producing a new value.
func (d Direction) Writes() bool {
	return d == Out || d == InOut || d == Commutative || d == Concurrent
}

// Access pairs a datum with a direction.
type Access struct {
	Data DataID
	Dir  Direction
}

// Version is a specific immutable version of a datum. Version numbers start
// at 1 for the first write; version 0 denotes the initial (externally
// provided) value.
type Version struct {
	Data DataID
	Ver  int
}

// String formats the version as d<id>v<ver>.
func (v Version) String() string { return fmt.Sprintf("d%dv%d", v.Data, v.Ver) }

// EdgeKind classifies a dependency edge.
type EdgeKind int

// Dependency kinds. With renaming enabled only true (RAW and group) edges
// are produced.
const (
	// RAW is a true read-after-write dependency.
	RAW EdgeKind = iota + 1
	// WAR is a write-after-read false dependency (renaming removes it).
	WAR
	// WAW is a write-after-write false dependency (renaming removes it).
	WAW
	// Group is an edge forced by concurrent/commutative group semantics.
	Group
)

// String returns the edge-kind name.
func (k EdgeKind) String() string {
	switch k {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	case Group:
		return "GROUP"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Result reports the outcome of registering one task.
type Result struct {
	// Deps lists the tasks this one must wait for (sorted, de-duplicated).
	Deps []TaskID
	// Reads lists the exact data versions consumed.
	Reads []Version
	// Writes lists the data versions produced.
	Writes []Version
}

// Stats counts dependency edges by kind since the processor was created.
type Stats struct {
	RAW, WAR, WAW, Group int
}

// Total returns the total number of edges.
func (s Stats) Total() int { return s.RAW + s.WAR + s.WAW + s.Group }

// dataState tracks the bookkeeping for one datum.
type dataState struct {
	ver         int
	lastWriter  TaskID // NoTask when version 0 is externally provided
	readers     []TaskID
	groupAccess []TaskID // concurrent/commutative accessors of current version
}

// NoTask is the sentinel for "no producing task" (externally provided data).
const NoTask TaskID = -1

// depShards is the stripe count of the processor's datum table. Sixteen
// stripes keep concurrent registrations from unrelated workflow regions
// off each other's locks without bloating the struct.
const depShards = 16

// depShard is one stripe: its slice of the datum table plus its own edge
// counters, so Register never touches a process-global counter word.
type depShard struct {
	mu    sync.Mutex
	data  map[DataID]*dataState
	stats Stats
}

// Processor derives task dependencies from declared accesses. It is safe
// for concurrent use: the datum table is hash-sharded by DataID, a
// registration locks only the stripes its accesses touch (in stripe
// order, so overlapping registrations serialise without deadlock), and
// edge counters are kept per stripe and summed on read — registrations
// over disjoint data proceed fully in parallel.
type Processor struct {
	renaming bool
	shards   [depShards]depShard
}

// shardIndex maps a datum to its stripe.
func shardIndex(d DataID) int {
	h := uint64(d) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % depShards)
}

// Option configures a Processor.
type Option func(*Processor)

// WithoutRenaming disables version renaming, so WAR and WAW edges are
// produced. Exists for the ablation experiment.
func WithoutRenaming() Option {
	return func(p *Processor) { p.renaming = false }
}

// NewProcessor returns an access processor with renaming enabled.
func NewProcessor(opts ...Option) *Processor {
	p := &Processor{renaming: true}
	for i := range p.shards {
		p.shards[i].data = make(map[DataID]*dataState)
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// RenamingEnabled reports whether version renaming is on.
func (p *Processor) RenamingEnabled() bool { return p.renaming }

// Stats returns edge counts by kind, summed over the stripes.
func (p *Processor) Stats() Stats {
	var total Stats
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total.RAW += s.stats.RAW
		total.WAR += s.stats.WAR
		total.WAW += s.stats.WAW
		total.Group += s.stats.Group
		s.mu.Unlock()
	}
	return total
}

// CurrentVersion returns the newest version of a datum (0 if never written
// and never registered).
func (p *Processor) CurrentVersion(d DataID) Version {
	s := &p.shards[shardIndex(d)]
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.data[d]
	if !ok {
		return Version{Data: d, Ver: 0}
	}
	return Version{Data: d, Ver: st.ver}
}

// lockFor locks the stripes named in mask, in stripe order — the one
// acquisition order every caller shares, so two registrations whose data
// overlap serialise on the shared stripes instead of deadlocking.
func (p *Processor) lockFor(mask *[depShards]bool) {
	for i := range p.shards {
		if mask[i] {
			p.shards[i].mu.Lock()
		}
	}
}

// unlockFor releases the stripes named in mask.
func (p *Processor) unlockFor(mask *[depShards]bool) {
	for i := range p.shards {
		if mask[i] {
			p.shards[i].mu.Unlock()
		}
	}
}

// Register records the accesses of a task and returns its dependencies and
// the exact data versions it reads and writes. Accesses on the same datum
// within one task should be merged by the caller (the most permissive rule
// applies if not: later entries see the state left by earlier ones). Only
// the stripes holding the accessed data are locked.
func (p *Processor) Register(task TaskID, accesses []Access) Result {
	if len(accesses) == 0 {
		return Result{}
	}
	var mask [depShards]bool
	for _, a := range accesses {
		mask[shardIndex(a.Data)] = true
	}
	p.lockFor(&mask)
	defer p.unlockFor(&mask)
	return p.registerLocked(task, accesses)
}

// TaskAccesses pairs a task with its declared accesses, for batch
// registration.
type TaskAccesses struct {
	Task     TaskID
	Accesses []Access
}

// RegisterBatch registers several tasks under a single lock acquisition
// per stripe, in slice order, and returns one Result per task.
// Registering a whole workflow this way costs one lock round-trip instead
// of one per task, which matters when simulations build million-task
// graphs. All stripes are held for the duration, so the batch is atomic
// exactly as it was under the old single mutex.
func (p *Processor) RegisterBatch(batch []TaskAccesses) []Result {
	var all [depShards]bool
	for i := range all {
		all[i] = true
	}
	p.lockFor(&all)
	defer p.unlockFor(&all)
	out := make([]Result, len(batch))
	for i, b := range batch {
		out[i] = p.registerLocked(b.Task, b.Accesses)
	}
	return out
}

// registerLocked is Register with every stripe the accesses touch held.
func (p *Processor) registerLocked(task TaskID, accesses []Access) Result {
	if len(accesses) == 0 {
		return Result{}
	}
	depSet := make(map[TaskID]struct{})
	var res Result

	// stats points at the stripe of the access currently being processed,
	// so each edge is attributed to (and counted under the lock of) the
	// stripe whose datum produced it.
	var stats *Stats
	addDep := func(t TaskID, kind EdgeKind) {
		if t == NoTask || t == task {
			return
		}
		if _, dup := depSet[t]; dup {
			return
		}
		depSet[t] = struct{}{}
		switch kind {
		case RAW:
			stats.RAW++
		case WAR:
			stats.WAR++
		case WAW:
			stats.WAW++
		case Group:
			stats.Group++
		}
	}

	for _, a := range accesses {
		shard := &p.shards[shardIndex(a.Data)]
		stats = &shard.stats
		st, ok := shard.data[a.Data]
		if !ok {
			st = &dataState{lastWriter: NoTask}
			shard.data[a.Data] = st
		}

		switch a.Dir {
		case In:
			addDep(st.lastWriter, RAW)
			for _, g := range st.groupAccess {
				addDep(g, Group)
			}
			res.Reads = append(res.Reads, Version{Data: a.Data, Ver: st.ver})
			st.readers = append(st.readers, task)

		case Out:
			if !p.renaming {
				addDep(st.lastWriter, WAW)
				for _, r := range st.readers {
					addDep(r, WAR)
				}
			}
			// Group accessors mutate the live object in place, so a
			// superseding write must wait for them even with renaming.
			for _, g := range st.groupAccess {
				addDep(g, Group)
			}
			st.ver++
			st.lastWriter = task
			st.readers = nil
			st.groupAccess = nil
			res.Writes = append(res.Writes, Version{Data: a.Data, Ver: st.ver})

		case InOut:
			addDep(st.lastWriter, RAW)
			for _, g := range st.groupAccess {
				addDep(g, Group)
			}
			if !p.renaming {
				for _, r := range st.readers {
					addDep(r, WAR)
				}
			}
			res.Reads = append(res.Reads, Version{Data: a.Data, Ver: st.ver})
			st.ver++
			st.lastWriter = task
			st.readers = nil
			st.groupAccess = nil
			res.Writes = append(res.Writes, Version{Data: a.Data, Ver: st.ver})

		case Concurrent, Commutative:
			// Members depend on the preceding writer but not on each
			// other; later accesses depend on all members.
			addDep(st.lastWriter, RAW)
			res.Reads = append(res.Reads, Version{Data: a.Data, Ver: st.ver})
			res.Writes = append(res.Writes, Version{Data: a.Data, Ver: st.ver})
			st.groupAccess = append(st.groupAccess, task)
		}
	}

	res.Deps = make([]TaskID, 0, len(depSet))
	for t := range depSet {
		res.Deps = append(res.Deps, t)
	}
	sort.Slice(res.Deps, func(i, j int) bool { return res.Deps[i] < res.Deps[j] })
	return res
}

// MergeAccesses canonicalises a task's access list: multiple accesses to
// the same datum collapse into the most permissive single access (In+Out ⇒
// InOut; anything + Concurrent/Commutative keeps the group direction only
// if no plain write is present). Order of first occurrence is preserved.
func MergeAccesses(accesses []Access) []Access {
	idx := make(map[DataID]int)
	var out []Access
	for _, a := range accesses {
		i, seen := idx[a.Data]
		if !seen {
			idx[a.Data] = len(out)
			out = append(out, a)
			continue
		}
		out[i].Dir = mergeDir(out[i].Dir, a.Dir)
	}
	return out
}

func mergeDir(a, b Direction) Direction {
	if a == b {
		return a
	}
	// Plain read/write combinations.
	plain := func(d Direction) bool { return d == In || d == Out || d == InOut }
	if plain(a) && plain(b) {
		reads := a.Reads() || b.Reads()
		writes := a == Out || a == InOut || b == Out || b == InOut
		switch {
		case reads && writes:
			return InOut
		case writes:
			return Out
		default:
			return In
		}
	}
	// Mixing a group direction with anything else degrades to the
	// conservative InOut (serialised read-modify-write).
	return InOut
}

// SetInitialWriter marks version 0 of a datum as produced externally (e.g. a
// file staged in before the run). It is a no-op if the datum was already
// accessed.
func (p *Processor) SetInitialWriter(d DataID) {
	s := &p.shards[shardIndex(d)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[d]; !ok {
		s.data[d] = &dataState{lastWriter: NoTask}
	}
}
