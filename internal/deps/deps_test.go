package deps

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func reg(p *Processor, task TaskID, accs ...Access) Result {
	return p.Register(task, accs)
}

func wantDeps(t *testing.T, got Result, want ...TaskID) {
	t.Helper()
	if len(got.Deps) != len(want) {
		t.Fatalf("deps = %v, want %v", got.Deps, want)
	}
	for i := range want {
		if got.Deps[i] != want[i] {
			t.Fatalf("deps = %v, want %v", got.Deps, want)
		}
	}
}

func TestRAWDependency(t *testing.T) {
	p := NewProcessor()
	r1 := reg(p, 1, Access{Data: 10, Dir: Out})
	wantDeps(t, r1) // producer has no deps
	r2 := reg(p, 2, Access{Data: 10, Dir: In})
	wantDeps(t, r2, 1)
	if r2.Reads[0] != (Version{Data: 10, Ver: 1}) {
		t.Fatalf("read version = %v, want d10v1", r2.Reads[0])
	}
}

func TestIndependentReadersDoNotDepend(t *testing.T) {
	p := NewProcessor()
	reg(p, 1, Access{Data: 10, Dir: Out})
	r2 := reg(p, 2, Access{Data: 10, Dir: In})
	r3 := reg(p, 3, Access{Data: 10, Dir: In})
	wantDeps(t, r2, 1)
	wantDeps(t, r3, 1)
}

func TestRenamingRemovesWARAndWAW(t *testing.T) {
	p := NewProcessor()
	reg(p, 1, Access{Data: 10, Dir: Out})
	reg(p, 2, Access{Data: 10, Dir: In})
	// Task 3 overwrites: with renaming there is no dependency at all.
	r3 := reg(p, 3, Access{Data: 10, Dir: Out})
	wantDeps(t, r3)
	if got := r3.Writes[0]; got != (Version{Data: 10, Ver: 2}) {
		t.Fatalf("write version = %v, want d10v2", got)
	}
	s := p.Stats()
	if s.WAR != 0 || s.WAW != 0 {
		t.Fatalf("renaming produced false deps: %+v", s)
	}
}

func TestWithoutRenamingProducesWARWAW(t *testing.T) {
	p := NewProcessor(WithoutRenaming())
	reg(p, 1, Access{Data: 10, Dir: Out})
	reg(p, 2, Access{Data: 10, Dir: In})
	r3 := reg(p, 3, Access{Data: 10, Dir: Out})
	wantDeps(t, r3, 1, 2) // WAW on 1, WAR on 2
	s := p.Stats()
	if s.WAR != 1 || s.WAW != 1 {
		t.Fatalf("stats = %+v, want WAR=1 WAW=1", s)
	}
}

func TestInOutChainSerialises(t *testing.T) {
	p := NewProcessor()
	reg(p, 1, Access{Data: 5, Dir: Out})
	r2 := reg(p, 2, Access{Data: 5, Dir: InOut})
	r3 := reg(p, 3, Access{Data: 5, Dir: InOut})
	wantDeps(t, r2, 1)
	wantDeps(t, r3, 2)
	if r3.Reads[0].Ver != 2 || r3.Writes[0].Ver != 3 {
		t.Fatalf("inout versions: reads %v writes %v", r3.Reads, r3.Writes)
	}
}

func TestReadOfUnwrittenDataHasNoDeps(t *testing.T) {
	p := NewProcessor()
	r := reg(p, 1, Access{Data: 99, Dir: In})
	wantDeps(t, r)
	if r.Reads[0].Ver != 0 {
		t.Fatalf("read of initial data has version %d, want 0", r.Reads[0].Ver)
	}
}

func TestConcurrentMembersIndependent(t *testing.T) {
	p := NewProcessor()
	reg(p, 1, Access{Data: 7, Dir: Out})
	r2 := reg(p, 2, Access{Data: 7, Dir: Concurrent})
	r3 := reg(p, 3, Access{Data: 7, Dir: Concurrent})
	wantDeps(t, r2, 1)
	wantDeps(t, r3, 1) // not on 2
	// A later reader waits for the whole group.
	r4 := reg(p, 4, Access{Data: 7, Dir: In})
	wantDeps(t, r4, 1, 2, 3)
}

func TestWriterAfterConcurrentGroupWaits(t *testing.T) {
	p := NewProcessor()
	reg(p, 1, Access{Data: 7, Dir: Concurrent})
	reg(p, 2, Access{Data: 7, Dir: Concurrent})
	r3 := reg(p, 3, Access{Data: 7, Dir: Out})
	wantDeps(t, r3, 1, 2)
}

func TestCommutativeGroup(t *testing.T) {
	p := NewProcessor()
	reg(p, 1, Access{Data: 3, Dir: Out})
	rA := reg(p, 2, Access{Data: 3, Dir: Commutative})
	rB := reg(p, 3, Access{Data: 3, Dir: Commutative})
	wantDeps(t, rA, 1)
	wantDeps(t, rB, 1)
	r4 := reg(p, 4, Access{Data: 3, Dir: InOut})
	wantDeps(t, r4, 1, 2, 3)
}

func TestMultipleParams(t *testing.T) {
	p := NewProcessor()
	reg(p, 1, Access{Data: 1, Dir: Out})
	reg(p, 2, Access{Data: 2, Dir: Out})
	r3 := reg(p, 3, Access{Data: 1, Dir: In}, Access{Data: 2, Dir: In}, Access{Data: 3, Dir: Out})
	wantDeps(t, r3, 1, 2)
	if len(r3.Reads) != 2 || len(r3.Writes) != 1 {
		t.Fatalf("reads=%v writes=%v", r3.Reads, r3.Writes)
	}
}

func TestDepsAreDeduplicated(t *testing.T) {
	p := NewProcessor()
	reg(p, 1, Access{Data: 1, Dir: Out}, Access{Data: 2, Dir: Out})
	r2 := reg(p, 2, Access{Data: 1, Dir: In}, Access{Data: 2, Dir: In})
	wantDeps(t, r2, 1)
}

func TestDirectionStringAndPredicates(t *testing.T) {
	cases := []struct {
		d      Direction
		s      string
		reads  bool
		writes bool
	}{
		{In, "IN", true, false},
		{Out, "OUT", false, true},
		{InOut, "INOUT", true, true},
		{Concurrent, "CONCURRENT", true, true},
		{Commutative, "COMMUTATIVE", true, true},
	}
	for _, c := range cases {
		if c.d.String() != c.s {
			t.Errorf("%v.String() = %q, want %q", int(c.d), c.d.String(), c.s)
		}
		if c.d.Reads() != c.reads || c.d.Writes() != c.writes {
			t.Errorf("%s predicates wrong", c.s)
		}
	}
}

func TestCurrentVersion(t *testing.T) {
	p := NewProcessor()
	if v := p.CurrentVersion(42); v.Ver != 0 {
		t.Fatalf("initial version = %d, want 0", v.Ver)
	}
	reg(p, 1, Access{Data: 42, Dir: Out})
	reg(p, 2, Access{Data: 42, Dir: InOut})
	if v := p.CurrentVersion(42); v.Ver != 2 {
		t.Fatalf("version = %d, want 2", v.Ver)
	}
}

// Property: dependencies always point to earlier-registered tasks when task
// IDs are registered in increasing order, so the graph is acyclic by
// construction.
func TestDepsPointBackwards(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProcessor()
		nData := rng.Intn(5) + 1
		dirs := []Direction{In, Out, InOut, Concurrent, Commutative}
		for task := TaskID(0); task < 60; task++ {
			var accs []Access
			used := make(map[DataID]bool)
			for k := 0; k < rng.Intn(3)+1; k++ {
				d := DataID(rng.Intn(nData))
				if used[d] {
					continue
				}
				used[d] = true
				accs = append(accs, Access{Data: d, Dir: dirs[rng.Intn(len(dirs))]})
			}
			res := p.Register(task, accs)
			for _, dep := range res.Deps {
				if dep >= task {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: renaming never yields more dependency edges than no-renaming on
// the same access trace.
func TestRenamingNeverAddsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))
		pr := NewProcessor()
		pn := NewProcessor(WithoutRenaming())
		gen := func(rng *rand.Rand) []Access {
			dirs := []Direction{In, Out, InOut}
			return []Access{{Data: DataID(rng.Intn(4)), Dir: dirs[rng.Intn(3)]}}
		}
		for task := TaskID(0); task < 50; task++ {
			pr.Register(task, gen(rng1))
			pn.Register(task, gen(rng2))
		}
		return pr.Stats().Total() <= pn.Stats().Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAccesses(t *testing.T) {
	cases := []struct {
		name string
		in   []Access
		want []Access
	}{
		{"disjoint", []Access{{1, In}, {2, Out}}, []Access{{1, In}, {2, Out}}},
		{"in+out=inout", []Access{{1, In}, {1, Out}}, []Access{{1, InOut}}},
		{"out+in=inout", []Access{{1, Out}, {1, In}}, []Access{{1, InOut}}},
		{"in+in=in", []Access{{1, In}, {1, In}}, []Access{{1, In}}},
		{"out+out=out", []Access{{1, Out}, {1, Out}}, []Access{{1, Out}}},
		{"inout dominates", []Access{{1, InOut}, {1, In}}, []Access{{1, InOut}}},
		{"group+plain=inout", []Access{{1, Commutative}, {1, In}}, []Access{{1, InOut}}},
		{"order preserved", []Access{{2, In}, {1, Out}, {2, Out}}, []Access{{2, InOut}, {1, Out}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeAccesses(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestRegisterBatchMatchesSequentialRegister(t *testing.T) {
	accesses := [][]Access{
		{{Data: 1, Dir: Out}},
		{{Data: 1, Dir: In}, {Data: 2, Dir: Out}},
		{{Data: 1, Dir: InOut}},
		{{Data: 2, Dir: In}, {Data: 1, Dir: In}},
		nil, // access-free tasks are valid
	}

	seq := NewProcessor()
	var want []Result
	for i, acc := range accesses {
		want = append(want, seq.Register(TaskID(i), acc))
	}

	batched := NewProcessor()
	batch := make([]TaskAccesses, len(accesses))
	for i, acc := range accesses {
		batch[i] = TaskAccesses{Task: TaskID(i), Accesses: acc}
	}
	got := batched.RegisterBatch(batch)

	if len(got) != len(want) {
		t.Fatalf("results = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Deps) != len(want[i].Deps) ||
			len(got[i].Reads) != len(want[i].Reads) ||
			len(got[i].Writes) != len(want[i].Writes) {
			t.Fatalf("task %d: batch %+v != sequential %+v", i, got[i], want[i])
		}
		for j := range want[i].Deps {
			if got[i].Deps[j] != want[i].Deps[j] {
				t.Fatalf("task %d deps: %v != %v", i, got[i].Deps, want[i].Deps)
			}
		}
	}
	if batched.Stats() != seq.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", batched.Stats(), seq.Stats())
	}
}
