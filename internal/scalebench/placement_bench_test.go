package scalebench

import (
	"fmt"
	"testing"
)

// BenchmarkPlacementPoolSize sweeps pool sizes for one steady-state
// placement decision (pick + reserve, rolling release), indexed against
// the legacy full-pool scan. The indexed arm should be near-flat across
// pool sizes; the scan arm grows linearly — the O(pool) ceiling this
// index removed.
//
//	go test -bench BenchmarkPlacementPoolSize -run '^$' ./internal/scalebench/
func BenchmarkPlacementPoolSize(b *testing.B) {
	for _, arm := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		for _, nodes := range []int{8, 100, 1000} {
			b.Run(fmt.Sprintf("%s/nodes=%d", arm.name, nodes), func(b *testing.B) {
				pool := placementPool(nodes)
				b.ResetTimer()
				runPlacements(pool, b.N, arm.indexed)
			})
		}
	}
}

// TestMeasurePlacement keeps the report measurement compiled and sane:
// both arms must place, and the indexed arm must not lose to the scan on
// a 200-node pool by more than noise allows.
func TestMeasurePlacement(t *testing.T) {
	rep := MeasurePlacement(200, 4000)
	if rep.IndexedPerSec <= 0 || rep.ScanPerSec <= 0 {
		t.Fatalf("degenerate measurement: %+v", rep)
	}
	if rep.IndexedOverScan < 0.5 {
		t.Fatalf("indexed placement %.2f× the scan rate on 200 nodes; expected ≥0.5×: %+v",
			rep.IndexedOverScan, rep)
	}
}
