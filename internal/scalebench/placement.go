// Placement microbenchmark: the indexed pick (per-signature capability
// set + load heap, sched.IndexedPolicy) priced against the legacy
// O(pool) scan it replaced (walk every node, take its lock, materialize
// a fitting slice, scan it for the minimum). Run() attaches a
// 1000-node sample to the report so BENCH_scale.json and the CI scale
// smoke track the ratio; BenchmarkPlacementPoolSize sweeps pool sizes.
package scalebench

import (
	"fmt"
	"time"

	"repro/internal/resources"
	"repro/internal/sched"
)

// placementSigs is the constraint mix the measurement cycles through —
// the same three signatures the scale workload uses, so the index holds
// several live capability sets.
var placementSigs = []resources.Constraints{
	{Cores: 1}, {Cores: 2}, {Cores: 4},
}

// PlacementReport prices one placement decision at a fixed pool size,
// for the scale-smoke diff.
type PlacementReport struct {
	// Nodes is the pool size sampled; Ops the decisions timed per arm.
	Nodes int `json:"nodes"`
	Ops   int `json:"ops"`
	// IndexedPerSec and ScanPerSec are placement decisions per second
	// through the index and through the legacy full-pool scan.
	IndexedPerSec float64 `json:"indexed_per_second"`
	ScanPerSec    float64 `json:"scan_per_second"`
	// IndexedOverScan is the speedup factor.
	IndexedOverScan float64 `json:"indexed_over_scan"`
}

// placementPool builds the measurement pool: n 8-core nodes, half the
// cores pre-reserved in a staggered pattern so load fractions differ and
// the heaps are non-trivial.
func placementPool(n int) *resources.Pool {
	pool := resources.NewPool()
	for i := 0; i < n; i++ {
		node := resources.NewNode(fmt.Sprintf("pb-%05d", i), resources.Description{
			Cores: 8, MemoryMB: 32 << 10, SpeedFactor: 1,
		})
		_ = pool.Add(node)
		for j := 0; j < i%4; j++ {
			_ = node.Reserve(resources.Constraints{Cores: 1})
		}
	}
	return pool
}

// runPlacements performs ops placement decisions against pool — pick,
// reserve, and (once a rolling window fills) release the oldest — using
// either the indexed pick or the legacy scan. It returns the wall time
// of the loop. The window keeps the pool around its starting load, so
// both arms price steady-state decisions rather than a fill ramp.
func runPlacements(pool *resources.Pool, ops int, indexed bool) time.Duration {
	type res struct {
		n *resources.Node
		c resources.Constraints
	}
	var window [256]res // reservation ring: steady-state load, not a fill ramp
	filled, pos := 0, 0
	policy := sched.MinLoad{}
	sigs := make([]string, len(placementSigs))
	for i, c := range placementSigs {
		sigs[i] = c.Signature()
		_ = pool.IndexForSig(sigs[i], c) // build the sets outside the timed loop
	}
	all := pool.Nodes() // the legacy scan's stable membership snapshot
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := i % len(placementSigs)
		c := placementSigs[k]
		if filled == len(window) {
			old := window[pos]
			old.n.Release(old.c)
			filled--
		}
		var n *resources.Node
		if indexed {
			n = policy.PickIndexed(&sched.TaskView{Constraints: c}, pool.IndexForSig(sigs[k], c), nil)
		} else {
			// The pre-index cost model: visit every node (one lock each),
			// materialize a fresh fitting slice, scan it for the minimum.
			fitting := make([]*resources.Node, 0, len(all))
			for _, cand := range all {
				if cand.CanReserve(c) {
					fitting = append(fitting, cand)
				}
			}
			if len(fitting) > 0 {
				n = policy.Pick(&sched.TaskView{Constraints: c}, fitting, nil)
			}
		}
		if n == nil {
			continue
		}
		if err := n.Reserve(c); err == nil {
			window[pos] = res{n, c}
			pos = (pos + 1) % len(window)
			filled++
		}
	}
	return time.Since(start)
}

// MeasurePlacement times ops placement decisions per arm on a fresh
// nodes-sized pool and returns the comparison.
func MeasurePlacement(nodes, ops int) *PlacementReport {
	rep := &PlacementReport{Nodes: nodes, Ops: ops}
	if idx := runPlacements(placementPool(nodes), ops, true); idx > 0 {
		rep.IndexedPerSec = float64(ops) / idx.Seconds()
	}
	if scan := runPlacements(placementPool(nodes), ops, false); scan > 0 {
		rep.ScanPerSec = float64(ops) / scan.Seconds()
	}
	if rep.ScanPerSec > 0 {
		rep.IndexedOverScan = rep.IndexedPerSec / rep.ScanPerSec
	}
	return rep
}
