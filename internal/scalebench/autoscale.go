// Autoscale benchmark: prices the cost-aware multi-tier autoscaler
// (internal/autoscale) against the legacy cost-blind single-tier
// ElasticManager on the generator's bursty and diurnal arrival shapes.
// Both arms replay the identical trace through internal/infra on the
// virtual clock, so the only difference is the scaling policy; cost is
// reconstructed from the run's node trace (node_added/node_removed
// events) priced at each tier's CostPerNodeHour, plus the static base
// pool for the whole makespan. The headline metric is cost per 1000
// completed tasks — the cost-per-throughput the analyzer scores — and
// the report feeds the BENCH_scale.json "autoscale" section the nightly
// gate diffs.
package scalebench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/autoscale"
	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	rtrace "repro/internal/trace"
	wtrace "repro/internal/workloads/trace"
)

// Tier prices for the benchmark arms, in cost units per node-hour. The
// base pool is one always-on edge sensor — the paper's continuum story:
// a device that is simply there, with elastic fog and cloud behind it —
// priced identically in both arms, so it cancels out of the comparison.
const (
	benchCloudRate = 1.0
	benchFogRate   = 0.25
	benchEdgeRate  = 0.05
)

// AutoscaleConfig parameterises the comparison.
type AutoscaleConfig struct {
	// Tasks per shape (0 ⇒ 250). The default targets the regime where
	// the tier decision is non-trivial: demand of order a few reference
	// cores, where a fog fleet can undercut a cloud VM on the baseline
	// and the bursts still need real elastic response. At much higher
	// task counts sustained demand exceeds the fog break-even and the
	// cost-optimal policy degenerates to "hold one big VM" — which the
	// legacy baseline already does by accident.
	Tasks int
	// Seed drives the trace generator; both arms replay the same trace.
	Seed int64
	// Every is the scaling evaluation period (0 ⇒ 10s virtual).
	Every time.Duration
	// Progress, when set, receives one line per finished arm.
	Progress func(string)
}

// AutoscaleArm is one policy's run: completions, makespan, and the
// priced node-hours it consumed.
type AutoscaleArm struct {
	TasksCompleted int     `json:"tasks_completed"`
	MakespanSec    float64 `json:"makespan_seconds"`
	// CostUnits prices the run: elastic node spans from the node trace
	// at their tier rates, plus the base pool for the whole makespan.
	CostUnits float64 `json:"cost_units"`
	// CostPer1kTasks is CostUnits normalised per 1000 completions — the
	// cost-per-throughput figure the arms are compared on.
	CostPer1kTasks float64 `json:"cost_per_1k_tasks"`
	PeakNodes      int     `json:"peak_nodes"`
	NodesAdded     int     `json:"nodes_added"`
	NodesRemoved   int     `json:"nodes_removed"`
}

// AutoscaleShape is one arrival shape's two-arm comparison.
type AutoscaleShape struct {
	Shape  string       `json:"shape"`
	Tasks  int          `json:"tasks"`
	Legacy AutoscaleArm `json:"legacy"`
	// CostAware is the multi-tier analyzer arm (cloud + fog variants).
	CostAware AutoscaleArm `json:"cost_aware"`
	// LegacyOverCostAware is the cost-per-task ratio; > 1 means the
	// cost-aware analyzer ran the same trace cheaper.
	LegacyOverCostAware float64 `json:"legacy_over_cost_aware"`
}

// AutoscaleReport is the BENCH_scale.json "autoscale" section.
type AutoscaleReport struct {
	EvalEverySec float64          `json:"eval_every_seconds"`
	Seed         int64            `json:"seed"`
	Shapes       []AutoscaleShape `json:"shapes"`
}

// RunAutoscale runs the two-arm comparison on the bursty and diurnal
// shapes and returns the report section.
func RunAutoscale(cfg AutoscaleConfig) (*AutoscaleReport, error) {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 250
	}
	if cfg.Every <= 0 {
		cfg.Every = 10 * time.Second
	}
	rep := &AutoscaleReport{EvalEverySec: cfg.Every.Seconds(), Seed: cfg.Seed}
	for _, shape := range []string{wtrace.ShapePoissonBurst, wtrace.ShapeDiurnal} {
		gen := wtrace.DefaultGen(shape)
		gen.Tasks = cfg.Tasks
		gen.Seed = cfg.Seed
		tr, err := wtrace.Generate(gen)
		if err != nil {
			return nil, err
		}
		sh := AutoscaleShape{Shape: shape, Tasks: len(tr.Tasks)}
		if sh.Legacy, err = runAutoscaleArm(tr, false, cfg.Every); err != nil {
			return nil, fmt.Errorf("scalebench: %s legacy arm: %w", shape, err)
		}
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%s legacy: %.1f cost units (%.2f/1k tasks)", shape, sh.Legacy.CostUnits, sh.Legacy.CostPer1kTasks))
		}
		if sh.CostAware, err = runAutoscaleArm(tr, true, cfg.Every); err != nil {
			return nil, fmt.Errorf("scalebench: %s cost-aware arm: %w", shape, err)
		}
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%s cost-aware: %.1f cost units (%.2f/1k tasks)", shape, sh.CostAware.CostUnits, sh.CostAware.CostPer1kTasks))
		}
		if sh.CostAware.CostPer1kTasks > 0 {
			sh.LegacyOverCostAware = sh.Legacy.CostPer1kTasks / sh.CostAware.CostPer1kTasks
		}
		rep.Shapes = append(rep.Shapes, sh)
	}
	return rep, nil
}

// runAutoscaleArm replays one trace with one scaling policy over a
// one-fog-node base pool and prices the run from its node trace.
func runAutoscaleArm(tr *wtrace.Trace, costAware bool, every time.Duration) (AutoscaleArm, error) {
	pool := resources.NewPool()
	if err := pool.Add(resources.NewNode("base-0", resources.EdgeSensor)); err != nil {
		return AutoscaleArm{}, err
	}
	tracer := rtrace.New(0)
	cfg := infra.Config{
		Pool:         pool,
		Net:          simnet.New(simnet.Link{BandwidthMBps: 1000, Latency: 100 * time.Microsecond}),
		Policy:       sched.MinLoad{},
		Tracer:       tracer,
		ElasticEvery: every,
	}
	if costAware {
		scaler, err := autoscale.New(autoscale.DefaultPolicy(), []autoscale.Variant{
			benchVariant("cloud", resources.CloudVM, benchCloudRate, 30*time.Second, 8),
			benchVariant("fog", resources.FogDevice, benchFogRate, 5*time.Second, 16),
		})
		if err != nil {
			return AutoscaleArm{}, err
		}
		cfg.Autoscale = scaler
	} else {
		// The legacy baseline scales the cloud tier only, with the
		// cost-blind Evaluate: same growth threshold, shrink once a whole
		// VM's worth of cores idles.
		cfg.Elastic = resources.NewElasticManager(
			resources.NewSimProvider("cloud", resources.CloudVM, 8, 30*time.Second),
			resources.ScalePolicy{MaxNodes: 8, TasksPerCore: 2, IdleCoresToShrink: 8, CostPerNodeHour: benchCloudRate},
		)
	}
	sim, err := infra.New(cfg, tr.Specs())
	if err != nil {
		return AutoscaleArm{}, err
	}
	res, err := sim.Run()
	if err != nil {
		return AutoscaleArm{}, err
	}
	arm := AutoscaleArm{
		TasksCompleted: res.TasksCompleted,
		MakespanSec:    res.Makespan.Seconds(),
		PeakNodes:      res.PeakNodes,
	}
	arm.CostUnits = benchEdgeRate * res.Makespan.Hours() // base-0, present throughout
	arm.CostUnits += priceNodeTrace(tracer, res.Makespan, &arm)
	if arm.TasksCompleted > 0 {
		arm.CostPer1kTasks = arm.CostUnits * 1000 / float64(arm.TasksCompleted)
	}
	return arm, nil
}

// benchVariant builds one autoscaler tier for the comparison arm.
func benchVariant(name string, desc resources.Description, rate float64, delay time.Duration, max int) autoscale.Variant {
	return autoscale.Variant{
		Name: name,
		Desc: desc,
		Manager: resources.NewElasticManager(
			resources.NewSimProvider(name, desc, max, delay),
			resources.ScalePolicy{MaxNodes: max, TasksPerCore: 2, CostPerNodeHour: rate},
		),
	}
}

// priceNodeTrace integrates elastic node lifetimes from the run's
// node_added/node_removed events, priced by the tier encoded in the
// node-name prefix (SimProvider names nodes "tier-N"). Nodes still in
// the pool when the run ends are billed to the makespan.
func priceNodeTrace(tracer *rtrace.Tracer, makespan time.Duration, arm *AutoscaleArm) float64 {
	added := map[string]time.Duration{}
	cost := 0.0
	for _, e := range tracer.Events() {
		switch e.Kind {
		case rtrace.NodeAdded:
			added[e.Node] = e.At
			arm.NodesAdded++
		case rtrace.NodeRemoved:
			at, ok := added[e.Node]
			if !ok {
				continue // base pool or fault-injected node: not elastic
			}
			cost += tierRate(e.Node) * (e.At - at).Hours()
			delete(added, e.Node)
			arm.NodesRemoved++
		}
	}
	for node, at := range added {
		cost += tierRate(node) * (makespan - at).Hours()
	}
	return cost
}

// tierRate maps a provisioned node's name prefix to its tier price.
func tierRate(node string) float64 {
	if i := strings.LastIndex(node, "-"); i > 0 {
		switch node[:i] {
		case "cloud":
			return benchCloudRate
		case "fog":
			return benchFogRate
		}
	}
	return benchCloudRate // unknown tier: price conservatively
}
