// Report schema for BENCH_scale.json. Everything here is plain data:
// the harness fills it, cmd/flowgo-sim marshals it, and the CI scale
// smoke diffs selected fields against a committed baseline. Field names
// are part of that contract — rename with the same care as an on-disk
// format.
package scalebench

import (
	"encoding/json"
	"os"
	"sort"
	"time"

	latreport "repro/internal/workloads/trace/report"
)

// Quantiles summarises a latency sample set. Units are carried by the
// field name at the use site (microseconds for wave latency,
// milliseconds for capture cost).
type Quantiles struct {
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// ConfigOut is the run configuration echoed into the report.
type ConfigOut struct {
	Tasks           int     `json:"tasks"`
	Nodes           int     `json:"nodes"`
	Width           int     `json:"width"`
	TaskDurationSec float64 `json:"task_duration_seconds"`
	IntervalSec     float64 `json:"checkpoint_interval_seconds"`
	Delta           bool    `json:"delta"`
	CompactEvery    int     `json:"compact_every"`
	Persisted       bool    `json:"persisted"`
	Seed            int64   `json:"seed"`
}

// RunReport is the scheduling-throughput half of the result.
type RunReport struct {
	// TasksCompleted is the number of completions the run drained.
	TasksCompleted int `json:"tasks_completed"`
	// SimMakespanSec is the virtual time the campaign took.
	SimMakespanSec float64 `json:"sim_makespan_seconds"`
	// BuildWallSec is the wall time spent registering the DAG.
	BuildWallSec float64 `json:"build_wall_seconds"`
	// RunWallSec is the wall time of the event loop, captures included.
	RunWallSec float64 `json:"run_wall_seconds"`
	// CaptureWallSec is the wall time spent inside checkpoint captures,
	// comparison captures included.
	CaptureWallSec float64 `json:"capture_wall_seconds"`
	// MeasureWallSec is the slice of CaptureWallSec spent on
	// comparison-only captures (each interval captures the same state both
	// fully and as a delta so the report can price them against each
	// other; only one of the two is a cost the configured cadence pays).
	MeasureWallSec float64 `json:"measure_wall_seconds"`
	// SaveWallSec is the wall time spent persisting checkpoints to disk.
	SaveWallSec float64 `json:"save_wall_seconds"`
	// TasksPerSec is scheduling throughput with capture and save time
	// excluded: completions per second of pure engine work.
	TasksPerSec float64 `json:"tasks_per_second"`
	// EffectiveTasksPerSec includes real checkpointing cost: completions
	// per second of loop wall time minus only the comparison overhead.
	EffectiveTasksPerSec float64 `json:"effective_tasks_per_second"`
	// Steals and Transfers echo the engine's activity counters.
	Steals    int `json:"steals"`
	Transfers int `json:"transfers"`
}

// CkptReport is the checkpoint-cost half of the result.
type CkptReport struct {
	// Captures counts intervals that found dirty state; Skipped counts
	// intervals the dirty-set check elided entirely.
	Captures int `json:"captures"`
	Skipped  int `json:"skipped"`
	// Bases and Deltas count files persisted (zero when not persisting).
	Bases  int `json:"bases"`
	Deltas int `json:"deltas"`
	// FullCaptureMS and DeltaCaptureMS are per-interval capture costs of
	// the SAME engine state, captured back to back.
	FullCaptureMS  Quantiles `json:"full_capture_ms"`
	DeltaCaptureMS Quantiles `json:"delta_capture_ms"`
	// FullOverDeltaP50 is the median of the per-interval full/delta cost
	// ratios — the factor the delta subsystem saves per capture.
	FullOverDeltaP50 float64 `json:"full_over_delta_p50"`
	// DirtyPerCaptureP50 is the median dirty-record count per capture —
	// how "mostly clean" the graph actually was between intervals.
	DirtyPerCaptureP50 float64 `json:"dirty_per_capture_p50"`
	// DiskBytes is the checkpoint directory size after retention.
	DiskBytes int64 `json:"disk_bytes,omitempty"`
}

// RestoreReport verifies and times end-state reconstruction.
type RestoreReport struct {
	// LatestMS is the Store.Latest wall time (base load + chain replay).
	LatestMS float64 `json:"latest_ms"`
	// Completed is the completed-task count the reconstruction shows.
	Completed int `json:"completed"`
	// OK reports whether that matches the run's task count.
	OK bool `json:"ok"`
}

// MetricsSeries is one sampled metric over the run: parallel arrays of
// virtual-time sample instants and values.
type MetricsSeries struct {
	Name   string    `json:"name"`
	AtSec  []float64 `json:"at_seconds"`
	Values []float64 `json:"values"`
}

// MetricsReport is the sampled time-series section of the report,
// present when the run was given a metrics registry (Config.Metrics).
// Sampling runs on the virtual clock, so the section is deterministic
// for a fixed config and seed.
type MetricsReport struct {
	SampleEverySec float64         `json:"sample_every_seconds"`
	Series         []MetricsSeries `json:"series"`
}

// Report is the full BENCH_scale.json document.
type Report struct {
	Schema        int                `json:"schema"`
	Config        ConfigOut          `json:"config"`
	Run           RunReport          `json:"run"`
	WaveLatencyUS Quantiles          `json:"wave_latency_us"`
	Latency       *latreport.Summary `json:"latency,omitempty"`
	Checkpoint    CkptReport         `json:"checkpoint"`
	Restore       *RestoreReport     `json:"restore,omitempty"`
	Placement     *PlacementReport   `json:"placement,omitempty"`
	Contention    *MutexReport       `json:"mutex_contention,omitempty"`
	Metrics       *MetricsReport     `json:"metrics,omitempty"`
	// Autoscale is the cost-aware-vs-legacy scaling comparison
	// (autoscale.go); regenerate with flowgo-sim -autoscale-bench.
	Autoscale *AutoscaleReport `json:"autoscale,omitempty"`
}

// Schema is the report format version.
const Schema = 1

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func quantiles(samples []float64) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return Quantiles{P50: at(0.50), P99: at(0.99), Max: s[len(s)-1]}
}

// newReport assembles the report from a drained harness.
func newReport(cfg Config, h *harness, buildWall, runWall time.Duration) *Report {
	stats := h.eng.Stats()
	rep := &Report{
		Schema: Schema,
		Config: ConfigOut{
			Tasks: cfg.Tasks, Nodes: cfg.Nodes, Width: cfg.Width,
			TaskDurationSec: cfg.TaskDuration.Seconds(),
			IntervalSec:     cfg.Interval.Seconds(),
			Delta:           cfg.Delta,
			CompactEvery:    h.compact,
			Persisted:       h.store != nil,
			Seed:            cfg.Seed,
		},
		Run: RunReport{
			TasksCompleted: h.completed,
			SimMakespanSec: h.clock.Now().Seconds(),
			BuildWallSec:   buildWall.Seconds(),
			RunWallSec:     runWall.Seconds(),
			CaptureWallSec: h.captureWall.Seconds(),
			MeasureWallSec: h.measureWall.Seconds(),
			SaveWallSec:    h.saveWall.Seconds(),
			Steals:         stats.Steals,
			Transfers:      stats.Transfers,
		},
	}
	engineWall := runWall - h.captureWall - h.saveWall
	if engineWall > 0 {
		rep.Run.TasksPerSec = float64(h.completed) / engineWall.Seconds()
	}
	if effectiveWall := runWall - h.measureWall; effectiveWall > 0 {
		rep.Run.EffectiveTasksPerSec = float64(h.completed) / effectiveWall.Seconds()
	}

	waveUS := make([]float64, len(h.waveNS))
	for i, ns := range h.waveNS {
		waveUS[i] = float64(ns) / 1e3
	}
	rep.WaveLatencyUS = quantiles(waveUS)

	// Per-task latency percentiles over the virtual clock: queue wait
	// (ready→start) and end-to-end. The campaign has no tenant dimension,
	// so the per-tenant breakdown stays empty here; trace replays fill it.
	lat := latreport.Build(h.eng.Timings(), nil)
	rep.Latency = &lat

	if h.smp != nil {
		every := cfg.SampleEvery
		if every <= 0 {
			every = cfg.Interval
		}
		mr := &MetricsReport{SampleEverySec: every.Seconds()}
		for _, ts := range h.smp.Series() {
			ms := MetricsSeries{Name: ts.Name}
			for _, p := range ts.Points {
				ms.AtSec = append(ms.AtSec, p.At.Seconds())
				ms.Values = append(ms.Values, p.Value)
			}
			mr.Series = append(mr.Series, ms)
		}
		rep.Metrics = mr
	}

	rep.Checkpoint = CkptReport{Captures: len(h.captures), Skipped: h.skipped}
	if len(h.captures) > 0 {
		fullMS := make([]float64, len(h.captures))
		deltaMS := make([]float64, len(h.captures))
		ratios := make([]float64, 0, len(h.captures))
		dirty := make([]float64, len(h.captures))
		for i, c := range h.captures {
			fullMS[i] = msf(c.full)
			deltaMS[i] = msf(c.delta)
			dirty[i] = float64(c.dirty)
			if c.delta > 0 {
				ratios = append(ratios, float64(c.full)/float64(c.delta))
			}
		}
		rep.Checkpoint.FullCaptureMS = quantiles(fullMS)
		rep.Checkpoint.DeltaCaptureMS = quantiles(deltaMS)
		rep.Checkpoint.FullOverDeltaP50 = quantiles(ratios).P50
		rep.Checkpoint.DirtyPerCaptureP50 = quantiles(dirty).P50
	}
	return rep
}

// WriteJSON marshals the report (indented, trailing newline) to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
