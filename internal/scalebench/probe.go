// Concurrent lock-contention probe. The scale harness's event loop is
// single-threaded (virtual time), so it cannot see what the live
// backend's completion storms see: many goroutines hitting the replica
// registry and the dependency processor at once. This probe measures
// that directly — a fixed op mix over both structures from GOMAXPROCS
// goroutines, with the runtime mutex profiler on — and reports the total
// mutex wait (runtime/metrics /sync/mutex/wait/total:seconds) plus the
// top contended call sites. With hash-sharded stripes the wait should
// stay near zero; a regression here is a stripe lock degenerating back
// into a global one.
package scalebench

import (
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"

	"repro/internal/deps"
	"repro/internal/transfer"
)

// MutexSite is one contended lock site from the runtime mutex profile.
type MutexSite struct {
	// Site is the function holding the lock when waiters piled up.
	Site string `json:"site"`
	// Fraction is this site's share of the profile's total wait cycles.
	Fraction float64 `json:"fraction"`
}

// MutexReport is the contention probe's result.
type MutexReport struct {
	// Goroutines is the worker count (GOMAXPROCS unless overridden).
	Goroutines int `json:"goroutines"`
	// Ops is the total operation count across all workers.
	Ops int `json:"ops"`
	// WaitSeconds is the increase in total mutex wait time across the
	// probe (sum over all goroutines).
	WaitSeconds float64 `json:"wait_seconds"`
	// WaitPerOpNS normalises that to nanoseconds of lock wait per op.
	WaitPerOpNS float64 `json:"wait_per_op_ns"`
	// TopSites lists the most contended lock sites, largest first.
	TopSites []MutexSite `json:"top_sites,omitempty"`
}

func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return sample[0].Value.Float64()
}

// RunMutexProbe hammers a fresh sharded registry and dependency
// processor with opsPerG mixed operations from each of g goroutines
// (g ≤ 0 ⇒ 4×GOMAXPROCS, minimum 4, so lock handoff is exercised even
// on a single-core host) and reports the mutex wait it provoked. The op
// mix mirrors a completion storm: replica adds and lookups against a
// shared key space, size queries, and dependency registrations.
func RunMutexProbe(g, opsPerG int) *MutexReport {
	if g <= 0 {
		g = 4 * runtime.GOMAXPROCS(0)
		if g < 4 {
			g = 4
		}
	}
	reg := transfer.NewRegistry()
	proc := deps.NewProcessor()

	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)
	before := mutexWaitSeconds()

	const keySpace = 1 << 14
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nodes := [4]string{"n0", "n1", "n2", "n3"}
			base := deps.TaskID(w * opsPerG)
			for i := 0; i < opsPerG; i++ {
				k := transfer.Key{Data: deps.DataID((w*31 + i) % keySpace), Ver: 1}
				switch i % 4 {
				case 0:
					reg.AddReplica(k, nodes[i%len(nodes)])
				case 1:
					reg.Where(k)
				case 2:
					reg.SetSize(k, int64(i))
				case 3:
					proc.Register(base+deps.TaskID(i), []deps.Access{
						{Data: deps.DataID((w + i) % keySpace), Dir: deps.InOut},
					})
				}
			}
		}(w)
	}
	wg.Wait()

	rep := &MutexReport{
		Goroutines:  g,
		Ops:         g * opsPerG,
		WaitSeconds: mutexWaitSeconds() - before,
	}
	if rep.WaitSeconds < 0 {
		rep.WaitSeconds = 0
	}
	if rep.Ops > 0 {
		rep.WaitPerOpNS = rep.WaitSeconds * 1e9 / float64(rep.Ops)
	}
	rep.TopSites = topMutexSites(3)
	return rep
}

// topMutexSites reads the runtime mutex profile and returns the n
// largest sites by accumulated wait cycles.
func topMutexSites(n int) []MutexSite {
	var records []runtime.BlockProfileRecord
	size, _ := runtime.MutexProfile(nil)
	if size == 0 {
		return nil
	}
	records = make([]runtime.BlockProfileRecord, size+size/4+8)
	size, ok := runtime.MutexProfile(records)
	if !ok || size == 0 {
		return nil
	}
	records = records[:size]
	sort.Slice(records, func(i, j int) bool { return records[i].Cycles > records[j].Cycles })
	var total int64
	for _, r := range records {
		total += r.Cycles
	}
	if total == 0 {
		return nil
	}
	var out []MutexSite
	for _, r := range records {
		if len(out) == n {
			break
		}
		site := "unknown"
		for _, pc := range r.Stack() {
			if fn := runtime.FuncForPC(pc); fn != nil {
				site = fn.Name()
				break
			}
		}
		out = append(out, MutexSite{Site: site, Fraction: float64(r.Cycles) / float64(total)})
	}
	return out
}
