// Package scalebench is the million-task scale harness: it drives the
// shared scheduling engine (internal/engine) directly over a virtual
// clock, with interval checkpointing on, and measures what the paper's
// continuum story needs to stay true at scale — scheduling throughput,
// per-completion wave latency, and the cost of a checkpoint capture as
// the graph grows. The workload is synthetic but shaped like the real
// campaigns the repo models: Width independent task chains over a large
// heterogeneous-free pool, a handful of constraint signatures (so the
// signature-bucketed ready set is exercised, not bypassed), and one
// modelled data transfer per dependency edge.
//
// The harness runs at the engine level rather than through internal/infra
// so every hot-path cost is attributable: each CompleteSchedule call is
// timed individually (wave latency quantiles), and at every virtual
// checkpoint interval BOTH a full Capture and a CaptureDelta are timed
// back to back against the same engine state — the full capture is
// side-effect-free, so the pair measures exactly the O(tasks) vs
// O(changes) gap the delta subsystem exists to close. The simulation
// loop is single-threaded by design (virtual time), so lock contention
// is measured separately by a concurrent probe (probe.go) hammering the
// sharded registry and dependency processor from GOMAXPROCS goroutines.
//
// Results marshal to BENCH_scale.json; see report.go for the schema and
// docs/ARCHITECTURE.md ("Scale and checkpoint deltas") for how the
// numbers tie back to the design.
package scalebench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/deps"
	"repro/internal/engine"
	"repro/internal/engine/checkpoint"
	"repro/internal/obsv"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/transfer"
)

// Config parameterises one scale run. The zero value is not runnable;
// use Default() and override.
type Config struct {
	// Tasks is the total task count.
	Tasks int
	// Nodes is the pool size (8-core nodes).
	Nodes int
	// Width is the number of independent chains (the concurrency the DAG
	// offers; Tasks/Width is the chain length / critical path).
	Width int
	// TaskDuration is the mean virtual compute time per task; actual
	// durations are jittered ±50% (seeded) so completions stagger.
	TaskDuration time.Duration
	// OutputBytes is the size of each task's single output.
	OutputBytes int64
	// Interval is the virtual-time checkpoint interval.
	Interval time.Duration
	// Delta selects delta-chain persistence (base + deltas, compacted
	// every CompactEvery) over a full snapshot per interval. Capture
	// timing measures both regardless; this only chooses what is saved
	// when Dir is set.
	Delta bool
	// CompactEvery bounds the delta chain length (0 ⇒ checkpoint.DefaultCompactEvery).
	CompactEvery int
	// Dir, when non-empty, persists checkpoints to a real Store there and
	// verifies end-state reconstruction with Store.Latest.
	Dir string
	// Keep is the Store retention (0 ⇒ 3).
	Keep int
	// Seed seeds the duration jitter.
	Seed int64
	// NoIndex forces the engine's legacy O(pool) scan placement path
	// (engine.Config.DisableIndex) — the comparison arm of the placement
	// index benchmarks.
	NoIndex bool
	// MutexProbe, when true, runs the post-run concurrent contention
	// probe (see probe.go).
	MutexProbe bool
	// Metrics, when set, receives engine instruments, and the report
	// gains a sampled time-series section (see Report.Metrics). Sampling
	// runs on the virtual clock every SampleEvery (0 ⇒ Interval), so the
	// series is deterministic for a fixed config and seed.
	Metrics *obsv.Registry
	// SampleEvery is the virtual-time metrics sampling interval.
	SampleEvery time.Duration
	// Progress, when set, receives coarse progress lines.
	Progress func(string)
}

// Default returns the canonical million-task configuration: 1M tasks,
// 10k chains, 1000 nodes, 2-minute virtual checkpoint interval
// (frequent cheap checkpoints are what delta mode buys), delta
// persistence on.
func Default() Config {
	return Config{
		Tasks:        1_000_000,
		Nodes:        1000,
		Width:        10_000,
		TaskDuration: 30 * time.Second,
		OutputBytes:  1 << 20,
		Interval:     2 * time.Minute,
		Delta:        true,
		MutexProbe:   true,
	}
}

// harness is one run's mutable state.
type harness struct {
	cfg   Config
	clock *simclock.Clock
	eng   *engine.Engine
	reg   *transfer.Registry
	store *checkpoint.Store
	smp   *obsv.Sampler

	completed int
	waveNS    []int64 // per-CompleteSchedule wall nanoseconds

	captures    []captureSample
	skipped     int
	bases       int
	deltas      int
	chainLen    int
	haveBase    bool
	compact     int
	captureWall time.Duration
	saveWall    time.Duration
	// measureWall is the slice of captureWall spent on comparison-only
	// captures (the full capture at intervals where only a delta is the
	// real cost, or vice versa in full mode) — benchmarking overhead the
	// configured cadence would never pay.
	measureWall time.Duration
}

// captureSample is one checkpoint interval's timing: the same engine
// state captured fully and incrementally, back to back.
type captureSample struct {
	dirty   int
	full    time.Duration
	delta   time.Duration
	deltaSz int // task records in the delta
}

type executor struct{ h *harness }

// Launch implements engine.Executor: completion becomes a virtual-clock
// event after the modelled transfer and (speed-scaled) compute time.
func (x *executor) Launch(p engine.Placement) {
	d := p.TransferTime + time.Duration(float64(p.Task.EstDuration)*p.SlowFactor/p.Primary().Desc().SpeedFactor)
	id, epoch := p.Task.ID, p.Epoch
	x.h.clock.After(d, func() { x.h.complete(id, epoch) })
}

func (h *harness) complete(id int64, epoch int) {
	t0 := time.Now()
	h.eng.CompleteSchedule(id, epoch, false)
	h.waveNS = append(h.waveNS, time.Since(t0).Nanoseconds())
	h.completed++
}

// tick is the interval checkpoint event: skip when clean, otherwise time
// a full capture and a delta capture against the same state, then
// persist per the configured strategy.
func (h *harness) tick() {
	dirty := h.eng.DirtyCount() + h.reg.DirtyCount()
	if dirty == 0 {
		h.skipped++
	} else {
		t0 := time.Now()
		full := checkpoint.Capture(h.eng, h.reg) // side-effect-free
		fullD := time.Since(t0)
		t1 := time.Now()
		d := checkpoint.CaptureDelta(h.eng, h.reg) // drains the dirty sets
		deltaD := time.Since(t1)
		h.captureWall += fullD + deltaD
		if h.cfg.Delta {
			// The full capture is comparison-only unless this interval
			// persists it as a (new or compacting) base.
			if !(h.store != nil && (!h.haveBase || h.chainLen >= h.compact)) {
				h.measureWall += fullD
			}
		} else {
			h.measureWall += deltaD // full mode times the delta only to compare
		}
		h.captures = append(h.captures, captureSample{
			dirty: dirty, full: fullD, delta: deltaD, deltaSz: len(d.Tasks),
		})
		h.persist(full, d)
		if h.cfg.Progress != nil {
			h.cfg.Progress(fmt.Sprintf("checkpoint %d: %d/%d done, %d dirty, full %v, delta %v",
				len(h.captures), h.completed, h.cfg.Tasks, dirty, fullD.Round(time.Millisecond), deltaD.Round(time.Microsecond)))
		}
	}
	// Re-arm only while the run is alive: completions still pending in the
	// clock mean progress; a tick that finds itself the only event left
	// would re-arm forever over a stalled graph, so it lets the loop drain
	// and Run report the shortfall instead.
	if h.completed < h.cfg.Tasks && h.clock.Pending() > 0 {
		h.clock.After(h.cfg.Interval, h.tick)
	}
}

// persist writes the interval's checkpoint to the store: in delta mode a
// base starts or compacts the chain and deltas extend it; in full mode
// every interval saves the full snapshot. The full capture precedes the
// delta drain, so saving it as a base is always chain-consistent (it
// subsumes everything the drained delta carries).
func (h *harness) persist(full *checkpoint.Snapshot, d *checkpoint.Delta) {
	if h.store == nil {
		return
	}
	t0 := time.Now()
	defer func() { h.saveWall += time.Since(t0) }()
	if !h.cfg.Delta || !h.haveBase || h.chainLen >= h.compact {
		if _, err := h.store.Save(full); err == nil {
			h.haveBase = true
			h.chainLen = 0
			h.bases++
		}
		return
	}
	if _, err := h.store.SaveDelta(d); err == nil {
		h.chainLen++
		h.deltas++
	}
}

// buildWorkload registers the full DAG: Width chains submitted striped
// (task n is position n/Width of chain n%Width) so the ready frontier is
// Width tasks wide from the first wave. Chain c's position-j task reads
// key (c, j) and writes key (c, j+1); cores alternate 1/2/4 by chain so
// the ready set spreads over three signature buckets.
func buildWorkload(cfg Config, eng *engine.Engine, rng *rand.Rand) {
	const batch = 8192
	ts := make([]*engine.Task, 0, batch)
	producers := make([][]deps.TaskID, 0, batch)
	cores := [3]int{1, 2, 4}
	for n := 0; n < cfg.Tasks; n++ {
		chain := n % cfg.Width
		pos := n / cfg.Width
		t := &engine.Task{
			ID:          int64(n + 1),
			Class:       "scale",
			Constraints: resources.Constraints{Cores: cores[chain%3]},
			EstDuration: time.Duration(float64(cfg.TaskDuration) * (0.5 + rng.Float64())),
			OutputKeys:  []transfer.Key{{Data: deps.DataID(chain), Ver: pos + 1}},
		}
		var prod []deps.TaskID
		if pos > 0 {
			t.InputKeys = []transfer.Key{{Data: deps.DataID(chain), Ver: pos}}
			t.InputBytes = cfg.OutputBytes
			prod = []deps.TaskID{deps.TaskID(n + 1 - cfg.Width)}
		}
		ts = append(ts, t)
		producers = append(producers, prod)
		if len(ts) == batch {
			eng.AddBatch(ts, producers)
			ts, producers = ts[:0], producers[:0]
		}
	}
	if len(ts) > 0 {
		eng.AddBatch(ts, producers)
	}
}

// Run executes one scale benchmark and returns its report.
func Run(cfg Config) (*Report, error) {
	if cfg.Tasks <= 0 || cfg.Nodes <= 0 {
		return nil, fmt.Errorf("scalebench: Tasks and Nodes must be positive")
	}
	if cfg.Width <= 0 {
		cfg.Width = cfg.Tasks / 100
		if cfg.Width == 0 {
			cfg.Width = 1
		}
	}
	if cfg.Width > cfg.Tasks {
		cfg.Width = cfg.Tasks
	}
	if cfg.TaskDuration <= 0 {
		cfg.TaskDuration = 30 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Minute
	}
	compact := cfg.CompactEvery
	if compact <= 0 {
		compact = checkpoint.DefaultCompactEvery
	}

	pool := resources.NewPool()
	for i := 0; i < cfg.Nodes; i++ {
		if err := pool.Add(resources.NewNode(fmt.Sprintf("node-%04d", i), resources.Description{
			Cores: 8, MemoryMB: 32 << 10, SpeedFactor: 1,
		})); err != nil {
			return nil, err
		}
	}

	h := &harness{
		cfg:     cfg,
		clock:   simclock.New(),
		reg:     transfer.NewRegistry(),
		compact: compact,
		waveNS:  make([]int64, 0, cfg.Tasks),
	}
	if cfg.Dir != "" {
		keep := cfg.Keep
		if keep <= 0 {
			keep = 3
		}
		st, err := checkpoint.NewStore(cfg.Dir, checkpoint.Keep(keep))
		if err != nil {
			return nil, err
		}
		h.store = st
	}
	h.eng = engine.New(engine.Config{
		Pool:         pool,
		Policy:       sched.MinLoad{},
		Clock:        h.clock,
		Executor:     &executor{h: h},
		Registry:     h.reg,
		Net:          simnet.New(simnet.Link{BandwidthMBps: 1000, Latency: 100 * time.Microsecond}),
		DisableIndex: cfg.NoIndex,
		Metrics:      obsv.NewEngineMetrics(cfg.Metrics),
	})
	if cfg.Metrics != nil {
		h.smp = obsv.NewSampler(cfg.Metrics)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	buildStart := time.Now()
	buildWorkload(cfg, h.eng, rng)
	buildWall := time.Since(buildStart)
	if cfg.Progress != nil {
		cfg.Progress(fmt.Sprintf("built %d-task DAG (%d chains) in %v", cfg.Tasks, cfg.Width, buildWall.Round(time.Millisecond)))
	}

	runStart := time.Now()
	// Checkpoint the submitted DAG before execution starts: the t=0 base
	// resets the build's dirty records (a million adds), so every interval
	// sample below measures execution churn against a clean graph rather
	// than submission noise, and the first persisted delta chains onto a
	// real base.
	t0 := time.Now()
	base := checkpoint.CaptureBase(h.eng, h.reg)
	h.captureWall += time.Since(t0)
	if h.store != nil {
		t0 = time.Now()
		if _, err := h.store.Save(base); err != nil {
			return nil, err
		}
		h.saveWall += time.Since(t0)
		h.haveBase = true
		h.bases++
	}
	h.clock.After(cfg.Interval, h.tick)
	if h.smp != nil {
		every := cfg.SampleEvery
		if every <= 0 {
			every = cfg.Interval
		}
		// Same re-arm guard as tick: a sampler that re-arms over a stalled
		// graph would keep the event loop alive forever.
		var sampleTick func()
		sampleTick = func() {
			h.smp.Sample(h.clock.Now())
			if h.completed < h.cfg.Tasks && h.clock.Pending() > 0 {
				h.clock.After(every, sampleTick)
			}
		}
		h.clock.After(every, sampleTick)
	}
	h.eng.Schedule()
	h.clock.Run()
	h.smp.Sample(h.clock.Now()) // closing sample at the makespan
	runWall := time.Since(runStart)
	if h.completed != cfg.Tasks {
		return nil, fmt.Errorf("scalebench: run drained with %d/%d tasks completed", h.completed, cfg.Tasks)
	}

	rep := newReport(cfg, h, buildWall, runWall)

	if h.store != nil {
		// Final save so the store's newest chain covers the end state,
		// then verify Latest reconstructs it — the restore half of the
		// scale story, timed.
		finalDelta := checkpoint.CaptureDelta(h.eng, h.reg)
		if h.cfg.Delta && h.haveBase && h.chainLen < h.compact {
			if !finalDelta.Empty() {
				if _, err := h.store.SaveDelta(finalDelta); err == nil {
					h.deltas++
				}
			}
		} else {
			if _, err := h.store.Save(checkpoint.Capture(h.eng, h.reg)); err == nil {
				h.bases++
			}
		}
		t0 := time.Now()
		snap, err := h.store.Latest()
		latestWall := time.Since(t0)
		r := &RestoreReport{LatestMS: msf(latestWall)}
		if err == nil && snap != nil {
			r.Completed = len(snap.Completed)
			r.OK = len(snap.Completed) == cfg.Tasks
		}
		rep.Restore = r
		rep.Checkpoint.Bases = h.bases
		rep.Checkpoint.Deltas = h.deltas
		rep.Checkpoint.DiskBytes = dirBytes(cfg.Dir)
	}

	// Price one placement decision at this pool size, indexed vs the
	// legacy scan, so the report (and the CI smoke diff) tracks the
	// placement-index speedup alongside campaign throughput.
	if cfg.Progress != nil {
		cfg.Progress("measuring placement rate (indexed vs scan)")
	}
	rep.Placement = MeasurePlacement(cfg.Nodes, 50_000)

	if cfg.MutexProbe {
		if cfg.Progress != nil {
			cfg.Progress("running concurrent contention probe")
		}
		rep.Contention = RunMutexProbe(0, 200_000)
	}
	return rep, nil
}

func dirBytes(dir string) int64 {
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, en := range entries {
		if info, err := os.Lstat(filepath.Join(dir, en.Name())); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}
