package scalebench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obsv"
)

// small returns a configuration sized for the ordinary test suite:
// the full pipeline (build, drain, interval captures, delta chain,
// persisted store, Latest verification) in well under a second.
func small(t *testing.T) Config {
	cfg := Default()
	cfg.Tasks = 2000
	cfg.Nodes = 20
	cfg.Width = 100
	cfg.Interval = 2 * time.Minute
	cfg.Dir = t.TempDir()
	cfg.MutexProbe = false
	return cfg
}

func TestRunSmall(t *testing.T) {
	rep, err := Run(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Run.TasksCompleted != 2000 {
		t.Fatalf("completed %d, want 2000", rep.Run.TasksCompleted)
	}
	if rep.Checkpoint.Captures == 0 {
		t.Fatal("no interval captures fired")
	}
	if rep.Checkpoint.Bases == 0 || rep.Checkpoint.Deltas == 0 {
		t.Fatalf("delta mode persisted %d bases + %d deltas; want both ≥ 1",
			rep.Checkpoint.Bases, rep.Checkpoint.Deltas)
	}
	if rep.Restore == nil || !rep.Restore.OK {
		t.Fatalf("restore verification failed: %+v", rep.Restore)
	}
	if rep.Checkpoint.FullOverDeltaP50 <= 1 {
		t.Fatalf("delta capture not cheaper than full: ratio %.2f",
			rep.Checkpoint.FullOverDeltaP50)
	}
	if rep.Run.SimMakespanSec <= 0 || rep.Run.TasksPerSec <= 0 {
		t.Fatalf("degenerate run report: %+v", rep.Run)
	}
}

// TestRunMetricsSection covers the observability wiring: given a
// registry, the run samples engine metrics on the virtual clock and the
// report gains a metrics section with non-empty, monotone-stamped series.
func TestRunMetricsSection(t *testing.T) {
	cfg := small(t)
	cfg.Metrics = obsv.NewRegistry()
	cfg.SampleEvery = time.Minute
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics == nil || len(rep.Metrics.Series) == 0 {
		t.Fatal("metrics registry set but report has no metrics section")
	}
	if rep.Metrics.SampleEverySec != 60 {
		t.Fatalf("sample_every_seconds = %v, want 60", rep.Metrics.SampleEverySec)
	}
	var completed *MetricsSeries
	for i := range rep.Metrics.Series {
		s := &rep.Metrics.Series[i]
		if len(s.AtSec) != len(s.Values) || len(s.AtSec) == 0 {
			t.Fatalf("series %s: %d instants vs %d values", s.Name, len(s.AtSec), len(s.Values))
		}
		for j := 1; j < len(s.AtSec); j++ {
			if s.AtSec[j] < s.AtSec[j-1] {
				t.Fatalf("series %s: sample instants not monotone", s.Name)
			}
		}
		if s.Name == "flowgo_tasks_completed_total" {
			completed = s
		}
	}
	if completed == nil {
		t.Fatal("no flowgo_tasks_completed_total series sampled")
	}
	if last := completed.Values[len(completed.Values)-1]; last != float64(cfg.Tasks) {
		t.Fatalf("closing completed sample = %v, want %d", last, cfg.Tasks)
	}
}

// TestRunFullMode covers the non-delta persistence path: every interval
// with dirty state saves a full snapshot, no delta files appear, and
// reconstruction still verifies.
func TestRunFullMode(t *testing.T) {
	cfg := small(t)
	cfg.Delta = false
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checkpoint.Deltas != 0 {
		t.Fatalf("full mode wrote %d delta files", rep.Checkpoint.Deltas)
	}
	if rep.Checkpoint.Bases == 0 {
		t.Fatal("full mode persisted nothing")
	}
	if rep.Restore == nil || !rep.Restore.OK {
		t.Fatalf("restore verification failed: %+v", rep.Restore)
	}
}

// smokeBaseline mirrors the fields the scale smoke diffs. It reads the
// committed testdata baseline, which is a full Report written by a past
// smoke run (regenerate with SCALE_SMOKE_UPDATE=1).
const smokeBaselinePath = "testdata/scale_smoke_baseline.json"

// TestScaleSmoke is the nightly-style scale gate: a 100k-task run with
// interval delta checkpointing, diffed against the committed baseline.
// It fails on a >20% scheduling-throughput regression or on any broken
// run invariant (shortfall, failed restore, delta not ≥10× cheaper than
// full capture). Opt in with SCALE_SMOKE=1 — it needs tens of seconds
// and steady hardware, so it is not part of the default suite.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the 100k-task scale smoke")
	}
	cfg := Default()
	cfg.Tasks = 100_000
	cfg.Nodes = 200
	cfg.Width = 1000
	// ~48 intervals over the ~4400s virtual makespan: enough captures for
	// stable quantiles, dirty fraction per capture well under 10%.
	cfg.Interval = 90 * time.Second
	cfg.Dir = t.TempDir()
	cfg.MutexProbe = false
	cfg.Progress = func(s string) { t.Log(s) }

	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The smoke's placement section is pinned to the 1000-node pool shape
	// (the scale ceiling the index removed), independent of the smaller
	// smoke campaign, so the nightly diff guards the number that matters.
	rep.Placement = MeasurePlacement(1000, 50_000)
	if rep.Run.TasksCompleted != cfg.Tasks {
		t.Fatalf("completed %d of %d", rep.Run.TasksCompleted, cfg.Tasks)
	}
	if rep.Restore == nil || !rep.Restore.OK {
		t.Fatalf("restore verification failed: %+v", rep.Restore)
	}
	if rep.Checkpoint.FullOverDeltaP50 < 10 {
		t.Fatalf("delta capture only %.1f× cheaper than full; want ≥10×",
			rep.Checkpoint.FullOverDeltaP50)
	}

	if os.Getenv("SCALE_SMOKE_UPDATE") != "" {
		if err := os.MkdirAll(filepath.Dir(smokeBaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(smokeBaselinePath); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %.0f tasks/s", rep.Run.TasksPerSec)
		return
	}

	data, err := os.ReadFile(smokeBaselinePath)
	if err != nil {
		t.Fatalf("no committed baseline (run with SCALE_SMOKE_UPDATE=1 to record): %v", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("baseline unreadable: %v", err)
	}
	if base.Config.Tasks != cfg.Tasks || base.Config.Nodes != cfg.Nodes {
		t.Fatalf("baseline shape %d tasks / %d nodes does not match smoke config %d / %d — re-record it",
			base.Config.Tasks, base.Config.Nodes, cfg.Tasks, cfg.Nodes)
	}
	floor := 0.8 * base.Run.TasksPerSec
	if rep.Run.TasksPerSec < floor {
		t.Fatalf("scheduling throughput regressed >20%%: %.0f tasks/s vs baseline %.0f (floor %.0f)",
			rep.Run.TasksPerSec, base.Run.TasksPerSec, floor)
	}
	if base.Placement != nil {
		if rep.Placement == nil {
			t.Fatal("baseline has a placement section but this run measured none")
		}
		pfloor := 0.8 * base.Placement.IndexedPerSec
		if rep.Placement.IndexedPerSec < pfloor {
			t.Fatalf("indexed placement rate regressed >20%%: %.0f/s vs baseline %.0f/s (floor %.0f)",
				rep.Placement.IndexedPerSec, base.Placement.IndexedPerSec, pfloor)
		}
		t.Logf("placement %.0f/s indexed vs %.0f/s scan (%.1f×; baseline %.0f/s, floor %.0f)",
			rep.Placement.IndexedPerSec, rep.Placement.ScanPerSec, rep.Placement.IndexedOverScan,
			base.Placement.IndexedPerSec, pfloor)
	}
	if base.Latency != nil {
		// p99 queue wait is measured on the virtual clock, so it tracks
		// scheduling decisions, not host speed: a regression here means the
		// engine started leaving runnable work queued longer.
		if rep.Latency == nil {
			t.Fatal("baseline has a latency section but this run reports none")
		}
		ceil := 1.2 * base.Latency.QueueWait.P99
		if rep.Latency.QueueWait.P99 > ceil {
			t.Fatalf("p99 queue wait regressed >20%%: %.1fms vs baseline %.1fms (ceiling %.1fms)",
				rep.Latency.QueueWait.P99, base.Latency.QueueWait.P99, ceil)
		}
		t.Logf("queue wait p50 %.1fms p99 %.1fms (baseline p99 %.1fms, ceiling %.1fms)",
			rep.Latency.QueueWait.P50, rep.Latency.QueueWait.P99,
			base.Latency.QueueWait.P99, ceil)
	}
	t.Logf("throughput %.0f tasks/s (baseline %.0f, floor %.0f); delta %.0f× cheaper; restore %.0fms",
		rep.Run.TasksPerSec, base.Run.TasksPerSec, floor,
		rep.Checkpoint.FullOverDeltaP50, rep.Restore.LatestMS)
}

// TestMutexProbe keeps the contention probe compiled and honest: the op
// mix must run to completion and report non-negative wait.
func TestMutexProbe(t *testing.T) {
	rep := RunMutexProbe(4, 2000)
	if rep.Goroutines != 4 || rep.Ops != 8000 {
		t.Fatalf("probe shape: %+v", rep)
	}
	if rep.WaitSeconds < 0 || rep.WaitPerOpNS < 0 {
		t.Fatalf("negative wait: %+v", rep)
	}
}
