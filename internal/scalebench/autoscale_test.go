package scalebench

import (
	"os"
	"testing"
	"time"
)

// TestRunAutoscaleSmall keeps the comparison harness honest at suite
// speed: both arms must drain the whole trace on both shapes, report
// positive priced cost, and balance their node-add/remove books.
func TestRunAutoscaleSmall(t *testing.T) {
	rep, err := RunAutoscale(AutoscaleConfig{Tasks: 400, Seed: 1, Every: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shapes) != 2 {
		t.Fatalf("got %d shapes, want 2", len(rep.Shapes))
	}
	for _, sh := range rep.Shapes {
		for name, arm := range map[string]AutoscaleArm{"legacy": sh.Legacy, "cost_aware": sh.CostAware} {
			if arm.TasksCompleted != sh.Tasks {
				t.Fatalf("%s/%s completed %d of %d", sh.Shape, name, arm.TasksCompleted, sh.Tasks)
			}
			if arm.CostUnits <= 0 || arm.CostPer1kTasks <= 0 {
				t.Fatalf("%s/%s degenerate cost: %+v", sh.Shape, name, arm)
			}
			if arm.NodesRemoved > arm.NodesAdded {
				t.Fatalf("%s/%s removed %d nodes but added only %d", sh.Shape, name, arm.NodesRemoved, arm.NodesAdded)
			}
		}
		if sh.LegacyOverCostAware <= 0 {
			t.Fatalf("%s: no cost ratio computed: %+v", sh.Shape, sh)
		}
	}
}

// TestRunAutoscaleDeterministic: the comparison is a virtual-clock
// replay of a seeded trace, so two runs of the same config must price
// out identically — the property that makes the committed numbers and
// the nightly gate meaningful.
func TestRunAutoscaleDeterministic(t *testing.T) {
	cfg := AutoscaleConfig{Tasks: 300, Seed: 7, Every: 10 * time.Second}
	a, err := RunAutoscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAutoscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Shapes {
		if a.Shapes[i] != b.Shapes[i] {
			t.Fatalf("shape %s not deterministic:\n  %+v\n  %+v", a.Shapes[i].Shape, a.Shapes[i], b.Shapes[i])
		}
	}
}

// TestAutoscaleSmoke is the nightly cost gate at the committed
// BENCH_scale.json scale: on both the bursty and the diurnal shape the
// cost-aware analyzer must run the trace no more expensively per task
// than the legacy single-tier baseline. Opt in with SCALE_SMOKE=1,
// alongside the throughput smoke.
func TestAutoscaleSmoke(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the autoscale cost gate")
	}
	rep, err := RunAutoscale(AutoscaleConfig{Tasks: 250, Seed: 1, Progress: func(s string) { t.Log(s) }})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range rep.Shapes {
		if sh.CostAware.TasksCompleted != sh.Tasks || sh.Legacy.TasksCompleted != sh.Tasks {
			t.Fatalf("%s: shortfall (legacy %d, cost-aware %d, want %d)",
				sh.Shape, sh.Legacy.TasksCompleted, sh.CostAware.TasksCompleted, sh.Tasks)
		}
		if sh.CostAware.CostPer1kTasks > sh.Legacy.CostPer1kTasks {
			t.Fatalf("%s: cost-aware costs more per task than legacy: %.2f vs %.2f per 1k",
				sh.Shape, sh.CostAware.CostPer1kTasks, sh.Legacy.CostPer1kTasks)
		}
		t.Logf("%s: legacy %.2f vs cost-aware %.2f per 1k tasks (%.2fx)",
			sh.Shape, sh.Legacy.CostPer1kTasks, sh.CostAware.CostPer1kTasks, sh.LegacyOverCostAware)
	}
}
