package transfer

import (
	"testing"
	"time"

	"repro/internal/deps"
	"repro/internal/simnet"
)

func key(d, v int) Key { return Key{Data: deps.DataID(d), Ver: v} }

func TestRegistryReplicas(t *testing.T) {
	r := NewRegistry()
	k := key(1, 1)
	r.AddReplica(k, "n2")
	r.AddReplica(k, "n1")
	r.AddReplica(k, "n1") // duplicate
	got := r.Where(k)
	if len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("Where = %v, want [n1 n2]", got)
	}
	if !r.HasReplica(k, "n1") || r.HasReplica(k, "n3") {
		t.Fatal("HasReplica wrong")
	}
	r.RemoveReplica(k, "n1")
	if r.HasReplica(k, "n1") {
		t.Fatal("replica not removed")
	}
}

func TestLocalAndMissingBytes(t *testing.T) {
	r := NewRegistry()
	k1, k2, k3 := key(1, 1), key(2, 1), key(3, 1)
	r.SetSize(k1, 100)
	r.SetSize(k2, 200)
	r.SetSize(k3, 400)
	r.AddReplica(k1, "n1")
	r.AddReplica(k2, "n1")
	r.AddReplica(k3, "n2")
	keys := []Key{k1, k2, k3}
	if got := r.LocalBytes("n1", keys); got != 300 {
		t.Fatalf("LocalBytes(n1) = %d, want 300", got)
	}
	if got := r.MissingBytes("n1", keys); got != 400 {
		t.Fatalf("MissingBytes(n1) = %d, want 400", got)
	}
}

func TestDropNodeReportsLostData(t *testing.T) {
	r := NewRegistry()
	k1, k2 := key(1, 1), key(2, 1)
	r.AddReplica(k1, "dying") // sole replica -> lost
	r.AddReplica(k2, "dying")
	r.AddReplica(k2, "safe") // replicated -> survives
	lost := r.DropNode("dying")
	if len(lost) != 1 || lost[0] != k1 {
		t.Fatalf("lost = %v, want [%v]", lost, k1)
	}
	if len(r.Where(k2)) != 1 {
		t.Fatal("replicated key should survive node loss")
	}
	if len(r.Where(k1)) != 0 {
		t.Fatal("lost key should have no locations")
	}
}

func newManager() (*Manager, *Registry) {
	net := simnet.New(simnet.Link{BandwidthMBps: 100, Latency: 0})
	reg := NewRegistry()
	return NewManager(net, reg), reg
}

func TestPlanFetchSkipsLocalReplicas(t *testing.T) {
	m, reg := newManager()
	k := key(1, 1)
	reg.SetSize(k, 1e6)
	reg.AddReplica(k, "dest")
	p := m.PlanFetch("dest", []Key{k})
	if p.Bytes != 0 || p.Time != 0 || len(p.Moves) != 0 {
		t.Fatalf("local fetch planned moves: %+v", p)
	}
}

func TestPlanFetchChoosesFastestSource(t *testing.T) {
	net := simnet.New(simnet.Link{BandwidthMBps: 1, Latency: 0})
	net.SetLink("fast", "dest", simnet.Link{BandwidthMBps: 1000})
	reg := NewRegistry()
	m := NewManager(net, reg)
	k := key(1, 1)
	reg.SetSize(k, 1e6)
	reg.AddReplica(k, "slow")
	reg.AddReplica(k, "fast")
	p := m.PlanFetch("dest", []Key{k})
	if len(p.Moves) != 1 || p.Moves[0].From != "fast" {
		t.Fatalf("moves = %+v, want fetch from fast", p.Moves)
	}
	if p.Bytes != 1e6 {
		t.Fatalf("bytes = %d", p.Bytes)
	}
	// 1 MB at 1000 MB/s = 1 ms.
	if p.Time != time.Millisecond {
		t.Fatalf("time = %v, want 1ms", p.Time)
	}
}

func TestPlanFetchAccumulates(t *testing.T) {
	m, reg := newManager()
	k1, k2 := key(1, 1), key(2, 1)
	reg.SetSize(k1, 100e6) // 1 s at 100 MB/s
	reg.SetSize(k2, 200e6) // 2 s
	reg.AddReplica(k1, "src")
	reg.AddReplica(k2, "src")
	p := m.PlanFetch("dest", []Key{k1, k2})
	if p.Time != 3*time.Second {
		t.Fatalf("serialized transfer time = %v, want 3s", p.Time)
	}
	if p.Bytes != 300e6 {
		t.Fatalf("bytes = %d, want 3e8", p.Bytes)
	}
}

func TestPlanFetchReportsMissing(t *testing.T) {
	m, _ := newManager()
	k := key(9, 1)
	p := m.PlanFetch("dest", []Key{k})
	if len(p.MissingKeys) != 1 || p.MissingKeys[0] != k {
		t.Fatalf("missing = %v, want [%v]", p.MissingKeys, k)
	}
}

func TestPlanFetchClassifiesUnreachable(t *testing.T) {
	m, reg := newManager()
	k := key(9, 1)
	reg.SetSize(k, 10)
	reg.AddReplica(k, "src")
	m.net.Cut("src", "dest")
	p := m.PlanFetch("dest", []Key{k})
	if len(p.MissingKeys) != 0 {
		t.Fatalf("missing = %v, want none (replica exists, just cut off)", p.MissingKeys)
	}
	if len(p.UnreachableKeys) != 1 || p.UnreachableKeys[0] != k {
		t.Fatalf("unreachable = %v, want [%v]", p.UnreachableKeys, k)
	}
	m.net.Heal("src", "dest")
	if p := m.PlanFetch("dest", []Key{k}); len(p.Moves) != 1 {
		t.Fatalf("after heal: moves = %v, want one fetch", p.Moves)
	}
}

func TestApplyRecordsNewReplicas(t *testing.T) {
	m, reg := newManager()
	k := key(1, 1)
	reg.SetSize(k, 10)
	reg.AddReplica(k, "src")
	p := m.PlanFetch("dest", []Key{k})
	m.Apply(p)
	if !reg.HasReplica(k, "dest") {
		t.Fatal("Apply did not record replica at dest")
	}
	// Second fetch is now free.
	p2 := m.PlanFetch("dest", []Key{k})
	if p2.Bytes != 0 {
		t.Fatal("second fetch should be local")
	}
}

func TestVersionsAreDistinctKeys(t *testing.T) {
	r := NewRegistry()
	r.AddReplica(key(1, 1), "n1")
	if r.HasReplica(key(1, 2), "n1") {
		t.Fatal("different versions must not alias")
	}
}

func TestKeyOf(t *testing.T) {
	v := deps.Version{Data: 7, Ver: 3}
	if KeyOf(v) != (Key{Data: 7, Ver: 3}) {
		t.Fatal("KeyOf mismatch")
	}
}
