// Package transfer tracks where each data version lives and plans the
// transfers needed to run a task on a given node. It gives the runtime the
// paper's "view that a single shared memory space is available … taking
// care of all the necessary data-transfers between the nodes" (Sec. II-A),
// and it is the information source for locality-aware scheduling (E4).
//
// The registry is hash-sharded: keys are distributed over fixed stripes,
// each with its own lock, so concurrent placements (PlanFetch), completions
// (AddReplica) and locality scoring (LocalBytes) on different data contend
// on different stripes instead of one global RWMutex — the registry was one
// of the three global locks profiled at million-task scale. Each stripe
// additionally tracks the keys whose entry changed since the last
// checkpoint capture, which is what makes delta snapshots O(changes):
// TakeDirty drains exactly the changed catalog rows.
package transfer

import (
	"sort"
	"sync"
	"time"

	"repro/internal/deps"
	"repro/internal/simnet"
)

// Key identifies one immutable data version.
type Key struct {
	Data deps.DataID
	Ver  int
}

// KeyOf converts a deps.Version into a Key.
func KeyOf(v deps.Version) Key { return Key{Data: v.Data, Ver: v.Ver} }

// keyLess orders keys by (Data, Ver) — the canonical catalog order.
func keyLess(a, b Key) bool {
	if a.Data != b.Data {
		return a.Data < b.Data
	}
	return a.Ver < b.Ver
}

// regShards is the stripe count. A small power of two keeps the modulo a
// mask while spreading a 1k-node pool's concurrent completions thin.
const regShards = 32

// regShard is one stripe of the registry: its own lock, its slice of the
// location and size maps, and the dirty set feeding delta checkpoints.
type regShard struct {
	mu    sync.RWMutex
	loc   map[Key]map[string]struct{}
	size  map[Key]int64
	dirty map[Key]struct{}
}

// Registry records replica locations and sizes for data versions. It is
// safe for concurrent use; state is hash-sharded by key.
type Registry struct {
	shards [regShards]regShard
}

// NewRegistry returns an empty location registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		s := &r.shards[i]
		s.loc = make(map[Key]map[string]struct{})
		s.size = make(map[Key]int64)
		s.dirty = make(map[Key]struct{})
	}
	return r
}

// shard returns the stripe holding k.
func (r *Registry) shard(k Key) *regShard {
	h := uint64(k.Data)*0x9E3779B97F4A7C15 + uint64(uint32(k.Ver))*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &r.shards[h%regShards]
}

// SetSize records the size in bytes of a data version.
func (r *Registry) SetSize(k Key, bytes int64) {
	s := r.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.size[k] = bytes
	s.dirty[k] = struct{}{}
}

// Size returns the recorded size of a data version (0 if unknown).
func (r *Registry) Size(k Key) int64 {
	s := r.shard(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size[k]
}

// AddReplica records that node holds a copy of k.
func (r *Registry) AddReplica(k Key, node string) {
	s := r.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	set, ok := s.loc[k]
	if !ok {
		set = make(map[string]struct{})
		s.loc[k] = set
	}
	set[node] = struct{}{}
	s.dirty[k] = struct{}{}
}

// RemoveReplica forgets node's copy of k.
func (r *Registry) RemoveReplica(k Key, node string) {
	s := r.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if set, ok := s.loc[k]; ok {
		if _, held := set[node]; held {
			delete(set, node)
			if len(set) == 0 {
				delete(s.loc, k)
			}
			s.dirty[k] = struct{}{}
		}
	}
}

// DropNode forgets every replica held by node (node failure). It returns
// the keys that lost their last replica — the data that must be recovered
// by re-execution (E7).
func (r *Registry) DropNode(node string) []Key {
	var lost []Key
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for k, set := range s.loc {
			if _, ok := set[node]; !ok {
				continue
			}
			delete(set, node)
			s.dirty[k] = struct{}{}
			if len(set) == 0 {
				delete(s.loc, k)
				lost = append(lost, k)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(lost, func(i, j int) bool { return keyLess(lost[i], lost[j]) })
	return lost
}

// Where returns the nodes holding a replica of k, sorted.
func (r *Registry) Where(k Key) []string {
	s := r.shard(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, ok := s.loc[k]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasReplica reports whether node holds a copy of k.
func (r *Registry) HasReplica(k Key, node string) bool {
	s := r.shard(k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.loc[k][node]
	return ok
}

// LocalBytes sums the sizes of the given keys already present on node.
// It is the locality score schedulers maximise (paper Sec. VI-A-1: the
// getLocations method "will enable the runtime to exploit the locality of
// the data by scheduling tasks in the location where the data resides").
func (r *Registry) LocalBytes(node string, keys []Key) int64 {
	var total int64
	for _, k := range keys {
		s := r.shard(k)
		s.mu.RLock()
		if _, ok := s.loc[k][node]; ok {
			total += s.size[k]
		}
		s.mu.RUnlock()
	}
	return total
}

// MissingBytes sums the sizes of the given keys NOT present on node.
func (r *Registry) MissingBytes(node string, keys []Key) int64 {
	var total int64
	for _, k := range keys {
		s := r.shard(k)
		s.mu.RLock()
		if _, ok := s.loc[k][node]; !ok {
			total += s.size[k]
		}
		s.mu.RUnlock()
	}
	return total
}

// Entry is one catalog row of the registry: a data version, its recorded
// size and its replica locations.
type Entry struct {
	Key       Key
	Size      int64
	Locations []string
}

// entryLocked builds the catalog row for k from a stripe the caller holds.
func (s *regShard) entryLocked(k Key) Entry {
	e := Entry{Key: k, Size: s.size[k]}
	if set, ok := s.loc[k]; ok {
		e.Locations = make([]string, 0, len(set))
		for n := range set {
			e.Locations = append(e.Locations, n)
		}
		sort.Strings(e.Locations)
	}
	return e
}

// Entries dumps the whole catalog, sorted by key — the data half of a
// checkpoint snapshot (internal/engine/checkpoint). Keys that have a
// recorded size but no replica yet (declared ahead of production) are
// included with empty locations.
func (r *Registry) Entries() []Entry {
	return r.entries(false)
}

// EntriesClean is Entries plus a per-stripe dirty reset — the full-catalog
// capture that starts a fresh delta chain (a base snapshot subsumes every
// pending change, so the dirty sets restart empty).
func (r *Registry) EntriesClean() []Entry {
	return r.entries(true)
}

func (r *Registry) entries(clean bool) []Entry {
	var out []Entry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		seen := make(map[Key]struct{}, len(s.loc)+len(s.size))
		add := func(k Key) {
			if _, dup := seen[k]; dup {
				return
			}
			seen[k] = struct{}{}
			out = append(out, s.entryLocked(k))
		}
		for k := range s.loc {
			add(k)
		}
		for k := range s.size {
			add(k)
		}
		if clean {
			s.dirty = make(map[Key]struct{})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// DirtyCount returns how many catalog rows changed since the last
// TakeDirty / EntriesClean.
func (r *Registry) DirtyCount() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.dirty)
		s.mu.RUnlock()
	}
	return n
}

// TakeDirty drains the changed catalog rows since the last capture,
// sorted by key, clearing each stripe's dirty set atomically with the
// read — a mutation racing the capture lands either in this delta or in
// the next one, never nowhere. Keys whose entry vanished entirely (no
// replica, no size) are still reported, with empty locations and size 0,
// so a delta can overwrite the stale base row.
func (r *Registry) TakeDirty() []Entry {
	var out []Entry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if len(s.dirty) > 0 {
			for k := range s.dirty {
				out = append(out, s.entryLocked(k))
			}
			s.dirty = make(map[Key]struct{})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// Plan describes the transfers needed to materialise a set of keys on one
// node.
type Plan struct {
	// Time is the serialised transfer time (transfers share the node's
	// ingress link, so they are summed).
	Time time.Duration
	// Bytes is the total payload moved.
	Bytes int64
	// Moves lists each fetch.
	Moves []Move
	// MissingKeys lists keys with no replica anywhere (caller decides
	// whether that is fatal or means "recompute").
	MissingKeys []Key
	// UnreachableKeys lists keys that do have replicas, but every one
	// sits behind a cut link (network partition): nothing is lost, yet
	// nothing can be fetched until the partition heals. The engine's
	// availability policies (engine.Availability) treat the two cases
	// differently — lost data is recomputed through lineage, partitioned
	// data can simply be waited out.
	UnreachableKeys []Key
}

// Move is one planned fetch.
type Move struct {
	Key  Key
	From string
	To   string
	Size int64
}

// Manager plans transfers over a network model.
type Manager struct {
	net *simnet.Network
	reg *Registry
}

// NewManager returns a manager over the given network and registry.
func NewManager(net *simnet.Network, reg *Registry) *Manager {
	return &Manager{net: net, reg: reg}
}

// Registry exposes the location registry.
func (m *Manager) Registry() *Registry { return m.reg }

// PlanFetch computes the transfers needed so dest holds every key, choosing
// the fastest source for each (replicas already local cost nothing). Keys
// that cannot be materialised are classified rather than planned: no
// replica anywhere → MissingKeys (lost; only re-execution can bring the
// data back), replicas present but every one behind a cut link →
// UnreachableKeys (partitioned; a heal makes them plannable again).
func (m *Manager) PlanFetch(dest string, keys []Key) Plan {
	var p Plan
	for _, k := range keys {
		if m.reg.HasReplica(k, dest) {
			continue
		}
		sources := m.reg.Where(k)
		if len(sources) == 0 {
			p.MissingKeys = append(p.MissingKeys, k)
			continue
		}
		size := m.reg.Size(k)
		src, t, ok := m.net.BestSource(dest, sources, size)
		if !ok {
			p.UnreachableKeys = append(p.UnreachableKeys, k)
			continue
		}
		p.Time += t
		p.Bytes += size
		p.Moves = append(p.Moves, Move{Key: k, From: src, To: dest, Size: size})
	}
	return p
}

// Apply records the copies of a plan in the registry (the fetches
// happened: dest now replicates each moved key).
func (m *Manager) Apply(p Plan) {
	for _, mv := range p.Moves {
		m.reg.AddReplica(mv.Key, mv.To)
	}
}
