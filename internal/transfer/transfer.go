// Package transfer tracks where each data version lives and plans the
// transfers needed to run a task on a given node. It gives the runtime the
// paper's "view that a single shared memory space is available … taking
// care of all the necessary data-transfers between the nodes" (Sec. II-A),
// and it is the information source for locality-aware scheduling (E4).
package transfer

import (
	"sort"
	"sync"
	"time"

	"repro/internal/deps"
	"repro/internal/simnet"
)

// Key identifies one immutable data version.
type Key struct {
	Data deps.DataID
	Ver  int
}

// KeyOf converts a deps.Version into a Key.
func KeyOf(v deps.Version) Key { return Key{Data: v.Data, Ver: v.Ver} }

// Registry records replica locations and sizes for data versions. It is
// safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	loc  map[Key]map[string]struct{}
	size map[Key]int64
}

// NewRegistry returns an empty location registry.
func NewRegistry() *Registry {
	return &Registry{
		loc:  make(map[Key]map[string]struct{}),
		size: make(map[Key]int64),
	}
}

// SetSize records the size in bytes of a data version.
func (r *Registry) SetSize(k Key, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.size[k] = bytes
}

// Size returns the recorded size of a data version (0 if unknown).
func (r *Registry) Size(k Key) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.size[k]
}

// AddReplica records that node holds a copy of k.
func (r *Registry) AddReplica(k Key, node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	set, ok := r.loc[k]
	if !ok {
		set = make(map[string]struct{})
		r.loc[k] = set
	}
	set[node] = struct{}{}
}

// RemoveReplica forgets node's copy of k.
func (r *Registry) RemoveReplica(k Key, node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if set, ok := r.loc[k]; ok {
		delete(set, node)
		if len(set) == 0 {
			delete(r.loc, k)
		}
	}
}

// DropNode forgets every replica held by node (node failure). It returns
// the keys that lost their last replica — the data that must be recovered
// by re-execution (E7).
func (r *Registry) DropNode(node string) []Key {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lost []Key
	for k, set := range r.loc {
		if _, ok := set[node]; !ok {
			continue
		}
		delete(set, node)
		if len(set) == 0 {
			delete(r.loc, k)
			lost = append(lost, k)
		}
	}
	sort.Slice(lost, func(i, j int) bool {
		if lost[i].Data != lost[j].Data {
			return lost[i].Data < lost[j].Data
		}
		return lost[i].Ver < lost[j].Ver
	})
	return lost
}

// Where returns the nodes holding a replica of k, sorted.
func (r *Registry) Where(k Key) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	set, ok := r.loc[k]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasReplica reports whether node holds a copy of k.
func (r *Registry) HasReplica(k Key, node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.loc[k][node]
	return ok
}

// LocalBytes sums the sizes of the given keys already present on node.
// It is the locality score schedulers maximise (paper Sec. VI-A-1: the
// getLocations method "will enable the runtime to exploit the locality of
// the data by scheduling tasks in the location where the data resides").
func (r *Registry) LocalBytes(node string, keys []Key) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, k := range keys {
		if _, ok := r.loc[k][node]; ok {
			total += r.size[k]
		}
	}
	return total
}

// MissingBytes sums the sizes of the given keys NOT present on node.
func (r *Registry) MissingBytes(node string, keys []Key) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, k := range keys {
		if _, ok := r.loc[k][node]; !ok {
			total += r.size[k]
		}
	}
	return total
}

// Entry is one catalog row of the registry: a data version, its recorded
// size and its replica locations.
type Entry struct {
	Key       Key
	Size      int64
	Locations []string
}

// Entries dumps the whole catalog, sorted by key — the data half of a
// checkpoint snapshot (internal/engine/checkpoint). Keys that have a
// recorded size but no replica yet (declared ahead of production) are
// included with empty locations.
func (r *Registry) Entries() []Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[Key]struct{}, len(r.loc)+len(r.size))
	out := make([]Entry, 0, len(r.loc)+len(r.size))
	add := func(k Key) {
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		e := Entry{Key: k, Size: r.size[k]}
		if set, ok := r.loc[k]; ok {
			e.Locations = make([]string, 0, len(set))
			for n := range set {
				e.Locations = append(e.Locations, n)
			}
			sort.Strings(e.Locations)
		}
		out = append(out, e)
	}
	for k := range r.loc {
		add(k)
	}
	for k := range r.size {
		add(k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Data != out[j].Key.Data {
			return out[i].Key.Data < out[j].Key.Data
		}
		return out[i].Key.Ver < out[j].Key.Ver
	})
	return out
}

// Plan describes the transfers needed to materialise a set of keys on one
// node.
type Plan struct {
	// Time is the serialised transfer time (transfers share the node's
	// ingress link, so they are summed).
	Time time.Duration
	// Bytes is the total payload moved.
	Bytes int64
	// Moves lists each fetch.
	Moves []Move
	// MissingKeys lists keys with no replica anywhere (caller decides
	// whether that is fatal or means "recompute").
	MissingKeys []Key
	// UnreachableKeys lists keys that do have replicas, but every one
	// sits behind a cut link (network partition): nothing is lost, yet
	// nothing can be fetched until the partition heals. The engine's
	// availability policies (engine.Availability) treat the two cases
	// differently — lost data is recomputed through lineage, partitioned
	// data can simply be waited out.
	UnreachableKeys []Key
}

// Move is one planned fetch.
type Move struct {
	Key  Key
	From string
	To   string
	Size int64
}

// Manager plans transfers over a network model.
type Manager struct {
	net *simnet.Network
	reg *Registry
}

// NewManager returns a manager over the given network and registry.
func NewManager(net *simnet.Network, reg *Registry) *Manager {
	return &Manager{net: net, reg: reg}
}

// Registry exposes the location registry.
func (m *Manager) Registry() *Registry { return m.reg }

// PlanFetch computes the transfers needed so dest holds every key, choosing
// the fastest source for each (replicas already local cost nothing). Keys
// that cannot be materialised are classified rather than planned: no
// replica anywhere → MissingKeys (lost; only re-execution can bring the
// data back), replicas present but every one behind a cut link →
// UnreachableKeys (partitioned; a heal makes them plannable again).
func (m *Manager) PlanFetch(dest string, keys []Key) Plan {
	var p Plan
	for _, k := range keys {
		if m.reg.HasReplica(k, dest) {
			continue
		}
		sources := m.reg.Where(k)
		if len(sources) == 0 {
			p.MissingKeys = append(p.MissingKeys, k)
			continue
		}
		size := m.reg.Size(k)
		src, t, ok := m.net.BestSource(dest, sources, size)
		if !ok {
			p.UnreachableKeys = append(p.UnreachableKeys, k)
			continue
		}
		p.Time += t
		p.Bytes += size
		p.Moves = append(p.Moves, Move{Key: k, From: src, To: dest, Size: size})
	}
	return p
}

// Apply records the copies of a plan in the registry (the fetches
// happened: dest now replicates each moved key).
func (m *Manager) Apply(p Plan) {
	for _, mv := range p.Moves {
		m.reg.AddReplica(mv.Key, mv.To)
	}
}
