// Package mpisim is a message-passing substrate in the style of MPI,
// sufficient to implement the paper's multi-node parallel tasks ("Parallel
// task, programmed with a distributed memory paradigm (MPI) that runs on
// multiple nodes", Sec. VI-A — the NMMB-Monarch simulation stage is an MPI
// Fortran application).
//
// Ranks are goroutines; point-to-point channels provide ordered, typed
// message delivery. Collectives (barrier, broadcast, reduce, allreduce,
// scatter, gather) are built on point-to-point sends, like a real MPI
// implementation's naive algorithms.
package mpisim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInvalidRank is returned for out-of-range rank arguments.
var ErrInvalidRank = errors.New("mpisim: invalid rank")

// message is one point-to-point payload.
type message struct {
	value any
}

// Comm is a communicator connecting size ranks. Channels are buffered so a
// send to a rank that has not posted its receive yet does not deadlock
// (eager protocol, like small-message MPI).
type Comm struct {
	size  int
	chans [][]chan message // chans[src][dst]
}

// NewComm creates a communicator for size ranks.
func NewComm(size int) (*Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpisim: communicator size %d", size)
	}
	chans := make([][]chan message, size)
	for i := range chans {
		chans[i] = make([]chan message, size)
		for j := range chans[i] {
			chans[i][j] = make(chan message, 64)
		}
	}
	return &Comm{size: size, chans: chans}, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Rank is one process's endpoint into the communicator.
type Rank struct {
	comm *Comm
	id   int
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// Send delivers v to rank dst (blocking only if the channel buffer is
// full).
func (r *Rank) Send(dst int, v any) error {
	if dst < 0 || dst >= r.comm.size {
		return fmt.Errorf("%w: send to %d of %d", ErrInvalidRank, dst, r.comm.size)
	}
	r.comm.chans[r.id][dst] <- message{value: v}
	return nil
}

// Recv blocks until a message from rank src arrives and returns its value.
func (r *Rank) Recv(src int) (any, error) {
	if src < 0 || src >= r.comm.size {
		return nil, fmt.Errorf("%w: recv from %d of %d", ErrInvalidRank, src, r.comm.size)
	}
	m := <-r.comm.chans[src][r.id]
	return m.value, nil
}

// SendRecv exchanges values with a partner rank (deadlock-free thanks to
// buffered channels).
func (r *Rank) SendRecv(partner int, v any) (any, error) {
	if err := r.Send(partner, v); err != nil {
		return nil, err
	}
	return r.Recv(partner)
}

// Barrier blocks until every rank reaches it (dissemination via rank 0).
func (r *Rank) Barrier() error {
	// All ranks signal 0; rank 0 then releases everyone.
	if r.id == 0 {
		for src := 1; src < r.comm.size; src++ {
			if _, err := r.Recv(src); err != nil {
				return err
			}
		}
		for dst := 1; dst < r.comm.size; dst++ {
			if err := r.Send(dst, struct{}{}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := r.Send(0, struct{}{}); err != nil {
		return err
	}
	_, err := r.Recv(0)
	return err
}

// Bcast distributes root's value to every rank and returns it.
func (r *Rank) Bcast(root int, v any) (any, error) {
	if root < 0 || root >= r.comm.size {
		return nil, fmt.Errorf("%w: bcast root %d", ErrInvalidRank, root)
	}
	if r.id == root {
		for dst := 0; dst < r.comm.size; dst++ {
			if dst == root {
				continue
			}
			if err := r.Send(dst, v); err != nil {
				return nil, err
			}
		}
		return v, nil
	}
	return r.Recv(root)
}

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Built-in reduction operators.
var (
	// Sum adds.
	Sum Op = func(a, b float64) float64 { return a + b }
	// Max keeps the maximum.
	Max Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	// Min keeps the minimum.
	Min Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines every rank's value at root with op; non-root ranks get 0.
func (r *Rank) Reduce(root int, op Op, v float64) (float64, error) {
	if root < 0 || root >= r.comm.size {
		return 0, fmt.Errorf("%w: reduce root %d", ErrInvalidRank, root)
	}
	if r.id == root {
		acc := v
		for src := 0; src < r.comm.size; src++ {
			if src == root {
				continue
			}
			m, err := r.Recv(src)
			if err != nil {
				return 0, err
			}
			f, ok := m.(float64)
			if !ok {
				return 0, fmt.Errorf("mpisim: reduce received %T, want float64", m)
			}
			acc = op(acc, f)
		}
		return acc, nil
	}
	if err := r.Send(root, v); err != nil {
		return 0, err
	}
	return 0, nil
}

// AllReduce combines every rank's value with op and returns the result on
// every rank.
func (r *Rank) AllReduce(op Op, v float64) (float64, error) {
	acc, err := r.Reduce(0, op, v)
	if err != nil {
		return 0, err
	}
	out, err := r.Bcast(0, acc)
	if err != nil {
		return 0, err
	}
	f, ok := out.(float64)
	if !ok {
		return 0, fmt.Errorf("mpisim: allreduce received %T", out)
	}
	return f, nil
}

// Scatter splits root's slice into equal chunks, sending chunk i to rank i,
// and returns this rank's chunk. len(data) must be a multiple of Size on
// root; other ranks pass nil.
func (r *Rank) Scatter(root int, data []float64) ([]float64, error) {
	if r.id == root {
		if len(data)%r.comm.size != 0 {
			return nil, fmt.Errorf("mpisim: scatter of %d elements across %d ranks", len(data), r.comm.size)
		}
		chunk := len(data) / r.comm.size
		for dst := 0; dst < r.comm.size; dst++ {
			if dst == root {
				continue
			}
			part := make([]float64, chunk)
			copy(part, data[dst*chunk:(dst+1)*chunk])
			if err := r.Send(dst, part); err != nil {
				return nil, err
			}
		}
		own := make([]float64, chunk)
		copy(own, data[root*chunk:(root+1)*chunk])
		return own, nil
	}
	m, err := r.Recv(root)
	if err != nil {
		return nil, err
	}
	part, ok := m.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpisim: scatter received %T", m)
	}
	return part, nil
}

// Gather collects every rank's chunk at root in rank order; non-root ranks
// get nil.
func (r *Rank) Gather(root int, chunk []float64) ([]float64, error) {
	if r.id == root {
		parts := make([][]float64, r.comm.size)
		parts[root] = chunk
		for src := 0; src < r.comm.size; src++ {
			if src == root {
				continue
			}
			m, err := r.Recv(src)
			if err != nil {
				return nil, err
			}
			p, ok := m.([]float64)
			if !ok {
				return nil, fmt.Errorf("mpisim: gather received %T", m)
			}
			parts[src] = p
		}
		var out []float64
		for _, p := range parts {
			out = append(out, p...)
		}
		return out, nil
	}
	if err := r.Send(root, chunk); err != nil {
		return nil, err
	}
	return nil, nil
}

// AllGather collects every rank's chunk on every rank, in rank order.
func (r *Rank) AllGather(chunk []float64) ([]float64, error) {
	gathered, err := r.Gather(0, chunk)
	if err != nil {
		return nil, err
	}
	out, err := r.Bcast(0, gathered)
	if err != nil {
		return nil, err
	}
	all, ok := out.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpisim: allgather received %T", out)
	}
	return all, nil
}

// AllToAll exchanges personalised chunks: rank i sends chunks[j] to rank j
// and returns the chunks received, indexed by source rank. len(chunks)
// must equal Size.
func (r *Rank) AllToAll(chunks [][]float64) ([][]float64, error) {
	if len(chunks) != r.comm.size {
		return nil, fmt.Errorf("mpisim: alltoall with %d chunks for %d ranks", len(chunks), r.comm.size)
	}
	for dst := 0; dst < r.comm.size; dst++ {
		if dst == r.id {
			continue
		}
		cp := make([]float64, len(chunks[dst]))
		copy(cp, chunks[dst])
		if err := r.Send(dst, cp); err != nil {
			return nil, err
		}
	}
	out := make([][]float64, r.comm.size)
	out[r.id] = append([]float64(nil), chunks[r.id]...)
	for src := 0; src < r.comm.size; src++ {
		if src == r.id {
			continue
		}
		m, err := r.Recv(src)
		if err != nil {
			return nil, err
		}
		part, ok := m.([]float64)
		if !ok {
			return nil, fmt.Errorf("mpisim: alltoall received %T", m)
		}
		out[src] = part
	}
	return out, nil
}

// Run launches fn on size ranks and waits for all to finish. It returns
// the first error (by rank order) if any rank fails.
func Run(size int, fn func(r *Rank) error) error {
	comm, err := NewComm(size)
	if err != nil {
		return err
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(&Rank{comm: comm, id: i})
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
