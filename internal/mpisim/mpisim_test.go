package mpisim

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func TestPointToPoint(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 42)
		}
		v, err := r.Recv(0)
		if err != nil {
			return err
		}
		if v != 42 {
			t.Errorf("recv = %v, want 42", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		partner := 1 - r.ID()
		got, err := r.SendRecv(partner, r.ID())
		if err != nil {
			return err
		}
		if got != partner {
			t.Errorf("rank %d got %v, want %d", r.ID(), got, partner)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		if err := r.Send(5, 1); !errors.Is(err, ErrInvalidRank) {
			return errors.New("send to invalid rank accepted")
		}
		if _, err := r.Recv(-1); !errors.Is(err, ErrInvalidRank) {
			return errors.New("recv from invalid rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	var before, after int32
	err := Run(8, func(r *Rank) error {
		atomic.AddInt32(&before, 1)
		if err := r.Barrier(); err != nil {
			return err
		}
		// Everyone must have passed "before" by now.
		if atomic.LoadInt32(&before) != 8 {
			return errors.New("barrier released early")
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != 8 {
		t.Fatalf("after = %d, want 8", after)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(r *Rank) error {
		var v any = nil
		if r.ID() == 2 {
			v = "payload"
		}
		got, err := r.Bcast(2, v)
		if err != nil {
			return err
		}
		if got != "payload" {
			t.Errorf("rank %d bcast got %v", r.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	err := Run(6, func(r *Rank) error {
		got, err := r.Reduce(0, Sum, float64(r.ID()))
		if err != nil {
			return err
		}
		if r.ID() == 0 && got != 15 { // 0+1+..+5
			t.Errorf("reduce = %v, want 15", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMax(t *testing.T) {
	err := Run(4, func(r *Rank) error {
		got, err := r.AllReduce(Max, float64(r.ID()*10))
		if err != nil {
			return err
		}
		if got != 30 {
			t.Errorf("rank %d allreduce = %v, want 30", r.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const size = 4
	data := make([]float64, 16)
	for i := range data {
		data[i] = float64(i)
	}
	err := Run(size, func(r *Rank) error {
		var in []float64
		if r.ID() == 0 {
			in = data
		}
		chunk, err := r.Scatter(0, in)
		if err != nil {
			return err
		}
		if len(chunk) != 4 {
			return errors.New("wrong chunk size")
		}
		for i := range chunk {
			chunk[i] *= 2
		}
		out, err := r.Gather(0, chunk)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			for i := range out {
				if out[i] != float64(i)*2 {
					t.Errorf("out[%d] = %v, want %v", i, out[i], float64(i)*2)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterRejectsUnevenSplit(t *testing.T) {
	err := Run(3, func(r *Rank) error {
		if r.ID() != 0 {
			return nil // only root validates; others would block, so skip
		}
		_, err := r.Scatter(0, make([]float64, 10))
		if err == nil {
			return errors.New("uneven scatter accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("rank failed")
	err := Run(3, func(r *Rank) error {
		if r.ID() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, func(r *Rank) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

// TestHaloExchangeStencil runs the NMMB-like kernel: a 1-D heat diffusion
// with halo exchange, the workload shape used for E3.
func TestHaloExchangeStencil(t *testing.T) {
	const (
		size  = 4
		cells = 8 // per rank
		steps = 50
	)
	results := make([]float64, size)
	err := Run(size, func(r *Rank) error {
		// Initialise: rank 0's first cell is hot.
		local := make([]float64, cells)
		if r.ID() == 0 {
			local[0] = 1000
		}
		for s := 0; s < steps; s++ {
			leftGhost, rightGhost := 0.0, 0.0
			// Exchange halos with neighbours (even/odd ordering).
			if r.ID() > 0 {
				v, err := r.SendRecv(r.ID()-1, local[0])
				if err != nil {
					return err
				}
				f, ok := v.(float64)
				if !ok {
					return errors.New("bad halo type")
				}
				leftGhost = f
			}
			if r.ID() < size-1 {
				v, err := r.SendRecv(r.ID()+1, local[cells-1])
				if err != nil {
					return err
				}
				f, ok := v.(float64)
				if !ok {
					return errors.New("bad halo type")
				}
				rightGhost = f
			}
			next := make([]float64, cells)
			for i := 0; i < cells; i++ {
				l, c, rr := leftGhost, local[i], rightGhost
				if i > 0 {
					l = local[i-1]
				}
				if i < cells-1 {
					rr = local[i+1]
				}
				next[i] = c + 0.25*(l-2*c+rr)
			}
			local = next
		}
		sum, err := r.Reduce(0, Sum, sumOf(local))
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			results[0] = sum
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Heat is conserved under Neumann-free diffusion with zero-flux ghosts?
	// Our ghosts leak at the domain ends, so total heat must be <= initial
	// and > 0 after smoothing.
	if results[0] <= 0 || results[0] > 1000+1e-6 {
		t.Fatalf("total heat = %v, want (0, 1000]", results[0])
	}
	if math.IsNaN(results[0]) {
		t.Fatal("NaN heat")
	}
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestAllGather(t *testing.T) {
	err := Run(4, func(r *Rank) error {
		chunk := []float64{float64(r.ID()) * 10}
		all, err := r.AllGather(chunk)
		if err != nil {
			return err
		}
		if len(all) != 4 {
			return errors.New("wrong allgather length")
		}
		for i, v := range all {
			if v != float64(i)*10 {
				t.Errorf("rank %d: all[%d] = %v", r.ID(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	const size = 3
	err := Run(size, func(r *Rank) error {
		// Rank i sends value 100*i + j to rank j.
		chunks := make([][]float64, size)
		for j := range chunks {
			chunks[j] = []float64{float64(100*r.ID() + j)}
		}
		got, err := r.AllToAll(chunks)
		if err != nil {
			return err
		}
		for src := 0; src < size; src++ {
			want := float64(100*src + r.ID())
			if len(got[src]) != 1 || got[src][0] != want {
				t.Errorf("rank %d from %d: %v, want %v", r.ID(), src, got[src], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllValidatesChunkCount(t *testing.T) {
	err := Run(2, func(r *Rank) error {
		_, err := r.AllToAll([][]float64{{1}})
		if err == nil {
			return errors.New("wrong chunk count accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
