// Package lineage implements the paper's data-computing metrics: "the
// data-computing metrics will be used to compute the trade-off between the
// cost of storing data generated or re-computing them. While storing
// results has been since now the followed approach, the project will
// propose new unconventional strategies to reduce cost of storage and
// optimize computing" (Sec. VI-C).
//
// Each datum carries its producing cost and its size; the lineage graph
// lets the model price "recompute" as the cost of re-running the producing
// task plus recursively materialising any evicted inputs. Three policies
// are provided: StoreAll (the classic approach), RecomputeAll (keep only
// sources) and Adaptive (store when storing is cheaper than the expected
// recomputation).
package lineage

import (
	"fmt"
	"sort"
	"time"
)

// ItemID identifies a datum in the lineage graph.
type ItemID int64

// Item is one datum with its production facts.
type Item struct {
	ID ItemID
	// SizeBytes is the materialised size.
	SizeBytes int64
	// ComputeCost is the time to re-run the producing task (its inputs
	// being available).
	ComputeCost time.Duration
	// Inputs are the items the producing task consumes. Source items
	// (externally provided) have none and are always stored.
	Inputs []ItemID
}

// Graph is a lineage DAG of items. Not safe for concurrent mutation.
type Graph struct {
	items map[ItemID]*Item
	order []ItemID
}

// NewGraph returns an empty lineage graph.
func NewGraph() *Graph {
	return &Graph{items: make(map[ItemID]*Item)}
}

// Add inserts an item. Inputs must already exist; unknown inputs are an
// error so costs stay well defined.
func (g *Graph) Add(it Item) error {
	if _, dup := g.items[it.ID]; dup {
		return fmt.Errorf("lineage: duplicate item %d", it.ID)
	}
	for _, in := range it.Inputs {
		if _, ok := g.items[in]; !ok {
			return fmt.Errorf("lineage: item %d references unknown input %d", it.ID, in)
		}
	}
	cp := it
	cp.Inputs = append([]ItemID(nil), it.Inputs...)
	g.items[it.ID] = &cp
	g.order = append(g.order, it.ID)
	return nil
}

// Get returns an item.
func (g *Graph) Get(id ItemID) (Item, bool) {
	it, ok := g.items[id]
	if !ok {
		return Item{}, false
	}
	return *it, true
}

// Len returns the number of items.
func (g *Graph) Len() int { return len(g.items) }

// IsSource reports whether the item has no inputs.
func (g *Graph) IsSource(id ItemID) bool {
	it, ok := g.items[id]
	return ok && len(it.Inputs) == 0
}

// Items returns item IDs in insertion (topological) order.
func (g *Graph) Items() []ItemID {
	out := make([]ItemID, len(g.order))
	copy(out, g.order)
	return out
}

// CostModel prices storage and recomputation.
type CostModel struct {
	// StorageMBps converts bytes into the time cost of writing + later
	// reading the datum from the persistent backend.
	StorageMBps float64
	// ReadMBps is the cost of reading a stored datum on access. If 0,
	// StorageMBps is used.
	ReadMBps float64
}

// StoreCost returns the one-time cost of persisting an item.
func (m CostModel) StoreCost(it Item) time.Duration {
	if m.StorageMBps <= 0 {
		return 0
	}
	sec := float64(it.SizeBytes) / (m.StorageMBps * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// ReadCost returns the per-access cost of loading a stored item.
func (m CostModel) ReadCost(it Item) time.Duration {
	mbps := m.ReadMBps
	if mbps <= 0 {
		mbps = m.StorageMBps
	}
	if mbps <= 0 {
		return 0
	}
	sec := float64(it.SizeBytes) / (mbps * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// RecomputeCost returns the time to materialise id when only the items in
// stored are available: the producing task's cost plus, recursively, the
// cost of recomputing every evicted input. Stored (or source) items cost
// their read time.
func (g *Graph) RecomputeCost(id ItemID, stored map[ItemID]bool, m CostModel) time.Duration {
	memo := make(map[ItemID]time.Duration)
	return g.recompute(id, stored, m, memo)
}

func (g *Graph) recompute(id ItemID, stored map[ItemID]bool, m CostModel, memo map[ItemID]time.Duration) time.Duration {
	if c, ok := memo[id]; ok {
		return c
	}
	it, ok := g.items[id]
	if !ok {
		return 0
	}
	var cost time.Duration
	if stored[id] || len(it.Inputs) == 0 {
		// Available (sources are always materialised): pay the read.
		cost = m.ReadCost(*it)
	} else {
		cost = it.ComputeCost
		for _, in := range it.Inputs {
			cost += g.recompute(in, stored, m, memo)
		}
	}
	memo[id] = cost
	return cost
}

// Policy decides which intermediate items to persist.
type Policy int

// Store-vs-recompute policies (E9).
const (
	// StoreAll persists every intermediate (the classic approach).
	StoreAll Policy = iota + 1
	// RecomputeAll persists nothing but sources.
	RecomputeAll
	// Adaptive persists an item iff storing is cheaper than the
	// expected cost of recomputing it for the anticipated accesses.
	Adaptive
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case StoreAll:
		return "store-all"
	case RecomputeAll:
		return "recompute-all"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PlanResult summarises a policy evaluation over an access pattern.
type PlanResult struct {
	Policy Policy
	// Stored is the set of persisted intermediates.
	Stored []ItemID
	// StoredBytes is the persistent-storage footprint.
	StoredBytes int64
	// StoreTime is the total time spent persisting.
	StoreTime time.Duration
	// AccessTime is the total time to serve the access trace.
	AccessTime time.Duration
	// TotalTime = StoreTime + AccessTime: the figure of merit.
	TotalTime time.Duration
}

// Evaluate prices a policy against an access trace (a multiset of item
// reads, e.g. each downstream consumer). expectedReuse is the per-item
// access count the Adaptive policy assumes when deciding (commonly the
// mean of the trace).
func (g *Graph) Evaluate(p Policy, accesses []ItemID, expectedReuse float64, m CostModel) PlanResult {
	stored := make(map[ItemID]bool)
	switch p {
	case StoreAll:
		for _, id := range g.order {
			if !g.IsSource(id) {
				stored[id] = true
			}
		}
	case RecomputeAll:
		// nothing
	case Adaptive:
		if expectedReuse <= 0 {
			expectedReuse = 1
		}
		// Decide in topological order so upstream decisions are known
		// when pricing downstream recomputation.
		for _, id := range g.order {
			if g.IsSource(id) {
				continue
			}
			it := g.items[id]
			store := m.StoreCost(*it) + time.Duration(expectedReuse*float64(m.ReadCost(*it)))
			recompute := time.Duration(expectedReuse * float64(g.RecomputeCost(id, stored, m)))
			if store < recompute {
				stored[id] = true
			}
		}
	}

	res := PlanResult{Policy: p}
	for _, id := range g.order {
		if stored[id] {
			it := g.items[id]
			res.Stored = append(res.Stored, id)
			res.StoredBytes += it.SizeBytes
			res.StoreTime += m.StoreCost(*it)
		}
	}
	sort.Slice(res.Stored, func(i, j int) bool { return res.Stored[i] < res.Stored[j] })
	for _, id := range accesses {
		res.AccessTime += g.RecomputeCost(id, stored, m)
	}
	res.TotalTime = res.StoreTime + res.AccessTime
	return res
}
