package lineage

import (
	"testing"
	"time"
)

// chain builds src -> a -> b with the given sizes and compute costs.
func chain(t *testing.T, sizes [3]int64, costs [3]time.Duration) *Graph {
	t.Helper()
	g := NewGraph()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Add(Item{ID: 1, SizeBytes: sizes[0], ComputeCost: costs[0]}))
	must(g.Add(Item{ID: 2, SizeBytes: sizes[1], ComputeCost: costs[1], Inputs: []ItemID{1}}))
	must(g.Add(Item{ID: 3, SizeBytes: sizes[2], ComputeCost: costs[2], Inputs: []ItemID{2}}))
	return g
}

func TestAddRejectsUnknownInput(t *testing.T) {
	g := NewGraph()
	if err := g.Add(Item{ID: 1, Inputs: []ItemID{99}}); err == nil {
		t.Fatal("expected error for unknown input")
	}
}

func TestAddRejectsDuplicate(t *testing.T) {
	g := NewGraph()
	if err := g.Add(Item{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(Item{ID: 1}); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestRecomputeCostChain(t *testing.T) {
	g := chain(t, [3]int64{0, 0, 0}, [3]time.Duration{time.Second, 2 * time.Second, 4 * time.Second})
	m := CostModel{} // free storage I/O to isolate compute costs
	// Nothing stored: item 3 = its own cost + item 2's cost; item 1 is a
	// source (always available).
	got := g.RecomputeCost(3, nil, m)
	if got != 6*time.Second {
		t.Fatalf("recompute(3) = %v, want 6s", got)
	}
	// Storing item 2 cuts the chain.
	got = g.RecomputeCost(3, map[ItemID]bool{2: true}, m)
	if got != 4*time.Second {
		t.Fatalf("recompute(3 | stored 2) = %v, want 4s", got)
	}
}

func TestStoreAndReadCost(t *testing.T) {
	m := CostModel{StorageMBps: 100}
	it := Item{SizeBytes: 100e6} // 1 s at 100 MB/s
	if got := m.StoreCost(it); got != time.Second {
		t.Fatalf("StoreCost = %v, want 1s", got)
	}
	if got := m.ReadCost(it); got != time.Second {
		t.Fatalf("ReadCost = %v, want 1s (falls back to StorageMBps)", got)
	}
	m.ReadMBps = 200
	if got := m.ReadCost(it); got != 500*time.Millisecond {
		t.Fatalf("ReadCost = %v, want 0.5s", got)
	}
}

func TestStoreAllVsRecomputeAll(t *testing.T) {
	// Expensive compute, small data: storing must win.
	g := chain(t, [3]int64{1e6, 1e6, 1e6},
		[3]time.Duration{time.Second, 10 * time.Second, 10 * time.Second})
	m := CostModel{StorageMBps: 1000}
	accesses := []ItemID{3, 3, 3, 3}
	store := g.Evaluate(StoreAll, accesses, 4, m)
	recompute := g.Evaluate(RecomputeAll, accesses, 4, m)
	if store.TotalTime >= recompute.TotalTime {
		t.Fatalf("store-all %v should beat recompute-all %v for expensive compute",
			store.TotalTime, recompute.TotalTime)
	}

	// Cheap compute, huge data, slow storage: recomputing must win.
	g2 := chain(t, [3]int64{10e9, 10e9, 10e9},
		[3]time.Duration{time.Millisecond, time.Millisecond, time.Millisecond})
	m2 := CostModel{StorageMBps: 10}
	store2 := g2.Evaluate(StoreAll, []ItemID{3}, 1, m2)
	recompute2 := g2.Evaluate(RecomputeAll, []ItemID{3}, 1, m2)
	if recompute2.TotalTime >= store2.TotalTime {
		t.Fatalf("recompute-all %v should beat store-all %v for cheap compute",
			recompute2.TotalTime, store2.TotalTime)
	}
}

func TestAdaptiveNeverWorseThanBothExtremes(t *testing.T) {
	cases := []struct {
		name  string
		sizes [3]int64
		costs [3]time.Duration
		mbps  float64
		reuse int
	}{
		{"compute-heavy", [3]int64{1e6, 1e6, 1e6}, [3]time.Duration{time.Second, 10 * time.Second, 10 * time.Second}, 1000, 5},
		{"data-heavy", [3]int64{10e9, 10e9, 10e9}, [3]time.Duration{time.Millisecond, time.Millisecond, time.Millisecond}, 10, 1},
		{"mixed", [3]int64{1e9, 10e6, 5e9}, [3]time.Duration{time.Second, 20 * time.Second, 100 * time.Millisecond}, 100, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := chain(t, tc.sizes, tc.costs)
			m := CostModel{StorageMBps: tc.mbps}
			var accesses []ItemID
			for i := 0; i < tc.reuse; i++ {
				accesses = append(accesses, 3)
			}
			ad := g.Evaluate(Adaptive, accesses, float64(tc.reuse), m)
			sa := g.Evaluate(StoreAll, accesses, float64(tc.reuse), m)
			ra := g.Evaluate(RecomputeAll, accesses, float64(tc.reuse), m)
			// Allow 1% slack for rounding.
			limit := sa.TotalTime
			if ra.TotalTime < limit {
				limit = ra.TotalTime
			}
			if float64(ad.TotalTime) > 1.01*float64(limit) {
				t.Fatalf("adaptive %v worse than best extreme %v (store %v recompute %v)",
					ad.TotalTime, limit, sa.TotalTime, ra.TotalTime)
			}
		})
	}
}

func TestSourcesAreNeverStored(t *testing.T) {
	g := chain(t, [3]int64{1e6, 1e6, 1e6}, [3]time.Duration{time.Second, time.Second, time.Second})
	res := g.Evaluate(StoreAll, nil, 1, CostModel{StorageMBps: 100})
	for _, id := range res.Stored {
		if g.IsSource(id) {
			t.Fatalf("source %d was stored", id)
		}
	}
	if len(res.Stored) != 2 {
		t.Fatalf("stored = %v, want the 2 intermediates", res.Stored)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		StoreAll: "store-all", RecomputeAll: "recompute-all", Adaptive: "adaptive",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestDiamondLineage(t *testing.T) {
	g := NewGraph()
	for _, it := range []Item{
		{ID: 1, SizeBytes: 1e6, ComputeCost: time.Second},
		{ID: 2, SizeBytes: 1e6, ComputeCost: 2 * time.Second, Inputs: []ItemID{1}},
		{ID: 3, SizeBytes: 1e6, ComputeCost: 3 * time.Second, Inputs: []ItemID{1}},
		{ID: 4, SizeBytes: 1e6, ComputeCost: time.Second, Inputs: []ItemID{2, 3}},
	} {
		if err := g.Add(it); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing stored: 4 costs 1 + 2 + 3 = 6 s.
	if got := g.RecomputeCost(4, nil, CostModel{}); got != 6*time.Second {
		t.Fatalf("diamond recompute = %v, want 6s", got)
	}
}
