package agent

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/dataclay"
)

// taskBlobClass is the dataClay class used to persist offloaded task
// requests (persist-before-offload, paper Sec. VI-B: "whenever a task is
// submitted to a remote agent, the COMPSs runtime persists any
// not-yet-persisted object passed in as a parameter of the task").
const taskBlobClass = "agent.taskblob"

// RegisterBlobClass registers the task-persistence class on a store. Safe
// to call more than once.
func RegisterBlobClass(store *dataclay.Store) {
	store.RegisterClass(dataclay.Class{
		Name:    taskBlobClass,
		Methods: map[string]dataclay.Method{},
		Size: func(state any) int64 {
			raw, ok := state.([]byte)
			if !ok {
				return 0
			}
			return int64(len(raw))
		},
	})
}

// persistRequest stores the request payload and returns the object ID.
func (a *Agent) persistRequest(req TaskRequest) (storage.ObjectID, error) {
	if a.cfg.Store == nil {
		return "", nil
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("persist request: %w", err)
	}
	return a.cfg.Store.NewObject(taskBlobClass, raw)
}

// recoverRequest reloads a persisted request.
func (a *Agent) recoverRequest(id storage.ObjectID) (TaskRequest, error) {
	var req TaskRequest
	if a.cfg.Store == nil || id == "" {
		return req, fmt.Errorf("%w: request not persisted", ErrPeerLost)
	}
	state, err := a.cfg.Store.Fetch(id)
	if err != nil {
		return req, fmt.Errorf("recover request: %w", err)
	}
	raw, ok := state.([]byte)
	if !ok {
		return req, fmt.Errorf("recover request %s: unexpected state %T", id, state)
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		return req, fmt.Errorf("recover request: %w", err)
	}
	return req, nil
}

// peerHealth queries a peer's load; failure marks the peer as lost.
func (a *Agent) peerHealth(url string) (Health, error) {
	resp, err := a.client.Get(url + "/health")
	if err != nil {
		return Health{}, fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
	}
	return h, nil
}

// postTask submits a request to a peer and returns the remote task ID.
func (a *Agent) postTask(url string, req TaskRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := a.client.Post(url+"/task", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%w: %s: status %d", ErrPeerLost, url, resp.StatusCode)
	}
	var st TaskStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
	}
	return st.ID, nil
}

// pollTask waits for a remote task to finish.
func (a *Agent) pollTask(url, id string) (json.RawMessage, error) {
	for {
		resp, err := a.client.Get(url + "/task/" + id)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
		}
		var st TaskStatus
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			return nil, fmt.Errorf("%w: %s: status %d", ErrPeerLost, url, resp.StatusCode)
		}
		switch st.State {
		case StateDone:
			return st.Result, nil
		case StateFailed:
			return nil, fmt.Errorf("remote task failed: %s", st.Error)
		}
		select {
		case <-a.quit:
			return nil, ErrClosed
		case <-time.After(a.cfg.PollInterval):
		}
	}
}

// RunLocal executes a function on this agent and waits for the result.
func (a *Agent) RunLocal(name string, args []json.RawMessage) (json.RawMessage, error) {
	id, err := a.enqueue(TaskRequest{Name: name, Args: args})
	if err != nil {
		return nil, err
	}
	for {
		st, ok := a.Status(id)
		if !ok {
			return nil, fmt.Errorf("agent: task %s vanished", id)
		}
		switch st.State {
		case StateDone:
			return st.Result, nil
		case StateFailed:
			return nil, fmt.Errorf("task failed: %s", st.Error)
		}
		select {
		case <-a.quit:
			return nil, ErrClosed
		case <-time.After(a.cfg.PollInterval):
		}
	}
}

// rankedPeers returns the live peers ordered by increasing load.
func (a *Agent) rankedPeers() []string {
	a.mu.Lock()
	peers := append([]string(nil), a.peers...)
	a.mu.Unlock()
	type scored struct {
		url  string
		load float64
	}
	var alive []scored
	for _, p := range peers {
		h, err := a.peerHealth(p)
		if err != nil {
			continue
		}
		alive = append(alive, scored{url: p, load: h.Load()})
	}
	sort.Slice(alive, func(i, j int) bool {
		if alive[i].load != alive[j].load {
			return alive[i].load < alive[j].load
		}
		return alive[i].url < alive[j].url
	})
	out := make([]string, len(alive))
	for i, s := range alive {
		out[i] = s.url
	}
	return out
}

// Offload runs a function on the least-loaded live peer, persisting the
// request first. If the chosen peer disappears mid-task, the request is
// recovered from the store and resubmitted to the next peer (finally
// falling back to local execution) — the recovery behaviour of E7.
func (a *Agent) Offload(name string, args []json.RawMessage) (json.RawMessage, error) {
	req := TaskRequest{Name: name, Args: args}
	blobID, err := a.persistRequest(req)
	if err != nil {
		return nil, err
	}
	peers := a.rankedPeers()
	for _, peer := range peers {
		a.met.offloads.Inc()
		attempt := req
		if blobID != "" {
			// Demonstrate true recovery: reload the request from the
			// store rather than trusting in-memory state.
			if rec, err := a.recoverRequest(blobID); err == nil {
				attempt = rec
			}
		}
		result, err := a.tryPeer(peer, attempt)
		if err == nil {
			return result, nil
		}
		if !isPeerLost(err) {
			return nil, err // the task itself failed: do not mask it
		}
		a.mu.Lock()
		a.recoveries++
		a.mu.Unlock()
		a.met.recoveries.Inc()
	}
	// All peers gone (or none configured): run locally.
	return a.RunLocal(name, args)
}

func (a *Agent) tryPeer(url string, req TaskRequest) (json.RawMessage, error) {
	id, err := a.postTask(url, req)
	if err != nil {
		return nil, err
	}
	return a.pollTask(url, id)
}

func isPeerLost(err error) bool {
	return errors.Is(err, ErrPeerLost)
}

// RunAnywhere picks an executor: locally when the local load *after
// accepting this task* stays below the best peer's, otherwise the
// least-loaded peer — the fog-to-fog / fog-to-cloud decision of Fig. 5.
func (a *Agent) RunAnywhere(name string, args []json.RawMessage) (json.RawMessage, error) {
	local := a.health()
	peers := a.rankedPeers()
	if len(peers) == 0 {
		return a.RunLocal(name, args)
	}
	best, err := a.peerHealth(peers[0])
	if err != nil {
		return a.RunLocal(name, args)
	}
	// Include the task being placed on both sides of the comparison, so
	// a 1-core device facing idle 4-core peers offloads instead of
	// self-queueing.
	localAfter := Health{Name: local.Name, Cores: local.Cores, Busy: local.Busy, Queued: local.Queued + 1}
	bestAfter := Health{Name: best.Name, Cores: best.Cores, Busy: best.Busy, Queued: best.Queued + 1}
	if localAfter.Load() <= bestAfter.Load() {
		return a.RunLocal(name, args)
	}
	return a.Offload(name, args)
}
