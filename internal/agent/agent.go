// Package agent implements the fog-to-cloud deployment of the runtime
// (paper Sec. VI-B, Figs. 5–6): "The runtime is deployed as a microservice
// … Each Agent is independent of the other and can execute the same
// application code acting as a worker whenever needed. The application is
// instantiated as a service and listens for execution requests submitted to
// the REST API."
//
// Agents are plain net/http servers (the paper's Docker/Kubernetes
// packaging is orthogonal — DESIGN.md §4). An agent executes tasks locally
// on a bounded worker pool, can offload to peer agents over REST
// (fog-to-fog, fog-to-cloud), and persists task arguments to a dataClay
// store before offloading so that a peer's disappearance is survivable:
// the task is simply resubmitted elsewhere (experiment E7).
package agent

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obsv"
	"repro/internal/storage/dataclay"
)

// Errors returned by agent operations.
var (
	// ErrUnknownFunc is returned for unregistered function names.
	ErrUnknownFunc = errors.New("agent: unknown function")
	// ErrPeerLost is returned when a peer stops answering mid-task.
	ErrPeerLost = errors.New("agent: peer lost")
	// ErrNoCapacity is returned when no executor (local or peer) accepts.
	ErrNoCapacity = errors.New("agent: no capacity anywhere")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("agent: closed")
)

// Func is an agent-executable function: JSON in, JSON out, so the same
// registration works in-process and across the REST boundary.
type Func func(args []json.RawMessage) (json.RawMessage, error)

// Registry maps function names to implementations. Every agent of an
// application registers the same code ("each agent … can execute the same
// application code"). Registry is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Func)}
}

// Register adds a function; re-registration replaces.
func (r *Registry) Register(name string, fn Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = fn
}

// Lookup resolves a function.
func (r *Registry) Lookup(name string) (Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.m[name]
	return fn, ok
}

// Task states reported by the REST API.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// TaskRequest is the POST /task body.
type TaskRequest struct {
	Name string            `json:"name"`
	Args []json.RawMessage `json:"args"`
}

// TaskStatus is the GET /task/{id} response.
type TaskStatus struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Health is the GET /health response, consumed by peers for load-aware
// offloading.
type Health struct {
	Name   string `json:"name"`
	Cores  int    `json:"cores"`
	Busy   int    `json:"busy"`
	Queued int    `json:"queued"`
}

// Load is the offload score: queued + busy per core.
func (h Health) Load() float64 {
	if h.Cores <= 0 {
		return 1e9
	}
	return float64(h.Busy+h.Queued) / float64(h.Cores)
}

// Config assembles an agent.
type Config struct {
	// Name identifies the agent (defaults to the listen address).
	Name string
	// Cores bounds local concurrency (default 2).
	Cores int
	// Registry supplies the executable functions. Required.
	Registry *Registry
	// Store is the shared dataClay store for persist-before-offload.
	// Optional: without it, offloaded work cannot be recovered.
	Store *dataclay.Store
	// Peers are base URLs of other agents (can be set later).
	Peers []string
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// PollInterval tunes offload polling (default 5ms).
	PollInterval time.Duration
	// Metrics, when set, receives agent instruments (queue depth, busy
	// workers, executed/failed tasks, offloads, per-endpoint request
	// counts). Serve it with obsv.Serve for a Prometheus endpoint.
	Metrics *obsv.Registry
}

type agentTask struct {
	id     string
	req    TaskRequest
	status TaskStatus
}

// Agent is one runtime microservice.
type Agent struct {
	cfg    Config
	srv    *http.Server
	lis    net.Listener
	client *http.Client

	mu     sync.Mutex
	tasks  map[string]*agentTask
	queue  []*agentTask
	busy   int
	serial int
	peers  []string
	closed bool

	recoveries int // offloads re-run after a peer loss

	met metrics

	work chan struct{} // worker wake-up tokens
	quit chan struct{}
	wg   sync.WaitGroup
}

// New starts an agent listening on cfg.Addr.
func New(cfg Config) (*Agent, error) {
	if cfg.Registry == nil {
		return nil, errors.New("agent: registry is required")
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 2
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("agent listen: %w", err)
	}
	if cfg.Name == "" {
		cfg.Name = lis.Addr().String()
	}
	a := &Agent{
		cfg:    cfg,
		lis:    lis,
		client: &http.Client{Timeout: 2 * time.Second},
		tasks:  make(map[string]*agentTask),
		peers:  append([]string(nil), cfg.Peers...),
		met:    newMetrics(cfg.Metrics),
		work:   make(chan struct{}, 4096),
		quit:   make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/task", counted(cfg.Metrics, "task", a.handleTask))
	mux.HandleFunc("/task/", counted(cfg.Metrics, "task-status", a.handleTaskStatus))
	mux.HandleFunc("/tasks", counted(cfg.Metrics, "tasks", a.handleTasks))
	mux.HandleFunc("/health", counted(cfg.Metrics, "health", a.handleHealth))
	mux.HandleFunc("/resources", counted(cfg.Metrics, "resources", a.handleResources))
	a.srv = &http.Server{Handler: mux}

	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		_ = a.srv.Serve(lis)
	}()
	for i := 0; i < cfg.Cores; i++ {
		a.wg.Add(1)
		go a.worker()
	}
	return a, nil
}

// URL returns the agent's base URL.
func (a *Agent) URL() string { return "http://" + a.lis.Addr().String() }

// Name returns the agent name.
func (a *Agent) Name() string { return a.cfg.Name }

// SetPeers replaces the peer list at execution time.
func (a *Agent) SetPeers(urls []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.peers = append([]string(nil), urls...)
}

// Recoveries reports how many offloaded tasks were recovered after peer
// loss.
func (a *Agent) Recoveries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.recoveries
}

// Close stops the HTTP server and the workers. Queued tasks are abandoned.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.quit)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = a.srv.Shutdown(ctx)
	a.wg.Wait()
}

// --- local execution ---

// worker executes queued tasks, one at a time per core.
func (a *Agent) worker() {
	defer a.wg.Done()
	for {
		select {
		case <-a.quit:
			return
		case <-a.work:
		}
		a.mu.Lock()
		if len(a.queue) == 0 {
			a.mu.Unlock()
			continue
		}
		t := a.queue[0]
		a.queue = a.queue[1:]
		t.status.State = StateRunning
		a.busy++
		a.mu.Unlock()
		a.met.queued.Add(-1)
		a.met.busy.Add(1)

		started := time.Now()
		fn, ok := a.cfg.Registry.Lookup(t.req.Name)
		var result json.RawMessage
		var err error
		if !ok {
			err = fmt.Errorf("%w: %s", ErrUnknownFunc, t.req.Name)
		} else {
			result, err = fn(t.req.Args)
		}
		a.met.execSeconds.ObserveDuration(time.Since(started))

		a.mu.Lock()
		if err != nil {
			t.status.State = StateFailed
			t.status.Error = err.Error()
			a.met.failed.Inc()
		} else {
			t.status.State = StateDone
			t.status.Result = result
			a.met.executed.Inc()
		}
		a.busy--
		a.mu.Unlock()
		a.met.busy.Add(-1)
	}
}

// enqueue registers a task locally and wakes a worker.
func (a *Agent) enqueue(req TaskRequest) (string, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return "", ErrClosed
	}
	a.serial++
	id := fmt.Sprintf("%s-t%d", a.cfg.Name, a.serial)
	t := &agentTask{id: id, req: req, status: TaskStatus{ID: id, State: StateQueued}}
	a.tasks[id] = t
	a.queue = append(a.queue, t)
	a.mu.Unlock()
	a.met.queued.Add(1)
	select {
	case a.work <- struct{}{}:
	default:
	}
	return id, nil
}

// Status returns the status of a local task.
func (a *Agent) Status(id string) (TaskStatus, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tasks[id]
	if !ok {
		return TaskStatus{}, false
	}
	return t.status, true
}

// health snapshots load.
func (a *Agent) health() Health {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Health{Name: a.cfg.Name, Cores: a.cfg.Cores, Busy: a.busy, Queued: len(a.queue)}
}

// --- HTTP handlers (the REST interface of Fig. 6) ---

func (a *Agent) handleTask(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req TaskRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, ok := a.cfg.Registry.Lookup(req.Name); !ok {
		http.Error(w, fmt.Sprintf("unknown function %q", req.Name), http.StatusNotFound)
		return
	}
	id, err := a.enqueue(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, TaskStatus{ID: id, State: StateQueued})
}

func (a *Agent) handleTaskStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/task/")
	st, ok := a.Status(id)
	if !ok {
		http.Error(w, "unknown task", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

func (a *Agent) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.health())
}

// handleTasks lists every task's status — the monitoring surface the
// paper's interactivity/steering goals require ("monitoring, streaming and
// visualization of the scientific results", Sec. I). Results are elided to
// keep the listing small; fetch them per-task.
func (a *Agent) handleTasks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	a.mu.Lock()
	out := make([]TaskStatus, 0, len(a.tasks))
	for _, t := range a.tasks {
		st := t.status
		st.Result = nil
		out = append(out, st)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, out)
}

// handleResources updates local capacity at execution time ("the set of
// available resources can be updated through the REST API").
func (a *Agent) handleResources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		AddCores int `json:"addCores"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.AddCores <= 0 {
		http.Error(w, "addCores must be positive", http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	a.cfg.Cores += req.AddCores
	n := req.AddCores
	a.mu.Unlock()
	for i := 0; i < n; i++ {
		a.wg.Add(1)
		go a.worker()
	}
	writeJSON(w, a.health())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
