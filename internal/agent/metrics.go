package agent

import (
	"net/http"

	"repro/internal/obsv"
)

// metrics is the agent's instrument bundle. Without a registry every
// field stays nil, and nil obsv instruments discard writes, so the hot
// paths carry no enable branches.
type metrics struct {
	executed    *obsv.Counter   // tasks finished successfully
	failed      *obsv.Counter   // tasks finished in error
	queued      *obsv.Gauge     // tasks waiting for a worker
	busy        *obsv.Gauge     // workers currently executing
	execSeconds *obsv.Histogram // local execution wall time
	offloads    *obsv.Counter   // tasks sent to a peer
	recoveries  *obsv.Counter   // offloads re-run after a peer loss
}

func newMetrics(reg *obsv.Registry) metrics {
	if reg == nil {
		return metrics{}
	}
	return metrics{
		executed: reg.Counter("flowgo_agent_tasks_executed_total",
			"Tasks this agent executed to completion.", ""),
		failed: reg.Counter("flowgo_agent_tasks_failed_total",
			"Tasks this agent executed that returned an error.", ""),
		queued: reg.Gauge("flowgo_agent_queue_depth",
			"Tasks accepted but not yet picked up by a worker.", ""),
		busy: reg.Gauge("flowgo_agent_busy_workers",
			"Workers currently executing a task.", ""),
		execSeconds: reg.Histogram("flowgo_agent_exec_seconds",
			"Local task execution wall time.", "",
			obsv.ExpBuckets(0.001, 4, 10)),
		offloads: reg.Counter("flowgo_agent_offloads_total",
			"Tasks submitted to a peer agent.", ""),
		recoveries: reg.Counter("flowgo_agent_recoveries_total",
			"Offloaded tasks recovered and resubmitted after a peer loss.", ""),
	}
}

// counted wraps an HTTP handler with a per-endpoint request counter.
func counted(reg *obsv.Registry, endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	var c *obsv.Counter
	if reg != nil {
		c = reg.Counter("flowgo_agent_http_requests_total",
			"REST requests served, by endpoint.", obsv.Labels("endpoint", endpoint))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		fn(w, r)
	}
}
