package agent

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/storage/dataclay"
)

// testRegistry registers square (x²) and slowEcho.
func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Register("square", func(args []json.RawMessage) (json.RawMessage, error) {
		var x float64
		if len(args) != 1 || json.Unmarshal(args[0], &x) != nil {
			return nil, errors.New("square wants one number")
		}
		return json.Marshal(x * x)
	})
	reg.Register("slow", func(args []json.RawMessage) (json.RawMessage, error) {
		time.Sleep(50 * time.Millisecond)
		return json.Marshal("done")
	})
	reg.Register("boom", func(args []json.RawMessage) (json.RawMessage, error) {
		return nil, errors.New("kaboom")
	})
	return reg
}

func startAgent(t *testing.T, cfg Config) *Agent {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = testRegistry()
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func arg(t *testing.T, v any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRunLocal(t *testing.T) {
	a := startAgent(t, Config{Name: "solo"})
	res, err := a.RunLocal("square", []json.RawMessage{arg(t, 7)})
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	if err := json.Unmarshal(res, &got); err != nil || got != 49 {
		t.Fatalf("result = %s (%v)", res, err)
	}
}

func TestRunLocalUnknownFunc(t *testing.T) {
	a := startAgent(t, Config{})
	if _, err := a.RunLocal("ghost", nil); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunLocalTaskError(t *testing.T) {
	a := startAgent(t, Config{})
	if _, err := a.RunLocal("boom", nil); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRESTTaskLifecycle(t *testing.T) {
	a := startAgent(t, Config{Name: "rest"})
	body := strings.NewReader(`{"name":"square","args":[3]}`)
	resp, err := http.Post(a.URL()+"/task", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st TaskStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("no task ID")
	}
	// Poll until done.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r2, err := http.Get(a.URL() + "/task/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur TaskStatus
		if err := json.NewDecoder(r2.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		_ = r2.Body.Close()
		if cur.State == StateDone {
			var got float64
			if err := json.Unmarshal(cur.Result, &got); err != nil || got != 9 {
				t.Fatalf("result = %s", cur.Result)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("task stuck in state %s", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRESTRejectsUnknownFunction(t *testing.T) {
	a := startAgent(t, Config{})
	resp, err := http.Post(a.URL()+"/task", "application/json", strings.NewReader(`{"name":"ghost"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHealthEndpoint(t *testing.T) {
	a := startAgent(t, Config{Name: "h", Cores: 3})
	resp, err := http.Get(a.URL() + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Name != "h" || h.Cores != 3 || h.Busy != 0 {
		t.Fatalf("health = %+v", h)
	}
}

func TestResourcesEndpointAddsCores(t *testing.T) {
	a := startAgent(t, Config{Cores: 1})
	resp, err := http.Post(a.URL()+"/resources", "application/json", strings.NewReader(`{"addCores":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cores != 3 {
		t.Fatalf("cores = %d, want 3", h.Cores)
	}
}

func TestOffloadToLeastLoadedPeer(t *testing.T) {
	reg := testRegistry()
	peerA := startAgent(t, Config{Name: "peerA", Registry: reg, Cores: 1})
	peerB := startAgent(t, Config{Name: "peerB", Registry: reg, Cores: 4})
	// Load peerA so peerB is clearly less loaded.
	for i := 0; i < 3; i++ {
		if _, err := peerA.enqueue(TaskRequest{Name: "slow"}); err != nil {
			t.Fatal(err)
		}
	}
	origin := startAgent(t, Config{Name: "origin", Registry: reg,
		Peers: []string{peerA.URL(), peerB.URL()}})
	res, err := origin.Offload("square", []json.RawMessage{arg(t, 5)})
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	if err := json.Unmarshal(res, &got); err != nil || got != 25 {
		t.Fatalf("offload result = %s", res)
	}
}

func TestOffloadRecoversFromPeerLoss(t *testing.T) {
	store, err := dataclay.NewStore([]string{"ds1"})
	if err != nil {
		t.Fatal(err)
	}
	RegisterBlobClass(store)
	reg := testRegistry()

	dying := startAgent(t, Config{Name: "dying", Registry: reg, Cores: 1})
	// The dying agent runs "slow" tasks; kill it while the offloaded task
	// is in flight.
	survivor := startAgent(t, Config{Name: "survivor", Registry: reg, Cores: 2})
	origin := startAgent(t, Config{Name: "origin", Registry: reg, Store: store,
		Peers: []string{dying.URL(), survivor.URL()}})

	// Make "dying" the least loaded (survivor busy) so the offload goes
	// there first.
	for i := 0; i < 8; i++ {
		if _, err := survivor.enqueue(TaskRequest{Name: "slow"}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var res json.RawMessage
	var offErr error
	go func() {
		defer wg.Done()
		res, offErr = origin.Offload("slow", nil)
	}()
	time.Sleep(20 * time.Millisecond) // let the task land on "dying"
	dying.Close()                     // peer disappears mid-task
	wg.Wait()

	if offErr != nil {
		t.Fatalf("offload after peer loss failed: %v", offErr)
	}
	var got string
	if err := json.Unmarshal(res, &got); err != nil || got != "done" {
		t.Fatalf("result = %s", res)
	}
	if origin.Recoveries() == 0 {
		t.Fatal("no recovery recorded despite peer loss")
	}
}

func TestOffloadDoesNotMaskTaskFailure(t *testing.T) {
	reg := testRegistry()
	peer := startAgent(t, Config{Name: "peer", Registry: reg})
	origin := startAgent(t, Config{Name: "o", Registry: reg, Peers: []string{peer.URL()}})
	if _, err := origin.Offload("boom", nil); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want remote kaboom", err)
	}
	if origin.Recoveries() != 0 {
		t.Fatal("task failure must not count as peer loss")
	}
}

func TestOffloadWithoutPeersRunsLocally(t *testing.T) {
	a := startAgent(t, Config{})
	res, err := a.Offload("square", []json.RawMessage{arg(t, 4)})
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	if err := json.Unmarshal(res, &got); err != nil || got != 16 {
		t.Fatalf("result = %s", res)
	}
}

func TestRunAnywherePrefersIdleLocal(t *testing.T) {
	reg := testRegistry()
	peer := startAgent(t, Config{Name: "peer", Registry: reg, Cores: 1})
	// Load the peer.
	for i := 0; i < 4; i++ {
		if _, err := peer.enqueue(TaskRequest{Name: "slow"}); err != nil {
			t.Fatal(err)
		}
	}
	local := startAgent(t, Config{Name: "local", Registry: reg, Cores: 2, Peers: []string{peer.URL()}})
	start := time.Now()
	if _, err := local.RunAnywhere("square", []json.RawMessage{arg(t, 2)}); err != nil {
		t.Fatal(err)
	}
	// Running locally avoids the peer's ~200ms backlog.
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("RunAnywhere took %v: apparently queued behind the busy peer", elapsed)
	}
}

func TestCloseIsIdempotentAndStopsSubmissions(t *testing.T) {
	a := startAgent(t, Config{})
	a.Close()
	a.Close()
	if _, err := a.enqueue(TaskRequest{Name: "square"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v", err)
	}
}

func TestManyConcurrentLocalTasks(t *testing.T) {
	a := startAgent(t, Config{Cores: 4})
	var wg sync.WaitGroup
	errs := make([]error, 50)
	for i := 0; i < 50; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := a.RunLocal("square", []json.RawMessage{arg(t, float64(i))})
			if err != nil {
				errs[i] = err
				return
			}
			var got float64
			if err := json.Unmarshal(res, &got); err != nil || got != float64(i*i) {
				errs[i] = fmt.Errorf("bad result %s for %d", res, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTasksListingEndpoint(t *testing.T) {
	a := startAgent(t, Config{Name: "lister"})
	for i := 0; i < 3; i++ {
		if _, err := a.RunLocal("square", []json.RawMessage{arg(t, float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(a.URL() + "/tasks")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var list []TaskStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d tasks, want 3", len(list))
	}
	for _, st := range list {
		if st.State != StateDone {
			t.Fatalf("task %s in state %s", st.ID, st.State)
		}
		if st.Result != nil {
			t.Fatal("listing should elide results")
		}
	}
}
