package agent

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Client is the standalone client side of the agent REST protocol, for
// programs that orchestrate agents without being one (CLI tools, the
// compss remote-task backend). It is safe for concurrent use.
type Client struct {
	http         *http.Client
	pollInterval time.Duration
}

// NewClient returns a client with the given per-request timeout and poll
// interval (defaults: 2s, 5ms).
func NewClient(timeout, pollInterval time.Duration) *Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if pollInterval <= 0 {
		pollInterval = 5 * time.Millisecond
	}
	return &Client{
		http:         &http.Client{Timeout: timeout},
		pollInterval: pollInterval,
	}
}

// Health queries one agent's load.
func (c *Client) Health(url string) (Health, error) {
	resp, err := c.http.Get(url + "/health")
	if err != nil {
		return Health{}, fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
	}
	return h, nil
}

// Submit posts a task and returns its remote ID.
func (c *Client) Submit(url, name string, args []json.RawMessage) (string, error) {
	body, err := json.Marshal(TaskRequest{Name: name, Args: args})
	if err != nil {
		return "", err
	}
	resp, err := c.http.Post(url+"/task", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return "", fmt.Errorf("agent %s: %w: %s", url, ErrUnknownFunc, name)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%w: %s: status %d", ErrPeerLost, url, resp.StatusCode)
	}
	var st TaskStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
	}
	return st.ID, nil
}

// Wait polls until the remote task finishes.
func (c *Client) Wait(url, id string) (json.RawMessage, error) {
	for {
		resp, err := c.http.Get(url + "/task/" + id)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrPeerLost, url, err)
		}
		var st TaskStatus
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			return nil, fmt.Errorf("%w: %s: status %d", ErrPeerLost, url, resp.StatusCode)
		}
		switch st.State {
		case StateDone:
			return st.Result, nil
		case StateFailed:
			return nil, fmt.Errorf("remote task failed: %s", st.Error)
		}
		time.Sleep(c.pollInterval)
	}
}

// Run submits to one agent and waits.
func (c *Client) Run(url, name string, args []json.RawMessage) (json.RawMessage, error) {
	id, err := c.Submit(url, name, args)
	if err != nil {
		return nil, err
	}
	return c.Wait(url, id)
}

// RunOnCluster runs the function on the least-loaded live agent, failing
// over to the next one if the chosen agent disappears mid-task. Task
// failures (the function returning an error) are reported, not retried.
func (c *Client) RunOnCluster(urls []string, name string, args []json.RawMessage) (json.RawMessage, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("agent client: no agents configured")
	}
	type scored struct {
		url  string
		load float64
	}
	var alive []scored
	for _, u := range urls {
		h, err := c.Health(u)
		if err != nil {
			continue
		}
		alive = append(alive, scored{url: u, load: h.Load()})
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("agent client: %w: none of %d agents answered", ErrPeerLost, len(urls))
	}
	sort.Slice(alive, func(i, j int) bool {
		if alive[i].load != alive[j].load {
			return alive[i].load < alive[j].load
		}
		return alive[i].url < alive[j].url
	})
	var lastErr error
	for _, s := range alive {
		res, err := c.Run(s.url, name, args)
		if err == nil {
			return res, nil
		}
		if !isPeerLost(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}
