// Package steer implements computational steering over the storage
// interface (paper Sec. VI-C): "the support to store data on databases …
// allows scientists to check partial results before their long-lasting
// simulations end the execution. This checking enables to detect in early
// stages if the simulation is not behaving as expected and should be
// steered … Our vision is that the workflow environment should provide
// scientists with tools or mechanism that facilitates this steering."
//
// A Monitor polls a persisted object for fresh partial results and feeds
// them to a user Check function, whose verdict (Continue / Adjust / Abort)
// is published back through a control object the running workflow reads.
package steer

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/storage"
)

// Verdict is the steering decision for one partial result.
type Verdict int

// Steering outcomes.
const (
	// Continue lets the simulation proceed unchanged.
	Continue Verdict = iota + 1
	// Adjust proceeds with new parameters (carried in Decision.Params).
	Adjust
	// Abort stops the simulation.
	Abort
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Continue:
		return "continue"
	case Adjust:
		return "adjust"
	case Abort:
		return "abort"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Decision is what the checker returns and what the workflow polls.
type Decision struct {
	Verdict Verdict           `json:"verdict"`
	Reason  string            `json:"reason,omitempty"`
	Params  map[string]string `json:"params,omitempty"`
}

// Check inspects one partial result (raw bytes as persisted) and decides.
type Check func(step int, partial []byte) Decision

// Progress is a convenience wrapper the simulation side uses to publish
// partial results: one object per step under "<prefix>/step/<n>", plus a
// "<prefix>/latest" pointer.
type Progress struct {
	backend storage.Backend
	prefix  string

	mu   sync.Mutex
	step int
}

// NewProgress creates a publisher rooted at prefix.
func NewProgress(backend storage.Backend, prefix string) *Progress {
	return &Progress{backend: backend, prefix: prefix}
}

// Publish persists one partial result and advances the step counter.
func (p *Progress) Publish(partial []byte) (int, error) {
	p.mu.Lock()
	step := p.step + 1
	p.mu.Unlock()

	if err := p.backend.Put(p.stepID(step), partial); err != nil {
		return 0, fmt.Errorf("steer publish step %d: %w", step, err)
	}
	raw, err := json.Marshal(step)
	if err != nil {
		return 0, err
	}
	if err := p.backend.Put(p.latestID(), raw); err != nil {
		return 0, fmt.Errorf("steer publish latest: %w", err)
	}
	p.mu.Lock()
	p.step = step
	p.mu.Unlock()
	return step, nil
}

// Decision returns the newest steering decision, or (zero, false) when the
// monitor has not decided anything yet. The simulation calls this between
// steps.
func (p *Progress) Decision() (Decision, bool) {
	raw, err := p.backend.Get(p.decisionID())
	if err != nil {
		return Decision{}, false
	}
	var d Decision
	if err := json.Unmarshal(raw, &d); err != nil {
		return Decision{}, false
	}
	return d, true
}

func (p *Progress) stepID(n int) storage.ObjectID {
	return storage.ObjectID(fmt.Sprintf("%s/step/%d", p.prefix, n))
}
func (p *Progress) latestID() storage.ObjectID {
	return storage.ObjectID(p.prefix + "/latest")
}
func (p *Progress) decisionID() storage.ObjectID {
	return storage.ObjectID(p.prefix + "/decision")
}

// Monitor polls for new partial results and applies a Check. It owns one
// goroutine; Stop shuts it down and waits.
type Monitor struct {
	backend  storage.Backend
	prefix   string
	check    Check
	interval time.Duration

	mu       sync.Mutex
	lastSeen int
	history  []Decision

	stop chan struct{}
	done chan struct{}
}

// ErrMonitorConfig is returned for invalid monitor parameters.
var ErrMonitorConfig = errors.New("steer: backend, prefix and check are required")

// NewMonitor starts watching the given prefix, invoking check once per new
// step and persisting the decision where the simulation reads it.
func NewMonitor(backend storage.Backend, prefix string, check Check, interval time.Duration) (*Monitor, error) {
	if backend == nil || prefix == "" || check == nil {
		return nil, ErrMonitorConfig
	}
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	m := &Monitor{
		backend:  backend,
		prefix:   prefix,
		check:    check,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go m.loop()
	return m, nil
}

func (m *Monitor) loop() {
	defer close(m.done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.poll()
		}
	}
}

func (m *Monitor) poll() {
	p := &Progress{backend: m.backend, prefix: m.prefix}
	raw, err := m.backend.Get(p.latestID())
	if err != nil {
		return // nothing published yet
	}
	var latest int
	if err := json.Unmarshal(raw, &latest); err != nil {
		return
	}
	m.mu.Lock()
	from := m.lastSeen + 1
	m.mu.Unlock()
	for step := from; step <= latest; step++ {
		partial, err := m.backend.Get(p.stepID(step))
		if err != nil {
			continue
		}
		d := m.check(step, partial)
		if enc, err := json.Marshal(d); err == nil {
			_ = m.backend.Put(p.decisionID(), enc)
		}
		m.mu.Lock()
		m.lastSeen = step
		m.history = append(m.history, d)
		m.mu.Unlock()
	}
}

// History returns a copy of the decisions taken so far.
func (m *Monitor) History() []Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Decision, len(m.history))
	copy(out, m.history)
	return out
}

// StepsSeen reports how many partial results were checked.
func (m *Monitor) StepsSeen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeen
}

// Stop halts the monitor and waits for its goroutine.
func (m *Monitor) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}
