package steer

import (
	"encoding/json"
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, "x", func(int, []byte) Decision { return Decision{} }, 0); !errors.Is(err, ErrMonitorConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{Continue: "continue", Adjust: "adjust", Abort: "abort"} {
		if v.String() != want {
			t.Errorf("%d = %q", int(v), v.String())
		}
	}
}

func TestPublishAndDecisionRoundTrip(t *testing.T) {
	backend := storage.NewMemory("n1")
	prog := NewProgress(backend, "sim1")

	if _, ok := prog.Decision(); ok {
		t.Fatal("decision before any monitoring")
	}
	step, err := prog.Publish([]byte("42"))
	if err != nil || step != 1 {
		t.Fatalf("publish: %d %v", step, err)
	}

	mon, err := NewMonitor(backend, "sim1", func(step int, partial []byte) Decision {
		return Decision{Verdict: Continue, Reason: "step " + strconv.Itoa(step) + " ok: " + string(partial)}
	}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	waitFor(t, func() bool { return mon.StepsSeen() >= 1 })
	d, ok := prog.Decision()
	if !ok || d.Verdict != Continue {
		t.Fatalf("decision = %+v ok=%v", d, ok)
	}
}

func TestSteeringDetectsDivergence(t *testing.T) {
	// The paper's scenario: a long simulation publishes residuals; the
	// monitor aborts when they diverge.
	backend := storage.NewMemory("n1")
	prog := NewProgress(backend, "climate")
	mon, err := NewMonitor(backend, "climate", func(_ int, partial []byte) Decision {
		var residual float64
		if json.Unmarshal(partial, &residual) != nil {
			return Decision{Verdict: Abort, Reason: "unreadable partial"}
		}
		if residual > 100 {
			return Decision{Verdict: Abort, Reason: "diverging"}
		}
		if residual > 10 {
			return Decision{Verdict: Adjust, Params: map[string]string{"dt": "halve"}}
		}
		return Decision{Verdict: Continue}
	}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()

	// The "simulation": residuals 1, 20, 500 — then it checks steering.
	aborted := false
	for _, residual := range []float64{1, 20, 500} {
		raw, err := json.Marshal(residual)
		if err != nil {
			t.Fatal(err)
		}
		step, err := prog.Publish(raw)
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, func() bool { return mon.StepsSeen() >= step })
		if d, ok := prog.Decision(); ok && d.Verdict == Abort {
			aborted = true
			break
		}
	}
	if !aborted {
		t.Fatal("diverging simulation was not aborted")
	}
	hist := mon.History()
	if len(hist) != 3 {
		t.Fatalf("history = %d decisions, want 3", len(hist))
	}
	if hist[0].Verdict != Continue || hist[1].Verdict != Adjust || hist[2].Verdict != Abort {
		t.Fatalf("history = %+v", hist)
	}
	if hist[1].Params["dt"] != "halve" {
		t.Fatalf("adjust params = %v", hist[1].Params)
	}
}

func TestMonitorStopIsIdempotent(t *testing.T) {
	backend := storage.NewMemory("n1")
	mon, err := NewMonitor(backend, "x", func(int, []byte) Decision { return Decision{Verdict: Continue} }, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mon.Stop()
	mon.Stop()
}

func TestMonitorCatchesUpOnBurst(t *testing.T) {
	backend := storage.NewMemory("n1")
	prog := NewProgress(backend, "burst")
	// Publish 5 steps before the monitor starts.
	for i := 0; i < 5; i++ {
		if _, err := prog.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	mon, err := NewMonitor(backend, "burst", func(int, []byte) Decision {
		return Decision{Verdict: Continue}
	}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Stop()
	waitFor(t, func() bool { return mon.StepsSeen() == 5 })
	if len(mon.History()) != 5 {
		t.Fatalf("history = %d, want 5", len(mon.History()))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
