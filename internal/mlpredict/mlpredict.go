// Package mlpredict provides the learning component of the "intelligent
// runtime" (paper Sec. VI-C: "the runtime will use machine learning
// techniques to make intelligent decisions on the execution of the
// workflows, and learning from previous executions").
//
// Two online estimators are combined:
//
//   - an exponentially weighted moving average per task class (captures
//     per-class mean duration quickly), and
//   - an online simple linear regression on input size (captures
//     size-dependent behaviour of data-parallel tasks).
//
// Both are O(1) per observation, so the predictor can sit inside the
// scheduler's hot path.
package mlpredict

import (
	"sync"
	"time"
)

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	alpha float64
	value float64
	n     int
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a sample into the average.
func (e *EWMA) Observe(v float64) {
	if e.n == 0 {
		e.value = v
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	e.n++
}

// Value returns the current average and whether any sample was seen.
func (e *EWMA) Value() (float64, bool) { return e.value, e.n > 0 }

// Count returns the number of samples observed.
func (e *EWMA) Count() int { return e.n }

// LinReg is an online simple linear regression y = a + b·x using Welford-
// style accumulation.
type LinReg struct {
	n            int
	meanX, meanY float64
	m2x, covXY   float64
}

// Observe adds one (x, y) sample.
func (l *LinReg) Observe(x, y float64) {
	l.n++
	dx := x - l.meanX
	l.meanX += dx / float64(l.n)
	l.meanY += (y - l.meanY) / float64(l.n)
	l.m2x += dx * (x - l.meanX)
	l.covXY += dx * (y - l.meanY)
}

// Coeffs returns intercept a and slope b. With fewer than 2 samples or
// degenerate x it falls back to slope 0 and intercept = mean(y).
func (l *LinReg) Coeffs() (a, b float64) {
	if l.n < 2 || l.m2x == 0 {
		return l.meanY, 0
	}
	b = l.covXY / l.m2x
	a = l.meanY - b*l.meanX
	return a, b
}

// Predict estimates y for x.
func (l *LinReg) Predict(x float64) float64 {
	a, b := l.Coeffs()
	return a + b*x
}

// Count returns the number of samples observed.
func (l *LinReg) Count() int { return l.n }

// classModel is the per-task-class learning state.
type classModel struct {
	mean *EWMA
	size *LinReg
}

// Predictor estimates task durations per class from execution history. It
// is safe for concurrent use.
type Predictor struct {
	mu      sync.RWMutex
	classes map[string]*classModel
	def     time.Duration
}

// NewPredictor returns a predictor that answers def for unseen classes.
func NewPredictor(def time.Duration) *Predictor {
	return &Predictor{
		classes: make(map[string]*classModel),
		def:     def,
	}
}

// Observe records a completed task: its class, an input-size covariate
// (bytes; use 0 when irrelevant) and the measured duration.
func (p *Predictor) Observe(class string, size int64, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.classes[class]
	if !ok {
		m = &classModel{mean: NewEWMA(0.3), size: &LinReg{}}
		p.classes[class] = m
	}
	m.mean.Observe(d.Seconds())
	if size > 0 {
		m.size.Observe(float64(size), d.Seconds())
	}
}

// Predict estimates the duration of a task of the given class and input
// size. The regression is used once it has ≥ 3 samples and a positive
// slope-quality signal; otherwise the per-class EWMA; otherwise the
// default.
func (p *Predictor) Predict(class string, size int64) time.Duration {
	p.mu.RLock()
	defer p.mu.RUnlock()
	m, ok := p.classes[class]
	if !ok {
		return p.def
	}
	if size > 0 && m.size.Count() >= 3 {
		if y := m.size.Predict(float64(size)); y > 0 {
			return time.Duration(y * float64(time.Second))
		}
	}
	if v, seen := m.mean.Value(); seen {
		return time.Duration(v * float64(time.Second))
	}
	return p.def
}

// Trained reports whether the class has at least n observations.
func (p *Predictor) Trained(class string, n int) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	m, ok := p.classes[class]
	return ok && m.mean.Count() >= n
}

// Classes returns the number of classes with history.
func (p *Predictor) Classes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.classes)
}
