package mlpredict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEWMAFirstSampleExact(t *testing.T) {
	e := NewEWMA(0.3)
	e.Observe(10)
	v, ok := e.Value()
	if !ok || v != 10 {
		t.Fatalf("Value = %v %v, want 10 true", v, ok)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 50; i++ {
		e.Observe(42)
	}
	v, _ := e.Value()
	if math.Abs(v-42) > 1e-9 {
		t.Fatalf("EWMA of constant = %v, want 42", v)
	}
}

func TestEWMATracksShift(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 10; i++ {
		e.Observe(10)
	}
	for i := 0; i < 20; i++ {
		e.Observe(100)
	}
	v, _ := e.Value()
	if v < 95 {
		t.Fatalf("EWMA did not track shift: %v", v)
	}
}

func TestEWMABadAlphaFallsBack(t *testing.T) {
	e := NewEWMA(-1)
	e.Observe(5)
	if v, ok := e.Value(); !ok || v != 5 {
		t.Fatal("EWMA with bad alpha unusable")
	}
}

func TestLinRegRecoversLine(t *testing.T) {
	l := &LinReg{}
	for x := 1.0; x <= 20; x++ {
		l.Observe(x, 3+2*x)
	}
	a, b := l.Coeffs()
	if math.Abs(a-3) > 1e-6 || math.Abs(b-2) > 1e-6 {
		t.Fatalf("coeffs = %v %v, want 3 2", a, b)
	}
	if y := l.Predict(100); math.Abs(y-203) > 1e-6 {
		t.Fatalf("Predict(100) = %v, want 203", y)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	l := &LinReg{}
	l.Observe(5, 10)
	l.Observe(5, 20) // zero x-variance
	a, b := l.Coeffs()
	if b != 0 || math.Abs(a-15) > 1e-9 {
		t.Fatalf("degenerate coeffs = %v %v, want mean 15 slope 0", a, b)
	}
}

func TestPredictorDefaultsForUnseenClass(t *testing.T) {
	p := NewPredictor(7 * time.Second)
	if got := p.Predict("mystery", 0); got != 7*time.Second {
		t.Fatalf("Predict = %v, want default 7s", got)
	}
}

func TestPredictorLearnsClassMean(t *testing.T) {
	p := NewPredictor(time.Second)
	for i := 0; i < 20; i++ {
		p.Observe("filter", 0, 5*time.Second)
	}
	got := p.Predict("filter", 0)
	if math.Abs(got.Seconds()-5) > 0.01 {
		t.Fatalf("Predict = %v, want ~5s", got)
	}
	if !p.Trained("filter", 10) || p.Trained("filter", 100) {
		t.Fatal("Trained threshold wrong")
	}
}

func TestPredictorUsesSizeRegression(t *testing.T) {
	p := NewPredictor(time.Second)
	// Duration proportional to size: 1 s per MB.
	for mb := 1; mb <= 10; mb++ {
		p.Observe("scale", int64(mb)*1e6, time.Duration(mb)*time.Second)
	}
	got := p.Predict("scale", 50e6)
	if math.Abs(got.Seconds()-50) > 1 {
		t.Fatalf("Predict(50MB) = %v, want ~50s", got)
	}
}

func TestPredictorIgnoresNegativeRegression(t *testing.T) {
	p := NewPredictor(time.Second)
	// Steeply decreasing: extrapolation goes negative; must fall back.
	p.Observe("odd", 1e6, 10*time.Second)
	p.Observe("odd", 2e6, 5*time.Second)
	p.Observe("odd", 3e6, 1*time.Second)
	got := p.Predict("odd", 100e6)
	if got <= 0 {
		t.Fatalf("Predict returned non-positive duration %v", got)
	}
}

// Property: LinReg exactly interpolates any two distinct points.
func TestLinRegTwoPointInterpolation(t *testing.T) {
	f := func(x1f, y1f, x2f, y2f int16) bool {
		x1, y1 := float64(x1f), float64(y1f)
		x2, y2 := float64(x2f), float64(y2f)
		if x1 == x2 {
			return true
		}
		l := &LinReg{}
		l.Observe(x1, y1)
		l.Observe(x2, y2)
		return math.Abs(l.Predict(x1)-y1) < 1e-6 && math.Abs(l.Predict(x2)-y2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: EWMA stays within [min, max] of observed samples.
func TestEWMABounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEWMA(0.4)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			v := rng.Float64() * 1000
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			e.Observe(v)
			got, _ := e.Value()
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
