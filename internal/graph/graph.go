// Package graph implements the directed acyclic task graph ("a workflow can
// be graphically described as a graph, where the nodes denote the
// computations and the edges data or control dependencies", paper Sec. II-A).
//
// The access processor (internal/deps) produces edges; the runtime and the
// simulator consume topological structure, level widths (available
// parallelism) and the critical path (lower bound on makespan).
package graph

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrCycle is returned when an operation requires a DAG but the graph has a
// cycle.
var ErrCycle = errors.New("graph: cycle detected")

// DAG is a directed graph keyed by int64 node IDs. The zero value is not
// usable; construct with New. DAG is not safe for concurrent mutation.
type DAG struct {
	nodes map[int64]struct{}
	succ  map[int64][]int64
	pred  map[int64][]int64
	edges map[[2]int64]struct{}
}

// New returns an empty graph.
func New() *DAG {
	return &DAG{
		nodes: make(map[int64]struct{}),
		succ:  make(map[int64][]int64),
		pred:  make(map[int64][]int64),
		edges: make(map[[2]int64]struct{}),
	}
}

// AddNode inserts a node; adding an existing node is a no-op.
func (g *DAG) AddNode(id int64) {
	g.nodes[id] = struct{}{}
}

// HasNode reports whether id is in the graph.
func (g *DAG) HasNode(id int64) bool {
	_, ok := g.nodes[id]
	return ok
}

// AddEdge inserts a directed edge from → to, creating missing endpoints.
// Duplicate edges and self-loops are ignored (a self-loop would make the
// graph cyclic; dependency registration never produces one).
func (g *DAG) AddEdge(from, to int64) {
	if from == to {
		return
	}
	key := [2]int64{from, to}
	if _, dup := g.edges[key]; dup {
		return
	}
	g.AddNode(from)
	g.AddNode(to)
	g.edges[key] = struct{}{}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
}

// HasEdge reports whether the edge from → to exists.
func (g *DAG) HasEdge(from, to int64) bool {
	_, ok := g.edges[[2]int64{from, to}]
	return ok
}

// Len returns the number of nodes.
func (g *DAG) Len() int { return len(g.nodes) }

// EdgeCount returns the number of edges.
func (g *DAG) EdgeCount() int { return len(g.edges) }

// Successors returns a copy of the out-neighbours of id.
func (g *DAG) Successors(id int64) []int64 {
	out := make([]int64, len(g.succ[id]))
	copy(out, g.succ[id])
	return out
}

// Predecessors returns a copy of the in-neighbours of id.
func (g *DAG) Predecessors(id int64) []int64 {
	out := make([]int64, len(g.pred[id]))
	copy(out, g.pred[id])
	return out
}

// InDegree returns the number of incoming edges of id.
func (g *DAG) InDegree(id int64) int { return len(g.pred[id]) }

// OutDegree returns the number of outgoing edges of id.
func (g *DAG) OutDegree(id int64) int { return len(g.succ[id]) }

// Roots returns the nodes with no predecessors, sorted by ID.
func (g *DAG) Roots() []int64 {
	var roots []int64
	for id := range g.nodes {
		if len(g.pred[id]) == 0 {
			roots = append(roots, id)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	return roots
}

// Leaves returns the nodes with no successors, sorted by ID.
func (g *DAG) Leaves() []int64 {
	var leaves []int64
	for id := range g.nodes {
		if len(g.succ[id]) == 0 {
			leaves = append(leaves, id)
		}
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	return leaves
}

// TopoOrder returns a deterministic topological ordering (Kahn's algorithm,
// smallest ID first among ready nodes) or ErrCycle.
func (g *DAG) TopoOrder() ([]int64, error) {
	indeg := make(map[int64]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.pred[id])
	}
	ready := g.Roots()
	order := make([]int64, 0, len(g.nodes))
	for len(ready) > 0 {
		// Pop smallest for determinism.
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var unlocked []int64
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				unlocked = append(unlocked, s)
			}
		}
		if len(unlocked) > 0 {
			ready = append(ready, unlocked...)
			sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		}
	}
	if len(order) != len(g.nodes) {
		return nil, ErrCycle
	}
	return order, nil
}

// HasCycle reports whether the graph contains a cycle.
func (g *DAG) HasCycle() bool {
	_, err := g.TopoOrder()
	return err != nil
}

// Levels partitions nodes into dependency levels: level 0 holds the roots,
// level i+1 the nodes all of whose predecessors sit at levels ≤ i with at
// least one at level i. The slice of level widths is the workflow's
// parallelism profile. Returns ErrCycle on cyclic graphs.
func (g *DAG) Levels() ([][]int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	level := make(map[int64]int, len(order))
	maxLevel := 0
	for _, id := range order {
		l := 0
		for _, p := range g.pred[id] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[id] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]int64, maxLevel+1)
	for _, id := range order {
		out[level[id]] = append(out[level[id]], id)
	}
	return out, nil
}

// CriticalPath returns the longest weighted path through the DAG — the lower
// bound on makespan with unlimited resources — and the node sequence
// achieving it. Weights are per-node costs; missing nodes weigh zero.
func (g *DAG) CriticalPath(weight map[int64]time.Duration) (time.Duration, []int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, nil, err
	}
	dist := make(map[int64]time.Duration, len(order))
	prev := make(map[int64]int64, len(order))
	var bestEnd int64
	var best time.Duration = -1
	for _, id := range order {
		d := weight[id]
		for _, p := range g.pred[id] {
			if cand := dist[p] + weight[id]; cand > d {
				d = cand
				prev[id] = p
			} else if _, seen := prev[id]; !seen && len(g.pred[id]) > 0 {
				// keep deterministic predecessor for equal paths
				if dist[p]+weight[id] == d {
					prev[id] = p
				}
			}
		}
		dist[id] = d
		if d > best || (d == best && id < bestEnd) {
			best, bestEnd = d, id
		}
	}
	if best < 0 {
		return 0, nil, nil
	}
	// Reconstruct path.
	var path []int64
	for id := bestEnd; ; {
		path = append(path, id)
		p, ok := prev[id]
		if !ok {
			break
		}
		id = p
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path, nil
}

// TransitiveClosureSize returns, for the given node, the number of
// descendants (nodes reachable through successor edges). Useful as a
// priority heuristic: tasks that unlock more work schedule first.
func (g *DAG) TransitiveClosureSize(id int64) int {
	seen := make(map[int64]struct{})
	stack := append([]int64(nil), g.succ[id]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		stack = append(stack, g.succ[n]...)
	}
	return len(seen)
}

// String summarises the graph.
func (g *DAG) String() string {
	return fmt.Sprintf("dag{nodes=%d edges=%d}", len(g.nodes), len(g.edges))
}
