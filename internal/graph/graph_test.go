package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func diamond() *DAG {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	return g
}

func TestAddEdgeCreatesNodes(t *testing.T) {
	g := New()
	g.AddEdge(10, 20)
	if !g.HasNode(10) || !g.HasNode(20) {
		t.Fatal("AddEdge did not create endpoints")
	}
	if !g.HasEdge(10, 20) || g.HasEdge(20, 10) {
		t.Fatal("edge direction wrong")
	}
}

func TestDuplicateEdgesIgnored(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 2)
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if d := g.InDegree(2); d != 1 {
		t.Fatalf("InDegree(2) = %d, want 1", d)
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.AddEdge(1, 1)
	if g.EdgeCount() != 0 {
		t.Fatal("self-loop was stored")
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g := diamond()
	if r := g.Roots(); len(r) != 1 || r[0] != 1 {
		t.Fatalf("Roots = %v, want [1]", r)
	}
	if l := g.Leaves(); len(l) != 1 || l[0] != 4 {
		t.Fatalf("Leaves = %v, want [4]", l)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	g := diamond()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int64]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range [][2]int64{{1, 2}, {1, 3}, {2, 4}, {3, 4}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Fatalf("order %v violates edge %v", order, e)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	if !g.HasCycle() {
		t.Fatal("cycle not detected")
	}
	if _, err := g.TopoOrder(); !errors.Is(err, ErrCycle) {
		t.Fatalf("TopoOrder err = %v, want ErrCycle", err)
	}
	if _, err := g.Levels(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Levels err = %v, want ErrCycle", err)
	}
}

func TestLevels(t *testing.T) {
	g := diamond()
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %v, want 3 levels", levels)
	}
	if len(levels[1]) != 2 {
		t.Fatalf("middle level = %v, want width 2", levels[1])
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamond()
	w := map[int64]time.Duration{
		1: 1 * time.Second,
		2: 5 * time.Second,
		3: 1 * time.Second,
		4: 1 * time.Second,
	}
	d, path, err := g.CriticalPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7*time.Second {
		t.Fatalf("critical path = %v, want 7s", d)
	}
	want := []int64{1, 2, 4}
	if len(path) != 3 {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := New()
	d, path, err := g.CriticalPath(nil)
	if err != nil || d != 0 || path != nil {
		t.Fatalf("empty graph: %v %v %v", d, path, err)
	}
}

func TestTransitiveClosureSize(t *testing.T) {
	g := diamond()
	if n := g.TransitiveClosureSize(1); n != 3 {
		t.Fatalf("closure(1) = %d, want 3", n)
	}
	if n := g.TransitiveClosureSize(4); n != 0 {
		t.Fatalf("closure(4) = %d, want 0", n)
	}
}

func TestChainLevels(t *testing.T) {
	g := New()
	for i := int64(0); i < 99; i++ {
		g.AddEdge(i, i+1)
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 100 {
		t.Fatalf("chain of 100 has %d levels", len(levels))
	}
}

// Property: a randomly generated graph with edges only from lower to higher
// IDs is always acyclic, and its topological order contains every node once.
func TestRandomForwardGraphsAreAcyclic(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%50) + 2
		g := New()
		for i := 0; i < size; i++ {
			g.AddNode(int64(i))
		}
		for i := 0; i < size*2; i++ {
			a := rng.Intn(size - 1)
			b := a + 1 + rng.Intn(size-a-1)
			g.AddEdge(int64(a), int64(b))
		}
		if g.HasCycle() {
			return false
		}
		order, err := g.TopoOrder()
		if err != nil || len(order) != size {
			return false
		}
		seen := make(map[int64]bool)
		for _, id := range order {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: critical path length is at least the max single weight and at
// most the sum of all weights.
func TestCriticalPathBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(30) + 2
		g := New()
		w := make(map[int64]time.Duration, size)
		var total, maxw time.Duration
		for i := 0; i < size; i++ {
			g.AddNode(int64(i))
			d := time.Duration(rng.Intn(1000)+1) * time.Millisecond
			w[int64(i)] = d
			total += d
			if d > maxw {
				maxw = d
			}
		}
		for i := 0; i < size; i++ {
			a := rng.Intn(size - 1)
			b := a + 1 + rng.Intn(size-a-1)
			g.AddEdge(int64(a), int64(b))
		}
		cp, _, err := g.CriticalPath(w)
		if err != nil {
			return false
		}
		return cp >= maxw && cp <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
