package obsv

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentAdds(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test counter", "")
	var wg sync.WaitGroup
	const workers, per = 32, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestNilInstrumentsDiscard(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(5)
	g.Add(-2)
	h.Observe(1.5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var s *Sampler
	s.Sample(0)
	s.Stop()
	if err := s.WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}
	m := NewEngineMetrics(nil)
	m.Parked.Add(1)
	m.Waves.Inc()
	m.WaveSize.Observe(3)
	m.ReadyDepth("sig").Add(1)
	km := NewCkptMetrics(nil)
	km.Saves.Inc()
	km.CaptureSeconds.Observe(0.1)
}

// TestHistogramBucketEdges pins the le semantics at exact bucket bounds:
// an observation equal to a bound lands in that bound's bucket, epsilon
// above it spills to the next, and values past the last bound land in
// +Inf. (Satellite: histogram bucket edge values.)
func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "test", "", []float64{1, 2, 4})
	h.Observe(1)                    // == bound 1 → bucket 0
	h.Observe(math.Nextafter(1, 2)) // just above 1 → bucket 1
	h.Observe(2)                    // == bound 2 → bucket 1
	h.Observe(4)                    // == last bound → bucket 2
	h.Observe(math.Nextafter(4, 5)) // just above last bound → +Inf
	h.Observe(math.Inf(1))          // +Inf → +Inf bucket
	h.Observe(0)                    // below first bound → bucket 0
	h.Observe(math.Nextafter(2, 1)) // just below 2 → bucket 1
	want := []int64{2, 3, 1, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
}

func TestHistogramSumConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_sum", "test", "", []float64{10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := h.Sum(), 8*500*0.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestLabelsCanonicalOrder(t *testing.T) {
	a := Labels("tier", "hpc", "sig", "c4")
	b := Labels("sig", "c4", "tier", "hpc")
	if a != b {
		t.Fatalf("label order not canonical: %q vs %q", a, b)
	}
	if want := `{sig="c4",tier="hpc"}`; a != want {
		t.Fatalf("labels = %q, want %q", a, want)
	}
	if got := Labels("k", "a\"b\\c\nd"); !strings.Contains(got, `a\"b\\c\nd`) {
		t.Fatalf("escaping broken: %q", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "Jobs run.", Labels("kind", "sim")).Add(3)
	reg.Gauge("depth", "Queue depth.", "").Set(7)
	h := reg.Histogram("lat_seconds", "Latency.", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{kind="sim"} 3`,
		"# TYPE depth gauge",
		"depth 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramLabelledBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d_seconds", "test", Labels("sig", "c4"), []float64{1})
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `d_seconds_bucket{sig="c4",le="1"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("missing %q:\n%s", want, buf.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a different kind must panic")
		}
	}()
	reg.Gauge("x", "", "")
}

func TestSamplerDeterministicText(t *testing.T) {
	run := func() string {
		reg := NewRegistry()
		c := reg.Counter("b_total", "", "")
		g := reg.Gauge("a_depth", "", "")
		s := NewSampler(reg)
		for i := 1; i <= 3; i++ {
			c.Add(int64(i))
			g.Set(int64(10 * i))
			s.Sample(time.Duration(i) * time.Second)
		}
		var buf bytes.Buffer
		if err := s.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("sampler text not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasPrefix(a, "a_depth 1s 10\n") {
		t.Fatalf("series not name-sorted / formatted:\n%s", a)
	}
	if !strings.Contains(a, "b_total 3s 6\n") {
		t.Fatalf("missing cumulative counter point:\n%s", a)
	}
}

func TestSamplerWallTicker(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g", "", "").Set(1)
	s := NewSampler(reg)
	s.Start(time.Now(), 5*time.Millisecond)
	deadline := time.After(2 * time.Second)
	for {
		if len(s.Series()) > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("wall ticker never sampled")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.Stop()
	n := len(s.Series()[0].Points)
	time.Sleep(15 * time.Millisecond)
	if got := len(s.Series()[0].Points); got != n {
		t.Fatalf("sampler kept sampling after Stop: %d -> %d", n, got)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "", "").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "up_total 1") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestEngineMetricsReadyDepthCached(t *testing.T) {
	reg := NewRegistry()
	m := NewEngineMetrics(reg)
	g1 := m.ReadyDepth("c4")
	g2 := m.ReadyDepth("c4")
	if g1 != g2 {
		t.Fatal("ReadyDepth must cache per-signature gauges")
	}
	g1.Add(3)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `flowgo_ready_depth{sig="c4"} 3`; !strings.Contains(buf.String(), want) {
		t.Fatalf("missing %q:\n%s", want, buf.String())
	}
}
