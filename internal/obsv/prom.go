package obsv

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, cumulative le-labelled
// histogram buckets with _sum and _count. Families are name-sorted and
// series label-sorted, so output is deterministic for a fixed registry
// state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(f.help)
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.snapshot() {
			switch f.kind {
			case KindCounter:
				writeSample(&b, f.name, s.labels, float64(s.c.Value()))
			case KindGauge:
				writeSample(&b, f.name, s.labels, float64(s.g.Value()))
			case KindHistogram:
				writeHistogram(&b, f.name, s.labels, s.h)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one `name{labels} value` line.
func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// writeHistogram emits the cumulative bucket series plus _sum/_count.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	counts := h.BucketCounts()
	bounds := h.Bounds()
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		writeSample(b, name+"_bucket", withLabel(labels, "le", formatValue(bound)), float64(cum))
	}
	cum += counts[len(counts)-1]
	writeSample(b, name+"_bucket", withLabel(labels, "le", "+Inf"), float64(cum))
	writeSample(b, name+"_sum", labels, h.Sum())
	writeSample(b, name+"_count", labels, float64(cum))
}

// withLabel appends one label pair to an already-rendered suffix.
func withLabel(labels, k, v string) string {
	pair := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// formatValue renders a float the way Prometheus expects: integral
// values without an exponent or trailing zeros.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry at any path.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux returns an http.ServeMux with /metrics bound to the registry
// and the net/http/pprof endpoints mounted under /debug/pprof/ — one
// mux serves both scraping and live profiling, replacing file-only
// profile capture.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves NewMux(r) in a background goroutine.
// It returns the bound address (useful with ":0") and a shutdown func.
func Serve(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
