package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point is one sampled value of one series.
type Point struct {
	At    time.Duration `json:"at_ns"` // offset from run start (virtual or wall)
	Value float64       `json:"value"`
}

// TimeSeries is the sampled history of one metric sample (a family name
// plus rendered label suffix).
type TimeSeries struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Sampler snapshots a Registry into in-memory time-series. The caller
// supplies the clock discipline: in the simulator, arm Sample on the
// virtual clock (deterministic, byte-identical series run to run); in
// the live runtime, Start a wall ticker. A nil *Sampler ignores all
// calls, so backends wire it unconditionally.
type Sampler struct {
	reg *Registry

	mu     sync.Mutex
	series map[string]*TimeSeries
	names  []string // sorted; rebuilt lazily on encode
	dirty  bool
	// order mirrors the registry's Visit order, so steady-state samples
	// append by position instead of hashing every sample name. Rebuilt
	// in place whenever the visit order grows a new sample.
	order []*TimeSeries

	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a sampler over reg.
func NewSampler(reg *Registry) *Sampler {
	return &Sampler{reg: reg, series: make(map[string]*TimeSeries)}
}

// Sample takes one snapshot of every registry sample, stamped at. Call
// it from the owning clock: the sim's event loop or the live ticker.
func (s *Sampler) Sample(at time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	s.reg.Visit(func(name string, v float64) {
		// Fast path: the visit order is stable between samples, so the
		// cached position is the right series (same interned name from the
		// registry's visit cache — the comparison is pointer-equal).
		if i < len(s.order) && s.order[i].Name == name {
			ts := s.order[i]
			ts.Points = append(ts.Points, Point{At: at, Value: v})
			i++
			return
		}
		// A new sample appeared (or the order shifted): splice it into the
		// order cache at this position and fall back to the name map.
		ts, ok := s.series[name]
		if !ok {
			ts = &TimeSeries{Name: name}
			s.series[name] = ts
			s.dirty = true
		}
		s.order = append(s.order[:i], append([]*TimeSeries{ts}, s.order[i:]...)...)
		ts.Points = append(ts.Points, Point{At: at, Value: v})
		i++
	})
}

// Start arms a wall-clock ticker that samples every interval until Stop.
// Samples are stamped relative to epoch so live series share the
// engine's time base. Start is for the live runtime only — the sim
// samples on its virtual clock instead.
func (s *Sampler) Start(epoch time.Time, every time.Duration) {
	if s == nil || every <= 0 {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				s.Sample(now.Sub(epoch))
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts a Start-ed ticker and waits for it to exit. Safe to call
// when Start was never called.
func (s *Sampler) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

// sortedLocked returns the series in name order. Caller holds s.mu.
func (s *Sampler) sortedLocked() []*TimeSeries {
	if s.dirty {
		s.names = s.names[:0]
		for n := range s.series {
			s.names = append(s.names, n)
		}
		sort.Strings(s.names)
		s.dirty = false
	}
	out := make([]*TimeSeries, 0, len(s.names))
	for _, n := range s.names {
		out = append(out, s.series[n])
	}
	return out
}

// Series returns a deep copy of every sampled series in name order.
func (s *Sampler) Series() []TimeSeries {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TimeSeries, 0, len(s.series))
	for _, ts := range s.sortedLocked() {
		out = append(out, TimeSeries{Name: ts.Name, Points: append([]Point(nil), ts.Points...)})
	}
	return out
}

// WriteText writes the sampled series in a stable line format:
//
//	<name> <at-as-duration> <value>
//
// Series are name-sorted and points chronological, so two deterministic
// runs produce byte-identical files — the CI determinism smoke diffs
// exactly this output.
func (s *Sampler) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	for _, ts := range s.sortedLocked() {
		for _, p := range ts.Points {
			b.WriteString(ts.Name)
			b.WriteByte(' ')
			b.WriteString(p.At.String())
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(p.Value, 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// EncodeJSON writes the series as a deterministic JSON array (series
// name-sorted, points chronological).
func (s *Sampler) EncodeJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Series())
}

// Summary returns a one-line digest (series count, total points) for
// progress logs.
func (s *Sampler) Summary() string {
	if s == nil {
		return "sampler off"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	points := 0
	for _, ts := range s.series {
		points += len(ts.Points)
	}
	return fmt.Sprintf("%d series, %d points", len(s.series), points)
}
