package obsv

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// These tests are race-detector food for the lock-cheap paths: many
// writers on sharded counters and histograms, Visit walking the
// registry while writers mutate it, and instrument resolution racing
// sampling. They assert exact totals where the API promises them
// (counters and histogram counts are conserved — sharding loses
// nothing) and run under -race in CI.

func TestCounterConcurrentExactTotal(t *testing.T) {
	const goroutines, perG = 16, 10000
	r := NewRegistry()
	c := r.Counter("churn_total", "test", "")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: %d, want %d", got, goroutines*perG)
	}
}

func TestHistogramConcurrentConserved(t *testing.T) {
	const goroutines, perG = 8, 5000
	r := NewRegistry()
	h := r.Histogram("lat", "test", "", ExpBuckets(0.001, 2, 10))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g + 1)) // per-goroutine constant: exact expected sum
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram lost observations: %d, want %d", got, goroutines*perG)
	}
	var bucketTotal int64
	for _, n := range h.BucketCounts() {
		bucketTotal += n
	}
	if bucketTotal != goroutines*perG {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, goroutines*perG)
	}
	// Sum is CAS-accumulated: every observation lands exactly once.
	want := float64(perG) * float64(goroutines*(goroutines+1)) / 2
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}

// TestVisitDuringWrites samples the registry continuously while writers
// hammer every instrument kind and new series appear mid-flight. Visit
// must never see a torn name, a vanished instrument, or a decreasing
// counter sample.
func TestVisitDuringWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "test", "")
	g := r.Gauge("depth", "test", "")
	h := r.Histogram("wait", "test", "", []float64{1, 10, 100})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			g.Set(int64(i % 64))
			h.Observe(float64(i % 200))
		}
	}()
	go func() { // registration racing the visit cache rebuild
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Counter("ops_total", "test", Labels("lane", fmt.Sprintf("l%d", i%32))).Inc()
		}
	}()
	go func() {
		defer wg.Done()
		last := map[string]float64{}
		for i := 0; i < 2000; i++ {
			r.Visit(func(sample string, v float64) {
				if sample == "" {
					t.Error("empty sample name")
				}
				if sample == "ops_total" || sample == "wait_count" {
					if prev, ok := last[sample]; ok && v < prev {
						t.Errorf("%s went backwards: %v -> %v", sample, prev, v)
					}
					last[sample] = v
				}
			})
		}
		close(stop)
	}()
	wg.Wait()
}

// TestRegistryConcurrentResolve resolves the same and different series
// from many goroutines at once; every resolver of one (name, labels)
// pair must get the same instrument, and the family set must end
// consistent.
func TestRegistryConcurrentResolve(t *testing.T) {
	r := NewRegistry()
	const goroutines = 12
	ptrs := make([]*Counter, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ptrs[g] = r.Counter("shared_total", "test", Labels("k", "v"))
				r.Gauge(fmt.Sprintf("own_%d", g), "test", "").Set(int64(i))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if ptrs[g] != ptrs[0] {
			t.Fatalf("goroutine %d resolved a different instrument for the same series", g)
		}
	}
	ptrs[0].Inc()
	found := false
	r.Visit(func(sample string, v float64) {
		if sample == `shared_total{k="v"}` {
			found = true
			if v != 1 {
				t.Fatalf("shared counter = %v, want 1", v)
			}
		}
	})
	if !found {
		t.Fatal("shared series missing from Visit walk")
	}
}
