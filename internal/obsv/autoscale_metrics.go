package obsv

// AdmissionMetrics bundles the admission controller's instruments,
// following the EngineMetrics pattern: nil instruments discard writes,
// so an inert bundle (NewAdmissionMetrics(nil)) costs nothing on the
// submit path.
type AdmissionMetrics struct {
	// Admitted / Queued / Rejected count Submit outcomes; Released
	// counts queued submissions later promoted by a freed quota slot.
	Admitted *Counter
	Queued   *Counter
	Rejected *Counter
	Released *Counter
	// InFlight and QueuedNow track the controller's current occupancy
	// across all tenants.
	InFlight  *Gauge
	QueuedNow *Gauge
}

// NewAdmissionMetrics registers the admission instrument set on reg.
// Pass nil reg for an inert bundle.
func NewAdmissionMetrics(reg *Registry) *AdmissionMetrics {
	if reg == nil {
		return &AdmissionMetrics{}
	}
	return &AdmissionMetrics{
		Admitted:  reg.Counter("flowgo_admission_admitted_total", "Submissions admitted within quota.", ""),
		Queued:    reg.Counter("flowgo_admission_queued_total", "Submissions queued for a freed quota slot.", ""),
		Rejected:  reg.Counter("flowgo_admission_rejected_total", "Submissions rejected (queue bound exceeded).", ""),
		Released:  reg.Counter("flowgo_admission_released_total", "Queued submissions promoted to admitted.", ""),
		InFlight:  reg.Gauge("flowgo_admission_in_flight", "Admitted-but-uncompleted tasks across tenants.", ""),
		QueuedNow: reg.Gauge("flowgo_admission_queue_depth", "Queued submissions across tenants.", ""),
	}
}

// AutoscaleMetrics bundles the cost-aware autoscaler's decision
// counters. Same inert-when-nil contract as the other bundles.
type AutoscaleMetrics struct {
	Grows    *Counter
	Shrinks  *Counter
	Reclaims *Counter
	Holds    *Counter
}

// NewAutoscaleMetrics registers the autoscaler instrument set on reg.
// Pass nil reg for an inert bundle.
func NewAutoscaleMetrics(reg *Registry) *AutoscaleMetrics {
	if reg == nil {
		return &AutoscaleMetrics{}
	}
	return &AutoscaleMetrics{
		Grows:    reg.Counter("flowgo_autoscale_decisions_total", "Autoscale decisions by kind.", Labels("kind", "grow")),
		Shrinks:  reg.Counter("flowgo_autoscale_decisions_total", "Autoscale decisions by kind.", Labels("kind", "shrink")),
		Reclaims: reg.Counter("flowgo_autoscale_decisions_total", "Autoscale decisions by kind.", Labels("kind", "reclaim")),
		Holds:    reg.Counter("flowgo_autoscale_decisions_total", "Autoscale decisions by kind.", Labels("kind", "hold")),
	}
}
