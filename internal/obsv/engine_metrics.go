package obsv

import "sync"

// EngineMetrics bundles the engine's instruments, pre-resolved so the
// scheduler hot paths touch only atomic words. When no registry is
// wired, NewEngineMetrics(nil) returns an inert bundle: every instrument
// pointer is nil and nil instruments discard writes, so the engine
// carries no enable checks on its hot paths.
type EngineMetrics struct {
	reg *Registry

	// Ready-queue shape. ReadyDepth is per constraint signature
	// (resolved lazily as buckets appear); Parked counts tasks diverted
	// by the availability policy.
	Parked *Gauge

	// Placement waves.
	Waves       *Counter
	WaveSize    *Histogram // tasks placed per wave
	WaveSeconds *Histogram // wave duration on the engine clock

	// Placement declines by reason (no-capacity / declined / unavailable).
	DeclineNoCapacity  *Counter
	DeclineDeclined    *Counter
	DeclineUnavailable *Counter

	// Work stealing.
	StealAttempts  *Counter
	StealSuccesses *Counter

	// Availability policy churn.
	Parks      *Counter
	Wakes      *Counter
	Recomputes *Counter

	// Data movement.
	Transfers     *Counter
	TransferBytes *Counter
	FetchSeconds  *Histogram // input staging latency on the engine clock

	// Task lifecycle.
	Launched  *Counter
	Completed *Counter
	Failed    *Counter

	mu    sync.Mutex
	depth map[string]*Gauge // per-signature ready depth
}

// NewEngineMetrics registers the engine instrument set on reg and
// returns the bundle. Pass nil reg to get an inert bundle (metrics off).
func NewEngineMetrics(reg *Registry) *EngineMetrics {
	if reg == nil {
		return &EngineMetrics{depth: make(map[string]*Gauge)}
	}
	waveBuckets := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	secBuckets := ExpBuckets(1e-6, 4, 12) // 1µs .. ~4.2s
	m := &EngineMetrics{
		reg:    reg,
		Parked: reg.Gauge("flowgo_parked_tasks", "Tasks parked by the availability policy.", ""),

		Waves:       reg.Counter("flowgo_placement_waves_total", "Placement waves run.", ""),
		WaveSize:    reg.Histogram("flowgo_placement_wave_size", "Tasks placed per wave.", "", waveBuckets),
		WaveSeconds: reg.Histogram("flowgo_placement_wave_seconds", "Wave duration on the engine clock.", "", secBuckets),

		DeclineNoCapacity:  reg.Counter("flowgo_placement_declines_total", "Placement declines by reason.", Labels("reason", "no_capacity")),
		DeclineDeclined:    reg.Counter("flowgo_placement_declines_total", "Placement declines by reason.", Labels("reason", "declined")),
		DeclineUnavailable: reg.Counter("flowgo_placement_declines_total", "Placement declines by reason.", Labels("reason", "unavailable")),

		StealAttempts:  reg.Counter("flowgo_steal_attempts_total", "Work-steal attempts.", ""),
		StealSuccesses: reg.Counter("flowgo_steal_successes_total", "Work-steal successes.", ""),

		Parks:      reg.Counter("flowgo_avail_parks_total", "Tasks parked for unavailable inputs.", ""),
		Wakes:      reg.Counter("flowgo_avail_wakes_total", "Parked tasks woken by heals.", ""),
		Recomputes: reg.Counter("flowgo_avail_recomputes_total", "Availability recompute decisions.", ""),

		Transfers:     reg.Counter("flowgo_transfers_total", "Input data moves.", ""),
		TransferBytes: reg.Counter("flowgo_transfer_bytes_total", "Bytes moved staging inputs.", ""),
		FetchSeconds:  reg.Histogram("flowgo_fetch_seconds", "Input staging latency on the engine clock.", "", secBuckets),

		Launched:  reg.Counter("flowgo_tasks_launched_total", "Tasks launched.", ""),
		Completed: reg.Counter("flowgo_tasks_completed_total", "Tasks completed.", ""),
		Failed:    reg.Counter("flowgo_tasks_failed_total", "Task executions that failed.", ""),

		depth: make(map[string]*Gauge),
	}
	return m
}

// ReadyDepth resolves the ready-queue depth gauge for one constraint
// signature. The engine calls this once per bucket creation and stores
// the pointer on the bucket; increments never take this path. Nil-safe
// on both the bundle and an inert (registry-less) bundle.
func (m *EngineMetrics) ReadyDepth(sig string) *Gauge {
	if m == nil || m.reg == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok := m.depth[sig]; ok {
		return g
	}
	g := m.reg.Gauge("flowgo_ready_depth", "Ready-queue depth per constraint signature.", Labels("sig", sig))
	m.depth[sig] = g
	return g
}

// CkptMetrics bundles the checkpointer's instruments. Capture time is
// measured on the wall clock even in the simulator — serialization cost
// is real work — so these series are the documented exception to sim
// determinism (the CI determinism smoke runs checkpoint-free).
type CkptMetrics struct {
	Saves          *Counter
	DeltaSaves     *Counter
	CaptureSeconds *Histogram
	DirtyRecords   *Histogram
}

// NewCkptMetrics registers the checkpoint instrument set on reg. Pass
// nil reg for an inert bundle.
func NewCkptMetrics(reg *Registry) *CkptMetrics {
	if reg == nil {
		return &CkptMetrics{}
	}
	return &CkptMetrics{
		Saves:          reg.Counter("flowgo_checkpoint_saves_total", "Checkpoints captured (base + delta).", ""),
		DeltaSaves:     reg.Counter("flowgo_checkpoint_delta_saves_total", "Delta checkpoints captured.", ""),
		CaptureSeconds: reg.Histogram("flowgo_checkpoint_capture_seconds", "Checkpoint capture wall time.", "", ExpBuckets(1e-5, 4, 10)),
		DirtyRecords:   reg.Histogram("flowgo_checkpoint_dirty_records", "Dirty records per delta capture.", "", ExpBuckets(1, 4, 12)),
	}
}
