// Package obsv is the runtime observability layer: a lock-cheap metrics
// registry (sharded counters, gauges, fixed-bucket histograms) sampled
// into in-memory time-series on either clock — virtual time in the
// simulator, wall time in the live runtime — and exported as Prometheus
// text, Chrome trace-event JSON (via internal/trace) or a report section.
//
// The paper observes its runtime post hoc, through Paraver traces of
// finished runs; this package closes the same gap for the reproduction's
// live half: queue depth, steal rate, park/wake churn and checkpoint cost
// become continuous signals rather than end-of-run counters, which is
// exactly the input the metrics-driven autoscaler work needs.
//
// Design constraints, in order:
//
//   - Hot-path increments are single atomic adds on pre-resolved
//     instrument pointers: no map lookups, no label rendering, no
//     allocation. Callers resolve instruments once (at registration or
//     bucket-creation time) and hold the pointer.
//   - Counters are sharded across padded cache lines so concurrent
//     completion storms on the live runtime do not serialise on one hot
//     word; reads sum the shards (scrape-time cost, not hot-path cost).
//   - Everything observed through the engine's Clock is deterministic on
//     the simulator: identical runs produce byte-identical sampled
//     series. Wall-time observations (checkpoint capture cost) are the
//     documented exception.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// numShards is the counter shard count (power of two). 16 shards cover
// the live runtime's worker-goroutine concurrency without making
// scrape-time summation noticeable.
const numShards = 16

// cell is one counter shard, padded to its own cache line so shards
// written by different cores do not false-share.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// shardIdx picks a shard for the calling goroutine. Goroutine stacks live
// in distinct allocations, so the address of a stack byte — shifted past
// frame-local variation — spreads concurrent goroutines across shards.
// The distribution only affects contention, never correctness: reads sum
// every shard.
func shardIdx() uint64 {
	var b byte
	return uint64(uintptr(unsafe.Pointer(&b))>>10) & (numShards - 1)
}

// Counter is a monotonically increasing sharded counter. The zero value
// is unusable; obtain counters from a Registry. A nil *Counter discards
// all writes, so call sites need no guards.
type Counter struct {
	cells [numShards]cell
}

// Add increments the counter by d (a zero-alloc single atomic add).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.cells[shardIdx()].n.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. Under concurrent writers the sum is a moment's
// snapshot, not a linearisation point — fine for monitoring.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous value (queue depth, parked count). Gauges are
// typically mutated under the owner's own lock (the engine's mutex), so
// one atomic word suffices. A nil *Gauge discards all writes.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds
// (Prometheus "le" semantics: an observation lands in the first bucket
// whose bound is >= the value); the implicit +Inf bucket catches the
// rest. Bounds are fixed at registration, so Observe is a binary search
// plus two atomic adds — zero allocation. A nil *Histogram discards all
// observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram validates and copies the bounds (strictly increasing).
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v. Bound sets are small (≤ ~12 in this repo), so a
	// linear scan beats the sort.SearchFloat64s call on the hot path —
	// especially for the common small observations that land early.
	i := 0
	for i < len(h.bounds) && h.bounds[i] < v {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	if v == 0 {
		return // sum += 0 is a no-op; skip the CAS
	}
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the Prometheus base
// unit, so exported histograms compare across tools.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket observation counts, non-cumulative,
// with the +Inf bucket last (len(Bounds())+1 entries).
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor — the usual latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = start + width*float64(i)
	}
	return out
}

// Kind classifies a metric family for export.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one labelled instrument inside a family.
type series struct {
	labels string // rendered {k="v",...} suffix ("" when unlabelled)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all series of one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64      // histogram bucket bounds
	gen    *atomic.Uint64 // the owning registry's insert counter

	mu     sync.Mutex
	byKey  map[string]*series
	sorted []*series // label-sorted; rebuilt on insert
}

// get returns (creating on first use) the series for a label suffix.
func (f *family) get(labels string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[labels]; ok {
		return s
	}
	s := &series{labels: labels}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.byKey[labels] = s
	f.sorted = append(f.sorted, s)
	sort.Slice(f.sorted, func(i, j int) bool { return f.sorted[i].labels < f.sorted[j].labels })
	f.gen.Add(1)
	return s
}

// snapshot returns the label-sorted series under the family lock.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*series(nil), f.sorted...)
}

// Registry is a named collection of metric families. All methods are safe
// for concurrent use; instrument resolution (Counter/Gauge/...) is meant
// for setup paths, with the returned pointers held for the hot path.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // sorted; rebuilt on insert

	// gen counts inserts (families and series); Visit caches its
	// flattened walk keyed on it, so steady-state sampling — the sim
	// samples every virtual interval — allocates nothing.
	gen        atomic.Uint64
	vmu        sync.Mutex
	visitGen   uint64
	visitCache []visitEntry
}

// visitEntry is one pre-rendered Visit sample: the full sample name and
// where to read its value.
type visitEntry struct {
	sample string
	kind   Kind
	sum    bool // histogram: _sum (true) vs _count (false)
	s      *series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns (creating on first use) the named family. Re-use with
// a different kind panics: that is a programming error, like registering
// two metrics under one name in any metrics library.
func (r *Registry) familyFor(name, help string, kind Kind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obsv: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, bounds: bounds, gen: &r.gen, byKey: make(map[string]*series)}
	r.families[name] = f
	r.gen.Add(1)
	pos := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[pos+1:], r.names[pos:])
	r.names[pos] = name
	return f
}

// Labels renders a label suffix in a canonical order. Pass key/value
// pairs: Labels("sig", "c4", "tier", "hpc") → `{sig="c4",tier="hpc"}`.
// Resolve once and cache the instrument; never call this per increment.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obsv: Labels wants key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter resolves the named counter with an optional pre-rendered label
// suffix (use Labels). The first resolution registers the family.
func (r *Registry) Counter(name, help, labels string) *Counter {
	return r.familyFor(name, help, KindCounter, nil).get(labels).c
}

// Gauge resolves the named gauge.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	return r.familyFor(name, help, KindGauge, nil).get(labels).g
}

// Histogram resolves the named histogram. Bounds must be identical for
// every series of one family (they are fixed by the first registration).
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	return r.familyFor(name, help, KindHistogram, bounds).get(labels).h
}

// Visit walks every series in deterministic order (families by name,
// series by label suffix), calling fn with the sample name — family name
// plus label suffix — and the instrument values. Histograms visit as
// two samples, name_count and name_sum (buckets are export-only detail;
// see WritePrometheus).
func (r *Registry) Visit(fn func(sample string, v float64)) {
	// The flattened walk (sample names included) is cached keyed on the
	// insert generation: steady-state sampling rebuilds nothing and
	// allocates nothing. An insert racing the generation read only delays
	// the new sample to the next Visit.
	g := r.gen.Load()
	r.vmu.Lock()
	if r.visitCache == nil || r.visitGen != g {
		r.visitCache = r.buildVisitCache()
		r.visitGen = g
	}
	cache := r.visitCache
	r.vmu.Unlock()
	for i := range cache {
		e := &cache[i]
		switch {
		case e.kind == KindCounter:
			fn(e.sample, float64(e.s.c.Value()))
		case e.kind == KindGauge:
			fn(e.sample, float64(e.s.g.Value()))
		case e.sum:
			fn(e.sample, e.s.h.Sum())
		default:
			fn(e.sample, float64(e.s.h.Count()))
		}
	}
}

// buildVisitCache flattens every series (families by name, series by
// label suffix) into pre-rendered visit entries.
func (r *Registry) buildVisitCache() []visitEntry {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.names))
	for _, n := range r.names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()
	var out []visitEntry
	for _, f := range fams {
		for _, s := range f.snapshot() {
			switch f.kind {
			case KindCounter, KindGauge:
				out = append(out, visitEntry{sample: f.name + s.labels, kind: f.kind, s: s})
			case KindHistogram:
				out = append(out, visitEntry{sample: f.name + "_count" + s.labels, kind: f.kind, s: s})
				out = append(out, visitEntry{sample: f.name + "_sum" + s.labels, kind: f.kind, sum: true, s: s})
			}
		}
	}
	return out
}
