package workloads

import (
	"testing"
	"time"

	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
)

// runSim executes the specs on a uniform pool, which exercises the same
// registration path as the experiments (unique IDs, forward deps, no
// cycles — infra.New would fail otherwise).
func runSim(t *testing.T, specs []infra.TaskSpec, nodes int, desc resources.Description) infra.Result {
	t.Helper()
	pool := resources.NewPool()
	for i := 0; i < nodes; i++ {
		_ = pool.Add(resources.NewNode(nodeName(i), desc))
	}
	sim, err := infra.New(infra.Config{
		Pool:   pool,
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: sched.MinLoad{},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func nodeName(i int) string {
	return "n" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestGWASTaskCount(t *testing.T) {
	cfg := GWASConfig{Chromosomes: 3, ImputationsPerChrom: 5, MeanTaskSeconds: 1,
		LowMemMB: 100, HighMemMB: 200, InputFileMB: 1, Seed: 1}
	specs, stageIn := GWAS(cfg)
	if len(specs) != cfg.TaskCount() {
		t.Fatalf("generated %d tasks, TaskCount says %d", len(specs), cfg.TaskCount())
	}
	if len(stageIn) != 3 {
		t.Fatalf("stage-in files = %d, want 3", len(stageIn))
	}
}

func TestGWASRunsToCompletion(t *testing.T) {
	cfg := GWASConfig{Chromosomes: 4, ImputationsPerChrom: 8, MeanTaskSeconds: 10,
		LowMemMB: 1000, HighMemMB: 4000, HighMemFrac: 0.25, InputFileMB: 10, Seed: 2}
	specs, _ := GWAS(cfg)
	res := runSim(t, specs, 4, resources.Description{Cores: 8, MemoryMB: 32000, SpeedFactor: 1})
	if res.TasksCompleted != len(specs) {
		t.Fatalf("completed %d/%d", res.TasksCompleted, len(specs))
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestGWASStaticVsVariableMemory(t *testing.T) {
	base := GWASConfig{Chromosomes: 4, ImputationsPerChrom: 20, MeanTaskSeconds: 30,
		LowMemMB: 2000, HighMemMB: 16000, HighMemFrac: 0.2, InputFileMB: 10, Seed: 3}
	variable := base
	static := base
	static.StaticWorstCase = true

	desc := resources.Description{Cores: 16, MemoryMB: 64000, SpeedFactor: 1}
	vSpecs, _ := GWAS(variable)
	sSpecs, _ := GWAS(static)
	vRes := runSim(t, vSpecs, 2, desc)
	sRes := runSim(t, sSpecs, 2, desc)
	// Static worst-case memory admits only 4 tasks per node (64/16 GB)
	// even though 16 cores exist; variable admits far more. The paper
	// reports a ~50% improvement; require at least 25% here.
	if float64(vRes.Makespan) > 0.75*float64(sRes.Makespan) {
		t.Fatalf("variable-memory makespan %v not clearly better than static %v",
			vRes.Makespan, sRes.Makespan)
	}
}

func TestNMMBSerialVsParallelInit(t *testing.T) {
	cfg := DefaultNMMB()
	cfg.Cycles = 2
	serial := cfg
	serial.ParallelInit = false
	parallel := cfg
	parallel.ParallelInit = true

	desc := resources.MareNostrumNode
	sRes := runSim(t, NMMB(serial), 4, desc)
	pRes := runSim(t, NMMB(parallel), 4, desc)
	if pRes.Makespan >= sRes.Makespan {
		t.Fatalf("parallel init %v should beat serial %v", pRes.Makespan, sRes.Makespan)
	}
	// The win is bounded by the init stage share.
	saved := sRes.Makespan - pRes.Makespan
	expect := time.Duration(float64(cfg.InitScripts-1) * cfg.InitSeconds * float64(time.Second) * float64(cfg.Cycles))
	if saved > expect {
		t.Fatalf("saved %v exceeds the theoretical init win %v", saved, expect)
	}
}

func TestNMMBStructure(t *testing.T) {
	cfg := DefaultNMMB()
	cfg.Cycles = 1
	specs := NMMB(cfg)
	// 1 fixed + InitScripts + 1 mpi + 1 post + 1 archive
	want := 1 + cfg.InitScripts + 3
	if len(specs) != want {
		t.Fatalf("tasks = %d, want %d", len(specs), want)
	}
	classes := make(map[string]int)
	var mpi infra.TaskSpec
	for _, s := range specs {
		classes[s.Class]++
		if s.Class == "nmmb.mpi" {
			mpi = s
		}
	}
	if classes["nmmb.init"] != cfg.InitScripts {
		t.Fatalf("init tasks = %d", classes["nmmb.init"])
	}
	if mpi.Constraints.Nodes != cfg.MPINodes || mpi.Constraints.Class != resources.HPC {
		t.Fatalf("mpi constraints = %+v", mpi.Constraints)
	}
}

func TestNMMBCyclesChainThroughModelState(t *testing.T) {
	cfg := DefaultNMMB()
	cfg.Cycles = 3
	cfg.InitScripts = 2
	specs := NMMB(cfg)
	// With 3 cycles the MPI tasks must serialise (InOut on model state):
	// even with abundant resources, makespan ≥ 3 × MPI duration.
	desc := resources.MareNostrumNode
	res := runSim(t, specs, 16, desc)
	minMakespan := time.Duration(3 * cfg.MPIMinutes * float64(time.Minute))
	if res.Makespan < minMakespan {
		t.Fatalf("makespan %v < 3 MPI runs %v: cycles did not serialise", res.Makespan, minMakespan)
	}
}

func TestHeterogeneousMixDeterministic(t *testing.T) {
	a := HeterogeneousMix(50, 9)
	b := HeterogeneousMix(50, 9)
	for i := range a {
		if a[i].Class != b[i].Class || a[i].Duration != b[i].Duration {
			t.Fatal("same seed produced different mixes")
		}
	}
	classes := make(map[string]bool)
	for _, s := range a {
		classes[s.Class] = true
	}
	if len(classes) < 3 {
		t.Fatalf("mix uses only %d classes", len(classes))
	}
}

func TestEmbarrassinglyParallel(t *testing.T) {
	specs := EmbarrassinglyParallel(16, time.Second, 100)
	res := runSim(t, specs, 2, resources.Description{Cores: 8, MemoryMB: 8000, SpeedFactor: 1})
	if res.Makespan != time.Second {
		t.Fatalf("EP makespan = %v, want 1s on 16 slots", res.Makespan)
	}
}

func TestMapReduceShape(t *testing.T) {
	specs := MapReduce(8, 2, time.Second, 2*time.Second, 1e6)
	if len(specs) != 11 {
		t.Fatalf("tasks = %d, want 11", len(specs))
	}
	res := runSim(t, specs, 4, resources.Description{Cores: 4, MemoryMB: 8000, SpeedFactor: 1})
	if res.TasksCompleted != 11 {
		t.Fatalf("completed = %d", res.TasksCompleted)
	}
	// Critical path: map (1s) -> reduce (2s) -> collect (1s) = 4s.
	if res.Makespan < 4*time.Second {
		t.Fatalf("makespan %v below critical path", res.Makespan)
	}
}

func TestIterativeStencilShape(t *testing.T) {
	specs := IterativeStencil(3, 8, time.Second)
	if len(specs) != 24 {
		t.Fatalf("tasks = %d, want 24", len(specs))
	}
	// Iterations chain per cell: with 8 cores per node and 4 nodes, the
	// wavefront still forces ≥ iters sequential steps.
	res := runSim(t, specs, 4, resources.Description{Cores: 8, MemoryMB: 8000, SpeedFactor: 1})
	if res.Makespan < 3*time.Second {
		t.Fatalf("makespan %v below iteration chain", res.Makespan)
	}
}

func TestProducerConsumerLoopRenamingEffect(t *testing.T) {
	specs := ProducerConsumerLoop(4, 6, 30*time.Second)
	if len(specs) != 4*7 {
		t.Fatalf("tasks = %d, want 28", len(specs))
	}
	res := runSim(t, specs, 2, resources.Description{Cores: 16, MemoryMB: 8000, SpeedFactor: 1})
	// With renaming, producers are independent; iterations overlap:
	// makespan ≈ producer chain? No chain at all: all producers run at
	// t=0; readers of iteration k start after producer k (5s). So the
	// whole thing is ~35s, far below the serialised 4*(5+30).
	if res.Makespan > 60*time.Second {
		t.Fatalf("renamed producer-consumer loop did not overlap: %v", res.Makespan)
	}
}
