// Package trace defines flowgo's workload-trace format and its
// replayers: a versioned JSON-lines file — one header line, then one
// task record per line — that captures production-shaped traffic (when
// tasks arrive, what they depend on, what they need, how long they ran,
// who submitted them) in a form both backends can replay and both
// humans and diff tools can read.
//
// The simulator replays a trace natively: each record becomes an
// infra.TaskSpec whose Release offset holds the task invisible until
// its trace timestamp on the virtual clock, so a million-task diurnal
// day runs in milliseconds and is byte-identical run to run. The live
// runtime replays through ReplayLive, which releases submit cohorts at
// their (optionally time-compressed) offsets on a faults.Timer and
// drives the ordinary batch-submit path. Temporal shape generators that
// EMIT traces — Poisson bursts, diurnal envelopes, heavy-tailed
// durations, per-tenant cohorts — live in gen.go, so every synthetic
// shape is a file you can commit, diff and replay, not a code path.
//
// Latency accounting closes the loop: the engine stamps every task's
// submit→ready→start→done milestones, and the report subpackage joins
// them with the trace's tenant tags into p50/p95/p99 queue-wait and
// per-tenant makespan summaries.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/deps"
	"repro/internal/resources"
)

// FormatVersion is the trace format this package reads and writes.
// Readers accept any file whose header declares a version ≤ theirs and
// ignore unknown fields, so old binaries reject genuinely newer traces
// while new binaries keep reading old ones.
const FormatVersion = 1

// Header is the first line of a trace file.
type Header struct {
	// Version is the format version (FormatVersion when written here).
	Version int `json:"trace_version"`
	// Name labels the trace (workload name, capture campaign).
	Name string `json:"name,omitempty"`
	// Shape records the generator shape that produced a synthetic trace
	// ("poisson-burst", "diurnal", "heavy-tail"); empty for captures.
	Shape string `json:"shape,omitempty"`
	// Seed is the generator seed (synthetic traces only).
	Seed int64 `json:"seed,omitempty"`
}

// WriteRef is one datum a task produces, with its size.
type WriteRef struct {
	// Data is the datum ID (trace-scoped namespace).
	Data int64 `json:"data"`
	// Bytes sizes the produced version (0 = negligible).
	Bytes int64 `json:"bytes,omitempty"`
}

// Record is one task: a line of the trace. Dependencies are expressed
// through data — a record that reads datum D depends on the latest
// earlier record that writes D (the access processor re-derives the
// edges at replay, exactly as it would in production). Times are
// integer nanoseconds so records survive JSON round-trips bit-exactly.
type Record struct {
	// ID is the trace-unique task ID, positive, strictly increasing in
	// file order.
	ID int64 `json:"id"`
	// SubmitNS is the submission offset from trace start.
	SubmitNS int64 `json:"submit_ns"`
	// Class names the task type (policy/predictor key).
	Class string `json:"class,omitempty"`
	// Tenant tags the submitting tenant ("" = untagged).
	Tenant string `json:"tenant,omitempty"`
	// EstNS is the declared duration estimate (what a scheduler would
	// have known up front); DurNS is what the task actually took.
	EstNS int64 `json:"est_ns,omitempty"`
	DurNS int64 `json:"dur_ns"`
	// Cores, MemMB and Tier are the constraint dimensions the engine
	// buckets by ("" tier = any). Together they determine the record's
	// constraint signature.
	Cores int    `json:"cores,omitempty"`
	MemMB int64  `json:"mem_mb,omitempty"`
	Tier  string `json:"tier,omitempty"`
	// Reads lists data IDs the task consumes; Writes the data it
	// produces, with sizes.
	Reads  []int64    `json:"reads,omitempty"`
	Writes []WriteRef `json:"writes,omitempty"`
}

// Submit returns the record's submission offset as a duration.
func (r Record) Submit() time.Duration { return time.Duration(r.SubmitNS) }

// Duration returns the record's actual duration.
func (r Record) Duration() time.Duration { return time.Duration(r.DurNS) }

// Constraints maps the record's constraint fields onto the engine's
// constraint type. Unknown tier names map to the zero class (any tier)
// so traces from richer deployments still replay.
func (r Record) Constraints() resources.Constraints {
	c := resources.Constraints{Cores: r.Cores, MemoryMB: r.MemMB}
	switch r.Tier {
	case "hpc":
		c.Class = resources.HPC
	case "cloud":
		c.Class = resources.Cloud
	case "fog":
		c.Class = resources.Fog
	case "edge":
		c.Class = resources.Edge
	}
	return c
}

// Trace is a parsed trace: header plus records in file order.
type Trace struct {
	Header Header
	Tasks  []Record
}

// Sort orders records by (submit offset, ID) — the canonical file
// order. Write does not re-sort; generators and captures call this so
// committed traces are deterministic byte streams.
func (t *Trace) Sort() {
	sort.SliceStable(t.Tasks, func(i, j int) bool {
		a, b := t.Tasks[i], t.Tasks[j]
		if a.SubmitNS != b.SubmitNS {
			return a.SubmitNS < b.SubmitNS
		}
		return a.ID < b.ID
	})
}

// Validate checks the structural invariants replay relies on: positive
// unique IDs, non-negative offsets and durations, and every read
// preceded in file order by its producing write or declared external
// (reads with no producer anywhere in the trace are stage-in data and
// are fine; a producer appearing LATER would silently drop the edge).
func (t *Trace) Validate() error {
	if t.Header.Version <= 0 || t.Header.Version > FormatVersion {
		return fmt.Errorf("trace: unsupported version %d (this build reads ≤ %d)",
			t.Header.Version, FormatVersion)
	}
	seen := make(map[int64]struct{}, len(t.Tasks))
	writtenBy := map[int64]int{} // datum -> first writer index
	for i, r := range t.Tasks {
		if r.ID <= 0 {
			return fmt.Errorf("trace: task %d (record %d): non-positive id", r.ID, i+1)
		}
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("trace: task %d: duplicate id", r.ID)
		}
		seen[r.ID] = struct{}{}
		if r.SubmitNS < 0 || r.DurNS < 0 || r.EstNS < 0 {
			return fmt.Errorf("trace: task %d: negative time", r.ID)
		}
		for _, w := range r.Writes {
			if _, ok := writtenBy[w.Data]; !ok {
				writtenBy[w.Data] = i
			}
		}
	}
	for i, r := range t.Tasks {
		for _, d := range r.Reads {
			if wi, ok := writtenBy[d]; ok && wi > i {
				return fmt.Errorf("trace: task %d reads datum %d whose first writer (task %d) comes later in the file",
					r.ID, d, t.Tasks[wi].ID)
			}
		}
	}
	return nil
}

// Write encodes the trace as JSON lines: the header, then one record
// per line in slice order. Output is deterministic for a given Trace
// value, so identical traces are identical bytes.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.Header); err != nil {
		return err
	}
	for _, r := range t.Tasks {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Encode returns the trace's canonical byte encoding.
func (t *Trace) Encode() []byte {
	var buf bytes.Buffer
	_ = t.Write(&buf) // bytes.Buffer cannot fail
	return buf.Bytes()
}

// Read parses a JSON-lines trace. Unknown fields are ignored (forward
// tolerance); a malformed line fails with its 1-based line number; the
// parsed trace is validated before it is returned.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if line == 1 {
			if err := json.Unmarshal(raw, &t.Header); err != nil {
				return nil, fmt.Errorf("trace: line 1: bad header: %w", err)
			}
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Tasks = append(t.Tasks, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line+1, err)
	}
	if line == 0 {
		return nil, fmt.Errorf("trace: empty input (missing header line)")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Load reads a trace file from disk.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// Save writes the trace's canonical encoding to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Tenants returns the distinct tenant tags in first-appearance order
// (untagged records contribute "").
func (t *Trace) Tenants() []string {
	seen := map[string]struct{}{}
	var out []string
	for _, r := range t.Tasks {
		if _, ok := seen[r.Tenant]; !ok {
			seen[r.Tenant] = struct{}{}
			out = append(out, r.Tenant)
		}
	}
	return out
}

// Span returns the trace's arrival span: the largest submit offset.
func (t *Trace) Span() time.Duration {
	var max int64
	for _, r := range t.Tasks {
		if r.SubmitNS > max {
			max = r.SubmitNS
		}
	}
	return time.Duration(max)
}

// accesses converts a record's reads and writes into access-processor
// declarations (reads first, matching the live replayer's param order).
func (r Record) accesses() []deps.Access {
	acc := make([]deps.Access, 0, len(r.Reads)+len(r.Writes))
	for _, d := range r.Reads {
		acc = append(acc, deps.Access{Data: deps.DataID(d), Dir: deps.In})
	}
	for _, w := range r.Writes {
		acc = append(acc, deps.Access{Data: deps.DataID(w.Data), Dir: deps.Out})
	}
	return acc
}
