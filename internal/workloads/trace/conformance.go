package trace

import (
	"bytes"
	_ "embed"
)

// conformanceRaw is the committed replay trace the backend-conformance
// suite uses: 18 tasks in 6 three-task cohorts (one writer fanning out
// to two readers each) over two tenants, bursty offsets spanning 640ms
// — small enough to serialise on the single conformance core, shaped
// enough to exercise delayed release, in-cohort dependencies and tenant
// tags on every sweep that iterates workloads.ConformanceSuite.
//
//go:embed testdata/conformance.trace
var conformanceRaw []byte

// Conformance returns the committed conformance trace. The file is
// embedded and covered by tests, so a parse failure is a build defect —
// it panics rather than making every call site thread an error.
func Conformance() *Trace {
	t, err := Read(bytes.NewReader(conformanceRaw))
	if err != nil {
		panic("trace: embedded conformance trace: " + err.Error())
	}
	return t
}
