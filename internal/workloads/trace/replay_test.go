package trace_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/infra"
	"repro/internal/resources"
	"repro/internal/sched"
	"repro/internal/simnet"
	wtrace "repro/internal/workloads/trace"
	latreport "repro/internal/workloads/trace/report"
)

// TestBurstyReplaySmoke10k replays a generated 10k-task Poisson-burst
// trace end to end on the simulator and checks the latency report is
// complete and self-consistent. This is the ordinary-suite scale smoke
// for the replay path; -short (the race job) trims it to 2k tasks.
func TestBurstyReplaySmoke10k(t *testing.T) {
	cfg := wtrace.DefaultGen(wtrace.ShapePoissonBurst)
	cfg.Tasks = 10_000
	if testing.Short() {
		cfg.Tasks = 2_000
	}
	cfg.Seed = 42
	tr, err := wtrace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pool := resources.NewPool()
	for i := 0; i < 32; i++ {
		_ = pool.Add(resources.NewNode(fmt.Sprintf("bn%d", i), resources.Description{
			Cores: 8, MemoryMB: 64_000, SpeedFactor: 1, Class: resources.HPC,
		}))
	}
	sim, err := infra.New(infra.Config{
		Pool:   pool,
		Net:    simnet.New(simnet.Link{BandwidthMBps: 1000}),
		Policy: sched.MinLoad{},
	}, tr.Specs())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != len(tr.Tasks) {
		t.Fatalf("completed %d of %d tasks", res.TasksCompleted, len(tr.Tasks))
	}

	sum := latreport.Build(sim.Timings(), latreport.MetaOf(tr))
	if sum.Completed != len(tr.Tasks) {
		t.Fatalf("latency report covers %d tasks, want %d", sum.Completed, len(tr.Tasks))
	}
	if sum.QueueWait.Count != len(tr.Tasks) || sum.QueueWait.P50 < 0 || sum.QueueWait.P99 < sum.QueueWait.P50 {
		t.Fatalf("queue wait distribution malformed: %+v", sum.QueueWait)
	}
	// End-to-end includes execution, so it dominates queue wait, and the
	// makespan covers at least the trace's arrival span.
	if sum.EndToEnd.P50 < float64(cfg.MeanDur)/float64(time.Millisecond)/10 {
		t.Fatalf("end-to-end p50 %.1fms implausibly small for mean duration %v", sum.EndToEnd.P50, cfg.MeanDur)
	}
	if span := float64(tr.Span()) / float64(time.Millisecond); sum.MakespanMS < span {
		t.Fatalf("makespan %.1fms below the trace arrival span %.1fms", sum.MakespanMS, span)
	}
	if len(sum.Tenants) != cfg.Tenants {
		t.Fatalf("report has %d tenants, want %d", len(sum.Tenants), cfg.Tenants)
	}
	var tenantTasks int
	for _, ts := range sum.Tenants {
		tenantTasks += ts.Tasks
	}
	if tenantTasks != len(tr.Tasks) {
		t.Fatalf("tenant sections cover %d tasks, want %d", tenantTasks, len(tr.Tasks))
	}
	t.Logf("replayed %d tasks: queue wait p99 %.1fms, makespan %.1fs",
		len(tr.Tasks), sum.QueueWait.P99, sum.MakespanMS/1000)
}
